// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section 4). One benchmark per experiment; each reports the
// key scalar of its table as a benchmark metric and logs the full markdown
// rendering once.
//
// By default the benchmarks run the reduced CI-scale workloads so the whole
// suite finishes in seconds. Set STATESKIP_SCALE=paper to rerun the actual
// DATE'08 experiment sizes (minutes; see EXPERIMENTS.md for the recorded
// paper-scale outputs, or `go run ./cmd/stateskip -scale=paper all`).
package stateskiplfsr

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/encoder"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/hwcost"
	"repro/internal/lfsr"
	"repro/internal/netlist"
	"repro/internal/prng"
	"repro/internal/stateskip"
)

func benchScale() benchprofile.Scale {
	if os.Getenv("STATESKIP_SCALE") == "paper" {
		return benchprofile.ScalePaper
	}
	return benchprofile.ScaleCI
}

// benchSession is shared across benchmarks so the expensive encodings are
// computed once per scale, exactly like experiments share them in the paper.
var (
	benchSessOnce sync.Once
	benchSess     *experiments.Session
)

func session() *experiments.Session {
	benchSessOnce.Do(func() {
		benchSess = experiments.NewSession(benchScale())
	})
	return benchSess
}

// BenchmarkTable1 regenerates Table 1 (classical vs window-based
// reseeding: TDV and TSL per circuit and window length).
func BenchmarkTable1(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		md = s.Table1Markdown(rows)
		tdv := 0
		for _, r := range rows {
			tdv += r.Cells[len(r.Cells)-1].TDV
		}
		b.ReportMetric(float64(tdv), "TDV-bits-at-max-L")
	}
	b.Log("\n" + md)
}

// BenchmarkTable2 regenerates Table 2 (TSL improvement of State Skip over
// full windows, best (S,k) per circuit and L).
func BenchmarkTable2(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		md = s.Table2Markdown(rows)
		var impr float64
		for _, r := range rows {
			impr += r.Cells[len(r.Cells)-1].Impr
		}
		b.ReportMetric(impr/float64(len(rows))*100, "mean-TSL-impr-%")
	}
	b.Log("\n" + md)
}

// BenchmarkFig4 regenerates both sweeps of Fig. 4 (TSL improvement vs k
// for several S at fixed L, and for several L at fixed S, on s13207).
func BenchmarkFig4(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		bars, curves, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		md = s.Fig4Markdown(bars, curves)
		last := curves[len(curves)-1].Points
		b.ReportMetric(last[len(last)-1].Impr*100, "impr-%-maxL-maxK")
	}
	b.Log("\n" + md)
}

// BenchmarkTable3 regenerates Table 3 (comparison against the published
// test set embedding methods [11] and [22]).
func BenchmarkTable3(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		md = s.Table3Markdown(rows)
		tsl := 0
		for _, r := range rows {
			tsl += r.PropTSL
		}
		b.ReportMetric(float64(tsl), "total-prop-TSL")
	}
	b.Log("\n" + md)
}

// BenchmarkTable4 regenerates Table 4 (test data compression vs the
// proposed embedding: classical L=1 and State-Skip-shortened windows).
func BenchmarkTable4(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		md = s.Table4Markdown(rows)
		tdv := 0
		for _, r := range rows {
			tdv += r.PropTDV
		}
		b.ReportMetric(float64(tdv), "total-prop-TDV")
	}
	b.Log("\n" + md)
}

// BenchmarkEncode measures window-based seed computation end to end on the
// two extreme workloads (s13207 conflict-bound, s38417 rank-bound and
// densest), serial versus the candidate scan fanned out across every CPU.
// The shared-tables cache is reused across iterations, exactly as
// experiments.Session reuses it across a sweep, so the loop measures the
// reduced-basis candidate-scan hot path; the first iteration also pays the
// symbolic table build. Seeds, assignments and check counts are identical
// for any worker count (TestEncodeWorkersBitIdentical) and to the
// pre-reduced-basis engine (TestEncodeGolden).
func BenchmarkEncode(b *testing.B) {
	L := 32
	if benchScale() == benchprofile.ScalePaper {
		L = 50
	}
	for _, name := range []string{"s13207", "s38417"} {
		p, err := benchprofile.ByName(name, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		set := p.Generate()
		cache := encoder.NewTablesCache()
		for _, workers := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				b.ReportAllocs()
				var enc *encoder.Encoding
				for i := 0; i < b.N; i++ {
					e, _, err := encoder.EncodeAutoCached(p.LFSRSize, p.Width, p.Chains, L, set, workers, cache)
					if err != nil {
						b.Fatal(err)
					}
					enc = e
				}
				b.ReportMetric(float64(len(enc.Seeds)), "seeds")
				b.ReportMetric(float64(enc.ChecksPerformed), "checks")
			})
		}
	}
}

// BenchmarkCoverage measures fault-universe coverage of a fixed random
// core, serial (workers=1) versus sharded across every CPU. Detection
// results are bit-identical for any worker count (asserted by the
// differential tests in internal/faultsim); only the wall clock differs.
// At paper scale the core and pattern count grow to the size of the
// paper's larger ISCAS'89-class circuits.
func BenchmarkCoverage(b *testing.B) {
	cfg := netlist.RandomConfig{Inputs: 96, Outputs: 32, Gates: 4000, MaxFan: 3, Seed: 2008}
	numPatterns := 256
	if benchScale() == benchprofile.ScalePaper {
		cfg.Gates = 20000
		cfg.Inputs = 256
		cfg.Outputs = 128
		numPatterns = 1024
	}
	nl, err := netlist.Random(cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	src := prng.New(77)
	patterns := make([][]uint8, numPatterns)
	for i := range patterns {
		p := make([]uint8, cfg.Inputs)
		for j := range p {
			p[j] = src.Bit()
		}
		patterns[i] = p
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				_, c, err := faultsim.CoverageOpts(u, patterns, faultsim.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				cov = c
			}
			b.ReportMetric(cov*100, "coverage-%")
			b.ReportMetric(float64(len(u.Faults)), "faults")
		})
	}
}

// BenchmarkRunAll measures the full ATPG pipeline (event-driven PODEM
// implication + speculative generation + commit-ordered X-fill + 64-wide
// batched fault dropping) end to end: serial versus pipelined across every
// CPU, and the classic SCOAP backtrace versus the FAN/SOCRATES multiple
// backtrace. The shared atpg.Tables are built once per RunAll; per-worker
// Generators are cheap scratch. Within one strategy cubes, patterns and
// counters are bit-identical for any worker count and (for scoap) to the
// kept full-resimulation reference engine (both asserted by atpg's
// differential tests under -race); the strategies differ in backtracks,
// aborts and coverage — the decision-quality metrics reported below. At
// paper scale the core grows to the size of the paper's larger
// ISCAS'89-class circuits.
func BenchmarkRunAll(b *testing.B) {
	// A three-core circuit set per scale: single-circuit deltas between the
	// strategies are dominated by random X-fill fault-drop luck; the set
	// makes the decision-quality comparison meaningful.
	for _, seed := range []uint64{2008, 2009, 2010} {
		cfg := netlist.RandomConfig{Inputs: 400, Outputs: 160, Gates: 800, MaxFan: 3, Seed: seed}
		if benchScale() == benchprofile.ScalePaper {
			cfg = netlist.RandomConfig{Inputs: 800, Outputs: 320, Gates: 2400, MaxFan: 3, Seed: seed}
		}
		nl, err := netlist.Random(cfg)
		if err != nil {
			b.Fatal(err)
		}
		u := faultsim.NewUniverse(nl)
		// Backtrack limit 20 is the production norm for drop-loop ATPG; the
		// default 1000 makes hard faults cost seconds each on circuits this
		// size without changing the picture the benchmark draws.
		for _, strategy := range []atpg.Backtrace{atpg.BacktraceSCOAP, atpg.BacktraceMulti} {
			for _, workers := range []int{1, runtime.NumCPU()} {
				b.Run(fmt.Sprintf("core=%d/strategy=%v/workers=%d", seed, strategy, workers), func(b *testing.B) {
					var res *atpg.Result
					for i := 0; i < b.N; i++ {
						r, err := atpg.RunAll(u, atpg.Options{
							FaultDrop: true, FillSeed: 7, Workers: workers,
							BacktrackLimit: 20, Backtrace: strategy,
						})
						if err != nil {
							b.Fatal(err)
						}
						res = r
					}
					b.ReportMetric(res.Coverage*100, "coverage-%")
					b.ReportMetric(float64(res.Cubes.Len()), "cubes")
					b.ReportMetric(float64(res.Aborted), "aborted")
					b.ReportMetric(float64(res.Backtracks), "backtracks")
					b.ReportMetric(float64(len(u.Faults)), "faults")
				})
			}
		}
	}
}

// BenchmarkHWSkipCircuit regenerates the §4 State-Skip-circuit overhead
// sweep (GE vs k on the s13207 register), including the CSE ablation.
func BenchmarkHWSkipCircuit(b *testing.B) {
	s := session()
	var last float64
	for i := 0; i < b.N; i++ {
		pts, err := s.SkipCircuitSweep([]int{4, 8, 12, 16, 20, 24, 28, 32})
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1].CSEGE
	}
	b.ReportMetric(last, "GE-at-k32")
}

// BenchmarkHWDecompressor regenerates the §4 decompressor cost breakdown
// and the Mode Select (L,S) range.
func BenchmarkHWDecompressor(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		rep, err := s.HWOverhead()
		if err != nil {
			b.Fatal(err)
		}
		md = s.HWMarkdown(rep)
		b.ReportMetric(rep.Breakdown.SharedGE(), "shared-GE")
	}
	b.Log("\n" + md)
}

// BenchmarkHWSoC regenerates the §4 five-core SoC synthesis experiment.
func BenchmarkHWSoC(b *testing.B) {
	s := session()
	var md string
	for i := 0; i < b.N; i++ {
		rep, err := s.SoC()
		if err != nil {
			b.Fatal(err)
		}
		md = s.SoCMarkdown(rep)
		b.ReportMetric(rep.AreaPercent, "SoC-area-%")
	}
	b.Log("\n" + md)
}

// BenchmarkAblationSelection quantifies the useful-segment
// selection choice: the paper's fortuitous-embedding + greedy cover
// against naive assignment-based labelling. The reported metric is the
// TSL saved by the smart selection, in percent.
func BenchmarkAblationSelection(b *testing.B) {
	s := session()
	circuit := "s38584" // the sparsest profile: most fortuitous embeddings
	L := s.Params.Table2Ls[len(s.Params.Table2Ls)-1]
	S, k := s.Params.Fig4CurveS, 12
	var saved float64
	for i := 0; i < b.N; i++ {
		enc, err := s.Encoding(circuit, L)
		if err != nil {
			b.Fatal(err)
		}
		smart, err := s.Reduce(circuit, L, S, k)
		if err != nil {
			b.Fatal(err)
		}
		naiveOpt := stateskip.DefaultOptions(S, k)
		naiveOpt.NaiveSelection = true
		naive, err := stateskip.Reduce(enc, naiveOpt)
		if err != nil {
			b.Fatal(err)
		}
		saved = (1 - float64(smart.TSL())/float64(naive.TSL())) * 100
	}
	b.ReportMetric(saved, "TSL-saved-%-vs-naive")
}

// BenchmarkAblationPruning quantifies the encoder's monotone feasibility
// pruning (see internal/encoder): consistency checks with and without it.
// The result is identical either way (asserted by the encoder tests); only
// the work differs.
func BenchmarkAblationPruning(b *testing.B) {
	p, err := benchprofile.ByName("s13207", benchScale())
	if err != nil {
		b.Fatal(err)
	}
	if benchScale() == benchprofile.ScaleCI {
		p.NumCubes = 40
	}
	set := p.Generate()
	L := 16
	if benchScale() == benchprofile.ScalePaper {
		L = 100
	}
	cfg, err := encoder.StandardConfig(p.LFSRSize, p.Width, p.Chains, L)
	if err != nil {
		b.Fatal(err)
	}
	var pruned, full int64
	for i := 0; i < b.N; i++ {
		encP, err := encoder.Encode(cfg, set)
		if err != nil {
			b.Fatal(err)
		}
		pruned = encP.ChecksPerformed
		cfgNP := cfg
		cfgNP.NoPruning = true
		encF, err := encoder.Encode(cfgNP, set)
		if err != nil {
			b.Fatal(err)
		}
		full = encF.ChecksPerformed
	}
	b.ReportMetric(float64(full)/float64(pruned), "check-reduction-x")
}

// BenchmarkAblationCSE quantifies Paar common-subexpression elimination on
// the skip-circuit XOR network (see internal/hwcost).
func BenchmarkAblationCSE(b *testing.B) {
	l, err := lfsr.NewStandard(lfsr.Fibonacci, 24)
	if err != nil {
		b.Fatal(err)
	}
	m := l.SkipMatrix(24)
	var net hwcost.XorNetwork
	for i := 0; i < b.N; i++ {
		net = hwcost.CostLinear(m)
	}
	b.ReportMetric(float64(net.NaiveXORs)/float64(net.CSEXORs), "XOR-reduction-x")
}

// BenchmarkAblationLFSRForm compares the State Skip circuit cost of the
// two feedback structures for the same characteristic polynomial. The
// paper uses one register form throughout; this quantifies how much the
// choice matters for the skip network (it barely does — T^k densifies
// similarly either way).
func BenchmarkAblationLFSRForm(b *testing.B) {
	taps, _ := lfsr.Taps(24)
	fib, err := lfsr.NewFromTaps(lfsr.Fibonacci, 24, taps)
	if err != nil {
		b.Fatal(err)
	}
	gal, err := lfsr.NewFromTaps(lfsr.Galois, 24, taps)
	if err != nil {
		b.Fatal(err)
	}
	var fibGE, galGE float64
	for i := 0; i < b.N; i++ {
		fibGE = hwcost.CostLinear(fib.SkipMatrix(12)).GE()
		galGE = hwcost.CostLinear(gal.SkipMatrix(12)).GE()
	}
	b.ReportMetric(fibGE, "fibonacci-GE-k12")
	b.ReportMetric(galGE, "galois-GE-k12")
}
