// Package prng provides a small deterministic pseudorandom generator used
// everywhere this repository needs "random" data: filling the free variables
// of LFSR seeds, generating synthetic test cubes, and building random
// netlists. Determinism matters because the paper's experiments must be
// bit-reproducible across runs and platforms; math/rand's stream is not
// guaranteed stable across Go releases, so we pin SplitMix64 here.
package prng

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; prefer New to make seeding explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value.
func New(seed uint64) *Source { return &Source{state: seed} }

// State returns the generator's internal state. Together with SetState it
// lets a consumer checkpoint and later resume the stream mid-sequence
// (SplitMix64's whole state is one word), which crash recovery uses to
// keep a resumed run's random fill bit-identical to an uninterrupted one.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state previously captured with State; the next
// Uint64 continues the stream exactly where the capture left it.
func (s *Source) SetState(state uint64) { s.state = state }

// Uint64 returns the next 64 pseudorandom bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Bit returns a single pseudorandom bit.
func (s *Source) Bit() uint8 { return uint8(s.Uint64() >> 63) }

// Intn returns a pseudorandom int in [0, n). It panics if n <= 0.
// Uses rejection sampling so the distribution is exactly uniform.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive bound")
	}
	bound := uint64(n)
	// Largest multiple of bound that fits in a uint64.
	limit := (^uint64(0) / bound) * bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a pseudorandom float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudorandom permutation of [0, n) via Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudorandomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p in (0, 1]: the number of failures before the first success
// (support {0, 1, 2, ...}). Used for specified-bit run lengths in synthetic
// cube generation.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("prng: Geometric needs p in (0,1]")
	}
	n := 0
	for s.Float64() >= p {
		n++
		if n > 1<<20 {
			// Defensive bound; unreachable for sane p.
			break
		}
	}
	return n
}
