package prng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	// Pin the stream so cross-version changes are caught: SplitMix64(0)
	// has a published reference output.
	ref := New(0)
	if got := ref.Uint64(); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) first output = %#x, want 0xe220a8397b1dcdaf", got)
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	src.Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	src := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[src.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("value %d: count %d far from %d", v, c, int(want))
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(5)
	sum := 0.0
	const trials = 50000
	for i := 0; i < trials; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %f, want ≈ 0.5", mean)
	}
}

func TestBitBalance(t *testing.T) {
	src := New(11)
	ones := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		ones += int(src.Bit())
	}
	if math.Abs(float64(ones)/trials-0.5) > 0.02 {
		t.Errorf("bit bias: %d ones of %d", ones, trials)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(3)
	p := src.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(8)
	const p = 0.2
	sum := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += src.Geometric(p)
	}
	mean := float64(sum) / trials
	want := (1 - p) / p // 4.0
	if math.Abs(mean-want) > 0.3 {
		t.Errorf("geometric mean = %f, want ≈ %f", mean, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	src.Geometric(0)
}

func TestShuffle(t *testing.T) {
	src := New(21)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	src.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", vals)
	}
}

func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	for i := 0; i < 17; i++ {
		src.Uint64()
	}
	mid := src.State()
	var tail []uint64
	for i := 0; i < 100; i++ {
		tail = append(tail, src.Uint64())
	}
	resumed := New(0)
	resumed.SetState(mid)
	for i, want := range tail {
		if got := resumed.Uint64(); got != want {
			t.Fatalf("resumed stream diverged at %d: %#x != %#x", i, got, want)
		}
	}
}
