// Package phaseshifter implements the XOR network between an LFSR and the
// scan chains. Adjacent LFSR cells produce shifted copies of the same bit
// sequence; feeding chains directly from cells would make neighbouring
// chains linearly dependent and cripple the seed-equation systems. A phase
// shifter drives every chain with the XOR of a small set of cells, chosen so
// the output sequences are widely separated phases of the m-sequence.
//
// The construction here (NewSeparated) taps three cells per output and
// verifies by symbolic simulation that no two outputs produce the same
// seed expression anywhere within the encoding window — the separation
// property window-based reseeding needs.
package phaseshifter

import (
	"fmt"

	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/prng"
)

// PhaseShifter is an immutable XOR network from n LFSR cells to m outputs.
type PhaseShifter struct {
	n    int
	taps [][]int // taps[out] = LFSR cell indices XORed into that output
}

// New builds a phase shifter with explicit taps. Every output must have at
// least one tap and all taps must be valid cell indices.
func New(n int, taps [][]int) (*PhaseShifter, error) {
	if n < 1 {
		return nil, fmt.Errorf("phaseshifter: LFSR size %d invalid", n)
	}
	if len(taps) == 0 {
		return nil, fmt.Errorf("phaseshifter: need at least one output")
	}
	cp := make([][]int, len(taps))
	for o, ts := range taps {
		if len(ts) == 0 {
			return nil, fmt.Errorf("phaseshifter: output %d has no taps", o)
		}
		seen := make(map[int]bool, len(ts))
		for _, c := range ts {
			if c < 0 || c >= n {
				return nil, fmt.Errorf("phaseshifter: output %d taps cell %d outside [0,%d)", o, c, n)
			}
			if seen[c] {
				return nil, fmt.Errorf("phaseshifter: output %d taps cell %d twice", o, c)
			}
			seen[c] = true
		}
		cp[o] = append([]int(nil), ts...)
	}
	return &PhaseShifter{n: n, taps: cp}, nil
}

// NewSeparated builds a 3-tap-per-output phase shifter whose output
// sequences are verified to have no phase overlap within windowCycles
// clocks.
//
// Each output, being an XOR of LFSR cells, produces the register's
// m-sequence at some phase (the shift-and-add property). If two outputs'
// phases come closer than the window length, they emit the *same* linear
// expression of the seed at two different (output, cycle) slots, and any
// test cube specifying opposite values at those slots becomes structurally
// unencodable. Naive tap constructions (e.g. constant-stride tap sets) are
// catastrophic here: shifting a tap set by s cells shifts its phase by
// exactly s, putting all channels within a few cycles of each other.
//
// Because computing phases outright needs discrete logarithms in GF(2^n),
// NewSeparated instead verifies separation directly: it simulates the
// register symbolically for windowCycles clocks, hashes every output
// expression, and re-randomises the taps of any output that collides with
// an earlier one. Tap choice is deterministic (seeded from n, outputs and
// windowCycles), so identical configurations always yield identical
// hardware.
func NewSeparated(l *lfsr.LFSR, outputs, windowCycles int) (*PhaseShifter, error) {
	return NewSeparatedVariant(l, outputs, windowCycles, 0)
}

// NewSeparatedVariant is NewSeparated with a design-variant salt. Pairwise
// phase separation cannot rule out *higher-weight* translation-invariant
// relations (e.g. output a XOR output b at equal cycles equalling output c a
// few cycles earlier); when a test set happens to specify slots on such a
// relation with odd parity, that cube is structurally unencodable under
// this particular shifter and the flow retries with the next variant —
// mirroring real DFT practice, where the phase shifter is iterated until
// the test set encodes. See encoder.EncodeAuto.
func NewSeparatedVariant(l *lfsr.LFSR, outputs, windowCycles int, variant uint64) (*PhaseShifter, error) {
	n := l.Size()
	if outputs < 1 {
		return nil, fmt.Errorf("phaseshifter: need at least one output, got %d", outputs)
	}
	if windowCycles < 1 {
		return nil, fmt.Errorf("phaseshifter: window of %d cycles invalid", windowCycles)
	}
	src := prng.New(uint64(n)<<32 ^ uint64(outputs)<<16 ^ uint64(windowCycles) ^ 0x51ab ^ variant*0x9e3779b97f4a7c15)
	taps := make([][]int, outputs)
	for o := range taps {
		taps[o] = randomTaps(src, n)
	}
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		colliding := findCollision(l, taps, windowCycles)
		if colliding < 0 {
			return New(n, taps)
		}
		taps[colliding] = randomTaps(src, n)
	}
	return nil, fmt.Errorf("phaseshifter: could not separate %d outputs over %d cycles for n=%d (state space too small)", outputs, windowCycles, n)
}

// randomTaps draws three distinct cells (fewer if n < 3).
func randomTaps(src *prng.Source, n int) []int {
	want := 3
	if n < want {
		want = n
	}
	set := make(map[int]bool, want)
	out := make([]int, 0, want)
	for len(out) < want {
		c := src.Intn(n)
		if !set[c] {
			set[c] = true
			out = append(out, c)
		}
	}
	return out
}

// findCollision symbolically simulates windowCycles clocks and returns the
// index of an output whose expression at some cycle duplicates another
// output's expression at any cycle, or -1 if all expressions are distinct.
func findCollision(l *lfsr.LFSR, taps [][]int, windowCycles int) int {
	n := l.Size()
	type slot struct {
		out  int
		expr gf2.Vec
	}
	seen := make(map[uint64][]slot, windowCycles*len(taps))
	sym := lfsr.NewSymbolic(l)
	scratch := gf2.NewVec(n)
	for cyc := 0; cyc < windowCycles; cyc++ {
		for o, ts := range taps {
			scratch.Zero()
			for _, c := range ts {
				scratch.Xor(sym.Expr(c))
			}
			h := hashWords(scratch.Words())
			for _, s := range seen[h] {
				if s.out != o && s.expr.Equal(scratch) {
					return o
				}
			}
			seen[h] = append(seen[h], slot{out: o, expr: scratch.Clone()})
		}
		sym.Step()
	}
	return -1
}

func hashWords(ws []uint64) uint64 {
	// FNV-1a over the words.
	h := uint64(0xcbf29ce484222325)
	for _, w := range ws {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	return h
}

// Outputs returns the number of outputs m.
func (p *PhaseShifter) Outputs() int { return len(p.taps) }

// Size returns the LFSR size n the shifter was built for.
func (p *PhaseShifter) Size() int { return p.n }

// Taps returns the tap list of one output (read-only).
func (p *PhaseShifter) Taps(out int) []int { return p.taps[out] }

// Apply computes the m concrete output bits for a concrete LFSR state.
func (p *PhaseShifter) Apply(state gf2.Vec) gf2.Vec {
	if state.Len() != p.n {
		panic(fmt.Sprintf("phaseshifter: state width %d != %d", state.Len(), p.n))
	}
	out := gf2.NewVec(len(p.taps))
	for o, ts := range p.taps {
		var b uint8
		for _, c := range ts {
			b ^= state.Bit(c)
		}
		out.SetBit(o, b)
	}
	return out
}

// ApplyInto is Apply without allocation; dst must have m bits.
func (p *PhaseShifter) ApplyInto(dst, state gf2.Vec) {
	for o, ts := range p.taps {
		var b uint8
		for _, c := range ts {
			b ^= state.Bit(c)
		}
		dst.SetBit(o, b)
	}
}

// ExprInto writes the symbolic expression of output o — the XOR of the cell
// expressions — into dst (an n-bit scratch vector).
func (p *PhaseShifter) ExprInto(dst gf2.Vec, sym *lfsr.Symbolic, o int) {
	dst.Zero()
	for _, c := range p.taps[o] {
		dst.Xor(sym.Expr(c))
	}
}

// XORGateCount returns the number of 2-input XOR gates a direct
// implementation needs: taps-1 per output.
func (p *PhaseShifter) XORGateCount() int {
	total := 0
	for _, ts := range p.taps {
		total += len(ts) - 1
	}
	return total
}
