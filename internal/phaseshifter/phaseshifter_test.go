package phaseshifter

import (
	"testing"

	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/prng"
)

func std(t testing.TB, n int) *lfsr.LFSR {
	t.Helper()
	l, err := lfsr.NewStandard(lfsr.Fibonacci, n)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, [][]int{{0}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(4, nil); err == nil {
		t.Error("no outputs accepted")
	}
	if _, err := New(4, [][]int{{}}); err == nil {
		t.Error("empty tap set accepted")
	}
	if _, err := New(4, [][]int{{4}}); err == nil {
		t.Error("out-of-range tap accepted")
	}
	if _, err := New(4, [][]int{{1, 1}}); err == nil {
		t.Error("duplicate tap accepted")
	}
	ps, err := New(4, [][]int{{0, 2}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Outputs() != 2 || ps.Size() != 4 {
		t.Error("dimensions wrong")
	}
	if ps.XORGateCount() != 1 {
		t.Errorf("XOR count = %d", ps.XORGateCount())
	}
}

func TestApplyMatchesTaps(t *testing.T) {
	ps, _ := New(8, [][]int{{0, 3, 5}, {1}, {2, 7}})
	src := prng.New(4)
	for trial := 0; trial < 50; trial++ {
		state := gf2.NewVec(8)
		for i := 0; i < 8; i++ {
			state.SetBit(i, src.Bit())
		}
		out := ps.Apply(state)
		if out.Bit(0) != state.Bit(0)^state.Bit(3)^state.Bit(5) {
			t.Fatal("output 0 wrong")
		}
		if out.Bit(1) != state.Bit(1) {
			t.Fatal("output 1 wrong")
		}
		if out.Bit(2) != state.Bit(2)^state.Bit(7) {
			t.Fatal("output 2 wrong")
		}
		dst := gf2.NewVec(3)
		ps.ApplyInto(dst, state)
		if !dst.Equal(out) {
			t.Fatal("ApplyInto disagrees with Apply")
		}
	}
}

// TestSeparationNoDuplicateExpressions is the core guarantee: within the
// verified window, no two outputs ever produce the same linear expression
// of the seed, so no test cube can be structurally unencodable due to a
// two-slot conflict.
func TestSeparationNoDuplicateExpressions(t *testing.T) {
	l := std(t, 20)
	window := 200
	ps, err := NewSeparated(l, 6, window)
	if err != nil {
		t.Fatal(err)
	}
	sym := lfsr.NewSymbolic(l)
	seen := make(map[string][2]int)
	scratch := gf2.NewVec(20)
	for cyc := 0; cyc < window; cyc++ {
		for o := 0; o < ps.Outputs(); o++ {
			ps.ExprInto(scratch, sym, o)
			key := scratch.String()
			if prev, dup := seen[key]; dup && prev[0] != o {
				t.Fatalf("outputs %d and %d collide (cycles %d and %d)", prev[0], o, prev[1], cyc)
			}
			if _, dup := seen[key]; !dup {
				seen[key] = [2]int{o, cyc}
			}
		}
		sym.Step()
	}
}

func TestSeparatedDeterministicAndVariants(t *testing.T) {
	l := std(t, 24)
	a, err := NewSeparated(l, 8, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeparated(l, 8, 300)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 8; o++ {
		ta, tb := a.Taps(o), b.Taps(o)
		if len(ta) != len(tb) {
			t.Fatal("not deterministic")
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatal("not deterministic")
			}
		}
	}
	v1, err := NewSeparatedVariant(l, 8, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	different := false
	for o := 0; o < 8 && !different; o++ {
		ta, tv := a.Taps(o), v1.Taps(o)
		for i := range ta {
			if i < len(tv) && ta[i] != tv[i] {
				different = true
				break
			}
		}
	}
	if !different {
		t.Error("variant 1 identical to variant 0")
	}
}

func TestSeparatedImpossibleFails(t *testing.T) {
	// 2^8-1 = 255 states cannot hold 8 channels × 64 cycles = 512 distinct
	// phases.
	l := std(t, 8)
	if _, err := NewSeparated(l, 8, 64); err == nil {
		t.Error("impossible separation accepted")
	}
}

func TestSeparatedRejectsBadArgs(t *testing.T) {
	l := std(t, 16)
	if _, err := NewSeparated(l, 0, 10); err == nil {
		t.Error("0 outputs accepted")
	}
	if _, err := NewSeparated(l, 4, 0); err == nil {
		t.Error("0 window accepted")
	}
}
