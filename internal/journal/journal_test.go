package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// reopen closes j and reopens the same directory, returning the replayed
// records.
func reopen(t *testing.T, j *Journal, opt Options) (*Journal, []Record) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, recs, err := Open(j.Dir(), opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return j2, recs
}

func mustOpen(t *testing.T, dir string, opt Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].ID != b[i].ID || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

func TestEmptyDirAndEmptyFile(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	if j.Depth() != 0 {
		t.Fatalf("fresh depth = %d", j.Depth())
	}
	// Reopening with a zero-byte segment present (crash before first
	// append) must also replay cleanly.
	j2, recs := reopen(t, j, Options{})
	defer j2.Close()
	if len(recs) != 0 {
		t.Fatalf("empty segment replayed %d records", len(recs))
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	want := []Record{
		{Op: OpSubmitted, ID: "job-1", Data: []byte(`{"kind":"atpg"}`)},
		{Op: OpStarted, ID: "job-1"},
		{Op: OpCheckpoint, ID: "job-1", Data: bytes.Repeat([]byte{0xAB}, 1000)},
		{Op: OpDone, ID: "job-1", Data: []byte("result")},
		{Op: OpSubmitted, ID: "job-2", Data: nil},
		{Op: OpCanceled, ID: "job-2"},
	}
	if err := j.AppendSync(want[:3]...); err != nil {
		t.Fatalf("AppendSync: %v", err)
	}
	if err := j.Append(want[3:]...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := j.Depth(); got != len(want) {
		t.Fatalf("Depth = %d, want %d", got, len(want))
	}
	j2, recs := reopen(t, j, Options{})
	defer j2.Close()
	if !sameRecords(recs, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", recs, want)
	}
	if got := j2.Depth(); got != len(want) {
		t.Fatalf("replayed Depth = %d, want %d", got, len(want))
	}
}

// TestTornTailEveryOffset truncates the final record at every possible
// byte offset and checks that replay recovers exactly the earlier
// records, then that the journal accepts new appends after recovery.
func TestTornTailEveryOffset(t *testing.T) {
	prefix := []Record{
		{Op: OpSubmitted, ID: "a", Data: []byte("alpha")},
		{Op: OpStarted, ID: "a"},
	}
	last := Record{Op: OpDone, ID: "a", Data: []byte("omega-result")}

	// Build a pristine copy once to learn the offsets.
	master := t.TempDir()
	j, _ := mustOpen(t, master, Options{NoSync: true})
	if err := j.Append(append(prefix[:len(prefix):len(prefix)], last)...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(master, segName(1))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	offs, err := Boundaries(segPath)
	if err != nil {
		t.Fatalf("Boundaries: %v", err)
	}
	if len(offs) != 4 { // 0, after rec1, after rec2, after rec3
		t.Fatalf("Boundaries = %v, want 4 offsets", offs)
	}
	lastStart := offs[2]

	for cut := lastStart; cut < int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}
		jr, recs, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if !sameRecords(recs, prefix) {
			t.Fatalf("cut %d: replayed %d records, want the %d-record prefix", cut, len(recs), len(prefix))
		}
		// The torn tail must be gone from disk so the next append starts
		// at a record boundary.
		if err := jr.AppendSync(Record{Op: OpFailed, ID: "a", Data: []byte("post-crash")}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		jr2, recs := reopen(t, jr, Options{NoSync: true})
		jr2.Close()
		want := append(prefix[:len(prefix):len(prefix)], Record{Op: OpFailed, ID: "a", Data: []byte("post-crash")})
		if !sameRecords(recs, want) {
			t.Fatalf("cut %d: post-recovery replay mismatch: got %+v", cut, recs)
		}
	}
}

// TestCorruptMiddleRecordFailsLoudly flips a payload byte in an interior
// record: Open must refuse with ErrCorrupt rather than skip it.
func TestCorruptMiddleRecordFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	recs := []Record{
		{Op: OpSubmitted, ID: "x", Data: []byte("first")},
		{Op: OpStarted, ID: "x", Data: []byte("second")},
		{Op: OpDone, ID: "x", Data: []byte("third")},
	}
	if err := j.Append(recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(dir, segName(1))
	offs, err := Boundaries(segPath)
	if err != nil {
		t.Fatalf("Boundaries: %v", err)
	}
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Flip a byte inside the second record's payload.
	data[offs[1]+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, _, err = Open(dir, Options{NoSync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptFinalRecordTruncates: a CRC failure on a frame ending
// exactly at EOF is indistinguishable from a torn write and must be
// truncated, not fatal.
func TestCorruptFinalRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	if err := j.Append(
		Record{Op: OpSubmitted, ID: "x", Data: []byte("keep")},
		Record{Op: OpDone, ID: "x", Data: []byte("tail")},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	j2, recs := mustOpen(t, dir, Options{NoSync: true})
	defer j2.Close()
	if len(recs) != 1 || recs[0].ID != "x" || string(recs[0].Data) != "keep" {
		t.Fatalf("replay after tail corruption = %+v, want just the first record", recs)
	}
}

// TestInteriorSegmentTornFails: a truncated frame in a non-final segment
// is corruption (crashes only tear the end of the log).
func TestInteriorSegmentTornFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true, SegmentBytes: 1})
	// SegmentBytes=1 forces rotation on every append after the first.
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Op: OpSubmitted, ID: fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %v (err %v)", segs, err)
	}
	first := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, _, err = Open(dir, Options{NoSync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on torn interior segment: err = %v, want ErrCorrupt", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append past the first record rotates.
	j, _ := mustOpen(t, dir, Options{NoSync: true, SegmentBytes: 64})
	var want []Record
	for i := 0; i < 20; i++ {
		r := Record{Op: OpAttempt, ID: fmt.Sprintf("job-%02d", i), Data: bytes.Repeat([]byte{byte(i)}, 40)}
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected many segments, got %v", segs)
	}
	j2, recs := reopen(t, j, Options{NoSync: true, SegmentBytes: 64})
	defer j2.Close()
	if !sameRecords(recs, want) {
		t.Fatalf("multi-segment replay mismatch: %d records, want %d", len(recs), len(want))
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true, SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("job-%d", i)
		if err := j.Append(
			Record{Op: OpSubmitted, ID: id, Data: []byte("req")},
			Record{Op: OpDone, ID: id, Data: []byte("res")},
		); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	live := []Record{
		{Op: OpSubmitted, ID: "job-9", Data: []byte("req")},
		{Op: OpDone, ID: "job-9", Data: []byte("res")},
	}
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := j.Depth(); got != len(live) {
		t.Fatalf("Depth after compact = %d, want %d", got, len(live))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after compact = %v, want exactly one", segs)
	}
	// The compacted journal must still accept appends and replay both.
	extra := Record{Op: OpSubmitted, ID: "job-10", Data: []byte("new")}
	if err := j.AppendSync(extra); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j2, recs := reopen(t, j, Options{NoSync: true})
	defer j2.Close()
	want := append(live[:len(live):len(live)], extra)
	if !sameRecords(recs, want) {
		t.Fatalf("replay after compact = %+v, want %+v", recs, want)
	}
}

func TestCompactEmpty(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	if err := j.Append(Record{Op: OpSubmitted, ID: "gone"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Compact(nil); err != nil {
		t.Fatalf("Compact(nil): %v", err)
	}
	if j.Depth() != 0 {
		t.Fatalf("Depth after empty compact = %d", j.Depth())
	}
	j2, recs := reopen(t, j, Options{NoSync: true})
	defer j2.Close()
	if len(recs) != 0 {
		t.Fatalf("replay after empty compact = %+v", recs)
	}
}

func TestConcurrentAppendSync(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := Record{Op: OpAttempt, ID: fmt.Sprintf("w%d-%d", w, i)}
				if err := j.AppendSync(r); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent AppendSync: %v", err)
	}
	j2, recs := reopen(t, j, Options{})
	defer j2.Close()
	if len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate record %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestClosedJournal(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := j.Append(Record{Op: OpSubmitted, ID: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v, want ErrClosed", err)
	}
	if err := j.AppendSync(Record{Op: OpSubmitted, ID: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendSync after close: %v, want ErrClosed", err)
	}
	if err := j.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after close: %v, want ErrClosed", err)
	}
}

func TestRecordTooLarge(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	defer j.Close()
	big := Record{Op: OpCheckpoint, ID: "x", Data: make([]byte, MaxRecordBytes)}
	if err := j.Append(big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized Append: %v, want ErrRecordTooLarge", err)
	}
}

// TestBoundaries pins the helper the chaos harness leans on: offsets are
// strictly increasing, start at 0, and end at the file size.
func TestBoundaries(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	for i := 0; i < 5; i++ {
		if err := j.Append(Record{Op: OpSubmitted, ID: fmt.Sprintf("j%d", i), Data: make([]byte, i*7)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(dir, segName(1))
	offs, err := Boundaries(segPath)
	if err != nil {
		t.Fatalf("Boundaries: %v", err)
	}
	if len(offs) != 6 || offs[0] != 0 {
		t.Fatalf("Boundaries = %v, want 6 offsets starting at 0", offs)
	}
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if offs[len(offs)-1] != st.Size() {
		t.Fatalf("final boundary %d != file size %d", offs[len(offs)-1], st.Size())
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("Boundaries not increasing: %v", offs)
		}
	}
}
