// Package journal is an append-only, crash-safe write-ahead log of job
// lifecycle records — the durability substrate under stateskipd
// (internal/server). Records are length-prefixed and CRC-checked, written
// through a buffered writer with group-commit fsync (concurrent AppendSync
// callers share one fsync), rotated across numbered segment files, and
// compacted by rewriting the live record set into a fresh segment.
//
// Recovery semantics are the package's contract:
//
//   - A torn tail — a final record that a crash cut short, at any byte
//     offset — is detected on Open and truncated away; everything before
//     it replays.
//   - A corrupted record in the *middle* of the log (CRC or framing
//     failure followed by more intact data) is NOT skippable: Open fails
//     loudly with ErrCorrupt, because silently dropping an interior
//     record could resurrect a finished job or lose a cancellation.
//   - Replay is idempotent by design: compaction may legitimately leave a
//     record both in an old segment and in the compacted snapshot (a
//     crash between snapshot write and old-segment removal), so consumers
//     must treat re-applied records as last-wins per job.
//
// The package knows nothing about job semantics: records carry an opaque
// op byte, a job ID and a payload, and the server layer defines what they
// mean.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Op tags a record with its lifecycle meaning. The journal itself treats
// it as opaque; the canonical values used by internal/server are defined
// here so the on-disk format has one home.
type Op uint8

// Job lifecycle record kinds, in the order they normally occur.
const (
	// OpSubmitted records an accepted job: ID, idempotency key, request.
	OpSubmitted Op = 1
	// OpStarted records a worker picking the job up.
	OpStarted Op = 2
	// OpAttempt records the start of one run attempt (retries increment).
	OpAttempt Op = 3
	// OpCheckpoint records a mid-run engine checkpoint (latest wins).
	OpCheckpoint Op = 4
	// OpDone records successful completion, with the result payload.
	OpDone Op = 5
	// OpFailed records terminal failure, with the error text.
	OpFailed Op = 6
	// OpCanceled records cancellation (explicit or rejected intake).
	OpCanceled Op = 7
)

// String names the op for logs and error messages.
func (o Op) String() string {
	switch o {
	case OpSubmitted:
		return "submitted"
	case OpStarted:
		return "started"
	case OpAttempt:
		return "attempt"
	case OpCheckpoint:
		return "checkpoint"
	case OpDone:
		return "done"
	case OpFailed:
		return "failed"
	case OpCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Record is one journal entry: an op, the job it concerns, and an opaque
// payload whose schema the op implies (the server layer owns it).
type Record struct {
	// Op is the record kind.
	Op Op
	// ID is the job the record concerns.
	ID string
	// Data is the op-specific payload; may be nil.
	Data []byte
}

// Sentinel errors distinguishing the two recovery outcomes a reader must
// treat differently: ErrCorrupt means data in the middle of the log is
// bad and replay cannot be trusted; a torn tail is not an error at all
// (Open truncates it and reports success).
var (
	// ErrCorrupt marks an interior record whose frame or CRC is invalid
	// while intact data follows it — unrecoverable without data loss, so
	// Open refuses to guess.
	ErrCorrupt = errors.New("journal: corrupt record")
	// ErrClosed is returned by operations on a closed journal.
	ErrClosed = errors.New("journal: closed")
	// ErrRecordTooLarge rejects a record whose encoded frame would exceed
	// MaxRecordBytes.
	ErrRecordTooLarge = errors.New("journal: record exceeds size limit")
)

// MaxRecordBytes bounds one encoded record frame. Checkpoint payloads for
// paper-scale circuits are a few hundred KiB; 64 MiB leaves two orders of
// magnitude of headroom while still catching garbage length prefixes.
const MaxRecordBytes = 64 << 20

// frameHeaderSize is the fixed per-record overhead: u32 payload length +
// u32 CRC-32C of the payload.
const frameHeaderSize = 8

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Journal. The zero value is usable.
type Options struct {
	// SegmentBytes rotates the active segment when it grows past this
	// size (0 = 64 MiB). Rotation happens at record boundaries only.
	SegmentBytes int64
	// NoSync skips fsync entirely — for tests that sever the log at
	// arbitrary offsets and don't want real disk flushes. Never set it in
	// production: a power loss could then lose acknowledged records.
	NoSync bool
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

// Journal is an open write-ahead log. All methods are safe for concurrent
// use.
type Journal struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File // guarded by mu; active segment
	size    int64    // guarded by mu; bytes written to the active segment
	seg     int      // guarded by mu; active segment number
	segs    []int    // guarded by mu; all live segment numbers, ascending
	depth   int      // guarded by mu; records appended or replayed since the last compaction
	closed  bool     // guarded by mu
	wbuf    []byte   // guarded by mu; frame scratch
	pending bool     // guarded by mu; bytes written since the last fsync

	// writeGen counts completed appends; syncedGen trails it. AppendSync
	// callers whose generation is already synced return without touching
	// the disk — that is the group commit.
	writeGen  uint64 // guarded by mu
	syncedGen uint64 // guarded by mu

	// syncMu serializes fsyncs so concurrent AppendSync callers coalesce:
	// the first in takes the flush, the rest find their generation
	// already durable.
	syncMu sync.Mutex
}

// segName formats a segment file name; the numeric suffix orders them.
func segName(n int) string { return fmt.Sprintf("wal-%08d.seg", n) }

// Open replays every segment in dir (creating the directory if needed),
// truncates a torn tail from the final segment, and returns the journal
// opened for append plus the replayed records in log order. A framing or
// CRC failure anywhere except the tail fails with ErrCorrupt.
func Open(dir string, opt Options) (*Journal, []Record, error) {
	opt.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var records []Record
	for i, seg := range segs {
		last := i == len(segs)-1
		recs, err := replaySegment(filepath.Join(dir, segName(seg)), last)
		if err != nil {
			return nil, nil, err
		}
		records = append(records, recs...)
	}
	seg := 1
	if len(segs) == 0 {
		segs = []int{1}
	} else {
		seg = segs[len(segs)-1]
	}
	path := filepath.Join(dir, segName(seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{dir: dir, opt: opt, seg: seg, segs: segs, depth: len(records), f: f, size: st.Size()}
	return j, records, nil
}

// listSegments returns the live segment numbers in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.seg", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// replaySegment parses one segment file. For the final segment a torn
// tail is truncated in place; for interior segments any anomaly is
// ErrCorrupt (a crash can only tear the end of the log).
func replaySegment(path string, last bool) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []Record
	off := 0
	for off < len(data) {
		rec, n, ferr := decodeFrame(data[off:])
		if ferr == nil {
			records = append(records, rec)
			off += n
			continue
		}
		if errors.Is(ferr, errTornFrame) {
			// The frame runs past EOF: only legal as the very tail of the
			// very last segment, where it is the signature of a crash
			// mid-append.
			if !last {
				return nil, fmt.Errorf("%w: %s: truncated frame at offset %d inside an interior segment", ErrCorrupt, filepath.Base(path), off)
			}
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, err
			}
			return records, nil
		}
		// Framing or CRC failure on a fully present frame. At the exact
		// tail it is indistinguishable from a torn append (the payload
		// bytes never made it); followed by more data it is interior
		// corruption.
		if last && frameEndsAtEOF(data[off:]) {
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, err
			}
			return records, nil
		}
		return nil, fmt.Errorf("%w: %s: offset %d: %v", ErrCorrupt, filepath.Base(path), off, ferr)
	}
	return records, nil
}

// frameEndsAtEOF reports whether the frame starting at buf[0] claims to
// end exactly at the end of buf — the only position where a CRC failure
// can be a torn write rather than interior corruption.
func frameEndsAtEOF(buf []byte) bool {
	if len(buf) < frameHeaderSize {
		return true
	}
	n := binary.LittleEndian.Uint32(buf)
	return n <= MaxRecordBytes && frameHeaderSize+int(n) == len(buf)
}

// errTornFrame marks a frame that runs past the end of its segment.
var errTornFrame = errors.New("frame extends past end of segment")

// decodeFrame parses one record frame from the head of buf, returning the
// record and the frame's total size.
func decodeFrame(buf []byte) (Record, int, error) {
	if len(buf) < frameHeaderSize {
		return Record{}, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("implausible payload length %d", n)
	}
	if frameHeaderSize+int(n) > len(buf) {
		return Record{}, 0, errTornFrame
	}
	want := binary.LittleEndian.Uint32(buf[4:])
	payload := buf[frameHeaderSize : frameHeaderSize+int(n)]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("CRC mismatch: stored %08x, computed %08x", want, got)
	}
	if len(payload) < 3 {
		return Record{}, 0, fmt.Errorf("payload too short (%d bytes)", len(payload))
	}
	idLen := int(binary.LittleEndian.Uint16(payload[1:3]))
	if 3+idLen > len(payload) {
		return Record{}, 0, fmt.Errorf("job-ID length %d exceeds payload", idLen)
	}
	rec := Record{
		Op:   Op(payload[0]),
		ID:   string(payload[3 : 3+idLen]),
		Data: append([]byte(nil), payload[3+idLen:]...),
	}
	return rec, frameHeaderSize + int(n), nil
}

// encodeFrame appends the record's frame to buf and returns the extended
// slice.
func encodeFrame(buf []byte, r Record) ([]byte, error) {
	payloadLen := 3 + len(r.ID) + len(r.Data)
	if payloadLen > MaxRecordBytes || len(r.ID) > 1<<16-1 {
		return nil, fmt.Errorf("%w: id %d bytes, data %d bytes", ErrRecordTooLarge, len(r.ID), len(r.Data))
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = append(buf, byte(r.Op))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.ID)))
	buf = append(buf, r.ID...)
	buf = append(buf, r.Data...)
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// Append writes records to the active segment without forcing them to
// disk; durability arrives with the next AppendSync, Sync or rotation.
// Use it for advisory records (started/attempt) whose loss a replay
// tolerates.
func (j *Journal) Append(recs ...Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recs)
}

// AppendSync writes records and returns once they are durable. Concurrent
// callers share fsyncs (group commit): whoever acquires the flush first
// covers everyone whose records were already written.
func (j *Journal) AppendSync(recs ...Record) error {
	j.mu.Lock()
	if err := j.appendLocked(recs); err != nil {
		j.mu.Unlock()
		return err
	}
	gen := j.writeGen
	j.mu.Unlock()
	return j.syncTo(gen)
}

// appendLocked encodes and writes records to the active segment, rotating
// first if the segment is full; the caller holds j.mu.
func (j *Journal) appendLocked(recs []Record) error {
	if j.closed {
		return ErrClosed
	}
	if j.size >= j.opt.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	buf := j.wbuf[:0]
	var err error
	for _, r := range recs {
		if buf, err = encodeFrame(buf, r); err != nil {
			return err
		}
	}
	j.wbuf = buf
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.size += int64(len(buf))
	j.depth += len(recs)
	j.writeGen++
	j.pending = true
	return nil
}

// rotateLocked seals the active segment (flushing it to disk) and opens
// the next one; the caller holds j.mu.
func (j *Journal) rotateLocked() error {
	if err := j.syncFileLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.seg++
	j.segs = append(j.segs, j.seg)
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.size = 0
	return nil
}

// syncFileLocked fsyncs the active segment if anything is pending; the
// caller holds j.mu.
func (j *Journal) syncFileLocked() error {
	if !j.pending || j.opt.NoSync {
		j.syncedGen = j.writeGen
		j.pending = false
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.syncedGen = j.writeGen
	j.pending = false
	return nil
}

// syncTo makes every append up to generation gen durable, coalescing with
// concurrent callers.
func (j *Journal) syncTo(gen uint64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.syncedGen >= gen {
		j.mu.Unlock()
		return nil
	}
	target := j.writeGen
	f := j.f
	noSync := j.opt.NoSync
	j.mu.Unlock()
	if !noSync {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	j.mu.Lock()
	if target > j.syncedGen {
		j.syncedGen = target
		j.pending = j.writeGen > target
	}
	j.mu.Unlock()
	return nil
}

// Sync forces everything appended so far to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	gen := j.writeGen
	j.mu.Unlock()
	return j.syncTo(gen)
}

// Depth returns the number of records accumulated since the last
// compaction (replayed records included) — the /metrics observability
// hook for journal growth.
func (j *Journal) Depth() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.depth
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Compact rewrites the journal to exactly the given live records: they
// are written to a fresh segment, synced, and every older segment is
// removed. The caller must guarantee no concurrent appends are in flight
// whose records are absent from live (internal/server compacts only at
// startup and after a clean drain). Crash-safe: the snapshot segment is
// durable before any old segment is deleted, and replay tolerates the
// resulting duplicates because server replay is last-wins per job.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.syncFileLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	old := append([]int(nil), j.segs...)
	j.seg++
	path := filepath.Join(j.dir, segName(j.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := j.wbuf[:0]
	for _, r := range live {
		if buf, err = encodeFrame(buf, r); err != nil {
			f.Close()
			return err
		}
	}
	j.wbuf = buf
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if !j.opt.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Snapshot durable: dropping the history is now safe.
	for _, seg := range old {
		if err := os.Remove(filepath.Join(j.dir, segName(seg))); err != nil {
			return err
		}
	}
	j.segs = []int{j.seg}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = af
	j.size = int64(len(buf))
	j.depth = len(live)
	j.pending = false
	j.writeGen++
	j.syncedGen = j.writeGen
	return nil
}

// Close flushes, fsyncs and closes the journal. Further operations
// return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncFileLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.closed = true
	return err
}

// Boundaries returns the byte offset of every record boundary in a
// segment file, starting with 0 and ending at the offset just past the
// final intact record. The crash-chaos harness severs the log at each of
// these (and at interior offsets) to prove recovery from any prefix.
func Boundaries(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	offs := []int64{0}
	off := 0
	for off < len(data) {
		_, n, err := decodeFrame(data[off:])
		if err != nil {
			break
		}
		off += n
		offs = append(offs, int64(off))
	}
	return offs, nil
}
