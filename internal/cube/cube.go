// Package cube models test cubes: test vectors over {0, 1, X} where X marks
// an unspecified (don't-care) position. Test cubes are the only information
// an IP-core integrator has about the core's tests, and everything the paper
// does — seed computation, window embedding, useful-segment selection —
// consumes cubes and nothing else.
//
// A cube of width W is stored as two W-bit vectors: Mask (1 = specified) and
// Value (the specified bits; zero wherever Mask is zero, an invariant the
// constructors maintain so word-level matching stays branch-free).
package cube

import (
	"fmt"
	"strings"

	"repro/internal/gf2"
)

// Cube is a single test cube. The zero value is an empty cube of width 0.
type Cube struct {
	Mask  gf2.Vec // specified-position mask
	Value gf2.Vec // specified values; Value ⊆ Mask bitwise
}

// New returns an all-X cube of the given width.
func New(width int) Cube {
	return Cube{Mask: gf2.NewVec(width), Value: gf2.NewVec(width)}
}

// Parse reads a cube from a string of '0', '1', 'x'/'X' characters
// (separators '_' and ' ' are ignored). Position 0 is the first character.
func Parse(s string) (Cube, error) {
	var mask, val []uint8
	for _, r := range s {
		switch r {
		case '0':
			mask = append(mask, 1)
			val = append(val, 0)
		case '1':
			mask = append(mask, 1)
			val = append(val, 1)
		case 'x', 'X':
			mask = append(mask, 0)
			val = append(val, 0)
		case '_', ' ':
		default:
			return Cube{}, fmt.Errorf("cube: invalid character %q", r)
		}
	}
	return Cube{Mask: gf2.FromBits(mask), Value: gf2.FromBits(val)}, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) Cube {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Width returns the cube width in bit positions.
func (c Cube) Width() int { return c.Mask.Len() }

// SpecifiedCount returns the number of specified (non-X) positions.
func (c Cube) SpecifiedCount() int { return c.Mask.PopCount() }

// Get returns the value at position i: 0, 1, or X (represented as -1).
func (c Cube) Get(i int) int {
	if c.Mask.Bit(i) == 0 {
		return -1
	}
	return int(c.Value.Bit(i))
}

// Set specifies position i to bit b.
func (c Cube) Set(i int, b uint8) {
	c.Mask.SetBit(i, 1)
	c.Value.SetBit(i, b)
}

// Unset makes position i a don't-care again.
func (c Cube) Unset(i int) {
	c.Mask.SetBit(i, 0)
	c.Value.SetBit(i, 0)
}

// Clone returns an independent copy.
func (c Cube) Clone() Cube {
	return Cube{Mask: c.Mask.Clone(), Value: c.Value.Clone()}
}

// Matches reports whether the fully specified vector v agrees with every
// specified position of the cube: (v ⊕ Value) ∧ Mask = 0. This is the inner
// loop of fortuitous-embedding analysis, so it early-exits per word.
func (c Cube) Matches(v gf2.Vec) bool {
	if v.Len() != c.Width() {
		panic(fmt.Sprintf("cube: Matches width mismatch %d != %d", v.Len(), c.Width()))
	}
	vw, mw, cw := v.Words(), c.Mask.Words(), c.Value.Words()
	for i := range vw {
		if (vw[i]^cw[i])&mw[i] != 0 {
			return false
		}
	}
	return true
}

// CompatibleWith reports whether two cubes of equal width can be merged:
// no position is specified in both with opposite values.
func (c Cube) CompatibleWith(o Cube) bool {
	if c.Width() != o.Width() {
		return false
	}
	cm, cv := c.Mask.Words(), c.Value.Words()
	om, ov := o.Mask.Words(), o.Value.Words()
	for i := range cm {
		if (cv[i]^ov[i])&cm[i]&om[i] != 0 {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible cubes. It panics if they
// conflict; check CompatibleWith first.
func (c Cube) Merge(o Cube) Cube {
	if !c.CompatibleWith(o) {
		panic("cube: merging incompatible cubes")
	}
	out := c.Clone()
	mw, vw := out.Mask.Words(), out.Value.Words()
	om, ov := o.Mask.Words(), o.Value.Words()
	for i := range mw {
		mw[i] |= om[i]
		vw[i] |= ov[i]
	}
	return out
}

// String renders the cube as 0/1/x characters.
func (c Cube) String() string {
	var sb strings.Builder
	sb.Grow(c.Width())
	for i := 0; i < c.Width(); i++ {
		switch c.Get(i) {
		case -1:
			sb.WriteByte('x')
		case 0:
			sb.WriteByte('0')
		default:
			sb.WriteByte('1')
		}
	}
	return sb.String()
}

// Specified returns the indices of all specified positions, ascending.
func (c Cube) Specified() []int { return c.Mask.Support() }

// PadTo returns a copy widened to the given width with X in the new
// positions. It panics if width is smaller than the cube width.
func (c Cube) PadTo(width int) Cube {
	if width < c.Width() {
		panic(fmt.Sprintf("cube: PadTo(%d) would truncate width %d", width, c.Width()))
	}
	out := New(width)
	copy(out.Mask.Words(), c.Mask.Words())
	copy(out.Value.Words(), c.Value.Words())
	return out
}
