package cube

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gf2"
	"repro/internal/prng"
)

func TestParseAndString(t *testing.T) {
	c := MustParse("01x_X10")
	if c.Width() != 6 {
		t.Fatalf("width = %d", c.Width())
	}
	if got := c.String(); got != "01xx10" {
		t.Errorf("String = %q", got)
	}
	if c.SpecifiedCount() != 4 {
		t.Errorf("spec = %d", c.SpecifiedCount())
	}
	if c.Get(0) != 0 || c.Get(1) != 1 || c.Get(2) != -1 {
		t.Error("Get values wrong")
	}
	if _, err := Parse("01z"); err == nil {
		t.Error("invalid char accepted")
	}
}

func TestSetUnset(t *testing.T) {
	c := New(10)
	c.Set(3, 1)
	c.Set(7, 0)
	if c.SpecifiedCount() != 2 || c.Get(3) != 1 || c.Get(7) != 0 {
		t.Error("Set failed")
	}
	c.Unset(3)
	if c.Get(3) != -1 || c.SpecifiedCount() != 1 {
		t.Error("Unset failed")
	}
	// Invariant: Value ⊆ Mask.
	for i := 0; i < 10; i++ {
		if c.Value.Bit(i) == 1 && c.Mask.Bit(i) == 0 {
			t.Fatal("Value bit outside Mask")
		}
	}
}

func TestMatches(t *testing.T) {
	c := MustParse("1x0x")
	match, _ := gf2.FromString("1101")
	if !c.Matches(match) {
		t.Error("should match")
	}
	noMatch, _ := gf2.FromString("0100")
	if c.Matches(noMatch) {
		t.Error("should not match (bit 0)")
	}
	// All-X cube matches everything.
	allX := New(4)
	if !allX.Matches(match) || !allX.Matches(noMatch) {
		t.Error("all-X cube must match everything")
	}
}

func TestCompatibleAndMerge(t *testing.T) {
	a := MustParse("1x0x")
	b := MustParse("x10x")
	if !a.CompatibleWith(b) {
		t.Fatal("compatible cubes reported incompatible")
	}
	m := a.Merge(b)
	if m.String() != "110x" {
		t.Errorf("merge = %q", m.String())
	}
	c := MustParse("0xxx")
	if a.CompatibleWith(c) {
		t.Error("conflicting cubes reported compatible")
	}
	defer func() {
		if recover() == nil {
			t.Error("Merge of incompatible cubes did not panic")
		}
	}()
	a.Merge(c)
}

func TestMergePreservesMatches(t *testing.T) {
	// Any vector matching the merge matches both parents and vice versa.
	f := func(seed uint64) bool {
		src := prng.New(seed)
		w := 40
		a, b := randomCompatiblePair(src, w)
		m := a.Merge(b)
		for trial := 0; trial < 20; trial++ {
			v := gf2.NewVec(w)
			for i := 0; i < w; i++ {
				v.SetBit(i, src.Bit())
			}
			// Force v to match m for half the trials.
			if trial%2 == 0 {
				for i := 0; i < w; i++ {
					if m.Get(i) >= 0 {
						v.SetBit(i, uint8(m.Get(i)))
					}
				}
			}
			if m.Matches(v) != (a.Matches(v) && b.Matches(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomCompatiblePair(src *prng.Source, w int) (Cube, Cube) {
	a, b := New(w), New(w)
	for i := 0; i < w; i++ {
		switch src.Intn(4) {
		case 0:
			v := src.Bit()
			a.Set(i, v)
			if src.Bit() == 1 {
				b.Set(i, v) // shared position, same value
			}
		case 1:
			b.Set(i, src.Bit())
		}
	}
	return a, b
}

func TestPadTo(t *testing.T) {
	c := MustParse("10")
	p := c.PadTo(5)
	if p.Width() != 5 || p.Get(0) != 1 || p.Get(1) != 0 || p.Get(4) != -1 {
		t.Error("PadTo wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("PadTo truncation did not panic")
		}
	}()
	c.PadTo(1)
}

func TestSetAddAndStats(t *testing.T) {
	s := NewSet(8)
	s.Add(MustParse("1xxxxxx0"))
	s.Add(MustParse("01x"))
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Cubes[1].Width() != 8 {
		t.Error("Add did not pad")
	}
	if err := s.Add(MustParse("111111111")); err == nil {
		t.Error("oversized cube accepted")
	}
	if s.MaxSpecified() != 2 {
		t.Errorf("MaxSpecified = %d", s.MaxSpecified())
	}
	if s.TotalSpecified() != 4 {
		t.Errorf("TotalSpecified = %d", s.TotalSpecified())
	}
	sum := s.Summary()
	if sum.MeanSpecified != 2.0 {
		t.Errorf("mean = %f", sum.MeanSpecified)
	}
	h := s.Histogram()
	if h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSortBySpecifiedDesc(t *testing.T) {
	s := NewSet(6)
	s.Add(MustParse("1xxxxx"))
	s.Add(MustParse("111xxx"))
	s.Add(MustParse("11xxxx"))
	s.SortBySpecifiedDesc()
	if s.Cubes[0].SpecifiedCount() != 3 || s.Cubes[2].SpecifiedCount() != 1 {
		t.Error("sort order wrong")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSet(6)
	s.Add(MustParse("1x0x10"))
	s.Add(MustParse("xxxxx1"))
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 6 || got.Len() != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range s.Cubes {
		if got.Cubes[i].String() != s.Cubes[i].String() {
			t.Errorf("cube %d: %q vs %q", i, got.Cubes[i], s.Cubes[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"width 0\n",
		"nonsense\n",
		"width 4\n1x\n",   // wrong width
		"width 4\n1xz0\n", // bad char
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	// Comments and blank lines are fine.
	ok := "# hi\n\nwidth 3\n# mid\n1x0\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Errorf("rejected valid input: %v", err)
	}
}

func TestCompactGreedy(t *testing.T) {
	s := NewSet(4)
	s.Add(MustParse("1xxx"))
	s.Add(MustParse("x1xx"))
	s.Add(MustParse("0xxx")) // conflicts with first
	c := s.CompactGreedy()
	if c.Len() != 2 {
		t.Errorf("compacted to %d cubes, want 2", c.Len())
	}
	// Compaction must preserve total match semantics: every original cube
	// must be covered by (compatible with) some compacted cube that
	// contains all its specified bits.
	for _, orig := range s.Cubes {
		covered := false
		for _, cc := range c.Cubes {
			if !orig.CompatibleWith(cc) {
				continue
			}
			all := true
			for _, pos := range orig.Specified() {
				if cc.Get(pos) != orig.Get(pos) {
					all = false
					break
				}
			}
			if all {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("cube %v lost in compaction", orig)
		}
	}
}
