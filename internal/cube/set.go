package cube

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Set is an ordered collection of equal-width test cubes — the pre-computed
// test set a core vendor ships with an IP core.
type Set struct {
	Width int
	Cubes []Cube
}

// NewSet returns an empty set of the given width.
func NewSet(width int) *Set { return &Set{Width: width} }

// Add appends a cube, padding it to the set width if needed.
func (s *Set) Add(c Cube) error {
	if c.Width() > s.Width {
		return fmt.Errorf("cube: cube width %d exceeds set width %d", c.Width(), s.Width)
	}
	if c.Width() < s.Width {
		c = c.PadTo(s.Width)
	}
	s.Cubes = append(s.Cubes, c)
	return nil
}

// Len returns the number of cubes.
func (s *Set) Len() int { return len(s.Cubes) }

// MaxSpecified returns s_max, the largest specified-bit count over all
// cubes — the quantity that lower-bounds the LFSR size in reseeding.
func (s *Set) MaxSpecified() int {
	max := 0
	for _, c := range s.Cubes {
		if n := c.SpecifiedCount(); n > max {
			max = n
		}
	}
	return max
}

// TotalSpecified returns the sum of specified bits over all cubes.
func (s *Set) TotalSpecified() int {
	total := 0
	for _, c := range s.Cubes {
		total += c.SpecifiedCount()
	}
	return total
}

// Histogram returns a map from specified-bit count to number of cubes.
func (s *Set) Histogram() map[int]int {
	h := make(map[int]int)
	for _, c := range s.Cubes {
		h[c.SpecifiedCount()]++
	}
	return h
}

// SortBySpecifiedDesc stably sorts the cubes by descending specified-bit
// count, the order in which the window-based encoding algorithm consumes
// them.
func (s *Set) SortBySpecifiedDesc() {
	sort.SliceStable(s.Cubes, func(i, j int) bool {
		return s.Cubes[i].SpecifiedCount() > s.Cubes[j].SpecifiedCount()
	})
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{Width: s.Width, Cubes: make([]Cube, len(s.Cubes))}
	for i, c := range s.Cubes {
		out.Cubes[i] = c.Clone()
	}
	return out
}

// CompactGreedy merges compatible cubes greedily (first-fit, in the current
// order) and returns the compacted set. The paper uses *uncompacted* test
// sets; this exists for the ATPG flow and for experiments on compaction
// sensitivity.
func (s *Set) CompactGreedy() *Set {
	out := NewSet(s.Width)
	for _, c := range s.Cubes {
		merged := false
		for i := range out.Cubes {
			if out.Cubes[i].CompatibleWith(c) {
				out.Cubes[i] = out.Cubes[i].Merge(c)
				merged = true
				break
			}
		}
		if !merged {
			out.Cubes = append(out.Cubes, c.Clone())
		}
	}
	return out
}

// Write serialises the set in a simple text format: a header line
// "width W" followed by one cube per line in 0/1/x characters. Lines
// starting with '#' are comments.
func (s *Set) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "width %d\n", s.Width); err != nil {
		return err
	}
	for _, c := range s.Cubes {
		if _, err := bw.WriteString(c.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var set *Set
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if set == nil {
			var w int
			if _, err := fmt.Sscanf(text, "width %d", &w); err != nil {
				return nil, fmt.Errorf("cube: line %d: expected \"width W\" header: %v", line, err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("cube: line %d: non-positive width %d", line, w)
			}
			set = NewSet(w)
			continue
		}
		c, err := Parse(text)
		if err != nil {
			return nil, fmt.Errorf("cube: line %d: %v", line, err)
		}
		if c.Width() != set.Width {
			return nil, fmt.Errorf("cube: line %d: cube width %d != set width %d", line, c.Width(), set.Width)
		}
		set.Cubes = append(set.Cubes, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if set == nil {
		return nil, fmt.Errorf("cube: empty input")
	}
	return set, nil
}

// Stats summarises a cube set for reports.
type Stats struct {
	Cubes          int
	Width          int
	MaxSpecified   int
	TotalSpecified int
	MeanSpecified  float64
}

// Summary computes Stats for the set.
func (s *Set) Summary() Stats {
	st := Stats{Cubes: len(s.Cubes), Width: s.Width, MaxSpecified: s.MaxSpecified(), TotalSpecified: s.TotalSpecified()}
	if st.Cubes > 0 {
		st.MeanSpecified = float64(st.TotalSpecified) / float64(st.Cubes)
	}
	return st
}
