package gf2

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestNewVecZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 130} {
		v := NewVec(n)
		if v.Len() != n {
			t.Errorf("NewVec(%d).Len() = %d", n, v.Len())
		}
		if !v.IsZero() {
			t.Errorf("NewVec(%d) not zero", n)
		}
		if v.PopCount() != 0 {
			t.Errorf("NewVec(%d).PopCount() = %d", n, v.PopCount())
		}
	}
}

func TestSetGetBit(t *testing.T) {
	v := NewVec(130)
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		v.SetBit(i, 1)
		if v.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.PopCount() != 7 {
		t.Errorf("PopCount = %d, want 7", v.PopCount())
	}
	v.SetBit(64, 0)
	if v.Bit(64) != 0 {
		t.Errorf("bit 64 not cleared")
	}
	if v.PopCount() != 6 {
		t.Errorf("PopCount after clear = %d, want 6", v.PopCount())
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Bit")
		}
	}()
	NewVec(10).Bit(10)
}

func TestFromStringAndString(t *testing.T) {
	v, err := FromString("1011_0001 1")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.String(), "101100011"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if v.PopCount() != 5 {
		t.Errorf("PopCount = %d, want 5", v.PopCount())
	}
	if _, err := FromString("10x1"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestXorSelfInverse(t *testing.T) {
	src := prng.New(1)
	v := randVec(src, 100)
	w := randVec(src, 100)
	orig := v.Clone()
	v.Xor(w)
	v.Xor(w)
	if !v.Equal(orig) {
		t.Error("x ^ w ^ w != x")
	}
}

func TestFirstNextSet(t *testing.T) {
	v := NewVec(200)
	if v.FirstSet() != -1 {
		t.Errorf("FirstSet of zero vec = %d", v.FirstSet())
	}
	for _, i := range []int{5, 63, 64, 190} {
		v.SetBit(i, 1)
	}
	want := []int{5, 63, 64, 190}
	var got []int
	for i := v.FirstSet(); i >= 0; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("set-bit walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("set-bit walk = %v, want %v", got, want)
		}
	}
	if v.NextSet(191) != -1 {
		t.Errorf("NextSet past last = %d, want -1", v.NextSet(191))
	}
	if v.NextSet(-5) != 5 {
		t.Errorf("NextSet(-5) = %d, want 5", v.NextSet(-5))
	}
}

func TestSupport(t *testing.T) {
	v := NewVec(70)
	v.SetBit(0, 1)
	v.SetBit(69, 1)
	s := v.Support()
	if len(s) != 2 || s[0] != 0 || s[1] != 69 {
		t.Errorf("Support = %v", s)
	}
}

func TestDotParity(t *testing.T) {
	a, _ := FromString("1101")
	b, _ := FromString("1011")
	// common set bits: 0 and 3 → parity 0
	if a.Dot(b) != 0 {
		t.Errorf("Dot = %d, want 0", a.Dot(b))
	}
	c, _ := FromString("1000")
	if a.Dot(c) != 1 {
		t.Errorf("Dot = %d, want 1", a.Dot(c))
	}
}

func TestCloneIndependence(t *testing.T) {
	v := NewVec(64)
	w := v.Clone()
	w.SetBit(3, 1)
	if v.Bit(3) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestCopyFromAndZero(t *testing.T) {
	src := prng.New(7)
	v := randVec(src, 99)
	w := NewVec(99)
	w.CopyFrom(v)
	if !w.Equal(v) {
		t.Error("CopyFrom mismatch")
	}
	w.Zero()
	if !w.IsZero() {
		t.Error("Zero failed")
	}
}

// Property: XOR is associative and commutative.
func TestXorPropertyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		a := randVec(src, 130)
		b := randVec(src, 130)
		c := randVec(src, 130)
		// (a^b)^c
		x := a.Clone()
		x.Xor(b)
		x.Xor(c)
		// a^(c^b)
		y := c.Clone()
		y.Xor(b)
		y.Xor(a)
		return x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PopCount(a^b) ≡ PopCount(a)+PopCount(b) (mod 2).
func TestPopCountXorParity(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		a := randVec(src, 200)
		b := randVec(src, 200)
		x := a.Clone()
		x.Xor(b)
		return x.PopCount()%2 == (a.PopCount()+b.PopCount())%2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(src *prng.Source, n int) Vec {
	v := NewVec(n)
	for i := range v.words {
		v.words[i] = src.Uint64()
	}
	v.maskTail()
	return v
}
