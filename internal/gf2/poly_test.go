package gf2

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestPolyBasics(t *testing.T) {
	p := NewPoly(4, 1, 0) // x^4 + x + 1
	if p.Degree() != 4 {
		t.Errorf("degree = %d", p.Degree())
	}
	if p.String() != "x^4 + x + 1" {
		t.Errorf("String = %q", p.String())
	}
	if p.Coeff(4) != 1 || p.Coeff(2) != 0 || p.Coeff(0) != 1 || p.Coeff(99) != 0 {
		t.Error("coefficients wrong")
	}
	// Repeated exponents cancel over GF(2).
	if !NewPoly(3, 3, 1).Equal(NewPoly(1)) {
		t.Error("x^3 + x^3 + x != x")
	}
	zero := NewPoly(2).Add(NewPoly(2))
	if !zero.IsZero() || zero.Degree() != -1 || zero.String() != "0" {
		t.Error("zero polynomial misbehaves")
	}
}

func TestPolyAddSelfInverse(t *testing.T) {
	f := func(a, b uint16) bool {
		p := polyFromBits(uint64(a))
		q := polyFromBits(uint64(b))
		return p.Add(q).Add(q).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func polyFromBits(bits uint64) Poly {
	var exps []int
	for i := 0; i < 64; i++ {
		if bits>>uint(i)&1 == 1 {
			exps = append(exps, i)
		}
	}
	if len(exps) == 0 {
		return NewPoly().Add(NewPoly()) // zero
	}
	return NewPoly(exps...)
}

func TestPolyMulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2 + 1 over GF(2).
	sq := NewPoly(1, 0).Mul(NewPoly(1, 0))
	if !sq.Equal(NewPoly(2, 0)) {
		t.Errorf("(x+1)^2 = %v", sq)
	}
	// (x^2+x+1)(x+1) = x^3 + 1.
	p := NewPoly(2, 1, 0).Mul(NewPoly(1, 0))
	if !p.Equal(NewPoly(3, 0)) {
		t.Errorf("got %v", p)
	}
}

func TestPolyMulCommutesAndDistributes(t *testing.T) {
	f := func(a, b, c uint16) bool {
		p, q, r := polyFromBits(uint64(a)), polyFromBits(uint64(b)), polyFromBits(uint64(c))
		if !p.Mul(q).Equal(q.Mul(p)) {
			return false
		}
		left := p.Mul(q.Add(r))
		right := p.Mul(q).Add(p.Mul(r))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolyModEuclid(t *testing.T) {
	// p mod m has degree < deg m, and p = q·m + r is verified by
	// re-multiplying: (p - r) must be divisible by m (i.e. (p+r) mod m = 0).
	src := prng.New(17)
	for trial := 0; trial < 200; trial++ {
		p := polyFromBits(src.Uint64() & 0xffffff)
		m := polyFromBits(src.Uint64()&0xffff | 0x8000) // degree 15 guaranteed
		r := p.Mod(m)
		if r.Degree() >= m.Degree() {
			t.Fatalf("remainder degree %d ≥ modulus degree %d", r.Degree(), m.Degree())
		}
		if !p.Add(r).Mod(m).IsZero() {
			t.Fatalf("p + (p mod m) not divisible by m")
		}
	}
}

func TestPolyGCDProperties(t *testing.T) {
	// gcd(p, 0) = p; gcd divides both arguments.
	p := NewPoly(5, 2, 0)
	zero := polyFromBits(0)
	if !PolyGCD(p, zero).Equal(p) {
		t.Error("gcd(p, 0) != p")
	}
	src := prng.New(23)
	for trial := 0; trial < 50; trial++ {
		a := polyFromBits(src.Uint64() & 0xfffff)
		b := polyFromBits(src.Uint64() & 0xfffff)
		if a.IsZero() || b.IsZero() {
			continue
		}
		g := PolyGCD(a, b)
		if g.IsZero() {
			t.Fatal("gcd of nonzero polys is zero")
		}
		if !a.Mod(g).IsZero() || !b.Mod(g).IsZero() {
			t.Fatalf("gcd %v does not divide %v and %v", g, a, b)
		}
	}
}

func TestIrreducibleKnownCases(t *testing.T) {
	irreducible := []Poly{
		NewPoly(1, 0),          // x + 1
		NewPoly(2, 1, 0),       // x^2 + x + 1
		NewPoly(3, 1, 0),       // x^3 + x + 1
		NewPoly(4, 1, 0),       // x^4 + x + 1
		NewPoly(8, 4, 3, 1, 0), // the AES polynomial
	}
	for _, p := range irreducible {
		if !Irreducible(p) {
			t.Errorf("%v reported reducible", p)
		}
	}
	reducible := []Poly{
		NewPoly(2, 0),       // (x+1)^2
		NewPoly(4, 3, 1, 0), // divisible by x+1 (even term count... check: 1+1+1+1=0 at x=1 → divisible)
		NewPoly(4),          // x^4
		NewPoly(5, 4, 1, 0), // has factor x+1 (even number of terms)
		NewPoly(6, 0),       // x^6+1 = (x^3+1)^2
	}
	for _, p := range reducible {
		if Irreducible(p) {
			t.Errorf("%v reported irreducible", p)
		}
	}
	if Irreducible(NewPoly(3)) { // x^3, no constant term
		t.Error("x^3 reported irreducible")
	}
}

func TestIrreducibleAgreesWithFactorCount(t *testing.T) {
	// Exhaustive check against trial division for all degree ≤ 10 polys
	// with constant term (sampling every 7th to keep the test fast).
	for bits := uint64(1); bits < 1<<11; bits += 7 {
		p := polyFromBits(bits*2 + 1) // ensure constant term
		d := p.Degree()
		if d < 2 || d > 10 {
			continue
		}
		want := true
		for fb := uint64(2); fb < 1<<uint(d); fb++ {
			f := polyFromBits(fb)
			if f.Degree() < 1 {
				continue
			}
			if p.Mod(f).IsZero() {
				want = false
				break
			}
		}
		if got := Irreducible(p); got != want {
			t.Errorf("%v: Irreducible=%v, trial division says %v", p, got, want)
		}
	}
}

func TestXPowMod2e(t *testing.T) {
	// x^(2^e) mod m computed by squaring must equal naive exponentiation.
	m := NewPoly(8, 4, 3, 1, 0)
	naive := NewPoly(1).Mod(m)
	for e := 0; e <= 6; e++ {
		got := XPowMod2e(e, m)
		if !got.Equal(naive) {
			t.Fatalf("e=%d: %v != %v", e, got, naive)
		}
		naive = naive.MulMod(naive, m)
	}
}
