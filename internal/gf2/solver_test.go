package gf2

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func eq(coeffs string, rhs uint8) Equation {
	v, err := FromString(coeffs)
	if err != nil {
		panic(err)
	}
	return Equation{Coeffs: v, RHS: rhs}
}

func TestSolverBasicConsistency(t *testing.T) {
	s := NewSolver(3)
	// a0 ^ a1 = 1
	if added, ok := s.Add(eq("110", 1)); !added || !ok {
		t.Fatal("first equation rejected")
	}
	// a1 ^ a2 = 0
	if added, ok := s.Add(eq("011", 0)); !added || !ok {
		t.Fatal("second equation rejected")
	}
	// dependent: a0 ^ a2 = 1 (sum of the two)
	if added, ok := s.Add(eq("101", 1)); added || !ok {
		t.Fatalf("dependent consistent equation mishandled: added=%v ok=%v", added, ok)
	}
	// contradictory: a0 ^ a2 = 0
	if _, ok := s.Add(eq("101", 0)); ok {
		t.Fatal("contradiction accepted")
	}
	if s.Rank() != 2 {
		t.Errorf("rank = %d, want 2", s.Rank())
	}
	sol := s.Solution(func(int) uint8 { return 0 })
	if sol.Bit(0)^sol.Bit(1) != 1 || sol.Bit(1)^sol.Bit(2) != 0 {
		t.Errorf("solution %v violates constraints", sol)
	}
}

func TestSolverSolutionSatisfies(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := 20
		s := NewSolver(n)
		// Generate a known satisfiable system: pick a hidden assignment and
		// derive equations from it.
		hidden := randVec(src, n)
		for i := 0; i < 15; i++ {
			coeffs := randVec(src, n)
			s.Add(Equation{Coeffs: coeffs, RHS: coeffs.Dot(hidden)})
		}
		sol := s.Solution(func(int) uint8 { return src.Bit() })
		return s.Satisfies(sol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolverHiddenAssignmentAlwaysConsistent(t *testing.T) {
	// Equations all derived from one hidden assignment can never contradict.
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := 24
		s := NewSolver(n)
		hidden := randVec(src, n)
		for i := 0; i < 60; i++ {
			coeffs := randVec(src, n)
			if _, ok := s.Add(Equation{Coeffs: coeffs, RHS: coeffs.Dot(hidden)}); !ok {
				return false
			}
		}
		return s.Rank() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckDoesNotMutate(t *testing.T) {
	src := prng.New(42)
	n := 16
	s := NewSolver(n)
	for i := 0; i < 8; i++ {
		coeffs := randVec(src, n)
		s.Add(Equation{Coeffs: coeffs, RHS: src.Bit()})
	}
	before := s.Clone()
	var sc CheckScratch
	for i := 0; i < 20; i++ {
		eqs := []Equation{
			{Coeffs: randVec(src, n), RHS: src.Bit()},
			{Coeffs: randVec(src, n), RHS: src.Bit()},
		}
		s.Check(eqs, &sc)
	}
	if s.Rank() != before.Rank() {
		t.Fatal("Check changed rank")
	}
	for p := 0; p < n; p++ {
		if s.occ[p] != before.occ[p] {
			t.Fatal("Check changed basis occupancy")
		}
		if s.occ[p] && (!s.row(p).Equal(before.row(p)) || s.rhs[p] != before.rhs[p]) {
			t.Fatal("Check changed basis contents")
		}
	}
}

func TestCheckAgreesWithCloneAdd(t *testing.T) {
	// Check(eqs) must report exactly what sequentially Adding to a clone does.
	f := func(seed uint64) bool {
		src := prng.New(seed)
		n := 12
		s := NewSolver(n)
		for i := 0; i < 6; i++ {
			s.Add(Equation{Coeffs: randVec(src, n), RHS: src.Bit()})
		}
		eqs := make([]Equation, 4)
		for i := range eqs {
			eqs[i] = Equation{Coeffs: randVec(src, n), RHS: src.Bit()}
		}
		var sc CheckScratch
		inc, ok := s.Check(eqs, &sc)

		clone := s.Clone()
		allOK := true
		added := 0
		for _, e := range eqs {
			a, k := clone.Add(e)
			if !k {
				allOK = false
				break
			}
			if a {
				added++
			}
		}
		if ok != allOK {
			return false
		}
		return !ok || inc == added
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddSystemAtomic(t *testing.T) {
	s := NewSolver(3)
	s.Add(eq("100", 0)) // a0 = 0
	// System where second equation contradicts (a0=1): must not commit a1.
	bad := []Equation{eq("010", 1), eq("100", 1)}
	if _, ok := s.AddSystem(bad); ok {
		t.Fatal("contradictory system accepted")
	}
	if s.Rank() != 1 {
		t.Fatalf("AddSystem not atomic: rank=%d", s.Rank())
	}
	good := []Equation{eq("010", 1), eq("001", 1)}
	inc, ok := s.AddSystem(good)
	if !ok || inc != 2 {
		t.Fatalf("good system rejected: inc=%d ok=%v", inc, ok)
	}
	sol := s.Solution(func(int) uint8 { return 1 })
	if sol.Bit(0) != 0 || sol.Bit(1) != 1 || sol.Bit(2) != 1 {
		t.Errorf("solution %v wrong", sol)
	}
}

func TestSolverReset(t *testing.T) {
	s := NewSolver(4)
	s.Add(eq("1000", 1))
	s.Reset()
	if s.Rank() != 0 || s.FreeVars() != 4 {
		t.Error("Reset incomplete")
	}
	if _, ok := s.Add(eq("1000", 0)); !ok {
		t.Error("reset solver rejects fresh equation")
	}
}

func TestSolverFullRankUniqueSolution(t *testing.T) {
	// With n independent equations the solution is unique regardless of fill.
	src := prng.New(77)
	n := 10
	var s *Solver
	var hidden Vec
	for {
		s = NewSolver(n)
		hidden = randVec(src, n)
		for i := 0; i < 40 && s.Rank() < n; i++ {
			coeffs := randVec(src, n)
			s.Add(Equation{Coeffs: coeffs, RHS: coeffs.Dot(hidden)})
		}
		if s.Rank() == n {
			break
		}
	}
	zero := s.Solution(func(int) uint8 { return 0 })
	one := s.Solution(func(int) uint8 { return 1 })
	if !zero.Equal(one) || !zero.Equal(hidden) {
		t.Error("full-rank system did not recover the hidden assignment")
	}
}

func TestSolverPivots(t *testing.T) {
	s := NewSolver(5)
	s.Add(eq("00100", 1))
	s.Add(eq("00110", 0))
	ps := s.Pivots()
	if len(ps) != 2 || ps[0] != 2 || ps[1] != 3 {
		t.Errorf("Pivots = %v", ps)
	}
}

// BenchmarkSolverCheck compares the naive per-check re-elimination against
// the reduced-basis path at the paper's register sizes (n=24 is s13207,
// n=85 is s38417, the largest). The "reduced" variant is the encoder's hot
// loop: a fixed table of rows probed repeatedly as the basis grows.
func BenchmarkSolverCheck(b *testing.B) {
	for _, n := range []int{24, 85} {
		src := prng.New(1)
		s := NewSolver(n)
		for i := 0; i < n/2; i++ {
			s.Add(Equation{Coeffs: randVec(src, n), RHS: src.Bit()})
		}
		const spec = 20
		eqs := make([]Equation, spec)
		arena := make([]uint64, 0, spec*wordsFor(n))
		idx := make([]int32, spec)
		rhs := make([]uint8, spec)
		for i := range eqs {
			eqs[i] = Equation{Coeffs: randVec(src, n), RHS: src.Bit()}
			arena = append(arena, eqs[i].Coeffs.Words()...)
			idx[i] = int32(i)
			rhs[i] = eqs[i].RHS
		}
		b.Run(fmt.Sprintf("n=%d/naive", n), func(b *testing.B) {
			b.ReportAllocs()
			var sc CheckScratch
			for i := 0; i < b.N; i++ {
				s.Check(eqs, &sc)
			}
		})
		b.Run(fmt.Sprintf("n=%d/reduced", n), func(b *testing.B) {
			b.ReportAllocs()
			rt := NewReducedTable(s, NewRowSet(n, arena))
			var sc CheckScratch
			for i := 0; i < b.N; i++ {
				rt.CheckSystem(idx, 0, rhs, &sc)
			}
		})
	}
}
