package gf2

import "fmt"

// Poly is a polynomial over GF(2), packed little-endian: bit i is the
// coefficient of x^i. The zero value is the zero polynomial.
//
// Polynomials only appear in this repository as LFSR characteristic
// polynomials; the arithmetic here exists so we can verify, offline and
// without factoring 2^n-1, that the tap tables in internal/lfsr define
// irreducible polynomials (irreducibility is what the reseeding math needs;
// the curated taps are additionally primitive per the published tables).
type Poly struct {
	bits Vec
}

// NewPoly returns a polynomial with the given exponents set, e.g.
// NewPoly(4, 1, 0) is x^4 + x + 1.
func NewPoly(exps ...int) Poly {
	max := 0
	for _, e := range exps {
		if e < 0 {
			panic(fmt.Sprintf("gf2: negative exponent %d", e))
		}
		if e > max {
			max = e
		}
	}
	v := NewVec(max + 1)
	for _, e := range exps {
		v.FlipBit(e) // repeated exponents cancel, as in GF(2)
	}
	return Poly{bits: v}
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := p.bits.Len() - 1; i >= 0; i-- {
		if p.bits.Bit(i) != 0 {
			return i
		}
	}
	return -1
}

// Coeff returns the coefficient of x^i.
func (p Poly) Coeff(i int) uint8 {
	if i < 0 || i >= p.bits.Len() {
		return 0
	}
	return p.bits.Bit(i)
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.bits.IsZero() }

// Equal reports whether p and q denote the same polynomial (lengths may
// differ; trailing zero coefficients are ignored).
func (p Poly) Equal(q Poly) bool {
	d := p.Degree()
	if d != q.Degree() {
		return false
	}
	for i := 0; i <= d; i++ {
		if p.Coeff(i) != q.Coeff(i) {
			return false
		}
	}
	return true
}

// String renders p like "x^4 + x + 1".
func (p Poly) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	s := ""
	for i := d; i >= 0; i-- {
		if p.Coeff(i) == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch i {
		case 0:
			s += "1"
		case 1:
			s += "x"
		default:
			s += fmt.Sprintf("x^%d", i)
		}
	}
	return s
}

// Add returns p + q (which over GF(2) is also p - q).
func (p Poly) Add(q Poly) Poly {
	n := p.bits.Len()
	if q.bits.Len() > n {
		n = q.bits.Len()
	}
	v := NewVec(n)
	for i := 0; i < n; i++ {
		v.SetBit(i, p.Coeff(i)^q.Coeff(i))
	}
	return Poly{bits: v}
}

// Mul returns p·q (carry-less multiplication).
func (p Poly) Mul(q Poly) Poly {
	dp, dq := p.Degree(), q.Degree()
	if dp < 0 || dq < 0 {
		return Poly{bits: NewVec(1)}
	}
	v := NewVec(dp + dq + 1)
	for i := 0; i <= dp; i++ {
		if p.Coeff(i) == 0 {
			continue
		}
		for j := 0; j <= dq; j++ {
			if q.Coeff(j) != 0 {
				v.FlipBit(i + j)
			}
		}
	}
	return Poly{bits: v}
}

// Mod returns p mod m. m must be nonzero.
func (p Poly) Mod(m Poly) Poly {
	dm := m.Degree()
	if dm < 0 {
		panic("gf2: polynomial division by zero")
	}
	r := Poly{bits: p.bits.Clone()}
	for {
		dr := r.Degree()
		if dr < dm {
			break
		}
		shift := dr - dm
		for i := 0; i <= dm; i++ {
			if m.Coeff(i) != 0 {
				r.bits.FlipBit(i + shift)
			}
		}
	}
	return r
}

// MulMod returns p·q mod m.
func (p Poly) MulMod(q, m Poly) Poly { return p.Mul(q).Mod(m) }

// GCD returns the greatest common divisor of p and q (monic by construction
// over GF(2)).
func PolyGCD(p, q Poly) Poly {
	for !q.IsZero() {
		p, q = q, p.Mod(q)
	}
	return p
}

// XPowMod returns x^(2^e) mod m by repeated squaring, the workhorse of the
// irreducibility test.
func XPowMod2e(e int, m Poly) Poly {
	r := NewPoly(1).Mod(m) // x mod m
	for i := 0; i < e; i++ {
		r = r.MulMod(r, m)
	}
	return r
}

// Irreducible reports whether p (degree n ≥ 1) is irreducible over GF(2),
// using Rabin's test: x^(2^n) ≡ x (mod p), and for every prime divisor q of
// n, gcd(x^(2^(n/q)) - x, p) = 1.
func Irreducible(p Poly) bool {
	n := p.Degree()
	if n < 1 {
		return false
	}
	if n == 1 {
		return true // x and x+1
	}
	if p.Coeff(0) == 0 {
		return false // divisible by x
	}
	x := NewPoly(1)
	// x^(2^n) mod p must equal x.
	if !XPowMod2e(n, p).Equal(x.Mod(p)) {
		return false
	}
	for _, q := range primeDivisors(n) {
		t := XPowMod2e(n/q, p).Add(x)
		g := PolyGCD(p, t)
		if g.Degree() != 0 {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var ps []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			ps = append(ps, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		ps = append(ps, n)
	}
	return ps
}
