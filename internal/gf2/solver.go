package gf2

import "fmt"

// Equation is one linear constraint over n seed variables:
// Coeffs·a = RHS, where a is the vector of variables.
//
// Coeffs is treated as read-only by the solver; callers may share one Vec
// between many equations (e.g. the precomputed symbolic output table of an
// LFSR + phase shifter).
type Equation struct {
	Coeffs Vec
	RHS    uint8
}

// Solver is an incremental Gaussian eliminator over GF(2).
//
// It maintains a basis of constraint rows in reduced row-echelon form, keyed
// by pivot column (the lowest set coefficient bit of each row). New
// constraints can be tested for consistency against the current basis
// without mutating it (Check/ReducedTable.CheckSystem) or folded in
// permanently (Add/AddSystem).
//
// The basis lives in one contiguous word arena (row p at word offset
// p·words) with a pivot-column mask, so hot reductions jump straight to
// pivot hits instead of walking every set bit of a dense row. Reset bumps
// a generation counter; together with the mask it lets attached
// ReducedTables catch lazily reduced rows up to the current basis without
// re-eliminating from scratch.
//
// This is the engine behind LFSR reseeding: each specified bit of a test
// cube contributes one Equation relating the LFSR seed variables, and a cube
// is encodable at a window position iff the resulting system is consistent
// with everything already committed to the seed.
type Solver struct {
	n     int
	words int
	basis []uint64 // n rows × words; row p at [p*words : (p+1)*words]
	occ   []bool   // occ[p]: basis row with pivot p present
	rhs   []uint8  // rhs[p] is the right-hand side of row p
	rank  int
	piv   Vec    // mask of occupied pivot columns, for masked elimination
	order []int  // pivots in insertion order — the epoch log for ReducedTable
	gen   uint32 // bumped by Reset so ReducedTable caches invalidate lazily

	scratch Vec // reusable reduction buffer for Add
}

// NewSolver returns an empty solver over n variables.
func NewSolver(n int) *Solver {
	if n <= 0 {
		panic(fmt.Sprintf("gf2: solver needs at least one variable, got %d", n))
	}
	w := wordsFor(n)
	return &Solver{
		n:       n,
		words:   w,
		basis:   make([]uint64, n*w),
		occ:     make([]bool, n),
		rhs:     make([]uint8, n),
		piv:     NewVec(n),
		gen:     1,
		scratch: NewVec(n),
	}
}

// N returns the number of variables.
func (s *Solver) N() int { return s.n }

// Rank returns the number of independent constraints committed so far.
func (s *Solver) Rank() int { return s.rank }

// FreeVars returns the number of still-unconstrained dimensions (n - rank).
func (s *Solver) FreeVars() int { return s.n - s.rank }

// row returns the arena-backed view of the basis row with pivot p. Valid
// only when occ[p].
func (s *Solver) row(p int) Vec {
	return VecView(s.n, s.basis[p*s.words:(p+1)*s.words])
}

// Clone returns an independent deep copy of the solver. ReducedTables
// attached to the original do not follow the clone.
func (s *Solver) Clone() *Solver {
	c := &Solver{
		n:       s.n,
		words:   s.words,
		basis:   append([]uint64(nil), s.basis...),
		occ:     append([]bool(nil), s.occ...),
		rhs:     append([]uint8(nil), s.rhs...),
		rank:    s.rank,
		piv:     s.piv.Clone(),
		order:   append([]int(nil), s.order...),
		gen:     s.gen,
		scratch: NewVec(s.n),
	}
	return c
}

// Reset discards all constraints. Attached ReducedTables notice through the
// generation counter and refresh their cached rows lazily.
func (s *Solver) Reset() {
	for i := range s.occ {
		s.occ[i] = false
		s.rhs[i] = 0
	}
	s.rank = 0
	s.piv.Zero()
	s.order = s.order[:0]
	s.gen++
}

// reduceInto copies eq into dst (which must be an n-bit scratch vector) and
// reduces it against the basis. It returns the reduced RHS. After the call,
// dst holds the reduced coefficients; if dst is zero the equation is
// dependent (consistent iff returned rhs is 0), otherwise dst.FirstSet() is
// a fresh pivot.
func (s *Solver) reduceInto(dst Vec, eq Equation) uint8 {
	dst.CopyFrom(eq.Coeffs)
	r := eq.RHS & 1
	// Masked elimination: jump straight to the pivot hits. Every basis row
	// has its pivot as lowest set bit and no other pivot bits (RREF), so
	// each XOR clears exactly one hit and the loop runs once per hit.
	for b := dst.FirstSetAnd(s.piv); b >= 0; b = dst.FirstSetAnd(s.piv) {
		dst.Xor(s.row(b))
		r ^= s.rhs[b]
	}
	return r
}

// Add folds one equation into the basis. It returns (added, consistent):
// added is true when the equation was independent and increased the rank;
// consistent is false when the equation contradicts the basis (in which
// case the basis is left unchanged).
func (s *Solver) Add(eq Equation) (added, consistent bool) {
	r := s.reduceInto(s.scratch, eq)
	if s.scratch.IsZero() {
		return false, r == 0
	}
	p := s.scratch.FirstSet()
	// Keep reduced row-echelon form: clear the new pivot from all existing
	// rows so Solution extraction stays a single pass.
	for _, q := range s.order {
		if row := s.row(q); row.Bit(p) != 0 {
			row.Xor(s.scratch)
			s.rhs[q] ^= r
		}
	}
	s.row(p).CopyFrom(s.scratch)
	s.occ[p] = true
	s.piv.SetBit(p, 1)
	s.rhs[p] = r
	s.rank++
	s.order = append(s.order, p)
	return true, true
}

// AddSystem folds a set of equations in atomically: either all equations
// are consistent (some may be dependent) and the basis absorbs them,
// returning (rankIncrease, true) — or the system contradicts the basis and
// the basis is left untouched, returning (0, false).
func (s *Solver) AddSystem(eqs []Equation) (rankIncrease int, consistent bool) {
	var sc CheckScratch
	inc, ok := s.Check(eqs, &sc)
	if !ok {
		return 0, false
	}
	for _, eq := range eqs {
		if _, ok := s.Add(eq); !ok {
			// Cannot happen: Check just validated the whole system.
			panic("gf2: AddSystem inconsistency after successful Check")
		}
	}
	return inc, true
}

// CheckScratch holds reusable buffers for Check so that hot candidate scans
// allocate nothing after warm-up. A CheckScratch must not be shared between
// goroutines; give each worker its own.
type CheckScratch struct {
	overlay     []Vec   // overlay rows keyed by pivot, lazily sized to n
	overlayRHS  []uint8 // RHS of overlay rows
	overlaySet  []int   // pivots currently occupied in overlay
	overlayMask Vec     // mask of occupied overlay pivots
	rowPool     []Vec   // recycled n-bit vectors
	rowPoolNext int
}

func (sc *CheckScratch) init(n int) {
	if len(sc.overlay) < n {
		sc.overlay = make([]Vec, n)
		sc.overlayRHS = make([]uint8, n)
	}
	if sc.overlayMask.Len() != n {
		sc.overlayMask = NewVec(n)
	}
	sc.overlaySet = sc.overlaySet[:0]
	sc.rowPoolNext = 0
}

// release clears the overlay occupancy left by one Check/CheckSystem pass.
func (sc *CheckScratch) release() {
	for _, p := range sc.overlaySet {
		sc.overlay[p] = Vec{}
		sc.overlayMask.SetBit(p, 0)
	}
}

func (sc *CheckScratch) getRow(n int) Vec {
	if sc.rowPoolNext < len(sc.rowPool) {
		v := sc.rowPool[sc.rowPoolNext]
		sc.rowPoolNext++
		v.Zero()
		return v
	}
	v := NewVec(n)
	sc.rowPool = append(sc.rowPool, v)
	sc.rowPoolNext = len(sc.rowPool)
	return v
}

// Check tests whether the system eqs is consistent with the basis without
// mutating the basis. It returns the rank increase the system would cause
// and whether it is consistent. Equations within eqs may depend on each
// other; the overlay in scratch tracks that.
//
// Check re-eliminates every equation against the full basis; when the
// coefficient rows come from a fixed table that is probed repeatedly as the
// basis grows (the encoder's candidate scan), ReducedTable.CheckSystem does
// the same test in O(spec) by caching reduced rows.
func (s *Solver) Check(eqs []Equation, scratch *CheckScratch) (rankIncrease int, consistent bool) {
	scratch.init(s.n)
	defer scratch.release()
	for _, eq := range eqs {
		dst := scratch.getRow(s.n)
		dst.CopyFrom(eq.Coeffs)
		r := eq.RHS & 1
		// Reduce against the basis, then the overlay. Two phases suffice:
		// overlay rows are stored fully reduced, so XORing them never
		// reintroduces a basis-pivot bit.
		for b := dst.FirstSetAnd(s.piv); b >= 0; b = dst.FirstSetAnd(s.piv) {
			dst.Xor(s.row(b))
			r ^= s.rhs[b]
		}
		for b := dst.FirstSetAnd(scratch.overlayMask); b >= 0; b = dst.FirstSetAnd(scratch.overlayMask) {
			dst.Xor(scratch.overlay[b])
			r ^= scratch.overlayRHS[b]
		}
		if dst.IsZero() {
			if r != 0 {
				return 0, false
			}
			scratch.rowPoolNext-- // recycle immediately
			continue
		}
		p := dst.FirstSet()
		scratch.overlay[p] = dst
		scratch.overlayRHS[p] = r
		scratch.overlayMask.SetBit(p, 1)
		scratch.overlaySet = append(scratch.overlaySet, p)
	}
	return len(scratch.overlaySet), true
}

// Solution produces one full assignment of the n variables satisfying every
// committed constraint. Free variables are assigned by fillFree (called with
// the variable index); pass a deterministic PRNG-backed function for
// reproducible pseudorandom fill, or func(int) uint8 { return 0 } for the
// minimal solution.
func (s *Solver) Solution(fillFree func(varIdx int) uint8) Vec {
	sol := NewVec(s.n)
	// Assign free variables first.
	for i := 0; i < s.n; i++ {
		if !s.occ[i] {
			sol.SetBit(i, fillFree(i)&1)
		}
	}
	// Pivot variables follow directly from the RREF rows:
	// row = pivot + Σ free terms, so a_p = rhs ⊕ Σ a_free.
	for p := 0; p < s.n; p++ {
		if !s.occ[p] {
			continue
		}
		row := s.row(p)
		v := s.rhs[p]
		for b := row.NextSet(p + 1); b >= 0; b = row.NextSet(b + 1) {
			v ^= sol.Bit(b)
		}
		sol.SetBit(p, v)
	}
	return sol
}

// Satisfies reports whether the assignment sol satisfies every committed
// constraint. Primarily a verification hook for tests.
func (s *Solver) Satisfies(sol Vec) bool {
	if sol.Len() != s.n {
		return false
	}
	for p := 0; p < s.n; p++ {
		if !s.occ[p] {
			continue
		}
		if s.row(p).Dot(sol) != s.rhs[p] {
			return false
		}
	}
	return true
}

// Pivots returns the pivot columns currently in the basis, ascending.
func (s *Solver) Pivots() []int {
	ps := make([]int, 0, s.rank)
	for p := 0; p < s.n; p++ {
		if s.occ[p] {
			ps = append(ps, p)
		}
	}
	return ps
}
