package gf2

import (
	"testing"

	"repro/internal/prng"
)

// denseEliminator is the kept naive reference for the incremental solver: a
// plain dense Gaussian eliminator that re-reduces the entire committed
// system from scratch on every query. No RREF maintenance, no pivot
// indexing, no overlay, no caching — just triangular elimination in input
// order, so any bookkeeping bug in Solver/ReducedTable diverges from it.
type denseEliminator struct {
	n         int
	committed []Equation
}

// eliminate runs forward elimination over eqs and returns the rank and
// whether the system is consistent.
func (d *denseEliminator) eliminate(eqs []Equation) (rank int, consistent bool) {
	var rows []Vec
	var rhs []uint8
	for _, eq := range eqs {
		v := eq.Coeffs.Clone()
		r := eq.RHS & 1
		for i, row := range rows {
			p := row.FirstSet()
			if v.Bit(p) != 0 {
				v.Xor(row)
				r ^= rhs[i]
			}
		}
		if v.IsZero() {
			if r != 0 {
				return rank, false
			}
			continue
		}
		rows = append(rows, v)
		rhs = append(rhs, r)
		rank++
	}
	return rank, true
}

// check reports what committing sys on top of the committed equations would
// do: the rank increase and the consistency verdict.
func (d *denseEliminator) check(sys []Equation) (rankInc int, consistent bool) {
	base, ok := d.eliminate(d.committed)
	if !ok {
		panic("gf2: dense reference holds an inconsistent committed system")
	}
	all, ok := d.eliminate(append(append([]Equation(nil), d.committed...), sys...))
	if !ok {
		return 0, false // rank increase is only defined for consistent systems
	}
	return all - base, true
}

// satisfies evaluates every committed equation directly against sol.
func (d *denseEliminator) satisfies(sol Vec) bool {
	for _, eq := range d.committed {
		if eq.Coeffs.Dot(sol) != eq.RHS&1 {
			return false
		}
	}
	return true
}

// FuzzSolver cross-checks the incremental solver and its reduced-basis
// candidate path against the dense reference: for fuzzed row tables and
// adversarial check/commit/reset interleavings, the consistency verdict,
// the rank increase and the produced solution must all agree.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{11, 7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{1, 1, 0, 0, 9, 9, 9, 9, 200, 200, 1, 2, 3})
	f.Add([]byte{32, 24, 250, 249, 248, 5, 0, 17, 33, 65, 129, 255, 7, 7, 7, 120, 64, 32})
	f.Add([]byte{90, 16, 4, 4, 4, 4, 9, 9, 9, 9, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 11 {
			return
		}
		// n spans both register classes the encoder specialises for:
		// single-word (n ≤ 64) and two-word (65–96) rows.
		n := 1 + int(data[0])%96
		count := 1 + int(data[1])%24
		var seed uint64
		for _, b := range data[2:10] {
			seed = seed<<8 | uint64(b)
		}
		ops := data[10:]
		src := prng.New(seed)

		// The shared row table, as one arena (mirroring the encoder's
		// symbolic ExprTable).
		arena := make([]uint64, count*wordsFor(n))
		rs := NewRowSet(n, arena)
		eqs := make([]Equation, count)
		for i := range eqs {
			row := rs.Row(i)
			for b := 0; b < n; b++ {
				row.SetBit(b, src.Bit())
			}
			eqs[i] = Equation{Coeffs: row, RHS: src.Bit()}
		}

		s := NewSolver(n)
		rt := NewReducedTable(s, rs)
		ref := &denseEliminator{n: n}
		var scN, scR CheckScratch

		pos := 0
		next := func() byte {
			if pos >= len(ops) {
				pos = 0 // cycle; op streams shorter than the walk just repeat
			}
			b := ops[pos]
			pos++
			return b
		}
		steps := 4 + len(ops)
		if steps > 80 {
			steps = 80
		}
		for step := 0; step < steps; step++ {
			op := next()
			if op%16 == 0 {
				s.Reset()
				ref.committed = ref.committed[:0]
				continue
			}
			// Pick a subsystem by row index; duplicates are allowed and must
			// be handled identically by every engine.
			k := 1 + int(next())%6
			idx := make([]int32, k)
			rhs := make([]uint8, k)
			sys := make([]Equation, k)
			for i := 0; i < k; i++ {
				ri := int(next()) % count
				idx[i] = int32(ri)
				rhs[i] = eqs[ri].RHS
				sys[i] = eqs[ri]
			}
			wantInc, wantOK := ref.check(sys)
			gotInc, gotOK := s.Check(sys, &scN)
			if gotInc != wantInc || gotOK != wantOK {
				t.Fatalf("step %d: Check (%d,%v) != dense (%d,%v)", step, gotInc, gotOK, wantInc, wantOK)
			}
			redInc, redOK := rt.CheckSystem(idx, 0, rhs, &scR)
			if redInc != wantInc || redOK != wantOK {
				t.Fatalf("step %d: CheckSystem (%d,%v) != dense (%d,%v)", step, redInc, redOK, wantInc, wantOK)
			}
			if wantOK && op%4 == 1 {
				inc, ok := s.AddSystem(sys)
				if !ok || inc != wantInc {
					t.Fatalf("step %d: AddSystem (%d,%v) after Check said (%d,true)", step, inc, ok, wantInc)
				}
				ref.committed = append(ref.committed, sys...)
				wantRank, _ := ref.eliminate(ref.committed)
				if s.Rank() != wantRank {
					t.Fatalf("step %d: rank %d != dense %d", step, s.Rank(), wantRank)
				}
			}
		}
		sol := s.Solution(func(int) uint8 { return src.Bit() })
		if !s.Satisfies(sol) {
			t.Fatal("solution violates the solver's own basis")
		}
		if !ref.satisfies(sol) {
			t.Fatal("solution violates the dense reference's committed equations")
		}
	})
}
