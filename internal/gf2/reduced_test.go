package gf2

import (
	"testing"

	"repro/internal/prng"
)

// randRowSet builds a RowSet of count random n-bit rows plus matching
// Equation values over the same backing words.
func randRowSet(src *prng.Source, n, count int) (RowSet, []Equation) {
	w := wordsFor(n)
	arena := make([]uint64, count*w)
	rs := NewRowSet(n, arena)
	eqs := make([]Equation, count)
	for i := 0; i < count; i++ {
		row := rs.Row(i)
		for b := 0; b < n; b++ {
			row.SetBit(b, src.Bit())
		}
		eqs[i] = Equation{Coeffs: row, RHS: src.Bit()}
	}
	return rs, eqs
}

// TestCheckSystemAgreesWithCheck drives a solver through interleaved
// commits, resets and checks and asserts that ReducedTable.CheckSystem
// returns exactly what the naive Solver.Check returns for the same rows —
// including after multi-epoch catch-ups (rows left stale over several
// basis additions) and across generations.
func TestCheckSystemAgreesWithCheck(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		src := prng.New(seed*2718 + 1)
		n := 5 + src.Intn(80)
		count := 4 + src.Intn(40)
		rs, eqs := randRowSet(src, n, count)
		s := NewSolver(n)
		rt := NewReducedTable(s, rs)
		var scN, scR CheckScratch
		for step := 0; step < 60; step++ {
			switch src.Intn(10) {
			case 0: // reset: new seed computation begins
				s.Reset()
			case 1, 2: // commit a random row directly (ReducedTable not told)
				s.Add(eqs[src.Intn(count)])
			default: // check a random subsystem both ways
				k := 1 + src.Intn(6)
				idx := make([]int32, k)
				rhs := make([]uint8, k)
				sys := make([]Equation, k)
				for i := 0; i < k; i++ {
					ri := src.Intn(count)
					idx[i] = int32(ri)
					rhs[i] = eqs[ri].RHS
					sys[i] = eqs[ri]
				}
				wantInc, wantOK := s.Check(sys, &scN)
				gotInc, gotOK := rt.CheckSystem(idx, 0, rhs, &scR)
				if wantInc != gotInc || wantOK != gotOK {
					t.Fatalf("seed %d step %d: CheckSystem (%d,%v) != Check (%d,%v)",
						seed, step, gotInc, gotOK, wantInc, wantOK)
				}
			}
		}
	}
}

// TestResidualMatchesFreshReduction pins the cached residual and folded RHS
// against reducing the source row from scratch.
func TestResidualMatchesFreshReduction(t *testing.T) {
	src := prng.New(99)
	n := 40
	rs, _ := randRowSet(src, n, 25)
	s := NewSolver(n)
	rt := NewReducedTable(s, rs)
	fresh := NewVec(n)
	for step := 0; step < 40; step++ {
		s.Add(Equation{Coeffs: randVec(src, n), RHS: src.Bit()})
		// Touch a few rows; leave the rest stale for later multi-epoch catch-up.
		for j := 0; j < 3; j++ {
			i := src.Intn(25)
			got, delta := rt.Residual(i)
			wantDelta := s.reduceInto(fresh, Equation{Coeffs: rs.Row(i), RHS: 0})
			if !got.Equal(fresh) {
				t.Fatalf("step %d row %d: residual mismatch\n got %v\nwant %v", step, i, got, fresh)
			}
			// delta is defined by: equation (row, rhs) reduces to RHS rhs ⊕ delta.
			if delta != wantDelta {
				t.Fatalf("step %d row %d: delta %d, want %d", step, i, delta, wantDelta)
			}
		}
	}
}

// TestCheckSystemOffset checks the index-offset addressing used by the
// encoder's per-position probes.
func TestCheckSystemOffset(t *testing.T) {
	src := prng.New(7)
	n := 16
	rs, eqs := randRowSet(src, n, 12)
	s := NewSolver(n)
	s.Add(eqs[0])
	rt := NewReducedTable(s, rs)
	var sc CheckScratch
	for off := int32(0); off < 8; off++ {
		idx := []int32{0, 1, 2, 3}
		rhs := []uint8{eqs[off].RHS, eqs[off+1].RHS, eqs[off+2].RHS, eqs[off+3].RHS}
		sys := []Equation{eqs[off], eqs[off+1], eqs[off+2], eqs[off+3]}
		var scN CheckScratch
		wantInc, wantOK := s.Check(sys, &scN)
		gotInc, gotOK := rt.CheckSystem(idx, off, rhs, &sc)
		if wantInc != gotInc || wantOK != gotOK {
			t.Fatalf("offset %d: (%d,%v) != (%d,%v)", off, gotInc, gotOK, wantInc, wantOK)
		}
	}
}

func TestRowSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged arena accepted")
		}
	}()
	NewRowSet(65, make([]uint64, 3)) // 65 bits → 2 words per row; 3 is ragged
}
