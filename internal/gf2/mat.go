package gf2

import (
	"fmt"
	"strings"
)

// Mat is a dense matrix over GF(2), stored as a slice of row vectors.
// All rows have the same length (the column count).
type Mat struct {
	rows []Vec
	cols int
}

// NewMat returns an all-zero r×c matrix.
func NewMat(r, c int) Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("gf2: negative matrix dimensions %d×%d", r, c))
	}
	m := Mat{rows: make([]Vec, r), cols: c}
	for i := range m.rows {
		m.rows[i] = NewVec(c)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.rows[i].SetBit(i, 1)
	}
	return m
}

// MatFromRows builds a matrix whose rows are clones of the given vectors,
// which must all have equal length.
func MatFromRows(rows []Vec) Mat {
	if len(rows) == 0 {
		return Mat{}
	}
	c := rows[0].Len()
	m := Mat{rows: make([]Vec, len(rows)), cols: c}
	for i, r := range rows {
		if r.Len() != c {
			panic(fmt.Sprintf("gf2: ragged rows: row %d has %d cols, want %d", i, r.Len(), c))
		}
		m.rows[i] = r.Clone()
	}
	return m
}

// Rows returns the number of rows.
func (m Mat) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m Mat) Cols() int { return m.cols }

// Row returns row i. The vector shares storage with the matrix.
func (m Mat) Row(i int) Vec { return m.rows[i] }

// At returns element (i, j).
func (m Mat) At(i, j int) uint8 { return m.rows[i].Bit(j) }

// Set sets element (i, j) to b&1.
func (m Mat) Set(i, j int, b uint8) { m.rows[i].SetBit(j, b) }

// Clone returns a deep copy of m.
func (m Mat) Clone() Mat {
	c := Mat{rows: make([]Vec, len(m.rows)), cols: m.cols}
	for i, r := range m.rows {
		c.rows[i] = r.Clone()
	}
	return c
}

// Equal reports whether m and o have the same dimensions and contents.
func (m Mat) Equal(o Mat) bool {
	if len(m.rows) != len(o.rows) || m.cols != o.cols {
		return false
	}
	for i := range m.rows {
		if !m.rows[i].Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

// MulVec computes m·v where v is a column vector (v.Len() == m.Cols()).
// The result has m.Rows() bits.
func (m Mat) MulVec(v Vec) Vec {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: MulVec dimension mismatch: %d cols × %d vec", m.cols, v.Len()))
	}
	out := NewVec(len(m.rows))
	for i, r := range m.rows {
		out.SetBit(i, r.Dot(v))
	}
	return out
}

// Mul computes the matrix product m·o. m.Cols() must equal o.Rows().
//
// The product is computed row-by-row: row i of the result is the XOR of the
// rows of o selected by the set bits of row i of m, which is word-parallel
// and fast for the small (n ≤ 128) matrices this repository uses.
func (m Mat) Mul(o Mat) Mat {
	if m.cols != len(o.rows) {
		panic(fmt.Sprintf("gf2: Mul dimension mismatch: %d×%d by %d×%d", len(m.rows), m.cols, len(o.rows), o.cols))
	}
	out := NewMat(len(m.rows), o.cols)
	for i, r := range m.rows {
		dst := out.rows[i]
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			dst.Xor(o.rows[j])
		}
	}
	return out
}

// Pow computes m^e for e ≥ 0 by binary exponentiation. m must be square.
// Pow(0) is the identity.
func (m Mat) Pow(e uint64) Mat {
	if len(m.rows) != m.cols {
		panic(fmt.Sprintf("gf2: Pow of non-square %d×%d matrix", len(m.rows), m.cols))
	}
	result := Identity(m.cols)
	base := m.Clone()
	for e > 0 {
		if e&1 != 0 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		e >>= 1
	}
	return result
}

// Transpose returns mᵀ.
func (m Mat) Transpose() Mat {
	t := NewMat(m.cols, len(m.rows))
	for i, r := range m.rows {
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			t.rows[j].SetBit(i, 1)
		}
	}
	return t
}

// Rank returns the rank of m. The computation works on a copy.
func (m Mat) Rank() int {
	work := m.Clone()
	rank := 0
	for col := 0; col < work.cols && rank < len(work.rows); col++ {
		pivot := -1
		for i := rank; i < len(work.rows); i++ {
			if work.rows[i].Bit(col) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.rows[rank], work.rows[pivot] = work.rows[pivot], work.rows[rank]
		for i := 0; i < len(work.rows); i++ {
			if i != rank && work.rows[i].Bit(col) != 0 {
				work.rows[i].Xor(work.rows[rank])
			}
		}
		rank++
	}
	return rank
}

// Inverse returns the inverse of a square matrix and true, or a zero matrix
// and false if m is singular.
func (m Mat) Inverse() (Mat, bool) {
	n := len(m.rows)
	if n != m.cols {
		panic(fmt.Sprintf("gf2: Inverse of non-square %d×%d matrix", n, m.cols))
	}
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for i := col; i < n; i++ {
			if work.rows[i].Bit(col) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			return Mat{}, false
		}
		work.rows[col], work.rows[pivot] = work.rows[pivot], work.rows[col]
		inv.rows[col], inv.rows[pivot] = inv.rows[pivot], inv.rows[col]
		for i := 0; i < n; i++ {
			if i != col && work.rows[i].Bit(col) != 0 {
				work.rows[i].Xor(work.rows[col])
				inv.rows[i].Xor(inv.rows[col])
			}
		}
	}
	return inv, true
}

// IsIdentity reports whether m is a square identity matrix.
func (m Mat) IsIdentity() bool {
	if len(m.rows) != m.cols {
		return false
	}
	for i, r := range m.rows {
		if r.PopCount() != 1 || r.Bit(i) != 1 {
			return false
		}
	}
	return true
}

// String renders the matrix one row per line.
func (m Mat) String() string {
	var sb strings.Builder
	for i, r := range m.rows {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
