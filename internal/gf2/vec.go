// Package gf2 provides linear algebra over GF(2), the two-element field.
//
// Everything in this repository — LFSR state evolution, phase-shifter
// outputs, seed computation, State Skip circuit derivation — reduces to
// arithmetic on bit vectors and bit matrices over GF(2). Vectors are packed
// 64 bits per word; all hot operations are word-parallel.
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Vec is a bit vector over GF(2) with a fixed length in bits.
// The zero value is an empty vector; use NewVec to create a sized one.
type Vec struct {
	n     int // length in bits
	words []uint64
}

// NewVec returns an all-zero vector of n bits. It panics if n is negative.
func NewVec(n int) Vec {
	if n < 0 {
		panic(fmt.Sprintf("gf2: negative vector length %d", n))
	}
	return Vec{n: n, words: make([]uint64, wordsFor(n))}
}

// VecView wraps an existing word slice as an n-bit vector without copying.
// The caller must guarantee len(words) == (n+63)/64 and that any bits above
// n in the last word are zero. Large precomputed tables (e.g. the symbolic
// output expressions of an LFSR window) use views into one arena to avoid
// per-vector allocation overhead.
func VecView(n int, words []uint64) Vec {
	if len(words) != wordsFor(n) {
		panic(fmt.Sprintf("gf2: VecView of %d bits needs %d words, got %d", n, wordsFor(n), len(words)))
	}
	return Vec{n: n, words: words}
}

// FromBits builds a vector from a slice of bits (0 or 1), bit i of the
// result being bitsIn[i].
func FromBits(bitsIn []uint8) Vec {
	v := NewVec(len(bitsIn))
	for i, b := range bitsIn {
		if b != 0 {
			v.SetBit(i, 1)
		}
	}
	return v
}

// FromString parses a string of '0', '1' and separators ('_' and spaces are
// ignored). Bit 0 of the result is the first character.
func FromString(s string) (Vec, error) {
	clean := make([]uint8, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			clean = append(clean, 0)
		case '1':
			clean = append(clean, 1)
		case '_', ' ':
		default:
			return Vec{}, fmt.Errorf("gf2: invalid character %q in vector literal", r)
		}
	}
	return FromBits(clean), nil
}

// Len returns the length of the vector in bits.
func (v Vec) Len() int { return v.n }

// Words exposes the backing words (least-significant word first). The slice
// must not be resized by the caller; it is shared, not copied.
func (v Vec) Words() []uint64 { return v.words }

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (v Vec) Bit(i int) uint8 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	return uint8(v.words[i/wordBits] >> (uint(i) % wordBits) & 1)
}

// SetBit sets bit i to b&1. It panics if i is out of range.
func (v Vec) SetBit(i int, b uint8) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) % wordBits)
	if b&1 != 0 {
		v.words[i/wordBits] |= mask
	} else {
		v.words[i/wordBits] &^= mask
	}
}

// FlipBit toggles bit i.
func (v Vec) FlipBit(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: bit index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] ^= uint64(1) << (uint(i) % wordBits)
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of src. The lengths must match.
func (v Vec) CopyFrom(src Vec) {
	if v.n != src.n {
		panic(fmt.Sprintf("gf2: CopyFrom length mismatch %d != %d", v.n, src.n))
	}
	copy(v.words, src.words)
}

// Zero clears all bits of v in place.
func (v Vec) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Xor sets v ^= w in place. The lengths must match.
func (v Vec) Xor(w Vec) {
	if v.n != w.n {
		panic(fmt.Sprintf("gf2: Xor length mismatch %d != %d", v.n, w.n))
	}
	for i, ww := range w.words {
		v.words[i] ^= ww
	}
}

// And sets v &= w in place. The lengths must match.
func (v Vec) And(w Vec) {
	if v.n != w.n {
		panic(fmt.Sprintf("gf2: And length mismatch %d != %d", v.n, w.n))
	}
	for i, ww := range w.words {
		v.words[i] &= ww
	}
}

// IsZero reports whether every bit of v is zero.
func (v Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have identical length and contents.
func (v Vec) Equal(w Vec) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// FirstSet returns the index of the lowest set bit, or -1 if v is zero.
func (v Vec) FirstSet() int {
	for i, w := range v.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextSet returns the index of the lowest set bit at or after from,
// or -1 if there is none.
func (v Vec) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	wi := from / wordBits
	w := v.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i := wi + 1; i < len(v.words); i++ {
		if v.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(v.words[i])
		}
	}
	return -1
}

// FirstSetAnd returns the index of the lowest bit set in both v and mask,
// or -1 if the intersection is empty. The lengths must match. Elimination
// loops use it to jump straight to pivot hits instead of walking every set
// bit of a dense row.
func (v Vec) FirstSetAnd(mask Vec) int {
	if v.n != mask.n {
		panic(fmt.Sprintf("gf2: FirstSetAnd length mismatch %d != %d", v.n, mask.n))
	}
	for i, w := range v.words {
		if x := w & mask.words[i]; x != 0 {
			return i*wordBits + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// Dot returns the GF(2) inner product of v and w (parity of the AND).
func (v Vec) Dot(w Vec) uint8 {
	if v.n != w.n {
		panic(fmt.Sprintf("gf2: Dot length mismatch %d != %d", v.n, w.n))
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & w.words[i]
	}
	return uint8(bits.OnesCount64(acc) & 1)
}

// String renders the vector as a bit string, bit 0 first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) != 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Support returns the indices of all set bits in ascending order.
func (v Vec) Support() []int {
	idx := make([]int, 0, v.PopCount())
	for i := v.FirstSet(); i >= 0; i = v.NextSet(i + 1) {
		idx = append(idx, i)
	}
	return idx
}

// maskTail clears any bits above n in the last word. Internal helpers that
// write whole words call this to maintain the invariant that unused high
// bits are zero (Equal, IsZero and PopCount rely on it).
func (v Vec) maskTail() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (uint64(1) << (uint(v.n) % wordBits)) - 1
	}
}
