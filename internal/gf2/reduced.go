package gf2

import (
	"fmt"
	"math/bits"
)

// RowSet is a read-only set of equal-width coefficient rows backed by one
// contiguous word arena: row i occupies arena words [i·words, (i+1)·words).
// Symbolic expression tables (one row per decompressor output slot) hand
// their arena to a RowSet so solvers can address equations by row index
// instead of materialised Equation values. Row sets are shared read-only
// across concurrent scanner views; the frozentables analyzer
// (internal/lint) rejects any write through a RowSet.
//
// lint:frozen
type RowSet struct {
	n     int
	words int
	arena []uint64
}

// NewRowSet wraps arena as a set of n-bit rows. The arena length must be a
// multiple of the per-row word count.
func NewRowSet(n int, arena []uint64) RowSet {
	if n <= 0 {
		panic(fmt.Sprintf("gf2: row set needs positive width, got %d", n))
	}
	w := wordsFor(n)
	if len(arena)%w != 0 {
		panic(fmt.Sprintf("gf2: row-set arena of %d words not a multiple of row width %d", len(arena), w))
	}
	return RowSet{n: n, words: w, arena: arena}
}

// N returns the row width in bits.
func (rs RowSet) N() int { return rs.n }

// Count returns the number of rows.
func (rs RowSet) Count() int { return len(rs.arena) / rs.words }

// Row returns the arena-backed view of row i. The view is read-only by
// convention; callers must not modify it.
func (rs RowSet) Row(i int) Vec {
	return VecView(rs.n, rs.arena[i*rs.words:(i+1)*rs.words])
}

// ReducedTable maintains lazily reduced copies of a RowSet's rows against a
// solver's evolving basis, so that consistency checks over table rows cost
// O(rows-in-system) word operations instead of a full O(rank) Gaussian
// re-elimination per row.
//
// For every touched row i it caches the residual C'_i (the source row
// reduced modulo the basis span) and the folded right-hand side δ_i (the
// RHS parity the basis implies for the eliminated combination), so the
// equation (row i, rhs) is consistent iff C'_i ≠ 0 or rhs == δ_i.
//
// Catch-up is incremental and generation-tagged. A cached residual is, by
// construction, clear in every pivot column of the basis that produced it,
// so its intersection with the solver's pivot mask is exactly the set of
// pivots added since — a stale row only folds in those. That is correct
// because the basis is kept in reduced row-echelon form: current basis
// rows have no bits in any other pivot column, so XORing the current row
// of each newly hit pivot yields the residual w.r.t. the new basis; and
// for any solution x of the new system, δ_new = (C ⊕ C'_new)·x = δ_old ⊕
// Σ rhs of the rows folded in (every new-basis solution also satisfies the
// old basis and the added rows). Solver.Reset bumps a generation counter,
// invalidating every cached row at once.
//
// A ReducedTable must not be used concurrently with basis mutations, and a
// single ReducedTable must not be shared between goroutines (catch-up
// mutates the cache); concurrent scanners over one immutable basis each
// own a ReducedTable.
type ReducedTable struct {
	s       *Solver
	src     RowSet
	words   int
	reduced []uint64 // cached residuals, same layout as src
	delta   []uint8  // folded RHS per row
	gen     []uint32 // solver generation of the cached copy; 0 = never touched
}

// NewReducedTable attaches a lazily reduced copy of src to solver s. The
// solver must have the same variable count as the row width.
func NewReducedTable(s *Solver, src RowSet) *ReducedTable {
	if s.n != src.n {
		panic(fmt.Sprintf("gf2: reduced table width %d != solver variables %d", src.n, s.n))
	}
	count := src.Count()
	return &ReducedTable{
		s:       s,
		src:     src,
		words:   src.words,
		reduced: make([]uint64, len(src.arena)),
		delta:   make([]uint8, count),
		gen:     make([]uint32, count),
	}
}

// Residual brings row i current against the solver's basis and returns its
// cached residual together with the folded right-hand side. The returned
// vector aliases the cache: it is valid until the next Residual or
// CheckSystem call on this table.
func (rt *ReducedTable) Residual(i int) (Vec, uint8) {
	w := rt.words
	cw := rt.reduced[i*w : (i+1)*w]
	if rt.gen[i] != rt.s.gen {
		copy(cw, rt.src.arena[i*w:(i+1)*w])
		rt.delta[i] = 0
		rt.gen[i] = rt.s.gen
	}
	// Masked catch-up on raw words: scan for pivot hits and fold in the
	// current basis row of each. A basis row's words below its pivot word
	// are zero (the pivot is its lowest set bit) and XORing it cannot
	// create hits below the pivot, so the scan resumes at the hit's word.
	d := rt.delta[i]
	pv := rt.s.piv.words
	for wi := 0; wi < w; {
		m := cw[wi] & pv[wi]
		if m == 0 {
			wi++
			continue
		}
		b := wi*wordBits + bits.TrailingZeros64(m)
		row := rt.s.basis[b*w : (b+1)*w]
		for j := wi; j < w; j++ {
			cw[j] ^= row[j]
		}
		d ^= rt.s.rhs[b]
	}
	rt.delta[i] = d
	return VecView(rt.src.n, cw), d
}

// CheckSystem tests whether the system {(src row idx[k]+offset, rhs[k])} is
// consistent with the solver's basis, without mutating it — the reduced
// counterpart of Solver.Check. It returns the rank increase the system
// would cause and whether it is consistent.
//
// Rows already determined by the basis (zero residual) degenerate to a
// word-masked RHS comparison; only rows still carrying free dimensions pay
// for the overlay elimination that tracks dependencies within the system.
// The offset parameter shifts every index by the same amount, so callers
// probing one cube at successive window positions pass the position-0
// indices plus a per-position stride.
func (rt *ReducedTable) CheckSystem(idx []int32, offset int32, rhs []uint8, scratch *CheckScratch) (rankIncrease int, consistent bool) {
	switch rt.words {
	case 1:
		return rt.checkSystem1(idx, offset, rhs)
	case 2:
		return rt.checkSystem2(idx, offset, rhs)
	}
	n := rt.src.n
	scratch.init(n)
	defer scratch.release()
	for k, ri := range idx {
		cur, delta := rt.Residual(int(ri + offset))
		r := rhs[k]&1 ^ delta
		if cur.IsZero() {
			if r != 0 {
				return 0, false
			}
			continue
		}
		// The residual may still depend on earlier rows of this system:
		// eliminate against the overlay only (the basis part is cached).
		// The fast exit: a residual that hits no overlay pivot is already
		// fully reduced and becomes a pivot itself without being copied.
		if b := cur.FirstSetAnd(scratch.overlayMask); b < 0 {
			// Stored as a view into the cache, not a copy: the overlay is
			// released before this call returns, and within the call only
			// first-touch rows are (re)written — never one already served.
			p := cur.FirstSet()
			scratch.overlay[p] = cur
			scratch.overlayRHS[p] = r
			scratch.overlayMask.SetBit(p, 1)
			scratch.overlaySet = append(scratch.overlaySet, p)
			continue
		}
		dst := scratch.getRow(n)
		dst.CopyFrom(cur)
		for b := dst.FirstSetAnd(scratch.overlayMask); b >= 0; b = dst.FirstSetAnd(scratch.overlayMask) {
			dst.Xor(scratch.overlay[b])
			r ^= scratch.overlayRHS[b]
		}
		if dst.IsZero() {
			if r != 0 {
				return 0, false
			}
			scratch.rowPoolNext-- // recycle immediately
			continue
		}
		p := dst.FirstSet()
		scratch.overlay[p] = dst
		scratch.overlayRHS[p] = r
		scratch.overlayMask.SetBit(p, 1)
		scratch.overlaySet = append(scratch.overlaySet, p)
	}
	return len(scratch.overlaySet), true
}

// checkSystem1 is CheckSystem for registers of at most 64 cells (every
// CI-scale circuit and most of the paper's): rows, pivot masks and the
// whole overlay collapse to single words on the stack, so one equation is
// a handful of word operations with no scratch traffic at all.
func (rt *ReducedTable) checkSystem1(idx []int32, offset int32, rhs []uint8) (rankIncrease int, consistent bool) {
	s := rt.s
	pv := s.piv.words[0]
	g := s.gen
	var ovMask uint64
	var ovRows [64]uint64 // only entries under ovMask are ever read
	var ovRHS [64]uint8
	rank := 0
	for k, ri := range idx {
		i := int(ri + offset)
		x := rt.reduced[i]
		d := rt.delta[i]
		if rt.gen[i] != g {
			x = rt.src.arena[i]
			d = 0
			rt.gen[i] = g
		}
		for m := x & pv; m != 0; m = x & pv {
			b := bits.TrailingZeros64(m)
			x ^= s.basis[b]
			d ^= s.rhs[b]
		}
		rt.reduced[i] = x
		rt.delta[i] = d
		r := rhs[k]&1 ^ d
		if x == 0 {
			if r != 0 {
				return 0, false
			}
			continue
		}
		for m := x & ovMask; m != 0; m = x & ovMask {
			b := bits.TrailingZeros64(m)
			x ^= ovRows[b]
			r ^= ovRHS[b]
		}
		if x == 0 {
			if r != 0 {
				return 0, false
			}
			continue
		}
		p := bits.TrailingZeros64(x)
		ovRows[p] = x
		ovRHS[p] = r
		ovMask |= 1 << uint(p)
		rank++
	}
	return rank, true
}

// checkSystem2 is checkSystem1's twin for registers of 65–128 cells (the
// paper's s38417 at n=85): two-word rows and masks, overlay on the stack.
func (rt *ReducedTable) checkSystem2(idx []int32, offset int32, rhs []uint8) (rankIncrease int, consistent bool) {
	s := rt.s
	pv0, pv1 := s.piv.words[0], s.piv.words[1]
	g := s.gen
	var ovMask0, ovMask1 uint64
	var ovRows [128][2]uint64 // only entries under the masks are ever read
	var ovRHS [128]uint8
	rank := 0
	for k, ri := range idx {
		i := int(ri+offset) * 2
		x0, x1 := rt.reduced[i], rt.reduced[i+1]
		d := rt.delta[i/2]
		if rt.gen[i/2] != g {
			x0, x1 = rt.src.arena[i], rt.src.arena[i+1]
			d = 0
			rt.gen[i/2] = g
		}
		for {
			var b int
			if m := x0 & pv0; m != 0 {
				b = bits.TrailingZeros64(m)
			} else if m := x1 & pv1; m != 0 {
				b = wordBits + bits.TrailingZeros64(m)
			} else {
				break
			}
			x0 ^= s.basis[b*2]
			x1 ^= s.basis[b*2+1]
			d ^= s.rhs[b]
		}
		rt.reduced[i], rt.reduced[i+1] = x0, x1
		rt.delta[i/2] = d
		r := rhs[k]&1 ^ d
		if x0 == 0 && x1 == 0 {
			if r != 0 {
				return 0, false
			}
			continue
		}
		for {
			var b int
			if m := x0 & ovMask0; m != 0 {
				b = bits.TrailingZeros64(m)
			} else if m := x1 & ovMask1; m != 0 {
				b = wordBits + bits.TrailingZeros64(m)
			} else {
				break
			}
			x0 ^= ovRows[b][0]
			x1 ^= ovRows[b][1]
			r ^= ovRHS[b]
		}
		if x0 == 0 && x1 == 0 {
			if r != 0 {
				return 0, false
			}
			continue
		}
		var p int
		if x0 != 0 {
			p = bits.TrailingZeros64(x0)
			ovMask0 |= 1 << uint(p)
		} else {
			p = wordBits + bits.TrailingZeros64(x1)
			ovMask1 |= 1 << uint(p-wordBits)
		}
		ovRows[p] = [2]uint64{x0, x1}
		ovRHS[p] = r
		rank++
	}
	return rank, true
}
