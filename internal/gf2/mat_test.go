package gf2

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func randMat(src *prng.Source, r, c int) Mat {
	m := NewMat(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if src.Bit() == 1 {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

func TestIdentityProperties(t *testing.T) {
	id := Identity(10)
	if !id.IsIdentity() {
		t.Fatal("Identity not recognised")
	}
	if id.Rank() != 10 {
		t.Errorf("rank = %d", id.Rank())
	}
	src := prng.New(3)
	m := randMat(src, 10, 10)
	if !id.Mul(m).Equal(m) || !m.Mul(id).Equal(m) {
		t.Error("identity multiplication changed matrix")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	src := prng.New(11)
	m := randMat(src, 17, 23)
	v := randVec(src, 23)
	// m·v as matrix product with 23×1 column.
	col := NewMat(23, 1)
	for i := 0; i < 23; i++ {
		col.Set(i, 0, v.Bit(i))
	}
	prod := m.Mul(col)
	got := m.MulVec(v)
	for i := 0; i < 17; i++ {
		if prod.At(i, 0) != got.Bit(i) {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		a := randMat(src, 9, 13)
		b := randMat(src, 13, 7)
		c := randMat(src, 7, 11)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPowAgainstRepeatedMul(t *testing.T) {
	src := prng.New(5)
	m := randMat(src, 12, 12)
	acc := Identity(12)
	for e := uint64(0); e <= 9; e++ {
		if !m.Pow(e).Equal(acc) {
			t.Fatalf("Pow(%d) mismatch", e)
		}
		acc = acc.Mul(m)
	}
}

func TestPowAdditivity(t *testing.T) {
	// T^(a+b) = T^a · T^b — exactly the State Skip composition property.
	f := func(seed uint64, a, b uint8) bool {
		src := prng.New(seed)
		m := randMat(src, 8, 8)
		ea, eb := uint64(a%32), uint64(b%32)
		return m.Pow(ea + eb).Equal(m.Pow(ea).Mul(m.Pow(eb)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	src := prng.New(9)
	m := randMat(src, 14, 31)
	if !m.Transpose().Transpose().Equal(m) {
		t.Error("transpose not an involution")
	}
}

func TestRankBounds(t *testing.T) {
	src := prng.New(21)
	m := randMat(src, 20, 35)
	r := m.Rank()
	if r < 0 || r > 20 {
		t.Errorf("rank %d out of bounds", r)
	}
	if NewMat(5, 5).Rank() != 0 {
		t.Error("zero matrix has nonzero rank")
	}
	// Duplicated rows cannot increase rank.
	dup := MatFromRows(append([]Vec{m.Row(0)}, m.rows...))
	if dup.Rank() != r {
		t.Errorf("duplicate row changed rank: %d vs %d", dup.Rank(), r)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	src := prng.New(2)
	found := 0
	for attempt := 0; attempt < 50 && found < 5; attempt++ {
		m := randMat(src, 16, 16)
		inv, ok := m.Inverse()
		if !ok {
			continue
		}
		found++
		if !m.Mul(inv).IsIdentity() || !inv.Mul(m).IsIdentity() {
			t.Fatal("inverse round trip failed")
		}
	}
	if found == 0 {
		t.Fatal("never found an invertible random matrix (suspicious)")
	}
}

func TestInverseSingular(t *testing.T) {
	m := NewMat(4, 4) // zero matrix
	if _, ok := m.Inverse(); ok {
		t.Error("zero matrix reported invertible")
	}
}

func TestMatFromRowsClones(t *testing.T) {
	r0, _ := FromString("101")
	m := MatFromRows([]Vec{r0})
	r0.SetBit(1, 1)
	if m.At(0, 1) != 0 {
		t.Error("MatFromRows shares row storage")
	}
}

func TestMulVecDistributes(t *testing.T) {
	// m·(u ⊕ v) = m·u ⊕ m·v — the linearity every LFSR argument rests on.
	f := func(seed uint64) bool {
		src := prng.New(seed)
		m := randMat(src, 15, 15)
		u := randVec(src, 15)
		v := randVec(src, 15)
		sum := u.Clone()
		sum.Xor(v)
		left := m.MulVec(sum)
		right := m.MulVec(u)
		right.Xor(m.MulVec(v))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
