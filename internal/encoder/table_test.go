package encoder

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/prng"
	"repro/internal/scan"
)

// TestDependenciesPositionInvariant pins the structural fact the whole
// encoder-robustness story rests on: the coefficient
// matrix of a cube's system at window position v is the position-0 matrix
// right-multiplied by the invertible (T^{v·r})ᵀ, so linear dependencies
// among a fixed set of slots are identical at every window position.
func TestDependenciesPositionInvariant(t *testing.T) {
	cfg := smallConfig(t, 16, 60, 4, 8)
	table, err := BuildExprTable(cfg.LFSR, cfg.PS, cfg.Geo, cfg.WindowLen)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(31)
	for trial := 0; trial < 30; trial++ {
		// Pick a random slot subset and a random combination over it.
		nSlots := 3 + src.Intn(5)
		slots := make([]int, 0, nSlots)
		seen := map[int]bool{}
		for len(slots) < nSlots {
			p := src.Intn(cfg.Geo.Width)
			if !seen[p] {
				seen[p] = true
				slots = append(slots, p)
			}
		}
		// The combination XOR of expressions at position 0.
		comb := func(v int) gf2.Vec {
			acc := gf2.NewVec(16)
			for _, pos := range slots {
				acc.Xor(table.Expr(v, pos))
			}
			return acc
		}
		zeroAt0 := comb(0).IsZero()
		for v := 1; v < cfg.WindowLen; v++ {
			if comb(v).IsZero() != zeroAt0 {
				t.Fatalf("trial %d: dependency over slots %v differs between position 0 and %d", trial, slots, v)
			}
		}
	}
}

// TestExprTableIncrementalExtension pins the Tables growth path: extending
// a shared arena from window length L1 to L2 must produce expressions bit-
// identical to a fresh build at L2 — the retained symbolic simulation must
// resume exactly where the prefix ended. Checked for both register forms,
// since their Step recurrences rotate the symbolic state differently.
func TestExprTableIncrementalExtension(t *testing.T) {
	taps, ok := lfsr.Taps(18)
	if !ok {
		t.Fatal("no curated taps for n=18")
	}
	for _, form := range []lfsr.Form{lfsr.Fibonacci, lfsr.Galois} {
		form := form
		t.Run(form.String(), func(t *testing.T) {
			l, err := lfsr.NewFromTaps(form, 18, taps)
			if err != nil {
				t.Fatal(err)
			}
			geo, err := scan.New(60, 6)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := phaseshifter.New(18, [][]int{{0, 5, 11}, {1, 7, 13}, {2, 9, 15}, {3, 6, 17}, {4, 10, 14}, {8, 12, 16}})
			if err != nil {
				t.Fatal(err)
			}
			tabs, err := NewTables(l, ps, geo)
			if err != nil {
				t.Fatal(err)
			}
			// Grow 4 → 7 → 13, checking every snapshot against a fresh build
			// and re-checking earlier snapshots after later extensions.
			var snaps []*ExprTable
			for _, L := range []int{4, 7, 13} {
				snap, err := tabs.EnsureLen(L)
				if err != nil {
					t.Fatal(err)
				}
				snaps = append(snaps, snap)
				fresh, err := BuildExprTable(l, ps, geo, L)
				if err != nil {
					t.Fatal(err)
				}
				for _, tab := range snaps {
					for v := 0; v < tab.L; v++ {
						for pos := 0; pos < geo.Width; pos++ {
							if !tab.Expr(v, pos).Equal(fresh.Expr(v, pos)) {
								t.Fatalf("L=%d snapshot(L=%d): expr (%d,%d) differs from fresh build", L, tab.L, v, pos)
							}
						}
					}
				}
			}
			// Shrinking requests reuse the prefix without re-simulating.
			small, err := tabs.EnsureLen(2)
			if err != nil {
				t.Fatal(err)
			}
			if small.L != 2 || small.Rows().Count() != 2*geo.Length*geo.Chains {
				t.Fatalf("L=2 snapshot has %d rows", small.Rows().Count())
			}
		})
	}
}

func TestBuildExprTableValidation(t *testing.T) {
	cfg := smallConfig(t, 16, 50, 4, 4)
	if _, err := BuildExprTable(cfg.LFSR, cfg.PS, cfg.Geo, 0); err == nil {
		t.Error("L=0 accepted")
	}
	// Phase shifter with the wrong output count.
	geo2 := cfg.Geo
	geo2.Chains = 5
	if _, err := BuildExprTable(cfg.LFSR, cfg.PS, geo2, 4); err == nil {
		t.Error("chain-count mismatch accepted")
	}
}

func TestExprTableMemoryBounded(t *testing.T) {
	cfg := smallConfig(t, 24, 100, 8, 10)
	table, err := BuildExprTable(cfg.LFSR, cfg.PS, cfg.Geo, cfg.WindowLen)
	if err != nil {
		t.Fatal(err)
	}
	// cycles × chains × words × 8 bytes.
	cycles := cfg.WindowLen * cfg.Geo.Length
	want := cycles * cfg.Geo.Chains * 1 * 8
	if got := table.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestEquationsMatchCubeBits(t *testing.T) {
	cfg := smallConfig(t, 16, 40, 4, 6)
	table, err := BuildExprTable(cfg.LFSR, cfg.PS, cfg.Geo, cfg.WindowLen)
	if err != nil {
		t.Fatal(err)
	}
	padded := cube.MustParse("1xx0xxxxxx1xxxxxxxxx0xxxxxxxxx1xxxxxxxx1")
	if padded.Width() != 40 {
		t.Fatalf("test cube width %d", padded.Width())
	}
	eqs := table.Equations(padded, 2, nil)
	if len(eqs) != padded.SpecifiedCount() {
		t.Fatalf("%d equations for %d specified bits", len(eqs), padded.SpecifiedCount())
	}
	// RHS values must be the cube's specified values in position order.
	i := 0
	for _, pos := range padded.Specified() {
		if eqs[i].RHS != uint8(padded.Get(pos)) {
			t.Errorf("equation %d RHS %d != cube bit %d", i, eqs[i].RHS, padded.Get(pos))
		}
		if !eqs[i].Coeffs.Equal(table.Expr(2, pos)) {
			t.Errorf("equation %d coefficients not the table expression", i)
		}
		i++
	}
}

func TestGenerateWindowIntoReuse(t *testing.T) {
	cfg := smallConfig(t, 16, 50, 4, 5)
	src := prng.New(12)
	seed := gf2.NewVec(16)
	for i := 0; i < 16; i++ {
		seed.SetBit(i, src.Bit())
	}
	fresh := GenerateWindow(cfg.LFSR, cfg.PS, cfg.Geo, seed, 5)
	reused := make([]gf2.Vec, 5)
	GenerateWindowInto(reused, cfg.LFSR, cfg.PS, cfg.Geo, seed, 5)
	// Fill the buffers with garbage and regenerate: must equal fresh.
	for _, v := range reused {
		for i := 0; i < v.Len(); i++ {
			v.SetBit(i, 1)
		}
	}
	GenerateWindowInto(reused, cfg.LFSR, cfg.PS, cfg.Geo, seed, 5)
	for i := range fresh {
		if !fresh[i].Equal(reused[i]) {
			t.Fatalf("vector %d differs after buffer reuse", i)
		}
	}
}
