package encoder

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cube"
	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/lru"
	"repro/internal/phaseshifter"
	"repro/internal/scan"
)

// Tables holds the shared symbolic artefacts of one decompressor (LFSR +
// phase shifter + scan geometry), mirroring atpg.Tables: the expression
// arena behind every ExprTable, extended in place as longer windows are
// requested, plus per-cube-set equation indices. Building the arena is the
// symbolic simulation of Section 3.1; a window of length L+k reuses the
// length-L prefix of symbolic cycles verbatim, so sweeps over L against a
// fixed decompressor pay only for the new cycles.
//
// Tables is safe for concurrent use. EnsureLen returns immutable snapshots:
// extension only appends cycles past every previously returned snapshot's
// view, so outstanding readers are never invalidated. The two regimes are
// machine-checked (internal/lint): the decompressor identity below is
// frozen after NewTables, and the mutable arena/cache state is only
// touched under mu.
//
// lint:frozen
type Tables struct {
	l     *lfsr.LFSR
	ps    *phaseshifter.PhaseShifter
	geo   scan.Geometry
	n     int
	words int

	mu     sync.Mutex
	sym    *lfsr.Symbolic // guarded by mu
	arena  []uint64       // guarded by mu; (cycle, chain) expressions, cycle-major
	cycles int            // guarded by mu; symbolic cycles materialised so far
	// Single-slot system-index cache: re-encodes of one set (benchmark
	// loops, sweeps over L) hit it, while Tables held in process-lifetime
	// caches never pin more than the last set encoded.
	lastSet *cube.Set     // guarded by mu
	lastSys *systemIndex  // guarded by mu
}

// NewTables validates the decompressor wiring and returns empty shared
// tables for it; the symbolic arena is filled on demand by EnsureLen.
func NewTables(l *lfsr.LFSR, ps *phaseshifter.PhaseShifter, geo scan.Geometry) (*Tables, error) {
	if ps.Outputs() != geo.Chains {
		return nil, fmt.Errorf("encoder: phase shifter outputs %d != scan chains %d", ps.Outputs(), geo.Chains)
	}
	if ps.Size() != l.Size() {
		return nil, fmt.Errorf("encoder: phase shifter size %d != LFSR size %d", ps.Size(), l.Size())
	}
	n := l.Size()
	return &Tables{
		l: l, ps: ps, geo: geo,
		n:     n,
		words: (n + 63) / 64,
		sym:   lfsr.NewSymbolic(l),
	}, nil
}

// LFSR returns the register these tables were built for.
func (t *Tables) LFSR() *lfsr.LFSR { return t.l }

// PS returns the phase shifter these tables were built for.
func (t *Tables) PS() *phaseshifter.PhaseShifter { return t.ps }

// Geo returns the scan geometry these tables were built for.
func (t *Tables) Geo() scan.Geometry { return t.geo }

// EnsureLen returns the expression table for window length L, simulating
// only the symbolic cycles not yet materialised. The returned snapshot is
// immutable and remains valid across later extensions.
func (t *Tables) EnsureLen(L int) (*ExprTable, error) {
	return t.EnsureLenCtx(context.Background(), L)
}

// symStride is how many symbolic cycles EnsureLenCtx materialises between
// context polls. A cycle is m·words XOR words plus one symbolic step, so
// 16 cycles keeps the poll below measurement noise while bounding
// cancellation latency to microseconds even on the largest cores.
const symStride = 16

// EnsureLenCtx is EnsureLen with cooperative cancellation: the symbolic
// simulation polls the context every symStride cycles. An aborted
// extension leaves the tables fully consistent at the cycles completed so
// far — the partial work is kept (a later call resumes from it), and every
// previously returned snapshot stays valid.
func (t *Tables) EnsureLenCtx(ctx context.Context, L int) (*ExprTable, error) {
	if L < 1 {
		return nil, fmt.Errorf("encoder: window length %d must be ≥ 1", L)
	}
	need := L * t.geo.Length
	m := t.geo.Chains
	t.mu.Lock()
	defer t.mu.Unlock()
	if need > t.cycles {
		t.arena = append(t.arena, make([]uint64, (need-t.cycles)*m*t.words)...)
		for cyc := t.cycles; cyc < need; cyc++ {
			if (cyc-t.cycles)%symStride == symStride-1 && ctx.Err() != nil {
				// Keep sym, arena and cycles in lockstep at the abort
				// point: cyc cycles are filled and sym has stepped cyc
				// times.
				t.arena = t.arena[:cyc*m*t.words]
				t.cycles = cyc
				return nil, fmt.Errorf("encoder: table build stopped at cycle %d/%d: %w", cyc, need, ctx.Err())
			}
			base := cyc * m * t.words
			for ch := 0; ch < m; ch++ {
				dst := gf2.VecView(t.n, t.arena[base+ch*t.words:base+(ch+1)*t.words])
				for _, cell := range t.ps.Taps(ch) {
					dst.Xor(t.sym.Expr(cell))
				}
			}
			t.sym.Step()
		}
		t.cycles = need
	}
	return &ExprTable{
		L: L, N: t.n, Geo: t.geo,
		rows: gf2.NewRowSet(t.n, t.arena[:need*m*t.words]),
	}, nil
}

// Systems returns the per-cube equation index of one cube set: for every
// cube, the position-0 expression-row indices and right-hand sides of its
// embedding system. The most recent set's index is cached. Sets are
// treated as immutable once handed to the encoder.
func (t *Tables) Systems(set *cube.Set) *systemIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastSet != set {
		t.lastSet = set
		t.lastSys = newSystemIndex(set, t.geo)
	}
	return t.lastSys
}

// systemIndex precomputes, for every cube of a set, the expression-row
// indices (at window position 0) and right-hand sides of its equation
// system. Probing the cube at window position v shifts every index by
// v·Length·Chains — the table is cycle-major, so one window position is one
// contiguous band of rows.
type systemIndex struct {
	base [][]int32
	rhs  [][]uint8
}

func newSystemIndex(set *cube.Set, geo scan.Geometry) *systemIndex {
	si := &systemIndex{
		base: make([][]int32, set.Len()),
		rhs:  make([][]uint8, set.Len()),
	}
	for ci := range set.Cubes {
		c := set.Cubes[ci]
		spec := c.SpecifiedCount()
		base := make([]int32, 0, spec)
		rhs := make([]uint8, 0, spec)
		for pos := c.Mask.FirstSet(); pos >= 0; pos = c.Mask.NextSet(pos + 1) {
			ch, depth := geo.Cell(pos)
			base = append(base, int32(geo.ShiftCycle(depth)*geo.Chains+ch))
			rhs = append(rhs, c.Value.Bit(pos))
		}
		si.base[ci] = base
		si.rhs[ci] = rhs
	}
	return si
}

// TablesCache memoizes shared Tables per standard decompressor
// configuration, so experiment sweeps, EncodeAuto variant retries and
// repeated CLI/benchmark encodes stop recomputing identical symbolic
// simulations. It is safe for concurrent use: the first caller of a key
// builds (singleflight) while later callers of the same key block on that
// slot, so every configuration is built exactly once no matter how many
// tenants race on it. SetMax bounds the cache with LRU eviction for
// long-lived multi-tenant processes; the default is unbounded.
//
// The key includes the window length because the standard phase shifter's
// separation window — and therefore its taps — depends on L·Length; only a
// caller that holds one decompressor fixed across window lengths (a Config
// with explicit LFSR/PS plus Config.Tables) gets cross-L prefix reuse.
type TablesCache struct {
	mu     sync.Mutex
	m      *lru.Cache[tabKey, *tabSlot] // guarded by mu
	builds atomic.Int64
}

type tabKey struct {
	n, width, chains, L int
	variant             uint64
}

type tabSlot struct {
	once sync.Once
	t    *Tables
	err  error
}

// NewTablesCache returns an empty, unbounded cache.
func NewTablesCache() *TablesCache {
	return &TablesCache{m: lru.New[tabKey, *tabSlot](0)}
}

// SetMax bounds the cache to max configurations (0 = unbounded), evicting
// least-recently-used entries immediately if the bound is already
// exceeded. An evicted configuration is simply rebuilt on next use;
// Tables snapshots already handed out stay valid.
func (c *TablesCache) SetMax(max int) {
	c.mu.Lock()
	c.m.SetMax(max)
	c.mu.Unlock()
}

// Len returns the number of cached configurations.
func (c *TablesCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Len()
}

// Builds returns how many Tables builds the cache has performed over its
// lifetime. Concurrency stress tests use it to assert exactly-once builds.
func (c *TablesCache) Builds() int64 { return c.builds.Load() }

// Evictions returns how many configurations LRU eviction has dropped.
func (c *TablesCache) Evictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Evictions()
}

// TablesFor returns the shared Tables of the standard decompressor with
// the given parameters (see StandardConfigVariant), building them at most
// once per configuration.
func (c *TablesCache) TablesFor(n, width, chains, L int, variant uint64) (*Tables, error) {
	k := tabKey{n: n, width: width, chains: chains, L: L, variant: variant}
	c.mu.Lock()
	slot, ok := c.m.Get(k)
	if !ok {
		slot = &tabSlot{}
		c.m.Add(k, slot)
	}
	c.mu.Unlock()
	slot.once.Do(func() {
		c.builds.Add(1)
		cfg, err := StandardConfigVariant(n, width, chains, L, variant)
		if err != nil {
			slot.err = err
			return
		}
		slot.t, slot.err = NewTables(cfg.LFSR, cfg.PS, cfg.Geo)
	})
	return slot.t, slot.err
}
