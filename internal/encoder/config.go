package encoder

import (
	"context"

	"repro/internal/cube"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/scan"
)

// standardFillSeed keys the free-variable fill PRNG of every standard
// configuration.
const standardFillSeed = 0xC0FFEE

// assembleStandard is the single source of truth for the standard Config's
// field choices; the cached and uncached EncodeAuto paths both go through
// it so their encodings cannot drift apart.
func assembleStandard(l *lfsr.LFSR, ps *phaseshifter.PhaseShifter, geo scan.Geometry, L int) Config {
	return Config{LFSR: l, PS: ps, Geo: geo, WindowLen: L, FillSeed: standardFillSeed}
}

// StandardConfig assembles the canonical decompressor used throughout the
// paper's experiments: a Fibonacci LFSR of size n with a curated primitive
// polynomial, the standard 3-tap phase shifter, and `chains` balanced scan
// chains covering `width` scan cells, with window length L.
func StandardConfig(n, width, chains, L int) (Config, error) {
	l, err := lfsr.NewStandard(lfsr.Fibonacci, n)
	if err != nil {
		return Config{}, err
	}
	geo, err := scan.New(width, chains)
	if err != nil {
		return Config{}, err
	}
	ps, err := phaseshifter.NewSeparated(l, chains, L*geo.Length)
	if err != nil {
		return Config{}, err
	}
	return assembleStandard(l, ps, geo, L), nil
}

// StandardConfigVariant is StandardConfig with an explicit phase-shifter
// design variant (see phaseshifter.NewSeparatedVariant).
func StandardConfigVariant(n, width, chains, L int, variant uint64) (Config, error) {
	l, err := lfsr.NewStandard(lfsr.Fibonacci, n)
	if err != nil {
		return Config{}, err
	}
	geo, err := scan.New(width, chains)
	if err != nil {
		return Config{}, err
	}
	ps, err := phaseshifter.NewSeparatedVariant(l, chains, L*geo.Length, variant)
	if err != nil {
		return Config{}, err
	}
	return assembleStandard(l, ps, geo, L), nil
}

// EncodeAuto encodes the set with the standard decompressor, retrying with
// successive phase-shifter variants if a cube turns out structurally
// unencodable under the current one. Higher-weight translation-invariant
// phase relations cannot all be designed away (pigeonhole over the LFSR's
// state space), so iterating the shifter design is the standard remedy; a
// handful of variants virtually always suffices. It returns the encoding
// and the variant that worked.
func EncodeAuto(n, width, chains, L int, set *cube.Set) (*Encoding, uint64, error) {
	return EncodeAutoWorkers(n, width, chains, L, set, 0)
}

// EncodeAutoWorkers is EncodeAuto with an explicit bound on the encoder's
// candidate-scan parallelism (0 = GOMAXPROCS), for callers that already run
// several encodings concurrently.
func EncodeAutoWorkers(n, width, chains, L int, set *cube.Set, workers int) (*Encoding, uint64, error) {
	return EncodeAutoCached(n, width, chains, L, set, workers, nil)
}

// EncodeAutoCached is EncodeAutoWorkers with a shared TablesCache: the
// symbolic tables of every phase-shifter variant tried are left in the
// cache, so *repeated* encodes of the same (n, width, chains, L)
// configuration — a session sweep revisiting a cell, a benchmark loop —
// serve every variant they re-try from the cache instead of re-simulating.
// (Within a single call each variant has its own phase shifter, so the
// first encode of a configuration builds each tried variant's tables
// exactly once, cache or not.) A nil cache builds private tables. The
// encodings produced are identical with and without a cache.
func EncodeAutoCached(n, width, chains, L int, set *cube.Set, workers int, cache *TablesCache) (*Encoding, uint64, error) {
	return EncodeAutoCtx(context.Background(), n, width, chains, L, set, workers, cache)
}

// EncodeAutoCtx is EncodeAutoCached with cooperative cancellation (see
// EncodeCtx): the context is checked between phase-shifter variants and
// threaded into every encode attempt, and a fired context stops the
// variant iteration instead of masquerading as "unencodable". An
// uncancelled run is bit-identical to EncodeAutoCached.
func EncodeAutoCtx(ctx context.Context, n, width, chains, L int, set *cube.Set, workers int, cache *TablesCache) (*Encoding, uint64, error) {
	const maxVariants = 16
	var lastErr error
	for v := uint64(0); v < maxVariants; v++ {
		if err := ctx.Err(); err != nil {
			return nil, v, err
		}
		var cfg Config
		if cache != nil {
			tabs, err := cache.TablesFor(n, width, chains, L, v)
			if err != nil {
				return nil, v, err
			}
			cfg = assembleStandard(tabs.LFSR(), tabs.PS(), tabs.Geo(), L)
			cfg.Tables = tabs
		} else {
			var err error
			cfg, err = StandardConfigVariant(n, width, chains, L, v)
			if err != nil {
				return nil, v, err
			}
		}
		cfg.Workers = workers
		enc, err := EncodeCtx(ctx, cfg, set)
		if err == nil {
			return enc, v, nil
		}
		if ctx.Err() != nil {
			return nil, v, err
		}
		lastErr = err
	}
	return nil, maxVariants, lastErr
}
