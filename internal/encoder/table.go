// Package encoder implements window-based LFSR reseeding for pre-computed
// test sets (Section 2 of the paper).
//
// Each n-bit seed loaded into the LFSR expands into a window of L test
// vectors. Every bit any window vector feeds into a scan cell is a linear
// expression of the n seed variables, so a test cube is encodable at window
// position v iff the linear system equating those expressions with the
// cube's specified bits is consistent. The encoder packs as many cubes as
// possible into each seed using the greedy criteria of the paper:
//
//  1. among solvable systems, prefer cubes with the most specified bits;
//  2. then systems whose solution replaces the fewest free variables;
//  3. then cubes encodable at the fewest remaining window positions;
//  4. then the position nearest the start of the window.
//
// Classical reseeding (one vector per seed) is the special case L = 1.
package encoder

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/scan"
)

// ExprTable holds, for every window position and cube bit position, the
// linear expression (over the n seed variables) that the decompressor
// produces there. It is an immutable snapshot over the shared arena of a
// Tables value: the expression for (cycle t, chain ch) is row t·m+ch of the
// row set. Built once per (LFSR, phase shifter, geometry, L) and shared by
// every seed computation.
type ExprTable struct {
	L   int
	N   int
	Geo scan.Geometry

	rows gf2.RowSet
}

// BuildExprTable symbolically simulates the LFSR through L·r cycles and
// materialises the phase-shifter output expressions. Callers that probe
// several window lengths of one decompressor should hold a Tables value
// instead and let EnsureLen extend the shared arena incrementally.
func BuildExprTable(l *lfsr.LFSR, ps *phaseshifter.PhaseShifter, geo scan.Geometry, L int) (*ExprTable, error) {
	t, err := NewTables(l, ps, geo)
	if err != nil {
		return nil, err
	}
	return t.EnsureLen(L)
}

// Rows exposes the expression arena as an indexed row set; row t·m+ch is
// the expression of chain ch at absolute cycle t.
func (t *ExprTable) Rows() gf2.RowSet { return t.rows }

// Stride returns the row-index distance between the same scan cell at
// consecutive window positions: Length·Chains rows per window vector.
func (t *ExprTable) Stride() int { return t.Geo.Length * t.Geo.Chains }

// exprAt returns the (arena-backed) expression for output ch at absolute
// cycle t. Read-only by convention.
func (t *ExprTable) exprAt(cyc, ch int) gf2.Vec {
	return t.rows.Row(cyc*t.Geo.Chains + ch)
}

// Expr returns the seed-variable expression of cube bit position pos within
// window vector v. The returned vector is a read-only view; do not modify.
func (t *ExprTable) Expr(v, pos int) gf2.Vec {
	if v < 0 || v >= t.L {
		panic(fmt.Sprintf("encoder: window position %d out of range [0,%d)", v, t.L))
	}
	ch, depth := t.Geo.Cell(pos)
	cyc := v*t.Geo.Length + t.Geo.ShiftCycle(depth)
	return t.exprAt(cyc, ch)
}

// Equations appends to buf the linear system that embeds c at window
// position v and returns the extended slice. Coefficient vectors are shared
// views into the table; the solver treats them as read-only.
func (t *ExprTable) Equations(c cube.Cube, v int, buf []gf2.Equation) []gf2.Equation {
	for pos := c.Mask.FirstSet(); pos >= 0; pos = c.Mask.NextSet(pos + 1) {
		buf = append(buf, gf2.Equation{Coeffs: t.Expr(v, pos), RHS: c.Value.Bit(pos)})
	}
	return buf
}

// MemoryBytes reports the arena size, for diagnostics.
func (t *ExprTable) MemoryBytes() int { return t.rows.Count() * ((t.N + 63) / 64) * 8 }
