package encoder

import (
	"fmt"

	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/scan"
)

// GenerateWindow expands a concrete seed into its window of L test vectors,
// exactly as the decompressor hardware would: the LFSR starts from the seed
// state and runs L·r Normal-mode clocks; at every clock each phase-shifter
// output feeds one scan chain. The returned vectors have geo.Width bits
// (padding slots are dropped).
//
// This concrete path and the symbolic ExprTable describe the same machine;
// TestTableMatchesGeneration pins them together, and the whole encoding
// story rests on that equality.
func GenerateWindow(l *lfsr.LFSR, ps *phaseshifter.PhaseShifter, geo scan.Geometry, seed gf2.Vec, L int) []gf2.Vec {
	out := make([]gf2.Vec, L)
	GenerateWindowInto(out, l, ps, geo, seed, L)
	return out
}

// GenerateWindowInto fills dst (length ≥ L) with the window vectors,
// allocating fresh vectors only for nil slots.
func GenerateWindowInto(dst []gf2.Vec, l *lfsr.LFSR, ps *phaseshifter.PhaseShifter, geo scan.Geometry, seed gf2.Vec, L int) {
	if seed.Len() != l.Size() {
		panic(fmt.Sprintf("encoder: seed width %d != LFSR size %d", seed.Len(), l.Size()))
	}
	state := seed.Clone()
	next := gf2.NewVec(l.Size())
	for v := 0; v < L; v++ {
		if dst[v].Len() != geo.Width {
			dst[v] = gf2.NewVec(geo.Width)
		} else {
			dst[v].Zero()
		}
		for cyc := 0; cyc < geo.Length; cyc++ {
			for ch := 0; ch < geo.Chains; ch++ {
				pos := geo.CellAtCycle(ch, cyc)
				if pos < 0 {
					continue
				}
				var b uint8
				for _, cell := range ps.Taps(ch) {
					b ^= state.Bit(cell)
				}
				dst[v].SetBit(pos, b)
			}
			l.StepInto(next, state)
			state, next = next, state
		}
	}
}
