package encoder

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cube"
	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/prng"
	"repro/internal/scan"
)

// Config describes one encoding run.
type Config struct {
	LFSR *lfsr.LFSR
	PS   *phaseshifter.PhaseShifter
	Geo  scan.Geometry
	// WindowLen is L, the number of vectors each seed expands into.
	// L = 1 is classical reseeding.
	WindowLen int
	// FillSeed keys the deterministic PRNG that fills free seed variables.
	FillSeed uint64
	// Workers bounds the candidate-scan parallelism; 0 means GOMAXPROCS.
	Workers int
	// NoPruning disables monotone feasibility pruning (ablation hook; the
	// result is identical, only slower).
	NoPruning bool
}

// Assignment records where one cube was deterministically embedded.
type Assignment struct {
	Cube int // index into the input cube set
	Pos  int // window position (vector index within the seed's window)
}

// Seed is one computed LFSR seed together with the cubes it encodes.
type Seed struct {
	Value       gf2.Vec
	Assignments []Assignment
}

// Encoding is the result of compressing a cube set.
type Encoding struct {
	Cfg   Config
	Set   *cube.Set
	Seeds []Seed
	// ChecksPerformed counts linear-system consistency checks, a measure of
	// encoder effort used by the pruning ablation.
	ChecksPerformed int64
}

// TDV returns the test data volume in bits: seeds × n.
func (e *Encoding) TDV() int { return len(e.Seeds) * e.Cfg.LFSR.Size() }

// TSL returns the test sequence length, in vectors, of the original
// window-based scheme: every seed expands into a full window.
func (e *Encoding) TSL() int { return len(e.Seeds) * e.Cfg.WindowLen }

// Encode compresses the cube set into LFSR seeds. The input set is not
// modified. Encode fails if some cube cannot be embedded anywhere even by a
// dedicated seed (the LFSR is too small for the test set).
func Encode(cfg Config, set *cube.Set) (*Encoding, error) {
	if cfg.WindowLen < 1 {
		return nil, fmt.Errorf("encoder: window length %d must be ≥ 1", cfg.WindowLen)
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("encoder: empty cube set")
	}
	if set.Width != cfg.Geo.Width {
		return nil, fmt.Errorf("encoder: cube width %d != scan width %d", set.Width, cfg.Geo.Width)
	}
	table, err := BuildExprTable(cfg.LFSR, cfg.PS, cfg.Geo, cfg.WindowLen)
	if err != nil {
		return nil, err
	}
	return encodeWithTable(cfg, set, table)
}

// candidate is one solvable (cube, position) system found during a scan.
type candidate struct {
	cube    int
	pos     int
	rankInc int
}

type encodeState struct {
	cfg     Config
	set     *cube.Set
	table   *ExprTable
	n       int
	L       int
	workers int

	// order holds cube indices sorted by descending specified count; tiers
	// are contiguous runs of equal counts.
	order     []int
	remaining []bool // indexed by cube: still to be encoded
	nRemain   int

	// feasible[cube][pos]: not yet proven unsolvable for the current seed.
	feasible [][]bool

	solver *gf2.Solver
	checks int64
}

func encodeWithTable(cfg Config, set *cube.Set, table *ExprTable) (*Encoding, error) {
	st := &encodeState{
		cfg:     cfg,
		set:     set,
		table:   table,
		n:       cfg.LFSR.Size(),
		L:       cfg.WindowLen,
		workers: cfg.Workers,
	}
	if st.workers <= 0 {
		st.workers = runtime.GOMAXPROCS(0)
	}
	st.order = make([]int, set.Len())
	for i := range st.order {
		st.order[i] = i
	}
	sort.SliceStable(st.order, func(a, b int) bool {
		return set.Cubes[st.order[a]].SpecifiedCount() > set.Cubes[st.order[b]].SpecifiedCount()
	})
	st.remaining = make([]bool, set.Len())
	for i := range st.remaining {
		st.remaining[i] = true
	}
	st.nRemain = set.Len()
	st.feasible = make([][]bool, set.Len())
	for i := range st.feasible {
		st.feasible[i] = make([]bool, st.L)
	}

	enc := &Encoding{Cfg: cfg, Set: set}
	fill := prng.New(cfg.FillSeed)
	for st.nRemain > 0 {
		seed, err := st.buildSeed(fill)
		if err != nil {
			return nil, err
		}
		enc.Seeds = append(enc.Seeds, seed)
	}
	enc.ChecksPerformed = st.checks
	return enc, nil
}

// buildSeed constructs one seed: it commits the densest remaining cube at
// the earliest solvable window position, then greedily folds in more cubes
// per the paper's criteria until nothing else fits.
func (st *encodeState) buildSeed(fill *prng.Source) (Seed, error) {
	st.solver = gf2.NewSolver(st.n)
	for _, ci := range st.order {
		if st.remaining[ci] {
			for p := range st.feasible[ci] {
				st.feasible[ci][p] = true
			}
		}
	}

	var seed Seed
	var scratch gf2.CheckScratch
	var eqBuf []gf2.Equation

	// First cube: densest remaining, at the first solvable position
	// (position 0 in the common case the paper assumes).
	first := -1
	for _, ci := range st.order {
		if st.remaining[ci] {
			first = ci
			break
		}
	}
	firstPos := -1
	for p := 0; p < st.L; p++ {
		eqBuf = st.table.Equations(st.set.Cubes[first], p, eqBuf[:0])
		st.checks++
		if _, ok := st.solver.Check(eqBuf, &scratch); ok {
			firstPos = p
			break
		}
	}
	if firstPos < 0 {
		return Seed{}, fmt.Errorf("encoder: cube %d (%d specified bits) cannot be embedded anywhere in a fresh window; increase the LFSR size (n=%d)", first, st.set.Cubes[first].SpecifiedCount(), st.n)
	}
	st.commit(first, firstPos, &seed, eqBuf)

	for {
		cand, ok := st.scanTiers()
		if !ok {
			break
		}
		eqBuf = st.table.Equations(st.set.Cubes[cand.cube], cand.pos, eqBuf[:0])
		st.commit(cand.cube, cand.pos, &seed, eqBuf)
	}

	seed.Value = st.solver.Solution(func(int) uint8 { return fill.Bit() })
	return seed, nil
}

func (st *encodeState) commit(ci, pos int, seed *Seed, eqs []gf2.Equation) {
	if _, ok := st.solver.AddSystem(eqs); !ok {
		panic("encoder: committing a system that was just verified solvable")
	}
	seed.Assignments = append(seed.Assignments, Assignment{Cube: ci, Pos: pos})
	st.remaining[ci] = false
	st.nRemain--
}

// scanTiers walks specified-count tiers in descending order and returns the
// winning candidate of the first tier that has any solvable system, applying
// the paper's tie-breaks.
func (st *encodeState) scanTiers() (candidate, bool) {
	i := 0
	for i < len(st.order) {
		// Delimit the next tier of equal specified counts, skipping
		// already-encoded cubes.
		for i < len(st.order) && !st.remaining[st.order[i]] {
			i++
		}
		if i >= len(st.order) {
			return candidate{}, false
		}
		spec := st.set.Cubes[st.order[i]].SpecifiedCount()
		var tier []int
		for i < len(st.order) && st.set.Cubes[st.order[i]].SpecifiedCount() == spec {
			if st.remaining[st.order[i]] {
				tier = append(tier, st.order[i])
			}
			i++
		}
		if cand, ok := st.scanTier(tier); ok {
			return cand, true
		}
	}
	return candidate{}, false
}

// scanTier checks every still-feasible (cube, position) pair of one tier in
// parallel. Positions proven unsolvable are pruned for the rest of this
// seed's construction (constraints only grow, so unsolvable stays
// unsolvable — DESIGN.md item 1).
func (st *encodeState) scanTier(tier []int) (candidate, bool) {
	type cubeResult struct {
		cands []candidate // solvable positions with their rank increase
	}
	results := make([]cubeResult, len(tier))
	var wg sync.WaitGroup
	var checkCount int64
	var mu sync.Mutex
	sem := make(chan struct{}, st.workers)
	for ti, ci := range tier {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti, ci int) {
			defer wg.Done()
			defer func() { <-sem }()
			var scratch gf2.CheckScratch
			var eqBuf []gf2.Equation
			var local int64
			c := st.set.Cubes[ci]
			feas := st.feasible[ci]
			for p := 0; p < st.L; p++ {
				if !feas[p] && !st.cfg.NoPruning {
					continue
				}
				eqBuf = st.table.Equations(c, p, eqBuf[:0])
				local++
				inc, ok := st.solver.Check(eqBuf, &scratch)
				if !ok {
					feas[p] = false
					continue
				}
				results[ti].cands = append(results[ti].cands, candidate{cube: ci, pos: p, rankInc: inc})
			}
			mu.Lock()
			checkCount += local
			mu.Unlock()
		}(ti, ci)
	}
	wg.Wait()
	st.checks += checkCount

	// Tie-break 1: fewest replaced variables (minimum rank increase).
	minInc := -1
	for _, r := range results {
		for _, c := range r.cands {
			if minInc < 0 || c.rankInc < minInc {
				minInc = c.rankInc
			}
		}
	}
	if minInc < 0 {
		return candidate{}, false
	}
	// Tie-break 2: the cube encodable at the fewest window positions.
	solvableCount := make(map[int]int)
	for _, r := range results {
		for _, c := range r.cands {
			solvableCount[c.cube]++
		}
	}
	best := candidate{cube: -1}
	bestCount := 0
	for _, r := range results {
		for _, c := range r.cands {
			if c.rankInc != minInc {
				continue
			}
			cnt := solvableCount[c.cube]
			if best.cube < 0 ||
				cnt < bestCount ||
				// Tie-break 3: nearest to the start of the window.
				(cnt == bestCount && c.pos < best.pos) ||
				(cnt == bestCount && c.pos == best.pos && c.cube < best.cube) {
				best = c
				bestCount = cnt
			}
		}
	}
	return best, true
}
