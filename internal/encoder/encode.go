package encoder

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cube"
	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/prng"
	"repro/internal/scan"
)

// Config describes one encoding run.
type Config struct {
	LFSR *lfsr.LFSR
	PS   *phaseshifter.PhaseShifter
	Geo  scan.Geometry
	// WindowLen is L, the number of vectors each seed expands into.
	// L = 1 is classical reseeding.
	WindowLen int
	// FillSeed keys the deterministic PRNG that fills free seed variables.
	FillSeed uint64
	// Workers bounds the candidate-scan parallelism; 0 means GOMAXPROCS.
	Workers int
	// NoPruning disables monotone feasibility pruning (ablation hook; the
	// result is identical, only slower).
	NoPruning bool
	// Tables optionally supplies prebuilt shared symbolic tables. They must
	// wrap this Config's exact LFSR, PS and Geo values; the window is
	// extended in place if the tables are shorter than WindowLen. Nil builds
	// private tables.
	Tables *Tables
}

// Assignment records where one cube was deterministically embedded.
type Assignment struct {
	Cube int // index into the input cube set
	Pos  int // window position (vector index within the seed's window)
}

// Seed is one computed LFSR seed together with the cubes it encodes.
type Seed struct {
	Value       gf2.Vec
	Assignments []Assignment
}

// Encoding is the result of compressing a cube set.
type Encoding struct {
	Cfg   Config
	Set   *cube.Set
	Seeds []Seed
	// ChecksPerformed counts linear-system consistency checks, a measure of
	// encoder effort used by the pruning ablation.
	ChecksPerformed int64
	// TableBuildTime is the wall time this encoding spent materialising
	// symbolic tables and equation indices — ~0 when Config.Tables served
	// everything from the shared arena.
	TableBuildTime time.Duration
}

// TDV returns the test data volume in bits: seeds × n.
func (e *Encoding) TDV() int { return len(e.Seeds) * e.Cfg.LFSR.Size() }

// TSL returns the test sequence length, in vectors, of the original
// window-based scheme: every seed expands into a full window.
func (e *Encoding) TSL() int { return len(e.Seeds) * e.Cfg.WindowLen }

// Encode compresses the cube set into LFSR seeds. The input set is not
// modified. Encode fails if some cube cannot be embedded anywhere even by a
// dedicated seed (the LFSR is too small for the test set).
func Encode(cfg Config, set *cube.Set) (*Encoding, error) {
	return EncodeCtx(context.Background(), cfg, set)
}

// EncodeCtx is Encode with cooperative cancellation: every candidate-scan
// worker polls the context once per checkStride consistency checks and the
// seed-construction loop polls it at every tier boundary, so a cancel or
// deadline stops the encoder within microseconds of the engines noticing.
// A cancelled encode returns an error wrapping context.Canceled or
// context.DeadlineExceeded; an uncancelled run is bit-identical to Encode.
func EncodeCtx(ctx context.Context, cfg Config, set *cube.Set) (*Encoding, error) {
	if cfg.WindowLen < 1 {
		return nil, fmt.Errorf("encoder: window length %d must be ≥ 1", cfg.WindowLen)
	}
	if set.Len() == 0 {
		return nil, fmt.Errorf("encoder: empty cube set")
	}
	if set.Width != cfg.Geo.Width {
		return nil, fmt.Errorf("encoder: cube width %d != scan width %d", set.Width, cfg.Geo.Width)
	}
	tabs := cfg.Tables
	if tabs == nil {
		var err error
		tabs, err = NewTables(cfg.LFSR, cfg.PS, cfg.Geo)
		if err != nil {
			return nil, err
		}
	} else if tabs.l != cfg.LFSR || tabs.ps != cfg.PS || tabs.geo != cfg.Geo {
		return nil, fmt.Errorf("encoder: Config.Tables built for a different decompressor")
	}
	t0 := time.Now()
	table, err := tabs.EnsureLenCtx(ctx, cfg.WindowLen)
	if err != nil {
		return nil, err
	}
	sys := tabs.Systems(set)
	built := time.Since(t0)
	enc, err := encodeWithTable(ctx, cfg, set, table, sys)
	if err != nil {
		return nil, err
	}
	enc.TableBuildTime = built
	return enc, nil
}

// candidate is one solvable (cube, position) system found during a scan.
type candidate struct {
	cube    int
	pos     int
	rankInc int
}

// scanView is one worker's private probe state: a lazily reduced copy of
// the expression table (see gf2.ReducedTable) plus elimination scratch.
// Views persist across tiers and seeds, so a (cube, position) re-probed
// after a commit only folds in the basis rows added since the last probe
// instead of re-eliminating against the whole basis. tick amortizes the
// worker's context polls across checkStride consistency checks.
type scanView struct {
	view    *gf2.ReducedTable
	scratch gf2.CheckScratch
	tick    int
}

// checkStride is how many consistency checks a scan worker performs
// between context polls. One CheckSystem costs tens of nanoseconds at
// minimum, so polling every 256 checks keeps cancellation latency in the
// tens of microseconds while the amortized poll cost stays below
// measurement noise.
const checkStride = 256

// pollCtx advances a worker's poll tick and, once per checkStride calls,
// checks the encode context. A fired context trips the shared stop flag so
// every other worker bails at its next cube claim.
func (st *encodeState) pollCtx(v *scanView) bool {
	if v.tick++; v.tick >= checkStride {
		v.tick = 0
		if st.ctx.Err() != nil {
			st.stop.Store(true)
			return true
		}
	}
	return false
}

type encodeState struct {
	ctx     context.Context
	cfg     Config
	set     *cube.Set
	table   *ExprTable
	sys     *systemIndex
	n       int
	L       int
	stride  int32 // expression rows per window position
	workers int

	// order holds cube indices sorted by descending specified count; tiers
	// are contiguous runs of equal counts.
	order     []int
	remaining []bool // indexed by cube: still to be encoded
	nRemain   int

	// feasible[cube][pos]: not yet proven unsolvable for the current seed.
	feasible [][]bool

	solver *gf2.Solver
	views  []*scanView
	eqBuf  []gf2.Equation
	checks int64

	// stop is tripped by the first worker that observes a fired context;
	// the other scan workers poll it per cube claim and bail early.
	stop atomic.Bool
}

func encodeWithTable(ctx context.Context, cfg Config, set *cube.Set, table *ExprTable, sys *systemIndex) (*Encoding, error) {
	st := &encodeState{
		ctx:     ctx,
		cfg:     cfg,
		set:     set,
		table:   table,
		sys:     sys,
		n:       cfg.LFSR.Size(),
		L:       cfg.WindowLen,
		stride:  int32(table.Stride()),
		workers: cfg.Workers,
	}
	if st.workers <= 0 {
		st.workers = runtime.GOMAXPROCS(0)
	}
	st.order = make([]int, set.Len())
	for i := range st.order {
		st.order[i] = i
	}
	sort.SliceStable(st.order, func(a, b int) bool {
		return set.Cubes[st.order[a]].SpecifiedCount() > set.Cubes[st.order[b]].SpecifiedCount()
	})
	st.remaining = make([]bool, set.Len())
	for i := range st.remaining {
		st.remaining[i] = true
	}
	st.nRemain = set.Len()
	st.feasible = make([][]bool, set.Len())
	for i := range st.feasible {
		st.feasible[i] = make([]bool, st.L)
	}
	st.solver = gf2.NewSolver(st.n)
	st.views = make([]*scanView, st.workers)

	enc := &Encoding{Cfg: cfg, Set: set}
	fill := prng.New(cfg.FillSeed)
	for st.nRemain > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("encoder: encode stopped after %d seeds (%d/%d cubes): %w",
				len(enc.Seeds), set.Len()-st.nRemain, set.Len(), err)
		}
		seed, err := st.buildSeed(fill)
		if err != nil {
			return nil, err
		}
		enc.Seeds = append(enc.Seeds, seed)
	}
	enc.ChecksPerformed = st.checks
	return enc, nil
}

// viewFor lazily creates the probe state of one worker; unused workers
// never pay for their reduced-table copy.
func (st *encodeState) viewFor(w int) *scanView {
	if st.views[w] == nil {
		st.views[w] = &scanView{view: gf2.NewReducedTable(st.solver, st.table.Rows())}
	}
	return st.views[w]
}

// buildSeed constructs one seed: it commits the densest remaining cube at
// the earliest solvable window position, then greedily folds in more cubes
// per the paper's criteria until nothing else fits.
func (st *encodeState) buildSeed(fill *prng.Source) (Seed, error) {
	st.solver.Reset()
	for _, ci := range st.order {
		if st.remaining[ci] {
			for p := range st.feasible[ci] {
				st.feasible[ci][p] = true
			}
		}
	}

	var seed Seed
	v0 := st.viewFor(0)

	// First cube: densest remaining, at the first solvable position
	// (position 0 in the common case the paper assumes).
	first := -1
	for _, ci := range st.order {
		if st.remaining[ci] {
			first = ci
			break
		}
	}
	firstPos := -1
	for p := 0; p < st.L; p++ {
		if st.pollCtx(v0) {
			return Seed{}, fmt.Errorf("encoder: encode stopped scanning cube %d: %w", first, st.ctx.Err())
		}
		st.checks++
		if _, ok := v0.view.CheckSystem(st.sys.base[first], int32(p)*st.stride, st.sys.rhs[first], &v0.scratch); ok {
			firstPos = p
			break
		}
	}
	if firstPos < 0 {
		return Seed{}, fmt.Errorf("encoder: cube %d (%d specified bits) cannot be embedded anywhere in a fresh window; increase the LFSR size (n=%d)", first, st.set.Cubes[first].SpecifiedCount(), st.n)
	}
	st.commit(first, firstPos, &seed)

	for {
		cand, ok, err := st.scanTiers()
		if err != nil {
			return Seed{}, err
		}
		if !ok {
			break
		}
		st.commit(cand.cube, cand.pos, &seed)
	}

	seed.Value = st.solver.Solution(func(int) uint8 { return fill.Bit() })
	return seed, nil
}

func (st *encodeState) commit(ci, pos int, seed *Seed) {
	st.eqBuf = st.table.Equations(st.set.Cubes[ci], pos, st.eqBuf[:0])
	if _, ok := st.solver.AddSystem(st.eqBuf); !ok {
		panic("encoder: committing a system that was just verified solvable")
	}
	seed.Assignments = append(seed.Assignments, Assignment{Cube: ci, Pos: pos})
	st.remaining[ci] = false
	st.nRemain--
}

// scanTiers walks specified-count tiers in descending order and returns the
// winning candidate of the first tier that has any solvable system, applying
// the paper's tie-breaks.
func (st *encodeState) scanTiers() (candidate, bool, error) {
	i := 0
	for i < len(st.order) {
		// Delimit the next tier of equal specified counts, skipping
		// already-encoded cubes.
		for i < len(st.order) && !st.remaining[st.order[i]] {
			i++
		}
		if i >= len(st.order) {
			return candidate{}, false, nil
		}
		spec := st.set.Cubes[st.order[i]].SpecifiedCount()
		var tier []int
		for i < len(st.order) && st.set.Cubes[st.order[i]].SpecifiedCount() == spec {
			if st.remaining[st.order[i]] {
				tier = append(tier, st.order[i])
			}
			i++
		}
		cand, ok, err := st.scanTier(tier)
		if err != nil {
			return candidate{}, false, err
		}
		if ok {
			return cand, true, nil
		}
	}
	return candidate{}, false, nil
}

// scanCube probes every still-feasible position of one cube through a
// worker's reduced view. Positions proven unsolvable are pruned for the
// rest of this seed's construction (constraints only grow, so unsolvable
// stays unsolvable).
func (st *encodeState) scanCube(v *scanView, ci int, out *[]candidate) int64 {
	feas := st.feasible[ci]
	base, rhs := st.sys.base[ci], st.sys.rhs[ci]
	var local int64
	for p := 0; p < st.L; p++ {
		if !feas[p] && !st.cfg.NoPruning {
			continue
		}
		if st.pollCtx(v) {
			return local // cancelled: the caller discards this tier's scan
		}
		local++
		inc, ok := v.view.CheckSystem(base, int32(p)*st.stride, rhs, &v.scratch)
		if !ok {
			feas[p] = false
			continue
		}
		*out = append(*out, candidate{cube: ci, pos: p, rankInc: inc})
	}
	return local
}

// scanTier checks every still-feasible (cube, position) pair of one tier,
// fanned out over the persistent worker views. The basis is immutable for
// the whole scan, each view and each cube's feasibility row is owned by
// exactly one goroutine at a time, and results are index-addressed — so the
// tie-breaks below see the same candidate set for any worker count.
func (st *encodeState) scanTier(tier []int) (candidate, bool, error) {
	results := make([][]candidate, len(tier))
	var checkCount int64
	workers := st.workers
	if workers > len(tier) {
		workers = len(tier)
	}
	if workers <= 1 {
		v := st.viewFor(0)
		for ti, ci := range tier {
			if st.stop.Load() {
				break
			}
			checkCount += st.scanCube(v, ci, &results[ti])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			v := st.viewFor(w)
			wg.Add(1)
			go func(v *scanView) {
				defer wg.Done()
				var local int64
				for !st.stop.Load() {
					ti := int(next.Add(1)) - 1
					if ti >= len(tier) {
						break
					}
					local += st.scanCube(v, tier[ti], &results[ti])
				}
				mu.Lock()
				checkCount += local
				mu.Unlock()
			}(v)
		}
		wg.Wait()
	}
	st.checks += checkCount
	if st.stop.Load() {
		// A cancelled scan saw only part of its tier; its candidates must
		// not influence a committed encoding.
		return candidate{}, false, fmt.Errorf("encoder: candidate scan stopped: %w", st.ctx.Err())
	}

	// Tie-break 1: fewest replaced variables (minimum rank increase).
	minInc := -1
	for _, cands := range results {
		for _, c := range cands {
			if minInc < 0 || c.rankInc < minInc {
				minInc = c.rankInc
			}
		}
	}
	if minInc < 0 {
		return candidate{}, false, nil
	}
	// Tie-break 2: the cube encodable at the fewest window positions.
	solvableCount := make(map[int]int)
	for _, cands := range results {
		for _, c := range cands {
			solvableCount[c.cube]++
		}
	}
	best := candidate{cube: -1}
	bestCount := 0
	for _, cands := range results {
		for _, c := range cands {
			if c.rankInc != minInc {
				continue
			}
			cnt := solvableCount[c.cube]
			if best.cube < 0 ||
				cnt < bestCount ||
				// Tie-break 3: nearest to the start of the window.
				(cnt == bestCount && c.pos < best.pos) ||
				(cnt == bestCount && c.pos == best.pos && c.cube < best.cube) {
				best = c
				bestCount = cnt
			}
		}
	}
	return best, true, nil
}
