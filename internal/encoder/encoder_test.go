package encoder

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"repro/internal/benchprofile"
	"repro/internal/cube"
	"repro/internal/gf2"
	"repro/internal/prng"
)

func smallConfig(t testing.TB, n, width, chains, L int) Config {
	t.Helper()
	cfg, err := StandardConfig(n, width, chains, L)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestTableMatchesGeneration pins the symbolic expression table to the
// concrete window generator: for random seeds, evaluating each table
// expression at the seed must equal the generated stimulus bit. Everything
// else in the repository rests on this equality.
func TestTableMatchesGeneration(t *testing.T) {
	cfg := smallConfig(t, 16, 50, 4, 6)
	table, err := BuildExprTable(cfg.LFSR, cfg.PS, cfg.Geo, cfg.WindowLen)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(99)
	for trial := 0; trial < 10; trial++ {
		seed := gf2.NewVec(16)
		for i := 0; i < 16; i++ {
			seed.SetBit(i, src.Bit())
		}
		window := GenerateWindow(cfg.LFSR, cfg.PS, cfg.Geo, seed, cfg.WindowLen)
		for v := 0; v < cfg.WindowLen; v++ {
			for pos := 0; pos < cfg.Geo.Width; pos++ {
				want := window[v].Bit(pos)
				got := table.Expr(v, pos).Dot(seed)
				if got != want {
					t.Fatalf("trial %d: vector %d pos %d: table says %d, generator says %d", trial, v, pos, got, want)
				}
			}
		}
	}
}

func genSet(t testing.TB, name string, scaleCubes int) *cube.Set {
	t.Helper()
	p, err := benchprofile.ByName(name, benchprofile.ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	if scaleCubes > 0 {
		p.NumCubes = scaleCubes
	}
	return p.Generate()
}

func TestEncodeRoundTrip(t *testing.T) {
	set := genSet(t, "s13207", 40)
	cfg := smallConfig(t, 16, set.Width, 8, 12)
	enc, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Verify(); err != nil {
		t.Fatal(err)
	}
	if enc.TDV() != len(enc.Seeds)*16 {
		t.Errorf("TDV = %d", enc.TDV())
	}
	if enc.TSL() != len(enc.Seeds)*12 {
		t.Errorf("TSL = %d", enc.TSL())
	}
	if len(enc.Seeds) == 0 || len(enc.Seeds) > set.Len() {
		t.Errorf("suspicious seed count %d for %d cubes", len(enc.Seeds), set.Len())
	}
}

func TestClassicalReseedingL1(t *testing.T) {
	set := genSet(t, "s9234", 30)
	cfg := smallConfig(t, 24, set.Width, 8, 1)
	enc, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Verify(); err != nil {
		t.Fatal(err)
	}
	for si, s := range enc.Seeds {
		for _, a := range s.Assignments {
			if a.Pos != 0 {
				t.Errorf("seed %d: L=1 assignment at pos %d", si, a.Pos)
			}
		}
	}
}

func TestWindowEncodingNeedsFewerSeeds(t *testing.T) {
	// The motivation experiment of the paper's Table 1: larger L ⇒ fewer
	// seeds (lower TDV) at the cost of a longer sequence.
	set := genSet(t, "s13207", 60)
	var prevSeeds int
	for i, L := range []int{1, 8, 32} {
		cfg := smallConfig(t, 16, set.Width, 8, L)
		enc, err := Encode(cfg, set)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(enc.Seeds) > prevSeeds {
			t.Errorf("L=%d needs %d seeds, more than previous %d", L, len(enc.Seeds), prevSeeds)
		}
		prevSeeds = len(enc.Seeds)
	}
}

// assertEncodingsIdentical compares two encodings bit for bit: seed values,
// every assignment, and the consistency-check count.
func assertEncodingsIdentical(t *testing.T, label string, a, b *Encoding) {
	t.Helper()
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("%s: seed count %d vs %d", label, len(a.Seeds), len(b.Seeds))
	}
	for i := range a.Seeds {
		if !a.Seeds[i].Value.Equal(b.Seeds[i].Value) {
			t.Fatalf("%s: seed %d value differs", label, i)
		}
		if len(a.Seeds[i].Assignments) != len(b.Seeds[i].Assignments) {
			t.Fatalf("%s: seed %d assignment count differs", label, i)
		}
		for j := range a.Seeds[i].Assignments {
			if a.Seeds[i].Assignments[j] != b.Seeds[i].Assignments[j] {
				t.Fatalf("%s: seed %d assignment %d differs", label, i, j)
			}
		}
	}
	if a.ChecksPerformed != b.ChecksPerformed {
		t.Fatalf("%s: checks %d vs %d", label, a.ChecksPerformed, b.ChecksPerformed)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	set := genSet(t, "s15850", 30)
	cfg := smallConfig(t, 20, set.Width, 8, 10)
	a, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	assertEncodingsIdentical(t, "rerun", a, b)
}

// TestEncodeWorkersBitIdentical asserts the candidate scan's determinism
// contract: seeds, assignments and even the number of consistency checks
// are identical for any Workers value (the scan fans out over per-worker
// reduced views, but every (cube, position) verdict is value-deterministic
// and the tie-breaks are index-addressed).
func TestEncodeWorkersBitIdentical(t *testing.T) {
	set := genSet(t, "s38417", 0)
	cfg := smallConfig(t, 32, set.Width, 8, 12)
	cfg.Workers = 1
	want, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 0} {
		cfg.Workers = workers
		got, err := Encode(cfg, set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertEncodingsIdentical(t, fmt.Sprintf("workers=%d", workers), want, got)
	}
}

// TestEncodeGolden locks the exact encoder output (seed bits, assignments,
// check counts, phase-shifter variant) to the values produced before the
// reduced-basis engine landed, recorded from the naive per-check Gaussian
// re-elimination implementation. Any optimisation must keep these hashes.
func TestEncodeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	golden := []struct {
		circuit string
		L       int
		seeds   int
		variant uint64
		checks  int64
		sha     string
	}{
		{"s9234", 1, 17, 0, 422, "3bee2f1a5a219130"},
		{"s9234", 8, 12, 0, 2241, "1debcd69beb33f9e"},
		{"s13207", 12, 8, 0, 2655, "12117b5814d3a21f"},
		{"s15850", 10, 10, 0, 2419, "2673aac6a4874203"},
		{"s38417", 16, 28, 0, 18955, "6525763250d6d42c"},
		{"s38584", 24, 10, 1, 6787, "fa5ecc7a39d98366"},
	}
	for _, g := range golden {
		g := g
		t.Run(fmt.Sprintf("%s_L%d", g.circuit, g.L), func(t *testing.T) {
			t.Parallel()
			p, err := benchprofile.ByName(g.circuit, benchprofile.ScaleCI)
			if err != nil {
				t.Fatal(err)
			}
			set := p.Generate()
			enc, variant, err := EncodeAuto(p.LFSRSize, p.Width, p.Chains, g.L, set)
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.New()
			for _, s := range enc.Seeds {
				fmt.Fprintf(h, "%s\n", s.Value.String())
				for _, a := range s.Assignments {
					fmt.Fprintf(h, "%d@%d ", a.Cube, a.Pos)
				}
				fmt.Fprintln(h)
			}
			sha := hex.EncodeToString(h.Sum(nil)[:8])
			if len(enc.Seeds) != g.seeds || variant != g.variant || enc.ChecksPerformed != g.checks || sha != g.sha {
				t.Fatalf("golden mismatch: seeds=%d variant=%d checks=%d sha=%s, want seeds=%d variant=%d checks=%d sha=%s",
					len(enc.Seeds), variant, enc.ChecksPerformed, sha, g.seeds, g.variant, g.checks, g.sha)
			}
		})
	}
}

// TestEncodeSharedTablesIdentical runs the same encoding with private
// tables, with explicitly shared tables, and through the TablesCache path;
// all three must agree bit for bit, and the shared runs must report ~zero
// table-build time on reuse.
func TestEncodeSharedTablesIdentical(t *testing.T) {
	set := genSet(t, "s13207", 40)
	cfg := smallConfig(t, 16, set.Width, 8, 12)
	want, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	tabs, err := NewTables(cfg.LFSR, cfg.PS, cfg.Geo)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tables = tabs
	first, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	assertEncodingsIdentical(t, "shared tables", want, first)
	again, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	assertEncodingsIdentical(t, "shared tables reuse", want, again)
	// The reuse path does no symbolic simulation; a generous absolute cap
	// keeps the assertion meaningful without racing the scheduler.
	if again.TableBuildTime > 100*time.Millisecond {
		t.Errorf("reused tables reported %v build time", again.TableBuildTime)
	}

	cache := NewTablesCache()
	a, va, err := EncodeAutoCached(16, set.Width, 8, 12, set, 0, cache)
	if err != nil {
		t.Fatal(err)
	}
	b, vb, err := EncodeAutoWorkers(16, set.Width, 8, 12, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	if va != vb {
		t.Fatalf("cached variant %d != uncached %d", va, vb)
	}
	assertEncodingsIdentical(t, "cache vs fresh", b, a)
}

// TestEncodeRejectsForeignTables guards the Config.Tables validation: a
// Tables built for one decompressor must not silently encode another.
func TestEncodeRejectsForeignTables(t *testing.T) {
	set := genSet(t, "s9234", 10)
	cfg := smallConfig(t, 24, set.Width, 8, 4)
	other := smallConfig(t, 24, set.Width, 8, 4)
	tabs, err := NewTables(other.LFSR, other.PS, other.Geo)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tables = tabs
	if _, err := Encode(cfg, set); err == nil {
		t.Error("foreign tables accepted")
	}
}

func TestPruningAblationIdentical(t *testing.T) {
	// Monotone feasibility pruning must not change the result, only the
	// number of consistency checks performed.
	set := genSet(t, "s9234", 25)
	cfg := smallConfig(t, 24, set.Width, 8, 8)
	pruned, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoPruning = true
	full, err := Encode(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Seeds) != len(full.Seeds) {
		t.Fatalf("pruning changed seed count: %d vs %d", len(pruned.Seeds), len(full.Seeds))
	}
	for i := range pruned.Seeds {
		if !pruned.Seeds[i].Value.Equal(full.Seeds[i].Value) {
			t.Fatalf("pruning changed seed %d", i)
		}
	}
	if pruned.ChecksPerformed > full.ChecksPerformed {
		t.Errorf("pruning performed more checks (%d) than full scan (%d)", pruned.ChecksPerformed, full.ChecksPerformed)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	set := genSet(t, "s9234", 10)
	cfg := smallConfig(t, 24, set.Width, 8, 4)
	cfg.WindowLen = 0
	if _, err := Encode(cfg, set); err == nil {
		t.Error("L=0 accepted")
	}
	cfg = smallConfig(t, 24, set.Width+10, 8, 4)
	if _, err := Encode(cfg, set); err == nil {
		t.Error("width mismatch accepted")
	}
	cfg = smallConfig(t, 24, set.Width, 8, 4)
	if _, err := Encode(cfg, cube.NewSet(set.Width)); err == nil {
		t.Error("empty set accepted")
	}
}

func TestEncodeFailsWhenLFSRTooSmall(t *testing.T) {
	// A cube with more specified bits than a tiny LFSR can ever satisfy at
	// any position should produce a clear error, not loop forever.
	set := cube.NewSet(64)
	dense := cube.New(64)
	for i := 0; i < 64; i++ {
		dense.Set(i, uint8(i%2))
	}
	set.Add(dense)
	cfg := smallConfig(t, 12, 64, 4, 2)
	if _, err := Encode(cfg, set); err == nil {
		t.Error("expected failure for oversized cube, got success")
	}
}

func TestAllCIProfilesEncodable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range benchprofile.All(benchprofile.ScaleCI) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			set := p.Generate()
			cfg := smallConfig(t, p.LFSRSize, p.Width, p.Chains, 16)
			enc, err := Encode(cfg, set)
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
