package encoder

import (
	"fmt"

	"repro/internal/gf2"
)

// Windows expands every seed into its L-vector window. The result is
// indexed [seed][windowPos]; it is the exact stimulus stream the CUT sees
// when every window is generated in full in Normal mode.
func (e *Encoding) Windows() [][]gf2.Vec {
	out := make([][]gf2.Vec, len(e.Seeds))
	for i, s := range e.Seeds {
		out[i] = GenerateWindow(e.Cfg.LFSR, e.Cfg.PS, e.Cfg.Geo, s.Value, e.Cfg.WindowLen)
	}
	return out
}

// Verify regenerates every seed's window and confirms that each cube
// matches the vector at its assigned position and that every input cube was
// assigned exactly once. This is the end-to-end soundness check of the
// whole encoding pipeline (symbolic table, solver, seed fill, and concrete
// LFSR generation must all agree for it to pass).
func (e *Encoding) Verify() error {
	assigned := make([]int, e.Set.Len())
	for si, s := range e.Seeds {
		window := GenerateWindow(e.Cfg.LFSR, e.Cfg.PS, e.Cfg.Geo, s.Value, e.Cfg.WindowLen)
		for _, a := range s.Assignments {
			if a.Pos < 0 || a.Pos >= e.Cfg.WindowLen {
				return fmt.Errorf("encoder: seed %d assigns cube %d to position %d outside window", si, a.Cube, a.Pos)
			}
			if !e.Set.Cubes[a.Cube].Matches(window[a.Pos]) {
				return fmt.Errorf("encoder: seed %d: cube %d does not match window vector %d", si, a.Cube, a.Pos)
			}
			assigned[a.Cube]++
		}
	}
	for ci, n := range assigned {
		if n != 1 {
			return fmt.Errorf("encoder: cube %d assigned %d times, want exactly 1", ci, n)
		}
	}
	return nil
}
