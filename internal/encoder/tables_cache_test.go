package encoder

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestTablesCacheBuildsOnceUnderRace hammers one configuration from many
// goroutines and asserts exactly one Tables build happened, with every
// caller receiving the same instance. Run with -race.
func TestTablesCacheBuildsOnceUnderRace(t *testing.T) {
	cache := NewTablesCache()
	const goroutines = 32
	var wg sync.WaitGroup
	got := make([]*Tables, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g], errs[g] = cache.TablesFor(24, 64, 8, 4, 0)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got[g] != got[0] {
			t.Fatalf("goroutine %d received a different Tables instance", g)
		}
	}
	if b := cache.Builds(); b != 1 {
		t.Fatalf("Builds = %d, want exactly 1 (singleflight)", b)
	}
}

// TestTablesCacheSetMaxEvicts bounds the cache below the number of
// distinct configurations and checks LRU eviction plus rebuild-on-return.
func TestTablesCacheSetMaxEvicts(t *testing.T) {
	cache := NewTablesCache()
	cache.SetMax(2)
	for _, L := range []int{2, 3, 4} {
		if _, err := cache.TablesFor(24, 64, 8, L, 0); err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (bounded)", cache.Len())
	}
	if cache.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", cache.Evictions())
	}
	// L=2 is the LRU victim; re-requesting it rebuilds.
	if _, err := cache.TablesFor(24, 64, 8, 2, 0); err != nil {
		t.Fatalf("rebuild after eviction: %v", err)
	}
	if b := cache.Builds(); b != 4 {
		t.Fatalf("Builds = %d, want 4 (3 distinct + 1 rebuild)", b)
	}
}

// TestEnsureLenCtxAbortResumes cancels a symbolic-table extension midway
// and verifies (a) the error wraps the context error, (b) the tables stay
// internally consistent, and (c) a later uncancelled call resumes and
// produces a table identical to one built in a single shot.
func TestEnsureLenCtxAbortResumes(t *testing.T) {
	cfg, err := StandardConfig(24, 64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	aborted, err := NewTables(cfg.LFSR, cfg.PS, cfg.Geo)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := aborted.EnsureLenCtx(canceled, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnsureLenCtx(cancelled) err = %v, want context.Canceled", err)
	}
	snap, err := aborted.EnsureLenCtx(context.Background(), 8)
	if err != nil {
		t.Fatalf("resume after abort: %v", err)
	}

	fresh, err := NewTables(cfg.LFSR, cfg.PS, cfg.Geo)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.EnsureLen(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(aborted.arena) != len(fresh.arena) {
		t.Fatalf("arena length after resume %d != fresh %d", len(aborted.arena), len(fresh.arena))
	}
	for i := range fresh.arena {
		if aborted.arena[i] != fresh.arena[i] {
			t.Fatalf("arena word %d differs after abort+resume", i)
		}
	}
	if snap.L != want.L || snap.N != want.N {
		t.Fatalf("snapshot header differs: %+v vs %+v", snap, want)
	}
}
