// Package litdata hard-codes the published numbers this paper compares
// against (its Tables 1–4). The competing systems ([11] Kaseridis et al.,
// [22] Li & Chakrabarty, and the test-data-compression methods of Table 4)
// are closed or unavailable; the paper itself compares against their
// published numbers, and this reproduction does the same. The paper's own
// reported results are also recorded here so every experiment can print
// paper-vs-measured side by side.
package litdata

// Circuits lists the five ISCAS'89 circuits in the paper's table order.
var Circuits = []string{"s9234", "s13207", "s15850", "s38417", "s38584"}

// Table1Entry is one (circuit, L) cell of the paper's Table 1.
type Table1Entry struct {
	TDV int // test data volume, bits
	TSL int // test sequence length, vectors
}

// Table1 holds the paper's Table 1: classical (L=1) vs window-based
// reseeding. Keyed by circuit, then by window length L ∈ {1, 50, 200, 500}.
var Table1 = map[string]map[int]Table1Entry{
	"s9234":  {1: {10692, 243}, 50: {8008, 9100}, 200: {7128, 32400}, 500: {6688, 76000}},
	"s13207": {1: {8856, 369}, 50: {5328, 11100}, 200: {3816, 31800}, 500: {2688, 56000}},
	"s15850": {1: {11622, 298}, 50: {7410, 9500}, 200: {6669, 34200}, 500: {6201, 79500}},
	"s38417": {1: {58225, 685}, 50: {50660, 29800}, 200: {48110, 113200}, 500: {47005, 276500}},
	"s38584": {1: {22680, 405}, 50: {10584, 9450}, 200: {7056, 25200}, 500: {5152, 46000}},
}

// LFSRSize is the paper's Table 1 LFSR size per circuit.
var LFSRSize = map[string]int{
	"s9234": 44, "s13207": 24, "s15850": 39, "s38417": 85, "s38584": 56,
}

// Table2Entry is one (circuit, L) row slice of the paper's Table 2.
type Table2Entry struct {
	Orig int // window-based TSL with a normal LFSR
	Prop int // TSL with the State Skip LFSR (best S ∈ {2,5,10}, k ≤ 24)
	Impr int // improvement, percent
}

// Table2 holds the paper's Table 2 test-sequence-length improvements.
var Table2 = map[string]map[int]Table2Entry{
	"s9234":  {50: {9100, 1082, 88}, 200: {32400, 1784, 94}, 500: {76000, 3055, 96}},
	"s13207": {50: {11100, 1309, 88}, 200: {31800, 1756, 94}, 500: {56000, 2701, 95}},
	"s15850": {50: {9500, 1129, 88}, 200: {34200, 1740, 95}, 500: {79500, 2791, 96}},
	"s38417": {50: {29800, 7626, 74}, 200: {113200, 13113, 88}, 500: {276500, 21865, 92}},
	"s38584": {50: {9450, 3805, 60}, 200: {25200, 6639, 74}, 500: {46000, 9054, 80}},
}

// Table3Entry is one method column of the paper's Table 3 (test set
// embedding comparison at L=300).
type Table3Entry struct {
	TDV int
	TSL int
}

// Table3 holds the paper's Table 3: the proposed method vs the test set
// embedding approaches [11] (Kaseridis et al., ETS'05) and [22] (Li &
// Chakrabarty, reconfigurable interconnection network).
var Table3 = map[string]map[string]Table3Entry{
	"s9234":  {"[11]": {7020, 24592}, "[22]": {648, 135765}, "prop": {6864, 2163}},
	"s13207": {"[11]": {3475, 24724}, "[22]": {162, 152596}, "prop": {3336, 2072}},
	"s15850": {"[11]": {6520, 27630}, "[22]": {396, 222336}, "prop": {6357, 2138}},
	"s38417": {"[11]": {48418, 85885}, "[22]": {5440, 625273}, "prop": {47855, 18512}},
	"s38584": {"[11]": {6384, 29358}, "[22]": {228, 383009}, "prop": {6272, 7489}},
}

// Table4Method is one test-data-compression method column of the paper's
// Table 4. TDV entries of -1 mean the paper's table does not give a usable
// value for that circuit (the published table typesetting merges several
// columns; only unambiguous cells are recorded here).
type Table4Method struct {
	Name string
	TDV  map[string]int
}

// Table4Compression holds the unambiguous test-data-compression TDV values
// from the paper's Table 4.
var Table4Compression = []Table4Method{
	{Name: "[1] PIDISC", TDV: map[string]int{
		"s9234": 15092, "s13207": 12798, "s15850": 15480, "s38417": 37020, "s38584": 31574}},
	{Name: "[17] seed compr.", TDV: map[string]int{
		"s9234": 12445, "s13207": 11859, "s15850": 12663, "s38417": 36430, "s38584": 30355}},
	{Name: "[30] RESPIN++", TDV: map[string]int{
		"s9234": 17198, "s13207": 26004, "s15850": 32226, "s38417": 89132, "s38584": 63232}},
}

// Table4Prop holds the paper's own Table 4 columns: classical LFSR
// reseeding (L=1) and the proposed method at L=200.
var Table4Prop = map[string]struct {
	ClassicalTSL, ClassicalTDV int
	PropTSL, PropTDV           int
}{
	"s9234":  {243, 10692, 1784, 7128},
	"s13207": {369, 8856, 1756, 3816},
	"s15850": {298, 11622, 1740, 6669},
	"s38417": {685, 58225, 13113, 48110},
	"s38584": {405, 22680, 6639, 7056},
}

// HWOverhead records the paper's §4 hardware numbers for s13207.
var HWOverhead = struct {
	SkipGEAtK12, SkipGEAtK32           int // State Skip circuit GE at k=12 and k=32
	RestOfDecompressorGE               int // LFSR+PS+counters+control, excl. Mode Select
	ModeSelectGEMin, ModeSelectGEMax   int // over 50 ≤ L ≤ 500, 2 ≤ S ≤ 50
	SoCModeSelectMin, SoCModeSelectMax int // five-core SoC, L=200 S=10 k=10
	SoCAreaPercent                     float64
}{52, 119, 320, 44, 262, 107, 373, 6.6}
