package hwcost

import (
	"testing"
	"testing/quick"

	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/prng"
)

func TestCostLinearIdentityFree(t *testing.T) {
	net := CostLinear(gf2.Identity(8))
	if net.NaiveXORs != 0 || net.CSEXORs != 0 {
		t.Errorf("identity needs no XORs, got naive=%d cse=%d", net.NaiveXORs, net.CSEXORs)
	}
}

func TestCostLinearSharing(t *testing.T) {
	// Rows {0,1,2}, {0,1,3}, {0,1,2}: CSE builds a0^a1 once, then the
	// duplicated rows 0 and 2 collapse onto the same shared signal, so the
	// whole network needs 3 gates against 6 naive.
	m := gf2.NewMat(3, 4)
	for i := 0; i < 3; i++ {
		m.Set(i, 0, 1)
		m.Set(i, 1, 1)
		m.Set(i, (i%2)+2, 1)
	}
	net := CostLinear(m)
	if net.NaiveXORs != 6 {
		t.Errorf("naive = %d, want 6", net.NaiveXORs)
	}
	if net.CSEXORs >= net.NaiveXORs {
		t.Errorf("CSE (%d) did not beat naive (%d)", net.CSEXORs, net.NaiveXORs)
	}
	if net.CSEXORs != 3 {
		t.Errorf("CSE = %d, want 3", net.CSEXORs)
	}
}

func TestCSENeverWorse(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.New(seed)
		m := gf2.NewMat(12, 12)
		for i := 0; i < 12; i++ {
			for j := 0; j < 12; j++ {
				if src.Bit() == 1 {
					m.Set(i, j, 1)
				}
			}
		}
		net := CostLinear(m)
		return net.CSEXORs <= net.NaiveXORs && net.CSEXORs >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSkipCircuitCostTrend reproduces the paper's §4 observation on s13207's
// n=24 register: skip-circuit cost grows mildly with k and stays within a
// couple hundred GE for k ≤ 32 (paper: 52 GE at k=12 → 119 GE at k=32).
func TestSkipCircuitCostTrend(t *testing.T) {
	l, err := lfsr.NewStandard(lfsr.Fibonacci, 24)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, k := range []int{4, 8, 12, 16, 24, 32} {
		ge := CostLinear(l.SkipMatrix(uint64(k))).GE()
		if k >= 12 && ge < prev*0.5 {
			t.Errorf("k=%d: GE %.0f fell sharply from %.0f", k, ge, prev)
		}
		if ge <= 0 || ge > 600 {
			t.Errorf("k=%d: GE %.0f out of plausible range", k, ge)
		}
		prev = ge
	}
	// k=32 must cost more than k=4 — the monotone trend of the paper.
	ge4 := CostLinear(l.SkipMatrix(4)).GE()
	ge32 := CostLinear(l.SkipMatrix(32)).GE()
	if ge32 <= ge4 {
		t.Errorf("GE(k=32)=%.0f not above GE(k=4)=%.0f", ge32, ge4)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCounterCosts(t *testing.T) {
	if Counter(0) != 0 || CounterFor(1) == 0 {
		t.Error("counter edge cases wrong")
	}
	if Counter(8) <= Counter(4) {
		t.Error("counter cost not monotone in width")
	}
	if Comparator(0) != 0 || Comparator(4) <= 0 {
		t.Error("comparator edge cases wrong")
	}
	if DecodeTerm(1) <= 0 || DecodeTerm(6) <= DecodeTerm(2) {
		t.Error("decode term cost not monotone")
	}
}

func TestCostLinearDeterministic(t *testing.T) {
	l, _ := lfsr.NewStandard(lfsr.Fibonacci, 44)
	a := CostLinear(l.SkipMatrix(10))
	b := CostLinear(l.SkipMatrix(10))
	if a != b {
		t.Errorf("CostLinear not deterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkCostLinearSkip24(b *testing.B) {
	l, _ := lfsr.NewStandard(lfsr.Fibonacci, 85)
	m := l.SkipMatrix(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CostLinear(m)
	}
}
