// Package hwcost estimates the silicon cost of the decompression hardware
// in gate equivalents (GE), the unit the paper reports (1 GE = one 2-input
// NAND). The model is technology-independent: each primitive has a fixed GE
// weight taken from typical standard-cell libraries, and linear (XOR)
// networks are costed after greedy common-subexpression elimination (Paar's
// algorithm), which is how synthesis tools actually share XOR terms.
//
// Absolute numbers from such a model track real synthesis only to first
// order; EXPERIMENTS.md therefore compares *trends* (GE versus speedup
// factor k, GE versus L and S) against the paper's figures, and the orders
// of magnitude line up.
package hwcost

import (
	"math"

	"repro/internal/gf2"
)

// Gate-equivalent weights of the primitives, in units of NAND2 = 1.
const (
	GEXor2 = 2.25 // 2-input XOR
	GEMux2 = 1.75 // 2-input multiplexer
	GEDFF  = 4.25 // D flip-flop
	GEAnd2 = 1.25 // 2-input AND/OR/NOR
	GEInv  = 0.75 // inverter
)

// XorNetwork is the cost summary of a linear output network.
type XorNetwork struct {
	Inputs    int
	Outputs   int
	NaiveXORs int // XOR2 count without sharing: Σ (row weight − 1)
	CSEXORs   int // XOR2 count after Paar common-subexpression elimination
}

// NaiveGE returns the GE cost without sharing.
func (x XorNetwork) NaiveGE() float64 { return float64(x.NaiveXORs) * GEXor2 }

// GE returns the GE cost with sharing.
func (x XorNetwork) GE() float64 { return float64(x.CSEXORs) * GEXor2 }

// CostLinear costs the network computing out = M·in, where row i of M
// lists which inputs feed output i.
//
// Paar's greedy CSE repeatedly finds the pair of signals that co-occurs in
// the most outputs, materialises their XOR as a new shared signal, and
// rewrites the outputs to use it. For LFSR skip matrices this typically
// saves 30–50% of the XORs, which is what lets the paper quote ~52 GE for a
// k=12 skip circuit on a 24-bit register.
func CostLinear(m gf2.Mat) XorNetwork {
	rows := m.Rows()
	cols := m.Cols()
	net := XorNetwork{Inputs: cols, Outputs: rows}
	// Working copy: each row as a set of signal indices. Signals 0..cols-1
	// are inputs; new shared signals get fresh indices.
	work := make([][]int, rows)
	for i := 0; i < rows; i++ {
		r := m.Row(i)
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			work[i] = append(work[i], j)
		}
		if len(work[i]) > 1 {
			net.NaiveXORs += len(work[i]) - 1
		}
	}
	nextSignal := cols
	gates := 0
	for {
		// Count co-occurrences of signal pairs across rows.
		type pair struct{ a, b int }
		counts := make(map[pair]int)
		for _, row := range work {
			for i := 0; i < len(row); i++ {
				for j := i + 1; j < len(row); j++ {
					a, b := row[i], row[j]
					if a > b {
						a, b = b, a
					}
					counts[pair{a, b}]++
				}
			}
		}
		best := pair{-1, -1}
		bestCount := 1 // sharing pays off only from 2 co-occurrences up
		for p, c := range counts {
			if c < 2 || c < bestCount {
				continue
			}
			// Prefer higher count; break count ties deterministically by
			// lowest signal indices so the cost is run-independent.
			if c > bestCount || best.a < 0 || p.a < best.a || (p.a == best.a && p.b < best.b) {
				best = p
				bestCount = c
			}
		}
		if best.a < 0 {
			break
		}
		// Materialise the shared XOR and rewrite rows.
		gates++
		sig := nextSignal
		nextSignal++
		for ri, row := range work {
			hasA, hasB := false, false
			for _, s := range row {
				if s == best.a {
					hasA = true
				}
				if s == best.b {
					hasB = true
				}
			}
			if hasA && hasB {
				nr := row[:0]
				for _, s := range row {
					if s != best.a && s != best.b {
						nr = append(nr, s)
					}
				}
				work[ri] = append(nr, sig)
			}
		}
	}
	// Remaining per-row XORs.
	for _, row := range work {
		if len(row) > 1 {
			gates += len(row) - 1
		}
	}
	net.CSEXORs = gates
	return net
}

// Counter returns the GE cost of a b-bit synchronous up-counter with reset:
// b flip-flops plus roughly one half-adder (XOR + AND) per bit.
func Counter(bits int) float64 {
	if bits <= 0 {
		return 0
	}
	return float64(bits) * (GEDFF + GEXor2 + GEAnd2)
}

// CounterFor returns the counter cost for counting up to n states.
func CounterFor(n int) float64 { return Counter(BitsFor(n)) }

// BitsFor returns ceil(log2(n)) with a minimum of 1.
func BitsFor(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Register returns the GE cost of b storage bits (no increment logic).
func Register(bits int) float64 { return float64(bits) * GEDFF }

// Mux2 returns the GE cost of w parallel 2:1 multiplexers.
func Mux2(width int) float64 { return float64(width) * GEMux2 }

// Comparator returns the GE cost of a b-bit equality comparator:
// b XNORs plus an AND tree.
func Comparator(bits int) float64 {
	if bits <= 0 {
		return 0
	}
	return float64(bits)*GEXor2 + float64(bits-1)*GEAnd2
}

// DecodeTerm returns the GE cost of decoding one specific value of a b-bit
// counter (an AND tree over b literals).
func DecodeTerm(bits int) float64 {
	if bits <= 1 {
		return GEInv
	}
	return float64(bits-1)*GEAnd2 + GEInv
}
