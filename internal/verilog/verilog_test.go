package verilog

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/benchprofile"
	"repro/internal/encoder"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/stateskip"
)

func TestStateSkipLFSRStructure(t *testing.T) {
	l, err := lfsr.NewStandard(lfsr.Fibonacci, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := StateSkipLFSR(l, 3)
	for _, want := range []string{
		"module state_skip_lfsr_n8_k3",
		"input  wire mode",
		"next_normal[7]",
		"next_skip[7]",
		"q <= mode ? next_skip : next_normal;",
		"endmodule",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	// One assign per cell per network.
	if got := strings.Count(src, "assign next_normal["); got != 8 {
		t.Errorf("%d normal assigns, want 8", got)
	}
	if got := strings.Count(src, "assign next_skip["); got != 8 {
		t.Errorf("%d skip assigns, want 8", got)
	}
}

func TestStateSkipNetworksMatchMatrices(t *testing.T) {
	// Every q[i] index in the emitted XOR for next_skip[j] must match the
	// skip matrix row.
	l, _ := lfsr.NewStandard(lfsr.Galois, 12)
	k := 5
	src := StateSkipLFSR(l, k)
	skip := l.SkipMatrix(uint64(k))
	for i := 0; i < 12; i++ {
		line := lineWith(src, "assign next_skip["+strconv.Itoa(i)+"]")
		if line == "" {
			t.Fatalf("no assign for skip cell %d", i)
		}
		row := skip.Row(i)
		rhs := line[strings.Index(line, "=")+1:]
		rhs = strings.TrimSuffix(strings.TrimSpace(rhs), ";")
		present := make(map[string]bool)
		for _, term := range strings.Split(rhs, "^") {
			present[strings.TrimSpace(term)] = true
		}
		for j := 0; j < 12; j++ {
			has := present["q["+strconv.Itoa(j)+"]"]
			if has != (row.Bit(j) == 1) {
				t.Errorf("cell %d: q[%d] presence %v contradicts matrix", i, j, has)
			}
		}
	}
}

func lineWith(src, prefix string) string {
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, strings.TrimSpace(prefix)+" ") || strings.HasPrefix(trimmed, strings.TrimSpace(prefix)+"=") {
			return trimmed
		}
		if strings.HasPrefix(trimmed, strings.TrimSpace(prefix)) {
			return trimmed
		}
	}
	return ""
}

func TestPhaseShifterEmission(t *testing.T) {
	l, _ := lfsr.NewStandard(lfsr.Fibonacci, 16)
	ps, err := phaseshifter.NewSeparated(l, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := PhaseShifter(ps)
	if !strings.Contains(src, "module phase_shifter_n16_m4") {
		t.Error("module header missing")
	}
	if got := strings.Count(src, "assign scan_in["); got != 4 {
		t.Errorf("%d scan_in assigns, want 4", got)
	}
	for o := 0; o < 4; o++ {
		line := lineWith(src, "assign scan_in["+strconv.Itoa(o)+"]")
		for _, c := range ps.Taps(o) {
			if !strings.Contains(line, "q["+strconv.Itoa(c)+"]") {
				t.Errorf("output %d missing tap q[%d]: %s", o, c, line)
			}
		}
	}
}

func TestModeSelectEmission(t *testing.T) {
	p, err := benchprofile.ByName("s13207", benchprofile.ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	p.NumCubes = 40
	set := p.Generate()
	enc, _, err := encoder.EncodeAuto(p.LFSRSize, p.Width, p.Chains, 16, set)
	if err != nil {
		t.Fatal(err)
	}
	red, err := stateskip.Reduce(enc, stateskip.DefaultOptions(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	src := ModeSelect(red, "s13207")
	if !strings.Contains(src, "module mode_select_s13207") {
		t.Error("module header missing")
	}
	if !strings.Contains(src, "if (segment == 0)") {
		t.Error("first-segment shortcut missing")
	}
	// Case items = total useful segments beyond the first per seed.
	extra := 0
	for si := range red.Useful {
		if u := red.UsefulCount(si); u > 1 {
			extra += u - 1
		}
	}
	if got := strings.Count(src, ": mode = 1'b1;"); got != extra {
		t.Errorf("%d case items, want %d", got, extra)
	}
	if !strings.Contains(src, "default: mode = 1'b0;") {
		t.Error("default arm missing")
	}
}

func TestEmissionDeterministic(t *testing.T) {
	l, _ := lfsr.NewStandard(lfsr.Fibonacci, 24)
	if StateSkipLFSR(l, 10) != StateSkipLFSR(l, 10) {
		t.Error("StateSkipLFSR not deterministic")
	}
}

func TestDecompressorTopEmission(t *testing.T) {
	p, err := benchprofile.ByName("s9234", benchprofile.ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	p.NumCubes = 30
	set := p.Generate()
	enc, _, err := encoder.EncodeAuto(p.LFSRSize, p.Width, p.Chains, 8, set)
	if err != nil {
		t.Fatal(err)
	}
	red, err := stateskip.Reduce(enc, stateskip.DefaultOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	src := DecompressorTop(red, "s9234")
	for _, want := range []string{
		"module decompressor_top_s9234",
		"state_skip_lfsr_n24_k6 u_lfsr",
		"phase_shifter_n24_m8 u_ps",
		"mode_select_s9234 u_ms",
		"useful_cnt",
		"endmodule",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
}
