// Package verilog emits synthesisable Verilog for the State Skip
// decompressor building blocks: the two-mode LFSR, the phase shifter and
// the Mode Select decode ROM. The output is plain structural RTL a core
// integrator can drop into a DFT wrapper; golden-file tests pin the text.
package verilog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/stateskip"
)

// xorExpr renders `q[i] ^ q[j] ^ ...` for the set bits of a row, or 1'b0
// for an empty row.
func xorExpr(row gf2.Vec, signal string) string {
	var terms []string
	for i := row.FirstSet(); i >= 0; i = row.NextSet(i + 1) {
		terms = append(terms, fmt.Sprintf("%s[%d]", signal, i))
	}
	if len(terms) == 0 {
		return "1'b0"
	}
	return strings.Join(terms, " ^ ")
}

// StateSkipLFSR emits a two-mode LFSR module: mode 0 clocks the
// characteristic-polynomial feedback (Normal), mode 1 clocks the T^k State
// Skip network. A 2:1 mux in front of every cell selects between them, and
// `load` overrides both to bring in an ATE seed.
func StateSkipLFSR(l *lfsr.LFSR, k int) string {
	n := l.Size()
	normal := l.Transition()
	skip := l.SkipMatrix(uint64(k))
	var b strings.Builder
	fmt.Fprintf(&b, "// State Skip LFSR: n=%d, %s form, p(x)=%s, speedup k=%d\n", n, l.FormOf(), l.CharPoly(), k)
	fmt.Fprintf(&b, "module state_skip_lfsr_n%d_k%d (\n", n, k)
	b.WriteString("  input  wire clk,\n  input  wire rst,\n  input  wire load,\n  input  wire mode,          // 0: Normal, 1: State Skip\n")
	fmt.Fprintf(&b, "  input  wire [%d:0] seed,\n  output reg  [%d:0] q\n);\n", n-1, n-1)
	fmt.Fprintf(&b, "  wire [%d:0] next_normal;\n  wire [%d:0] next_skip;\n\n", n-1, n-1)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  assign next_normal[%d] = %s;\n", i, xorExpr(normal.Row(i), "q"))
	}
	b.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  assign next_skip[%d] = %s;\n", i, xorExpr(skip.Row(i), "q"))
	}
	b.WriteString(`
  always @(posedge clk) begin
    if (rst)
      q <= {` + fmt.Sprint(n) + `{1'b0}};
    else if (load)
      q <= seed;
    else
      q <= mode ? next_skip : next_normal;
  end
endmodule
`)
	return b.String()
}

// PhaseShifter emits the XOR network from the LFSR cells to the scan-chain
// inputs.
func PhaseShifter(ps *phaseshifter.PhaseShifter) string {
	n, m := ps.Size(), ps.Outputs()
	var b strings.Builder
	fmt.Fprintf(&b, "// Phase shifter: %d LFSR cells -> %d scan channels\n", n, m)
	fmt.Fprintf(&b, "module phase_shifter_n%d_m%d (\n  input  wire [%d:0] q,\n  output wire [%d:0] scan_in\n);\n", n, m, n-1, m-1)
	for o := 0; o < m; o++ {
		taps := append([]int(nil), ps.Taps(o)...)
		sort.Ints(taps)
		var terms []string
		for _, c := range taps {
			terms = append(terms, fmt.Sprintf("q[%d]", c))
		}
		fmt.Fprintf(&b, "  assign scan_in[%d] = %s;\n", o, strings.Join(terms, " ^ "))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// ModeSelect emits the per-core Mode Select unit as a case decode over the
// (group, seed, segment) counters: Mode is 1 (Normal) for useful segments.
// Following §3.3, segment 0 is decoded unconditionally (the first segment
// of every seed is useful), so only the extra useful segments contribute
// case items.
func ModeSelect(red *stateskip.Reduction, coreName string) string {
	segBits := bitsFor(red.Segs)
	seedBits := bitsFor(len(red.Useful))
	var b strings.Builder
	fmt.Fprintf(&b, "// Mode Select for core %s: L=%d, S=%d, %d seeds, %d useful segments\n",
		coreName, red.Enc.Cfg.WindowLen, red.Opt.SegmentSize, len(red.Useful), red.TotalUseful())
	fmt.Fprintf(&b, "module mode_select_%s (\n  input  wire [%d:0] seed_idx,\n  input  wire [%d:0] segment,\n  output reg  mode\n);\n",
		coreName, seedBits-1, segBits-1)
	b.WriteString("  always @* begin\n    if (segment == 0)\n      mode = 1'b1; // first segment of every seed is useful\n    else begin\n      case ({seed_idx, segment})\n")
	// Deliver seeds in group order: seed_idx is the delivery index.
	for di, si := range red.GroupOrder {
		for seg := 1; seg < red.Segs; seg++ {
			if red.Useful[si][seg] {
				fmt.Fprintf(&b, "        {%d'd%d, %d'd%d}: mode = 1'b1;\n", seedBits, di, segBits, seg)
			}
		}
	}
	b.WriteString("        default: mode = 1'b0;\n      endcase\n    end\n  end\nendmodule\n")
	return b.String()
}

func bitsFor(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}

// DecompressorTop emits the Fig. 3 top level: the counter chain wired
// around the State Skip LFSR, phase shifter and Mode Select unit. Counter
// widths come from the schedule's actual group structure.
func DecompressorTop(red *stateskip.Reduction, coreName string) string {
	enc := red.Enc
	n := enc.Cfg.LFSR.Size()
	m := enc.Cfg.PS.Outputs()
	rBits := bitsFor(enc.Cfg.Geo.Length)
	sBits := bitsFor(red.Opt.SegmentSize)
	segBits := bitsFor(red.Segs)
	seedBits := bitsFor(len(red.Useful))
	maxUseful := 0
	for si := range red.Useful {
		if u := red.UsefulCount(si); u > maxUseful {
			maxUseful = u
		}
	}
	usefulBits := bitsFor(maxUseful + 1)
	var b strings.Builder
	fmt.Fprintf(&b, "// Decompressor top for core %s (Fig. 3 of the paper)\n", coreName)
	fmt.Fprintf(&b, "// n=%d, m=%d, r=%d, S=%d, k=%d, %d seeds, %d segment(s)/window\n",
		n, m, enc.Cfg.Geo.Length, red.Opt.SegmentSize, red.Opt.Speedup, len(red.Useful), red.Segs)
	fmt.Fprintf(&b, `module decompressor_top_%s (
  input  wire clk,
  input  wire rst,
  input  wire seed_valid,      // ATE strobes a new seed
  input  wire [%d:0] seed,
  output wire [%d:0] scan_in,
  output wire scan_enable,
  output wire done
);
  wire mode;
  wire [%d:0] q;
  reg  [%d:0] bit_cnt;       // Bit Counter (resets at mode switches)
  reg  [%d:0] vec_cnt;       // Vector Counter
  reg  [%d:0] seg_cnt;       // Segment Counter
  reg  [%d:0] useful_cnt;    // Useful Segment Counter (loaded from group)
  reg  [%d:0] seed_idx;      // Seed Counter (delivery order)

  state_skip_lfsr_n%d_k%d u_lfsr (
    .clk(clk), .rst(rst), .load(seed_valid), .mode(mode),
    .seed(seed), .q(q)
  );
  phase_shifter_n%d_m%d u_ps (.q(q), .scan_in(scan_in));
  mode_select_%s u_ms (.seed_idx(seed_idx), .segment(seg_cnt), .mode(mode));

  // Counter chain: bit -> vector -> segment; useful-segment countdown
  // triggers the next seed; controller details (group ROM, mode-switch
  // bit-counter reset) follow the simulator in internal/decompressor.
  // Generated for documentation and synthesis-area evaluation.
  assign scan_enable = 1'b1;
  assign done = (seed_idx == %d'd%d) && (useful_cnt == %d'd0);
endmodule
`, coreName, n-1, m-1, n-1,
		rBits-1, sBits-1, segBits-1, usefulBits-1, seedBits-1,
		n, red.Opt.Speedup,
		n, m, coreName,
		seedBits, len(red.Useful)-1, usefulBits)
	return b.String()
}
