package faultsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes the parallel fault-simulation entry points.
type Options struct {
	// Workers is the number of goroutines the fault universe is sharded
	// across, each with its own Simulator scratch state. 0 or negative
	// means runtime.NumCPU(). Results are bit-identical for any value.
	Workers int
	// LaneWords widens every simulator to that many 64-bit words of
	// pattern lanes, so each sweep covers up to 64×LaneWords patterns
	// (256/512 at 4/8). 0 or negative selects the single-word engine.
	// Results are bit-identical for any value — only the batch cadence
	// changes.
	LaneWords int
}

// WorkerCount resolves the Workers field to an effective pool size.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// LaneWordCount resolves the LaneWords field to an effective lane width.
func (o Options) LaneWordCount() int {
	if o.LaneWords > 0 {
		return o.LaneWords
	}
	return 1
}

// PoolSize is WorkerCount clamped to the fault universe being sharded:
// never more workers than faults, never fewer than one.
func (o Options) PoolSize(numFaults int) int {
	w := o.WorkerCount()
	if w > numFaults {
		w = numFaults
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Coverage runs every fault of the universe against the given fully
// specified patterns (batched a simulator capacity at a time) and returns
// per-fault detection plus the coverage fraction. It uses a worker per
// CPU; use CoverageOpts to control the pool size and lane width.
func Coverage(u *Universe, patterns [][]uint8) (detected []bool, coverage float64, err error) {
	return CoverageOpts(u, patterns, Options{})
}

// CoverageOpts is Coverage with an explicit worker-pool and lane-width
// configuration. Every fault index is owned by exactly one worker per
// sweep, so the detected slice is written race-free and the result does
// not depend on scheduling.
func CoverageOpts(u *Universe, patterns [][]uint8, opt Options) (detected []bool, coverage float64, err error) {
	return CoverageCtx(context.Background(), u, patterns, opt)
}

// CoverageCtx is CoverageOpts with cooperative cancellation: the context
// is polled between pattern batches and, amortized, inside every sharded
// sweep, so a cancel or deadline stops the pool within microseconds. A
// cancelled run returns a nil detected slice and an error wrapping
// context.Canceled or context.DeadlineExceeded; an uncancelled run is
// bit-identical to CoverageOpts — for any Workers and any LaneWords.
//
// Patterns are batched 64×LaneWords at a time and each batch is swept via
// FaultShards streaming: workers claim deterministic fixed-size shards of
// the fault universe and regenerate them on the fly instead of walking one
// big materialized list.
func CoverageCtx(ctx context.Context, u *Universe, patterns [][]uint8, opt Options) (detected []bool, coverage float64, err error) {
	sims, err := NewSimulatorPoolLanes(u, opt.PoolSize(len(u.Faults)), opt.LaneWordCount())
	if err != nil {
		return nil, 0, err
	}
	shards := NewFaultShards(u.Net, 0)
	useShards := shards.Matches(u.Faults)
	detected = make([]bool, len(u.Faults))
	batch := 1
	if len(sims) > 0 {
		batch = sims[0].Capacity()
	}
	for start := 0; start < len(patterns); start += batch {
		end := min(start+batch, len(patterns))
		if err := sims[0].LoadPatterns(patterns[start:end]); err != nil {
			return nil, 0, err
		}
		for _, sim := range sims[1:] {
			sim.AdoptPatterns(sims[0])
		}
		if useShards {
			_, err = DetectAllShardsCtx(ctx, sims, shards, detected)
		} else {
			// The caller built a custom fault list; sweep it directly.
			_, err = DetectAllCtx(ctx, sims, u.Faults, detected)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("faultsim: coverage stopped at pattern %d/%d: %w", start, len(patterns), err)
		}
	}
	nd := 0
	for _, d := range detected {
		if d {
			nd++
		}
	}
	if len(u.Faults) > 0 {
		coverage = float64(nd) / float64(len(u.Faults))
	}
	return detected, coverage, nil
}

// NewSimulatorPool builds n single-lane-word simulators over one universe.
// The shared topology is computed once up front, so the per-simulator cost
// is only the scratch arenas.
func NewSimulatorPool(u *Universe, n int) ([]*Simulator, error) {
	return NewSimulatorPoolLanes(u, n, 1)
}

// NewSimulatorPoolLanes builds n simulators of the given lane width over
// one universe (see NewSimulatorLanes).
func NewSimulatorPoolLanes(u *Universe, n, laneWords int) ([]*Simulator, error) {
	sims := make([]*Simulator, n)
	for i := range sims {
		sim, err := NewSimulatorLanes(u, laneWords)
		if err != nil {
			return nil, err
		}
		sims[i] = sim
	}
	return sims, nil
}

// DetectAll shards faults across the simulator pool by stride and marks
// newly detected ones in detected (entries already true are skipped, the
// standard fault-drop rule). Every simulator must have the same patterns
// loaded. Each worker owns a disjoint set of fault indices, so the writes
// never race and the result does not depend on scheduling. It returns the
// number of faults newly marked.
func DetectAll(sims []*Simulator, faults []Fault, detected []bool) int {
	n, _ := DetectAllCtx(context.Background(), sims, faults, detected)
	return n
}

// detectStride is how many faults each sweep worker simulates between
// context polls: one DetectAny costs at least a microsecond, so polling
// every 256 faults bounds cancellation latency well below a millisecond
// while the amortized poll cost is unmeasurable.
const detectStride = 256

// DetectAllCtx is DetectAll with cooperative cancellation: every worker
// polls the context once per detectStride faults and stops early when it
// fires. On cancellation the detected slice holds a valid partial marking
// (every true entry is genuinely detected) and the error wraps
// context.Canceled or context.DeadlineExceeded; an uncancelled sweep is
// bit-identical to DetectAll.
func DetectAllCtx(ctx context.Context, sims []*Simulator, faults []Fault, detected []bool) (int, error) {
	if len(sims) == 1 {
		count := 0
		for fi, f := range faults {
			if fi%detectStride == detectStride-1 && ctx.Err() != nil {
				return count, ctx.Err()
			}
			if detected[fi] {
				continue
			}
			if sims[0].DetectAny(f) {
				detected[fi] = true
				count++
			}
		}
		return count, nil
	}
	counts := make([]int, len(sims))
	var wg sync.WaitGroup
	for w := range sims {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := sims[w]
			tick := 0
			for fi := w; fi < len(faults); fi += len(sims) {
				if tick++; tick == detectStride {
					tick = 0
					if ctx.Err() != nil {
						return
					}
				}
				if detected[fi] {
					continue
				}
				if sim.DetectAny(faults[fi]) {
					detected[fi] = true
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, ctx.Err()
}

// DetectAllShards is DetectAllShardsCtx without cancellation.
func DetectAllShards(sims []*Simulator, shards *FaultShards, detected []bool) int {
	n, _ := DetectAllShardsCtx(context.Background(), sims, shards, detected)
	return n
}

// DetectAllShardsCtx sweeps the fault universe via streamed shards instead
// of a materialized fault list: workers claim shard indices from an atomic
// counter, regenerate each shard's faults into a per-worker buffer, and
// mark detections in detected (indexed by universe position — shard k
// covers indices [k×size, (k+1)×size), exactly NewUniverse order).
// Entries already true are skipped. Shards are disjoint index ranges and
// each is claimed by exactly one worker, so the writes never race and the
// marking is independent of scheduling. The context is polled once per
// shard; on cancellation detected holds a valid partial marking and the
// error wraps the context error. It returns the number of faults newly
// marked.
func DetectAllShardsCtx(ctx context.Context, sims []*Simulator, shards *FaultShards, detected []bool) (int, error) {
	numShards := shards.NumShards()
	if len(sims) == 1 || numShards <= 1 {
		sim := sims[0]
		count := 0
		var buf []Fault
		for k := 0; k < numShards; k++ {
			if ctx.Err() != nil {
				return count, ctx.Err()
			}
			shard, start := shards.Shard(k, buf)
			for i, f := range shard {
				fi := start + i
				if detected[fi] {
					continue
				}
				if sim.DetectAny(f) {
					detected[fi] = true
					count++
				}
			}
			buf = shard
		}
		return count, nil
	}
	counts := make([]int, len(sims))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := range sims {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := sims[w]
			var buf []Fault
			for {
				k := int(next.Add(1)) - 1
				if k >= numShards || ctx.Err() != nil {
					return
				}
				shard, start := shards.Shard(k, buf)
				for i, f := range shard {
					fi := start + i
					if detected[fi] {
						continue
					}
					if sim.DetectAny(f) {
						detected[fi] = true
						counts[w]++
					}
				}
				buf = shard
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, ctx.Err()
}
