package faultsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Options tunes the parallel fault-simulation entry points.
type Options struct {
	// Workers is the number of goroutines the fault universe is sharded
	// across, each with its own Simulator scratch state. 0 or negative
	// means runtime.NumCPU(). Results are bit-identical for any value.
	Workers int
}

// WorkerCount resolves the Workers field to an effective pool size.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// PoolSize is WorkerCount clamped to the fault universe being sharded:
// never more workers than faults, never fewer than one.
func (o Options) PoolSize(numFaults int) int {
	w := o.WorkerCount()
	if w > numFaults {
		w = numFaults
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Coverage runs every fault of the universe against the given fully
// specified patterns (batched 64 at a time) and returns per-fault
// detection plus the coverage fraction. It uses a worker per CPU; use
// CoverageOpts to control the pool size.
func Coverage(u *Universe, patterns [][]uint8) (detected []bool, coverage float64, err error) {
	return CoverageOpts(u, patterns, Options{})
}

// CoverageOpts is Coverage with an explicit worker-pool configuration.
// Every fault index is owned by exactly one worker, so the detected slice
// is written race-free and the result does not depend on scheduling.
func CoverageOpts(u *Universe, patterns [][]uint8, opt Options) (detected []bool, coverage float64, err error) {
	return CoverageCtx(context.Background(), u, patterns, opt)
}

// CoverageCtx is CoverageOpts with cooperative cancellation: the context
// is polled between 64-pattern batches and, amortized, inside every
// sharded sweep, so a cancel or deadline stops the pool within
// microseconds. A cancelled run returns a nil detected slice and an error
// wrapping context.Canceled or context.DeadlineExceeded; an uncancelled
// run is bit-identical to CoverageOpts.
func CoverageCtx(ctx context.Context, u *Universe, patterns [][]uint8, opt Options) (detected []bool, coverage float64, err error) {
	sims, err := NewSimulatorPool(u, opt.PoolSize(len(u.Faults)))
	if err != nil {
		return nil, 0, err
	}
	detected = make([]bool, len(u.Faults))
	for start := 0; start < len(patterns); start += 64 {
		end := min(start+64, len(patterns))
		if err := sims[0].LoadPatterns(patterns[start:end]); err != nil {
			return nil, 0, err
		}
		for _, sim := range sims[1:] {
			sim.AdoptPatterns(sims[0])
		}
		if _, err := DetectAllCtx(ctx, sims, u.Faults, detected); err != nil {
			return nil, 0, fmt.Errorf("faultsim: coverage stopped at pattern %d/%d: %w", start, len(patterns), err)
		}
	}
	nd := 0
	for _, d := range detected {
		if d {
			nd++
		}
	}
	if len(u.Faults) > 0 {
		coverage = float64(nd) / float64(len(u.Faults))
	}
	return detected, coverage, nil
}

// NewSimulatorPool builds n simulators over one universe. The shared
// topology is computed once up front, so the per-simulator cost is only the
// scratch arrays.
func NewSimulatorPool(u *Universe, n int) ([]*Simulator, error) {
	sims := make([]*Simulator, n)
	for i := range sims {
		sim, err := NewSimulator(u)
		if err != nil {
			return nil, err
		}
		sims[i] = sim
	}
	return sims, nil
}

// DetectAll shards faults across the simulator pool by stride and marks
// newly detected ones in detected (entries already true are skipped, the
// standard fault-drop rule). Every simulator must have the same patterns
// loaded. Each worker owns a disjoint set of fault indices, so the writes
// never race and the result does not depend on scheduling. It returns the
// number of faults newly marked.
func DetectAll(sims []*Simulator, faults []Fault, detected []bool) int {
	n, _ := DetectAllCtx(context.Background(), sims, faults, detected)
	return n
}

// detectStride is how many faults each sweep worker simulates between
// context polls: one DetectAny costs at least a microsecond, so polling
// every 256 faults bounds cancellation latency well below a millisecond
// while the amortized poll cost is unmeasurable.
const detectStride = 256

// DetectAllCtx is DetectAll with cooperative cancellation: every worker
// polls the context once per detectStride faults and stops early when it
// fires. On cancellation the detected slice holds a valid partial marking
// (every true entry is genuinely detected) and the error wraps
// context.Canceled or context.DeadlineExceeded; an uncancelled sweep is
// bit-identical to DetectAll.
func DetectAllCtx(ctx context.Context, sims []*Simulator, faults []Fault, detected []bool) (int, error) {
	if len(sims) == 1 {
		count := 0
		for fi, f := range faults {
			if fi%detectStride == detectStride-1 && ctx.Err() != nil {
				return count, ctx.Err()
			}
			if detected[fi] {
				continue
			}
			if sims[0].DetectAny(f) {
				detected[fi] = true
				count++
			}
		}
		return count, nil
	}
	counts := make([]int, len(sims))
	var wg sync.WaitGroup
	for w := range sims {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := sims[w]
			tick := 0
			for fi := w; fi < len(faults); fi += len(sims) {
				if tick++; tick == detectStride {
					tick = 0
					if ctx.Err() != nil {
						return
					}
				}
				if detected[fi] {
					continue
				}
				if sim.DetectAny(faults[fi]) {
					detected[fi] = true
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, ctx.Err()
}
