package faultsim

import (
	"sort"

	"repro/internal/netlist"
)

// DefaultShardSize is the fault count per shard used when NewFaultShards
// is given a non-positive size. It matches detectStride, so one shard is
// also one cancellation-poll quantum for the sweep workers.
const DefaultShardSize = 256

// FaultShards enumerates a circuit's collapsed stuck-at fault universe in
// deterministic fixed-size shards without materializing the full list: it
// stores only per-gate prefix sums (two int32 words per gate) and
// regenerates each shard's faults on demand into a caller-owned buffer.
// Shard k always holds universe indices [k×size, (k+1)×size) in exactly
// the order NewUniverse materializes — both are built on the same
// per-gate emitter — so sharded sweeps can mark a detected slice indexed
// by the materialized universe.
//
// A FaultShards is immutable after construction and safe for concurrent
// Shard calls (each call writes only the caller's buffer).
type FaultShards struct {
	net    *netlist.Netlist
	loads  []int32 // per-signal load counts the collapsing rules key on
	prefix []int32 // prefix[gi] = faults on gates < gi; prefix[NumGates] = total
	size   int
}

// NewFaultShards computes the shard index for a circuit: per-gate fault
// counts under the NewUniverse collapsing rules, prefix-summed so any
// fault index maps to its gate in O(log gates). shardSize ≤ 0 selects
// DefaultShardSize.
func NewFaultShards(n *netlist.Netlist, shardSize int) *FaultShards {
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	loads := signalLoads(n)
	prefix := make([]int32, n.NumGates()+1)
	var buf []Fault
	for gi := 0; gi < n.NumGates(); gi++ {
		buf = appendGateFaults(n, loads, gi, buf[:0])
		prefix[gi+1] = prefix[gi] + int32(len(buf))
	}
	return &FaultShards{net: n, loads: loads, prefix: prefix, size: shardSize}
}

// NumFaults returns the total collapsed fault count — identical to
// len(NewUniverse(n).Faults) for the same netlist.
func (fs *FaultShards) NumFaults() int {
	return int(fs.prefix[len(fs.prefix)-1])
}

// NumShards returns how many shards cover the universe (the last one may
// be short).
func (fs *FaultShards) NumShards() int {
	return (fs.NumFaults() + fs.size - 1) / fs.size
}

// ShardSize returns the fault count per full shard.
func (fs *FaultShards) ShardSize() int { return fs.size }

// Shard regenerates shard k's faults into buf (reused storage; pass the
// previous call's return value to amortize the allocation to zero) and
// returns the shard slice along with the universe index of its first
// fault. Out-of-range k returns an empty shard.
func (fs *FaultShards) Shard(k int, buf []Fault) (faults []Fault, start int) {
	start = k * fs.size
	end := min(start+fs.size, fs.NumFaults())
	if k < 0 || start >= end {
		return buf[:0], start
	}
	// First gate whose fault range contains index start.
	ng := fs.net.NumGates()
	first := sort.Search(ng, func(gi int) bool { return fs.prefix[gi+1] > int32(start) })
	buf = buf[:0]
	for gi := first; gi < ng && int(fs.prefix[gi]) < end; gi++ {
		buf = appendGateFaults(fs.net, fs.loads, gi, buf)
	}
	// buf holds faults [prefix[first], …); trim to the shard window.
	base := int(fs.prefix[first])
	copy(buf, buf[start-base:end-base])
	return buf[:end-start], start
}

// Matches reports whether the shard enumeration reproduces the given
// materialized fault list exactly — same length, same faults, same order.
// Consumers that index a detected slice by universe position use it as a
// cheap O(faults) guard before substituting sharded streaming for the
// materialized list.
func (fs *FaultShards) Matches(faults []Fault) bool {
	if fs.NumFaults() != len(faults) {
		return false
	}
	var buf []Fault
	for k := 0; k < fs.NumShards(); k++ {
		shard, start := fs.Shard(k, buf)
		for i, f := range shard {
			if faults[start+i] != f {
				return false
			}
		}
		buf = shard
	}
	return true
}
