// Package faultsim provides the single stuck-at fault universe and a
// 64-way bit-parallel fault simulator over internal/netlist circuits — the
// second half of the Atalanta substitute (DESIGN.md §2). The ATPG package
// uses it to drop detected faults, and tests use it to confirm that every
// cube the flow produces really detects its target fault.
package faultsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault on a gate output or a gate input pin.
type Fault struct {
	Gate  int // gate index in the netlist
	Pin   int // -1 = output fault, otherwise fan-in pin index
	Stuck uint8
}

func (f Fault) String() string {
	loc := "out"
	if f.Pin >= 0 {
		loc = fmt.Sprintf("in%d", f.Pin)
	}
	return fmt.Sprintf("g%d.%s/sa%d", f.Gate, loc, f.Stuck)
}

// Universe lists the faults of a circuit after structural equivalence
// collapsing.
type Universe struct {
	Net    *netlist.Netlist
	Faults []Fault
}

// NewUniverse builds the collapsed stuck-at fault list.
//
// Collapsing rules (standard dominance-free structural equivalences):
// every gate output gets sa0+sa1; gate input-pin faults are kept only on
// fan-out stems' branches — an input pin fed by a signal with fan-out 1 is
// equivalent to the driver's output fault and is dropped. For inverters
// and buffers, input faults are always equivalent to output faults and are
// dropped too.
func NewUniverse(n *netlist.Netlist) *Universe {
	fanout := make([]int, n.NumGates())
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			fanout[f]++
		}
	}
	for _, o := range n.Outputs {
		fanout[o]++
	}
	u := &Universe{Net: n}
	for gi, g := range n.Gates {
		if g.Type != netlist.Input || fanout[gi] > 0 {
			u.Faults = append(u.Faults, Fault{Gate: gi, Pin: -1, Stuck: 0}, Fault{Gate: gi, Pin: -1, Stuck: 1})
		}
		if g.Type == netlist.Buf || g.Type == netlist.Not {
			continue
		}
		for pin, f := range g.Fanin {
			if fanout[f] > 1 {
				u.Faults = append(u.Faults, Fault{Gate: gi, Pin: pin, Stuck: 0}, Fault{Gate: gi, Pin: pin, Stuck: 1})
			}
		}
	}
	return u
}

// Simulator evaluates up to 64 test patterns at once against the fault-free
// circuit and, fault by fault, against the faulty one (serial fault,
// parallel pattern — Atalanta's scheme).
type Simulator struct {
	u      *Universe
	order  []int
	good   []uint64 // fault-free value per gate, bit i = pattern i
	bad    []uint64 // scratch for faulty simulation
	buf    []uint64
	loaded uint64 // mask of valid pattern lanes
}

// NewSimulator prepares a simulator for the universe's netlist.
func NewSimulator(u *Universe) (*Simulator, error) {
	order, err := u.Net.Levelize()
	if err != nil {
		return nil, err
	}
	ng := u.Net.NumGates()
	return &Simulator{u: u, order: order, good: make([]uint64, ng), bad: make([]uint64, ng)}, nil
}

// LoadPatterns bit-slices up to 64 fully specified patterns (each of length
// len(Inputs)) and runs the fault-free simulation.
func (s *Simulator) LoadPatterns(patterns [][]uint8) error {
	if len(patterns) == 0 || len(patterns) > 64 {
		return fmt.Errorf("faultsim: %d patterns (want 1..64)", len(patterns))
	}
	n := s.u.Net
	for gi := range s.good {
		s.good[gi] = 0
	}
	for pi, p := range patterns {
		if len(p) != len(n.Inputs) {
			return fmt.Errorf("faultsim: pattern %d has %d bits, want %d", pi, len(p), len(n.Inputs))
		}
		for ii, gi := range n.Inputs {
			if p[ii]&1 != 0 {
				s.good[gi] |= 1 << uint(pi)
			}
		}
	}
	if len(patterns) == 64 {
		s.loaded = ^uint64(0)
	} else {
		s.loaded = 1<<uint(len(patterns)) - 1
	}
	s.evalInto(s.good, -1, Fault{})
	return nil
}

// evalInto evaluates the circuit into dst. If faultGate ≥ 0, the given
// fault is injected.
func (s *Simulator) evalInto(dst []uint64, faultGate int, f Fault) {
	n := s.u.Net
	for _, gi := range s.order {
		g := &n.Gates[gi]
		if g.Type == netlist.Input {
			dst[gi] = s.good[gi] // inputs always take the pattern values
		} else {
			s.buf = s.buf[:0]
			for pin, fi := range g.Fanin {
				fv := dst[fi]
				if faultGate == gi && f.Pin == pin {
					fv = stuckWord(f.Stuck)
				}
				s.buf = append(s.buf, fv)
			}
			dst[gi] = g.Type.EvalWord(s.buf)
		}
		if faultGate == gi && f.Pin == -1 {
			dst[gi] = stuckWord(f.Stuck)
		}
	}
}

func stuckWord(b uint8) uint64 {
	if b != 0 {
		return ^uint64(0)
	}
	return 0
}

// DetectMask simulates one fault against the loaded patterns and returns a
// bitmask of the patterns that detect it (differ on some primary output).
func (s *Simulator) DetectMask(f Fault) uint64 {
	copy(s.bad, s.good)
	s.evalInto(s.bad, f.Gate, f)
	var mask uint64
	for _, o := range s.u.Net.Outputs {
		mask |= s.good[o] ^ s.bad[o]
	}
	return mask & s.loaded
}

// Coverage runs every fault of the universe against the given fully
// specified patterns (batched 64 at a time) and returns per-fault
// detection plus the coverage fraction.
func Coverage(u *Universe, patterns [][]uint8) (detected []bool, coverage float64, err error) {
	sim, err := NewSimulator(u)
	if err != nil {
		return nil, 0, err
	}
	detected = make([]bool, len(u.Faults))
	for start := 0; start < len(patterns); start += 64 {
		end := start + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		if err := sim.LoadPatterns(patterns[start:end]); err != nil {
			return nil, 0, err
		}
		for fi, f := range u.Faults {
			if detected[fi] {
				continue
			}
			if sim.DetectMask(f) != 0 {
				detected[fi] = true
			}
		}
	}
	nd := 0
	for _, d := range detected {
		if d {
			nd++
		}
	}
	if len(u.Faults) > 0 {
		coverage = float64(nd) / float64(len(u.Faults))
	}
	return detected, coverage, nil
}
