// Package faultsim provides the single stuck-at fault universe and a
// 64-way bit-parallel fault simulator over internal/netlist circuits — the
// second half of the Atalanta substitute (ARCHITECTURE.md §①). The ATPG package
// uses it to drop detected faults, and tests use it to confirm that every
// cube the flow produces really detects its target fault.
//
// The simulator is event-driven: injecting a fault only re-evaluates the
// gates inside the fault's output cone (scheduled level by level over the
// levelized netlist), not the whole circuit. Faults whose site cannot reach
// a primary output are rejected without simulating a single gate. Coverage
// shards the fault universe across a worker pool (see Options) with one
// Simulator of scratch state per worker; the per-universe topology (levels,
// fan-out lists, output reachability) is computed once and shared.
package faultsim

import (
	"fmt"
	"sync"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault on a gate output or a gate input pin.
type Fault struct {
	Gate  int // gate index in the netlist
	Pin   int // -1 = output fault, otherwise fan-in pin index
	Stuck uint8
}

func (f Fault) String() string {
	loc := "out"
	if f.Pin >= 0 {
		loc = fmt.Sprintf("in%d", f.Pin)
	}
	return fmt.Sprintf("g%d.%s/sa%d", f.Gate, loc, f.Stuck)
}

// Universe lists the faults of a circuit after structural equivalence
// collapsing. It also lazily caches the circuit topology shared by every
// Simulator built over it, so worker pools are cheap to spin up.
type Universe struct {
	Net    *netlist.Netlist
	Faults []Fault

	topoOnce sync.Once
	topo     *topology
	topoErr  error
}

// NewUniverse builds the collapsed stuck-at fault list.
//
// Collapsing rules (standard dominance-free structural equivalences):
// every gate output gets sa0+sa1; gate input-pin faults are kept only on
// fan-out stems' branches — an input pin fed by a signal with fan-out 1 is
// equivalent to the driver's output fault and is dropped. For inverters
// and buffers, input faults are always equivalent to output faults and are
// dropped too.
func NewUniverse(n *netlist.Netlist) *Universe {
	fanout := make([]int, n.NumGates())
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			fanout[f]++
		}
	}
	for _, o := range n.Outputs {
		fanout[o]++
	}
	u := &Universe{Net: n}
	for gi, g := range n.Gates {
		if g.Type != netlist.Input || fanout[gi] > 0 {
			u.Faults = append(u.Faults, Fault{Gate: gi, Pin: -1, Stuck: 0}, Fault{Gate: gi, Pin: -1, Stuck: 1})
		}
		if g.Type == netlist.Buf || g.Type == netlist.Not {
			continue
		}
		for pin, f := range g.Fanin {
			if fanout[f] > 1 {
				u.Faults = append(u.Faults, Fault{Gate: gi, Pin: pin, Stuck: 0}, Fault{Gate: gi, Pin: pin, Stuck: 1})
			}
		}
	}
	return u
}

// topology holds the per-circuit structures every Simulator shares: the
// topological order, per-gate levels, fan-out lists and output
// reachability. It is immutable once built; order, level and fanout are
// the netlist's shared caches (netlist.Levelize/Levels/Fanouts), never
// mutated here.
type topology struct {
	order      []int
	level      []int
	numLevels  int
	fanout     [][]int
	isOutput   []bool
	observable []bool // gate has a path to some primary output
}

// topology returns the (lazily computed, cached) circuit topology. Safe for
// concurrent use; the levelization error, if any, is cached too.
func (u *Universe) topology() (*topology, error) {
	u.topoOnce.Do(func() {
		u.topo, u.topoErr = newTopology(u.Net)
	})
	return u.topo, u.topoErr
}

func newTopology(n *netlist.Netlist) (*topology, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	level, numLevels, err := n.Levels()
	if err != nil {
		return nil, err
	}
	ng := n.NumGates()
	t := &topology{
		order:      order,
		level:      level,
		numLevels:  numLevels,
		fanout:     n.Fanouts(),
		isOutput:   make([]bool, ng),
		observable: make([]bool, ng),
	}
	for _, o := range n.Outputs {
		t.isOutput[o] = true
	}
	// Output reachability in reverse topological order: a gate is observable
	// iff it is an output or some fan-out gate is. Events outside this set
	// can never change a primary output, so DetectMask never schedules them.
	for i := len(order) - 1; i >= 0; i-- {
		gi := order[i]
		if t.isOutput[gi] {
			t.observable[gi] = true
			continue
		}
		for _, fo := range t.fanout[gi] {
			if t.observable[fo] {
				t.observable[gi] = true
				break
			}
		}
	}
	return t, nil
}

// Simulator evaluates up to 64 test patterns at once against the fault-free
// circuit and, fault by fault, against the faulty one (serial fault,
// parallel pattern — Atalanta's scheme). It is not safe for concurrent use;
// build one per worker (they share the universe's topology).
type Simulator struct {
	u    *Universe
	topo *topology

	good   []uint64 // fault-free value per gate, bit i = pattern i
	bad    []uint64 // faulty value per gate, valid only where stamp == epoch
	stamp  []uint32 // epoch stamp marking gates with a diverged faulty value
	queued []uint32 // epoch stamp marking gates scheduled for evaluation
	epoch  uint32
	levels [][]int // per-level worklist buckets, reused across faults
	buf    []uint64
	loaded uint64 // mask of valid pattern lanes
	count  int    // number of loaded pattern lanes
	dirty  bool   // input lanes changed; fault-free evaluation pending
}

// NewSimulator prepares a simulator for the universe's netlist.
func NewSimulator(u *Universe) (*Simulator, error) {
	topo, err := u.topology()
	if err != nil {
		return nil, err
	}
	ng := u.Net.NumGates()
	return &Simulator{
		u:      u,
		topo:   topo,
		good:   make([]uint64, ng),
		bad:    make([]uint64, ng),
		stamp:  make([]uint32, ng),
		queued: make([]uint32, ng),
		levels: make([][]int, topo.numLevels),
	}, nil
}

// LoadPatterns bit-slices up to 64 fully specified patterns (each of length
// len(Inputs)) into a fresh batch. The fault-free simulation is deferred to
// the first use (see AppendPattern).
func (s *Simulator) LoadPatterns(patterns [][]uint8) error {
	if len(patterns) == 0 || len(patterns) > 64 {
		return fmt.Errorf("faultsim: %d patterns (want 1..64)", len(patterns))
	}
	s.ResetPatterns()
	for _, p := range patterns {
		if err := s.AppendPattern(p); err != nil {
			return err
		}
	}
	return nil
}

// ResetPatterns empties the pattern batch so AppendPattern can build a new
// one lane by lane.
func (s *Simulator) ResetPatterns() {
	clear(s.good)
	s.loaded = 0
	s.count = 0
	s.dirty = false
}

// AppendPattern adds one fully specified pattern to the next free lane of
// the current batch (up to 64) without re-packing the lanes already loaded.
// The fault-free evaluation is deferred until the next DetectMask (or
// AdoptPatterns), so appending k patterns back to back costs one circuit
// evaluation, not k — the primitive RunAll's drop loop builds its 64-wide
// batches with.
func (s *Simulator) AppendPattern(p []uint8) error {
	if s.count >= 64 {
		return fmt.Errorf("faultsim: batch already holds 64 patterns")
	}
	n := s.u.Net
	if len(p) != len(n.Inputs) {
		return fmt.Errorf("faultsim: pattern %d has %d bits, want %d", s.count, len(p), len(n.Inputs))
	}
	bit := uint64(1) << uint(s.count)
	for ii, gi := range n.Inputs {
		if p[ii]&1 != 0 {
			s.good[gi] |= bit
		}
	}
	s.count++
	s.loaded |= bit
	s.dirty = true
	return nil
}

// LoadPacked installs an already bit-sliced batch: words[i] holds the
// values of input i across all lanes (bit p = pattern p), count the number
// of valid lanes. Callers that keep patterns packed skip the per-bit
// slicing of LoadPatterns entirely; lanes at or above count are masked off.
func (s *Simulator) LoadPacked(words []uint64, count int) error {
	n := s.u.Net
	if len(words) != len(n.Inputs) {
		return fmt.Errorf("faultsim: %d packed words, want %d", len(words), len(n.Inputs))
	}
	if count < 1 || count > 64 {
		return fmt.Errorf("faultsim: %d patterns (want 1..64)", count)
	}
	s.ResetPatterns()
	mask := laneMask(count)
	for ii, gi := range n.Inputs {
		s.good[gi] = words[ii] & mask
	}
	s.count = count
	s.loaded = mask
	s.dirty = true
	return nil
}

// PatternCount returns the number of pattern lanes currently loaded.
func (s *Simulator) PatternCount() int { return s.count }

func laneMask(count int) uint64 {
	if count >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(count) - 1
}

// ensureEval runs the deferred fault-free evaluation of the loaded batch.
func (s *Simulator) ensureEval() {
	if s.dirty {
		s.evalInto(s.good, -1, Fault{})
		s.dirty = false
	}
}

// AdoptPatterns copies the fault-free state of src, which must be a
// simulator over the same universe with patterns loaded. A worker pool uses
// it to pay the fault-free simulation once per 64-pattern batch.
func (s *Simulator) AdoptPatterns(src *Simulator) {
	src.ensureEval()
	copy(s.good, src.good)
	s.loaded = src.loaded
	s.count = src.count
	s.dirty = false
}

// evalInto evaluates the whole circuit into dst. If faultGate ≥ 0, the
// given fault is injected. It is the full (non-event-driven) evaluation,
// used for the fault-free load and as the reference in differential tests.
func (s *Simulator) evalInto(dst []uint64, faultGate int, f Fault) {
	n := s.u.Net
	for _, gi := range s.topo.order {
		g := &n.Gates[gi]
		if g.Type == netlist.Input {
			dst[gi] = s.good[gi] // inputs always take the pattern values
		} else {
			s.buf = s.buf[:0]
			for pin, fi := range g.Fanin {
				fv := dst[fi]
				if faultGate == gi && f.Pin == pin {
					fv = stuckWord(f.Stuck)
				}
				s.buf = append(s.buf, fv)
			}
			dst[gi] = g.Type.EvalWord(s.buf)
		}
		if faultGate == gi && f.Pin == -1 {
			dst[gi] = stuckWord(f.Stuck)
		}
	}
}

func stuckWord(b uint8) uint64 {
	if b != 0 {
		return ^uint64(0)
	}
	return 0
}

// DetectMask simulates one fault against the loaded patterns and returns a
// bitmask of the patterns that detect it (differ on some primary output).
//
// The evaluation is event-driven: only gates downstream of the injection
// point are re-evaluated, level by level, and propagation stops wherever
// the faulty value reconverges with the fault-free one. Gates that cannot
// reach a primary output are never scheduled.
func (s *Simulator) DetectMask(f Fault) uint64 {
	t := s.topo
	if s.loaded == 0 || !t.observable[f.Gate] {
		return 0
	}
	s.ensureEval()
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(s.stamp)
		clear(s.queued)
		s.epoch = 1
	}
	s.schedule(f.Gate)
	var diff uint64
	for lv := t.level[f.Gate]; lv < len(s.levels); lv++ {
		bucket := s.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		for _, gi := range bucket {
			v := s.evalFaulty(gi, f)
			if v == s.good[gi] {
				continue // reconverged: nothing propagates
			}
			s.bad[gi] = v
			s.stamp[gi] = s.epoch
			if t.isOutput[gi] {
				diff |= s.good[gi] ^ v
			}
			for _, fo := range t.fanout[gi] {
				if t.observable[fo] {
					s.schedule(fo)
				}
			}
		}
		s.levels[lv] = bucket[:0]
	}
	return diff & s.loaded
}

// DetectAny reports whether any loaded pattern detects the fault —
// DetectMask != 0 with an early exit: the level-by-level propagation stops
// at the first level where a primary output shows a (lane-masked)
// difference, instead of simulating the rest of the fault cone. The drop
// loops only need the boolean, and detected faults are exactly the ones
// whose cones propagate furthest.
func (s *Simulator) DetectAny(f Fault) bool {
	t := s.topo
	if s.loaded == 0 || !t.observable[f.Gate] {
		return false
	}
	s.ensureEval()
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(s.stamp)
		clear(s.queued)
		s.epoch = 1
	}
	s.schedule(f.Gate)
	for lv := t.level[f.Gate]; lv < len(s.levels); lv++ {
		bucket := s.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		var diff uint64
		for _, gi := range bucket {
			v := s.evalFaulty(gi, f)
			if v == s.good[gi] {
				continue // reconverged: nothing propagates
			}
			s.bad[gi] = v
			s.stamp[gi] = s.epoch
			if t.isOutput[gi] {
				diff |= (s.good[gi] ^ v) & s.loaded
			}
			for _, fo := range t.fanout[gi] {
				if t.observable[fo] {
					s.schedule(fo)
				}
			}
		}
		s.levels[lv] = bucket[:0]
		if diff != 0 {
			for l := lv + 1; l < len(s.levels); l++ {
				s.levels[l] = s.levels[l][:0]
			}
			return true
		}
	}
	return false
}

// schedule queues a gate for evaluation in the current epoch. Fan-out gates
// are always at a strictly higher level than their driver, so buckets below
// the cursor are never appended to.
func (s *Simulator) schedule(gi int) {
	if s.queued[gi] == s.epoch {
		return
	}
	s.queued[gi] = s.epoch
	lv := s.topo.level[gi]
	s.levels[lv] = append(s.levels[lv], gi)
}

// evalFaulty computes the faulty value of one gate from the current-epoch
// faulty values of its fan-ins (falling back to the fault-free values) with
// the fault injected.
func (s *Simulator) evalFaulty(gi int, f Fault) uint64 {
	if f.Gate == gi && f.Pin == -1 {
		return stuckWord(f.Stuck)
	}
	g := &s.u.Net.Gates[gi]
	if g.Type == netlist.Input {
		return s.good[gi]
	}
	s.buf = s.buf[:0]
	for pin, fi := range g.Fanin {
		var fv uint64
		switch {
		case f.Gate == gi && f.Pin == pin:
			fv = stuckWord(f.Stuck)
		case s.stamp[fi] == s.epoch:
			fv = s.bad[fi]
		default:
			fv = s.good[fi]
		}
		s.buf = append(s.buf, fv)
	}
	return g.Type.EvalWord(s.buf)
}

// detectMaskFull is the original full-circuit implementation of DetectMask,
// kept as the reference oracle for differential tests of the event-driven
// path.
func (s *Simulator) detectMaskFull(f Fault) uint64 {
	s.ensureEval()
	s.evalInto(s.bad, f.Gate, f)
	var mask uint64
	for _, o := range s.u.Net.Outputs {
		mask |= s.good[o] ^ s.bad[o]
	}
	return mask & s.loaded
}
