// Package faultsim provides the single stuck-at fault universe and a
// word-sliced bit-parallel fault simulator over internal/netlist circuits —
// the second half of the Atalanta substitute (ARCHITECTURE.md §①). The ATPG
// package uses it to drop detected faults, and tests use it to confirm that
// every cube the flow produces really detects its target fault.
//
// A Simulator evaluates W 64-bit lane words at once (Options.LaneWords,
// default 1), so one event-driven sweep covers up to 64×W patterns — 256 or
// 512 at W=4/8 — while staying bit-identical, lane for lane, to the W=1
// engine. Its per-gate planes live in contiguous arenas (one slab for the
// whole circuit, indexed gate×W) and the shared topology stores fan-out
// lists in index-based CSR form, so building a 100k-gate simulator costs a
// handful of allocations instead of one per gate.
//
// The simulator is event-driven: injecting a fault only re-evaluates the
// gates inside the fault's output cone (scheduled level by level over the
// levelized netlist), not the whole circuit. Faults whose site cannot reach
// a primary output are rejected without simulating a single gate. Coverage
// streams the fault universe in deterministic shards (FaultShards) across a
// worker pool (see Options) with one Simulator of scratch state per worker;
// the per-universe topology (levels, CSR fan-out, output reachability) is
// computed once and shared.
package faultsim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault on a gate output or a gate input pin.
type Fault struct {
	Gate  int   // gate index in the netlist
	Pin   int   // -1 = output fault, otherwise fan-in pin index
	Stuck uint8 // stuck-at value, 0 or 1
}

// String renders the fault in the conventional g<idx>.<site>/sa<v> form.
func (f Fault) String() string {
	loc := "out"
	if f.Pin >= 0 {
		loc = fmt.Sprintf("in%d", f.Pin)
	}
	return fmt.Sprintf("g%d.%s/sa%d", f.Gate, loc, f.Stuck)
}

// Universe lists the faults of a circuit after structural equivalence
// collapsing. It also lazily caches the circuit topology shared by every
// Simulator built over it, so worker pools are cheap to spin up.
type Universe struct {
	// Net is the circuit the faults live on.
	Net *netlist.Netlist
	// Faults is the collapsed stuck-at list in canonical gate order — the
	// same enumeration FaultShards streams shard by shard.
	Faults []Fault

	topoOnce sync.Once
	topo     *topology
	topoErr  error
}

// NewUniverse builds the collapsed stuck-at fault list.
//
// Collapsing rules (standard dominance-free structural equivalences):
// every gate output gets sa0+sa1; gate input-pin faults are kept only on
// fan-out stems' branches — an input pin fed by a signal with fan-out 1 is
// equivalent to the driver's output fault and is dropped. For inverters
// and buffers, input faults are always equivalent to output faults and are
// dropped too.
func NewUniverse(n *netlist.Netlist) *Universe {
	loads := signalLoads(n)
	u := &Universe{Net: n}
	for gi := range n.Gates {
		u.Faults = appendGateFaults(n, loads, gi, u.Faults)
	}
	return u
}

// signalLoads returns the load count of every signal — how many gate
// fan-in pins read it, plus one per primary-output marking. This is the
// quantity the collapsing rules key on, shared by NewUniverse and
// FaultShards.
func signalLoads(n *netlist.Netlist) []int32 {
	loads := make([]int32, n.NumGates())
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			loads[f]++
		}
	}
	for _, o := range n.Outputs {
		loads[o]++
	}
	return loads
}

// appendGateFaults appends gate gi's collapsed faults in canonical order
// (output sa0, output sa1, then sa0/sa1 per kept input pin). It is the
// single source of truth for the fault enumeration: NewUniverse
// materializes it and FaultShards regenerates it shard by shard, so the
// two can never disagree on order or content.
func appendGateFaults(n *netlist.Netlist, loads []int32, gi int, dst []Fault) []Fault {
	g := &n.Gates[gi]
	if g.Type != netlist.Input || loads[gi] > 0 {
		dst = append(dst, Fault{Gate: gi, Pin: -1, Stuck: 0}, Fault{Gate: gi, Pin: -1, Stuck: 1})
	}
	if g.Type == netlist.Buf || g.Type == netlist.Not {
		return dst
	}
	for pin, f := range g.Fanin {
		if loads[f] > 1 {
			dst = append(dst, Fault{Gate: gi, Pin: pin, Stuck: 0}, Fault{Gate: gi, Pin: pin, Stuck: 1})
		}
	}
	return dst
}

// topology holds the per-circuit structures every Simulator shares: the
// topological order, per-gate levels, CSR fan-out lists and output
// reachability. It is immutable once built; order and level are the
// netlist's shared caches (netlist.Levelize/Levels), never mutated here.
// The fan-out lists are stored index-based — one flat int32 adjacency slab
// plus an offset array — so a 100k-gate topology is two allocations, not
// one slice header per gate.
type topology struct {
	order      []int
	level      []int
	numLevels  int
	fanoutOff  []int32 // CSR offsets; gate gi's fan-outs are fanoutList[fanoutOff[gi]:fanoutOff[gi+1]]
	fanoutList []int32
	isOutput   []bool
	observable []bool // gate has a path to some primary output
}

// fanouts returns gate gi's fan-out list as a view into the CSR slab.
func (t *topology) fanouts(gi int) []int32 {
	return t.fanoutList[t.fanoutOff[gi]:t.fanoutOff[gi+1]]
}

// topology returns the (lazily computed, cached) circuit topology. Safe for
// concurrent use; the levelization error, if any, is cached too.
func (u *Universe) topology() (*topology, error) {
	u.topoOnce.Do(func() {
		u.topo, u.topoErr = newTopology(u.Net)
	})
	return u.topo, u.topoErr
}

func newTopology(n *netlist.Netlist) (*topology, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	level, numLevels, err := n.Levels()
	if err != nil {
		return nil, err
	}
	ng := n.NumGates()
	t := &topology{
		order:      order,
		level:      level,
		numLevels:  numLevels,
		isOutput:   make([]bool, ng),
		observable: make([]bool, ng),
	}
	// CSR fan-out: count loads per signal, prefix-sum into offsets, then
	// fill in ascending gate order — the same per-gate order the old
	// slice-of-slices build produced.
	t.fanoutOff = make([]int32, ng+1)
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			t.fanoutOff[f+1]++
		}
	}
	for gi := 0; gi < ng; gi++ {
		t.fanoutOff[gi+1] += t.fanoutOff[gi]
	}
	t.fanoutList = make([]int32, t.fanoutOff[ng])
	cur := make([]int32, ng)
	copy(cur, t.fanoutOff[:ng])
	for gi, g := range n.Gates {
		for _, f := range g.Fanin {
			t.fanoutList[cur[f]] = int32(gi)
			cur[f]++
		}
	}
	for _, o := range n.Outputs {
		t.isOutput[o] = true
	}
	// Output reachability in reverse topological order: a gate is observable
	// iff it is an output or some fan-out gate is. Events outside this set
	// can never change a primary output, so DetectMask never schedules them.
	for i := len(order) - 1; i >= 0; i-- {
		gi := order[i]
		if t.isOutput[gi] {
			t.observable[gi] = true
			continue
		}
		for _, fo := range t.fanouts(gi) {
			if t.observable[fo] {
				t.observable[gi] = true
				break
			}
		}
	}
	return t, nil
}

// MaxLaneWords bounds a Simulator's lane width: 64 words = 4096 patterns
// per sweep, far past the point of diminishing returns, and a guard
// against absurd per-simulator arena sizes.
const MaxLaneWords = 64

// ErrLaneOverflow is returned (wrapped) when a pattern batch would exceed
// the simulator's lane capacity — more than Capacity() = 64×LaneWords
// patterns via LoadPatterns, LoadPacked or AppendPattern.
var ErrLaneOverflow = errors.New("faultsim: pattern count exceeds lane capacity")

// Simulator evaluates up to 64×W test patterns at once against the
// fault-free circuit and, fault by fault, against the faulty one (serial
// fault, parallel pattern — Atalanta's scheme, widened to W lane words).
// All per-gate planes are flat arenas: gate gi's lanes occupy words
// [gi*W, (gi+1)*W), so a simulator is a fixed handful of slab allocations
// regardless of circuit size. It is not safe for concurrent use; build one
// per worker (they share the universe's topology).
type Simulator struct {
	u    *Universe
	topo *topology
	w    int // lane words per gate; capacity = 64*w patterns

	good   []uint64 // fault-free plane arena, gate gi at [gi*w:(gi+1)*w], bit i of word k = pattern 64k+i
	bad    []uint64 // faulty plane arena, valid only where stamp == epoch
	stamp  []uint32 // epoch stamp marking gates with a diverged faulty value
	queued []uint32 // epoch stamp marking gates scheduled for evaluation
	epoch  uint32
	levels [][]int    // per-level worklist buckets, reused across faults
	buf    []uint64   // fan-in word gather scratch (w==1 fast path)
	planes [][]uint64 // fan-in plane gather scratch (lane path)
	fbuf   []uint64   // w-word faulty-value scratch (lane path)
	dbuf   []uint64   // w-word DetectLanes result scratch
	zeros  []uint64   // constant all-zero stuck plane
	ones   []uint64   // constant all-one stuck plane
	loaded []uint64   // w-word mask of valid pattern lanes
	count  int        // number of loaded pattern lanes
	dirty  bool       // input lanes changed; fault-free evaluation pending
}

// NewSimulator prepares a single-lane-word (64-pattern) simulator for the
// universe's netlist — the W=1 reference engine every wider lane width is
// tested bit-identical against.
func NewSimulator(u *Universe) (*Simulator, error) {
	return NewSimulatorLanes(u, 1)
}

// NewSimulatorLanes prepares a simulator with laneWords 64-bit words of
// pattern lanes, for a batch capacity of 64×laneWords patterns per sweep.
// laneWords must be in [1, MaxLaneWords].
func NewSimulatorLanes(u *Universe, laneWords int) (*Simulator, error) {
	if laneWords < 1 || laneWords > MaxLaneWords {
		return nil, fmt.Errorf("faultsim: LaneWords %d (want 1..%d)", laneWords, MaxLaneWords)
	}
	topo, err := u.topology()
	if err != nil {
		return nil, err
	}
	ng := u.Net.NumGates()
	return &Simulator{
		u:      u,
		topo:   topo,
		w:      laneWords,
		good:   make([]uint64, ng*laneWords),
		bad:    make([]uint64, ng*laneWords),
		stamp:  make([]uint32, ng),
		queued: make([]uint32, ng),
		levels: make([][]int, topo.numLevels),
		fbuf:   make([]uint64, laneWords),
		dbuf:   make([]uint64, laneWords),
		zeros:  make([]uint64, laneWords),
		ones:   newOnes(laneWords),
		loaded: make([]uint64, laneWords),
	}, nil
}

func newOnes(w int) []uint64 {
	ones := make([]uint64, w)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	return ones
}

// LaneWords returns the simulator's lane width W in 64-bit words.
func (s *Simulator) LaneWords() int { return s.w }

// Capacity returns the maximum pattern batch size, 64×LaneWords.
func (s *Simulator) Capacity() int { return 64 * s.w }

// LoadPatterns bit-slices up to Capacity fully specified patterns (each of
// length len(Inputs)) into a fresh batch. The fault-free simulation is
// deferred to the first use (see AppendPattern).
func (s *Simulator) LoadPatterns(patterns [][]uint8) error {
	if len(patterns) > s.Capacity() {
		return fmt.Errorf("%w: %d patterns, capacity %d (LaneWords=%d)",
			ErrLaneOverflow, len(patterns), s.Capacity(), s.w)
	}
	if len(patterns) == 0 {
		return fmt.Errorf("faultsim: %d patterns (want 1..%d)", len(patterns), s.Capacity())
	}
	s.ResetPatterns()
	for _, p := range patterns {
		if err := s.AppendPattern(p); err != nil {
			return err
		}
	}
	return nil
}

// ResetPatterns empties the pattern batch so AppendPattern can build a new
// one lane by lane.
func (s *Simulator) ResetPatterns() {
	clear(s.good)
	clear(s.loaded)
	s.count = 0
	s.dirty = false
}

// AppendPattern adds one fully specified pattern to the next free lane of
// the current batch (up to Capacity) without re-packing the lanes already
// loaded. The fault-free evaluation is deferred until the next DetectMask
// (or AdoptPatterns), so appending k patterns back to back costs one
// circuit evaluation, not k — the primitive RunAll's drop loop builds its
// 64×W-wide batches with.
func (s *Simulator) AppendPattern(p []uint8) error {
	if s.count >= s.Capacity() {
		return fmt.Errorf("%w: batch already holds %d patterns (LaneWords=%d)",
			ErrLaneOverflow, s.Capacity(), s.w)
	}
	n := s.u.Net
	if len(p) != len(n.Inputs) {
		return fmt.Errorf("faultsim: pattern %d has %d bits, want %d", s.count, len(p), len(n.Inputs))
	}
	word := s.count >> 6
	bit := uint64(1) << uint(s.count&63)
	for ii, gi := range n.Inputs {
		if p[ii]&1 != 0 {
			s.good[gi*s.w+word] |= bit
		}
	}
	s.count++
	s.loaded[word] |= bit
	s.dirty = true
	return nil
}

// LoadPacked installs an already bit-sliced batch: words[i*W+k] holds lane
// word k of input i (bit p of word k = pattern 64k+p), count the number of
// valid lanes, at most Capacity (ErrLaneOverflow past it). Callers that
// keep patterns packed skip the per-bit slicing of LoadPatterns entirely;
// lanes at or above count are masked off.
func (s *Simulator) LoadPacked(words []uint64, count int) error {
	n := s.u.Net
	if len(words) != len(n.Inputs)*s.w {
		return fmt.Errorf("faultsim: %d packed words, want %d (%d inputs × LaneWords=%d)",
			len(words), len(n.Inputs)*s.w, len(n.Inputs), s.w)
	}
	if count > s.Capacity() {
		return fmt.Errorf("%w: %d patterns, capacity %d (LaneWords=%d)",
			ErrLaneOverflow, count, s.Capacity(), s.w)
	}
	if count < 1 {
		return fmt.Errorf("faultsim: %d patterns (want 1..%d)", count, s.Capacity())
	}
	s.ResetPatterns()
	fillLoadedMask(s.loaded, count)
	for ii, gi := range n.Inputs {
		for k := 0; k < s.w; k++ {
			s.good[gi*s.w+k] = words[ii*s.w+k] & s.loaded[k]
		}
	}
	s.count = count
	s.dirty = true
	return nil
}

// PatternCount returns the number of pattern lanes currently loaded.
func (s *Simulator) PatternCount() int { return s.count }

func laneMask(count int) uint64 {
	if count >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(count) - 1
}

// fillLoadedMask sets the valid-lane mask for count patterns across the
// given lane words: full words below the boundary, a partial mask at it,
// zero above.
func fillLoadedMask(loaded []uint64, count int) {
	for k := range loaded {
		rem := count - 64*k
		switch {
		case rem >= 64:
			loaded[k] = ^uint64(0)
		case rem > 0:
			loaded[k] = laneMask(rem)
		default:
			loaded[k] = 0
		}
	}
}

// ensureEval runs the deferred fault-free evaluation of the loaded batch.
func (s *Simulator) ensureEval() {
	if s.dirty {
		s.evalInto(s.good, -1, Fault{})
		s.dirty = false
	}
}

// AdoptPatterns copies the fault-free state of src, which must be a
// simulator over the same universe with the same lane width and patterns
// loaded. A worker pool uses it to pay the fault-free simulation once per
// batch.
func (s *Simulator) AdoptPatterns(src *Simulator) {
	src.ensureEval()
	copy(s.good, src.good)
	copy(s.loaded, src.loaded)
	s.count = src.count
	s.dirty = false
}

// evalInto evaluates the whole circuit into the dst arena. If faultGate ≥ 0,
// the given fault is injected. It is the full (non-event-driven) evaluation,
// used for the fault-free load and as the reference in differential tests.
func (s *Simulator) evalInto(dst []uint64, faultGate int, f Fault) {
	n := s.u.Net
	w := s.w
	for _, gi := range s.topo.order {
		g := &n.Gates[gi]
		db := dst[gi*w : gi*w+w]
		if g.Type == netlist.Input {
			copy(db, s.good[gi*w:gi*w+w]) // inputs always take the pattern values
		} else {
			s.planes = s.planes[:0]
			for pin, fi := range g.Fanin {
				fp := dst[fi*w : fi*w+w]
				if faultGate == gi && f.Pin == pin {
					fp = s.stuckPlane(f.Stuck)
				}
				s.planes = append(s.planes, fp)
			}
			g.Type.EvalWords(db, s.planes)
		}
		if faultGate == gi && f.Pin == -1 {
			copy(db, s.stuckPlane(f.Stuck))
		}
	}
}

// stuckPlane returns the constant all-0 or all-1 lane plane for a stuck
// value.
func (s *Simulator) stuckPlane(b uint8) []uint64 {
	if b != 0 {
		return s.ones
	}
	return s.zeros
}

func stuckWord(b uint8) uint64 {
	if b != 0 {
		return ^uint64(0)
	}
	return 0
}

// DetectMask simulates one fault against the loaded patterns and returns a
// bitmask of the patterns in the first lane word (patterns 0..63) that
// detect it (differ on some primary output). For W=1 simulators that is
// the whole batch; wider simulators report all lane words via DetectLanes.
//
// The evaluation is event-driven: only gates downstream of the injection
// point are re-evaluated, level by level, and propagation stops wherever
// the faulty value reconverges with the fault-free one. Gates that cannot
// reach a primary output are never scheduled.
func (s *Simulator) DetectMask(f Fault) uint64 {
	if s.w > 1 {
		return s.DetectLanes(f)[0]
	}
	t := s.topo
	if s.count == 0 || !t.observable[f.Gate] {
		return 0
	}
	s.ensureEval()
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(s.stamp)
		clear(s.queued)
		s.epoch = 1
	}
	s.schedule(f.Gate)
	var diff uint64
	for lv := t.level[f.Gate]; lv < len(s.levels); lv++ {
		bucket := s.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		for _, gi := range bucket {
			v := s.evalFaulty(gi, f)
			if v == s.good[gi] {
				continue // reconverged: nothing propagates
			}
			s.bad[gi] = v
			s.stamp[gi] = s.epoch
			if t.isOutput[gi] {
				diff |= s.good[gi] ^ v
			}
			for _, fo := range t.fanouts(gi) {
				if t.observable[fo] {
					s.schedule(int(fo))
				}
			}
		}
		s.levels[lv] = bucket[:0]
	}
	return diff & s.loaded[0]
}

// DetectLanes simulates one fault against the loaded patterns and returns
// the per-lane-word detect masks: bit p of word k is set when pattern
// 64k+p detects the fault. The returned slice is scratch owned by the
// simulator, valid until the next Detect call; copy it to retain it. For
// W=1 it is a one-word view of DetectMask.
func (s *Simulator) DetectLanes(f Fault) []uint64 {
	if s.w == 1 {
		s.dbuf[0] = s.DetectMask(f)
		return s.dbuf
	}
	s.detectLanes(f, false)
	return s.dbuf
}

// DetectAny reports whether any loaded pattern detects the fault —
// DetectLanes != 0 with an early exit: the level-by-level propagation stops
// at the first level where a primary output shows a (lane-masked)
// difference, instead of simulating the rest of the fault cone. The drop
// loops only need the boolean, and detected faults are exactly the ones
// whose cones propagate furthest.
func (s *Simulator) DetectAny(f Fault) bool {
	if s.w > 1 {
		return s.detectLanes(f, true)
	}
	t := s.topo
	if s.count == 0 || !t.observable[f.Gate] {
		return false
	}
	s.ensureEval()
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(s.stamp)
		clear(s.queued)
		s.epoch = 1
	}
	s.schedule(f.Gate)
	for lv := t.level[f.Gate]; lv < len(s.levels); lv++ {
		bucket := s.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		var diff uint64
		for _, gi := range bucket {
			v := s.evalFaulty(gi, f)
			if v == s.good[gi] {
				continue // reconverged: nothing propagates
			}
			s.bad[gi] = v
			s.stamp[gi] = s.epoch
			if t.isOutput[gi] {
				diff |= (s.good[gi] ^ v) & s.loaded[0]
			}
			for _, fo := range t.fanouts(gi) {
				if t.observable[fo] {
					s.schedule(int(fo))
				}
			}
		}
		s.levels[lv] = bucket[:0]
		if diff != 0 {
			for l := lv + 1; l < len(s.levels); l++ {
				s.levels[l] = s.levels[l][:0]
			}
			return true
		}
	}
	return false
}

// detectLanes is the W>1 event-driven engine behind DetectLanes and
// DetectAny: identical propagation to the scalar path, with every plane
// comparison, reconvergence check and output diff running over all W lane
// words. The per-word detect masks accumulate into s.dbuf; with early set
// it stops at the first level where any lane word shows an output
// difference. It reports whether any lane detects the fault.
func (s *Simulator) detectLanes(f Fault, early bool) bool {
	w := s.w
	t := s.topo
	diff := s.dbuf
	clear(diff)
	if s.count == 0 || !t.observable[f.Gate] {
		return false
	}
	s.ensureEval()
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(s.stamp)
		clear(s.queued)
		s.epoch = 1
	}
	s.schedule(f.Gate)
	any := false
	for lv := t.level[f.Gate]; lv < len(s.levels); lv++ {
		bucket := s.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		levelHit := false
		for _, gi := range bucket {
			s.evalFaultyLanes(gi, f, s.fbuf)
			gp := s.good[gi*w : gi*w+w]
			same := true
			for k, v := range s.fbuf {
				if v != gp[k] {
					same = false
					break
				}
			}
			if same {
				continue // reconverged in every lane: nothing propagates
			}
			copy(s.bad[gi*w:gi*w+w], s.fbuf)
			s.stamp[gi] = s.epoch
			if t.isOutput[gi] {
				for k, v := range s.fbuf {
					if d := (gp[k] ^ v) & s.loaded[k]; d != 0 {
						diff[k] |= d
						levelHit = true
						any = true
					}
				}
			}
			for _, fo := range t.fanouts(gi) {
				if t.observable[fo] {
					s.schedule(int(fo))
				}
			}
		}
		s.levels[lv] = bucket[:0]
		if early && levelHit {
			for l := lv + 1; l < len(s.levels); l++ {
				s.levels[l] = s.levels[l][:0]
			}
			return true
		}
	}
	return any
}

// schedule queues a gate for evaluation in the current epoch. Fan-out gates
// are always at a strictly higher level than their driver, so buckets below
// the cursor are never appended to.
func (s *Simulator) schedule(gi int) {
	if s.queued[gi] == s.epoch {
		return
	}
	s.queued[gi] = s.epoch
	lv := s.topo.level[gi]
	s.levels[lv] = append(s.levels[lv], gi)
}

// evalFaulty computes the faulty value of one gate from the current-epoch
// faulty values of its fan-ins (falling back to the fault-free values) with
// the fault injected. W=1 fast path; the lane engine uses evalFaultyLanes.
func (s *Simulator) evalFaulty(gi int, f Fault) uint64 {
	if f.Gate == gi && f.Pin == -1 {
		return stuckWord(f.Stuck)
	}
	g := &s.u.Net.Gates[gi]
	if g.Type == netlist.Input {
		return s.good[gi]
	}
	s.buf = s.buf[:0]
	for pin, fi := range g.Fanin {
		var fv uint64
		switch {
		case f.Gate == gi && f.Pin == pin:
			fv = stuckWord(f.Stuck)
		case s.stamp[fi] == s.epoch:
			fv = s.bad[fi]
		default:
			fv = s.good[fi]
		}
		s.buf = append(s.buf, fv)
	}
	return g.Type.EvalWord(s.buf)
}

// evalFaultyLanes is evalFaulty over W lane words: it gathers each fan-in's
// current plane (bad where stamped this epoch, good otherwise, the constant
// stuck plane on the faulty pin) and evaluates the gate function into dst.
func (s *Simulator) evalFaultyLanes(gi int, f Fault, dst []uint64) {
	w := s.w
	if f.Gate == gi && f.Pin == -1 {
		copy(dst, s.stuckPlane(f.Stuck))
		return
	}
	g := &s.u.Net.Gates[gi]
	if g.Type == netlist.Input {
		copy(dst, s.good[gi*w:gi*w+w])
		return
	}
	s.planes = s.planes[:0]
	for pin, fi := range g.Fanin {
		var fp []uint64
		switch {
		case f.Gate == gi && f.Pin == pin:
			fp = s.stuckPlane(f.Stuck)
		case s.stamp[fi] == s.epoch:
			fp = s.bad[fi*w : fi*w+w]
		default:
			fp = s.good[fi*w : fi*w+w]
		}
		s.planes = append(s.planes, fp)
	}
	g.Type.EvalWords(dst, s.planes)
}

// detectMaskFull is the original full-circuit implementation of DetectMask
// (first lane word), kept as the reference oracle for differential tests of
// the event-driven path.
func (s *Simulator) detectMaskFull(f Fault) uint64 {
	return s.detectLanesFull(f)[0]
}

// detectLanesFull is the full-circuit (non-event-driven) reference for
// DetectLanes: evaluate the whole faulty circuit into the bad arena and
// XOR the outputs. Returns scratch valid until the next Detect call.
func (s *Simulator) detectLanesFull(f Fault) []uint64 {
	s.ensureEval()
	s.evalInto(s.bad, f.Gate, f)
	w := s.w
	diff := s.dbuf
	clear(diff)
	for _, o := range s.u.Net.Outputs {
		for k := 0; k < w; k++ {
			diff[k] |= (s.good[o*w+k] ^ s.bad[o*w+k]) & s.loaded[k]
		}
	}
	// The bad arena now holds full-circuit values without epoch stamps —
	// harmless, because every event-driven Detect bumps the epoch on entry
	// and only reads bad where the stamp matches the new epoch.
	return diff
}
