package faultsim

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/prng"
)

func andOr(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddInput("c")
	if _, err := n.AddGate("ab", netlist.And, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("y", netlist.Or, "ab", "c"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestUniverseCollapsing(t *testing.T) {
	n := andOr(t)
	u := NewUniverse(n)
	// No fan-out stems here (every signal drives one load), so only output
	// faults survive: 5 signals × 2 = 10 faults.
	if len(u.Faults) != 10 {
		t.Errorf("got %d faults, want 10: %v", len(u.Faults), u.Faults)
	}
}

func TestUniverseKeepsBranchFaults(t *testing.T) {
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddGate("p", netlist.And, "a", "b")
	n.AddGate("q", netlist.Or, "a", "b") // a and b fan out to two gates
	n.MarkOutput("p")
	n.MarkOutput("q")
	u := NewUniverse(n)
	// 4 signals × 2 output faults + 2 gates × 2 pins × 2 branch faults.
	if len(u.Faults) != 8+8 {
		t.Errorf("got %d faults, want 16", len(u.Faults))
	}
}

func TestDetectMaskKnownFault(t *testing.T) {
	n := andOr(t)
	u := NewUniverse(n)
	sim, err := NewSimulator(u)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern (1,1,0) sets ab=1, y=1. Fault ab/sa0 flips y → detected.
	// Pattern (0,0,1) gives y=1 via c; ab/sa0 is not observable.
	if err := sim.LoadPatterns([][]uint8{{1, 1, 0}, {0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	abIdx, _ := n.Index("ab")
	mask := sim.DetectMask(Fault{Gate: abIdx, Pin: -1, Stuck: 0})
	if mask != 0b01 {
		t.Errorf("detect mask = %b, want 01", mask)
	}
	// y stuck-at-1 is detected only where y would be 0: neither pattern.
	yIdx, _ := n.Index("y")
	if m := sim.DetectMask(Fault{Gate: yIdx, Pin: -1, Stuck: 1}); m != 0 {
		t.Errorf("y/sa1 mask = %b, want 0", m)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// DetectMask over a 64-pattern batch must equal the OR of single-pattern
	// simulations.
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 16, Outputs: 5, Gates: 60, MaxFan: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(nl)
	sim, _ := NewSimulator(u)
	src := prng.New(3)
	patterns := make([][]uint8, 64)
	for i := range patterns {
		p := make([]uint8, 16)
		for j := range p {
			p[j] = src.Bit()
		}
		patterns[i] = p
	}
	if err := sim.LoadPatterns(patterns); err != nil {
		t.Fatal(err)
	}
	serial, _ := NewSimulator(u)
	for _, f := range u.Faults[:40] {
		batch := sim.DetectMask(f)
		for pi, p := range patterns {
			if err := serial.LoadPatterns([][]uint8{p}); err != nil {
				t.Fatal(err)
			}
			got := serial.DetectMask(f) & 1
			want := batch >> uint(pi) & 1
			if got != want {
				t.Fatalf("fault %v pattern %d: serial %d vs batch %d", f, pi, got, want)
			}
		}
	}
}

func TestCoverageExhaustivePatterns(t *testing.T) {
	// All 8 input patterns of the AND-OR circuit detect every fault.
	n := andOr(t)
	u := NewUniverse(n)
	var patterns [][]uint8
	for v := 0; v < 8; v++ {
		patterns = append(patterns, []uint8{uint8(v) & 1, uint8(v>>1) & 1, uint8(v>>2) & 1})
	}
	_, cov, err := Coverage(u, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 1.0 {
		t.Errorf("exhaustive coverage = %.3f, want 1.0", cov)
	}
}

// TestLoadPackedMatchesLoadPatterns asserts the three batch-building paths
// are interchangeable: bit-sliced LoadPatterns, incremental AppendPattern
// (including appends split around DetectMask calls, which force the lazy
// fault-free evaluation mid-batch), and pre-packed LoadPacked must yield
// identical detect masks for every fault.
func TestLoadPackedMatchesLoadPatterns(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 16, Outputs: 5, Gates: 80, MaxFan: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(nl)
	for _, count := range []int{1, 3, 64} {
		patterns := randomPatterns(prng.New(uint64(count)), count, 16)
		ref, _ := NewSimulator(u)
		if err := ref.LoadPatterns(patterns); err != nil {
			t.Fatal(err)
		}
		packed := make([]uint64, 16)
		for pi, p := range patterns {
			for ii, b := range p {
				if b != 0 {
					packed[ii] |= 1 << uint(pi)
				}
			}
		}
		viaPacked, _ := NewSimulator(u)
		// Lanes at or above count must be masked off even if set.
		if count < 64 {
			packed[0] |= 1 << uint(count)
		}
		if err := viaPacked.LoadPacked(packed, count); err != nil {
			t.Fatal(err)
		}
		viaAppend, _ := NewSimulator(u)
		viaAppend.ResetPatterns()
		for pi, p := range patterns {
			if err := viaAppend.AppendPattern(p); err != nil {
				t.Fatal(err)
			}
			if pi == 0 {
				viaAppend.DetectMask(u.Faults[0]) // force a mid-batch evaluation
			}
		}
		if got := viaPacked.PatternCount(); got != count {
			t.Fatalf("count=%d: LoadPacked PatternCount %d", count, got)
		}
		if got := viaAppend.PatternCount(); got != count {
			t.Fatalf("count=%d: AppendPattern PatternCount %d", count, got)
		}
		for _, f := range u.Faults {
			want := ref.DetectMask(f)
			if got := viaPacked.DetectMask(f); got != want {
				t.Fatalf("count=%d fault %v: LoadPacked mask %064b, want %064b", count, f, got, want)
			}
			if got := viaAppend.DetectMask(f); got != want {
				t.Fatalf("count=%d fault %v: AppendPattern mask %064b, want %064b", count, f, got, want)
			}
		}
	}
}

func TestAppendAndPackedValidation(t *testing.T) {
	n := andOr(t)
	sim, _ := NewSimulator(NewUniverse(n))
	if err := sim.AppendPattern([]uint8{1, 0}); err == nil {
		t.Error("short pattern accepted by AppendPattern")
	}
	for i := 0; i < 64; i++ {
		if err := sim.AppendPattern([]uint8{1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.AppendPattern([]uint8{1, 0, 1}); err == nil {
		t.Error("65th pattern accepted")
	}
	if err := sim.LoadPacked(make([]uint64, 2), 4); err == nil {
		t.Error("wrong word count accepted by LoadPacked")
	}
	if err := sim.LoadPacked(make([]uint64, 3), 0); err == nil {
		t.Error("zero-lane LoadPacked accepted")
	}
	if err := sim.LoadPacked(make([]uint64, 3), 65); err == nil {
		t.Error("65-lane LoadPacked accepted")
	}
}

func TestLoadPatternsValidation(t *testing.T) {
	n := andOr(t)
	sim, _ := NewSimulator(NewUniverse(n))
	if err := sim.LoadPatterns(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if err := sim.LoadPatterns([][]uint8{{1, 0}}); err == nil {
		t.Error("short pattern accepted")
	}
}

func BenchmarkFaultSim64Patterns(b *testing.B) {
	nl, _ := netlist.Random(netlist.RandomConfig{Inputs: 64, Outputs: 16, Gates: 600, MaxFan: 3, Seed: 5})
	u := NewUniverse(nl)
	sim, _ := NewSimulator(u)
	src := prng.New(1)
	patterns := make([][]uint8, 64)
	for i := range patterns {
		p := make([]uint8, 64)
		for j := range p {
			p[j] = src.Bit()
		}
		patterns[i] = p
	}
	sim.LoadPatterns(patterns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.DetectMask(u.Faults[i%len(u.Faults)])
	}
}

// BenchmarkDetectAllBatchWidth isolates the drop-loop lane-waste fix: the
// same 64 patterns swept over the fault universe as one full-width batch
// versus 64 single-pattern sweeps (the shape of the seed's drop loop,
// which left 63 of the simulator's word lanes empty on every DetectAll).
func BenchmarkDetectAllBatchWidth(b *testing.B) {
	nl, _ := netlist.Random(netlist.RandomConfig{Inputs: 96, Outputs: 32, Gates: 4000, MaxFan: 3, Seed: 2008})
	u := NewUniverse(nl)
	sim, err := NewSimulator(u)
	if err != nil {
		b.Fatal(err)
	}
	patterns := randomPatterns(prng.New(1), 64, 96)
	sims := []*Simulator{sim}
	b.Run("batch=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detected := make([]bool, len(u.Faults))
			if err := sim.LoadPatterns(patterns); err != nil {
				b.Fatal(err)
			}
			DetectAll(sims, u.Faults, detected)
		}
	})
	b.Run("batch=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detected := make([]bool, len(u.Faults))
			for _, p := range patterns {
				if err := sim.LoadPatterns([][]uint8{p}); err != nil {
					b.Fatal(err)
				}
				DetectAll(sims, u.Faults, detected)
			}
		}
	})
}

// BenchmarkDetectMaskEngine compares the event-driven DetectMask against
// the full-circuit reference evaluation on the same universe — the
// single-core speedup of the cone-limited hot path, independent of the
// worker pool.
func BenchmarkDetectMaskEngine(b *testing.B) {
	nl, _ := netlist.Random(netlist.RandomConfig{Inputs: 96, Outputs: 32, Gates: 4000, MaxFan: 3, Seed: 2008})
	u := NewUniverse(nl)
	sim, err := NewSimulator(u)
	if err != nil {
		b.Fatal(err)
	}
	src := prng.New(1)
	patterns := make([][]uint8, 64)
	for i := range patterns {
		p := make([]uint8, 96)
		for j := range p {
			p[j] = src.Bit()
		}
		patterns[i] = p
	}
	if err := sim.LoadPatterns(patterns); err != nil {
		b.Fatal(err)
	}
	b.Run("event-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.DetectMask(u.Faults[i%len(u.Faults)])
		}
	})
	b.Run("full-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.detectMaskFull(u.Faults[i%len(u.Faults)])
		}
	})
}
