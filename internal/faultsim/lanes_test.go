package faultsim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/netlist"
	"repro/internal/prng"
)

// laneCircuit builds the i-th randomized differential circuit: small enough
// that every fault of every circuit is affordable, varied enough (inputs,
// outputs, size, fan-in) that the 200-circuit sweep covers reconvergence,
// deep cones and degenerate shapes.
func laneCircuit(t testing.TB, i uint64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomConfig{
		Inputs:  5 + int(i%10),
		Outputs: 2 + int(i%5),
		Gates:   20 + int((i*7)%60),
		MaxFan:  2 + int(i%2),
		Seed:    1000 + i,
	})
	if err != nil {
		t.Fatalf("circuit %d: %v", i, err)
	}
	return nl
}

// effPlaneWord returns the simulator's effective faulty value of gate gi in
// lane word k after a Detect call: the bad plane where the current epoch
// stamped a divergence, the fault-free plane everywhere else. This is the
// full observable simulation state a lane width must reproduce.
func effPlaneWord(s *Simulator, gi, k int) uint64 {
	if s.stamp[gi] == s.epoch {
		return s.bad[gi*s.w+k]
	}
	return s.good[gi*s.w+k]
}

// diffLanesAgainstReference loads count patterns into one wide simulator and
// into ceil(count/64) single-word reference simulators (one per lane word)
// and, for every fault, requires the wide engine's detect mask AND its full
// good/bad plane state to match the reference lane word by lane word.
func diffLanesAgainstReference(t *testing.T, nl *netlist.Netlist, w, count int, patSeed uint64) {
	t.Helper()
	u := NewUniverse(nl)
	wide, err := NewSimulatorLanes(u, w)
	if err != nil {
		t.Fatal(err)
	}
	patterns := randomPatterns(prng.New(patSeed), count, len(nl.Inputs))
	if err := wide.LoadPatterns(patterns); err != nil {
		t.Fatal(err)
	}
	chunks := (count + 63) / 64
	refs := make([]*Simulator, chunks)
	for k := range refs {
		ref, err := NewSimulator(u)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 64*k, min(64*(k+1), count)
		if err := ref.LoadPatterns(patterns[lo:hi]); err != nil {
			t.Fatal(err)
		}
		refs[k] = ref
	}
	wantMask := make([]uint64, w)
	for _, f := range u.Faults {
		got := wide.DetectLanes(f)
		clear(wantMask)
		for k, ref := range refs {
			wantMask[k] = ref.DetectMask(f)
		}
		for k := 0; k < w; k++ {
			if got[k] != wantMask[k] {
				t.Fatalf("w=%d count=%d fault %v lane word %d: wide mask %064b, W=1 reference %064b",
					w, count, f, k, got[k], wantMask[k])
			}
		}
		if any := wide.DetectAny(f); any != anyNonzero(wantMask) {
			t.Fatalf("w=%d count=%d fault %v: DetectAny=%v, reference masks %v", w, count, f, any, wantMask)
		}
		if !wide.topo.observable[f.Gate] {
			continue // Detect returned before touching planes; state is stale
		}
		// Re-run the full (non-early) propagation so the plane state
		// reflects this fault, then compare every gate's effective value.
		wide.DetectLanes(f)
		for k, ref := range refs {
			ref.DetectMask(f)
			for gi := 0; gi < nl.NumGates(); gi++ {
				if gw, rw := effPlaneWord(wide, gi, k), effPlaneWord(ref, gi, 0); gw != rw {
					t.Fatalf("w=%d count=%d fault %v gate %d lane word %d: wide plane %064b, reference %064b",
						w, count, f, gi, k, gw, rw)
				}
			}
		}
	}
}

func anyNonzero(words []uint64) bool {
	for _, v := range words {
		if v != 0 {
			return true
		}
	}
	return false
}

// TestSimulatorLaneWidthDifferential is the lane-width lock: across c17 and
// 200 randomized circuits, every lane width in {2,4,8} must reproduce the
// single-word engine's detect masks and full good/bad plane state lane word
// by lane word, including batches whose last lane word is partially loaded.
// Run with -race (CI does) to confirm the engines share no hidden state.
func TestSimulatorLaneWidthDifferential(t *testing.T) {
	widths := []int{2, 4, 8}
	// c17 at every width, full and partial batches.
	for _, w := range widths {
		nl := c17(t)
		diffLanesAgainstReference(t, nl, w, 64*w, 7)    // full capacity
		diffLanesAgainstReference(t, nl, w, 64*w-13, 8) // partial last word
	}
	// 200 randomized circuits; the batch size cycles through full capacity,
	// a partial last word, and a batch shorter than one word.
	for i := uint64(0); i < 200; i++ {
		nl := laneCircuit(t, i)
		w := widths[i%3]
		count := 64 * w
		switch i % 4 {
		case 1:
			count -= 1 + int(i%63)
		case 2:
			count = 64*(w-1) + 1 // exactly one bit in the last word
		case 3:
			count = 1 + int(i%40) // shorter than a single lane word
		}
		diffLanesAgainstReference(t, nl, w, count, 300+i)
	}
}

// TestLaneOverflowBoundaries pins the typed capacity error on every loading
// path: counts of exactly Capacity load fine, Capacity+1 fails with
// ErrLaneOverflow (checkable via errors.Is), and empty batches are rejected
// with a plain validation error, not an overflow.
func TestLaneOverflowBoundaries(t *testing.T) {
	nl := c17(t)
	u := NewUniverse(nl)
	for _, w := range []int{1, 2, 8} {
		s, err := NewSimulatorLanes(u, w)
		if err != nil {
			t.Fatal(err)
		}
		cap := 64 * w
		if s.Capacity() != cap {
			t.Fatalf("w=%d: Capacity=%d, want %d", w, s.Capacity(), cap)
		}
		cases := []struct {
			name     string
			count    int
			overflow bool // expect ErrLaneOverflow
			ok       bool // expect success
		}{
			{"zero", 0, false, false},
			{"one", 1, false, true},
			{"exactly-capacity", cap, false, true},
			{"capacity-plus-one", cap + 1, true, false},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("w=%d/LoadPatterns/%s", w, tc.name), func(t *testing.T) {
				err := s.LoadPatterns(randomPatterns(prng.New(1), tc.count, len(nl.Inputs)))
				checkOverflow(t, err, tc.overflow, tc.ok)
			})
			t.Run(fmt.Sprintf("w=%d/LoadPacked/%s", w, tc.name), func(t *testing.T) {
				err := s.LoadPacked(make([]uint64, len(nl.Inputs)*w), tc.count)
				checkOverflow(t, err, tc.overflow, tc.ok)
			})
		}
		// LoadPacked also validates the packed word count itself.
		if err := s.LoadPacked(make([]uint64, len(nl.Inputs)*w+1), 1); err == nil {
			t.Fatalf("w=%d: LoadPacked accepted a wrong word count", w)
		} else if errors.Is(err, ErrLaneOverflow) {
			t.Fatalf("w=%d: word-count error misreported as ErrLaneOverflow: %v", w, err)
		}
		// The Capacity+1-th AppendPattern must overflow with the typed error.
		if err := s.LoadPatterns(randomPatterns(prng.New(2), cap, len(nl.Inputs))); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendPattern(make([]uint8, len(nl.Inputs))); !errors.Is(err, ErrLaneOverflow) {
			t.Fatalf("w=%d: AppendPattern past capacity returned %v, want ErrLaneOverflow", w, err)
		}
	}
	if _, err := NewSimulatorLanes(u, 0); err == nil {
		t.Fatal("NewSimulatorLanes accepted 0 lane words")
	}
	if _, err := NewSimulatorLanes(u, MaxLaneWords+1); err == nil {
		t.Fatalf("NewSimulatorLanes accepted %d lane words", MaxLaneWords+1)
	}
}

func checkOverflow(t *testing.T, err error, wantOverflow, wantOK bool) {
	t.Helper()
	switch {
	case wantOK:
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	case wantOverflow:
		if !errors.Is(err, ErrLaneOverflow) {
			t.Fatalf("got %v, want ErrLaneOverflow", err)
		}
	default:
		if err == nil {
			t.Fatal("invalid batch accepted")
		}
		if errors.Is(err, ErrLaneOverflow) {
			t.Fatalf("validation error misreported as ErrLaneOverflow: %v", err)
		}
	}
}

// TestFaultShardsStreamUniverse proves the sharded enumeration reproduces
// the materialized universe exactly — same faults, same order, same indices
// — for shard sizes from degenerate (1) through default to
// bigger-than-universe, and that Matches rejects any deviation.
func TestFaultShardsStreamUniverse(t *testing.T) {
	circuits := map[string]*netlist.Netlist{"c17": c17(t)}
	for _, seed := range []uint64{3, 11, 29} {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 18, Outputs: 6, Gates: 140, MaxFan: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		circuits[fmt.Sprintf("random-%d", seed)] = nl
	}
	for name, nl := range circuits {
		t.Run(name, func(t *testing.T) {
			u := NewUniverse(nl)
			for _, size := range []int{1, 3, DefaultShardSize, 100000} {
				fs := NewFaultShards(nl, size)
				if fs.NumFaults() != len(u.Faults) {
					t.Fatalf("size=%d: NumFaults=%d, universe has %d", size, fs.NumFaults(), len(u.Faults))
				}
				var streamed []Fault
				var buf []Fault
				for k := 0; k < fs.NumShards(); k++ {
					shard, start := fs.Shard(k, buf)
					if start != k*fs.ShardSize() {
						t.Fatalf("size=%d shard %d: start=%d, want %d", size, k, start, k*fs.ShardSize())
					}
					if len(shard) == 0 {
						t.Fatalf("size=%d shard %d: empty in-range shard", size, k)
					}
					streamed = append(streamed, shard...)
					buf = shard
				}
				if len(streamed) != len(u.Faults) {
					t.Fatalf("size=%d: streamed %d faults, universe has %d", size, len(streamed), len(u.Faults))
				}
				for i := range streamed {
					if streamed[i] != u.Faults[i] {
						t.Fatalf("size=%d fault %d: streamed %v, universe %v", size, i, streamed[i], u.Faults[i])
					}
				}
				if !fs.Matches(u.Faults) {
					t.Fatalf("size=%d: Matches rejected the universe's own fault list", size)
				}
				if shard, _ := fs.Shard(fs.NumShards(), nil); len(shard) != 0 {
					t.Fatalf("size=%d: out-of-range shard returned %d faults", size, len(shard))
				}
				if shard, _ := fs.Shard(-1, nil); len(shard) != 0 {
					t.Fatalf("size=%d: negative shard returned %d faults", size, len(shard))
				}
				perturbed := append([]Fault(nil), u.Faults...)
				perturbed[len(perturbed)/2].Stuck ^= 1
				if fs.Matches(perturbed) {
					t.Fatalf("size=%d: Matches accepted a perturbed fault list", size)
				}
				if fs.Matches(perturbed[:len(perturbed)-1]) {
					t.Fatalf("size=%d: Matches accepted a truncated fault list", size)
				}
			}
		})
	}
}

// TestDetectAllShardsMatchesDetectAll requires the streamed sweep to mark
// exactly the same detected set as the materialized sweep, serial and
// pooled, including on a partially pre-marked done slice (the fault-drop
// shape). Run with -race to check the shard claiming.
func TestDetectAllShardsMatchesDetectAll(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 24, Outputs: 8, Gates: 260, MaxFan: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(nl)
	patterns := randomPatterns(prng.New(6), 90, len(nl.Inputs))
	for _, shardSize := range []int{1, 7, DefaultShardSize} {
		shards := NewFaultShards(nl, shardSize)
		if !shards.Matches(u.Faults) {
			t.Fatalf("size=%d: shards do not match the universe", shardSize)
		}
		for _, workers := range []int{1, 3} {
			sims, err := NewSimulatorPool(u, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := sims[0].LoadPatterns(patterns[:64]); err != nil {
				t.Fatal(err)
			}
			for _, s := range sims[1:] {
				s.AdoptPatterns(sims[0])
			}
			// Pre-mark every 5th fault to exercise the drop skip.
			want := make([]bool, len(u.Faults))
			got := make([]bool, len(u.Faults))
			for i := range want {
				if i%5 == 0 {
					want[i], got[i] = true, true
				}
			}
			wantN := DetectAll(sims, u.Faults, want)
			gotN := DetectAllShards(sims, shards, got)
			if gotN != wantN {
				t.Fatalf("size=%d workers=%d: sharded sweep marked %d, materialized %d", shardSize, workers, gotN, wantN)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("size=%d workers=%d fault %v: sharded=%v, materialized=%v",
						shardSize, workers, u.Faults[i], got[i], want[i])
				}
			}
		}
	}
}

// FuzzDetectLanes cross-checks the wide-lane engine against the single-word
// engine on fuzzer-shaped circuits and pattern batches: for every fault of
// the generated netlist, DetectLanes at W ∈ {2,4,8} must equal the W=1
// masks chunk by chunk, and DetectAny must agree with the mask. CI runs a
// 10-second smoke over the seed corpus.
func FuzzDetectLanes(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(100))
	f.Add(uint64(42), uint8(1), uint8(7))
	f.Add(uint64(2008), uint8(2), uint8(255))
	f.Add(uint64(7777), uint8(5), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, wsel, countSel uint8) {
		nl, err := netlist.Random(netlist.RandomConfig{
			Inputs:  3 + int(seed%14),
			Outputs: 1 + int((seed>>4)%8),
			Gates:   8 + int((seed>>8)%72),
			MaxFan:  2 + int((seed>>16)%3),
			Seed:    seed,
		})
		if err != nil {
			t.Skip() // unbuildable parameter combination
		}
		w := []int{2, 4, 8}[int(wsel)%3]
		count := 1 + int(countSel)%(64*w)
		u := NewUniverse(nl)
		wide, err := NewSimulatorLanes(u, w)
		if err != nil {
			t.Fatal(err)
		}
		patterns := randomPatterns(prng.New(seed^0x9e3779b97f4a7c15), count, len(nl.Inputs))
		if err := wide.LoadPatterns(patterns); err != nil {
			t.Fatal(err)
		}
		chunks := (count + 63) / 64
		refs := make([]*Simulator, chunks)
		for k := range refs {
			ref, err := NewSimulator(u)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.LoadPatterns(patterns[64*k : min(64*(k+1), count)]); err != nil {
				t.Fatal(err)
			}
			refs[k] = ref
		}
		for _, fault := range u.Faults {
			got := wide.DetectLanes(fault)
			anyWant := false
			for k := 0; k < w; k++ {
				var want uint64
				if k < chunks {
					want = refs[k].DetectMask(fault)
				}
				if got[k] != want {
					t.Fatalf("w=%d count=%d fault %v word %d: wide %064b, reference %064b", w, count, fault, k, got[k], want)
				}
				anyWant = anyWant || want != 0
			}
			if any := wide.DetectAny(fault); any != anyWant {
				t.Fatalf("w=%d count=%d fault %v: DetectAny=%v, reference %v", w, count, fault, any, anyWant)
			}
		}
	})
}

// BenchmarkSimulatorArenaBuild measures what the arena layout buys at
// scale: constructing a simulator over a 100k-gate circuit is a fixed
// handful of slab allocations (plane arenas, stamp arrays, level buckets)
// regardless of gate count. The shared topology is built once outside the
// loop, as a worker pool would.
func BenchmarkSimulatorArenaBuild(b *testing.B) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 2000, Outputs: 800, Gates: 100000, MaxFan: 3, Seed: 2008})
	if err != nil {
		b.Fatal(err)
	}
	u := NewUniverse(nl)
	if _, err := NewSimulator(u); err != nil { // warm the shared topology
		b.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("lanewords=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewSimulatorLanes(u, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectAllLaneWidth measures the lane-width win on the fixed
// paper-scale coverage workload: full detect masks for every fault of a
// 4000-gate core against 512 pseudorandom patterns (the Coverage sweep
// shape). W=1 walks each fault's cone eight times — paying the per-gate
// scheduling, stamping and reconvergence overhead on every pass — where
// W=8 walks it once with eight-word planes; -benchmem shows the arena
// layout keeps allocations flat across widths (the slabs are built outside
// the loop).
func BenchmarkDetectAllLaneWidth(b *testing.B) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 96, Outputs: 32, Gates: 4000, MaxFan: 3, Seed: 2008})
	if err != nil {
		b.Fatal(err)
	}
	u := NewUniverse(nl)
	const total = 512
	patterns := randomPatterns(prng.New(9), total, len(nl.Inputs))
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("lanewords=%d", w), func(b *testing.B) {
			sim, err := NewSimulatorLanes(u, w)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-pack each 64×w batch so the timed loop measures the
			// sweeps, not the bit slicing.
			batch := sim.Capacity()
			var packed [][]uint64
			var counts []int
			for start := 0; start < total; start += batch {
				end := min(start+batch, total)
				words := make([]uint64, len(nl.Inputs)*w)
				for p := start; p < end; p++ {
					word, bit := (p-start)>>6, uint64(1)<<uint((p-start)&63)
					for ii := range nl.Inputs {
						if patterns[p][ii] != 0 {
							words[ii*w+word] |= bit
						}
					}
				}
				packed = append(packed, words)
				counts = append(counts, end-start)
			}
			var sink uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for bi := range packed {
					if err := sim.LoadPacked(packed[bi], counts[bi]); err != nil {
						b.Fatal(err)
					}
					for _, f := range u.Faults {
						for _, m := range sim.DetectLanes(f) {
							sink ^= m
						}
					}
				}
			}
			benchSink = sink
		})
	}
}

// benchSink defeats dead-code elimination of the benchmarked detect masks.
var benchSink uint64
