package faultsim

import (
	"fmt"
	"testing"

	"repro/internal/netlist"
	"repro/internal/prng"
)

// c17 builds the ISCAS'85 c17 benchmark: 5 inputs, 6 NAND gates, 2 outputs,
// with reconvergent fan-out stems — the smallest standard circuit with
// non-trivial fault-masking structure.
func c17(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New()
	for _, in := range []string{"G1", "G2", "G3", "G6", "G7"} {
		if _, err := n.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	gates := []struct {
		name string
		a, b string
	}{
		{"G10", "G1", "G3"},
		{"G11", "G3", "G6"},
		{"G16", "G2", "G11"},
		{"G19", "G11", "G7"},
		{"G22", "G10", "G16"},
		{"G23", "G16", "G19"},
	}
	for _, g := range gates {
		if _, err := n.AddGate(g.name, netlist.Nand, g.a, g.b); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range []string{"G22", "G23"} {
		if err := n.MarkOutput(o); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func randomPatterns(src *prng.Source, count, width int) [][]uint8 {
	patterns := make([][]uint8, count)
	for i := range patterns {
		p := make([]uint8, width)
		for j := range p {
			p[j] = src.Bit()
		}
		patterns[i] = p
	}
	return patterns
}

// TestEventDrivenMatchesFullEval asserts that the event-driven DetectMask
// returns exactly the mask of the original full-circuit evaluation for
// every fault of c17 and of randomized circuits, across several pattern
// batches.
func TestEventDrivenMatchesFullEval(t *testing.T) {
	circuits := map[string]*netlist.Netlist{"c17": c17(t)}
	for _, seed := range []uint64{7, 21, 1999} {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 24, Outputs: 8, Gates: 150, MaxFan: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		circuits[fmt.Sprintf("random-%d", seed)] = nl
	}
	for name, nl := range circuits {
		t.Run(name, func(t *testing.T) {
			u := NewUniverse(nl)
			event, err := NewSimulator(u)
			if err != nil {
				t.Fatal(err)
			}
			full, err := NewSimulator(u)
			if err != nil {
				t.Fatal(err)
			}
			src := prng.New(42)
			for batch := 0; batch < 3; batch++ {
				patterns := randomPatterns(src, 64, len(nl.Inputs))
				if err := event.LoadPatterns(patterns); err != nil {
					t.Fatal(err)
				}
				full.AdoptPatterns(event)
				for _, f := range u.Faults {
					got := event.DetectMask(f)
					want := full.detectMaskFull(f)
					if got != want {
						t.Fatalf("batch %d fault %v: event-driven mask %064b, full-eval mask %064b", batch, f, got, want)
					}
					// The early-exit boolean must agree with the full mask;
					// interleaving it here also checks the two share the
					// simulator's epoch state cleanly.
					if any := event.DetectAny(f); any != (want != 0) {
						t.Fatalf("batch %d fault %v: DetectAny %v, mask %064b", batch, f, any, want)
					}
				}
			}
		})
	}
}

// TestCoverageWorkersBitIdentical asserts that the parallel coverage run
// returns exactly the serial detected slice — not just the same coverage
// fraction — on c17 and randomized circuits. Run it with -race to check the
// sharding.
func TestCoverageWorkersBitIdentical(t *testing.T) {
	circuits := map[string]*netlist.Netlist{"c17": c17(t)}
	for _, seed := range []uint64{3, 11} {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 32, Outputs: 12, Gates: 300, MaxFan: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		circuits[fmt.Sprintf("random-%d", seed)] = nl
	}
	for name, nl := range circuits {
		t.Run(name, func(t *testing.T) {
			u := NewUniverse(nl)
			patterns := randomPatterns(prng.New(5), 150, len(nl.Inputs)) // 3 batches, last partial
			serial, serialCov, err := CoverageOpts(u, patterns, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8, 0} {
				par, parCov, err := CoverageOpts(u, patterns, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if parCov != serialCov {
					t.Fatalf("workers=%d: coverage %v != serial %v", workers, parCov, serialCov)
				}
				for fi := range serial {
					if par[fi] != serial[fi] {
						t.Fatalf("workers=%d fault %v: detected=%v, serial says %v", workers, u.Faults[fi], par[fi], serial[fi])
					}
				}
			}
		})
	}
}

// TestDetectAllMatchesSerialDrop exercises the RunAll drop-loop primitive:
// a pool marking faults over a shared done slice must mark exactly the
// serial set and report the same count.
func TestDetectAllMatchesSerialDrop(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 20, Outputs: 8, Gates: 200, MaxFan: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(nl)
	patterns := randomPatterns(prng.New(9), 8, len(nl.Inputs))

	runPool := func(workers int) ([]bool, int) {
		sims, err := NewSimulatorPool(u, workers)
		if err != nil {
			t.Fatal(err)
		}
		done := make([]bool, len(u.Faults))
		total := 0
		for _, p := range patterns {
			if err := sims[0].LoadPatterns([][]uint8{p}); err != nil {
				t.Fatal(err)
			}
			for _, s := range sims[1:] {
				s.AdoptPatterns(sims[0])
			}
			total += DetectAll(sims, u.Faults, done)
		}
		return done, total
	}

	serialDone, serialTotal := runPool(1)
	for _, workers := range []int{2, 5} {
		parDone, parTotal := runPool(workers)
		if parTotal != serialTotal {
			t.Fatalf("workers=%d: %d detections, serial %d", workers, parTotal, serialTotal)
		}
		for fi := range serialDone {
			if parDone[fi] != serialDone[fi] {
				t.Fatalf("workers=%d fault %v: done=%v, serial says %v", workers, u.Faults[fi], parDone[fi], serialDone[fi])
			}
		}
	}
}
