package faultsim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/netlist"
	"repro/internal/prng"
)

// TestCoverageCtxCanceled asserts a dead context stops the sweep with a
// typed error, and that the background-context path stays bit-identical
// to the no-context API.
func TestCoverageCtxCanceled(t *testing.T) {
	core, err := netlist.Random(netlist.RandomConfig{
		Inputs: 40, Outputs: 24, Gates: 600, MaxFan: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(core)
	rnd := prng.New(11)
	patterns := make([][]uint8, 512)
	for i := range patterns {
		p := make([]uint8, len(core.Inputs))
		for b := range p {
			p[b] = rnd.Bit()
		}
		patterns[i] = p
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CoverageCtx(canceled, u, patterns, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	detA, covA, err := Coverage(u, patterns)
	if err != nil {
		t.Fatal(err)
	}
	detB, covB, err := CoverageCtx(context.Background(), u, patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if covA != covB || len(detA) != len(detB) {
		t.Fatalf("coverage differs: %v vs %v", covA, covB)
	}
	for i := range detA {
		if detA[i] != detB[i] {
			t.Fatalf("detected[%d] differs", i)
		}
	}
}
