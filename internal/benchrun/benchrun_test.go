package benchrun

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/benchprofile"
	"repro/internal/experiments"
)

// testGrid is a two-circuit, two-L CI grid small enough to run in every
// test that needs a real harness run.
func testGrid() Grid {
	g := DefaultGrid(benchprofile.ScaleCI)
	g.Circuits = []string{"s9234", "s13207"}
	g.WindowLengths = []int{1, 8}
	g.ATPG = ATPGGrid{Inputs: 24, Outputs: 12, Gates: 60, MaxFan: 3, BacktrackLimit: 20}
	return g
}

// runTestGrid runs the shared small grid once per test binary.
func runTestGrid(t *testing.T) (string, *Snapshot) {
	t.Helper()
	dir := t.TempDir()
	runDir := filepath.Join(dir, "run")
	snapPath := filepath.Join(dir, SnapshotName("test"))
	snap, err := Run(context.Background(), RunOptions{
		Grid: testGrid(), Dir: runDir, SnapshotPath: snapPath, Stamp: "test",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return dir, snap
}

func TestRunAndSnapshot(t *testing.T) {
	dir, snap := runTestGrid(t)

	if want := 2 * 2; len(snap.Encode) != want {
		t.Fatalf("encode cells = %d, want %d", len(snap.Encode), want)
	}
	if want := 2 * 2; len(snap.ATPG) != want {
		t.Fatalf("atpg cells = %d, want %d", len(snap.ATPG), want)
	}
	if len(snap.Sessions) != 1 || !snap.Sessions[0].Tables {
		t.Fatalf("sessions = %+v, want one table-bearing session", snap.Sessions)
	}

	// The snapshot round-trips through disk and stays valid.
	got, err := ReadSnapshot(filepath.Join(dir, SnapshotName("test")))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot round-trip mismatch:\n got %+v\nwant %+v", got, snap)
	}

	// The run directory holds every CSV plus the log.
	for _, name := range []string{EncodeCSV, ATPGCSV, SessionCSV, Table1CSV, Table2CSV, Table3CSV, Table4CSV, Fig4CSV, "run.log"} {
		if _, err := os.Stat(filepath.Join(dir, "run", name)); err != nil {
			t.Errorf("missing run artefact %s: %v", name, err)
		}
	}

	// Encode counters match a session run directly at the same scale —
	// the harness adds measurement, never behaviour.
	sess := experiments.NewSession(benchprofile.ScaleCI)
	for _, c := range snap.Encode[:2] {
		enc, err := sess.Encoding(c.Circuit, c.L)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc.Seeds) != c.Seeds || enc.TDV() != c.TDV || enc.TSL() != c.TSL || enc.ChecksPerformed != c.Checks {
			t.Errorf("%s: cell %+v does not match direct session encoding (seeds=%d tdv=%d tsl=%d checks=%d)",
				c.Key(), c, len(enc.Seeds), enc.TDV(), enc.TSL(), enc.ChecksPerformed)
		}
	}
}

func TestAnalyzeTable1MatchesSession(t *testing.T) {
	dir, _ := runTestGrid(t)
	rep, err := Analyze(filepath.Join(dir, "run"), benchprofile.ScaleCI)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	sess := experiments.NewSession(benchprofile.ScaleCI)
	want, err := sess.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Table1, want) {
		t.Errorf("analyzer Table 1 differs from Session.Table1():\n got %+v\nwant %+v", rep.Table1, want)
	}
	if md, wantMD := rep.Markdown(), sess.Table1Markdown(want); !strings.Contains(md, wantMD) {
		t.Errorf("analyzer Markdown does not embed the session's Table 1 rendering:\n%s", wantMD)
	}

	tex := rep.LaTeX()
	for _, needle := range []string{"\\begin{tabular}", "s9234", "Classical vs window-based"} {
		if !strings.Contains(tex, needle) {
			t.Errorf("LaTeX output missing %q", needle)
		}
	}
	if len(rep.Table2) == 0 || len(rep.Table3) == 0 || len(rep.Table4) == 0 ||
		len(rep.Fig4Bars) == 0 || len(rep.Fig4Curves) == 0 {
		t.Errorf("analyzer lost tables: %d/%d/%d t2/t3/t4 rows, %d bars, %d curves",
			len(rep.Table2), len(rep.Table3), len(rep.Table4), len(rep.Fig4Bars), len(rep.Fig4Curves))
	}
}

func TestAnalyzeRejectsCorruptCSV(t *testing.T) {
	dir, _ := runTestGrid(t)
	run := filepath.Join(dir, "run")
	p := filepath.Join(run, Table1CSV)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Break the TDV = seeds × n identity on the first data row.
	lines := strings.Split(string(data), "\n")
	f := strings.Split(lines[1], ",")
	f[4] = "999999"
	lines[1] = strings.Join(f, ",")
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(run, benchprofile.ScaleCI); err == nil {
		t.Fatal("Analyze accepted a Table 1 row violating TDV = seeds × n")
	}
}

func TestDiffSelfClean(t *testing.T) {
	_, snap := runTestGrid(t)
	regs, err := Diff(snap, snap, DefaultTolerance())
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-diff found regressions: %v", regs)
	}
}

func TestDiffInjectedRegression(t *testing.T) {
	_, snap := runTestGrid(t)

	// A changed deterministic counter is a regression regardless of wall
	// tolerance — even with wall comparison disabled.
	bad := *snap
	bad.Encode = append([]EncodeCell(nil), snap.Encode...)
	bad.Encode[0].Seeds++
	bad.Encode[0].TDV = bad.Encode[0].Seeds * (snap.Encode[0].TDV / snap.Encode[0].Seeds)
	bad.Encode[0].TSL = bad.Encode[0].Seeds * bad.Encode[0].L
	regs, err := Diff(snap, &bad, Tolerance{})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(regs) == 0 {
		t.Fatal("Diff missed an injected seed-count change")
	}
	for _, r := range regs {
		if !r.Exact {
			t.Errorf("counter regression reported as non-exact: %v", r)
		}
	}

	// A missing cell is a regression.
	shrunk := *snap
	shrunk.ATPG = snap.ATPG[1:]
	shrunk.Grid.Circuits = shrunk.Grid.Circuits[:1] // keep Validate out of it; Diff does not validate
	regs, err = Diff(snap, &shrunk, Tolerance{})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(regs) == 0 {
		t.Fatal("Diff missed a dropped ATPG cell")
	}

	// A wall-clock blow-up past the factor is a regression only when wall
	// comparison is enabled.
	slow := *snap
	slow.ATPG = append([]ATPGCell(nil), snap.ATPG...)
	slow.ATPG[0].WallNS = snap.ATPG[0].WallNS*100 + int64(1e12)
	if regs, err = Diff(snap, &slow, Tolerance{WallFactor: 1.5}); err != nil || len(regs) == 0 {
		t.Fatalf("Diff(wall on) = %v, %v; want the injected slowdown", regs, err)
	}
	if regs, err = Diff(snap, &slow, Tolerance{}); err != nil || len(regs) != 0 {
		t.Fatalf("Diff(wall off) = %v, %v; want clean", regs, err)
	}
}

func TestDiffScaleMismatch(t *testing.T) {
	_, snap := runTestGrid(t)
	other := *snap
	other.Scale = "paper"
	if _, err := Diff(snap, &other, Tolerance{}); err == nil {
		t.Fatal("Diff compared snapshots of different scales")
	}
}

func TestLoadGridDefaultsAndValidation(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "experiments.json")

	// Minimal file: everything defaulted from scale.
	if err := os.WriteFile(p, []byte(`{"scale":"ci"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGrid(p)
	if err != nil {
		t.Fatalf("LoadGrid: %v", err)
	}
	def := DefaultGrid(benchprofile.ScaleCI)
	if !reflect.DeepEqual(g, def) {
		t.Errorf("defaulted grid %+v, want %+v", g, def)
	}

	for name, body := range map[string]string{
		"bad scale":     `{"scale":"huge"}`,
		"bad circuit":   `{"circuits":["c17"]}`,
		"bad backtrace": `{"backtraces":["magic"]}`,
		"bad L":         `{"window_lengths":[0]}`,
		"bad schema":    `{"schema_version":99}`,
	} {
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadGrid(p); err == nil {
			t.Errorf("LoadGrid accepted %s: %s", name, body)
		}
	}
}

func TestSnapshotValidateRejectsBrokenIdentities(t *testing.T) {
	_, snap := runTestGrid(t)
	bad := *snap
	bad.Encode = append([]EncodeCell(nil), snap.Encode...)
	bad.Encode[0].TSL = bad.Encode[0].TSL + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted TSL ≠ seeds × L")
	}
	bad = *snap
	bad.ATPG = append([]ATPGCell(nil), snap.ATPG...)
	bad.ATPG[0].Coverage = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted coverage > 1")
	}
	bad = *snap
	bad.Encode = snap.Encode[1:]
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a cell count that does not match the grid")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, RunOptions{Grid: testGrid(), Dir: filepath.Join(t.TempDir(), "run")})
	if err == nil {
		t.Fatal("Run ignored a pre-cancelled context")
	}
}
