package benchrun

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/experiments"
	"repro/internal/netlist"
)

// RunOptions configures one harness run.
type RunOptions struct {
	// Grid is the (already filled) experiment grid to run.
	Grid Grid
	// Dir is the run directory; Run creates it (and parents) and writes the
	// per-cell CSVs, the paper-table CSVs and run.log into it.
	Dir string
	// SnapshotPath, when non-empty, is where the BENCH_<stamp>.json
	// snapshot is written (normally the repository root).
	SnapshotPath string
	// Stamp tags the run; empty means the current UTC time
	// (20060102T150405Z).
	Stamp string
	// Log receives human-readable progress lines (nil = discard).
	Log io.Writer
}

// runState carries one run's accumulating snapshot and log sinks.
type runState struct {
	snap *Snapshot
	log  io.Writer // tee of RunOptions.Log and <dir>/run.log
}

func (r *runState) logf(format string, args ...any) {
	fmt.Fprintf(r.log, format+"\n", args...)
}

// Run executes the grid and produces the run directory plus the snapshot.
// Cells execute in deterministic order — workers axis outer, repeats next,
// then circuits in grid order — inside one experiments.Session per
// (workers, repeat), so the session's artefact caches are exercised the
// same way every run. The first session additionally regenerates the
// paper's Tables 1–4 and Fig. 4 and writes them as CSVs for the analyzer.
// The context cancels the run between (and, via the session, inside)
// cells.
func Run(ctx context.Context, opt RunOptions) (*Snapshot, error) {
	g := opt.Grid
	if err := g.fill(); err != nil {
		return nil, fmt.Errorf("benchrun: %w", err)
	}
	stamp := opt.Stamp
	if stamp == "" {
		stamp = time.Now().UTC().Format("20060102T150405Z")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	logFile, err := os.Create(filepath.Join(opt.Dir, "run.log"))
	if err != nil {
		return nil, err
	}
	defer logFile.Close()
	sink := opt.Log
	if sink == nil {
		sink = io.Discard
	}
	st := &runState{
		snap: &Snapshot{
			SchemaVersion: SnapshotSchemaVersion,
			Stamp:         stamp,
			Scale:         g.Scale,
			GoVersion:     runtime.Version(),
			Host:          hostInfo(),
			Grid:          g,
		},
		log: io.MultiWriter(sink, logFile),
	}
	st.logf("run %s: scale=%s circuits=%v Ls=%v backtraces=%v lanewords=%v workers=%v repeats=%d",
		stamp, g.Scale, g.Circuits, g.WindowLengths, g.Backtraces, g.LaneWords, g.Workers, g.Repeats)

	t0 := time.Now()
	first := true
	for _, w := range g.Workers {
		for rep := 0; rep < g.Repeats; rep++ {
			if err := runSession(ctx, st, g, opt.Dir, w, rep, first); err != nil {
				return nil, err
			}
			first = false
		}
	}
	st.snap.TotalWallNS = int64(time.Since(t0))
	st.logf("run %s: done in %v", stamp, time.Duration(st.snap.TotalWallNS))

	if err := writeCellCSVs(opt.Dir, st.snap); err != nil {
		return nil, err
	}
	if opt.SnapshotPath != "" {
		if err := st.snap.WriteFile(opt.SnapshotPath); err != nil {
			return nil, err
		}
		st.logf("snapshot: %s", opt.SnapshotPath)
	} else if err := st.snap.Validate(); err != nil {
		return nil, err
	}
	return st.snap, nil
}

// runSession runs one (workers, repeat) slice of the grid in a fresh
// session: every encode cell, every ATPG cell, and — for the first session
// only — the paper tables.
func runSession(ctx context.Context, st *runState, g Grid, dir string, workers, repeat int, tables bool) error {
	sess := experiments.NewSession(g.BenchScale())
	sess.Workers = workers
	sess.Ctx = ctx

	for _, circuit := range g.Circuits {
		for _, L := range g.WindowLengths {
			t0 := time.Now()
			enc, err := sess.EncodingCtx(ctx, circuit, L)
			if err != nil {
				return err
			}
			c := EncodeCell{
				Circuit: circuit, L: L, Workers: workers, Repeat: repeat,
				Seeds: len(enc.Seeds), TDV: enc.TDV(), TSL: enc.TSL(),
				Checks: enc.ChecksPerformed, WallNS: int64(time.Since(t0)),
			}
			st.snap.Encode = append(st.snap.Encode, c)
			st.logf("%s: seeds=%d tdv=%d tsl=%d checks=%d wall=%v",
				c.Key(), c.Seeds, c.TDV, c.TSL, c.Checks, time.Duration(c.WallNS))
		}
	}

	for _, circuit := range g.Circuits {
		core, err := atpgCore(circuit, g)
		if err != nil {
			return err
		}
		for _, bt := range g.Backtraces {
			strat, _ := atpg.ParseBacktrace(bt)
			for _, lw := range g.LaneWords {
				t0 := time.Now()
				u, res, err := sess.ATPGOptsCtx(ctx, core, atpg.Options{
					FaultDrop:      true,
					FillSeed:       1,
					BacktrackLimit: g.ATPG.BacktrackLimit,
					Backtrace:      strat,
					LaneWords:      lw,
				})
				if err != nil {
					return err
				}
				c := ATPGCell{
					Circuit: circuit, Backtrace: bt, LaneWords: lw, Workers: workers, Repeat: repeat,
					Faults: len(u.Faults), Detected: res.Detected, Untestable: res.Untestable,
					Aborted: res.Aborted, Backtracks: res.Backtracks,
					Cubes: res.Cubes.Len(), Coverage: res.Coverage,
					WallNS: int64(time.Since(t0)),
				}
				st.snap.ATPG = append(st.snap.ATPG, c)
				st.logf("%s: faults=%d detected=%d untestable=%d aborted=%d backtracks=%d coverage=%.4f wall=%v",
					c.Key(), c.Faults, c.Detected, c.Untestable, c.Aborted, c.Backtracks, c.Coverage, time.Duration(c.WallNS))
			}
		}
	}

	if tables {
		if err := runTables(st, sess, dir); err != nil {
			return err
		}
	}

	stats := sess.Stats()
	builds := stats.SetBuilds + stats.EncodingBuilds + stats.IndexBuilds + stats.TableBuilds
	sc := SessionCell{
		Workers: workers, Repeat: repeat, Tables: tables,
		SetBuilds: stats.SetBuilds, EncodingBuilds: stats.EncodingBuilds,
		IndexBuilds: stats.IndexBuilds, TableBuilds: stats.TableBuilds,
		Hits: stats.Hits, Evictions: stats.Evictions,
		SetBuildNS: stats.SetBuildNS, EncodingBuildNS: stats.EncodingBuildNS,
		IndexBuildNS: stats.IndexBuildNS, TableBuildNS: stats.TableBuildNS,
	}
	if total := builds + stats.Hits; total > 0 {
		sc.HitRate = float64(stats.Hits) / float64(total)
	}
	st.snap.Sessions = append(st.snap.Sessions, sc)
	st.logf("%s: builds=%d hits=%d hit_rate=%.3f", sc.Key(), builds, sc.Hits, sc.HitRate)
	return nil
}

// atpgCore generates the deterministic gate-level core a circuit's ATPG
// cells run on, seeded from the circuit's benchprofile seed so every run
// of the same grid ATPGs the same netlist.
func atpgCore(circuit string, g Grid) (*netlist.Netlist, error) {
	p, err := benchprofile.ByName(circuit, g.BenchScale())
	if err != nil {
		return nil, err
	}
	return netlist.Random(netlist.RandomConfig{
		Inputs:  g.ATPG.Inputs,
		Outputs: g.ATPG.Outputs,
		Gates:   g.ATPG.Gates,
		MaxFan:  g.ATPG.MaxFan,
		Seed:    p.Seed,
	})
}

// runTables regenerates the paper's Tables 1–4 and Fig. 4 in the given
// session and writes them as CSVs into the run directory (the analyzer
// renders Markdown and LaTeX from these).
func runTables(st *runState, sess *experiments.Session, dir string) error {
	t0 := time.Now()
	t1, err := sess.Table1()
	if err != nil {
		return err
	}
	t2, err := sess.Table2()
	if err != nil {
		return err
	}
	t3, err := sess.Table3()
	if err != nil {
		return err
	}
	t4, err := sess.Table4()
	if err != nil {
		return err
	}
	bars, curves, err := sess.Fig4()
	if err != nil {
		return err
	}
	st.logf("tables: regenerated Tables 1-4 and Fig. 4 in %v", time.Since(t0))
	return writeTableCSVs(dir, t1, t2, t3, t4, bars, curves)
}
