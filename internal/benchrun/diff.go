package benchrun

import (
	"fmt"
	"strings"
)

// Tolerance tunes what Diff counts as a regression. Counters are always
// compared exactly — the pipeline's determinism contract makes any
// difference a real behaviour change — so Tolerance only governs the
// wall-clock fields.
type Tolerance struct {
	// WallFactor is the allowed relative slowdown of a wall-clock metric:
	// new > old × WallFactor is a regression. ≤ 0 disables wall-clock
	// comparison entirely (the right setting when the two snapshots come
	// from different machines, e.g. a laptop-produced reference diffed in
	// CI).
	WallFactor float64
	// MinWallNS ignores wall-clock metrics whose old value is below this
	// floor, so timer noise on sub-millisecond cells cannot trip the
	// factor check.
	MinWallNS int64
}

// DefaultTolerance is Diff's stock setting: counters exact, wall clock
// allowed to slow down 1.5× on cells that previously took ≥ 50ms.
func DefaultTolerance() Tolerance {
	return Tolerance{WallFactor: 1.5, MinWallNS: 50_000_000}
}

// Regression is one metric that moved the wrong way between snapshots.
type Regression struct {
	// Key names the cell ("encode s9234 L=1 workers=1 repeat=0").
	Key string
	// Metric names the field within the cell.
	Metric string
	// Old and New are the compared values (0/1 for booleans).
	Old, New float64
	// Exact reports whether this was an exact-compare counter (any change
	// flags) rather than a thresholded wall-clock metric.
	Exact bool
}

// String renders the regression as one human-readable line.
func (r Regression) String() string {
	if r.Exact {
		return fmt.Sprintf("%s: %s changed %v -> %v (deterministic counter; exact match required)",
			r.Key, r.Metric, r.Old, r.New)
	}
	return fmt.Sprintf("%s: %s regressed %v -> %v", r.Key, r.Metric, r.Old, r.New)
}

// Diff compares a new snapshot against an older reference and returns
// every regression: a deterministic counter that changed at all, a
// wall-clock metric that slowed past the tolerance, or a reference cell
// missing from the new snapshot. Cells present only in the new snapshot
// (a grown grid) are not regressions. An error is returned when the
// snapshots are not comparable at all (schema or scale mismatch).
func Diff(old, new *Snapshot, tol Tolerance) ([]Regression, error) {
	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("benchrun: schema_version %d vs %d: not comparable", old.SchemaVersion, new.SchemaVersion)
	}
	if old.Scale != new.Scale {
		return nil, fmt.Errorf("benchrun: scale %q vs %q: not comparable", old.Scale, new.Scale)
	}
	var regs []Regression
	exact := func(key, metric string, o, n float64) {
		if o != n {
			regs = append(regs, Regression{Key: key, Metric: metric, Old: o, New: n, Exact: true})
		}
	}
	wall := func(key, metric string, o, n int64) {
		if tol.WallFactor > 0 && o >= tol.MinWallNS && float64(n) > float64(o)*tol.WallFactor {
			regs = append(regs, Regression{Key: key, Metric: metric, Old: float64(o), New: float64(n)})
		}
	}

	newEnc := make(map[string]EncodeCell, len(new.Encode))
	for _, c := range new.Encode {
		newEnc[c.Key()] = c
	}
	for _, o := range old.Encode {
		n, ok := newEnc[o.Key()]
		if !ok {
			regs = append(regs, Regression{Key: o.Key(), Metric: "cell", Old: 1, New: 0, Exact: true})
			continue
		}
		exact(o.Key(), "seeds", float64(o.Seeds), float64(n.Seeds))
		exact(o.Key(), "tdv", float64(o.TDV), float64(n.TDV))
		exact(o.Key(), "tsl", float64(o.TSL), float64(n.TSL))
		exact(o.Key(), "checks", float64(o.Checks), float64(n.Checks))
		wall(o.Key(), "wall_ns", o.WallNS, n.WallNS)
	}

	newATPG := make(map[string]ATPGCell, len(new.ATPG))
	for _, c := range new.ATPG {
		newATPG[c.Key()] = c
	}
	for _, o := range old.ATPG {
		n, ok := newATPG[o.Key()]
		if !ok {
			regs = append(regs, Regression{Key: o.Key(), Metric: "cell", Old: 1, New: 0, Exact: true})
			continue
		}
		exact(o.Key(), "faults", float64(o.Faults), float64(n.Faults))
		exact(o.Key(), "detected", float64(o.Detected), float64(n.Detected))
		exact(o.Key(), "untestable", float64(o.Untestable), float64(n.Untestable))
		exact(o.Key(), "aborted", float64(o.Aborted), float64(n.Aborted))
		exact(o.Key(), "backtracks", float64(o.Backtracks), float64(n.Backtracks))
		exact(o.Key(), "cubes", float64(o.Cubes), float64(n.Cubes))
		exact(o.Key(), "coverage", o.Coverage, n.Coverage)
		wall(o.Key(), "wall_ns", o.WallNS, n.WallNS)
	}

	newSess := make(map[string]SessionCell, len(new.Sessions))
	for _, c := range new.Sessions {
		newSess[c.Key()] = c
	}
	for _, o := range old.Sessions {
		n, ok := newSess[o.Key()]
		if !ok {
			regs = append(regs, Regression{Key: o.Key(), Metric: "cell", Old: 1, New: 0, Exact: true})
			continue
		}
		if o.Tables != n.Tables {
			// The table sweep moved to a different session; its request
			// counters are incomparable, so skip this cell.
			continue
		}
		exact(o.Key(), "set_builds", float64(o.SetBuilds), float64(n.SetBuilds))
		exact(o.Key(), "encoding_builds", float64(o.EncodingBuilds), float64(n.EncodingBuilds))
		exact(o.Key(), "index_builds", float64(o.IndexBuilds), float64(n.IndexBuilds))
		exact(o.Key(), "table_builds", float64(o.TableBuilds), float64(n.TableBuilds))
		exact(o.Key(), "hits", float64(o.Hits), float64(n.Hits))
		exact(o.Key(), "evictions", float64(o.Evictions), float64(n.Evictions))
		wall(o.Key(), "set_build_ns", o.SetBuildNS, n.SetBuildNS)
		wall(o.Key(), "encoding_build_ns", o.EncodingBuildNS, n.EncodingBuildNS)
		wall(o.Key(), "index_build_ns", o.IndexBuildNS, n.IndexBuildNS)
		wall(o.Key(), "table_build_ns", o.TableBuildNS, n.TableBuildNS)
	}

	wall("run", "total_wall_ns", old.TotalWallNS, new.TotalWallNS)
	return regs, nil
}

// DiffReport renders regressions as a human-readable block, one line per
// regression, empty string when clean.
func DiffReport(regs []Regression) string {
	if len(regs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d regression(s):\n", len(regs))
	for _, r := range regs {
		b.WriteString("  " + r.String() + "\n")
	}
	return b.String()
}
