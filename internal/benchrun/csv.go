package benchrun

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/litdata"
)

// CSV filenames of a run directory. The cell CSVs mirror the snapshot;
// the table CSVs carry the regenerated paper tables for the analyzer.
const (
	// EncodeCSV holds the encode cells.
	EncodeCSV = "cells_encode.csv"
	// ATPGCSV holds the ATPG cells.
	ATPGCSV = "cells_atpg.csv"
	// SessionCSV holds the per-session cache statistics.
	SessionCSV = "session.csv"
	// Table1CSV..Fig4CSV hold the paper tables, one row per cell.
	Table1CSV = "table1.csv"
	Table2CSV = "table2.csv"
	Table3CSV = "table3.csv"
	Table4CSV = "table4.csv"
	Fig4CSV   = "fig4.csv"
)

// writeCSV writes a header plus rows to path.
func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	w.Write(header) //nolint:errcheck // surfaced by Flush/Error below
	for _, r := range rows {
		w.Write(r) //nolint:errcheck
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readCSV reads path and checks the header matches exactly.
func readCSV(path string, wantHeader []string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	recs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("benchrun: %s: empty", path)
	}
	if len(recs[0]) != len(wantHeader) {
		return nil, fmt.Errorf("benchrun: %s: header %v, want %v", path, recs[0], wantHeader)
	}
	for i, h := range wantHeader {
		if recs[0][i] != h {
			return nil, fmt.Errorf("benchrun: %s: header %v, want %v", path, recs[0], wantHeader)
		}
	}
	return recs[1:], nil
}

func itoa(v int) string     { return strconv.Itoa(v) }
func i64toa(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var (
	encodeHeader  = []string{"circuit", "L", "workers", "repeat", "seeds", "tdv", "tsl", "checks", "wall_ns"}
	atpgHeader    = []string{"circuit", "backtrace", "lane_words", "workers", "repeat", "faults", "detected", "untestable", "aborted", "backtracks", "cubes", "coverage", "wall_ns"}
	sessionHeader = []string{"workers", "repeat", "tables", "set_builds", "encoding_builds", "index_builds", "table_builds", "hits", "hit_rate", "evictions", "set_build_ns", "encoding_build_ns", "index_build_ns", "table_build_ns"}
	table1Header  = []string{"circuit", "lfsr_n", "L", "seeds", "tdv", "tsl"}
	table2Header  = []string{"circuit", "L", "orig", "prop", "impr", "best_s", "best_k"}
	table3Header  = []string{"circuit", "prop_tdv", "prop_tsl", "lit11_tdv", "lit11_tsl", "lit22_tdv", "lit22_tsl", "impr11", "impr22"}
	fig4Header    = []string{"kind", "label", "k", "impr"}
)

// table4Header depends on the literature's compression-method list, so it
// is assembled once: circuit, one TDV column per published method, then
// the measured classical/proposed columns.
func table4Header() []string {
	h := []string{"circuit"}
	for _, m := range litdata.Table4Compression {
		h = append(h, "comp_"+m.Name)
	}
	return append(h, "classical_tdv", "classical_tsl", "prop_tdv", "prop_tsl")
}

// writeCellCSVs writes the snapshot's cells as the run directory's CSVs.
func writeCellCSVs(dir string, s *Snapshot) error {
	enc := make([][]string, len(s.Encode))
	for i, c := range s.Encode {
		enc[i] = []string{c.Circuit, itoa(c.L), itoa(c.Workers), itoa(c.Repeat),
			itoa(c.Seeds), itoa(c.TDV), itoa(c.TSL), i64toa(c.Checks), i64toa(c.WallNS)}
	}
	if err := writeCSV(filepath.Join(dir, EncodeCSV), encodeHeader, enc); err != nil {
		return err
	}
	at := make([][]string, len(s.ATPG))
	for i, c := range s.ATPG {
		at[i] = []string{c.Circuit, c.Backtrace, itoa(c.LaneWords), itoa(c.Workers), itoa(c.Repeat),
			itoa(c.Faults), itoa(c.Detected), itoa(c.Untestable), itoa(c.Aborted),
			itoa(c.Backtracks), itoa(c.Cubes), ftoa(c.Coverage), i64toa(c.WallNS)}
	}
	if err := writeCSV(filepath.Join(dir, ATPGCSV), atpgHeader, at); err != nil {
		return err
	}
	se := make([][]string, len(s.Sessions))
	for i, c := range s.Sessions {
		se[i] = []string{itoa(c.Workers), itoa(c.Repeat), strconv.FormatBool(c.Tables),
			i64toa(c.SetBuilds), i64toa(c.EncodingBuilds), i64toa(c.IndexBuilds), i64toa(c.TableBuilds),
			i64toa(c.Hits), ftoa(c.HitRate), i64toa(c.Evictions),
			i64toa(c.SetBuildNS), i64toa(c.EncodingBuildNS), i64toa(c.IndexBuildNS), i64toa(c.TableBuildNS)}
	}
	return writeCSV(filepath.Join(dir, SessionCSV), sessionHeader, se)
}

// writeTableCSVs writes the regenerated paper tables into the run
// directory, one CSV row per table cell, in the tables' own row order.
func writeTableCSVs(dir string, t1 []experiments.Table1Row, t2 []experiments.Table2Row,
	t3 []experiments.Table3Row, t4 []experiments.Table4Row, bars, curves []experiments.Fig4Series) error {
	var r1 [][]string
	for _, row := range t1 {
		for _, c := range row.Cells {
			r1 = append(r1, []string{row.Circuit, itoa(row.LFSRSize), itoa(c.L), itoa(c.Seeds), itoa(c.TDV), itoa(c.TSL)})
		}
	}
	if err := writeCSV(filepath.Join(dir, Table1CSV), table1Header, r1); err != nil {
		return err
	}
	var r2 [][]string
	for _, row := range t2 {
		for _, c := range row.Cells {
			r2 = append(r2, []string{row.Circuit, itoa(c.L), itoa(c.Orig), itoa(c.Prop), ftoa(c.Impr), itoa(c.BestS), itoa(c.BestK)})
		}
	}
	if err := writeCSV(filepath.Join(dir, Table2CSV), table2Header, r2); err != nil {
		return err
	}
	var r3 [][]string
	for _, row := range t3 {
		r3 = append(r3, []string{row.Circuit, itoa(row.PropTDV), itoa(row.PropTSL),
			itoa(row.Lit11.TDV), itoa(row.Lit11.TSL), itoa(row.Lit22.TDV), itoa(row.Lit22.TSL),
			ftoa(row.Impr11), ftoa(row.Impr22)})
	}
	if err := writeCSV(filepath.Join(dir, Table3CSV), table3Header, r3); err != nil {
		return err
	}
	var r4 [][]string
	for _, row := range t4 {
		rec := []string{row.Circuit}
		for _, m := range litdata.Table4Compression {
			rec = append(rec, itoa(row.Compression[m.Name]))
		}
		rec = append(rec, itoa(row.ClassicalTDV), itoa(row.ClassicalTSL), itoa(row.PropTDV), itoa(row.PropTSL))
		r4 = append(r4, rec)
	}
	if err := writeCSV(filepath.Join(dir, Table4CSV), table4Header(), r4); err != nil {
		return err
	}
	var rf [][]string
	for _, s := range bars {
		for _, p := range s.Points {
			rf = append(rf, []string{"bar", s.Label, itoa(p.K), ftoa(p.Impr)})
		}
	}
	for _, s := range curves {
		for _, p := range s.Points {
			rf = append(rf, []string{"curve", s.Label, itoa(p.K), ftoa(p.Impr)})
		}
	}
	return writeCSV(filepath.Join(dir, Fig4CSV), fig4Header, rf)
}
