package benchrun

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// SnapshotSchemaVersion is the BENCH_*.json format this build emits and
// diffs. Bump it on any field change; Diff refuses mismatched versions so
// a stale binary never silently compares incompatible snapshots.
// Version 2 added the ATPG lane-width axis (ATPGCell.LaneWords).
const SnapshotSchemaVersion = 2

// Snapshot is the machine-readable record of one harness run — the
// BENCH_<stamp>.json file at the repository root. Field order in the
// emitted JSON is deterministic (encoding/json marshals struct fields in
// declaration order), so snapshots diff cleanly as text too.
type Snapshot struct {
	// SchemaVersion pins the snapshot format (SnapshotSchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// Stamp is the run's timestamp tag (UTC, 20060102T150405Z) — also the
	// run directory name.
	Stamp string `json:"stamp"`
	// Scale is the workload scale the grid ran at ("ci" or "paper").
	Scale string `json:"scale"`
	// GoVersion and Host record the measurement environment; wall-clock
	// fields are only comparable within a similar environment (Diff
	// thresholds or skips them accordingly).
	GoVersion string `json:"go_version"`
	// Host describes the hardware the run measured wall clock on.
	Host HostInfo `json:"host"`
	// Grid is the expanded grid that produced the cells below.
	Grid Grid `json:"grid"`
	// Encode holds one cell per circuit × L × workers × repeat.
	Encode []EncodeCell `json:"encode_cells"`
	// ATPG holds one cell per circuit × backtrace × lane words × workers ×
	// repeat.
	ATPG []ATPGCell `json:"atpg_cells"`
	// Sessions holds per-(workers, repeat) artefact-cache statistics.
	Sessions []SessionCell `json:"session_stats"`
	// TotalWallNS is the whole run's wall time, tables included.
	TotalWallNS int64 `json:"total_wall_ns"`
}

// HostInfo captures where wall-clock numbers were measured.
type HostInfo struct {
	// OS is GOOS at run time.
	OS   string `json:"os"`
	Arch string `json:"arch"` // GOARCH at run time
	// CPUs is runtime.NumCPU at run time.
	CPUs int `json:"cpus"`
}

// EncodeCell is one measured encoding: the window-based reseeding of one
// circuit's cube set at window length L. Every field except WallNS is a
// deterministic counter.
type EncodeCell struct {
	// Circuit keys the cell together with L, Workers and Repeat.
	Circuit string `json:"circuit"`
	L       int    `json:"L"`       // window length
	Workers int    `json:"workers"` // session worker budget (0 = all CPUs)
	Repeat  int    `json:"repeat"`  // repeat index within the grid
	// Seeds is the encoding's seed count; TDV and TSL follow the paper's
	// test-data-volume and test-sequence-length definitions.
	Seeds int `json:"seeds"`
	TDV   int `json:"tdv"` // seeds × LFSR size
	TSL   int `json:"tsl"` // seeds × L
	// Checks is encoder.Encoding.ChecksPerformed — the linear-system
	// consistency checks the candidate scan performed.
	Checks int64 `json:"checks"`
	// WallNS is the cold-build wall time of this cell within its session.
	WallNS int64 `json:"wall_ns"`
}

// ATPGCell is one measured PODEM + fault-drop run over a circuit's
// deterministic random core. Every field except WallNS is a deterministic
// counter.
type ATPGCell struct {
	// Circuit keys the cell together with Backtrace, LaneWords, Workers
	// and Repeat.
	Circuit   string `json:"circuit"`
	Backtrace string `json:"backtrace"` // PODEM strategy: "scoap" or "multi"
	// LaneWords is the fault-simulator lane width (64-bit words) the cell
	// ran with — 64×N patterns per sweep. All counters are bit-identical
	// across widths; only WallNS responds to this axis.
	LaneWords int `json:"lane_words"`
	Workers   int `json:"workers"` // session worker budget (0 = all CPUs)
	Repeat    int `json:"repeat"`  // repeat index within the grid
	// Faults is the collapsed fault-universe size of the core.
	Faults int `json:"faults"`
	// Detected counts faults covered by the generated cubes; Untestable
	// and Aborted complete the partition of processed faults.
	Detected   int `json:"detected"`
	Untestable int `json:"untestable"` // proven redundant
	Aborted    int `json:"aborted"`    // abandoned at the backtrack limit
	// Backtracks totals committed PODEM backtracks (the decision-quality
	// metric the backtrace strategies compete on).
	Backtracks int `json:"backtracks"`
	// Cubes is the emitted test-cube count.
	Cubes int `json:"cubes"`
	// Coverage is detected / (total − untestable).
	Coverage float64 `json:"coverage"`
	// WallNS is the cell's wall time.
	WallNS int64 `json:"wall_ns"`
}

// SessionCell snapshots one session's artefact-cache activity
// (experiments.SessionStats) after its slice of the grid — builds and
// hits are deterministic counters; the *NS fields are wall clock.
type SessionCell struct {
	// Workers keys the session together with Repeat.
	Workers int `json:"workers"`
	Repeat  int `json:"repeat"` // repeat index within the grid
	// Tables reports whether this session also ran the paper-table sweep
	// (only the grid's first session does; its request counters include
	// that extra load).
	Tables bool `json:"tables"`
	// SetBuilds counts cube-set computations; the sibling counters do the
	// same for the other artefact kinds.
	SetBuilds      int64 `json:"set_builds"`
	EncodingBuilds int64 `json:"encoding_builds"` // window-encoding builds
	IndexBuilds    int64 `json:"index_builds"`    // embedding-index builds
	TableBuilds    int64 `json:"table_builds"`    // ATPG shared-table builds
	// Hits counts requests served from the memo caches.
	Hits    int64   `json:"hits"`
	HitRate float64 `json:"hit_rate"` // hits / (hits + builds)
	// Evictions counts LRU drops (0 in harness runs; caches unbounded).
	Evictions int64 `json:"evictions"`
	// SetBuildNS is the wall time spent building cube sets; the sibling
	// fields time the other artefact kinds (see SessionStats for the
	// transitive-inclusion caveat).
	SetBuildNS      int64 `json:"set_build_ns"`
	EncodingBuildNS int64 `json:"encoding_build_ns"` // encoding build wall time
	IndexBuildNS    int64 `json:"index_build_ns"`    // index build wall time
	TableBuildNS    int64 `json:"table_build_ns"`    // table build wall time
}

// Key identifies an encode cell across snapshots.
func (c EncodeCell) Key() string {
	return fmt.Sprintf("encode %s L=%d workers=%d repeat=%d", c.Circuit, c.L, c.Workers, c.Repeat)
}

// Key identifies an ATPG cell across snapshots.
func (c ATPGCell) Key() string {
	return fmt.Sprintf("atpg %s backtrace=%s lanewords=%d workers=%d repeat=%d",
		c.Circuit, c.Backtrace, c.LaneWords, c.Workers, c.Repeat)
}

// Key identifies a session-stats cell across snapshots.
func (c SessionCell) Key() string {
	return fmt.Sprintf("session workers=%d repeat=%d", c.Workers, c.Repeat)
}

// Validate checks a snapshot's internal consistency: schema version,
// non-empty cell sets matching the grid's expansion, and value ranges,
// including the structural identities TDV = seeds×n being a multiple of
// seeds and TSL = seeds×L.
func (s *Snapshot) Validate() error {
	if s.SchemaVersion != SnapshotSchemaVersion {
		return fmt.Errorf("benchrun: snapshot schema_version %d, this build reads %d", s.SchemaVersion, SnapshotSchemaVersion)
	}
	if s.Stamp == "" {
		return fmt.Errorf("benchrun: snapshot has no stamp")
	}
	g := s.Grid
	wantEnc := len(g.Circuits) * len(g.WindowLengths) * len(g.Workers) * g.Repeats
	if len(s.Encode) != wantEnc {
		return fmt.Errorf("benchrun: %d encode cells, grid expands to %d", len(s.Encode), wantEnc)
	}
	wantATPG := len(g.Circuits) * len(g.Backtraces) * len(g.LaneWords) * len(g.Workers) * g.Repeats
	if len(s.ATPG) != wantATPG {
		return fmt.Errorf("benchrun: %d atpg cells, grid expands to %d", len(s.ATPG), wantATPG)
	}
	if want := len(g.Workers) * g.Repeats; len(s.Sessions) != want {
		return fmt.Errorf("benchrun: %d session cells, grid expands to %d", len(s.Sessions), want)
	}
	for _, c := range s.Encode {
		if c.Seeds <= 0 || c.TDV <= 0 || c.TSL <= 0 || c.Checks <= 0 || c.WallNS < 0 {
			return fmt.Errorf("benchrun: %s: non-positive metric (%+v)", c.Key(), c)
		}
		if c.TDV%c.Seeds != 0 {
			return fmt.Errorf("benchrun: %s: TDV %d is not a multiple of seeds %d", c.Key(), c.TDV, c.Seeds)
		}
		if c.TSL != c.Seeds*c.L {
			return fmt.Errorf("benchrun: %s: TSL %d ≠ seeds %d × L %d", c.Key(), c.TSL, c.Seeds, c.L)
		}
	}
	for _, c := range s.ATPG {
		if c.Faults <= 0 || c.Detected < 0 || c.Untestable < 0 || c.Aborted < 0 ||
			c.Backtracks < 0 || c.Cubes < 0 || c.WallNS < 0 {
			return fmt.Errorf("benchrun: %s: negative metric (%+v)", c.Key(), c)
		}
		if c.Detected+c.Untestable+c.Aborted > c.Faults {
			return fmt.Errorf("benchrun: %s: processed %d faults of %d", c.Key(),
				c.Detected+c.Untestable+c.Aborted, c.Faults)
		}
		if c.Coverage < 0 || c.Coverage > 1 {
			return fmt.Errorf("benchrun: %s: coverage %f out of [0,1]", c.Key(), c.Coverage)
		}
	}
	for _, c := range s.Sessions {
		if c.HitRate < 0 || c.HitRate > 1 {
			return fmt.Errorf("benchrun: %s: hit rate %f out of [0,1]", c.Key(), c.HitRate)
		}
	}
	return nil
}

// WriteFile validates the snapshot and writes it as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshot loads and validates a BENCH_*.json file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// SnapshotName returns the repo-root snapshot filename for a stamp.
func SnapshotName(stamp string) string {
	return "BENCH_" + strings.ReplaceAll(stamp, string(os.PathSeparator), "_") + ".json"
}

// hostInfo snapshots the current environment.
func hostInfo() HostInfo {
	return HostInfo{OS: runtime.GOOS, Arch: runtime.GOARCH, CPUs: runtime.NumCPU()}
}
