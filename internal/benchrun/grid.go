// Package benchrun is the reproducible paper-run harness: it expands an
// experiments.json grid (circuits × window lengths × backtrace strategies
// × lane widths × workers × repeats) into measured cells driven through
// experiments.Session, writes a timestamped run directory with per-cell
// CSVs and logs, snapshots every machine-checkable number into a
// schema-versioned BENCH_<stamp>.json at the repository root, renders the
// paper's Tables 1–4 and Fig. 4 as Markdown and LaTeX from the CSVs, and
// diffs two snapshots with per-metric tolerances so CI fails on perf
// regressions. cmd/stateskip-bench is the thin CLI over this package.
//
// Determinism contract: every counter in a snapshot (seeds, TDV, TSL,
// ChecksPerformed, backtracks, aborts, coverage, cache builds/hits) is
// bit-identical across machines and worker counts — the pipeline packages
// guarantee it — so Diff compares them exactly; only wall-clock fields
// are hardware-dependent and thresholded (or skipped) instead.
package benchrun

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/experiments"
)

// GridSchemaVersion is the experiments.json format this package reads.
const GridSchemaVersion = 1

// Grid is the experiment grid of one harness run, the JSON shape of
// experiments.json. The encode axis is Circuits × WindowLengths; the ATPG
// axis is Circuits × Backtraces × LaneWords; both expand further over
// Workers × Repeats. A zero field falls back to the scale's default (see
// DefaultGrid).
type Grid struct {
	// SchemaVersion pins the grid format; LoadGrid rejects others.
	SchemaVersion int `json:"schema_version"`
	// Scale selects the workload sizes: "ci" or "paper".
	Scale string `json:"scale"`
	// Circuits are benchprofile names (empty = all five ISCAS'89 cores).
	Circuits []string `json:"circuits"`
	// WindowLengths are the encode-cell L values (empty = the scale's
	// Table 1 sweep, so grid cells and the paper tables share encodings).
	WindowLengths []int `json:"window_lengths"`
	// Backtraces are the ATPG-cell PODEM strategies: "scoap", "multi".
	Backtraces []string `json:"backtraces"`
	// Workers are the session worker budgets to run the whole grid under
	// (1 = strictly serial; 0 = all CPUs). Counters are bit-identical
	// across entries; only wall clock differs.
	Workers []int `json:"workers"`
	// LaneWords are the fault-simulator lane widths (in 64-bit words) the
	// ATPG cells sweep: each cell runs with 64×N-pattern sweeps. Counters
	// are bit-identical across entries; only wall clock differs. Empty = [1].
	LaneWords []int `json:"lane_words"`
	// Repeats is the number of independent repeats (fresh sessions), for
	// wall-clock spread. Counters are identical across repeats.
	Repeats int `json:"repeats"`
	// ATPG sizes the deterministic random core each circuit's ATPG cell
	// runs on.
	ATPG ATPGGrid `json:"atpg"`
}

// ATPGGrid sizes the gate-level cores of the ATPG cells. Each circuit's
// core is generated deterministically from its benchprofile seed, so two
// runs of the same grid ATPG the same netlists.
type ATPGGrid struct {
	// Inputs sizes the generated core's primary inputs.
	Inputs  int `json:"inputs"`
	Outputs int `json:"outputs"` // primary outputs of the core
	Gates   int `json:"gates"`   // gate count of the core
	// MaxFan bounds gate fan-in (≥ 2).
	MaxFan int `json:"max_fan"`
	// BacktrackLimit is the PODEM abort threshold (the paper-trajectory
	// numbers in PERFORMANCE.md use 20).
	BacktrackLimit int `json:"backtrack_limit"`
}

// DefaultGrid returns the built-in grid for a scale: every circuit, the
// scale's Table 1 window sweep, both backtrace strategies, and a CI-sized
// (or paper-sized) random core per circuit. The CI default is what the CI
// bench-smoke step runs; the paper default adds a workers=0 column and
// three repeats so a multi-core machine records the parallel speedup.
func DefaultGrid(scale benchprofile.Scale) Grid {
	g := Grid{
		SchemaVersion: GridSchemaVersion,
		Scale:         scale.String(),
		Circuits:      benchprofile.Names(),
		WindowLengths: experiments.ParamsFor(scale).Table1Ls,
		Backtraces:    []string{"scoap", "multi"},
		Workers:       []int{1},
		LaneWords:     []int{1},
		Repeats:       1,
		ATPG:          ATPGGrid{Inputs: 80, Outputs: 48, Gates: 260, MaxFan: 3, BacktrackLimit: 20},
	}
	if scale == benchprofile.ScalePaper {
		g.Workers = []int{1, 0}
		g.Repeats = 3
		g.ATPG = ATPGGrid{Inputs: 400, Outputs: 160, Gates: 4000, MaxFan: 3, BacktrackLimit: 20}
	}
	return g
}

// LoadGrid reads and validates an experiments.json grid file, filling
// defaulted fields from the grid's own scale.
func LoadGrid(path string) (Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, err
	}
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return Grid{}, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	if err := g.fill(); err != nil {
		return Grid{}, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	return g, nil
}

// BenchScale resolves the grid's scale string.
func (g *Grid) BenchScale() benchprofile.Scale {
	if g.Scale == "paper" {
		return benchprofile.ScalePaper
	}
	return benchprofile.ScaleCI
}

// fill validates the grid and substitutes scale defaults for empty axes.
func (g *Grid) fill() error {
	if g.SchemaVersion == 0 {
		g.SchemaVersion = GridSchemaVersion
	}
	if g.SchemaVersion != GridSchemaVersion {
		return fmt.Errorf("grid schema_version %d, this build reads %d", g.SchemaVersion, GridSchemaVersion)
	}
	switch g.Scale {
	case "":
		g.Scale = "ci"
	case "ci", "paper":
	default:
		return fmt.Errorf("unknown scale %q (want ci or paper)", g.Scale)
	}
	def := DefaultGrid(g.BenchScale())
	if len(g.Circuits) == 0 {
		g.Circuits = def.Circuits
	}
	for _, c := range g.Circuits {
		if _, err := benchprofile.ByName(c, g.BenchScale()); err != nil {
			return err
		}
	}
	if len(g.WindowLengths) == 0 {
		g.WindowLengths = def.WindowLengths
	}
	for _, L := range g.WindowLengths {
		if L < 1 {
			return fmt.Errorf("window length %d must be ≥ 1", L)
		}
	}
	if len(g.Backtraces) == 0 {
		g.Backtraces = def.Backtraces
	}
	for _, b := range g.Backtraces {
		if _, ok := atpg.ParseBacktrace(b); !ok {
			return fmt.Errorf("unknown backtrace %q (want scoap or multi)", b)
		}
	}
	if len(g.Workers) == 0 {
		g.Workers = def.Workers
	}
	if len(g.LaneWords) == 0 {
		g.LaneWords = def.LaneWords
	}
	for _, lw := range g.LaneWords {
		if lw < 1 || lw > 64 {
			return fmt.Errorf("lane words %d out of range (want 1..64)", lw)
		}
	}
	if g.Repeats <= 0 {
		g.Repeats = def.Repeats
	}
	if g.ATPG.Inputs == 0 && g.ATPG.Outputs == 0 && g.ATPG.Gates == 0 {
		g.ATPG = def.ATPG
	}
	if g.ATPG.Inputs < 2 || g.ATPG.Outputs < 1 || g.ATPG.Gates < 1 {
		return fmt.Errorf("atpg core needs ≥2 inputs, ≥1 output, ≥1 gate (got %+v)", g.ATPG)
	}
	if g.ATPG.MaxFan < 2 {
		g.ATPG.MaxFan = 3
	}
	if g.ATPG.BacktrackLimit < 0 {
		return fmt.Errorf("negative backtrack limit %d", g.ATPG.BacktrackLimit)
	}
	return nil
}
