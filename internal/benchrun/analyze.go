package benchrun

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/benchprofile"
	"repro/internal/experiments"
	"repro/internal/litdata"
)

// Report is the analyzer's output over one run directory: the validated
// cell counts plus the paper tables reconstructed from the CSVs, ready to
// render as Markdown or LaTeX.
type Report struct {
	// Scale the tables were regenerated at (from the grid/snapshot).
	Scale benchprofile.Scale
	// EncodeCells, ATPGCells and SessionCells count the validated rows of
	// the cell CSVs.
	EncodeCells, ATPGCells, SessionCells int
	// Table1 holds the reconstructed Table 1 rows; the sibling fields
	// hold the other reconstructed tables and both Fig. 4 sweeps.
	Table1     []experiments.Table1Row
	Table2     []experiments.Table2Row  // reconstructed Table 2
	Table3     []experiments.Table3Row  // reconstructed Table 3
	Table4     []experiments.Table4Row  // reconstructed Table 4
	Fig4Bars   []experiments.Fig4Series // Fig. 4 segment-size sweep
	Fig4Curves []experiments.Fig4Series // Fig. 4 window-length sweep
}

// Analyze validates a run directory's CSVs and reconstructs the paper
// tables from them. Validation checks the structural identities the
// pipeline guarantees — TDV = seeds × n, TSL = seeds × L, coverage within
// [0,1] — so a harness bug that desynchronizes the CSVs from the engines
// fails loudly here rather than producing plausible-looking tables.
func Analyze(dir string, scale benchprofile.Scale) (*Report, error) {
	rep := &Report{Scale: scale}
	if err := rep.loadCells(dir); err != nil {
		return nil, err
	}
	if err := rep.loadTable1(dir); err != nil {
		return nil, err
	}
	if err := rep.loadTable2(dir); err != nil {
		return nil, err
	}
	if err := rep.loadTable3(dir); err != nil {
		return nil, err
	}
	if err := rep.loadTable4(dir); err != nil {
		return nil, err
	}
	if err := rep.loadFig4(dir); err != nil {
		return nil, err
	}
	return rep, nil
}

// Markdown renders the reconstructed tables with the same renderers
// cmd/stateskip uses, so the analyzer's output is comparable line for line
// with a live experiments run.
func (r *Report) Markdown() string {
	sess := experiments.NewSession(r.Scale)
	var b strings.Builder
	fmt.Fprintf(&b, "# Paper tables (%s scale, %d encode / %d atpg cells)\n\n",
		r.Scale, r.EncodeCells, r.ATPGCells)
	b.WriteString(sess.Table1Markdown(r.Table1))
	b.WriteString("\n")
	b.WriteString(sess.Table2Markdown(r.Table2))
	b.WriteString("\n")
	b.WriteString(sess.Table3Markdown(r.Table3))
	b.WriteString("\n")
	b.WriteString(sess.Table4Markdown(r.Table4))
	b.WriteString("\n")
	b.WriteString(sess.Fig4Markdown(r.Fig4Bars, r.Fig4Curves))
	return b.String()
}

// atoiField parses one CSV integer field with row context in the error.
func atoiField(path string, row int, field, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("benchrun: %s row %d: %s %q: %w", path, row, field, v, err)
	}
	return n, nil
}

func atofField(path string, row int, field, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("benchrun: %s row %d: %s %q: %w", path, row, field, v, err)
	}
	return f, nil
}

// loadCells validates the three cell CSVs and records their row counts.
func (r *Report) loadCells(dir string) error {
	p := filepath.Join(dir, EncodeCSV)
	rows, err := readCSV(p, encodeHeader)
	if err != nil {
		return err
	}
	for i, rec := range rows {
		L, err := atoiField(p, i, "L", rec[1])
		if err != nil {
			return err
		}
		seeds, err := atoiField(p, i, "seeds", rec[4])
		if err != nil {
			return err
		}
		tdv, err := atoiField(p, i, "tdv", rec[5])
		if err != nil {
			return err
		}
		tsl, err := atoiField(p, i, "tsl", rec[6])
		if err != nil {
			return err
		}
		if seeds <= 0 || tdv%seeds != 0 || tsl != seeds*L {
			return fmt.Errorf("benchrun: %s row %d (%s L=%d): seeds=%d tdv=%d tsl=%d violate TDV=seeds×n, TSL=seeds×L",
				p, i, rec[0], L, seeds, tdv, tsl)
		}
	}
	r.EncodeCells = len(rows)

	p = filepath.Join(dir, ATPGCSV)
	rows, err = readCSV(p, atpgHeader)
	if err != nil {
		return err
	}
	for i, rec := range rows {
		cov, err := atofField(p, i, "coverage", rec[11])
		if err != nil {
			return err
		}
		if cov < 0 || cov > 1 {
			return fmt.Errorf("benchrun: %s row %d (%s): coverage %v out of [0,1]", p, i, rec[0], cov)
		}
	}
	r.ATPGCells = len(rows)

	rows, err = readCSV(filepath.Join(dir, SessionCSV), sessionHeader)
	if err != nil {
		return err
	}
	r.SessionCells = len(rows)
	return nil
}

// loadTable1 reconstructs Table 1 rows, grouping consecutive cells of one
// circuit, and cross-checks each cell against the same identities the
// encoder guarantees (TDV = seeds × n with the row's own LFSR size).
func (r *Report) loadTable1(dir string) error {
	p := filepath.Join(dir, Table1CSV)
	rows, err := readCSV(p, table1Header)
	if err != nil {
		return err
	}
	for i, rec := range rows {
		n, err := atoiField(p, i, "lfsr_n", rec[1])
		if err != nil {
			return err
		}
		L, err := atoiField(p, i, "L", rec[2])
		if err != nil {
			return err
		}
		seeds, err := atoiField(p, i, "seeds", rec[3])
		if err != nil {
			return err
		}
		tdv, err := atoiField(p, i, "tdv", rec[4])
		if err != nil {
			return err
		}
		tsl, err := atoiField(p, i, "tsl", rec[5])
		if err != nil {
			return err
		}
		if tdv != seeds*n || tsl != seeds*L {
			return fmt.Errorf("benchrun: %s row %d (%s): tdv=%d tsl=%d violate seeds=%d × n=%d / L=%d",
				p, i, rec[0], tdv, tsl, seeds, n, L)
		}
		if len(r.Table1) == 0 || r.Table1[len(r.Table1)-1].Circuit != rec[0] {
			r.Table1 = append(r.Table1, experiments.Table1Row{Circuit: rec[0], LFSRSize: n})
		}
		last := &r.Table1[len(r.Table1)-1]
		last.Cells = append(last.Cells, experiments.Table1Cell{L: L, Seeds: seeds, TDV: tdv, TSL: tsl})
	}
	return nil
}

// loadTable2 reconstructs Table 2 rows.
func (r *Report) loadTable2(dir string) error {
	p := filepath.Join(dir, Table2CSV)
	rows, err := readCSV(p, table2Header)
	if err != nil {
		return err
	}
	for i, rec := range rows {
		var c experiments.Table2Cell
		var err error
		if c.L, err = atoiField(p, i, "L", rec[1]); err != nil {
			return err
		}
		if c.Orig, err = atoiField(p, i, "orig", rec[2]); err != nil {
			return err
		}
		if c.Prop, err = atoiField(p, i, "prop", rec[3]); err != nil {
			return err
		}
		if c.Impr, err = atofField(p, i, "impr", rec[4]); err != nil {
			return err
		}
		if c.BestS, err = atoiField(p, i, "best_s", rec[5]); err != nil {
			return err
		}
		if c.BestK, err = atoiField(p, i, "best_k", rec[6]); err != nil {
			return err
		}
		if c.Prop > c.Orig {
			return fmt.Errorf("benchrun: %s row %d (%s): proposed TSL %d exceeds original %d", p, i, rec[0], c.Prop, c.Orig)
		}
		if len(r.Table2) == 0 || r.Table2[len(r.Table2)-1].Circuit != rec[0] {
			r.Table2 = append(r.Table2, experiments.Table2Row{Circuit: rec[0]})
		}
		last := &r.Table2[len(r.Table2)-1]
		last.Cells = append(last.Cells, c)
	}
	return nil
}

// loadTable3 reconstructs Table 3 rows.
func (r *Report) loadTable3(dir string) error {
	p := filepath.Join(dir, Table3CSV)
	rows, err := readCSV(p, table3Header)
	if err != nil {
		return err
	}
	for i, rec := range rows {
		row := experiments.Table3Row{Circuit: rec[0]}
		var err error
		if row.PropTDV, err = atoiField(p, i, "prop_tdv", rec[1]); err != nil {
			return err
		}
		if row.PropTSL, err = atoiField(p, i, "prop_tsl", rec[2]); err != nil {
			return err
		}
		if row.Lit11.TDV, err = atoiField(p, i, "lit11_tdv", rec[3]); err != nil {
			return err
		}
		if row.Lit11.TSL, err = atoiField(p, i, "lit11_tsl", rec[4]); err != nil {
			return err
		}
		if row.Lit22.TDV, err = atoiField(p, i, "lit22_tdv", rec[5]); err != nil {
			return err
		}
		if row.Lit22.TSL, err = atoiField(p, i, "lit22_tsl", rec[6]); err != nil {
			return err
		}
		if row.Impr11, err = atofField(p, i, "impr11", rec[7]); err != nil {
			return err
		}
		if row.Impr22, err = atofField(p, i, "impr22", rec[8]); err != nil {
			return err
		}
		r.Table3 = append(r.Table3, row)
	}
	return nil
}

// loadTable4 reconstructs Table 4 rows, mapping the comp_* columns back
// onto the literature's method names.
func (r *Report) loadTable4(dir string) error {
	p := filepath.Join(dir, Table4CSV)
	rows, err := readCSV(p, table4Header())
	if err != nil {
		return err
	}
	nComp := len(litdata.Table4Compression)
	for i, rec := range rows {
		row := experiments.Table4Row{Circuit: rec[0], Compression: make(map[string]int)}
		for j, m := range litdata.Table4Compression {
			v, err := atoiField(p, i, "comp_"+m.Name, rec[1+j])
			if err != nil {
				return err
			}
			row.Compression[m.Name] = v
		}
		var errp error
		if row.ClassicalTDV, errp = atoiField(p, i, "classical_tdv", rec[1+nComp]); errp != nil {
			return errp
		}
		if row.ClassicalTSL, errp = atoiField(p, i, "classical_tsl", rec[2+nComp]); errp != nil {
			return errp
		}
		if row.PropTDV, errp = atoiField(p, i, "prop_tdv", rec[3+nComp]); errp != nil {
			return errp
		}
		if row.PropTSL, errp = atoiField(p, i, "prop_tsl", rec[4+nComp]); errp != nil {
			return errp
		}
		r.Table4 = append(r.Table4, row)
	}
	return nil
}

// loadFig4 reconstructs both Fig. 4 sweeps, grouping consecutive points of
// one labelled series.
func (r *Report) loadFig4(dir string) error {
	p := filepath.Join(dir, Fig4CSV)
	rows, err := readCSV(p, fig4Header)
	if err != nil {
		return err
	}
	for i, rec := range rows {
		k, err := atoiField(p, i, "k", rec[2])
		if err != nil {
			return err
		}
		impr, err := atofField(p, i, "impr", rec[3])
		if err != nil {
			return err
		}
		var list *[]experiments.Fig4Series
		switch rec[0] {
		case "bar":
			list = &r.Fig4Bars
		case "curve":
			list = &r.Fig4Curves
		default:
			return fmt.Errorf("benchrun: %s row %d: unknown kind %q", p, i, rec[0])
		}
		if len(*list) == 0 || (*list)[len(*list)-1].Label != rec[1] {
			*list = append(*list, experiments.Fig4Series{Label: rec[1]})
		}
		last := &(*list)[len(*list)-1]
		last.Points = append(last.Points, experiments.Fig4Point{K: k, Impr: impr})
	}
	return nil
}
