// Package scan models the scan-chain geometry of a core under test: m scan
// chains of length r, fed in parallel by the m outputs of a phase shifter,
// one bit per chain per clock.
//
// A test cube addresses scan cells by a flat index in [0, Width); this
// package fixes the mapping between that flat index and the (chain, shift
// cycle) pair at which the decompressor produces the bit. The paper assumes
// 32 balanced chains for every circuit; widths that do not divide evenly are
// padded — pad positions exist in the hardware schedule but never appear in
// cubes, so they are always don't-care.
package scan

import "fmt"

// Geometry describes a scan configuration.
type Geometry struct {
	Chains int // m, number of scan chains
	Length int // r, cells per chain (after padding)
	Width  int // usable cube width (≤ Chains*Length)
}

// New returns the geometry for a core with the given cube width and chain
// count: chain length r = ceil(width/chains).
func New(width, chains int) (Geometry, error) {
	if width <= 0 || chains <= 0 {
		return Geometry{}, fmt.Errorf("scan: width %d and chains %d must be positive", width, chains)
	}
	r := (width + chains - 1) / chains
	return Geometry{Chains: chains, Length: r, Width: width}, nil
}

// PaddedWidth returns Chains*Length, the number of scheduled bit slots per
// test vector.
func (g Geometry) PaddedWidth() int { return g.Chains * g.Length }

// CyclesPerVector returns the number of shift clocks needed to load one
// vector: the chain length r.
func (g Geometry) CyclesPerVector() int { return g.Length }

// Cell maps a flat cube position to its (chain, position-in-chain) pair.
// Cells are distributed chain-major: position p lives in chain p / Length at
// depth p % Length.
func (g Geometry) Cell(pos int) (chain, depth int) {
	if pos < 0 || pos >= g.PaddedWidth() {
		panic(fmt.Sprintf("scan: position %d out of range [0,%d)", pos, g.PaddedWidth()))
	}
	return pos / g.Length, pos % g.Length
}

// Pos is the inverse of Cell.
func (g Geometry) Pos(chain, depth int) int {
	if chain < 0 || chain >= g.Chains || depth < 0 || depth >= g.Length {
		panic(fmt.Sprintf("scan: cell (%d,%d) out of range %dx%d", chain, depth, g.Chains, g.Length))
	}
	return chain*g.Length + depth
}

// ShiftCycle returns the clock (within one vector's r-cycle load) at which
// the bit for the given depth enters its chain. Bits shift in deepest-first:
// the bit destined for depth d enters at cycle r-1-d, so after r clocks it
// has shifted to depth d.
func (g Geometry) ShiftCycle(depth int) int {
	if depth < 0 || depth >= g.Length {
		panic(fmt.Sprintf("scan: depth %d out of range [0,%d)", depth, g.Length))
	}
	return g.Length - 1 - depth
}

// DepthAt is the inverse of ShiftCycle.
func (g Geometry) DepthAt(cycle int) int { return g.Length - 1 - cycle }

// CellAtCycle returns the flat position whose bit chain ch receives at the
// given shift clock, or -1 if that slot is padding (beyond Width).
func (g Geometry) CellAtCycle(ch, cycle int) int {
	p := g.Pos(ch, g.DepthAt(cycle))
	if p >= g.Width {
		return -1
	}
	return p
}
