package scan

import "testing"

func TestNewGeometry(t *testing.T) {
	g, err := New(700, 32)
	if err != nil {
		t.Fatal(err)
	}
	if g.Length != 22 { // ceil(700/32)
		t.Errorf("length = %d, want 22", g.Length)
	}
	if g.PaddedWidth() != 704 {
		t.Errorf("padded = %d", g.PaddedWidth())
	}
	if g.CyclesPerVector() != 22 {
		t.Errorf("cycles = %d", g.CyclesPerVector())
	}
	if _, err := New(0, 32); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("zero chains accepted")
	}
}

func TestCellPosRoundTrip(t *testing.T) {
	g, _ := New(100, 8) // r = 13
	for pos := 0; pos < g.PaddedWidth(); pos++ {
		ch, d := g.Cell(pos)
		if ch < 0 || ch >= 8 || d < 0 || d >= 13 {
			t.Fatalf("pos %d: cell (%d,%d) out of range", pos, ch, d)
		}
		if g.Pos(ch, d) != pos {
			t.Fatalf("pos %d: round trip gave %d", pos, g.Pos(ch, d))
		}
	}
}

func TestShiftCycleInverse(t *testing.T) {
	g, _ := New(64, 4) // r = 16
	for d := 0; d < g.Length; d++ {
		if g.DepthAt(g.ShiftCycle(d)) != d {
			t.Errorf("depth %d: ShiftCycle/DepthAt not inverse", d)
		}
	}
	// Deepest cell's bit enters first.
	if g.ShiftCycle(g.Length-1) != 0 {
		t.Error("deepest bit should enter at cycle 0")
	}
	if g.ShiftCycle(0) != g.Length-1 {
		t.Error("shallowest bit should enter last")
	}
}

func TestCellAtCyclePadding(t *testing.T) {
	g, _ := New(10, 4) // r = 3, padded 12: positions 10, 11 are padding
	seen := make(map[int]bool)
	pads := 0
	for cyc := 0; cyc < g.Length; cyc++ {
		for ch := 0; ch < g.Chains; ch++ {
			pos := g.CellAtCycle(ch, cyc)
			if pos < 0 {
				pads++
				continue
			}
			if pos >= g.Width {
				t.Fatalf("cycle %d chain %d: position %d beyond width", cyc, ch, pos)
			}
			if seen[pos] {
				t.Fatalf("position %d scheduled twice", pos)
			}
			seen[pos] = true
		}
	}
	if len(seen) != g.Width {
		t.Errorf("schedule covers %d of %d positions", len(seen), g.Width)
	}
	if pads != g.PaddedWidth()-g.Width {
		t.Errorf("%d padding slots, want %d", pads, g.PaddedWidth()-g.Width)
	}
}

func TestPanicsOnBadIndices(t *testing.T) {
	g, _ := New(16, 4)
	for _, f := range []func(){
		func() { g.Cell(-1) },
		func() { g.Cell(g.PaddedWidth()) },
		func() { g.Pos(4, 0) },
		func() { g.Pos(0, g.Length) },
		func() { g.ShiftCycle(g.Length) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
