// Package lru provides a small generic least-recently-used map used to
// size-bound the repository's shared artefact caches (experiments.Session
// memo maps, encoder.TablesCache, the server's core cache) under sustained
// multi-tenant load. It is deliberately not goroutine-safe: every caller
// already owns a mutex guarding its cache state, and keeping the locking
// outside avoids double synchronization.
package lru

// Cache is a map with LRU eviction beyond a fixed capacity. The zero
// value is not usable; construct with New. A max of 0 or less means
// unbounded (no eviction), so existing unbounded callers can share the
// code path.
type Cache[K comparable, V any] struct {
	max int
	m   map[K]*node[K, V]
	// head is most recently used, tail least. Sentinel-free doubly linked
	// list; nil head means empty.
	head, tail *node[K, V]
	evictions  int
}

type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// New returns a cache bounded to max entries (max <= 0 = unbounded).
func New[K comparable, V any](max int) *Cache[K, V] {
	return &Cache[K, V]{max: max, m: make(map[K]*node[K, V])}
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int { return len(c.m) }

// SetMax rebounds the cache to max entries (max <= 0 = unbounded),
// evicting least-recently-used entries immediately if the new bound is
// already exceeded.
func (c *Cache[K, V]) SetMax(max int) {
	c.max = max
	for c.max > 0 && len(c.m) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
}

// Evictions returns how many entries have been evicted over the cache's
// lifetime (not counting explicit Removes).
func (c *Cache[K, V]) Evictions() int { return c.evictions }

// Get returns the value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	n, ok := c.m[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// Add inserts or replaces k, marks it most recently used, and evicts the
// least recently used entries while the cache exceeds its capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	if n, ok := c.m[k]; ok {
		n.val = v
		c.moveToFront(n)
		return
	}
	n := &node[K, V]{key: k, val: v}
	c.m[k] = n
	c.pushFront(n)
	for c.max > 0 && len(c.m) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
}

// Remove deletes k if present.
func (c *Cache[K, V]) Remove(k K) {
	if n, ok := c.m[k]; ok {
		c.unlink(n)
		delete(c.m, k)
	}
}

func (c *Cache[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
