package lru

import "testing"

func TestBasicAddGet(t *testing.T) {
	c := New[string, int](0)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Add("a", 3)
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("replace: Get(a) = %d, want 3", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", c.Len())
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 1000; i++ {
		c.Add(i, i)
	}
	if c.Len() != 1000 || c.Evictions() != 0 {
		t.Fatalf("Len=%d Evictions=%d, want 1000, 0", c.Len(), c.Evictions())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int, int](3)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3)
	c.Get(1) // 2 is now LRU
	c.Add(4, 4)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d should survive", k)
		}
	}
	if c.Len() != 3 || c.Evictions() != 1 {
		t.Fatalf("Len=%d Evictions=%d, want 3, 1", c.Len(), c.Evictions())
	}
}

func TestAddBumpsRecency(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(1, 10) // re-add bumps 1; 2 becomes LRU
	c.Add(3, 3)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v; want 10, true", v, ok)
	}
}

func TestRemove(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Remove(1)
	c.Remove(99) // no-op
	if _, ok := c.Get(1); ok || c.Len() != 1 {
		t.Fatalf("Remove failed: Len=%d", c.Len())
	}
	// List stays consistent after removing head/tail.
	c.Add(3, 3)
	c.Add(4, 4)
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
}

func TestSingleEntryBound(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 10; i++ {
		c.Add(i, i)
		if c.Len() != 1 {
			t.Fatalf("Len=%d at i=%d, want 1", c.Len(), i)
		}
	}
	if _, ok := c.Get(9); !ok {
		t.Fatal("most recent entry must survive")
	}
}
