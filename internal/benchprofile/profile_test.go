package benchprofile

import (
	"testing"
)

func TestAllProfilesPresent(t *testing.T) {
	for _, scale := range []Scale{ScaleCI, ScalePaper} {
		ps := All(scale)
		if len(ps) != 5 {
			t.Fatalf("%v: %d profiles", scale, len(ps))
		}
		names := Names()
		for i, p := range ps {
			if p.Name != names[i] {
				t.Errorf("%v profile %d is %q, want %q", scale, i, p.Name, names[i])
			}
		}
	}
	if _, err := ByName("s0000", ScaleCI); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGenerateRespectsProfile(t *testing.T) {
	for _, scale := range []Scale{ScaleCI, ScalePaper} {
		for _, p := range All(scale) {
			set := p.Generate()
			if set.Width != p.Width {
				t.Errorf("%v/%s: width %d", scale, p.Name, set.Width)
			}
			if set.Len() != p.NumCubes {
				t.Errorf("%v/%s: %d cubes, want %d", scale, p.Name, set.Len(), p.NumCubes)
			}
			if got := set.MaxSpecified(); got != p.SMax {
				t.Errorf("%v/%s: s_max %d, want %d", scale, p.Name, got, p.SMax)
			}
			if set.MaxSpecified() >= p.LFSRSize {
				t.Errorf("%v/%s: s_max %d not below LFSR size %d (Koenemann margin)", scale, p.Name, set.MaxSpecified(), p.LFSRSize)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("s13207", ScaleCI)
	a, b := p.Generate(), p.Generate()
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic cube count")
	}
	for i := range a.Cubes {
		if a.Cubes[i].String() != b.Cubes[i].String() {
			t.Fatalf("cube %d differs between runs", i)
		}
	}
}

func TestClusteringCreatesConflicts(t *testing.T) {
	// The calibrated profiles must produce conflicting cube pairs — that is
	// what limits classical (L=1) seed packing in the paper's Table 1.
	p, _ := ByName("s13207", ScalePaper)
	set := p.Generate()
	conflicts := 0
	pairs := 0
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			pairs++
			if !set.Cubes[i].CompatibleWith(set.Cubes[j]) {
				conflicts++
			}
		}
	}
	if conflicts == 0 {
		t.Error("no conflicting pairs in the first 60 cubes; clustering broken")
	}
	if float64(conflicts)/float64(pairs) < 0.3 {
		t.Errorf("conflict rate %.2f too low for the calibrated profile", float64(conflicts)/float64(pairs))
	}
}

func TestHistogramString(t *testing.T) {
	p, _ := ByName("s9234", ScaleCI)
	set := p.Generate()
	if SpecHistogramString(set) == "" {
		t.Error("empty histogram")
	}
}

func TestScaleString(t *testing.T) {
	if ScaleCI.String() != "ci" || ScalePaper.String() != "paper" {
		t.Error("scale names wrong")
	}
}
