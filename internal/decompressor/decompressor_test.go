package decompressor

import (
	"testing"

	"repro/internal/benchprofile"
	"repro/internal/encoder"
	"repro/internal/stateskip"
)

func buildSchedule(t testing.TB, name string, numCubes, L, S, k int) *Schedule {
	t.Helper()
	p, err := benchprofile.ByName(name, benchprofile.ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	if numCubes > 0 {
		p.NumCubes = numCubes
	}
	set := p.Generate()
	enc, _, err := encoder.EncodeAuto(p.LFSRSize, p.Width, p.Chains, L, set)
	if err != nil {
		t.Fatal(err)
	}
	red, err := stateskip.Reduce(enc, stateskip.DefaultOptions(S, k))
	if err != nil {
		t.Fatal(err)
	}
	return NewSchedule(red)
}

// TestRunMatchesAnalyticalAccounting pins the cycle-accurate simulator to
// the closed-form clock/vector accounting in stateskip.Reduction.
func TestRunMatchesAnalyticalAccounting(t *testing.T) {
	for _, tc := range []struct{ S, k int }{{5, 8}, {4, 3}, {7, 24}, {2, 5}} {
		sched := buildSchedule(t, "s13207", 40, 20, tc.S, tc.k)
		res, err := sched.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(res.Vectors), sched.Red.TSL(); got != want {
			t.Errorf("S=%d k=%d: simulator applied %d vectors, accounting says %d", tc.S, tc.k, got, want)
		}
		wantClocks := 0
		for si := range sched.Red.Useful {
			wantClocks += sched.Red.SeedClocks(si)
		}
		if res.Clocks != wantClocks {
			t.Errorf("S=%d k=%d: simulator %d clocks, accounting %d", tc.S, tc.k, res.Clocks, wantClocks)
		}
		if res.SeedsLoaded != len(sched.Red.Enc.Seeds) {
			t.Errorf("loaded %d seeds, want %d", res.SeedsLoaded, len(sched.Red.Enc.Seeds))
		}
	}
}

// TestEndToEndCoverage is the full-stack check: synthetic test set →
// encoder → reduction → architecture simulation → every cube applied.
func TestEndToEndCoverage(t *testing.T) {
	for _, name := range []string{"s9234", "s13207", "s38584"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sched := buildSchedule(t, name, 45, 16, 4, 8)
			res, err := sched.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.VerifyCoverage(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSkipClocksCounted(t *testing.T) {
	sched := buildSchedule(t, "s13207", 40, 20, 5, 8)
	res, err := sched.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SkipClocks == 0 {
		t.Error("no skip clocks recorded; useless segments not skipped")
	}
	if res.SkipClocks >= res.Clocks {
		t.Error("skip clocks exceed total clocks")
	}
}

func TestScheduleGroupsPartitionSeeds(t *testing.T) {
	sched := buildSchedule(t, "s15850", 40, 16, 4, 6)
	total := 0
	for g, pop := range sched.Groups {
		if g < 1 {
			t.Errorf("group %d exists despite first-segment pinning", g)
		}
		total += pop
	}
	if total != len(sched.Red.Enc.Seeds) {
		t.Errorf("groups cover %d seeds, want %d", total, len(sched.Red.Enc.Seeds))
	}
	// Group order must deliver seeds in ascending group index.
	prev := -1
	for _, si := range sched.SeedOrder {
		u := sched.Red.UsefulCount(si)
		if u < prev {
			t.Fatal("seed order not grouped ascending")
		}
		prev = u
	}
}

func TestCostBreakdownSane(t *testing.T) {
	sched := buildSchedule(t, "s13207", 40, 20, 5, 8)
	c := sched.Cost()
	if c.LFSR <= 0 || c.SkipCircuit <= 0 || c.PhaseShifter <= 0 || c.Counters <= 0 || c.ModeSelect <= 0 {
		t.Errorf("non-positive cost component: %+v", c)
	}
	if c.TotalGE() != c.SharedGE()+c.ModeSelect {
		t.Error("TotalGE does not decompose")
	}
	// Skip circuit grows with k (same encoding, higher speedup).
	red2, err := stateskip.Reduce(sched.Red.Enc, stateskip.DefaultOptions(5, 24))
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewSchedule(red2).Cost()
	if c2.SkipCircuit <= c.SkipCircuit {
		t.Errorf("skip circuit GE did not grow with k: k=8 %.0f vs k=24 %.0f", c.SkipCircuit, c2.SkipCircuit)
	}
}

func BenchmarkDecompressorRun(b *testing.B) {
	sched := buildSchedule(b, "s13207", 40, 20, 5, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
