// Package decompressor simulates the proposed decompression architecture of
// the paper's Fig. 3 at clock accuracy and costs it in gate equivalents.
//
// The architecture wraps the State Skip LFSR + phase shifter with six small
// counters and a combinational Mode Select unit:
//
//	Bit Counter            shift clocks within one vector (0..r-1)
//	Vector Counter         vectors within one segment (0..S-1)
//	Segment Counter        segments within one window
//	Useful Segment Counter useful segments remaining for the current seed
//	Seed Counter           seeds within the current group
//	Group Counter          seed groups (group g: seeds with g useful segments)
//
// Every time a new seed is loaded, the Useful Segment Counter is loaded from
// the Group Counter; each completed useful segment decrements it, and at
// zero the next seed is fetched — that is how windows terminate right after
// their last useful segment without storing per-seed lengths. The Mode
// Select unit decodes (segment, seed, group) and raises Mode=1 (Normal) for
// useful segments; everything else runs in State Skip mode.
//
// The simulator here executes exactly that control flow and is checked
// against stateskip.Reduction's analytical accounting and, end-to-end,
// against the cube coverage invariant.
package decompressor

import (
	"fmt"

	"repro/internal/gf2"
	"repro/internal/hwcost"
	"repro/internal/stateskip"
)

// Schedule is the per-core programming of the architecture, derived from a
// reduction: the ATE seed stream in group order and the Mode Select truth
// table.
type Schedule struct {
	Red *stateskip.Reduction
	// SeedOrder[i] is the index (into Red.Enc.Seeds) of the i-th seed the
	// ATE delivers.
	SeedOrder []int
	// UsefulOf[i][seg] is the Mode Select output for delivered seed i.
	UsefulOf [][]bool
	// Groups[g] is the number of seeds whose windows have exactly g useful
	// segments (g starts at the minimum observed count).
	Groups map[int]int
}

// NewSchedule derives the architecture programming from a reduction.
func NewSchedule(red *stateskip.Reduction) *Schedule {
	s := &Schedule{Red: red, Groups: make(map[int]int)}
	s.SeedOrder = append(s.SeedOrder, red.GroupOrder...)
	for _, si := range s.SeedOrder {
		s.UsefulOf = append(s.UsefulOf, red.Useful[si])
		s.Groups[red.UsefulCount(si)]++
	}
	return s
}

// Result summarises one simulation run.
type Result struct {
	Vectors      []gf2.Vec // every vector applied to the CUT, in order
	Clocks       int       // total shift clocks
	SkipClocks   int       // clocks spent in State Skip mode
	SeedsLoaded  int
	ModeSwitches int
}

// Run executes the full test session: for every seed in group order it
// generates segments until the Useful Segment Counter hits zero, switching
// between Normal and State Skip mode per the Mode Select table.
func (s *Schedule) Run() (*Result, error) {
	red := s.Red
	enc := red.Enc
	geo := enc.Cfg.Geo
	l, ps := enc.Cfg.LFSR, enc.Cfg.PS
	k := red.Opt.Speedup
	skip := l.SkipMatrix(uint64(k))
	res := &Result{}

	state := gf2.NewVec(l.Size())
	next := gf2.NewVec(l.Size())
	cur := gf2.NewVec(geo.Width)
	lastMode := -1

	for _, si := range s.SeedOrder {
		// Seed load from the ATE.
		state.CopyFrom(enc.Seeds[si].Value)
		res.SeedsLoaded++
		usefulLeft := red.UsefulCount(si)
		if usefulLeft == 0 {
			// A window with no useful segments is never generated; the
			// architecture immediately advances to the next seed. Only
			// possible when first-segment pinning is disabled.
			continue
		}
		for _, run := range red.Runs(si) {
			mode := 0
			if run.Useful {
				mode = 1
			}
			if mode != lastMode {
				res.ModeSwitches++
				lastMode = mode
			}
			bit := 0 // Bit Counter, reset at each mode switch
			shift := func() {
				cyc := bit % geo.Length
				for ch := 0; ch < geo.Chains; ch++ {
					pos := geo.CellAtCycle(ch, cyc)
					if pos < 0 {
						continue
					}
					var b uint8
					for _, c := range ps.Taps(ch) {
						b ^= state.Bit(c)
					}
					cur.SetBit(pos, b)
				}
				bit++
				res.Clocks++
				if bit%geo.Length == 0 {
					res.Vectors = append(res.Vectors, cur.Clone())
				}
			}
			if run.Useful {
				for c := 0; c < run.States; c++ {
					shift()
					l.StepInto(next, state)
					state, next = next, state
				}
				usefulLeft -= run.LastSeg - run.FirstSeg + 1
			} else {
				for c := 0; c < run.States/k; c++ {
					shift()
					res.SkipClocks++
					state = skip.MulVec(state)
				}
				for c := 0; c < run.States%k; c++ {
					shift()
					l.StepInto(next, state)
					state, next = next, state
				}
				if bit%geo.Length != 0 {
					// Capture the partial garbage vector before the mode switch.
					res.Vectors = append(res.Vectors, cur.Clone())
				}
			}
		}
		if usefulLeft != 0 {
			return nil, fmt.Errorf("decompressor: seed %d: useful segment counter ended at %d", si, usefulLeft)
		}
	}
	return res, nil
}

// VerifyCoverage checks that every cube of the encoding matches at least
// one applied vector — the end-to-end guarantee of the whole scheme.
func (s *Schedule) VerifyCoverage(res *Result) error {
	for ci, c := range s.Red.Enc.Set.Cubes {
		found := false
		for _, v := range res.Vectors {
			if c.Matches(v) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("decompressor: cube %d never applied", ci)
		}
	}
	return nil
}

// CostBreakdown itemises the architecture's GE cost (paper §4).
type CostBreakdown struct {
	LFSR         float64 // register cells + 2:1 muxes between the two modes
	SkipCircuit  float64 // the T^k XOR network, after CSE
	PhaseShifter float64
	Counters     float64 // the six counters of Fig. 3
	ModeSelect   float64 // per-core decode of useful segments
}

// SharedGE returns the cost of everything reusable across the cores of a
// SoC (all but Mode Select).
func (c CostBreakdown) SharedGE() float64 {
	return c.LFSR + c.SkipCircuit + c.PhaseShifter + c.Counters
}

// TotalGE includes the per-core Mode Select unit.
func (c CostBreakdown) TotalGE() float64 { return c.SharedGE() + c.ModeSelect }

// Cost computes the breakdown for one programmed core.
func (s *Schedule) Cost() CostBreakdown {
	red := s.Red
	enc := red.Enc
	n := enc.Cfg.LFSR.Size()
	geo := enc.Cfg.Geo

	var c CostBreakdown
	// LFSR: n flip-flops plus a 2:1 mux in front of every cell selecting
	// Normal vs State Skip next-state.
	c.LFSR = hwcost.Register(n) + hwcost.Mux2(n)
	// Feedback network of the characteristic polynomial plus the skip
	// matrix network, both with CSE.
	c.SkipCircuit = hwcost.CostLinear(enc.Cfg.LFSR.SkipMatrix(uint64(red.Opt.Speedup))).GE()
	c.PhaseShifter = float64(enc.Cfg.PS.XORGateCount()) * hwcost.GEXor2

	// Counters: Bit (r), Vector (S), Segment (L/S), Useful Segment (max
	// useful), Seed (max group population), Group (group count).
	maxUseful := 0
	for si := range red.Useful {
		if u := red.UsefulCount(si); u > maxUseful {
			maxUseful = u
		}
	}
	maxGroupPop := 0
	for _, pop := range s.Groups {
		if pop > maxGroupPop {
			maxGroupPop = pop
		}
	}
	c.Counters = hwcost.CounterFor(geo.Length) +
		hwcost.CounterFor(red.Opt.SegmentSize) +
		hwcost.CounterFor(red.Segs) +
		hwcost.Counter(hwcost.BitsFor(maxUseful+1)) +
		hwcost.CounterFor(maxGroupPop+1) +
		hwcost.Counter(hwcost.BitsFor(len(s.Groups)+1))

	c.ModeSelect = s.ModeSelectGE()
	return c
}

// ModeSelectGE models the per-core Mode Select unit. The paper's key
// observation (§3.3): the first segment of every seed is always useful, so
// it needs no decode term; only the useful segments beyond the first
// contribute, and decoding the counters' outputs lets terms share heavily.
// The model charges an amortised shared-decode term per extra useful
// segment plus a fixed OR/collection tree.
func (s *Schedule) ModeSelectGE() float64 {
	red := s.Red
	extra := 0
	for si := range red.Useful {
		u := red.UsefulCount(si)
		if u > 1 {
			extra += u - 1
		}
	}
	segBits := hwcost.BitsFor(red.Segs)
	// Each extra useful segment needs one (shared) AND term over the
	// decoded segment/seed lines; decoded-counter sharing amortises the
	// literals to roughly two gates per term.
	perTerm := 2.0*hwcost.GEAnd2 + 0.25*float64(segBits)
	base := 16.0 // seed-boundary logic, OR tree root, mode flop
	return base + float64(extra)*perTerm
}
