// Package netlist models gate-level combinational circuits in the ISCAS
// .bench dialect — the substrate under the ATPG flow (internal/atpg) and
// fault simulator (internal/faultsim) that stand in for Atalanta in this
// reproduction (ARCHITECTURE.md §①).
//
// A netlist is a DAG of single-output gates over named signals. Scan-based
// sequential circuits are handled the standard way: flip-flop outputs
// become pseudo primary inputs and flip-flop inputs become pseudo primary
// outputs, so the test-generation problem is purely combinational, exactly
// as Atalanta treats the ISCAS'89 circuits.
package netlist

import (
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the supported gate functions.
type GateType int

const (
	Input GateType = iota // primary (or pseudo primary) input, no fan-in
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var gateNames = map[GateType]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
}

func (g GateType) String() string {
	if s, ok := gateNames[g]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(g))
}

// Eval computes the gate function over fan-in values (each 0 or 1).
func (g GateType) Eval(in []uint8) uint8 {
	switch g {
	case Buf:
		return in[0]
	case Not:
		return in[0] ^ 1
	case And, Nand:
		v := uint8(1)
		for _, b := range in {
			v &= b
		}
		if g == Nand {
			v ^= 1
		}
		return v
	case Or, Nor:
		v := uint8(0)
		for _, b := range in {
			v |= b
		}
		if g == Nor {
			v ^= 1
		}
		return v
	case Xor, Xnor:
		v := uint8(0)
		for _, b := range in {
			v ^= b
		}
		if g == Xnor {
			v ^= 1
		}
		return v
	default:
		panic(fmt.Sprintf("netlist: Eval on %v", g))
	}
}

// EvalWord is Eval on 64 test patterns in parallel (bit-sliced).
func (g GateType) EvalWord(in []uint64) uint64 {
	switch g {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, b := range in {
			v &= b
		}
		if g == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, b := range in {
			v |= b
		}
		if g == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, b := range in {
			v ^= b
		}
		if g == Xnor {
			v = ^v
		}
		return v
	default:
		panic(fmt.Sprintf("netlist: EvalWord on %v", g))
	}
}

// EvalWords is EvalWord over multi-word pattern lanes: it computes the
// gate function across len(dst)×64 bit-sliced patterns at once, reading
// fan-in pin p's lane words from in[p] and writing the result into dst.
// Every slice must have length len(dst); dst must not alias any fan-in
// plane. The fault simulator's wide-lane engine is built on this.
func (g GateType) EvalWords(dst []uint64, in [][]uint64) {
	switch g {
	case Buf:
		copy(dst, in[0])
	case Not:
		for w, v := range in[0] {
			dst[w] = ^v
		}
	case And, Nand:
		copy(dst, in[0])
		for _, p := range in[1:] {
			for w, v := range p {
				dst[w] &= v
			}
		}
		if g == Nand {
			for w := range dst {
				dst[w] = ^dst[w]
			}
		}
	case Or, Nor:
		copy(dst, in[0])
		for _, p := range in[1:] {
			for w, v := range p {
				dst[w] |= v
			}
		}
		if g == Nor {
			for w := range dst {
				dst[w] = ^dst[w]
			}
		}
	case Xor, Xnor:
		copy(dst, in[0])
		for _, p := range in[1:] {
			for w, v := range p {
				dst[w] ^= v
			}
		}
		if g == Xnor {
			for w := range dst {
				dst[w] = ^dst[w]
			}
		}
	default:
		panic(fmt.Sprintf("netlist: EvalWords on %v", g))
	}
}

// Gate is one node of the netlist. Fanin holds gate indices.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int
}

// Netlist is a combinational circuit. Gates are stored in input order
// followed by declaration order; Levelize sorts them topologically.
//
// The derived structures (topological order, fan-out lists, levels) are
// computed lazily under a mutex, so read-only consumers — the ATPG tables
// and the fault simulator's topology — may levelize the same netlist from
// concurrent goroutines. Building the netlist (AddInput/AddGate/MarkOutput)
// is not concurrency-safe and invalidates the caches.
type Netlist struct {
	Gates   []Gate
	Inputs  []int // gate indices of primary inputs
	Outputs []int // gate indices of primary outputs
	byName  map[string]int

	mu        sync.Mutex
	order     []int   // guarded by mu; topological order (gate indices), nil until Levelize
	fanouts   [][]int // guarded by mu; per-gate fan-out lists, nil until Fanouts
	levels    []int   // guarded by mu; per-gate longest path from an input, nil until Levels
	numLevels int     // guarded by mu
}

// New returns an empty netlist.
func New() *Netlist {
	return &Netlist{byName: make(map[string]int)}
}

// AddInput declares a primary input and returns its gate index.
func (n *Netlist) AddInput(name string) (int, error) {
	if _, dup := n.byName[name]; dup {
		return 0, fmt.Errorf("netlist: duplicate signal %q", name)
	}
	idx := len(n.Gates)
	n.Gates = append(n.Gates, Gate{Name: name, Type: Input})
	n.byName[name] = idx
	n.Inputs = append(n.Inputs, idx)
	n.invalidate()
	return idx, nil
}

// invalidate drops the derived caches after a structural mutation. It
// takes the cache mutex itself (no builder holds it), so a mutation
// racing a concurrent Levelize/Fanouts/Levels reader corrupts nothing —
// the reader sees either the old caches or the cleared ones, never a
// torn mix. Interleaving builds with reads is still a logic error, but
// it now fails loudly (stale-table checks) instead of via data races.
func (n *Netlist) invalidate() {
	n.mu.Lock()
	n.order = nil
	n.fanouts = nil
	n.levels = nil
	n.numLevels = 0
	n.mu.Unlock()
}

// AddGate declares a gate driven by existing signals and returns its index.
func (n *Netlist) AddGate(name string, t GateType, fanin ...string) (int, error) {
	if _, dup := n.byName[name]; dup {
		return 0, fmt.Errorf("netlist: duplicate signal %q", name)
	}
	if t == Input {
		return 0, fmt.Errorf("netlist: use AddInput for inputs")
	}
	if len(fanin) == 0 {
		return 0, fmt.Errorf("netlist: gate %q has no fan-in", name)
	}
	if (t == Buf || t == Not) && len(fanin) != 1 {
		return 0, fmt.Errorf("netlist: %v gate %q needs exactly one fan-in", t, name)
	}
	g := Gate{Name: name, Type: t}
	for _, f := range fanin {
		fi, ok := n.byName[f]
		if !ok {
			return 0, fmt.Errorf("netlist: gate %q references unknown signal %q", name, f)
		}
		g.Fanin = append(g.Fanin, fi)
	}
	idx := len(n.Gates)
	n.Gates = append(n.Gates, g)
	n.byName[name] = idx
	n.invalidate()
	return idx, nil
}

// MarkOutput declares an existing signal as a primary output. Marking a
// signal that is already an output is a no-op, so n.Outputs never holds
// duplicates — a net can legitimately be requested twice (e.g. declared
// OUTPUT(...) in a .bench file and also feeding a DFF data input), and a
// duplicate entry would double-count the output in WriteBench, Eval and
// the structural Hash.
func (n *Netlist) MarkOutput(name string) error {
	idx, ok := n.byName[name]
	if !ok {
		return fmt.Errorf("netlist: unknown output signal %q", name)
	}
	for _, o := range n.Outputs {
		if o == idx {
			return nil
		}
	}
	n.Outputs = append(n.Outputs, idx)
	n.invalidate()
	return nil
}

// Index returns the gate index of a named signal.
func (n *Netlist) Index(name string) (int, bool) {
	i, ok := n.byName[name]
	return i, ok
}

// NumGates returns the total node count (inputs included).
func (n *Netlist) NumGates() int { return len(n.Gates) }

// Levelize computes (and caches) a topological order. It fails on
// combinational loops. The returned slice is shared and must be treated as
// read-only.
func (n *Netlist) Levelize() ([]int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.levelizeLocked()
}

// levelizeLocked computes the cached topological order; callers must
// hold n.mu (the Locked suffix is the convention the lockcheck analyzer
// trusts).
func (n *Netlist) levelizeLocked() ([]int, error) {
	if n.order != nil {
		return n.order, nil
	}
	indeg := make([]int, len(n.Gates))
	fanout := make([][]int, len(n.Gates))
	for gi, g := range n.Gates {
		indeg[gi] = len(g.Fanin)
		for _, f := range g.Fanin {
			fanout[f] = append(fanout[f], gi)
		}
	}
	queue := make([]int, 0, len(n.Gates))
	for gi, d := range indeg {
		if d == 0 {
			queue = append(queue, gi)
		}
	}
	sort.Ints(queue) // deterministic order
	order := make([]int, 0, len(n.Gates))
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, fo := range fanout[gi] {
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(order) != len(n.Gates) {
		return nil, fmt.Errorf("netlist: combinational loop detected (%d of %d gates ordered)", len(order), len(n.Gates))
	}
	n.order = order
	return order, nil
}

// Fanouts returns the (cached) per-gate fan-out lists: Fanouts()[gi] holds
// the indices of every gate that reads gi. The per-gate slices are carved
// out of one contiguous arena slab (two-pass CSR build), so the whole
// structure costs two allocations regardless of gate count — a 100k-gate
// netlist does not scatter 100k little slices across the heap. The slices
// are shared and must be treated as read-only.
func (n *Netlist) Fanouts() [][]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.fanouts == nil {
		counts := make([]int, len(n.Gates))
		total := 0
		for _, g := range n.Gates {
			for _, f := range g.Fanin {
				counts[f]++
				total++
			}
		}
		slab := make([]int, total)
		fanouts := make([][]int, len(n.Gates))
		off := 0
		for gi, c := range counts {
			// Full-capacity sub-slice: an accidental append on one gate's
			// list cannot silently overwrite its neighbour's slab region.
			fanouts[gi] = slab[off : off : off+c]
			off += c
		}
		for gi, g := range n.Gates {
			for _, f := range g.Fanin {
				fanouts[f] = append(fanouts[f], gi)
			}
		}
		n.fanouts = fanouts
	}
	return n.fanouts
}

// Levels returns the (cached) per-gate level — the longest path from any
// input, inputs at level 0 — and the total level count (max level + 1). A
// gate's level is always strictly greater than each of its fan-ins', which
// is what levelized event queues rely on. The slice is shared and must be
// treated as read-only.
func (n *Netlist) Levels() ([]int, int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.levels == nil {
		order, err := n.levelizeLocked()
		if err != nil {
			return nil, 0, err
		}
		levels := make([]int, len(n.Gates))
		numLevels := 1
		for _, gi := range order {
			for _, f := range n.Gates[gi].Fanin {
				if levels[f]+1 > levels[gi] {
					levels[gi] = levels[f] + 1
				}
			}
			if levels[gi]+1 > numLevels {
				numLevels = levels[gi] + 1
			}
		}
		n.levels = levels
		n.numLevels = numLevels
	}
	return n.levels, n.numLevels, nil
}

// Eval computes all primary outputs for a full input assignment, indexed
// like n.Inputs.
func (n *Netlist) Eval(inputs []uint8) ([]uint8, error) {
	if len(inputs) != len(n.Inputs) {
		return nil, fmt.Errorf("netlist: %d input values for %d inputs", len(inputs), len(n.Inputs))
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	val := make([]uint8, len(n.Gates))
	for i, gi := range n.Inputs {
		val[gi] = inputs[i] & 1
	}
	var buf []uint8
	for _, gi := range order {
		g := &n.Gates[gi]
		if g.Type == Input {
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, val[f])
		}
		val[gi] = g.Type.Eval(buf)
	}
	out := make([]uint8, len(n.Outputs))
	for i, gi := range n.Outputs {
		out[i] = val[gi]
	}
	return out, nil
}

// Stats summarises the circuit.
type Stats struct {
	Inputs, Outputs, Gates int
	Levels                 int
}

// Summary computes circuit statistics.
func (n *Netlist) Summary() (Stats, error) {
	_, numLevels, err := n.Levels()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Inputs:  len(n.Inputs),
		Outputs: len(n.Outputs),
		Gates:   len(n.Gates) - len(n.Inputs),
		Levels:  numLevels - 1,
	}, nil
}

// Hash returns a content hash of the circuit structure: gate types,
// fan-in wiring, and the input/output maps (names excluded — two
// structurally identical circuits with different signal names hash
// equal). The server layer uses it as the content address of per-netlist
// artefact caches, so identical jobs submitted by different tenants share
// one cache entry. FNV-1a over the structural stream; stable across runs
// and platforms.
func (n *Netlist) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(n.Gates)))
	for gi := range n.Gates {
		g := &n.Gates[gi]
		mix(uint64(g.Type))
		mix(uint64(len(g.Fanin)))
		for _, fi := range g.Fanin {
			mix(uint64(fi))
		}
	}
	mix(uint64(len(n.Inputs)))
	for _, gi := range n.Inputs {
		mix(uint64(gi))
	}
	mix(uint64(len(n.Outputs)))
	for _, gi := range n.Outputs {
		mix(uint64(gi))
	}
	return h
}
