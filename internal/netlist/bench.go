package netlist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Typed parse failures for structurally bad .bench input, distinguishable
// with errors.Is. They exist because the daemon feeds client-supplied
// netlists into ReadBench: every malformed shape must surface as a clean
// error here rather than a panic or quadratic blow-up downstream.
var (
	// ErrDuplicateDef marks a signal defined more than once (two gate
	// lines, an INPUT clashing with a gate, or a DFF output clashing with
	// either).
	ErrDuplicateDef = errors.New("netlist: duplicate signal definition")
	// ErrUndefinedSignal marks a gate fan-in that no INPUT, gate or DFF
	// line defines.
	ErrUndefinedSignal = errors.New("netlist: undefined signal")
	// ErrCycle marks a combinational cycle among gate definitions.
	ErrCycle = errors.New("netlist: combinational cycle")
)

// ReadBench parses the ISCAS-89/85 .bench netlist dialect:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G1)
//	G11 = DFF(G10)        # flip-flops become PPI/PPO pairs
//
// A `#` starts a comment anywhere on a line (the real ISCAS distributions
// carry both header blocks and trailing annotations); everything from the
// first `#` to the end of the line is stripped before the line is parsed,
// so a comment containing parentheses can never confuse the declaration
// and gate parsers.
//
// DFF gates are scan-replaced: the flip-flop's output becomes a pseudo
// primary input named after the DFF signal, and the signal driving its
// data input is marked as a pseudo primary output — the standard
// full-scan transformation under which ATPG is combinational. A signal that is both
// declared OUTPUT(...) and feeds a DFF data input is marked as a primary
// output once (MarkOutput is idempotent), matching how full-scan tools
// treat such nets.
func ReadBench(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := New()

	type pendingGate struct {
		name  string
		typ   GateType
		fanin []string
		line  int
	}
	var gates []pendingGate
	var outputs []string
	type dff struct {
		q, d string
	}
	var dffs []dff
	// defLine records the first defining line of every signal (INPUT, gate
	// left-hand side, DFF output) so redefinitions fail with both
	// locations instead of a cryptic insert error later.
	defLine := make(map[string]int)
	define := func(name string, line int) error {
		if first, dup := defLine[name]; dup {
			return fmt.Errorf("%w: %q defined on lines %d and %d", ErrDuplicateDef, name, first, line)
		}
		defLine[name] = line
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		upper := strings.ToUpper(text)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			name, err := parseParen(text)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
			if err := define(name, line); err != nil {
				return nil, err
			}
			if _, err := n.AddInput(name); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
		case strings.HasPrefix(upper, "OUTPUT"):
			name, err := parseParen(text)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
			outputs = append(outputs, name)
		case strings.Contains(text, "="):
			parts := strings.SplitN(text, "=", 2)
			name := strings.TrimSpace(parts[0])
			if name == "" {
				return nil, fmt.Errorf("netlist: line %d: gate with empty name in %q", line, text)
			}
			rhs := strings.TrimSpace(parts[1])
			open := strings.IndexByte(rhs, '(')
			close := strings.LastIndexByte(rhs, ')')
			if open < 0 || close < open {
				return nil, fmt.Errorf("netlist: line %d: malformed gate %q", line, text)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var fanin []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("netlist: line %d: empty fan-in name in %q", line, text)
				}
				fanin = append(fanin, f)
			}
			if err := define(name, line); err != nil {
				return nil, err
			}
			if fn == "DFF" {
				if len(fanin) != 1 {
					return nil, fmt.Errorf("netlist: line %d: DFF needs one input", line)
				}
				dffs = append(dffs, dff{q: name, d: fanin[0]})
				continue
			}
			typ, ok := map[string]GateType{
				"BUF": Buf, "BUFF": Buf, "NOT": Not, "INV": Not,
				"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor,
				"XOR": Xor, "XNOR": Xnor,
			}[fn]
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown gate function %q", line, fn)
			}
			gates = append(gates, pendingGate{name: name, typ: typ, fanin: fanin, line: line})
		default:
			return nil, fmt.Errorf("netlist: line %d: unparseable %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Scan replacement: DFF outputs become pseudo primary inputs.
	for _, d := range dffs {
		if _, err := n.AddInput(d.q); err != nil {
			return nil, fmt.Errorf("netlist: DFF %q: %v", d.q, err)
		}
	}
	// Gates may be declared in any order; insert once fan-ins exist. The
	// historical algorithm made repeated passes over the remaining gates
	// in file order, inserting every gate whose fan-ins existed —
	// quadratic on adversarial inputs (a backwards dependency chain), the
	// classic way to stall the daemon with a legal-looking upload. This
	// pass reproduces that insertion order exactly in O(V+E): a gate's
	// "round" is 1 more than the latest-resolving fan-in that appears
	// *after* it in the file (fan-ins appearing before it resolve within
	// the same pass), and the historical order is exactly (round, file
	// position). Undefined fan-ins and cycles fall out of the same walk as
	// typed errors instead of one ambiguous message.
	pendingIdx := make(map[string]int, len(gates))
	for i, g := range gates {
		pendingIdx[g.name] = i
	}
	round := make([]int, len(gates))
	indeg := make([]int, len(gates))
	waiters := make([][]int32, len(gates)) // waiters[i]: pending gates whose fan-in list names gate i
	for i, g := range gates {
		for _, f := range g.fanin {
			if _, base := n.byName[f]; base {
				continue // input or DFF pseudo-input: resolved from the start
			}
			j, ok := pendingIdx[f]
			if !ok {
				return nil, fmt.Errorf("%w: gate %q (line %d) reads %q, which no INPUT, gate or DFF line defines", ErrUndefinedSignal, g.name, g.line, f)
			}
			indeg[i]++
			waiters[j] = append(waiters[j], int32(i))
		}
	}
	queue := make([]int, 0, len(gates))
	for i := range gates {
		if indeg[i] == 0 {
			round[i] = 1
			queue = append(queue, i)
		}
	}
	resolved := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		resolved++
		for _, wi := range waiters[i] {
			w := int(wi)
			r := round[i]
			if i > w {
				// The dependency sits later in the file: the historical
				// scan could not see it resolved until the next pass.
				r++
			}
			if r > round[w] {
				round[w] = r
			}
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if resolved < len(gates) {
		for i, g := range gates {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("%w: through gate %q (line %d)", ErrCycle, g.name, g.line)
			}
		}
	}
	order := make([]int, len(gates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return round[order[a]] < round[order[b]] })
	for _, i := range order {
		g := gates[i]
		if _, err := n.AddGate(g.name, g.typ, g.fanin...); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %v", g.line, err)
		}
	}
	for _, o := range outputs {
		if err := n.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	// DFF data inputs become pseudo primary outputs.
	for _, d := range dffs {
		if err := n.MarkOutput(d.d); err != nil {
			return nil, fmt.Errorf("netlist: DFF %q data %q: %v", d.q, d.d, err)
		}
	}
	return n, nil
}

func parseParen(s string) (string, error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", s)
	}
	name := strings.TrimSpace(s[open+1 : close])
	if name == "" {
		return "", fmt.Errorf("empty signal name in %q", s)
	}
	return name, nil
}

// WriteBench serialises the netlist in .bench format (combinational view:
// pseudo inputs/outputs are written as plain INPUT/OUTPUT).
func (n *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, gi := range n.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[gi].Name)
	}
	outs := append([]int(nil), n.Outputs...)
	sort.Ints(outs)
	for _, gi := range outs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Gates[gi].Name)
	}
	order, err := n.Levelize()
	if err != nil {
		return err
	}
	for _, gi := range order {
		g := &n.Gates[gi]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
