package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadBench parses the ISCAS-89/85 .bench netlist dialect:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G1)
//	G11 = DFF(G10)        # flip-flops become PPI/PPO pairs
//
// A `#` starts a comment anywhere on a line (the real ISCAS distributions
// carry both header blocks and trailing annotations); everything from the
// first `#` to the end of the line is stripped before the line is parsed,
// so a comment containing parentheses can never confuse the declaration
// and gate parsers.
//
// DFF gates are scan-replaced: the flip-flop's output becomes a pseudo
// primary input named after the DFF signal, and the signal driving its
// data input is marked as a pseudo primary output — the standard
// full-scan transformation under which ATPG is combinational. A signal that is both
// declared OUTPUT(...) and feeds a DFF data input is marked as a primary
// output once (MarkOutput is idempotent), matching how full-scan tools
// treat such nets.
func ReadBench(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := New()

	type pendingGate struct {
		name  string
		typ   GateType
		fanin []string
		line  int
	}
	var gates []pendingGate
	var outputs []string
	type dff struct {
		q, d string
	}
	var dffs []dff
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		upper := strings.ToUpper(text)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			name, err := parseParen(text)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
			if _, err := n.AddInput(name); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
		case strings.HasPrefix(upper, "OUTPUT"):
			name, err := parseParen(text)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", line, err)
			}
			outputs = append(outputs, name)
		case strings.Contains(text, "="):
			parts := strings.SplitN(text, "=", 2)
			name := strings.TrimSpace(parts[0])
			rhs := strings.TrimSpace(parts[1])
			open := strings.IndexByte(rhs, '(')
			close := strings.LastIndexByte(rhs, ')')
			if open < 0 || close < open {
				return nil, fmt.Errorf("netlist: line %d: malformed gate %q", line, text)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var fanin []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				fanin = append(fanin, strings.TrimSpace(f))
			}
			if fn == "DFF" {
				if len(fanin) != 1 {
					return nil, fmt.Errorf("netlist: line %d: DFF needs one input", line)
				}
				dffs = append(dffs, dff{q: name, d: fanin[0]})
				continue
			}
			typ, ok := map[string]GateType{
				"BUF": Buf, "BUFF": Buf, "NOT": Not, "INV": Not,
				"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor,
				"XOR": Xor, "XNOR": Xnor,
			}[fn]
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown gate function %q", line, fn)
			}
			gates = append(gates, pendingGate{name: name, typ: typ, fanin: fanin, line: line})
		default:
			return nil, fmt.Errorf("netlist: line %d: unparseable %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Scan replacement: DFF outputs become pseudo primary inputs.
	for _, d := range dffs {
		if _, err := n.AddInput(d.q); err != nil {
			return nil, fmt.Errorf("netlist: DFF %q: %v", d.q, err)
		}
	}
	// Gates may be declared in any order; insert once fan-ins exist.
	remaining := gates
	for len(remaining) > 0 {
		progress := false
		var next []pendingGate
		for _, g := range remaining {
			ready := true
			for _, f := range g.fanin {
				if _, ok := n.byName[f]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			if _, err := n.AddGate(g.name, g.typ, g.fanin...); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", g.line, err)
			}
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("netlist: unresolved signals (cycle or missing declaration), e.g. gate %q", next[0].name)
		}
		remaining = next
	}
	for _, o := range outputs {
		if err := n.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	// DFF data inputs become pseudo primary outputs.
	for _, d := range dffs {
		if err := n.MarkOutput(d.d); err != nil {
			return nil, fmt.Errorf("netlist: DFF %q data %q: %v", d.q, d.d, err)
		}
	}
	return n, nil
}

func parseParen(s string) (string, error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", s)
	}
	name := strings.TrimSpace(s[open+1 : close])
	if name == "" {
		return "", fmt.Errorf("empty signal name in %q", s)
	}
	return name, nil
}

// WriteBench serialises the netlist in .bench format (combinational view:
// pseudo inputs/outputs are written as plain INPUT/OUTPUT).
func (n *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, gi := range n.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[gi].Name)
	}
	outs := append([]int(nil), n.Outputs...)
	sort.Ints(outs)
	for _, gi := range outs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Gates[gi].Name)
	}
	order, err := n.Levelize()
	if err != nil {
		return err
	}
	for _, gi := range order {
		g := &n.Gates[gi]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
