package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// benchCommentFixture is an ISCAS-style netlist with the comment shapes
// the real benchmark distributions use: a header block, trailing comments
// on declarations, and — the case that used to break the gate parser — a
// trailing comment containing a ')' after a gate's right-hand side.
const benchCommentFixture = `# s00 benchmark (ISCAS-89 style header)
# 2 inputs
# 1 outputs
# 0 D-type flipflops
# 1 inverters
# 2 gates (1 NANDs + 1 ORs)

INPUT(G0)  # scan in
INPUT(G1)	# primary input (active high)
OUTPUT(G17) # scan out

G10 = NAND(G0, G1) # (see fig. 3) dominant gate
G11 = NOT(G10)
G17 = OR(G11, G0)  # drives OUTPUT(G17)
`

// benchDFFFixture declares G12 both as an OUTPUT and as a DFF data input,
// the overlap that used to mark it as a primary output twice.
const benchDFFFixture = `# tiny full-scan core with an output/DFF-D overlap
INPUT(G0)
OUTPUT(G12)   # also feeds the flip-flop below
G5 = DFF(G12) # scan-replaced: G5 becomes a PPI, G12 a PPO
G12 = NAND(G0, G5)
`

// TestReadBenchInlineComments exercises the header/trailing comment forms
// above; before the fix `INPUT(G0)  # scan in` was unparseable and the
// ')' inside the G10 comment made LastIndexByte(')') grab the wrong paren
// (yielding the fan-in list "G0, G1) # (see fig. 3").
func TestReadBenchInlineComments(t *testing.T) {
	n, err := ReadBench(strings.NewReader(benchCommentFixture))
	if err != nil {
		t.Fatalf("comment-bearing fixture rejected: %v", err)
	}
	if len(n.Inputs) != 2 || len(n.Outputs) != 1 {
		t.Fatalf("got %d inputs, %d outputs, want 2, 1", len(n.Inputs), len(n.Outputs))
	}
	gi, ok := n.Index("G10")
	if !ok {
		t.Fatal("G10 missing")
	}
	if got := len(n.Gates[gi].Fanin); got != 2 {
		t.Fatalf("G10 fan-in = %d, want 2 (comment text leaked into the fan-in list)", got)
	}
	// G17 = OR(NOT(NAND(G0,G1)), G0): for G0=1 the output is 1 regardless.
	out, err := n.Eval([]uint8{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("G17 = %d, want 1", out[0])
	}
}

// TestReadBenchOutputDFFOverlap asserts that a signal declared OUTPUT(...)
// and also feeding a DFF data input is marked as an output exactly once,
// and that WriteBench consequently emits a single OUTPUT line for it.
func TestReadBenchOutputDFFOverlap(t *testing.T) {
	n, err := ReadBench(strings.NewReader(benchDFFFixture))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, o := range n.Outputs {
		seen[o]++
		if seen[o] > 1 {
			t.Fatalf("gate %q marked output %d times", n.Gates[o].Name, seen[o])
		}
	}
	if len(n.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1 (G12 once)", len(n.Outputs))
	}
	var buf bytes.Buffer
	if err := n.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "OUTPUT(G12)"); got != 1 {
		t.Fatalf("WriteBench emitted OUTPUT(G12) %d times, want 1:\n%s", got, buf.String())
	}
}

// TestMarkOutputIdempotent audits MarkOutput under direct API use: marking
// the same signal repeatedly must leave a single entry in Outputs and an
// unchanged structural hash.
func TestMarkOutputIdempotent(t *testing.T) {
	n := New()
	if _, err := n.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("y", Not, "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	h := n.Hash()
	if err := n.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	if len(n.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1", len(n.Outputs))
	}
	if n.Hash() != h {
		t.Fatal("re-marking an output changed the structural hash")
	}
}

// TestBenchRoundTripHash runs ReadBench → WriteBench → ReadBench on the
// comment-bearing and DFF-bearing fixtures and requires full structural
// equivalence via netlist.Hash — gate types, wiring and the input/output
// maps all survive the round trip.
func TestBenchRoundTripHash(t *testing.T) {
	for name, src := range map[string]string{
		"comments": benchCommentFixture,
		"dff":      benchDFFFixture,
	} {
		t.Run(name, func(t *testing.T) {
			n1, err := ReadBench(strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := n1.WriteBench(&buf); err != nil {
				t.Fatal(err)
			}
			first := buf.String()
			n2, err := ReadBench(strings.NewReader(first))
			if err != nil {
				t.Fatalf("re-reading own output: %v\n%s", err, first)
			}
			if n1.Hash() != n2.Hash() {
				t.Fatalf("round trip changed the structural hash:\n%s", first)
			}
			if len(n1.Outputs) != len(n2.Outputs) || len(n1.Inputs) != len(n2.Inputs) {
				t.Fatalf("round trip changed I/O counts: %d/%d vs %d/%d",
					len(n1.Inputs), len(n1.Outputs), len(n2.Inputs), len(n2.Outputs))
			}
			var buf2 bytes.Buffer
			if err := n2.WriteBench(&buf2); err != nil {
				t.Fatal(err)
			}
			if buf2.String() != first {
				t.Fatal("WriteBench output is not a fixed point of ReadBench∘WriteBench")
			}
		})
	}
}
