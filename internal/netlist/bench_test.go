package netlist

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// benchCommentFixture is an ISCAS-style netlist with the comment shapes
// the real benchmark distributions use: a header block, trailing comments
// on declarations, and — the case that used to break the gate parser — a
// trailing comment containing a ')' after a gate's right-hand side.
const benchCommentFixture = `# s00 benchmark (ISCAS-89 style header)
# 2 inputs
# 1 outputs
# 0 D-type flipflops
# 1 inverters
# 2 gates (1 NANDs + 1 ORs)

INPUT(G0)  # scan in
INPUT(G1)	# primary input (active high)
OUTPUT(G17) # scan out

G10 = NAND(G0, G1) # (see fig. 3) dominant gate
G11 = NOT(G10)
G17 = OR(G11, G0)  # drives OUTPUT(G17)
`

// benchDFFFixture declares G12 both as an OUTPUT and as a DFF data input,
// the overlap that used to mark it as a primary output twice.
const benchDFFFixture = `# tiny full-scan core with an output/DFF-D overlap
INPUT(G0)
OUTPUT(G12)   # also feeds the flip-flop below
G5 = DFF(G12) # scan-replaced: G5 becomes a PPI, G12 a PPO
G12 = NAND(G0, G5)
`

// TestReadBenchInlineComments exercises the header/trailing comment forms
// above; before the fix `INPUT(G0)  # scan in` was unparseable and the
// ')' inside the G10 comment made LastIndexByte(')') grab the wrong paren
// (yielding the fan-in list "G0, G1) # (see fig. 3").
func TestReadBenchInlineComments(t *testing.T) {
	n, err := ReadBench(strings.NewReader(benchCommentFixture))
	if err != nil {
		t.Fatalf("comment-bearing fixture rejected: %v", err)
	}
	if len(n.Inputs) != 2 || len(n.Outputs) != 1 {
		t.Fatalf("got %d inputs, %d outputs, want 2, 1", len(n.Inputs), len(n.Outputs))
	}
	gi, ok := n.Index("G10")
	if !ok {
		t.Fatal("G10 missing")
	}
	if got := len(n.Gates[gi].Fanin); got != 2 {
		t.Fatalf("G10 fan-in = %d, want 2 (comment text leaked into the fan-in list)", got)
	}
	// G17 = OR(NOT(NAND(G0,G1)), G0): for G0=1 the output is 1 regardless.
	out, err := n.Eval([]uint8{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("G17 = %d, want 1", out[0])
	}
}

// TestReadBenchOutputDFFOverlap asserts that a signal declared OUTPUT(...)
// and also feeding a DFF data input is marked as an output exactly once,
// and that WriteBench consequently emits a single OUTPUT line for it.
func TestReadBenchOutputDFFOverlap(t *testing.T) {
	n, err := ReadBench(strings.NewReader(benchDFFFixture))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, o := range n.Outputs {
		seen[o]++
		if seen[o] > 1 {
			t.Fatalf("gate %q marked output %d times", n.Gates[o].Name, seen[o])
		}
	}
	if len(n.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1 (G12 once)", len(n.Outputs))
	}
	var buf bytes.Buffer
	if err := n.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "OUTPUT(G12)"); got != 1 {
		t.Fatalf("WriteBench emitted OUTPUT(G12) %d times, want 1:\n%s", got, buf.String())
	}
}

// TestMarkOutputIdempotent audits MarkOutput under direct API use: marking
// the same signal repeatedly must leave a single entry in Outputs and an
// unchanged structural hash.
func TestMarkOutputIdempotent(t *testing.T) {
	n := New()
	if _, err := n.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("y", Not, "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	h := n.Hash()
	if err := n.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	if len(n.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1", len(n.Outputs))
	}
	if n.Hash() != h {
		t.Fatal("re-marking an output changed the structural hash")
	}
}

// TestBenchRoundTripHash runs ReadBench → WriteBench → ReadBench on the
// comment-bearing and DFF-bearing fixtures and requires full structural
// equivalence via netlist.Hash — gate types, wiring and the input/output
// maps all survive the round trip.
func TestBenchRoundTripHash(t *testing.T) {
	for name, src := range map[string]string{
		"comments": benchCommentFixture,
		"dff":      benchDFFFixture,
	} {
		t.Run(name, func(t *testing.T) {
			n1, err := ReadBench(strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := n1.WriteBench(&buf); err != nil {
				t.Fatal(err)
			}
			first := buf.String()
			n2, err := ReadBench(strings.NewReader(first))
			if err != nil {
				t.Fatalf("re-reading own output: %v\n%s", err, first)
			}
			if n1.Hash() != n2.Hash() {
				t.Fatalf("round trip changed the structural hash:\n%s", first)
			}
			if len(n1.Outputs) != len(n2.Outputs) || len(n1.Inputs) != len(n2.Inputs) {
				t.Fatalf("round trip changed I/O counts: %d/%d vs %d/%d",
					len(n1.Inputs), len(n1.Outputs), len(n2.Inputs), len(n2.Outputs))
			}
			var buf2 bytes.Buffer
			if err := n2.WriteBench(&buf2); err != nil {
				t.Fatal(err)
			}
			if buf2.String() != first {
				t.Fatal("WriteBench output is not a fixed point of ReadBench∘WriteBench")
			}
		})
	}
}

// TestReadBenchDuplicateDefinitions: every way a signal can be defined
// twice must fail with ErrDuplicateDef naming both lines, not a generic
// insert error (or silently shadow).
func TestReadBenchDuplicateDefinitions(t *testing.T) {
	cases := []struct{ name, src string }{
		{"two gates", "INPUT(a)\nINPUT(b)\nOUTPUT(g)\ng = AND(a, b)\ng = OR(a, b)\n"},
		{"gate shadows input", "INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = AND(a, b)\n"},
		{"input repeated", "INPUT(a)\nINPUT(a)\nOUTPUT(g)\ng = NOT(a)\n"},
		{"dff output clashes with gate", "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\ng = DFF(a)\n"},
		{"dff output clashes with input", "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\na = DFF(g)\n"},
	}
	for _, tc := range cases {
		_, err := ReadBench(strings.NewReader(tc.src))
		if !errors.Is(err, ErrDuplicateDef) {
			t.Errorf("%s: err = %v, want ErrDuplicateDef", tc.name, err)
		}
	}
}

// TestReadBenchUndefinedSignal: a fan-in no line defines must fail with
// ErrUndefinedSignal, distinct from the cycle error the old parser
// conflated it with.
func TestReadBenchUndefinedSignal(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(g)\ng = AND(a, ghost)\n"
	_, err := ReadBench(strings.NewReader(src))
	if !errors.Is(err, ErrUndefinedSignal) {
		t.Fatalf("err = %v, want ErrUndefinedSignal", err)
	}
	if errors.Is(err, ErrCycle) {
		t.Fatalf("undefined signal misreported as cycle: %v", err)
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("error does not name the missing signal: %v", err)
	}
}

// TestReadBenchCombinationalCycle: cyclic gate definitions — which the
// old parser reported ambiguously and levelization would reject only
// after the netlist was half-built — fail with ErrCycle at parse time.
func TestReadBenchCombinationalCycle(t *testing.T) {
	cases := []struct{ name, src string }{
		{"self-loop", "INPUT(a)\nOUTPUT(g)\ng = AND(a, g)\n"},
		{"two-cycle", "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = OR(a, p)\n"},
		{"three-cycle", "INPUT(a)\nOUTPUT(x)\nx = NOT(y)\ny = NOT(z)\nz = NOT(x)\n"},
	}
	for _, tc := range cases {
		_, err := ReadBench(strings.NewReader(tc.src))
		if !errors.Is(err, ErrCycle) {
			t.Errorf("%s: err = %v, want ErrCycle", tc.name, err)
		}
	}
}

// TestReadBenchEmptyNames: blank gate or fan-in names are structural
// garbage, not signals.
func TestReadBenchEmptyNames(t *testing.T) {
	for _, src := range []string{
		"INPUT(a)\n = AND(a, a)\n",
		"INPUT(a)\nOUTPUT(g)\ng = AND(a, )\n",
		"INPUT(a)\nOUTPUT(g)\ng = AND(, a)\n",
	} {
		if _, err := ReadBench(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// TestReadBenchInsertionOrderPreserved pins the resolution rewrite to the
// historical pass-by-pass insertion order: gates declared out of
// dependency order land in the netlist exactly where the old quadratic
// loop put them, so gate indices — and everything keyed on them — are
// unchanged.
func TestReadBenchInsertionOrderPreserved(t *testing.T) {
	// File order: c needs b (later), d needs nothing, b needs a (later,
	// pass 3), a needs inputs only. Historical passes insert d+a (pass 1),
	// b (pass 2), c (pass 3).
	src := `INPUT(i1)
INPUT(i2)
OUTPUT(c)
OUTPUT(d)
c = AND(b, i1)
d = OR(i1, i2)
b = NOT(a)
a = NAND(i1, i2)
`
	n, err := ReadBench(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadBench: %v", err)
	}
	var order []string
	for _, g := range n.Gates {
		if g.Type != Input {
			order = append(order, g.Name)
		}
	}
	want := []string{"d", "a", "b", "c"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("insertion order = %v, want %v", order, want)
	}
}

// TestReadBenchBackwardsChainFast is the hang regression: a long
// dependency chain declared in reverse order was quadratic in the old
// resolver (~n passes over n gates) — at daemon body-cap sizes that is
// effectively a hang from one adversarial upload. The linear resolver
// parses it as fast as any other netlist; the test budget fails loudly if
// quadratic behavior ever returns.
func TestReadBenchBackwardsChainFast(t *testing.T) {
	const chain = 20000
	var sb strings.Builder
	sb.WriteString("INPUT(i0)\n")
	fmt.Fprintf(&sb, "OUTPUT(g%d)\n", chain-1)
	for i := chain - 1; i > 0; i-- {
		fmt.Fprintf(&sb, "g%d = NOT(g%d)\n", i, i-1)
	}
	sb.WriteString("g0 = NOT(i0)\n")
	start := time.Now()
	n, err := ReadBench(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadBench: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backwards chain took %v — resolution is quadratic again", elapsed)
	}
	if n.NumGates() != chain+1 {
		t.Fatalf("parsed %d nodes, want %d", n.NumGates(), chain+1)
	}
}
