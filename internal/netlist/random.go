package netlist

import (
	"fmt"

	"repro/internal/prng"
)

// RandomConfig parameterises synthetic scan-circuit generation.
type RandomConfig struct {
	Inputs  int // primary + pseudo primary inputs (scan width)
	Outputs int // primary + pseudo primary outputs
	Gates   int // internal gates
	MaxFan  int // maximum gate fan-in (≥ 2)
	Seed    uint64
}

// Random generates a random combinational scan core: a levelised DAG whose
// gates draw fan-in from earlier signals with locality bias (closer signals
// are more likely, mimicking the cone structure of real logic). Every
// primary output is driven by a late gate so output cones are deep.
//
// The generator is deterministic in the seed, so ATPG/fault-simulation
// tests and the ip_core_flow example are reproducible.
func Random(cfg RandomConfig) (*Netlist, error) {
	if cfg.Inputs < 2 || cfg.Gates < 1 || cfg.Outputs < 1 {
		return nil, fmt.Errorf("netlist: random config needs ≥2 inputs, ≥1 gate, ≥1 output")
	}
	if cfg.MaxFan < 2 {
		cfg.MaxFan = 2
	}
	src := prng.New(cfg.Seed)
	n := New()
	for i := 0; i < cfg.Inputs; i++ {
		if _, err := n.AddInput(fmt.Sprintf("pi%d", i)); err != nil {
			return nil, err
		}
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Not, And, Nand, Or, Nor}
	for gi := 0; gi < cfg.Gates; gi++ {
		name := fmt.Sprintf("g%d", gi)
		t := types[src.Intn(len(types))]
		avail := cfg.Inputs + gi
		fan := 1
		if t != Not && t != Buf {
			fan = 2 + src.Intn(cfg.MaxFan-1)
		}
		seen := make(map[int]bool, fan)
		var fanin []string
		for len(fanin) < fan && len(seen) < avail {
			// Locality bias: halve the candidate range with probability 1/2
			// repeatedly, then pick inside it from the most recent signals.
			span := avail
			for span > 4 && src.Bit() == 1 {
				span /= 2
			}
			idx := avail - 1 - src.Intn(span)
			if !seen[idx] {
				seen[idx] = true
				fanin = append(fanin, n.Gates[idx].Name)
			}
		}
		if len(fanin) == 0 {
			fanin = []string{n.Gates[src.Intn(avail)].Name}
		}
		if t == Not && len(fanin) > 1 {
			fanin = fanin[:1]
		}
		if _, err := n.AddGate(name, t, fanin...); err != nil {
			return nil, err
		}
	}
	// Outputs: prefer late gates so the observable cones are deep. A draw
	// that lands on an already-marked gate walks downward (wrapping) to
	// the nearest free one instead of redrawing, so the PRNG stream — and
	// therefore every other seed's circuit — is unaffected by collisions
	// and the netlist always gets exactly cfg.Outputs distinct outputs.
	total := cfg.Inputs + cfg.Gates
	if cfg.Outputs > total {
		return nil, fmt.Errorf("netlist: random config wants %d outputs from %d signals", cfg.Outputs, total)
	}
	marked := make(map[int]bool, cfg.Outputs)
	for oi := 0; oi < cfg.Outputs; oi++ {
		span := cfg.Gates / 2
		if span < 1 {
			span = 1
		}
		idx := total - 1 - src.Intn(span)
		for marked[idx] {
			idx--
			if idx < 0 {
				idx = total - 1
			}
		}
		marked[idx] = true
		if err := n.MarkOutput(n.Gates[idx].Name); err != nil {
			return nil, err
		}
	}
	return n, nil
}
