package netlist

import (
	"bytes"
	"testing"
)

// FuzzReadBench hardens the parser against arbitrary client uploads —
// since PR 9 the daemon feeds untrusted .bench text straight into
// ReadBench at admission time, so any panic, hang or structurally broken
// netlist it lets through is a remote crash vector. Inputs that parse
// must satisfy the pipeline's preconditions (levelizable DAG, consistent
// Summary) and the serialization must be a fixed point: WriteBench output
// reparses to a netlist that writes the same bytes and hashes
// identically. Hash equality against the *original* parse is deliberately
// not asserted — file order and levelized order may index gates
// differently — but the first rewrite canonicalizes, so everything after
// it must be stable.
func FuzzReadBench(f *testing.F) {
	f.Add([]byte(benchCommentFixture))
	f.Add([]byte("INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = NAND(a, b)\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(a)\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(g)\ng = AND(a, ghost)\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = OR(a, p)\n"))
	f.Add([]byte("INPUT(a)\nINPUT(a)\n"))
	f.Add([]byte("g1 = NOT(g0)\ng0 = NOT(g1)\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(g)\ng = XOR(a, a) # trailing ) comment\n"))
	f.Add([]byte(" = AND(a, )\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			return // admission control caps real uploads far below this
		}
		n, err := ReadBench(bytes.NewReader(data))
		if err != nil {
			return // rejected input is a correct outcome; no panic happened
		}
		// Whatever parsed must be a levelizable DAG with a coherent
		// summary — the properties every downstream engine assumes.
		if _, err := n.Levelize(); err != nil {
			t.Fatalf("parsed netlist fails Levelize: %v", err)
		}
		st, err := n.Summary()
		if err != nil {
			t.Fatalf("parsed netlist fails Summary: %v", err)
		}
		var w1 bytes.Buffer
		if err := n.WriteBench(&w1); err != nil {
			t.Fatalf("WriteBench: %v", err)
		}
		n2, err := ReadBench(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput:\n%s", err, w1.Bytes())
		}
		st2, err := n2.Summary()
		if err != nil {
			t.Fatalf("reparsed Summary: %v", err)
		}
		if st != st2 {
			t.Fatalf("summary changed across rewrite: %+v != %+v", st, st2)
		}
		var w2 bytes.Buffer
		if err := n2.WriteBench(&w2); err != nil {
			t.Fatalf("second WriteBench: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("WriteBench is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.Bytes(), w2.Bytes())
		}
		n3, err := ReadBench(bytes.NewReader(w2.Bytes()))
		if err != nil {
			t.Fatalf("third parse failed: %v", err)
		}
		if n2.Hash() != n3.Hash() {
			t.Fatalf("hash unstable across canonical rewrites: %#x != %#x", n2.Hash(), n3.Hash())
		}
	})
}
