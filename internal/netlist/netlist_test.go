package netlist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func buildFullAdder(t testing.TB) *Netlist {
	t.Helper()
	n := New()
	for _, in := range []string{"a", "b", "cin"} {
		if _, err := n.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	mustGate := func(name string, typ GateType, fanin ...string) {
		if _, err := n.AddGate(name, typ, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	mustGate("axb", Xor, "a", "b")
	mustGate("sum", Xor, "axb", "cin")
	mustGate("ab", And, "a", "b")
	mustGate("c_axb", And, "axb", "cin")
	mustGate("cout", Or, "ab", "c_axb")
	if err := n.MarkOutput("sum"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("cout"); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFullAdderTruthTable(t *testing.T) {
	n := buildFullAdder(t)
	for a := uint8(0); a <= 1; a++ {
		for b := uint8(0); b <= 1; b++ {
			for c := uint8(0); c <= 1; c++ {
				out, err := n.Eval([]uint8{a, b, c})
				if err != nil {
					t.Fatal(err)
				}
				total := a + b + c
				if out[0] != total&1 || out[1] != total>>1 {
					t.Errorf("%d+%d+%d: sum=%d cout=%d", a, b, c, out[0], out[1])
				}
			}
		}
	}
}

func TestGateEvalWordMatchesScalar(t *testing.T) {
	// EvalWord on 64 packed patterns must agree with Eval per pattern.
	f := func(a, b, c uint64) bool {
		for _, typ := range []GateType{And, Nand, Or, Nor, Xor, Xnor} {
			w := typ.EvalWord([]uint64{a, b, c})
			for bit := 0; bit < 64; bit++ {
				s := typ.Eval([]uint8{uint8(a >> uint(bit) & 1), uint8(b >> uint(bit) & 1), uint8(c >> uint(bit) & 1)})
				if uint8(w>>uint(bit)&1) != s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateAndUnknownSignals(t *testing.T) {
	n := New()
	n.AddInput("a")
	if _, err := n.AddInput("a"); err == nil {
		t.Error("duplicate input accepted")
	}
	if _, err := n.AddGate("g", And, "a", "nosuch"); err == nil {
		t.Error("unknown fan-in accepted")
	}
	if _, err := n.AddGate("h", Not, "a", "a"); err == nil {
		t.Error("NOT with two fan-ins accepted")
	}
	if err := n.MarkOutput("nosuch"); err == nil {
		t.Error("unknown output accepted")
	}
}

func TestBenchRoundTrip(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
u = NAND(a, b)
v = NOT(u)
y = OR(v, a)
`
	n, err := ReadBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadBench(&buf)
	if err != nil {
		t.Fatalf("re-reading own output: %v\n%s", err, buf.String())
	}
	for a := uint8(0); a <= 1; a++ {
		for b := uint8(0); b <= 1; b++ {
			o1, _ := n.Eval([]uint8{a, b})
			o2, _ := n2.Eval([]uint8{a, b})
			if o1[0] != o2[0] {
				t.Errorf("round trip differs at a=%d b=%d", a, b)
			}
		}
	}
}

func TestBenchDFFScanReplacement(t *testing.T) {
	src := `
INPUT(x)
OUTPUT(z)
q = DFF(d)
d = AND(x, q)
z = NOT(q)
`
	n, err := ReadBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// x and q are inputs (q is the pseudo primary input), z and d outputs.
	if len(n.Inputs) != 2 {
		t.Errorf("inputs = %d, want 2", len(n.Inputs))
	}
	if len(n.Outputs) != 2 {
		t.Errorf("outputs = %d, want 2", len(n.Outputs))
	}
	out, err := n.Eval([]uint8{1, 1}) // x=1, q=1
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 { // z = NOT(q) = 0
		t.Errorf("z = %d", out[0])
	}
	if out[1] != 1 { // d = AND(x,q) = 1
		t.Errorf("d = %d", out[1])
	}
}

func TestBenchErrors(t *testing.T) {
	cases := []string{
		"INPUT()",
		"g = FROB(a)",
		"g = AND(a",
		"whatever",
	}
	for _, src := range cases {
		if _, err := ReadBench(strings.NewReader("INPUT(a)\n" + src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestRandomCircuitWellFormed(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		n, err := Random(RandomConfig{Inputs: 20, Outputs: 6, Gates: 80, MaxFan: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		st, err := n.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if st.Inputs != 20 || st.Outputs != 6 || st.Gates != 80 {
			t.Errorf("seed %d: stats %+v", seed, st)
		}
		if st.Levels < 2 {
			t.Errorf("seed %d: circuit too shallow (%d levels)", seed, st.Levels)
		}
		// Deterministic in the seed.
		n2, _ := Random(RandomConfig{Inputs: 20, Outputs: 6, Gates: 80, MaxFan: 4, Seed: seed})
		in := make([]uint8, 20)
		for i := range in {
			in[i] = uint8(i % 2)
		}
		o1, _ := n.Eval(in)
		o2, _ := n2.Eval(in)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("seed %d: generation not deterministic", seed)
			}
		}
	}
}

func TestLevelizeDetectsLoop(t *testing.T) {
	n := New()
	n.AddInput("a")
	// Build a loop manually (bypassing AddGate's forward-reference guard).
	n.Gates = append(n.Gates, Gate{Name: "p", Type: And, Fanin: []int{0, 2}})
	n.byName["p"] = 1
	n.Gates = append(n.Gates, Gate{Name: "q", Type: And, Fanin: []int{1}})
	n.byName["q"] = 2
	if _, err := n.Levelize(); err == nil {
		t.Error("combinational loop not detected")
	}
}
