package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetPackages lists the deterministic pipeline packages: everything
// between netlist in and rendered tables out must produce bit-identical
// results for any Workers value, so detrange and nodetsource apply only
// here.
var DetPackages = []string{
	"repro/internal/atpg",
	"repro/internal/encoder",
	"repro/internal/faultsim",
	"repro/internal/experiments",
	"repro/internal/stateskip",
}

// inDetScope reports whether an import path belongs to the deterministic
// pipeline.
func inDetScope(path string) bool {
	for _, p := range DetPackages {
		if path == p {
			return true
		}
	}
	return false
}

// DetRange flags `range` statements over maps whose loop bodies have
// order-dependent effects — Go randomizes map iteration order, so such
// loops silently break the pipeline's bit-identical-output guarantee.
//
// Flagged effect classes: appending to an outer slice with no subsequent
// sort of that slice in the same block (the collect-then-sort idiom is
// clean), writing output (fmt.Print/Fprint, Write* methods, channel
// sends), non-associative accumulation into outer variables (float,
// complex or string compound assignment), unconditionally overwriting an
// outer variable with a value derived from the iteration variables
// ("last iteration wins"), and returning a value derived from the
// iteration variables ("first iteration wins"). Conditional selection
// with explicit tie-breaking (argmin/argmax patterns) is not flagged:
// a total tie-break makes the result order-independent.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration with order-dependent effects in the deterministic pipeline packages",
	Run:  runDetRange,
}

func runDetRange(pass *Pass) error {
	if !inDetScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, stack)
			return true
		})
	}
	return nil
}

// checkMapRange reports every order-dependent effect in the body of one
// map-range statement.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	iterVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}
	isOuter := func(id *ast.Ident) (types.Object, bool) {
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil || iterVars[obj] {
			return nil, false
		}
		// Declared inside the loop body → per-iteration state, harmless.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
			return nil, false
		}
		return obj, true
	}
	usesIterVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && iterVars[pass.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	walkStack(rs.Body, func(n ast.Node, inner []ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, stack, s, inner, isOuter, usesIterVar)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside map iteration: receive order depends on map order")
		case *ast.CallExpr:
			checkOutputCall(pass, s)
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if usesIterVar(res) {
					pass.Reportf(s.Pos(), "returning an iteration-dependent value from inside map iteration picks an arbitrary element")
					break
				}
			}
		}
		return true
	})
}

// checkAssign classifies one assignment inside a map-range body.
func checkAssign(pass *Pass, rs *ast.RangeStmt, stack []ast.Node, s *ast.AssignStmt,
	inner []ast.Node, isOuter func(*ast.Ident) (types.Object, bool), usesIterVar func(ast.Expr) bool) {
	for i, lhs := range s.Lhs {
		// Unsorted collection: x = append(x, ...) into an outer slice.
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			if i < len(s.Rhs) {
				if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj, outer := isOuter(id); outer && !sortedAfter(pass, rs, stack, obj) {
							pass.Reportf(s.Pos(), "appending to %s in map-iteration order without sorting it afterwards", id.Name)
						}
					}
					continue
				}
			}
		}
		id, isIdent := lhs.(*ast.Ident)
		var obj types.Object
		var outer bool
		if isIdent {
			obj, outer = isOuter(id)
		} else if sel, fsel := rootField(pass, lhs); sel != nil {
			if base, ok := sel.X.(*ast.Ident); ok {
				_, outer = isOuter(base)
				obj = fsel.Obj()
			}
		}
		if !outer || obj == nil {
			continue
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if nonAssociative(obj.Type()) {
				pass.Reportf(s.Pos(), "%s accumulation of %s over map iteration is order-dependent for %s",
					s.Tok, obj.Name(), obj.Type())
			}
		case token.ASSIGN:
			// Plain overwrite of an outer variable with iteration-derived
			// data, not nested under a condition: the arbitrary final
			// iteration wins. Conditional argmin/argmax updates are fine
			// when their tie-break is total, so they are not flagged.
			if _, isIndexed := lhs.(*ast.IndexExpr); isIndexed {
				break // keyed writes commute across distinct keys
			}
			if i < len(s.Rhs) && usesIterVar(s.Rhs[i]) && !underCondition(inner, rs.Body) {
				pass.Reportf(s.Pos(), "unconditional overwrite of %s with an iteration-dependent value: the arbitrary last element wins", obj.Name())
			}
		}
	}
}

// checkOutputCall flags print/write calls whose emission order would
// follow map order.
func checkOutputCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits output in map order", fn.Name())
			return
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		pass.Reportf(call.Pos(), "%s call inside map iteration writes output in map order", sel.Sel.Name)
	}
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.Info.Uses[id].(*types.Builtin)
	return isB
}

// nonAssociative reports whether compound accumulation over t depends on
// operand order: floating point and complex arithmetic are not
// associative, string += concatenates in sequence. Integer rings are
// commutative and associative (mod 2^w), so int counters are fine.
func nonAssociative(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true // be conservative about exotic types
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// underCondition reports whether the innermost statements enclosing the
// current node (up to, not including, the loop body) contain an if or
// switch — i.e. the assignment only happens for elements passing a test.
func underCondition(stack []ast.Node, body *ast.BlockStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return true
		}
		if stack[i] == body {
			return false
		}
	}
	return false
}

// sortedAfter reports whether, in the block directly enclosing the range
// statement, a later statement passes the collected slice to a sort
// function — the standard deterministic-iteration idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
func sortedAfter(pass *Pass, rs *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		if stmtSorts(pass, stmt, obj) {
			return true
		}
	}
	return false
}

// stmtSorts reports whether stmt calls a sort/slices ordering function
// with obj among its arguments.
func stmtSorts(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
