package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked target of an analysis run.
type Package struct {
	// ImportPath is the package's import path (the fixture path for
	// fixture loads).
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps positions of Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info records the type-checker's facts for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the given
// patterns and returns the decoded package records (targets and their
// whole dependency closure).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from `go list -export` build-cache
// export data, so target packages can be type-checked from source
// without compiling their dependency closure a second time.
type exportImporter struct {
	exports map[string]string // import path → export data file
}

// lookup opens the export data of one dependency.
func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := e.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// newChecker builds a types.Config + empty Info pair over the shared
// export map.
func newChecker(fset *token.FileSet, exp *exportImporter) (types.Config, *types.Info) {
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exp.lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	return conf, info
}

// Load type-checks every package matching patterns (e.g. "./...")
// relative to dir, which must lie inside a module. Dependencies are
// imported from export data; only the matched targets are parsed from
// source and returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exp := &exportImporter{exports: make(map[string]string)}
	for _, p := range listed {
		if p.Export != "" {
			exp.exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf, info := newChecker(fset, exp)
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return out, nil
}

// LoadFixture type-checks the single package rooted at dir (a testdata
// fixture, outside any module) under the given import path. Imports are
// resolved via `go list -export` run from modDir, so fixtures may import
// the standard library freely.
func LoadFixture(modDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in fixture %s", dir)
	}
	exp := &exportImporter{exports: make(map[string]string)}
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		listed, err := goList(modDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exp.exports[p.ImportPath] = p.Export
			}
		}
	}
	conf, info := newChecker(fset, exp)
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// ModuleRoot returns the root directory of the module containing dir by
// walking up to the nearest go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}
