package lint

import (
	"go/ast"
	"go/types"
)

// FrozenTables enforces the "immutable after build, shared across
// workers" contract: types whose doc comment carries a `lint:frozen`
// marker (atpg.Tables, encoder.Tables, gf2.RowSet) may only have their
// fields written by builder functions — names matching
// new|make|build|compute|derive|ensure|extend|init (case-insensitive
// prefix) or listed in the marker's allow= clause. Any other assignment,
// increment, indexed store or copy-into targeting a frozen field is
// reported. Fields documented as "guarded by <mutex>" are exempt here:
// they are mutable-under-lock state owned by the lockcheck analyzer.
var FrozenTables = &Analyzer{
	Name: "frozentables",
	Doc:  "flags writes to lint:frozen struct fields outside builder functions",
	Run:  runFrozenTables,
}

func runFrozenTables(pass *Pass) error {
	meta := collectMeta(pass)
	if len(meta.frozen) == 0 {
		return nil
	}
	// fieldOwner maps each frozen field to its type's policy.
	fieldOwner := make(map[types.Object]*frozenType)
	for _, ft := range meta.frozen {
		for f := range ft.fields {
			fieldOwner[f] = ft
		}
	}
	report := func(stack []ast.Node, sel *ast.SelectorExpr, fsel *types.Selection, verb string) {
		ft := fieldOwner[fsel.Obj()]
		fn := enclosingFuncName(stack)
		if fn != "" && (builderRe.MatchString(fn) || ft.allow[fn]) {
			return
		}
		pass.Reportf(sel.Pos(), "%s frozen field %s.%s outside builder functions (%s is lint:frozen)",
			verb, ft.name.Name(), fsel.Obj().Name(), ft.name.Name())
	}
	check := func(stack []ast.Node, e ast.Expr, verb string) {
		sel, fsel := rootField(pass, e)
		if sel == nil || fieldOwner[fsel.Obj()] == nil {
			return
		}
		report(stack, sel, fsel, verb)
	}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					check(stack, lhs, "write to")
				}
			case *ast.IncDecStmt:
				check(stack, s.X, "write to")
			case *ast.CallExpr:
				if isBuiltin(pass, s, "copy") && len(s.Args) == 2 {
					check(stack, s.Args[0], "copy into")
				}
			}
			return true
		})
	}
	return nil
}
