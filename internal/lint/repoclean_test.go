package lint

// TestLintRepoClean is the tier-1 regression gate: the whole module must
// satisfy its own determinism and concurrency invariants. Any unsorted
// map iteration in a pipeline package, write to a frozen table, or
// unguarded access to a "guarded by mu" field fails `go test ./...`
// locally, not just the CI lint step.

import "testing"

func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestMetaCollected guards the marker plumbing end to end on the real
// repository: the invariants named in ARCHITECTURE.md must actually be
// picked up from source, so a refactor that drops a lint:frozen marker
// or a "guarded by" comment fails here even though the (now weaker)
// suite still runs clean.
func TestMetaCollected(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/atpg", "./internal/encoder", "./internal/gf2",
		"./internal/experiments", "./internal/netlist", "./internal/lfsr")
	if err != nil {
		t.Fatal(err)
	}
	frozen := make(map[string]bool)
	guarded := 0
	for _, pkg := range pkgs {
		pass := &Pass{Analyzer: FrozenTables, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
		meta := collectMeta(pass)
		for tn := range meta.frozen {
			frozen[pkg.Pkg.Name()+"."+tn.Name()] = true
		}
		guarded += len(meta.guards)
	}
	for _, want := range []string{"atpg.Tables", "encoder.Tables", "gf2.RowSet"} {
		if !frozen[want] {
			t.Errorf("expected %s to carry the lint:frozen marker", want)
		}
	}
	// Session(4) + encoder.Tables(5) + TablesCache(1) + Netlist(4) + LFSR(1)
	if guarded < 15 {
		t.Errorf("expected at least 15 guarded fields across the pipeline, found %d", guarded)
	}
}
