package lint

// Fixture-based analyzer tests, in the style of
// golang.org/x/tools/go/analysis/analysistest: each
// testdata/src/<fixture> package seeds violations annotated with
// `// want `+"`regex`"+` comments on the offending lines; the harness
// runs one analyzer over the fixture and requires the diagnostics and
// annotations to match exactly (no missing, no unexpected findings).

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regex from a `// want ...` comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// runFixture loads testdata/src/<fixture> under importPath, runs a and
// compares findings against the fixture's want annotations.
func runFixture(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	pkg := loadFixture(t, fixture, importPath)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		file string
		line int
	}
	wants := make(map[key]*regexp.Regexp)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[key{pos.Filename, pos.Line}] = regexp.MustCompile(m[1])
			}
		}
	}
	matched := make(map[key]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q", k.file, k.line, d.Message, re)
			continue
		}
		matched[k] = true
	}
	for k := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, wants[k])
		}
	}
}

// loadFixture type-checks one fixture package under the given import
// path.
func loadFixture(t *testing.T, fixture, importPath string) *Package {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadFixture(root, dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// countWants returns the number of want annotations in a fixture, so
// tests can assert a minimum number of seeded violations.
func countWants(t *testing.T, pkg *Package) int {
	t.Helper()
	n := 0
	for _, file := range pkg.Files {
		ast.Inspect(file, func(ast.Node) bool { return true })
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if wantRe.MatchString(c.Text) {
					n++
				}
			}
		}
	}
	return n
}

func TestDetRangeFixture(t *testing.T) {
	runFixture(t, DetRange, "detrange", DetPackages[0])
}

// TestDetRangeOutOfScope verifies the same violations are ignored
// outside the deterministic pipeline packages.
func TestDetRangeOutOfScope(t *testing.T) {
	pkg := loadFixture(t, "detrange", "example.com/outside")
	diags, err := Run([]*Package{pkg}, []*Analyzer{DetRange})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no findings outside pipeline scope, got %d: %v", len(diags), diags[0])
	}
}

func TestFrozenTablesFixture(t *testing.T) {
	runFixture(t, FrozenTables, "frozen", "example.com/frozen")
}

func TestLockCheckFixture(t *testing.T) {
	runFixture(t, LockCheck, "lockcheck", "example.com/lockcheck")
}

func TestNoDetSourceFixture(t *testing.T) {
	runFixture(t, NoDetSource, "nodet", DetPackages[1])
}

// TestFixturesSeedEnoughViolations pins the acceptance bar: every
// analyzer's fixture carries at least two seeded violations, so the
// positive paths stay covered as fixtures evolve.
func TestFixturesSeedEnoughViolations(t *testing.T) {
	for fixture, importPath := range map[string]string{
		"detrange": DetPackages[0],
		"frozen":   "example.com/frozen",
		"lockcheck": "example.com/lockcheck",
		"nodet":    DetPackages[1],
	} {
		if n := countWants(t, loadFixture(t, fixture, importPath)); n < 2 {
			t.Errorf("fixture %s seeds %d violations, want at least 2", fixture, n)
		}
	}
}

// TestDiagnosticString pins the text rendering the CLI prints.
func TestDiagnosticString(t *testing.T) {
	pkg := loadFixture(t, "nodet", DetPackages[1])
	diags, err := Run([]*Package{pkg}, []*Analyzer{NoDetSource})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected findings")
	}
	s := diags[0].String()
	if !strings.Contains(s, "nodetsource:") || !strings.Contains(s, ".go:") {
		t.Fatalf("unexpected rendering %q", s)
	}
}
