// Package lockcheck seeds violations and clean cases for the lockcheck
// analyzer.
package lockcheck

import "sync"

// Cache is a mutex-guarded memo.
type Cache struct {
	mu   sync.Mutex
	vals map[string]int // guarded by mu
	hits int            // guarded by mu
	name string         // unguarded
}

func (c *Cache) Get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++         // clean: lock held
	return c.vals[k] // clean: lock held
}

func (c *Cache) BadGet(k string) int {
	return c.vals[k] // want `read of Cache.vals \(guarded by mu\) without c.mu held`
}

func (c *Cache) BadPut(k string, v int) {
	c.vals[k] = v // want `write to Cache.vals`
	c.hits++      // want `write to Cache.hits`
}

func (c *Cache) BadDelete(k string) {
	delete(c.vals, k) // want `write to Cache.vals`
}

func (c *Cache) Name() string {
	return c.name // clean: unguarded field
}

func (c *Cache) resetLocked() {
	c.vals = map[string]int{} // clean: *Locked naming convention
	c.hits = 0                // clean
}

func lookup(mu *sync.Mutex, m map[string]int, k string) int {
	mu.Lock()
	defer mu.Unlock()
	return m[k]
}

func (c *Cache) Delegated(k string) int {
	return lookup(&c.mu, c.vals, k) // clean: lock travels with the data
}

// RW exercises the read/write lock distinction.
type RW struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

func (r *RW) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n // clean: RLock suffices for reads
}

func (r *RW) BadWrite(v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.n = v // want `write to RW.n \(guarded by mu\) without r.mu held`
}

func (r *RW) Write(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n = v // clean
}
