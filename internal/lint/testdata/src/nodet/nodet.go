// Package nodet seeds violations and clean cases for the nodetsource
// analyzer. It is loaded under a deterministic-pipeline import path by
// the fixture harness.
package nodet

import (
	"math/rand"
	"os"
	"time"
)

func work() {}

func Jitter() int {
	return rand.Intn(10) // want `rand.Intn uses the global random source`
}

func Shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the global random source`
}

func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // clean: explicitly seeded
	return r.Intn(10)                   // clean: method on seeded generator
}

func Env() string {
	return os.Getenv("HOME") // want `os.Getenv in a deterministic pipeline package`
}

func Hostname() (string, error) {
	return os.Hostname() // clean: not an environment read we forbid
}

func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a deterministic pipeline package`
}

func Metric() time.Duration {
	t0 := time.Now() // clean: duration metric only
	work()
	return time.Since(t0)
}

func MetricSub() time.Duration {
	t0 := time.Now() // clean: consumed by Sub only
	work()
	t1 := time.Now() // clean: receiver of Sub only
	return t1.Sub(t0)
}

func Leak() time.Time {
	t0 := time.Now() // want `time.Now in a deterministic pipeline package`
	_ = time.Since(t0)
	return t0
}
