// Package detrange seeds violations and clean cases for the detrange
// analyzer. It is loaded under a deterministic-pipeline import path by
// the fixture harness.
package detrange

import (
	"fmt"
	"os"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys in map-iteration order without sorting`
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // clean: sorted below
	}
	sort.Strings(keys)
	return keys
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside map iteration`
	}
}

func dump(m map[string]int, f *os.File) {
	for k := range m {
		f.WriteString(k) // want `WriteString call inside map iteration`
	}
}

func emit(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `accumulation of total over map iteration is order-dependent`
	}
	return total
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // clean: integer addition commutes
	}
	return total
}

func countAll(m map[string]int) int {
	n := 0
	for range m {
		n++ // clean
	}
	return n
}

func pickAny(m map[string]int) string {
	var chosen string
	for k := range m {
		chosen = k // want `unconditional overwrite of chosen`
	}
	return chosen
}

func pickMax(m map[string]int) string {
	best, bestV := "", -1
	for k, v := range m {
		if v > bestV || (v == bestV && k < best) {
			best, bestV = k, v // clean: total tie-break
		}
	}
	return best
}

func first(m map[string]int) string {
	for k := range m {
		return k // want `returning an iteration-dependent value`
	}
	return ""
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // clean: keyed writes commute across distinct keys
	}
	return out
}

func perItem(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		s := 0
		for _, v := range vs {
			s += v
		}
		total += s // clean: int accumulation
	}
	return total
}
