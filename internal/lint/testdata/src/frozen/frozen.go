// Package frozen seeds violations and clean cases for the frozentables
// analyzer.
package frozen

import "sync"

// Tables mimics a shared immutable artefact with one allow-listed
// mutator and one mutex-guarded cache field (lockcheck's domain).
//
// lint:frozen allow=refill
type Tables struct {
	order []int
	arena []uint64
	n     int

	mu   sync.Mutex
	hits int // guarded by mu
}

// Scratch is not frozen: writes anywhere are fine.
type Scratch struct {
	vals []int
}

func NewTables(n int) *Tables {
	t := &Tables{n: n}
	t.order = make([]int, n) // clean: builder
	for i := range t.order {
		t.order[i] = i // clean: builder
	}
	return t
}

func (t *Tables) extendArena(n int) {
	t.arena = append(t.arena, make([]uint64, n)...) // clean: extend* builder
}

func (t *Tables) refill() {
	t.arena = nil // clean: allow=refill
}

func (t *Tables) Mutate(i int) {
	t.order[i] = 0 // want `write to frozen field Tables.order`
	t.arena = nil  // want `write to frozen field Tables.arena`
	t.n++          // want `write to frozen field Tables.n`
}

func Scrub(t *Tables, src []uint64) {
	copy(t.arena, src) // want `copy into frozen field Tables.arena`
	copy(src, t.arena) // clean: frozen field as source
}

func (t *Tables) Hit() {
	t.mu.Lock()
	t.hits++ // clean for frozentables: guarded fields belong to lockcheck
	t.mu.Unlock()
}

func (s *Scratch) Reset() {
	s.vals = s.vals[:0] // clean: type not frozen
}
