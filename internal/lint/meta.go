package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// frozenRe matches the `lint:frozen` marker in a type's doc comment,
// with an optional comma-separated allow-list of extra builder
// functions: `lint:frozen allow=Systems,extendArena`. The marker must
// stand on its own line so prose merely mentioning the marker (such as
// this comment) never freezes a type.
var frozenRe = regexp.MustCompile(`(?m)^lint:frozen(?:\s+allow=([A-Za-z0-9_,]+))?\s*$`)

// guardedRe matches the `guarded by <mutex>` convention in a struct
// field's doc or trailing comment.
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// builderRe matches function names conventionally allowed to write
// frozen fields: constructors and build/extend helpers.
var builderRe = regexp.MustCompile(`(?i)^(new|make|build|compute|derive|ensure|extend|init)`)

// frozenType records the write policy of one lint:frozen struct type.
type frozenType struct {
	name   *types.TypeName
	allow  map[string]bool      // extra allowed writer functions
	fields map[*types.Var]bool  // frozen fields (guarded fields excluded)
}

// guardInfo records one "guarded by" relationship inside a struct.
type guardInfo struct {
	structName string     // declaring struct's type name, for messages
	mutex      *types.Var // the guarding mutex field
}

// pkgMeta is the per-package index of lint markers: frozen types and
// guarded fields, gathered from struct declarations before analysis.
type pkgMeta struct {
	frozen map[*types.TypeName]*frozenType
	guards map[*types.Var]*guardInfo
}

// collectMeta scans the package's struct declarations for lint:frozen
// markers and "guarded by" field comments.
func collectMeta(pass *Pass) *pkgMeta {
	meta := &pkgMeta{
		frozen: make(map[*types.TypeName]*frozenType),
		guards: make(map[*types.Var]*guardInfo),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				doc := docText(gd.Doc) + "\n" + docText(ts.Doc)
				var frozen *frozenType
				if m := frozenRe.FindStringSubmatch(doc); m != nil {
					frozen = &frozenType{
						name:   obj,
						allow:  make(map[string]bool),
						fields: make(map[*types.Var]bool),
					}
					for _, fn := range strings.Split(m[1], ",") {
						if fn != "" {
							frozen.allow[fn] = true
						}
					}
					meta.frozen[obj] = frozen
				}
				collectStructMeta(pass, obj.Name(), st, frozen, meta)
			}
		}
	}
	return meta
}

// collectStructMeta indexes one struct's fields: "guarded by" fields go
// into meta.guards, every other field of a frozen struct into the frozen
// set (mutexes themselves are never frozen — Lock must mutate them).
func collectStructMeta(pass *Pass, structName string, st *ast.StructType, frozen *frozenType, meta *pkgMeta) {
	// First pass: name → field object, to resolve guard references.
	byName := make(map[string]*types.Var)
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				byName[name.Name] = v
			}
		}
	}
	for _, f := range st.Fields.List {
		guard := ""
		if m := guardedRe.FindStringSubmatch(docText(f.Doc) + "\n" + docText(f.Comment)); m != nil {
			guard = m[1]
		}
		for _, name := range f.Names {
			v, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if guard != "" {
				if mu, ok := byName[guard]; ok && isMutexType(mu.Type()) {
					meta.guards[v] = &guardInfo{structName: structName, mutex: mu}
					continue
				}
			}
			if frozen != nil && !isMutexType(v.Type()) {
				frozen.fields[v] = true
			}
		}
	}
}

// docText flattens a comment group to plain text ("" when nil).
func docText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return cg.Text()
}

// exprString renders an expression compactly for base-path comparison
// ("s", "c.inner", "(*p).cache").
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

// walkStack traverses root like ast.Inspect while maintaining the stack
// of enclosing nodes (innermost last, excluding n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// rootField unwraps index, slice, star and paren wrappers around an
// lvalue and returns the field selection at its root, if any: for
// `t.arena[i]` it returns the selection of `t.arena`.
func rootField(pass *Pass, e ast.Expr) (*ast.SelectorExpr, *types.Selection) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[x]
			if ok && sel.Kind() == types.FieldVal {
				return x, sel
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// namedOf strips pointers and returns the named type of t, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// enclosingFuncName returns the name of the outermost function
// declaration on the stack ("" at file scope).
func enclosingFuncName(stack []ast.Node) string {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
