package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDetSource forbids nondeterministic inputs inside the deterministic
// pipeline packages: wall-clock reads (time.Now), environment reads
// (os.Getenv, os.LookupEnv, os.Environ) and the globally seeded
// math/rand / math/rand/v2 top-level functions. Explicitly seeded
// generators (rand.New(rand.NewSource(seed)) and *rand.Rand methods) are
// fine — the pipelines use internal/prng for exactly that. One narrow
// exemption keeps wall-clock metrics legal: a time.Now result whose
// every use is measuring a duration (time.Since(t) or t.Sub/u.Sub(t))
// never influences pipeline output, so it is not flagged.
var NoDetSource = &Analyzer{
	Name: "nodetsource",
	Doc:  "flags wall-clock, environment and global-PRNG reads in the deterministic pipeline packages",
	Run:  runNoDetSource,
}

func runNoDetSource(pass *Pass) error {
	if !inDetScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetSources(pass, fd)
		}
	}
	return nil
}

// checkDetSources scans one function for nondeterministic inputs.
func checkDetSources(pass *Pass, fd *ast.FuncDecl) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return true // methods (e.g. *rand.Rand) are explicitly seeded
		}
		switch fn.Pkg().Path() {
		case "os":
			switch fn.Name() {
			case "Getenv", "LookupEnv", "Environ":
				pass.Reportf(call.Pos(), "os.%s in a deterministic pipeline package: output must not depend on the environment", fn.Name())
			}
		case "time":
			if fn.Name() == "Now" && !metricOnly(pass, fd, call, stack) {
				pass.Reportf(call.Pos(), "time.Now in a deterministic pipeline package: wall clock may only feed duration metrics (time.Since/Sub)")
			}
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(), "%s.%s uses the global random source: use a seeded generator (internal/prng) instead",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// calleeFunc resolves the called package-level function, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.Info.Uses[f].(*types.Func)
		return fn
	}
	return nil
}

// metricOnly reports whether a time.Now call only measures durations:
// either it is consumed directly by time.Since / .Sub, or it is bound to
// a variable whose every use in the function is an argument of
// time.Since or an operand of a Time.Sub call.
func metricOnly(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	if isDurationUse(pass, parent, call) {
		return true
	}
	// Bound to a variable? Require `t := time.Now()` / `t = time.Now()`
	// with a single LHS identifier.
	asn, ok := parent.(*ast.AssignStmt)
	if !ok || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 || asn.Rhs[0] != ast.Expr(call) {
		return false
	}
	id, ok := asn.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	clean := true
	walkStack(fd.Body, func(n ast.Node, inner []ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[use] != obj || len(inner) == 0 {
			return true
		}
		if inner[len(inner)-1] == ast.Node(asn) {
			return true // the binding assignment itself
		}
		if !isDurationUse(pass, inner[len(inner)-1], use) {
			clean = false
		}
		return clean
	})
	return clean
}

// isDurationUse reports whether parent consumes child as a duration
// measurement: time.Since(child), x.Sub(child), or child.Sub(x).
func isDurationUse(pass *Pass, parent ast.Node, child ast.Node) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass, p)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Since" {
			for _, a := range p.Args {
				if a == child {
					return true
				}
			}
		}
		// x.Sub(child)
		if sel, ok := p.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
			for _, a := range p.Args {
				if a == child {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		// child.Sub(...) — child is the receiver of a Sub call.
		return p.X == child && p.Sel.Name == "Sub"
	}
	return false
}
