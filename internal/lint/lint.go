// Package lint implements stateskip-lint: a suite of custom static
// analyzers that machine-check the repository's determinism and
// concurrency invariants — the contracts that make RunAll/Encode output
// bit-identical for any Workers count and that keep the shared
// atpg.Tables / encoder.Tables artefacts safe to share across worker
// pools.
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so that each checker is a self-contained
// unit with fixture-based tests, but it is built purely on the standard
// library: packages are type-checked from source with their dependencies
// imported from `go list -export` build-cache export data, so the module
// stays dependency-free.
//
// The four analyzers are:
//
//   - detrange: flags `range` over a map inside the deterministic
//     pipeline packages when the loop body has order-dependent effects.
//   - frozentables: flags writes to fields of types marked `lint:frozen`
//     (atpg.Tables, encoder.Tables, gf2.RowSet) outside their builders.
//   - lockcheck: flags accesses to struct fields documented as
//     "guarded by <mutex>" in functions that never acquire that mutex.
//   - nodetsource: flags wall-clock, environment and global-PRNG reads
//     (time.Now, os.Getenv, math/rand) inside the deterministic
//     pipeline packages.
//
// cmd/stateskip-lint is the multichecker driver; TestLintRepoClean keeps
// `go test ./...` failing if the repository itself ever violates an
// invariant.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check: a name, prose documentation,
// and a Run function applied to one type-checked package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run analyzes one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	// Analyzer is the checker this pass belongs to.
	Analyzer *Analyzer
	// Fset maps AST positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the parsed non-test source files of the package.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's use/def/selection/type records.
	Info *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Analyzer names the checker that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full stateskip-lint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRange, FrozenTables, LockCheck, NoDetSource}
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
