package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces the `guarded by <mutex>` contracts written on
// struct fields (Session's memo maps, encoder.Tables' symbolic arena,
// Netlist's derived caches, LFSR's skip memo): any read or write of a
// guarded field must happen in a function that acquires the guarding
// mutex on the same receiver (Lock, or RLock for reads). Two idioms are
// recognized as safe without a local acquire: passing the field to a
// function that also receives the guarding mutex ("the lock travels
// with the data", Session's cached helper), and functions whose name
// ends in "Locked" (the stdlib convention for helpers whose callers hold
// the lock). The check is flow-insensitive: acquiring anywhere in the
// function counts, which keeps it simple and has no false negatives for
// the lock-at-entry style this repository uses.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags guarded-field accesses in functions that never acquire the guarding mutex",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) error {
	meta := collectMeta(pass)
	if len(meta.guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLocks(pass, meta, fd)
		}
	}
	return nil
}

// lockAcquire records one mutex acquisition found in a function body:
// the base expression the mutex was selected from and whether it was a
// read lock.
type lockAcquire struct {
	base  string
	mutex *types.Var
	rlock bool
}

// checkFuncLocks verifies every guarded-field access of one function.
func checkFuncLocks(pass *Pass, meta *pkgMeta, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // callers hold the lock by convention
	}
	acquires := collectAcquires(pass, meta, fd.Body)
	held := func(base string, mu *types.Var, write bool) bool {
		for _, a := range acquires {
			if a.base == base && a.mutex == mu && !(write && a.rlock) {
				return true
			}
		}
		return false
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fsel, ok := pass.Info.Selections[sel]
		if !ok || fsel.Kind() != types.FieldVal {
			return true
		}
		field, _ := fsel.Obj().(*types.Var)
		g := meta.guards[field]
		if g == nil {
			return true
		}
		base := exprString(pass.Fset, sel.X)
		write := isWriteContext(sel, stack)
		if held(base, g.mutex, write) {
			return true
		}
		if lockTravelsWith(pass, sel, stack, base, g.mutex) {
			return true
		}
		verb := "read of"
		if write {
			verb = "write to"
		}
		pass.Reportf(sel.Pos(), "%s %s.%s (guarded by %s) without %s.%s held",
			verb, g.structName, field.Name(), g.mutex.Name(), base, g.mutex.Name())
		return true
	})
}

// collectAcquires finds every `x.mu.Lock()` / `x.mu.RLock()` call in
// body where mu is a known guarding mutex.
func collectAcquires(pass *Pass, meta *pkgMeta, body *ast.BlockStmt) []lockAcquire {
	guardMutexes := make(map[*types.Var]bool)
	for _, g := range meta.guards {
		guardMutexes[g.mutex] = true
	}
	var out []lockAcquire
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (method.Sel.Name != "Lock" && method.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := method.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fsel, ok := pass.Info.Selections[muSel]
		if !ok || fsel.Kind() != types.FieldVal {
			return true
		}
		mu, _ := fsel.Obj().(*types.Var)
		if !guardMutexes[mu] {
			return true
		}
		out = append(out, lockAcquire{
			base:  exprString(pass.Fset, muSel.X),
			mutex: mu,
			rlock: method.Sel.Name == "RLock",
		})
		return true
	})
	return out
}

// isWriteContext reports whether sel (possibly wrapped in index/slice/
// star expressions) is the target of an assignment, an inc/dec, the
// destination of a delete, or has its address taken.
func isWriteContext(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var child ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
			child = stack[i]
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == child
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.CallExpr:
			if id, ok := p.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}

// lockTravelsWith reports whether the access is an argument of a call
// that also passes the guarding mutex of the same base (by address or
// value) — the "lock travels with the data" delegation idiom.
func lockTravelsWith(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, base string, mu *types.Var) bool {
	muExpr := base + "." + mu.Name()
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		for _, arg := range call.Args {
			s := exprString(pass.Fset, arg)
			if s == muExpr || s == "&"+muExpr {
				return true
			}
		}
	}
	return false
}
