package experiments

import (
	"fmt"
	"strings"

	"repro/internal/benchprofile"
	"repro/internal/decompressor"
	"repro/internal/hwcost"
	"repro/internal/lfsr"
	"repro/internal/litdata"
)

// SkipCostPoint is one k of the skip-circuit cost sweep.
type SkipCostPoint struct {
	K       int
	NaiveGE float64
	CSEGE   float64
}

// SkipCircuitSweep reproduces the paper's §4 State-Skip-circuit overhead
// trend on the s13207 register (n=24 at paper scale): GE versus k, with and
// without common-subexpression sharing (the CSE ablation).
func (s *Session) SkipCircuitSweep(ks []int) ([]SkipCostPoint, error) {
	p, err := benchprofile.ByName("s13207", s.Scale)
	if err != nil {
		return nil, err
	}
	l, err := lfsr.NewStandard(lfsr.Fibonacci, p.LFSRSize)
	if err != nil {
		return nil, err
	}
	var pts []SkipCostPoint
	for _, k := range ks {
		net := hwcost.CostLinear(l.SkipMatrix(uint64(k)))
		pts = append(pts, SkipCostPoint{K: k, NaiveGE: net.NaiveGE(), CSEGE: net.GE()})
	}
	return pts, nil
}

// HWReport aggregates the §4 hardware experiments.
type HWReport struct {
	SkipSweep []SkipCostPoint
	// Breakdown of one representative s13207 decompressor.
	Breakdown decompressor.CostBreakdown
	// Mode Select GE range over the (L, S) grid of the paper.
	ModeSelectMin, ModeSelectMax float64
}

// HWOverhead runs the hardware cost experiments on s13207.
func (s *Session) HWOverhead() (*HWReport, error) {
	rep := &HWReport{}
	ks := []int{4, 8, 12, 16, 20, 24, 28, 32}
	var err error
	rep.SkipSweep, err = s.SkipCircuitSweep(ks)
	if err != nil {
		return nil, err
	}

	// Representative decompressor: middle of the paper's parameter space.
	L, S, k := 200, 10, 10
	if s.Scale != benchprofile.ScalePaper {
		L, S, k = 16, 4, 8
	}
	red, err := s.Reduce("s13207", L, S, k)
	if err != nil {
		return nil, err
	}
	rep.Breakdown = decompressor.NewSchedule(red).Cost()

	// Mode Select range over the paper's 50 ≤ L ≤ 500, 2 ≤ S ≤ 50 grid
	// (scaled down in CI).
	Ls := []int{50, 200, 500}
	Ss := []int{2, 10, 50}
	if s.Scale != benchprofile.ScalePaper {
		Ls = []int{8, 16, 32}
		Ss = []int{2, 4, 8}
	}
	first := true
	for _, L := range Ls {
		for _, S := range Ss {
			if S > L {
				continue
			}
			red, err := s.Reduce("s13207", L, S, k)
			if err != nil {
				return nil, err
			}
			ge := decompressor.NewSchedule(red).ModeSelectGE()
			if first || ge < rep.ModeSelectMin {
				rep.ModeSelectMin = ge
			}
			if first || ge > rep.ModeSelectMax {
				rep.ModeSelectMax = ge
			}
			first = false
		}
	}
	return rep, nil
}

// HWMarkdown renders the hardware report with the paper's §4 numbers for
// comparison.
func (s *Session) HWMarkdown(rep *HWReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hardware overhead (s13207 register, %s scale)\n\n", s.Scale)
	b.WriteString("State Skip circuit GE vs k (CSE ablation):\n\n| k | naive GE | CSE GE |\n|---|---|---|\n")
	for _, p := range rep.SkipSweep {
		fmt.Fprintf(&b, "| %d | %.0f | %.0f |\n", p.K, p.NaiveGE, p.CSEGE)
	}
	if s.Scale == benchprofile.ScalePaper {
		fmt.Fprintf(&b, "\n(paper: %d GE at k=12 rising to %d GE at k=32)\n",
			litdata.HWOverhead.SkipGEAtK12, litdata.HWOverhead.SkipGEAtK32)
	}
	fmt.Fprintf(&b, "\nDecompressor breakdown (GE): LFSR+muxes %.0f, skip circuit %.0f, phase shifter %.0f, counters %.0f, Mode Select %.0f; shared total %.0f\n",
		rep.Breakdown.LFSR, rep.Breakdown.SkipCircuit, rep.Breakdown.PhaseShifter,
		rep.Breakdown.Counters, rep.Breakdown.ModeSelect, rep.Breakdown.SharedGE())
	if s.Scale == benchprofile.ScalePaper {
		fmt.Fprintf(&b, "(paper: rest-of-decompressor ≈ %d GE)\n", litdata.HWOverhead.RestOfDecompressorGE)
	}
	fmt.Fprintf(&b, "\nMode Select GE over the (L,S) grid: %.0f – %.0f\n", rep.ModeSelectMin, rep.ModeSelectMax)
	if s.Scale == benchprofile.ScalePaper {
		fmt.Fprintf(&b, "(paper: %d – %d GE)\n", litdata.HWOverhead.ModeSelectGEMin, litdata.HWOverhead.ModeSelectGEMax)
	}
	return b.String()
}

// SoCCore is one core of the hypothetical multi-core SoC experiment.
type SoCCore struct {
	Circuit      string
	ModeSelectGE float64
	TSL          int
}

// SoCReport is the §4 multi-core synthesis experiment: five cores sharing
// one State Skip decompressor, per-core Mode Select units.
type SoCReport struct {
	Cores       []SoCCore
	SharedGE    float64 // one LFSR + skip circuit + PS + counters
	TotalGE     float64
	SoCGateEst  float64 // rough gate-count estimate of the five cores
	AreaPercent float64
}

// coreGateEstimates are published approximate gate counts of the ISCAS'89
// circuits (combinational gates + 4 GE per flip-flop), used only to put the
// decompressor overhead in proportion, as the paper's 6.6% figure does.
var coreGateEstimates = map[string]float64{
	"s9234":  5597 + 211*4,
	"s13207": 7951 + 638*4,
	"s15850": 9772 + 534*4,
	"s38417": 22179 + 1636*4,
	"s38584": 19253 + 1426*4,
}

// SoC runs the five-core SoC experiment (paper: L=200, S=10, k=10).
func (s *Session) SoC() (*SoCReport, error) {
	L, S, k := 200, 10, 10
	if s.Scale != benchprofile.ScalePaper {
		L, S, k = 16, 4, 8
	}
	rep := &SoCReport{}
	var maxShared float64
	for _, name := range benchprofile.Names() {
		red, err := s.Reduce(name, L, S, k)
		if err != nil {
			return nil, err
		}
		sched := decompressor.NewSchedule(red)
		cost := sched.Cost()
		rep.Cores = append(rep.Cores, SoCCore{
			Circuit:      name,
			ModeSelectGE: cost.ModeSelect,
			TSL:          red.TSL(),
		})
		// The shared datapath must accommodate the largest register and
		// phase shifter among the cores.
		if cost.SharedGE() > maxShared {
			maxShared = cost.SharedGE()
		}
		rep.SoCGateEst += coreGateEstimates[name]
	}
	rep.SharedGE = maxShared
	rep.TotalGE = maxShared
	for _, c := range rep.Cores {
		rep.TotalGE += c.ModeSelectGE
	}
	if rep.SoCGateEst > 0 {
		rep.AreaPercent = 100 * rep.TotalGE / rep.SoCGateEst
	}
	return rep, nil
}

// SoCMarkdown renders the SoC experiment.
func (s *Session) SoCMarkdown(rep *SoCReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hypothetical 5-core SoC (%s scale)\n\n| Core | Mode Select GE | TSL |\n|---|---|---|\n", s.Scale)
	for _, c := range rep.Cores {
		fmt.Fprintf(&b, "| %s | %.0f | %d |\n", c.Circuit, c.ModeSelectGE, c.TSL)
	}
	fmt.Fprintf(&b, "\nShared decompressor: %.0f GE; total with Mode Selects: %.0f GE; ≈ %.1f%% of the SoC gate estimate\n",
		rep.SharedGE, rep.TotalGE, rep.AreaPercent)
	if s.Scale == benchprofile.ScalePaper {
		fmt.Fprintf(&b, "(paper: per-core Mode Select %d–%d GE, decompressor ≈ %.1f%% of SoC area)\n",
			litdata.HWOverhead.SoCModeSelectMin, litdata.HWOverhead.SoCModeSelectMax, litdata.HWOverhead.SoCAreaPercent)
	}
	return b.String()
}
