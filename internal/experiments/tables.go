package experiments

import (
	"fmt"
	"strings"

	"repro/internal/benchprofile"
	"repro/internal/litdata"
)

// Table1Cell is one (circuit, L) measurement.
type Table1Cell struct {
	L     int
	Seeds int
	TDV   int
	TSL   int
}

// Table1Row is one circuit's row of Table 1.
type Table1Row struct {
	Circuit  string
	LFSRSize int
	Cells    []Table1Cell
}

// Table1 reproduces the paper's Table 1: classical (L=1) vs window-based
// reseeding TDV/TSL per circuit. The (circuit, L) cells are independent and
// run on the session's worker pool.
func (s *Session) Table1() ([]Table1Row, error) {
	names := benchprofile.Names()
	Ls := s.Params.Table1Ls
	rows := make([]Table1Row, len(names))
	for i, name := range names {
		p, err := benchprofile.ByName(name, s.Scale)
		if err != nil {
			return nil, err
		}
		rows[i] = Table1Row{Circuit: name, LFSRSize: p.LFSRSize, Cells: make([]Table1Cell, len(Ls))}
	}
	err := s.parallelFor(len(names)*len(Ls), func(i int) error {
		ci, li := i/len(Ls), i%len(Ls)
		enc, err := s.Encoding(names[ci], Ls[li])
		if err != nil {
			return err
		}
		rows[ci].Cells[li] = Table1Cell{L: Ls[li], Seeds: len(enc.Seeds), TDV: enc.TDV(), TSL: enc.TSL()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table1Markdown renders Table 1 with the paper's values alongside when the
// session runs at paper scale.
func (s *Session) Table1Markdown(rows []Table1Row) string {
	var b strings.Builder
	paper := s.Scale == benchprofile.ScalePaper
	fmt.Fprintf(&b, "Table 1: Classical vs Window-based LFSR Reseeding (%s scale)\n\n", s.Scale)
	b.WriteString("| Circuit | n |")
	for _, L := range s.Params.Table1Ls {
		fmt.Fprintf(&b, " L=%d TDV | L=%d TSL |", L, L)
	}
	b.WriteString("\n|---|---|")
	for range s.Params.Table1Ls {
		b.WriteString("---|---|")
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s | %d |", row.Circuit, row.LFSRSize)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %d | %d |", c.TDV, c.TSL)
		}
		b.WriteString("\n")
		if paper {
			fmt.Fprintf(&b, "| (paper) | %d |", litdata.LFSRSize[row.Circuit])
			for _, c := range row.Cells {
				if e, ok := litdata.Table1[row.Circuit][c.L]; ok {
					fmt.Fprintf(&b, " %d | %d |", e.TDV, e.TSL)
				} else {
					b.WriteString(" - | - |")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Table2Cell is one (circuit, L) result of the reduction experiment.
type Table2Cell struct {
	L     int
	Orig  int     // full-window TSL
	Prop  int     // shortened TSL (best S, k)
	Impr  float64 // fraction in [0,1]
	BestS int
	BestK int
}

// Table2Row is one circuit's row of Table 2.
type Table2Row struct {
	Circuit string
	Cells   []Table2Cell
}

// Table2 reproduces the paper's Table 2: TSL improvement of the State Skip
// scheme over full windows, best over the (S, k) grid. The (circuit, L)
// cells are independent and run on the session's worker pool.
func (s *Session) Table2() ([]Table2Row, error) {
	names := benchprofile.Names()
	Ls := s.Params.Table2Ls
	rows := make([]Table2Row, len(names))
	for i, name := range names {
		rows[i] = Table2Row{Circuit: name, Cells: make([]Table2Cell, len(Ls))}
	}
	err := s.parallelFor(len(names)*len(Ls), func(i int) error {
		ci, li := i/len(Ls), i%len(Ls)
		best, err := s.BestReduction(names[ci], Ls[li], s.Params.Table2Ss, s.Params.Table2Ks)
		if err != nil {
			return err
		}
		rows[ci].Cells[li] = Table2Cell{
			L:     Ls[li],
			Orig:  best.Enc.TSL(),
			Prop:  best.TSL(),
			Impr:  best.Improvement(),
			BestS: best.Opt.SegmentSize,
			BestK: best.Opt.Speedup,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Markdown renders Table 2 with paper values at paper scale.
func (s *Session) Table2Markdown(rows []Table2Row) string {
	var b strings.Builder
	paper := s.Scale == benchprofile.ScalePaper
	fmt.Fprintf(&b, "Table 2: Test Sequence Length Improvements (%s scale)\n\n", s.Scale)
	b.WriteString("| Circuit |")
	for _, L := range s.Params.Table2Ls {
		fmt.Fprintf(&b, " L=%d Orig | Prop | Impr |", L)
	}
	b.WriteString("\n|---|")
	for range s.Params.Table2Ls {
		b.WriteString("---|---|---|")
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s |", row.Circuit)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %d | %d | %.0f%% |", c.Orig, c.Prop, c.Impr*100)
		}
		b.WriteString("\n")
		if paper {
			b.WriteString("| (paper) |")
			for _, c := range row.Cells {
				if e, ok := litdata.Table2[row.Circuit][c.L]; ok {
					fmt.Fprintf(&b, " %d | %d | %d%% |", e.Orig, e.Prop, e.Impr)
				} else {
					b.WriteString(" - | - | - |")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Fig4Point is one point of a Fig. 4 series.
type Fig4Point struct {
	K    int
	Impr float64
}

// Fig4Series is one bar group or curve of Fig. 4.
type Fig4Series struct {
	Label  string // "S=4 (L=300)" or "L=100 (S=5)"
	Points []Fig4Point
}

// Fig4 reproduces both sweeps of the paper's Fig. 4 on s13207: TSL
// improvement vs k for several segment sizes at fixed L (bars), and for
// several window lengths at fixed S (curves).
func (s *Session) Fig4() (bars, curves []Fig4Series, err error) {
	const circuit = "s13207"
	// Flatten both sweeps into one list of (L, S) series so they all run
	// concurrently on the session's worker pool; the k-points of one series
	// share nothing but the cached encoding.
	type spec struct {
		label string
		L, S  int
	}
	var specs []spec
	for _, S := range s.Params.Fig4BarSs {
		specs = append(specs, spec{fmt.Sprintf("S=%d (L=%d)", S, s.Params.Fig4BarL), s.Params.Fig4BarL, S})
	}
	nbars := len(specs)
	for _, L := range s.Params.Fig4CurveLs {
		S := s.Params.Fig4CurveS
		if S > L {
			S = L
		}
		specs = append(specs, spec{fmt.Sprintf("L=%d (S=%d)", L, S), L, S})
	}
	series := make([]Fig4Series, len(specs))
	err = s.parallelFor(len(specs), func(i int) error {
		serie := Fig4Series{Label: specs[i].label}
		for _, k := range s.Params.Fig4Ks {
			red, err := s.Reduce(circuit, specs[i].L, specs[i].S, k)
			if err != nil {
				return err
			}
			serie.Points = append(serie.Points, Fig4Point{K: k, Impr: red.Improvement()})
		}
		series[i] = serie
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return series[:nbars], series[nbars:], nil
}

// Fig4Markdown renders both Fig. 4 sweeps as tables.
func (s *Session) Fig4Markdown(bars, curves []Fig4Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: TSL improvement (%%) on s13207 for various k, S, L (%s scale)\n", s.Scale)
	render := func(title string, series []Fig4Series) {
		fmt.Fprintf(&b, "\n%s\n\n| series |", title)
		for _, k := range s.Params.Fig4Ks {
			fmt.Fprintf(&b, " k=%d |", k)
		}
		b.WriteString("\n|---|")
		for range s.Params.Fig4Ks {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, serie := range series {
			fmt.Fprintf(&b, "| %s |", serie.Label)
			for _, p := range serie.Points {
				fmt.Fprintf(&b, " %.1f |", p.Impr*100)
			}
			b.WriteString("\n")
		}
	}
	render("Segment-size sweep (bars)", bars)
	render("Window-length sweep (curves)", curves)
	if s.Scale == benchprofile.ScalePaper {
		b.WriteString("\n(paper: improvements rise from 69–78% at k=3 to 80–93% at k=24 across S=4..20 at L=300,\n and increase with L at fixed S=5)\n")
	}
	return b.String()
}

// Table3Row compares the proposed method against the published test set
// embedding methods at the session's Table-3 window length.
type Table3Row struct {
	Circuit string
	PropTDV int
	PropTSL int
	Lit11   litdata.Table3Entry // Kaseridis et al. [11]
	Lit22   litdata.Table3Entry // Li & Chakrabarty [22]
	Impr11  float64             // TSL improvement vs [11]
	Impr22  float64             // TSL improvement vs [22]
}

// Table3 reproduces the paper's Table 3 comparison (L=300 at paper scale):
// our measured TDV/TSL against the published values of [11] and [22].
func (s *Session) Table3() ([]Table3Row, error) {
	names := benchprofile.Names()
	rows := make([]Table3Row, len(names))
	err := s.parallelFor(len(names), func(i int) error {
		name := names[i]
		best, err := s.BestReduction(name, s.Params.Table3L, s.Params.Table2Ss, s.Params.Table2Ks)
		if err != nil {
			return err
		}
		row := Table3Row{
			Circuit: name,
			PropTDV: best.Enc.TDV(),
			PropTSL: best.TSL(),
			Lit11:   litdata.Table3[name]["[11]"],
			Lit22:   litdata.Table3[name]["[22]"],
		}
		row.Impr11 = 1 - float64(row.PropTSL)/float64(row.Lit11.TSL)
		row.Impr22 = 1 - float64(row.PropTSL)/float64(row.Lit22.TSL)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Markdown renders Table 3. Published TSLs of [11] and [22] are from
// the paper; comparisons of our measured TSL against them are only
// meaningful at paper scale.
func (s *Session) Table3Markdown(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: vs Test Set Embedding methods (L=%d, %s scale)\n\n", s.Params.Table3L, s.Scale)
	b.WriteString("| Circuit | TDV [11] | TDV [22] | TDV prop | TSL [11] | TSL [22] | TSL prop | Impr vs [11] | Impr vs [22] |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %.1f%% | %.1f%% |\n",
			r.Circuit, r.Lit11.TDV, r.Lit22.TDV, r.PropTDV, r.Lit11.TSL, r.Lit22.TSL, r.PropTSL,
			r.Impr11*100, r.Impr22*100)
		if s.Scale == benchprofile.ScalePaper {
			p := litdata.Table3[r.Circuit]["prop"]
			fmt.Fprintf(&b, "| (paper prop) |  |  | %d |  |  | %d |  |  |\n", p.TDV, p.TSL)
		}
	}
	return b.String()
}

// Table4Row is one circuit's row of the Table 4 comparison.
type Table4Row struct {
	Circuit      string
	ClassicalTDV int
	ClassicalTSL int
	PropTDV      int
	PropTSL      int
	Compression  map[string]int // method name → published TDV
}

// Table4 reproduces the paper's Table 4: the two options for IP cores —
// test data compression (published TDVs) vs the proposed embedding
// (classical L=1 and State-Skip-shortened L=200, both measured here).
func (s *Session) Table4() ([]Table4Row, error) {
	names := benchprofile.Names()
	rows := make([]Table4Row, len(names))
	err := s.parallelFor(len(names), func(i int) error {
		name := names[i]
		classical, err := s.Encoding(name, 1)
		if err != nil {
			return err
		}
		best, err := s.BestReduction(name, s.Params.Table4PropL, s.Params.Table2Ss, s.Params.Table2Ks)
		if err != nil {
			return err
		}
		row := Table4Row{
			Circuit:      name,
			ClassicalTDV: classical.TDV(),
			ClassicalTSL: classical.TSL(),
			PropTDV:      best.Enc.TDV(),
			PropTSL:      best.TSL(),
			Compression:  make(map[string]int),
		}
		for _, m := range litdata.Table4Compression {
			row.Compression[m.Name] = m.TDV[name]
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table4Markdown renders Table 4.
func (s *Session) Table4Markdown(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: vs Test Data Compression methods (prop at L=%d, %s scale)\n\n", s.Params.Table4PropL, s.Scale)
	b.WriteString("| Circuit |")
	for _, m := range litdata.Table4Compression {
		fmt.Fprintf(&b, " %s TDV |", m.Name)
	}
	b.WriteString(" Classical TDV | Classical TSL | Prop TDV | Prop TSL |\n|---|")
	for range litdata.Table4Compression {
		b.WriteString("---|")
	}
	b.WriteString("---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s |", r.Circuit)
		for _, m := range litdata.Table4Compression {
			fmt.Fprintf(&b, " %d |", r.Compression[m.Name])
		}
		fmt.Fprintf(&b, " %d | %d | %d | %d |\n", r.ClassicalTDV, r.ClassicalTSL, r.PropTDV, r.PropTSL)
		if s.Scale == benchprofile.ScalePaper {
			p := litdata.Table4Prop[r.Circuit]
			fmt.Fprintf(&b, "| (paper) |")
			for range litdata.Table4Compression {
				b.WriteString(" |")
			}
			fmt.Fprintf(&b, " %d | %d | %d | %d |\n", p.ClassicalTDV, p.ClassicalTSL, p.PropTDV, p.PropTSL)
		}
	}
	return b.String()
}
