package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/benchprofile"
)

// TestSingleflightEncodingBuildsOnce races many goroutines at one
// (circuit, L) key and asserts the memo built the encoding exactly once —
// the singleflight contract the daemon's shared session depends on.
// Run with -race: the memo slot hand-off is the interesting part.
func TestSingleflightEncodingBuildsOnce(t *testing.T) {
	s := NewSession(benchprofile.ScaleCI)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = s.EncodingCtx(context.Background(), "s13207", 8)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	st := s.Stats()
	if st.EncodingBuilds != 1 {
		t.Fatalf("EncodingBuilds = %d, want exactly 1 (singleflight)", st.EncodingBuilds)
	}
	if st.SetBuilds != 1 {
		t.Fatalf("SetBuilds = %d, want exactly 1", st.SetBuilds)
	}
	if st.Hits < goroutines-1 {
		t.Fatalf("Hits = %d, want ≥ %d", st.Hits, goroutines-1)
	}
}

// TestSingleflightCanceledLeaderDoesNotPoison submits a build under an
// already-cancelled context, then asserts a later caller with a live
// context gets a real encoding: the cancelled leader must clear its memo
// slot instead of caching its context error.
func TestSingleflightCanceledLeaderDoesNotPoison(t *testing.T) {
	s := NewSession(benchprofile.ScaleCI)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.EncodingCtx(canceled, "s13207", 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader: err = %v, want context.Canceled", err)
	}
	enc, err := s.EncodingCtx(context.Background(), "s13207", 8)
	if err != nil {
		t.Fatalf("post-cancel rebuild failed: %v", err)
	}
	if len(enc.Seeds) == 0 {
		t.Fatal("post-cancel rebuild returned empty encoding")
	}
}

// TestSingleflightMixedCancellation races live and cancelled contexts on
// one key: every live-context caller must end with a valid encoding, and
// no cancelled caller may corrupt the slot. Exercises the leader hand-off
// paths of cached() under -race.
func TestSingleflightMixedCancellation(t *testing.T) {
	s := NewSession(benchprofile.ScaleCI)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	const pairs = 8
	var wg sync.WaitGroup
	liveErrs := make([]error, pairs)
	for g := 0; g < pairs; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			_, liveErrs[g] = s.EncodingCtx(context.Background(), "s13207", 8)
		}(g)
		go func() {
			defer wg.Done()
			// Either outcome (ctx error or a value served from a finished
			// slot) is legal for a cancelled caller.
			s.EncodingCtx(canceled, "s13207", 8) //nolint:errcheck
		}()
	}
	wg.Wait()
	for g, err := range liveErrs {
		if err != nil {
			t.Fatalf("live caller %d: %v", g, err)
		}
	}
}

// TestSetMaxCachedBoundsMemos verifies the LRU bound: more distinct keys
// than the bound evicts, re-requesting an evicted key rebuilds, and the
// live slot count respects the bound.
func TestSetMaxCachedBoundsMemos(t *testing.T) {
	s := NewSession(benchprofile.ScaleCI)
	s.SetMaxCached(2)
	for _, L := range []int{4, 6, 8} {
		if _, err := s.Encoding("s13207", L); err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("Evictions = 0, want > 0 with bound 2 and 3 keys")
	}
	if st.EncodingBuilds != 3 {
		t.Fatalf("EncodingBuilds = %d, want 3", st.EncodingBuilds)
	}
	// L=4 was evicted (LRU); re-requesting it must rebuild, not fail.
	if _, err := s.Encoding("s13207", 4); err != nil {
		t.Fatalf("rebuild after eviction: %v", err)
	}
	if got := s.Stats().EncodingBuilds; got != 4 {
		t.Fatalf("EncodingBuilds after re-request = %d, want 4 (rebuild)", got)
	}
}
