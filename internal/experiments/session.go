// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 4). Each driver returns structured rows plus
// a Markdown rendering; cmd/stateskip and the repository-level benchmarks
// are thin wrappers around these drivers.
//
// The experiment index lives in DESIGN.md §4; measured-vs-paper values are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/benchprofile"
	"repro/internal/cube"
	"repro/internal/encoder"
	"repro/internal/stateskip"
)

// Params collects the sweep parameters of the evaluation. PaperParams
// matches the paper exactly; CIParams shrinks window sizes so the whole
// suite runs in seconds.
type Params struct {
	Table1Ls []int // window lengths of Table 1 (first entry must be 1)

	Table2Ls []int // window lengths of Table 2
	Table2Ss []int // segment sizes tried for Table 2 ("best of")
	Table2Ks []int // speedup factors tried for Table 2

	Fig4BarL    int   // window length for the S-sweep bars
	Fig4BarSs   []int // segment sizes of the bars
	Fig4CurveS  int   // segment size of the L-sweep curves
	Fig4CurveLs []int // window lengths of the curves
	Fig4Ks      []int // speedup factors of both sweeps

	Table3L     int // window length for the embedding comparison
	Table4PropL int // window length of the proposed column in Table 4
}

// PaperParams are the exact parameters of the paper's Section 4.
func PaperParams() Params {
	return Params{
		Table1Ls:    []int{1, 50, 200, 500},
		Table2Ls:    []int{50, 200, 500},
		Table2Ss:    []int{2, 5, 10},
		Table2Ks:    []int{5, 8, 12, 16, 20, 24},
		Fig4BarL:    300,
		Fig4BarSs:   []int{4, 10, 12, 20},
		Fig4CurveS:  5,
		Fig4CurveLs: []int{50, 100, 300, 500},
		Fig4Ks:      []int{3, 6, 9, 12, 15, 18, 21, 24},
		Table3L:     300,
		Table4PropL: 200,
	}
}

// CIParams shrink every sweep for fast tests and default benchmarks while
// keeping all qualitative behaviours (windows ≫ segments ≫ 1, k up to 24).
func CIParams() Params {
	return Params{
		Table1Ls:    []int{1, 8, 16, 32},
		Table2Ls:    []int{8, 16, 32},
		Table2Ss:    []int{2, 4, 8},
		Table2Ks:    []int{5, 12, 24},
		Fig4BarL:    24,
		Fig4BarSs:   []int{2, 4, 6},
		Fig4CurveS:  4,
		Fig4CurveLs: []int{8, 16, 24, 32},
		Fig4Ks:      []int{3, 6, 12, 24},
		Table3L:     24,
		Table4PropL: 16,
	}
}

// ParamsFor returns the parameter set for a scale.
func ParamsFor(scale benchprofile.Scale) Params {
	if scale == benchprofile.ScalePaper {
		return PaperParams()
	}
	return CIParams()
}

// Session caches the expensive artefacts (generated cube sets and
// encodings) across experiments, since Table 1/2/4 and Fig. 4 reuse the
// same (circuit, L) encodings.
type Session struct {
	Scale  benchprofile.Scale
	Params Params

	mu   sync.Mutex
	sets map[string]*cube.Set
	encs map[encKey]*encoder.Encoding
	idxs map[encKey]*stateskip.VecEmbeddings
}

type encKey struct {
	circuit string
	L       int
}

// NewSession creates a session at the given scale with that scale's
// default parameters.
func NewSession(scale benchprofile.Scale) *Session {
	return &Session{
		Scale:  scale,
		Params: ParamsFor(scale),
		sets:   make(map[string]*cube.Set),
		encs:   make(map[encKey]*encoder.Encoding),
		idxs:   make(map[encKey]*stateskip.VecEmbeddings),
	}
}

// Set returns the (cached) synthetic cube set of one circuit.
func (s *Session) Set(circuit string) (*cube.Set, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if set, ok := s.sets[circuit]; ok {
		return set, nil
	}
	p, err := benchprofile.ByName(circuit, s.Scale)
	if err != nil {
		return nil, err
	}
	set := p.Generate()
	s.sets[circuit] = set
	return set, nil
}

// Encoding returns the (cached) window encoding of one circuit at window
// length L.
func (s *Session) Encoding(circuit string, L int) (*encoder.Encoding, error) {
	s.mu.Lock()
	if enc, ok := s.encs[encKey{circuit, L}]; ok {
		s.mu.Unlock()
		return enc, nil
	}
	s.mu.Unlock()

	set, err := s.Set(circuit)
	if err != nil {
		return nil, err
	}
	p, err := benchprofile.ByName(circuit, s.Scale)
	if err != nil {
		return nil, err
	}
	enc, _, err := encoder.EncodeAuto(p.LFSRSize, p.Width, p.Chains, L, set)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s L=%d: %w", circuit, L, err)
	}
	s.mu.Lock()
	s.encs[encKey{circuit, L}] = enc
	s.mu.Unlock()
	return enc, nil
}

// Index returns the (cached) vector-level embedding index of one encoding.
func (s *Session) Index(circuit string, L int) (*stateskip.VecEmbeddings, error) {
	s.mu.Lock()
	if idx, ok := s.idxs[encKey{circuit, L}]; ok {
		s.mu.Unlock()
		return idx, nil
	}
	s.mu.Unlock()
	enc, err := s.Encoding(circuit, L)
	if err != nil {
		return nil, err
	}
	idx := stateskip.ScanEmbeddings(enc)
	s.mu.Lock()
	s.idxs[encKey{circuit, L}] = idx
	s.mu.Unlock()
	return idx, nil
}

// Reduce runs useful-segment selection for a cached encoding, reusing the
// cached embedding index.
func (s *Session) Reduce(circuit string, L, S, k int) (*stateskip.Reduction, error) {
	enc, err := s.Encoding(circuit, L)
	if err != nil {
		return nil, err
	}
	idx, err := s.Index(circuit, L)
	if err != nil {
		return nil, err
	}
	return stateskip.ReduceWithIndex(enc, idx, stateskip.DefaultOptions(S, k))
}

// BestReduction tries every (S, k) combination and returns the reduction
// with the shortest TSL — the "best results for the various values of S, k"
// selection of the paper's Table 2.
func (s *Session) BestReduction(circuit string, L int, Ss, Ks []int) (*stateskip.Reduction, error) {
	var best *stateskip.Reduction
	for _, S := range Ss {
		if S > L {
			continue
		}
		for _, k := range Ks {
			red, err := s.Reduce(circuit, L, S, k)
			if err != nil {
				return nil, err
			}
			if best == nil || red.TSL() < best.TSL() {
				best = red
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no feasible (S,k) for %s L=%d", circuit, L)
	}
	return best, nil
}
