// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 4). Each driver returns structured rows plus
// a Markdown rendering; cmd/stateskip and the repository-level benchmarks
// are thin wrappers around these drivers.
//
// The experiment index lives in ARCHITECTURE.md §④; measured-vs-paper values are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/cube"
	"repro/internal/encoder"
	"repro/internal/faultsim"
	"repro/internal/lru"
	"repro/internal/netlist"
	"repro/internal/stateskip"
)

// Params collects the sweep parameters of the evaluation. PaperParams
// matches the paper exactly; CIParams shrinks window sizes so the whole
// suite runs in seconds.
type Params struct {
	Table1Ls []int // window lengths of Table 1 (first entry must be 1)

	Table2Ls []int // window lengths of Table 2
	Table2Ss []int // segment sizes tried for Table 2 ("best of")
	Table2Ks []int // speedup factors tried for Table 2

	Fig4BarL    int   // window length for the S-sweep bars
	Fig4BarSs   []int // segment sizes of the bars
	Fig4CurveS  int   // segment size of the L-sweep curves
	Fig4CurveLs []int // window lengths of the curves
	Fig4Ks      []int // speedup factors of both sweeps

	Table3L     int // window length for the embedding comparison
	Table4PropL int // window length of the proposed column in Table 4
}

// PaperParams are the exact parameters of the paper's Section 4.
func PaperParams() Params {
	return Params{
		Table1Ls:    []int{1, 50, 200, 500},
		Table2Ls:    []int{50, 200, 500},
		Table2Ss:    []int{2, 5, 10},
		Table2Ks:    []int{5, 8, 12, 16, 20, 24},
		Fig4BarL:    300,
		Fig4BarSs:   []int{4, 10, 12, 20},
		Fig4CurveS:  5,
		Fig4CurveLs: []int{50, 100, 300, 500},
		Fig4Ks:      []int{3, 6, 9, 12, 15, 18, 21, 24},
		Table3L:     300,
		Table4PropL: 200,
	}
}

// CIParams shrink every sweep for fast tests and default benchmarks while
// keeping all qualitative behaviours (windows ≫ segments ≫ 1, k up to 24).
func CIParams() Params {
	return Params{
		Table1Ls:    []int{1, 8, 16, 32},
		Table2Ls:    []int{8, 16, 32},
		Table2Ss:    []int{2, 4, 8},
		Table2Ks:    []int{5, 12, 24},
		Fig4BarL:    24,
		Fig4BarSs:   []int{2, 4, 6},
		Fig4CurveS:  4,
		Fig4CurveLs: []int{8, 16, 24, 32},
		Fig4Ks:      []int{3, 6, 12, 24},
		Table3L:     24,
		Table4PropL: 16,
	}
}

// ParamsFor returns the parameter set for a scale.
func ParamsFor(scale benchprofile.Scale) Params {
	if scale == benchprofile.ScalePaper {
		return PaperParams()
	}
	return CIParams()
}

// Session caches the expensive artefacts (generated cube sets and
// encodings) across experiments, since Table 1/2/4 and Fig. 4 reuse the
// same (circuit, L) encodings. The table and figure drivers run their
// independent cells on a worker pool (see Workers); the caches are
// per-key memoized so concurrent drivers never compute an artefact twice.
type Session struct {
	Scale  benchprofile.Scale
	Params Params

	// Workers bounds the concurrency of the table/figure drivers and is
	// forwarded to the encoder's candidate scan and the embedding scan, so
	// 1 runs strictly serially. 0 or negative lets every layer use all
	// CPUs. The rendered tables are identical for any value.
	Workers int

	// LaneWords is the session's default fault-simulator lane width for
	// ATPG fault dropping (atpg.Options.LaneWords): 64×LaneWords patterns
	// per drop sweep, 0 = the single-word engine. It is injected only when
	// the caller's options leave LaneWords unset, so per-call overrides
	// (the bench harness sweeping the lane axis) win over the session
	// default. Results are bit-identical for any value.
	LaneWords int

	// EncTables memoizes the encoder's shared symbolic tables per
	// decompressor configuration (LFSR size, geometry, window length and
	// phase-shifter variant), so every phase-shifter variant tried across
	// the session's sweep pays for its symbolic simulation at most once —
	// the encoding-side analogue of the ATPG Tables cache below.
	EncTables *encoder.TablesCache

	// Ctx optionally scopes the session's no-context convenience methods
	// (Set, Encoding, Index, Tables, ATPG, parallelFor): when non-nil its
	// cancellation aborts artefact builds and engine runs exactly as the
	// explicit *Ctx variants do. cmd/stateskip's SIGINT handling rides
	// this. Per-job callers (the stateskipd server) should pass explicit
	// contexts to the *Ctx methods instead.
	Ctx context.Context

	mu   sync.Mutex
	sets *lru.Cache[string, *memo[*cube.Set]]                // guarded by mu
	encs *lru.Cache[encKey, *memo[*encoder.Encoding]]        // guarded by mu
	idxs *lru.Cache[encKey, *memo[*stateskip.VecEmbeddings]] // guarded by mu
	tabs *lru.Cache[*netlist.Netlist, *memo[*atpg.Tables]]   // guarded by mu

	// stats counts artefact builds and cache hits; see Stats.
	stats struct {
		setBuilds, encBuilds, idxBuilds, tabBuilds atomic.Int64
		hits                                       atomic.Int64
		setNS, encNS, idxNS, tabNS                 atomic.Int64
	}
}

// SessionStats is a point-in-time snapshot of a session's artefact-cache
// activity, for the daemon's /metrics endpoint and the singleflight tests.
type SessionStats struct {
	// SetBuilds..TableBuilds count computations of each artefact kind —
	// under singleflight, concurrent identical requests bump these once.
	SetBuilds, EncodingBuilds, IndexBuilds, TableBuilds int64
	// Hits counts requests served from an existing memo slot.
	Hits int64
	// Evictions counts memo slots dropped by the MaxCached LRU bound.
	Evictions int64
	// Cached is the current number of live memo slots across all maps.
	Cached int

	// SetBuildNS..TableBuildNS accumulate the wall time (nanoseconds)
	// spent building each artefact kind — the per-stage timings the bench
	// harness (internal/benchrun) snapshots into BENCH_*.json. A stage's
	// figure includes the artefacts it builds transitively: an Encoding
	// build that had to build its cube Set first reports the Set time in
	// both SetBuildNS and EncodingBuildNS. Wall clock feeds metrics only;
	// it never influences pipeline output.
	SetBuildNS, EncodingBuildNS, IndexBuildNS, TableBuildNS int64
}

// Stats snapshots the session's cache counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	ev := s.sets.Evictions() + s.encs.Evictions() + s.idxs.Evictions() + s.tabs.Evictions()
	n := s.sets.Len() + s.encs.Len() + s.idxs.Len() + s.tabs.Len()
	s.mu.Unlock()
	return SessionStats{
		SetBuilds:       s.stats.setBuilds.Load(),
		EncodingBuilds:  s.stats.encBuilds.Load(),
		IndexBuilds:     s.stats.idxBuilds.Load(),
		TableBuilds:     s.stats.tabBuilds.Load(),
		Hits:            s.stats.hits.Load(),
		Evictions:       int64(ev),
		Cached:          n,
		SetBuildNS:      s.stats.setNS.Load(),
		EncodingBuildNS: s.stats.encNS.Load(),
		IndexBuildNS:    s.stats.idxNS.Load(),
		TableBuildNS:    s.stats.tabNS.Load(),
	}
}

// SetMaxCached bounds each of the session's memo maps to n entries with
// least-recently-used eviction (n <= 0 = unbounded, the default). Long-
// running multi-tenant deployments set this so a churn of distinct
// circuits cannot grow the caches without bound. Eviction drops the memo
// slot only — an in-flight build keeps running for its waiters; a
// re-request after eviction recomputes.
func (s *Session) SetMaxCached(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets.SetMax(n)
	s.encs.SetMax(n)
	s.idxs.SetMax(n)
	s.tabs.SetMax(n)
}

type encKey struct {
	circuit string
	L       int
}

// memo is a singleflight cache slot: the first goroutine to claim a key
// (the leader) computes it while later ones block on done, so parallel
// drivers requesting the same (circuit, L) artefact share one
// computation. Unlike a sync.Once slot, a leader whose own context fires
// mid-build clears the slot before publishing, so one tenant's cancel
// never poisons the cache for everyone else — the next requester simply
// becomes the new leader.
type memo[V any] struct {
	done chan struct{} // closed by the leader when val/err are final
	val  V
	err  error
}

// isCtxErr reports whether an error is (or wraps) a context cancellation
// or deadline — the errors that must not be cached.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// timed wraps an artefact build so its wall time accumulates into ns —
// the per-stage timings SessionStats exposes for the bench harness. The
// wall-clock read feeds only a duration metric (the time.Since pattern
// the nodetsource analyzer permits) and never influences pipeline output.
func timed[V any](ns *atomic.Int64, compute func() (V, error)) func() (V, error) {
	return func() (V, error) {
		t0 := time.Now()
		v, err := compute()
		ns.Add(int64(time.Since(t0)))
		return v, err
	}
}

// cached returns the memoized value for key k of cache m (guarded by mu),
// computing it at most once across all goroutines. The context governs
// both waiting (a waiter whose ctx fires stops waiting and returns the
// ctx error) and leadership hand-off (a slot whose leader was cancelled
// is retried by the next live requester). builds counts computations;
// hits counts requests served from an existing slot.
func cached[K comparable, V any](ctx context.Context, mu *sync.Mutex, m *lru.Cache[K, *memo[V]], builds, hits *atomic.Int64, k K, compute func() (V, error)) (V, error) {
	var zero V
	for {
		mu.Lock()
		e, ok := m.Get(k)
		if !ok {
			e = &memo[V]{done: make(chan struct{})}
			m.Add(k, e)
			mu.Unlock()
			builds.Add(1)
			e.val, e.err = compute()
			if e.err != nil && isCtxErr(e.err) {
				// The leader was cancelled: clear the slot (if it is still
				// ours — eviction may have raced) before waking waiters, so
				// a later requester recomputes instead of inheriting the
				// cancellation.
				mu.Lock()
				if cur, ok := m.Get(k); ok && cur == e {
					m.Remove(k)
				}
				mu.Unlock()
			}
			close(e.done)
			return e.val, e.err
		}
		mu.Unlock()
		hits.Add(1)
		select {
		case <-e.done:
			if e.err != nil && isCtxErr(e.err) && ctx.Err() == nil {
				continue // leader cancelled, we are alive: take over
			}
			return e.val, e.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// NewSession creates a session at the given scale with that scale's
// default parameters. Caches start unbounded; see SetMaxCached.
func NewSession(scale benchprofile.Scale) *Session {
	return &Session{
		Scale:     scale,
		Params:    ParamsFor(scale),
		EncTables: encoder.NewTablesCache(),
		sets:      lru.New[string, *memo[*cube.Set]](0),
		encs:      lru.New[encKey, *memo[*encoder.Encoding]](0),
		idxs:      lru.New[encKey, *memo[*stateskip.VecEmbeddings]](0),
		tabs:      lru.New[*netlist.Netlist, *memo[*atpg.Tables]](0),
	}
}

// ctx resolves the session's ambient context for the no-context
// convenience methods.
func (s *Session) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// workerCount resolves the session's worker budget for n independent work
// items.
func (s *Session) workerCount(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(0..n-1) on the session's worker pool and returns the
// lowest-index error, if any. Once an item fails, workers stop claiming new
// indices (in-flight items finish). Callers must write results into
// index-addressed slots so the assembled output is deterministic regardless
// of scheduling.
func (s *Session) parallelFor(n int, fn func(i int) error) error {
	ctx := s.ctx()
	workers := s.workerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Tables returns the (cached) shared ATPG tables of a core — levelization,
// fan-out lists and SCOAP weights, built once per netlist and reused by
// every ATPG run the session performs over it. A core mutated since the
// tables were cached (gates or outputs added) is detected and rebuilt, so
// mutate-then-rerun flows keep working.
func (s *Session) Tables(core *netlist.Netlist) (*atpg.Tables, error) {
	return s.TablesCtx(s.ctx(), core)
}

// TablesCtx is Tables with an explicit context: a cancelled leader's
// build is not cached, and waiters whose context fires stop waiting.
func (s *Session) TablesCtx(ctx context.Context, core *netlist.Netlist) (*atpg.Tables, error) {
	build := timed(&s.stats.tabNS, func() (*atpg.Tables, error) { return atpg.NewTables(core) })
	t, err := cached(ctx, &s.mu, s.tabs, &s.stats.tabBuilds, &s.stats.hits, core, build)
	if err != nil || t.Valid(core) {
		return t, err
	}
	s.mu.Lock()
	s.tabs.Remove(core)
	s.mu.Unlock()
	return cached(ctx, &s.mu, s.tabs, &s.stats.tabBuilds, &s.stats.hits, core, build)
}

// ATPG runs the full PODEM + fault-drop flow over a gate-level core with
// the session's Workers budget forwarded into atpg.Options, so the cube
// generation pipeline, the drop-loop simulator pool and the experiment
// drivers all share one knob. cmd/stateskip's `atpg` subcommand goes
// through here. Results are bit-identical for any Workers value.
func (s *Session) ATPG(core *netlist.Netlist, fillSeed uint64) (*faultsim.Universe, *atpg.Result, error) {
	return s.ATPGOpts(core, atpg.Options{FaultDrop: true, FillSeed: fillSeed})
}

// ATPGOpts is ATPG with caller-controlled options (backtrack limit,
// backtrace strategy, fault dropping, fill seed). The session injects its
// Workers budget and the cached shared Tables of the core, so repeated
// runs over one netlist pay levelization and SCOAP once; everything else —
// including Options.Backtrace, which cmd/stateskip's `atpg -backtrace`
// flag rides through here — passes straight to atpg.RunAll.
func (s *Session) ATPGOpts(core *netlist.Netlist, opt atpg.Options) (*faultsim.Universe, *atpg.Result, error) {
	return s.ATPGOptsCtx(s.ctx(), core, opt)
}

// ATPGOptsCtx is ATPGOpts with cooperative cancellation threaded into the
// PODEM pipeline and the fault-drop simulator pool (see atpg.RunAllCtx).
// On cancellation or deadline it returns the universe and the partial
// Result alongside the typed context error, so callers can report
// progress made before the stop.
func (s *Session) ATPGOptsCtx(ctx context.Context, core *netlist.Netlist, opt atpg.Options) (*faultsim.Universe, *atpg.Result, error) {
	t, err := s.TablesCtx(ctx, core)
	if err != nil {
		return nil, nil, err
	}
	opt.Workers = s.Workers
	if opt.LaneWords == 0 {
		opt.LaneWords = s.LaneWords
	}
	opt.Tables = t
	u := faultsim.NewUniverse(core)
	res, err := atpg.RunAllCtx(ctx, u, opt)
	if err != nil {
		return u, res, err // res is the partial progress on a ctx error, nil otherwise
	}
	return u, res, nil
}

// Set returns the (cached) synthetic cube set of one circuit.
func (s *Session) Set(circuit string) (*cube.Set, error) {
	return s.SetCtx(s.ctx(), circuit)
}

// SetCtx is Set with an explicit context scoping the singleflight build.
func (s *Session) SetCtx(ctx context.Context, circuit string) (*cube.Set, error) {
	return cached(ctx, &s.mu, s.sets, &s.stats.setBuilds, &s.stats.hits, circuit, timed(&s.stats.setNS, func() (*cube.Set, error) {
		p, err := benchprofile.ByName(circuit, s.Scale)
		if err != nil {
			return nil, err
		}
		return p.Generate(), nil
	}))
}

// Encoding returns the (cached) window encoding of one circuit at window
// length L.
func (s *Session) Encoding(circuit string, L int) (*encoder.Encoding, error) {
	return s.EncodingCtx(s.ctx(), circuit, L)
}

// EncodingCtx is Encoding with cooperative cancellation threaded into the
// encoder's candidate scan (see encoder.EncodeCtx). The leader's context
// governs the build; a cancelled build is not cached.
func (s *Session) EncodingCtx(ctx context.Context, circuit string, L int) (*encoder.Encoding, error) {
	return cached(ctx, &s.mu, s.encs, &s.stats.encBuilds, &s.stats.hits, encKey{circuit, L}, timed(&s.stats.encNS, func() (*encoder.Encoding, error) {
		set, err := s.SetCtx(ctx, circuit)
		if err != nil {
			return nil, err
		}
		p, err := benchprofile.ByName(circuit, s.Scale)
		if err != nil {
			return nil, err
		}
		enc, _, err := encoder.EncodeAutoCtx(ctx, p.LFSRSize, p.Width, p.Chains, L, set, s.Workers, s.EncTables)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s L=%d: %w", circuit, L, err)
		}
		return enc, nil
	}))
}

// Index returns the (cached) vector-level embedding index of one encoding.
func (s *Session) Index(circuit string, L int) (*stateskip.VecEmbeddings, error) {
	return s.IndexCtx(s.ctx(), circuit, L)
}

// IndexCtx is Index with an explicit context scoping the singleflight
// build and the encoding it depends on.
func (s *Session) IndexCtx(ctx context.Context, circuit string, L int) (*stateskip.VecEmbeddings, error) {
	return cached(ctx, &s.mu, s.idxs, &s.stats.idxBuilds, &s.stats.hits, encKey{circuit, L}, timed(&s.stats.idxNS, func() (*stateskip.VecEmbeddings, error) {
		enc, err := s.EncodingCtx(ctx, circuit, L)
		if err != nil {
			return nil, err
		}
		return stateskip.ScanEmbeddingsWorkers(enc, s.Workers), nil
	}))
}

// Reduce runs useful-segment selection for a cached encoding, reusing the
// cached embedding index.
func (s *Session) Reduce(circuit string, L, S, k int) (*stateskip.Reduction, error) {
	enc, err := s.Encoding(circuit, L)
	if err != nil {
		return nil, err
	}
	idx, err := s.Index(circuit, L)
	if err != nil {
		return nil, err
	}
	opt := stateskip.DefaultOptions(S, k)
	opt.Workers = s.Workers
	return stateskip.ReduceWithIndex(enc, idx, opt)
}

// BestReduction tries every (S, k) combination and returns the reduction
// with the shortest TSL — the "best results for the various values of S, k"
// selection of the paper's Table 2.
func (s *Session) BestReduction(circuit string, L int, Ss, Ks []int) (*stateskip.Reduction, error) {
	var best *stateskip.Reduction
	for _, S := range Ss {
		if S > L {
			continue
		}
		for _, k := range Ks {
			red, err := s.Reduce(circuit, L, S, k)
			if err != nil {
				return nil, err
			}
			if best == nil || red.TSL() < best.TSL() {
				best = red
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no feasible (S,k) for %s L=%d", circuit, L)
	}
	return best, nil
}
