// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 4). Each driver returns structured rows plus
// a Markdown rendering; cmd/stateskip and the repository-level benchmarks
// are thin wrappers around these drivers.
//
// The experiment index lives in ARCHITECTURE.md §④; measured-vs-paper values are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/cube"
	"repro/internal/encoder"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/stateskip"
)

// Params collects the sweep parameters of the evaluation. PaperParams
// matches the paper exactly; CIParams shrinks window sizes so the whole
// suite runs in seconds.
type Params struct {
	Table1Ls []int // window lengths of Table 1 (first entry must be 1)

	Table2Ls []int // window lengths of Table 2
	Table2Ss []int // segment sizes tried for Table 2 ("best of")
	Table2Ks []int // speedup factors tried for Table 2

	Fig4BarL    int   // window length for the S-sweep bars
	Fig4BarSs   []int // segment sizes of the bars
	Fig4CurveS  int   // segment size of the L-sweep curves
	Fig4CurveLs []int // window lengths of the curves
	Fig4Ks      []int // speedup factors of both sweeps

	Table3L     int // window length for the embedding comparison
	Table4PropL int // window length of the proposed column in Table 4
}

// PaperParams are the exact parameters of the paper's Section 4.
func PaperParams() Params {
	return Params{
		Table1Ls:    []int{1, 50, 200, 500},
		Table2Ls:    []int{50, 200, 500},
		Table2Ss:    []int{2, 5, 10},
		Table2Ks:    []int{5, 8, 12, 16, 20, 24},
		Fig4BarL:    300,
		Fig4BarSs:   []int{4, 10, 12, 20},
		Fig4CurveS:  5,
		Fig4CurveLs: []int{50, 100, 300, 500},
		Fig4Ks:      []int{3, 6, 9, 12, 15, 18, 21, 24},
		Table3L:     300,
		Table4PropL: 200,
	}
}

// CIParams shrink every sweep for fast tests and default benchmarks while
// keeping all qualitative behaviours (windows ≫ segments ≫ 1, k up to 24).
func CIParams() Params {
	return Params{
		Table1Ls:    []int{1, 8, 16, 32},
		Table2Ls:    []int{8, 16, 32},
		Table2Ss:    []int{2, 4, 8},
		Table2Ks:    []int{5, 12, 24},
		Fig4BarL:    24,
		Fig4BarSs:   []int{2, 4, 6},
		Fig4CurveS:  4,
		Fig4CurveLs: []int{8, 16, 24, 32},
		Fig4Ks:      []int{3, 6, 12, 24},
		Table3L:     24,
		Table4PropL: 16,
	}
}

// ParamsFor returns the parameter set for a scale.
func ParamsFor(scale benchprofile.Scale) Params {
	if scale == benchprofile.ScalePaper {
		return PaperParams()
	}
	return CIParams()
}

// Session caches the expensive artefacts (generated cube sets and
// encodings) across experiments, since Table 1/2/4 and Fig. 4 reuse the
// same (circuit, L) encodings. The table and figure drivers run their
// independent cells on a worker pool (see Workers); the caches are
// per-key memoized so concurrent drivers never compute an artefact twice.
type Session struct {
	Scale  benchprofile.Scale
	Params Params

	// Workers bounds the concurrency of the table/figure drivers and is
	// forwarded to the encoder's candidate scan and the embedding scan, so
	// 1 runs strictly serially. 0 or negative lets every layer use all
	// CPUs. The rendered tables are identical for any value.
	Workers int

	// EncTables memoizes the encoder's shared symbolic tables per
	// decompressor configuration (LFSR size, geometry, window length and
	// phase-shifter variant), so every phase-shifter variant tried across
	// the session's sweep pays for its symbolic simulation at most once —
	// the encoding-side analogue of the ATPG Tables cache below.
	EncTables *encoder.TablesCache

	mu   sync.Mutex
	sets map[string]*memo[*cube.Set]                // guarded by mu
	encs map[encKey]*memo[*encoder.Encoding]        // guarded by mu
	idxs map[encKey]*memo[*stateskip.VecEmbeddings] // guarded by mu
	tabs map[*netlist.Netlist]*memo[*atpg.Tables]   // guarded by mu
}

type encKey struct {
	circuit string
	L       int
}

// memo is a once-guarded cache slot: the first goroutine to claim a key
// computes it while later ones block on the same slot, so parallel drivers
// requesting the same (circuit, L) artefact share one computation.
type memo[V any] struct {
	once sync.Once
	val  V
	err  error
}

// cached returns the memoized value for key k of map m (guarded by mu),
// computing it at most once across all goroutines.
func cached[K comparable, V any](mu *sync.Mutex, m map[K]*memo[V], k K, compute func() (V, error)) (V, error) {
	mu.Lock()
	e, ok := m[k]
	if !ok {
		e = &memo[V]{}
		m[k] = e
	}
	mu.Unlock()
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// NewSession creates a session at the given scale with that scale's
// default parameters.
func NewSession(scale benchprofile.Scale) *Session {
	return &Session{
		Scale:     scale,
		Params:    ParamsFor(scale),
		EncTables: encoder.NewTablesCache(),
		sets:      make(map[string]*memo[*cube.Set]),
		encs:      make(map[encKey]*memo[*encoder.Encoding]),
		idxs:      make(map[encKey]*memo[*stateskip.VecEmbeddings]),
		tabs:      make(map[*netlist.Netlist]*memo[*atpg.Tables]),
	}
}

// workerCount resolves the session's worker budget for n independent work
// items.
func (s *Session) workerCount(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(0..n-1) on the session's worker pool and returns the
// lowest-index error, if any. Once an item fails, workers stop claiming new
// indices (in-flight items finish). Callers must write results into
// index-addressed slots so the assembled output is deterministic regardless
// of scheduling.
func (s *Session) parallelFor(n int, fn func(i int) error) error {
	workers := s.workerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Tables returns the (cached) shared ATPG tables of a core — levelization,
// fan-out lists and SCOAP weights, built once per netlist and reused by
// every ATPG run the session performs over it. A core mutated since the
// tables were cached (gates or outputs added) is detected and rebuilt, so
// mutate-then-rerun flows keep working.
func (s *Session) Tables(core *netlist.Netlist) (*atpg.Tables, error) {
	build := func() (*atpg.Tables, error) { return atpg.NewTables(core) }
	t, err := cached(&s.mu, s.tabs, core, build)
	if err != nil || t.Valid(core) {
		return t, err
	}
	s.mu.Lock()
	delete(s.tabs, core)
	s.mu.Unlock()
	return cached(&s.mu, s.tabs, core, build)
}

// ATPG runs the full PODEM + fault-drop flow over a gate-level core with
// the session's Workers budget forwarded into atpg.Options, so the cube
// generation pipeline, the drop-loop simulator pool and the experiment
// drivers all share one knob. cmd/stateskip's `atpg` subcommand goes
// through here. Results are bit-identical for any Workers value.
func (s *Session) ATPG(core *netlist.Netlist, fillSeed uint64) (*faultsim.Universe, *atpg.Result, error) {
	return s.ATPGOpts(core, atpg.Options{FaultDrop: true, FillSeed: fillSeed})
}

// ATPGOpts is ATPG with caller-controlled options (backtrack limit,
// backtrace strategy, fault dropping, fill seed). The session injects its
// Workers budget and the cached shared Tables of the core, so repeated
// runs over one netlist pay levelization and SCOAP once; everything else —
// including Options.Backtrace, which cmd/stateskip's `atpg -backtrace`
// flag rides through here — passes straight to atpg.RunAll.
func (s *Session) ATPGOpts(core *netlist.Netlist, opt atpg.Options) (*faultsim.Universe, *atpg.Result, error) {
	t, err := s.Tables(core)
	if err != nil {
		return nil, nil, err
	}
	opt.Workers = s.Workers
	opt.Tables = t
	u := faultsim.NewUniverse(core)
	res, err := atpg.RunAll(u, opt)
	if err != nil {
		return nil, nil, err
	}
	return u, res, nil
}

// Set returns the (cached) synthetic cube set of one circuit.
func (s *Session) Set(circuit string) (*cube.Set, error) {
	return cached(&s.mu, s.sets, circuit, func() (*cube.Set, error) {
		p, err := benchprofile.ByName(circuit, s.Scale)
		if err != nil {
			return nil, err
		}
		return p.Generate(), nil
	})
}

// Encoding returns the (cached) window encoding of one circuit at window
// length L.
func (s *Session) Encoding(circuit string, L int) (*encoder.Encoding, error) {
	return cached(&s.mu, s.encs, encKey{circuit, L}, func() (*encoder.Encoding, error) {
		set, err := s.Set(circuit)
		if err != nil {
			return nil, err
		}
		p, err := benchprofile.ByName(circuit, s.Scale)
		if err != nil {
			return nil, err
		}
		enc, _, err := encoder.EncodeAutoCached(p.LFSRSize, p.Width, p.Chains, L, set, s.Workers, s.EncTables)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s L=%d: %w", circuit, L, err)
		}
		return enc, nil
	})
}

// Index returns the (cached) vector-level embedding index of one encoding.
func (s *Session) Index(circuit string, L int) (*stateskip.VecEmbeddings, error) {
	return cached(&s.mu, s.idxs, encKey{circuit, L}, func() (*stateskip.VecEmbeddings, error) {
		enc, err := s.Encoding(circuit, L)
		if err != nil {
			return nil, err
		}
		return stateskip.ScanEmbeddingsWorkers(enc, s.Workers), nil
	})
}

// Reduce runs useful-segment selection for a cached encoding, reusing the
// cached embedding index.
func (s *Session) Reduce(circuit string, L, S, k int) (*stateskip.Reduction, error) {
	enc, err := s.Encoding(circuit, L)
	if err != nil {
		return nil, err
	}
	idx, err := s.Index(circuit, L)
	if err != nil {
		return nil, err
	}
	opt := stateskip.DefaultOptions(S, k)
	opt.Workers = s.Workers
	return stateskip.ReduceWithIndex(enc, idx, opt)
}

// BestReduction tries every (S, k) combination and returns the reduction
// with the shortest TSL — the "best results for the various values of S, k"
// selection of the paper's Table 2.
func (s *Session) BestReduction(circuit string, L int, Ss, Ks []int) (*stateskip.Reduction, error) {
	var best *stateskip.Reduction
	for _, S := range Ss {
		if S > L {
			continue
		}
		for _, k := range Ks {
			red, err := s.Reduce(circuit, L, S, k)
			if err != nil {
				return nil, err
			}
			if best == nil || red.TSL() < best.TSL() {
				best = red
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no feasible (S,k) for %s L=%d", circuit, L)
	}
	return best, nil
}
