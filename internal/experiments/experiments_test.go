package experiments

import (
	"strings"
	"testing"

	"repro/internal/benchprofile"
	"repro/internal/litdata"
	"repro/internal/netlist"
)

func ciSession() *Session { return NewSession(benchprofile.ScaleCI) }

func TestTable1Trends(t *testing.T) {
	s := ciSession()
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		// The paper's Table 1 story: TDV falls and TSL rises with L. Dense,
		// rank-bound sets (s38417) gain almost nothing from windows, so a
		// couple of seeds of phase-shifter-variant noise is tolerated.
		for i := 1; i < len(row.Cells); i++ {
			slack := 3 * row.LFSRSize
			if row.Cells[i].TDV > row.Cells[i-1].TDV+slack {
				t.Errorf("%s: TDV rose from L=%d (%d) to L=%d (%d)", row.Circuit,
					row.Cells[i-1].L, row.Cells[i-1].TDV, row.Cells[i].L, row.Cells[i].TDV)
			}
			if row.Cells[i].TSL <= row.Cells[i-1].TSL {
				t.Errorf("%s: TSL did not grow with L", row.Circuit)
			}
		}
	}
	md := s.Table1Markdown(rows)
	if !strings.Contains(md, "s13207") {
		t.Error("markdown missing circuit name")
	}
}

func TestTable2Improvements(t *testing.T) {
	s := ciSession()
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		for _, c := range row.Cells {
			if c.Prop >= c.Orig {
				t.Errorf("%s L=%d: no improvement (%d vs %d)", row.Circuit, c.L, c.Prop, c.Orig)
			}
			if c.Impr <= 0 || c.Impr >= 1 {
				t.Errorf("%s L=%d: improvement %.2f out of range", row.Circuit, c.L, c.Impr)
			}
		}
		// Larger windows leave more useless vectors to skip, so the
		// improvement should not decrease with L.
		last := row.Cells[len(row.Cells)-1]
		first := row.Cells[0]
		if last.Impr < first.Impr-0.05 {
			t.Errorf("%s: improvement fell with L: %.2f -> %.2f", row.Circuit, first.Impr, last.Impr)
		}
	}
	_ = s.Table2Markdown(rows)
}

func TestFig4Trends(t *testing.T) {
	s := ciSession()
	bars, curves, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Improvement grows (weakly) with k within every series.
	for _, serie := range append(append([]Fig4Series{}, bars...), curves...) {
		first := serie.Points[0].Impr
		last := serie.Points[len(serie.Points)-1].Impr
		if last < first {
			t.Errorf("%s: improvement fell with k: %.2f -> %.2f", serie.Label, first, last)
		}
	}
	// Smaller S gives at least as good improvement at max k (paper's bars).
	if len(bars) >= 2 {
		smallest := bars[0].Points[len(bars[0].Points)-1].Impr
		largest := bars[len(bars)-1].Points[len(bars[len(bars)-1].Points)-1].Impr
		if smallest+0.02 < largest {
			t.Errorf("smallest S (%.2f) clearly worse than largest S (%.2f) at max k", smallest, largest)
		}
	}
	// Larger L gives better improvement at max k (paper's curves).
	if len(curves) >= 2 {
		first := curves[0].Points[len(curves[0].Points)-1].Impr
		last := curves[len(curves)-1].Points[len(curves[len(curves)-1].Points)-1].Impr
		if last < first {
			t.Errorf("improvement did not grow with L: %.2f -> %.2f", first, last)
		}
	}
	_ = s.Fig4Markdown(bars, curves)
}

func TestTable3Shape(t *testing.T) {
	s := ciSession()
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PropTSL <= 0 || r.PropTDV <= 0 {
			t.Errorf("%s: non-positive prop numbers", r.Circuit)
		}
		// The paper's headline: the proposed TSL beats [22]'s by a lot
		// ([22]'s sequences are hundreds of thousands of vectors).
		if float64(r.PropTSL) > 0.5*float64(r.Lit22.TSL) {
			t.Errorf("%s: prop TSL %d not clearly below [22]'s %d", r.Circuit, r.PropTSL, r.Lit22.TSL)
		}
	}
	_ = s.Table3Markdown(rows)
}

func TestTable4Shape(t *testing.T) {
	s := ciSession()
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Embedding stores less data than classical reseeding…
		if r.PropTDV > r.ClassicalTDV {
			t.Errorf("%s: prop TDV %d above classical %d", r.Circuit, r.PropTDV, r.ClassicalTDV)
		}
		// …at the cost of a longer sequence.
		if r.PropTSL < r.ClassicalTSL {
			t.Errorf("%s: prop TSL %d below classical %d (suspicious)", r.Circuit, r.PropTSL, r.ClassicalTSL)
		}
	}
	_ = s.Table4Markdown(rows)
}

func TestHWOverheadAndSoC(t *testing.T) {
	s := ciSession()
	rep, err := s.HWOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SkipSweep) == 0 {
		t.Fatal("empty skip sweep")
	}
	for _, p := range rep.SkipSweep {
		if p.CSEGE > p.NaiveGE {
			t.Errorf("k=%d: CSE worse than naive", p.K)
		}
	}
	if rep.ModeSelectMin <= 0 || rep.ModeSelectMax < rep.ModeSelectMin {
		t.Errorf("mode select range [%f,%f] invalid", rep.ModeSelectMin, rep.ModeSelectMax)
	}
	_ = s.HWMarkdown(rep)

	soc, err := s.SoC()
	if err != nil {
		t.Fatal(err)
	}
	if len(soc.Cores) != 5 {
		t.Fatalf("SoC has %d cores", len(soc.Cores))
	}
	if soc.AreaPercent <= 0 || soc.AreaPercent > 50 {
		t.Errorf("SoC area percent %.1f implausible", soc.AreaPercent)
	}
	_ = s.SoCMarkdown(soc)
}

func TestSessionCaching(t *testing.T) {
	s := ciSession()
	a, err := s.Encoding("s9234", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Encoding("s9234", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("encoding not cached")
	}
	ia, _ := s.Index("s9234", 8)
	ib, _ := s.Index("s9234", 8)
	if ia != ib {
		t.Error("index not cached")
	}
}

func TestSessionATPGWorkersIdentical(t *testing.T) {
	core, err := netlist.Random(netlist.RandomConfig{Inputs: 20, Outputs: 8, Gates: 100, MaxFan: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial := ciSession()
	serial.Workers = 1
	_, want, err := serial.ATPG(core, 11)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cubes.Len() == 0 {
		t.Fatal("no cubes generated")
	}
	par := ciSession()
	par.Workers = 3
	_, got, err := par.ATPG(core, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cubes.Len() != want.Cubes.Len() || got.Coverage != want.Coverage ||
		len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("workers=3: %d cubes / %d patterns / cov %v, serial %d / %d / %v",
			got.Cubes.Len(), len(got.Patterns), got.Coverage,
			want.Cubes.Len(), len(want.Patterns), want.Coverage)
	}
	for i := range want.Cubes.Cubes {
		if got.Cubes.Cubes[i].String() != want.Cubes.Cubes[i].String() {
			t.Fatalf("cube %d differs between worker counts", i)
		}
	}
}

func TestLitdataConsistency(t *testing.T) {
	// The paper's own tables must be mutually consistent: Table 4's
	// classical column equals Table 1's L=1 column, and the prop column
	// equals Table 2's L=200 Prop with Table 1's L=200 TDV.
	for _, c := range litdata.Circuits {
		t1 := litdata.Table1[c][1]
		t4 := litdata.Table4Prop[c]
		if t4.ClassicalTDV != t1.TDV || t4.ClassicalTSL != t1.TSL {
			t.Errorf("%s: Table 4 classical (%d,%d) != Table 1 L=1 (%d,%d)", c, t4.ClassicalTDV, t4.ClassicalTSL, t1.TDV, t1.TSL)
		}
		t2 := litdata.Table2[c][200]
		if t4.PropTSL != t2.Prop {
			t.Errorf("%s: Table 4 prop TSL %d != Table 2 L=200 prop %d", c, t4.PropTSL, t2.Prop)
		}
		t1200 := litdata.Table1[c][200]
		if t4.PropTDV != t1200.TDV {
			t.Errorf("%s: Table 4 prop TDV %d != Table 1 L=200 TDV %d", c, t4.PropTDV, t1200.TDV)
		}
		if t2.Orig != t1200.TSL {
			t.Errorf("%s: Table 2 orig %d != Table 1 L=200 TSL %d", c, t2.Orig, t1200.TSL)
		}
	}
}

// TestSessionTablesRebuiltAfterMutation guards the Tables cache's
// staleness handling: mutating a core between ATPG runs must transparently
// rebuild the cached tables instead of failing RunAll's validity check.
func TestSessionTablesRebuiltAfterMutation(t *testing.T) {
	s := ciSession()
	core, err := netlist.Random(netlist.RandomConfig{Inputs: 12, Outputs: 4, Gates: 40, MaxFan: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.Tables(core)
	if err != nil {
		t.Fatal(err)
	}
	if t2, err := s.Tables(core); err != nil || t2 != t1 {
		t.Fatalf("unmutated core: cached tables not reused (%p vs %p, err %v)", t2, t1, err)
	}
	if _, err := core.AddGate("extra", netlist.And, "pi0", "pi1"); err != nil {
		t.Fatal(err)
	}
	if err := core.MarkOutput("extra"); err != nil {
		t.Fatal(err)
	}
	t3, err := s.Tables(core)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 || !t3.Valid(core) {
		t.Fatal("mutated core: stale tables served from the cache")
	}
	if _, _, err := s.ATPG(core, 1); err != nil {
		t.Fatalf("ATPG after mutation: %v", err)
	}
}
