package atpg

// FAN/SOCRATES-style multiple backtrace. The classic PODEM backtrace
// (atpg.go) serves exactly one objective per decision: it walks a single
// (gate, value) requirement down the cheapest-controllability path and
// assigns whatever primary input it lands on, blind to every other
// justification and propagation goal alive at that moment. Fujiwara's FAN
// (1983) and Schulz's SOCRATES (1988) showed that tracing *all* current
// objectives simultaneously — accumulating weighted 0/1 demand counts
// ("votes") gate by gate from the D-frontier and the justification targets
// down to the decision points — makes conflicts visible before they are
// committed to, and picks decision values that serve the majority of the
// objective set instead of one member of it.
//
// This file adapts that idea to the PODEM skeleton kept by this package
// (decisions at primary inputs only, chronological backtracking, the same
// event-driven implication engine):
//
//   - multiDecision seeds one weighted objective set per decision — the
//     activation requirement while the fault site is unjustified, then one
//     non-controlling-value requirement per X side-input of every live
//     D-frontier gate — and propagates it level by level down the X-valued
//     network in a single sweep over the shared Tables levelization. A
//     requirement for a gate's controlling value follows only the
//     cheapest-SCOAP fan-in (it takes one input to win); a requirement for
//     the non-controlling value fans out to every X fan-in (it needs them
//     all). Primary inputs accumulate the surviving votes and the most
//     contended input is assigned its majority value.
//
//   - forcedConflict is the early conflict detector: starting from a set of
//     requirements that every extension of the current assignment must
//     satisfy, it follows only *forced* steps (all fan-ins of a
//     non-controlling requirement; a controlling requirement with exactly
//     one X fan-in left) and reports when two forced chains demand opposite
//     values of the same gate. Such a clash proves the objective set
//     unsatisfiable under the current assignment, so the engine backtracks
//     immediately instead of burning decisions (and their implications)
//     discovering the same dead end bottom-up.
//
// Correctness note: votes are pure heuristics — any (input, value) choice
// keeps PODEM complete — but conflict pruning must be *sound*, since it
// turns "try more decisions" into "backtrack now" and ultimately into
// untestability proofs. Forced chains walk good values only (good-value
// justification is fault-independent), and frontier side-input requirements
// are only imposed on fan-ins outside the fault cone, where the faulty
// circuit provably equals the good one and a controlling value kills every
// difference at the gate. TestMultiStatusSound and the extended FuzzGenerate
// cross-check both engines' statuses and verdicts on every fuzzed circuit.

import "repro/internal/netlist"

// Backtrace selects the decision heuristic a Generator uses to turn PODEM
// objectives into primary-input assignments.
type Backtrace int

const (
	// BacktraceSCOAP is the classic single-objective PODEM backtrace: one
	// objective per decision, walked down the cheapest SCOAP
	// controllability path. It is the default and the bit-identity
	// reference the differential tests pin.
	BacktraceSCOAP Backtrace = iota
	// BacktraceMulti is the FAN/SOCRATES-style multiple backtrace: all
	// current objectives are traced at once with controllability-weighted
	// votes, and forced-chain conflicts are detected before implication.
	BacktraceMulti
)

// String names the strategy the way the -backtrace CLI flag spells it.
func (b Backtrace) String() string {
	switch b {
	case BacktraceSCOAP:
		return "scoap"
	case BacktraceMulti:
		return "multi"
	default:
		return "unknown"
	}
}

// ParseBacktrace maps a -backtrace flag value to a strategy.
func ParseBacktrace(s string) (Backtrace, bool) {
	switch s {
	case "scoap", "":
		return BacktraceSCOAP, true
	case "multi":
		return BacktraceMulti, true
	default:
		return 0, false
	}
}

// voteClamp bounds the accumulated demand on one gate. Non-controlling
// requirements fan out to every X fan-in, so raw counts can grow
// exponentially with depth; beyond this magnitude the ranking signal is
// saturated anyway.
const voteClamp = int64(1) << 42

// multiScratch is the lazily allocated per-worker scratch of the multiple
// backtrace: vote counters and their levelized buckets, plus the
// epoch-stamped requirement marks of the forced-chain conflict sweep. It
// costs nothing unless the generator actually runs BacktraceMulti.
type multiScratch struct {
	n0, n1 []int64 // accumulated 0/1 demand per gate
	queued []uint32
	wave   uint32
	levels [][]int // per-level vote buckets, drained top level down

	reqVal   []uint8 // forced requirement per gate, valid when stamped
	reqStamp []uint32
	reqEpoch uint32
	reqStack []int64 // encoded (gate << 1 | value) work list

	// forcedPIs collects the primary inputs reached by the current forced
	// sweep, in discovery order. After an activation sweep these are
	// values every test for the fault must set — free assignments whose
	// opposite branch never needs exploring.
	forcedPIs []int

	// liveBuf is the deepest-first list of frontier gates with an open
	// X-path, rebuilt each propagation decision.
	liveBuf []int
}

// ensureMulti allocates the multiple-backtrace scratch on first use.
func (g *Generator) ensureMulti() {
	if g.mb != nil {
		return
	}
	ng := g.t.net.NumGates()
	g.mb = &multiScratch{
		n0:       make([]int64, ng),
		n1:       make([]int64, ng),
		queued:   make([]uint32, ng),
		levels:   make([][]int, g.t.numLevels),
		reqVal:   make([]uint8, ng),
		reqStamp: make([]uint32, ng),
	}
}

// multiDecision is the BacktraceMulti replacement for the
// objective+backtrace pair: it returns the next primary-input assignment,
// or ok=false when the current assignment is a (possibly conflict-pruned)
// dead end and PODEM must backtrack. forced marks an assignment proven
// necessary for fault activation — its opposite branch is futile and the
// backtracking loop skips it.
func (g *Generator) multiDecision() (piIdx int, piVal uint8, ok, forced bool) {
	g.ensureMulti()
	f := g.fault
	site := f.Gate
	if f.Pin >= 0 {
		site = g.t.net.Gates[f.Gate].Fanin[f.Pin]
	}
	switch g.good[site] {
	case f.Stuck:
		return 0, 0, false, false // activation impossible under current assignment
	case vX:
		// Justification phase: the activation requirement is mandatory for
		// every extension, so a forced-chain clash proves this branch dead
		// before a single implication runs — and any input the chain
		// reaches holds a value every test must set, assignable without a
		// branch point.
		want := f.Stuck ^ 1
		if g.forcedConflict(site, want) {
			return 0, 0, false, false
		}
		if pis := g.mb.forcedPIs; len(pis) > 0 {
			gi := pis[0]
			return g.t.inputIdx[gi], g.mb.reqVal[gi], true, true
		}
		g.beginVotes()
		g.vote(site, want, 1)
		if pi, v, found := g.runVotes(); found {
			return pi, v, true, false
		}
		pi, v, found := g.classicDecision() // defensive: votes always reach an X input
		return pi, v, found, false
	}
	// Propagation phase: the deepest D-frontier gate with an X-path and no
	// provably conflicting side-input requirements carries the dominant
	// objective — the gate the classic engine would commit to, minus the
	// ones conflict analysis can already refute — and *all* of its
	// side-input requirements are traced together (the classic backtrace
	// follows exactly one of them). The other live gates add lightweight
	// votes so ties break toward inputs that serve several propagation
	// paths at once. Blockage is checked deepest-first and stops at the
	// first unblocked gate: that is enough both to pick the dominant
	// objective and to prove the whole-frontier prune (every gate checked
	// blocked) when it fires.
	m := g.mb
	m.liveBuf = m.liveBuf[:0]
	for _, gi := range g.dFrontier() {
		if g.xPathToOutput(gi) {
			m.liveBuf = append(m.liveBuf, gi)
		}
	}
	if len(m.liveBuf) == 0 {
		return 0, 0, false, false // no X-path anywhere: the classic dead end
	}
	// Stable insertion sort, deepest level first: ties keep their
	// topological order, matching the classic objective's first-of-max
	// preference. The frontier is small.
	lv := g.t.level
	for i := 1; i < len(m.liveBuf); i++ {
		for j := i; j > 0 && lv[m.liveBuf[j]] > lv[m.liveBuf[j-1]]; j-- {
			m.liveBuf[j], m.liveBuf[j-1] = m.liveBuf[j-1], m.liveBuf[j]
		}
	}
	best := -1
	for _, gi := range m.liveBuf {
		if !g.frontierBlocked(gi) {
			best = gi
			break
		}
	}
	if best < 0 {
		// Every propagation path is provably blocked under the current
		// assignment: prune the whole subtree without running implication.
		return 0, 0, false, false
	}
	g.beginVotes()
	// The deepest unblocked gate's own requirements dominate the side
	// votes by a margin that survives the fan-out duplication of realistic
	// cones.
	g.voteFrontier(best, 1<<20)
	for _, gi := range m.liveBuf {
		if gi != best {
			g.voteFrontier(gi, 1)
		}
	}
	if pi, v, found := g.runVotes(); found {
		return pi, v, true, false
	}
	// No unblocked frontier gate exposed an X side-input to vote on (the
	// remaining difference rides fault-cone signals only). Defer to the
	// classic single-objective decision so BacktraceMulti is never stuck in
	// a state the reference engine could decide.
	pi, v, found := g.classicDecision()
	return pi, v, found, false
}

// classicDecision is the single-objective reference decision, used by
// multiDecision as a fallback so the multi engine's dead-end calls are
// never a superset of the classic engine's.
func (g *Generator) classicDecision() (piIdx int, piVal uint8, ok bool) {
	objGate, objVal, feasible := g.objective()
	if !feasible {
		return 0, 0, false
	}
	return g.backtrace(objGate, objVal)
}

// beginVotes opens a fresh vote epoch.
func (g *Generator) beginVotes() {
	m := g.mb
	m.wave++
	if m.wave == 0 { // uint32 wrap: every stale stamp would look current
		clear(m.queued)
		m.wave = 1
	}
}

// vote adds w demand for value v on gate gi and schedules it for the
// levelized sweep. Votes on gates already holding a definite value are
// dropped: their objective is either satisfied or hopeless, and neither
// case should steer the decision.
func (g *Generator) vote(gi int, v uint8, w int64) {
	if w <= 0 || g.good[gi] != vX {
		return
	}
	m := g.mb
	if m.queued[gi] != m.wave {
		m.queued[gi] = m.wave
		m.n0[gi], m.n1[gi] = 0, 0
		lv := g.t.level[gi]
		m.levels[lv] = append(m.levels[lv], gi)
	}
	if v == v0 {
		m.n0[gi] += w
		if m.n0[gi] > voteClamp {
			m.n0[gi] = voteClamp
		}
	} else {
		m.n1[gi] += w
		if m.n1[gi] > voteClamp {
			m.n1[gi] = voteClamp
		}
	}
}

// voteFrontier seeds the propagation objectives of one D-frontier gate
// with weight w each: every X fan-in must settle at the gate's
// non-controlling value for the fault difference to pass. XOR-ish gates
// have no controlling value — any definite side value propagates — so
// their side inputs vote for 0, the same arbitrary preference the classic
// objective uses.
func (g *Generator) voteFrontier(gi int, w int64) {
	gate := &g.t.net.Gates[gi]
	nc, hasNC := nonControlling(gate.Type)
	if !hasNC {
		nc = v0
	}
	for _, fi := range gate.Fanin {
		if g.good[fi] == vX {
			g.vote(fi, nc, w)
		}
	}
}

// runVotes drains the vote buckets from the deepest level down to the
// primary inputs, propagating each gate's accumulated demand to its
// fan-ins, and returns the most contended X input with its majority value.
// Fan-ins sit at strictly lower levels than their gates, so every gate is
// processed after all its demand has arrived.
func (g *Generator) runVotes() (piIdx int, piVal uint8, ok bool) {
	m := g.mb
	n := g.t.net
	bestPi, bestTotal := -1, int64(0)
	var bestVal uint8
	for lv := len(m.levels) - 1; lv >= 0; lv-- {
		bucket := m.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		for _, gi := range bucket {
			d0, d1 := m.n0[gi], m.n1[gi]
			gate := &n.Gates[gi]
			if gate.Type == netlist.Input {
				total := d0 + d1
				ii := g.t.inputIdx[gi]
				// Deterministic pick: highest total demand, then the
				// earliest input. Majority value on a tie prefers 1 iff it
				// is the cheaper SCOAP side, mirroring the classic
				// tie-break's cost sensitivity.
				better := total > bestTotal ||
					(total == bestTotal && bestPi >= 0 && ii < bestPi)
				if ii >= 0 && better {
					bestPi, bestTotal = ii, total
					switch {
					case d1 > d0:
						bestVal = v1
					case d0 > d1:
						bestVal = v0
					case g.t.cc1[gi] <= g.t.cc0[gi]:
						bestVal = v1
					default:
						bestVal = v0
					}
				}
				continue
			}
			g.propagateVotes(gi, gate, d0, d1)
		}
		m.levels[lv] = bucket[:0]
	}
	if bestPi < 0 {
		return 0, 0, false
	}
	return bestPi, bestVal, true
}

// propagateVotes pushes one gate's accumulated (d0, d1) demand through its
// function to its X fan-ins: non-controlling demand to all of them,
// controlling demand to the cheapest one only, with inverting gates
// swapping the sides first.
func (g *Generator) propagateVotes(gi int, gate *netlist.Gate, d0, d1 int64) {
	switch gate.Type {
	case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
		d0, d1 = d1, d0
	}
	switch gate.Type {
	case netlist.Buf, netlist.Not:
		g.vote(gate.Fanin[0], v0, d0)
		g.vote(gate.Fanin[0], v1, d1)
	case netlist.And, netlist.Nand:
		// Output 1 needs every fan-in at 1; output 0 takes one fan-in at 0.
		if d1 > 0 {
			for _, fi := range gate.Fanin {
				g.vote(fi, v1, d1)
			}
		}
		if d0 > 0 {
			if fi := g.cheapestXFanin(gate, v0); fi >= 0 {
				g.vote(fi, v0, d0)
			}
		}
	case netlist.Or, netlist.Nor:
		if d0 > 0 {
			for _, fi := range gate.Fanin {
				g.vote(fi, v0, d0)
			}
		}
		if d1 > 0 {
			if fi := g.cheapestXFanin(gate, v1); fi >= 0 {
				g.vote(fi, v1, d1)
			}
		}
	case netlist.Xor, netlist.Xnor:
		// With a single X fan-in left the parity of the definite ones fixes
		// the required value exactly; with several, steer the whole demand
		// to the cheapest X fan-in with both sides intact, so the contention
		// (not a fabricated value) survives to the decision point.
		single, parity := -1, uint8(0)
		for _, fi := range gate.Fanin {
			if g.good[fi] == vX {
				if single >= 0 {
					single = -2
					break
				}
				single = fi
			} else {
				parity ^= g.good[fi]
			}
		}
		if single >= 0 {
			g.vote(single, parity, d0)
			g.vote(single, parity^1, d1)
		} else if fi := g.cheapestXFaninEither(gate); fi >= 0 {
			g.vote(fi, v0, d0)
			g.vote(fi, v1, d1)
		}
	}
}

// cheapestXFanin returns the X fan-in with the lowest SCOAP cost for value
// v, or -1 when none is left.
func (g *Generator) cheapestXFanin(gate *netlist.Gate, v uint8) int {
	cc := g.t.cc0
	if v == v1 {
		cc = g.t.cc1
	}
	best, bestCost := -1, int(1)<<30
	for _, fi := range gate.Fanin {
		if g.good[fi] != vX {
			continue
		}
		if cc[fi] < bestCost {
			best, bestCost = fi, cc[fi]
		}
	}
	return best
}

// cheapestXFaninEither is cheapestXFanin with the cost of a gate's easier
// side, for parity gates where either value serves.
func (g *Generator) cheapestXFaninEither(gate *netlist.Gate) int {
	best, bestCost := -1, int(1)<<30
	for _, fi := range gate.Fanin {
		if g.good[fi] != vX {
			continue
		}
		c := g.t.cc0[fi]
		if g.t.cc1[fi] < c {
			c = g.t.cc1[fi]
		}
		if c < bestCost {
			best, bestCost = fi, c
		}
	}
	return best
}

// frontierBlocked reports whether propagation through D-frontier gate gi is
// provably impossible under the current assignment: some side input outside
// the fault cone is forced (by a chain of unavoidable good-value steps) to
// the gate's controlling value, which kills every good/faulty difference at
// the gate's output. Fault-cone fan-ins are exempt — they can legally carry
// the difference themselves — and parity gates have no controlling value to
// force, so they are never blocked here.
func (g *Generator) frontierBlocked(gi int) bool {
	g.ensureMulti()
	gate := &g.t.net.Gates[gi]
	nc, hasNC := nonControlling(gate.Type)
	if !hasNC {
		return false
	}
	g.beginForced()
	for _, fi := range gate.Fanin {
		if g.good[fi] != vX || g.coneMark[fi] {
			continue
		}
		if !g.require(fi, nc) {
			return true
		}
	}
	return g.drainForced()
}

// forcedConflict reports whether the single requirement (gi = v) — which
// every extension of the current assignment must satisfy — is refuted by
// forced-chain analysis.
func (g *Generator) forcedConflict(gi int, v uint8) bool {
	g.ensureMulti()
	g.beginForced()
	if !g.require(gi, v) {
		return true
	}
	return g.drainForced()
}

// beginForced opens a fresh forced-requirement epoch.
func (g *Generator) beginForced() {
	m := g.mb
	m.reqEpoch++
	if m.reqEpoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(m.reqStamp)
		m.reqEpoch = 1
	}
	m.reqStack = m.reqStack[:0]
	m.forcedPIs = m.forcedPIs[:0]
}

// require records one forced requirement and reports false on an immediate
// clash: the same gate already forced to the opposite value this epoch, or
// a definite value contradicting the demand.
func (g *Generator) require(gi int, v uint8) bool {
	m := g.mb
	if m.reqStamp[gi] == m.reqEpoch {
		return m.reqVal[gi] == v
	}
	if g.good[gi] != vX {
		return g.good[gi] == v
	}
	m.reqStamp[gi] = m.reqEpoch
	m.reqVal[gi] = v
	m.reqStack = append(m.reqStack, int64(gi)<<1|int64(v))
	if g.t.net.Gates[gi].Type == netlist.Input && g.t.inputIdx[gi] >= 0 {
		m.forcedPIs = append(m.forcedPIs, gi)
	}
	return true
}

// drainForced expands the queued requirements through their forced
// consequences and reports true on a clash (note the inverted sense versus
// require: this is the "conflict found" verdict).
func (g *Generator) drainForced() bool {
	m := g.mb
	n := g.t.net
	for len(m.reqStack) > 0 {
		e := m.reqStack[len(m.reqStack)-1]
		m.reqStack = m.reqStack[:len(m.reqStack)-1]
		gi, want := int(e>>1), uint8(e&1)
		gate := &n.Gates[gi]
		if gate.Type == netlist.Input {
			continue // an unassigned input satisfies any requirement
		}
		switch gate.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			want ^= 1
		}
		switch gate.Type {
		case netlist.Buf, netlist.Not:
			if !g.require(gate.Fanin[0], want) {
				return true
			}
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			nc := v1 // non-controlling value of the AND core
			if gate.Type == netlist.Or || gate.Type == netlist.Nor {
				nc = v0
			}
			if want == nc {
				// Every fan-in must be non-controlling: all forced.
				for _, fi := range gate.Fanin {
					if g.good[fi] == vX && !g.require(fi, nc) {
						return true
					}
				}
			} else {
				// One controlling fan-in wins: forced only when a single X
				// candidate remains.
				forced := -1
				for _, fi := range gate.Fanin {
					if g.good[fi] != vX {
						continue
					}
					if forced >= 0 {
						forced = -2 // two candidates: a free choice, stop here
						break
					}
					forced = fi
				}
				if forced >= 0 && !g.require(forced, nc^1) {
					return true
				}
			}
		case netlist.Xor, netlist.Xnor:
			// Forced only when a single X fan-in fixes the parity.
			forced, parity := -1, want
			for _, fi := range gate.Fanin {
				switch g.good[fi] {
				case vX:
					if forced >= 0 {
						forced = -2
					} else {
						forced = fi
					}
				default:
					parity ^= g.good[fi]
				}
				if forced == -2 {
					break
				}
			}
			if forced >= 0 && !g.require(forced, parity) {
				return true
			}
		}
	}
	return false
}
