package atpg

// Handcrafted-netlist tests for the three PODEM exit paths that the
// end-to-end suites only hit statistically: abandoning a fault at the
// backtrack limit, proving a fault untestable by exhausting the decision
// space, and the multiple backtrace's conflict detection pruning a dead
// decision before implication runs. Each circuit is small enough that the
// exact decision sequence — and therefore the exact backtrack count — can
// be derived by hand and pinned.

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// xorTrapNetlist returns a circuit where the classic backtrace's first
// guess is provably wrong: activating z sa0 needs z = XOR(a, b) = 1, the
// SCOAP tie makes the engine try a=1 then b=1 (z = 0, the stuck value), and
// only the backtrack flip to b=0 activates and detects. One backtrack,
// derivable by hand.
func xorTrapNetlist(t *testing.T) (*netlist.Netlist, faultsim.Fault) {
	t.Helper()
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	if _, err := n.AddGate("z", netlist.Xor, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("out", netlist.And, "z", "a"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("out"); err != nil {
		t.Fatal(err)
	}
	z, _ := n.Index("z")
	return n, faultsim.Fault{Gate: z, Pin: -1, Stuck: 0}
}

// TestAbortAtBacktrackLimit pins the StatusAborted exit: with the limit at
// zero the first (provably necessary) backtrack exceeds it, with the
// default limit the same run detects the fault one backtrack later. The
// multiple backtrace never needs the backtrack at all — the XOR parity rule
// votes b to the activating value directly.
func TestAbortAtBacktrackLimit(t *testing.T) {
	n, f := xorTrapNetlist(t)
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	g.BacktrackLimit = 0
	if _, status := g.Generate(f); status != StatusAborted {
		t.Fatalf("limit 0: status %v, want aborted", status)
	}
	if g.Backtracks != 1 {
		t.Fatalf("limit 0: %d backtracks counted, want the 1 that broke the limit", g.Backtracks)
	}

	g.BacktrackLimit = 1000
	if _, status := g.Generate(f); status != StatusDetected {
		t.Fatalf("default limit: status %v, want detected", status)
	}
	if g.Backtracks != 1 {
		t.Fatalf("default limit: %d backtracks, hand-derived sequence needs exactly 1", g.Backtracks)
	}

	g.Strategy = BacktraceMulti
	if _, status := g.Generate(f); status != StatusDetected {
		t.Fatalf("multi: status %v, want detected", status)
	}
	if g.Backtracks != 0 {
		t.Fatalf("multi: %d backtracks, parity-aware votes need 0", g.Backtracks)
	}
}

// TestUntestableProvedByExhaustion pins the StatusUntestable exit on a
// redundant fault that is *not* structurally dead: z = AND(a, NOT a) is
// constant 0, so z sa0 has no test, but every signal reaches an output and
// the classic engine must actually exhaust both values of a to prove it.
// The multiple backtrace's forced-chain analysis sees the a=1 ∧ a=0 clash
// in the activation objective and proves the same result with zero
// decisions and zero implications.
func TestUntestableProvedByExhaustion(t *testing.T) {
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	if _, err := n.AddGate("na", netlist.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("z", netlist.And, "a", "na"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("out", netlist.Or, "z", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("out"); err != nil {
		t.Fatal(err)
	}
	z, _ := n.Index("z")
	f := faultsim.Fault{Gate: z, Pin: -1, Stuck: 0}

	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, status := g.Generate(f); status != StatusUntestable {
		t.Fatalf("scoap: status %v, want untestable", status)
	}
	if g.Backtracks < 1 {
		t.Fatalf("scoap: %d backtracks, the proof requires flipping a", g.Backtracks)
	}

	g.Strategy = BacktraceMulti
	if _, status := g.Generate(f); status != StatusUntestable {
		t.Fatalf("multi: status %v, want untestable", status)
	}
	if g.Backtracks != 0 {
		t.Fatalf("multi: %d backtracks, the forced-chain clash should prove it with 0", g.Backtracks)
	}
}

// TestMultiFrontierConflictPruned drives the frontier-side conflict
// detector white-box: after activating s sa0, the only D-frontier gate
// needs its side input x = AND(c, NOT c) at the non-controlling value 1,
// which the forced chain refutes (c=1 ∧ c=0). multiDecision must refuse to
// decide — pruning the subtree before a single implication — while the
// classic objective would happily keep deciding into the dead end. Both
// engines must still agree the fault is untestable, the multi engine in
// strictly fewer backtracks.
func TestMultiFrontierConflictPruned(t *testing.T) {
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddInput("c")
	if _, err := n.AddGate("s", netlist.And, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("nc", netlist.Not, "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("x", netlist.And, "c", "nc"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("g", netlist.And, "s", "x"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("g"); err != nil {
		t.Fatal(err)
	}
	s, _ := n.Index("s")
	gGate, _ := n.Index("g")
	f := faultsim.Fault{Gate: s, Pin: -1, Stuck: 0}

	// White-box: activate the fault by hand, then ask both decision
	// procedures about the resulting state.
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	g.Strategy = BacktraceMulti
	g.begin(f)
	g.assign(piIdx(t, g, "a"), 1)
	g.assign(piIdx(t, g, "b"), 1)
	wantFrontier(t, g, gGate)
	if _, _, feasible := g.objective(); !feasible {
		t.Fatal("classic objective should still offer the doomed frontier gate")
	}
	if !g.frontierBlocked(gGate) {
		t.Fatal("frontierBlocked must refute x = AND(c, NOT c) at value 1")
	}
	if _, _, ok, _ := g.multiDecision(); ok {
		t.Fatal("multiDecision must prune the all-blocked frontier instead of deciding")
	}

	// End to end, both strategies prove untestability; the pruning makes
	// the multi proof strictly cheaper.
	ref, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, status := ref.Generate(f); status != StatusUntestable {
		t.Fatalf("scoap: status %v, want untestable", status)
	}
	multi, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	multi.Strategy = BacktraceMulti
	if _, status := multi.Generate(f); status != StatusUntestable {
		t.Fatalf("multi: status %v, want untestable", status)
	}
	if multi.Backtracks >= ref.Backtracks {
		t.Fatalf("multi proof took %d backtracks, reference %d — pruning bought nothing", multi.Backtracks, ref.Backtracks)
	}
}
