package atpg

import (
	"strings"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// c17ish is the classic ISCAS-85 c17 benchmark (6 NAND gates).
const c17 = `
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func readC17(t testing.TB) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ReadBench(strings.NewReader(c17))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestC17EveryFaultTestable(t *testing.T) {
	n := readC17(t)
	u := faultsim.NewUniverse(n)
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := faultsim.NewSimulator(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range u.Faults {
		c, status := g.Generate(f)
		if status != StatusDetected {
			t.Errorf("fault %v reported %v (c17 has no redundant faults)", f, status)
			continue
		}
		// Fill X with 0 and with 1; the cube must detect the fault either way.
		for fill := uint8(0); fill <= 1; fill++ {
			pat := make([]uint8, c.Width())
			for i := range pat {
				if v := c.Get(i); v >= 0 {
					pat[i] = uint8(v)
				} else {
					pat[i] = fill
				}
			}
			if err := sim.LoadPatterns([][]uint8{pat}); err != nil {
				t.Fatal(err)
			}
			if sim.DetectMask(f) == 0 {
				t.Errorf("fault %v: cube %v (X=%d) does not detect it", f, c, fill)
			}
		}
	}
}

func TestRunAllC17FullCoverage(t *testing.T) {
	n := readC17(t)
	u := faultsim.NewUniverse(n)
	res, err := RunAll(u, Options{FaultDrop: true, FillSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Untestable != 0 {
		t.Errorf("%d untestable faults in c17", res.Untestable)
	}
	if res.Coverage < 0.999 {
		t.Errorf("coverage %.3f, want 1.0", res.Coverage)
	}
	if res.Cubes.Len() == 0 {
		t.Fatal("no cubes generated")
	}
	// Cubes must have don't-cares: that is the property the paper exploits.
	st := res.Cubes.Summary()
	if st.MaxSpecified >= st.Width {
		t.Error("no don't-cares in any cube (suspicious for PODEM)")
	}
}

func TestRandomCircuitsHighCoverage(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 24, Outputs: 8, Gates: 120, MaxFan: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		u := faultsim.NewUniverse(nl)
		res, err := RunAll(u, Options{FaultDrop: true, FillSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < 0.98 {
			t.Errorf("seed %d: coverage %.3f below 0.98", seed, res.Coverage)
		}
		// Verify end to end with the independent fault simulator: the exact
		// filled patterns RunAll used must reproduce the reported coverage.
		if len(res.Patterns) != res.Cubes.Len() {
			t.Fatalf("seed %d: %d patterns for %d cubes", seed, len(res.Patterns), res.Cubes.Len())
		}
		det, cov, err := faultsim.Coverage(u, res.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		_ = det
		wantCov := res.Coverage * float64(len(u.Faults)-res.Untestable) / float64(len(u.Faults))
		if cov+1e-9 < wantCov {
			t.Errorf("seed %d: independent fault sim coverage %.3f below ATPG-reported %.3f", seed, cov, wantCov)
		}
	}
}

func TestUntestableFaultReported(t *testing.T) {
	// A signal that never reaches an output is untestable.
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddGate("dead", netlist.And, "a", "b")
	n.AddGate("live", netlist.Or, "a", "b")
	n.MarkOutput("live")
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	deadIdx, _ := n.Index("dead")
	if _, status := g.Generate(faultsim.Fault{Gate: deadIdx, Pin: -1, Stuck: 0}); status != StatusUntestable {
		t.Errorf("fault on dead logic reported %v, want untestable", status)
	}
}

// BenchmarkImply isolates one implication: assigning a primary input and
// propagating its consequences (plus the matching undo for the event
// engine, so every iteration starts from the same state). The event-driven
// engine touches only the input's changed cone; the reference re-simulates
// all gates, which is what every PODEM decision, flip and backtrack used
// to cost.
func BenchmarkImply(b *testing.B) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 200, Outputs: 64, Gates: 2000, MaxFan: 3, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	tables, err := NewTables(nl)
	if err != nil {
		b.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	f := u.Faults[0] // a primary-input stem: the deepest cone in the circuit
	b.Run("event", func(b *testing.B) {
		g := tables.NewGenerator()
		g.begin(f)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pi := i % len(nl.Inputs)
			mark := len(g.trail)
			g.assign(pi, uint8(i>>3&1))
			g.undoTo(mark)
		}
	})
	b.Run("reference-resim", func(b *testing.B) {
		r := newRefGenerator(tables)
		for i := range r.good {
			r.good[i] = vX
			r.bad[i] = vX
		}
		r.computeCone(f)
		r.simulate(f)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gi := nl.Inputs[i%len(nl.Inputs)]
			r.good[gi] = uint8(i >> 3 & 1)
			r.simulate(f)
			r.good[gi] = vX
		}
	})
}

func BenchmarkPODEMRandom(b *testing.B) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 32, Outputs: 8, Gates: 200, MaxFan: 3, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	g, err := New(nl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(u.Faults[i%len(u.Faults)])
	}
}
