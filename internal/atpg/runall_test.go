package atpg

import (
	"fmt"
	"testing"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/prng"
)

// runAllPerPattern is the pre-batching reference: PODEM one fault at a
// time, with a full DetectAll sweep after every single pattern (one
// simulator lane used per sweep). It is kept as the oracle the batched,
// pipelined RunAll must match bit for bit — same cubes, same patterns,
// same counters.
func runAllPerPattern(u *faultsim.Universe, opt Options) (*Result, error) {
	g, err := New(u.Net)
	if err != nil {
		return nil, err
	}
	if opt.BacktrackLimit > 0 {
		g.BacktrackLimit = opt.BacktrackLimit
	}
	g.Strategy = opt.Backtrace
	sims, err := faultsim.NewSimulatorPool(u, 1)
	if err != nil {
		return nil, err
	}
	src := prng.New(opt.FillSeed)
	res := &Result{Cubes: cube.NewSet(len(u.Net.Inputs))}
	done := make([]bool, len(u.Faults))
	for fi, f := range u.Faults {
		if done[fi] {
			continue
		}
		c, status := g.Generate(f)
		res.Backtracks += g.Backtracks
		switch status {
		case StatusUntestable:
			res.Untestable++
			done[fi] = true
			continue
		case StatusAborted:
			res.Aborted++
			done[fi] = true
			continue
		}
		res.Detected++
		done[fi] = true
		if err := res.Cubes.Add(c); err != nil {
			return nil, err
		}
		if opt.FaultDrop {
			pat := make([]uint8, c.Width())
			for i := 0; i < c.Width(); i++ {
				switch c.Get(i) {
				case -1:
					pat[i] = src.Bit()
				default:
					pat[i] = uint8(c.Get(i))
				}
			}
			res.Patterns = append(res.Patterns, pat)
			if err := sims[0].LoadPatterns([][]uint8{pat}); err != nil {
				return nil, err
			}
			res.Detected += faultsim.DetectAll(sims, u.Faults, done)
		}
	}
	if den := len(u.Faults) - res.Untestable; den > 0 {
		res.Coverage = float64(res.Detected) / float64(den)
	}
	return res, nil
}

func diffResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Detected != want.Detected || got.Untestable != want.Untestable ||
		got.Aborted != want.Aborted || got.Coverage != want.Coverage ||
		got.Backtracks != want.Backtracks {
		t.Fatalf("%s: counters (det %d, unt %d, abt %d, bt %d, cov %v) != reference (det %d, unt %d, abt %d, bt %d, cov %v)",
			label, got.Detected, got.Untestable, got.Aborted, got.Backtracks, got.Coverage,
			want.Detected, want.Untestable, want.Aborted, want.Backtracks, want.Coverage)
	}
	if got.Cubes.Len() != want.Cubes.Len() {
		t.Fatalf("%s: %d cubes, reference has %d", label, got.Cubes.Len(), want.Cubes.Len())
	}
	for i := range want.Cubes.Cubes {
		if g, w := got.Cubes.Cubes[i].String(), want.Cubes.Cubes[i].String(); g != w {
			t.Fatalf("%s: cube %d\n got %s\nwant %s", label, i, g, w)
		}
	}
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("%s: %d patterns, reference has %d", label, len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Patterns {
		for j := range want.Patterns[i] {
			if got.Patterns[i][j] != want.Patterns[i][j] {
				t.Fatalf("%s: pattern %d bit %d = %d, reference says %d",
					label, i, j, got.Patterns[i][j], want.Patterns[i][j])
			}
		}
	}
}

// runAllCircuits builds the differential-test circuit set: c17 plus
// randomized netlists large enough for multi-batch dropping.
func runAllCircuits(t *testing.T) map[string]*netlist.Netlist {
	t.Helper()
	circuits := map[string]*netlist.Netlist{"c17": readC17(t)}
	for _, seed := range []uint64{5, 17} {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 28, Outputs: 10, Gates: 180, MaxFan: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		circuits[fmt.Sprintf("random-%d", seed)] = nl
	}
	return circuits
}

// TestRunAllWorkersBitIdentical asserts the speculative pipeline's central
// property for both backtrace strategies: cubes, patterns and counters are
// bit-identical to the serial per-pattern reference for any worker count.
// (The two strategies legitimately differ from each other; bit-identity
// holds within a strategy.) Run it with -race to check the commit queue
// (CI does).
func TestRunAllWorkersBitIdentical(t *testing.T) {
	for name, nl := range runAllCircuits(t) {
		for _, strategy := range []Backtrace{BacktraceSCOAP, BacktraceMulti} {
			t.Run(fmt.Sprintf("%s/%v", name, strategy), func(t *testing.T) {
				u := faultsim.NewUniverse(nl)
				// The low backtrack limit keeps hard faults cheap (and
				// exercises the aborted-commit path); it applies identically
				// to the reference and every worker count.
				opt := Options{FaultDrop: true, FillSeed: 99, BacktrackLimit: 40, Backtrace: strategy}
				want, err := runAllPerPattern(u, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 8, 0} {
					o := opt
					o.Workers = workers
					got, err := RunAll(u, o)
					if err != nil {
						t.Fatal(err)
					}
					diffResults(t, fmt.Sprintf("workers=%d", workers), got, want)
				}
			})
		}
	}
}

// TestRunAllWorkersNoFaultDrop covers the pipeline without dropping: every
// fault is PODEM'd exactly once regardless of worker count.
func TestRunAllWorkersNoFaultDrop(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 20, Outputs: 8, Gates: 120, MaxFan: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	want, err := runAllPerPattern(u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 0} {
		got, err := RunAll(u, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("workers=%d", workers), got, want)
	}
}

// BenchmarkRunAllSerialBatching isolates the drop-loop batching fix with
// the worker pool pinned to one: the batched path flushes a full-width
// DetectAll sweep once per 64 committed patterns (plus one event-driven
// check per PODEM candidate), where the per-pattern reference sweeps the
// whole remaining universe after every pattern with 63 lanes idle.
func BenchmarkRunAllSerialBatching(b *testing.B) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 400, Outputs: 160, Gates: 800, MaxFan: 3, Seed: 2008})
	if err != nil {
		b.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	// The low backtrack limit is the production norm for drop-loop ATPG:
	// hard faults cost O(limit × gates²) in PODEM and would swamp the
	// simulation time this benchmark isolates.
	opt := Options{FaultDrop: true, FillSeed: 7, Workers: 1, BacktrackLimit: 20}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunAll(u, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-pattern", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runAllPerPattern(u, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
