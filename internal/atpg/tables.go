package atpg

import (
	"sync/atomic"

	"repro/internal/netlist"
)

// tablesBuilt counts NewTables calls across the process. The regression
// tests use the delta to assert RunAll builds the shared tables exactly
// once per invocation regardless of the worker count.
var tablesBuilt atomic.Uint64

// Tables is the immutable per-netlist half of the PODEM engine: the
// levelized order, per-gate levels, fan-out lists, output/input maps and
// SCOAP-flavoured controllability weights. It is built once per netlist
// (NewTables) and shared read-only by every Generator, mirroring the
// Universe/Simulator split in internal/faultsim — a worker pool pays for
// these structures once, and per-worker Generators are allocation-light
// scratch state. The immutable-after-build contract is enforced by the
// frozentables analyzer (internal/lint) via the marker below.
//
// lint:frozen
type Tables struct {
	net        *netlist.Netlist
	order      []int // topological order (gate indices)
	orderPos   []int // gate index → position in order
	level      []int // longest path from an input; fan-outs are strictly deeper
	numLevels  int
	numOutputs int // len(net.Outputs) at build time, for staleness checks
	fanout    [][]int
	isOutput  []bool
	inputIdx  []int // gate index → position in net.Inputs, -1 otherwise
	// controllability: rough SCOAP-like effort to set a signal to 0/1,
	// used by backtrace to pick the easiest input.
	cc0, cc1 []int
	xfill    []uint8 // all-vX template, copied to reset value arrays fast
}

// NewTables builds the shared tables for a circuit.
func NewTables(n *netlist.Netlist) (*Tables, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	level, numLevels, err := n.Levels()
	if err != nil {
		return nil, err
	}
	tablesBuilt.Add(1)
	t := &Tables{
		net:        n,
		order:      order,
		orderPos:   make([]int, n.NumGates()),
		level:      level,
		numLevels:  numLevels,
		numOutputs: len(n.Outputs),
		fanout:     n.Fanouts(),
		isOutput:   make([]bool, n.NumGates()),
		inputIdx:   make([]int, n.NumGates()),
		xfill:      make([]uint8, n.NumGates()),
	}
	for pos, gi := range order {
		t.orderPos[gi] = pos
	}
	for _, o := range n.Outputs {
		t.isOutput[o] = true
	}
	for gi := range t.inputIdx {
		t.inputIdx[gi] = -1
	}
	for ii, gi := range n.Inputs {
		t.inputIdx[gi] = ii
	}
	for i := range t.xfill {
		t.xfill[i] = vX
	}
	t.computeControllability()
	return t, nil
}

// Netlist returns the circuit the tables were built over.
func (t *Tables) Netlist() *netlist.Netlist { return t.net }

// Valid reports whether the tables still describe n: the same netlist
// object with unchanged gate and output counts. Structural mutations
// (AddInput/AddGate/MarkOutput) after NewTables make tables stale.
func (t *Tables) Valid(n *netlist.Netlist) bool {
	return t.net == n && len(t.level) == n.NumGates() && t.numOutputs == len(n.Outputs)
}

// computeControllability assigns SCOAP-flavoured 0/1 controllability
// weights: inputs cost 1; a gate's cost follows from the cheapest way to
// produce each output value.
func (t *Tables) computeControllability() {
	n := t.net
	t.cc0 = make([]int, n.NumGates())
	t.cc1 = make([]int, n.NumGates())
	const inf = 1 << 28
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	for _, gi := range t.order {
		gate := &n.Gates[gi]
		switch gate.Type {
		case netlist.Input:
			t.cc0[gi], t.cc1[gi] = 1, 1
		case netlist.Buf:
			t.cc0[gi], t.cc1[gi] = t.cc0[gate.Fanin[0]]+1, t.cc1[gate.Fanin[0]]+1
		case netlist.Not:
			t.cc0[gi], t.cc1[gi] = t.cc1[gate.Fanin[0]]+1, t.cc0[gate.Fanin[0]]+1
		case netlist.And, netlist.Nand:
			all1, any0 := 1, inf
			for _, f := range gate.Fanin {
				all1 += t.cc1[f]
				any0 = min(any0, t.cc0[f])
			}
			c1, c0 := all1, any0+1
			if gate.Type == netlist.Nand {
				c0, c1 = c1, c0
			}
			t.cc0[gi], t.cc1[gi] = c0, c1
		case netlist.Or, netlist.Nor:
			all0, any1 := 1, inf
			for _, f := range gate.Fanin {
				all0 += t.cc0[f]
				any1 = min(any1, t.cc1[f])
			}
			c0, c1 := all0, any1+1
			if gate.Type == netlist.Nor {
				c0, c1 = c1, c0
			}
			t.cc0[gi], t.cc1[gi] = c0, c1
		case netlist.Xor, netlist.Xnor:
			// Roughly: parity costs the sum of the cheaper sides.
			sum := 1
			for _, f := range gate.Fanin {
				sum += min(t.cc0[f], t.cc1[f])
			}
			t.cc0[gi], t.cc1[gi] = sum, sum
		}
	}
}

// NewGenerator creates a per-worker generator over the shared tables.
func (t *Tables) NewGenerator() *Generator {
	ng := t.net.NumGates()
	return &Generator{
		t:              t,
		good:           make([]uint8, ng),
		bad:            make([]uint8, ng),
		levels:         make([][]int, t.numLevels),
		queued:         make([]uint32, ng),
		coneMark:       make([]bool, ng),
		inFrontier:     make([]bool, ng),
		inList:         make([]bool, ng),
		dirtyStamp:     make([]uint32, ng),
		seen:           make([]uint32, ng),
		BacktrackLimit: 1000,
	}
}
