// Package atpg is a PODEM-style deterministic test pattern generator for
// single stuck-at faults over internal/netlist circuits — the final piece
// of the Atalanta substitute (DESIGN.md §2). It produces test *cubes*
// (patterns with don't-cares), which is exactly what the paper's encoding
// flow consumes: the fewer bits PODEM needs to specify, the more cubes a
// seed window can absorb.
//
// The implementation is textbook PODEM (Goel 1981): a fault is activated
// by justifying the complement of the stuck value at the fault site and
// propagated by repeatedly advancing the D-frontier, with all value
// decisions made at primary inputs only, found by backtracing objectives
// through easiest-to-control paths, and undone on conflict with
// chronological backtracking under a backtrack limit.
package atpg

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/prng"
)

// Three-valued logic constants. D ("good 1 / faulty 0") and D' are
// represented as the pair of good/faulty values, not separate constants.
const (
	v0 uint8 = 0
	v1 uint8 = 1
	vX uint8 = 2
)

// Generator holds per-circuit state reused across faults.
type Generator struct {
	net   *netlist.Netlist
	order []int
	level []int
	// controllability: rough SCOAP-like effort to set a signal to 0/1,
	// used by backtrace to pick the easiest input.
	cc0, cc1 []int

	good, bad []uint8 // 3-valued good/faulty circuit values
	fanout    [][]int

	// Limits.
	BacktrackLimit int
}

// New prepares a generator for a circuit.
func New(n *netlist.Netlist) (*Generator, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	g := &Generator{
		net:            n,
		order:          order,
		good:           make([]uint8, n.NumGates()),
		bad:            make([]uint8, n.NumGates()),
		level:          make([]int, n.NumGates()),
		fanout:         make([][]int, n.NumGates()),
		BacktrackLimit: 1000,
	}
	for gi, gate := range n.Gates {
		for _, f := range gate.Fanin {
			g.fanout[f] = append(g.fanout[f], gi)
			if g.level[f]+1 > g.level[gi] {
				g.level[gi] = g.level[f] + 1
			}
		}
	}
	g.computeControllability()
	return g, nil
}

// computeControllability assigns SCOAP-flavoured 0/1 controllability
// weights: inputs cost 1; a gate's cost follows from the cheapest way to
// produce each output value.
func (g *Generator) computeControllability() {
	n := g.net
	g.cc0 = make([]int, n.NumGates())
	g.cc1 = make([]int, n.NumGates())
	const inf = 1 << 28
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	for _, gi := range g.order {
		gate := &n.Gates[gi]
		switch gate.Type {
		case netlist.Input:
			g.cc0[gi], g.cc1[gi] = 1, 1
		case netlist.Buf:
			g.cc0[gi], g.cc1[gi] = g.cc0[gate.Fanin[0]]+1, g.cc1[gate.Fanin[0]]+1
		case netlist.Not:
			g.cc0[gi], g.cc1[gi] = g.cc1[gate.Fanin[0]]+1, g.cc0[gate.Fanin[0]]+1
		case netlist.And, netlist.Nand:
			all1, any0 := 1, inf
			for _, f := range gate.Fanin {
				all1 += g.cc1[f]
				any0 = min(any0, g.cc0[f])
			}
			c1, c0 := all1, any0+1
			if gate.Type == netlist.Nand {
				c0, c1 = c1, c0
			}
			g.cc0[gi], g.cc1[gi] = c0, c1
		case netlist.Or, netlist.Nor:
			all0, any1 := 1, inf
			for _, f := range gate.Fanin {
				all0 += g.cc0[f]
				any1 = min(any1, g.cc1[f])
			}
			c0, c1 := all0, any1+1
			if gate.Type == netlist.Nor {
				c0, c1 = c1, c0
			}
			g.cc0[gi], g.cc1[gi] = c0, c1
		case netlist.Xor, netlist.Xnor:
			// Roughly: parity costs the sum of the cheaper sides.
			sum := 1
			for _, f := range gate.Fanin {
				sum += min(g.cc0[f], g.cc1[f])
			}
			g.cc0[gi], g.cc1[gi] = sum, sum
		}
	}
}

// Status classifies the outcome of one PODEM run.
type Status int

const (
	// StatusDetected: a test cube was found.
	StatusDetected Status = iota
	// StatusUntestable: the full decision space was exhausted — the fault
	// is provably redundant.
	StatusUntestable
	// StatusAborted: the backtrack limit was hit before a proof either way.
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusDetected:
		return "detected"
	case StatusUntestable:
		return "untestable"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Generate runs PODEM for one fault and returns the test cube over the
// circuit's inputs (X = unassigned) together with the run status.
func (g *Generator) Generate(f faultsim.Fault) (cube.Cube, Status) {
	n := g.net
	for i := range g.good {
		g.good[i] = vX
		g.bad[i] = vX
	}
	type decision struct {
		input   int // index into n.Inputs
		value   uint8
		flipped bool
	}
	var stack []decision
	assigned := make(map[int]bool) // input gate index → assigned
	backtracks := 0

	imply := func() {
		g.simulate(f)
	}
	imply()

	for {
		if g.detected(f) {
			c := cube.New(len(n.Inputs))
			for ii, gi := range n.Inputs {
				if g.good[gi] != vX {
					c.Set(ii, g.good[gi])
				}
			}
			return c, StatusDetected
		}
		objGate, objVal, feasible := g.objective(f)
		var piIdx int
		var piVal uint8
		backtraceOK := false
		if feasible {
			piIdx, piVal, backtraceOK = g.backtrace(objGate, objVal, assigned)
		}
		if !feasible || !backtraceOK {
			// Conflict or no X-path: chronological backtracking.
			for {
				if len(stack) == 0 {
					return cube.Cube{}, StatusUntestable
				}
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					top.value ^= 1
					g.good[g.net.Inputs[top.input]] = top.value
					backtracks++
					if backtracks > g.BacktrackLimit {
						return cube.Cube{}, StatusAborted
					}
					break
				}
				assigned[g.net.Inputs[top.input]] = false
				g.good[g.net.Inputs[top.input]] = vX
				stack = stack[:len(stack)-1]
			}
			imply()
			continue
		}
		gi := n.Inputs[piIdx]
		stack = append(stack, decision{input: piIdx, value: piVal})
		assigned[gi] = true
		g.good[gi] = piVal
		imply()
	}
}

// simulate performs 3-valued good+faulty simulation with the fault
// injected. Primary-input good values are the current assignments; all
// other values are derived.
func (g *Generator) simulate(f faultsim.Fault) {
	n := g.net
	var gbuf, bbuf []uint8
	for _, gi := range g.order {
		gate := &n.Gates[gi]
		if gate.Type != netlist.Input {
			gbuf, bbuf = gbuf[:0], bbuf[:0]
			for pin, fi := range gate.Fanin {
				gv, bv := g.good[fi], g.bad[fi]
				if f.Gate == gi && f.Pin == pin {
					bv = f.Stuck
				}
				gbuf = append(gbuf, gv)
				bbuf = append(bbuf, bv)
			}
			g.good[gi] = eval3(gate.Type, gbuf)
			g.bad[gi] = eval3(gate.Type, bbuf)
		} else if f.Gate != gi || f.Pin != -1 {
			g.bad[gi] = g.good[gi]
		}
		if f.Gate == gi && f.Pin == -1 {
			g.bad[gi] = f.Stuck
		}
	}
}

// eval3 is 3-valued gate evaluation.
func eval3(t netlist.GateType, in []uint8) uint8 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		if in[0] == vX {
			return vX
		}
		return in[0] ^ 1
	case netlist.And, netlist.Nand:
		v := v1
		for _, b := range in {
			if b == v0 {
				v = v0
				break
			}
			if b == vX {
				v = vX
			}
		}
		if v != vX && t == netlist.Nand {
			v ^= 1
		}
		return v
	case netlist.Or, netlist.Nor:
		v := v0
		for _, b := range in {
			if b == v1 {
				v = v1
				break
			}
			if b == vX {
				v = vX
			}
		}
		if v != vX && t == netlist.Nor {
			v ^= 1
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := v0
		for _, b := range in {
			if b == vX {
				return vX
			}
			v ^= b
		}
		if t == netlist.Xnor {
			v ^= 1
		}
		return v
	default:
		panic(fmt.Sprintf("atpg: eval3 on %v", t))
	}
}

// detected reports whether some primary output shows a definite
// good/faulty difference.
func (g *Generator) detected(f faultsim.Fault) bool {
	for _, o := range g.net.Outputs {
		gv, bv := g.good[o], g.bad[o]
		if gv != vX && bv != vX && gv != bv {
			return true
		}
	}
	return false
}

// objective returns the next signal/value to justify: fault activation
// first, then D-frontier advancement. feasible=false signals a dead end.
func (g *Generator) objective(f faultsim.Fault) (gate int, val uint8, feasible bool) {
	// Activation: the fault site's good value must be the complement of
	// the stuck value.
	site := f.Gate
	if f.Pin >= 0 {
		site = g.net.Gates[f.Gate].Fanin[f.Pin]
	}
	switch g.good[site] {
	case vX:
		return site, f.Stuck ^ 1, true
	case f.Stuck:
		return 0, 0, false // activation impossible under current assignment
	}
	// Propagation: pick the D-frontier gate closest to an output — among
	// those with an X-path to some primary output (propagation through
	// gates already set to definite values is impossible, so frontier
	// gates without an X-path are dead ends; pruning them here is the
	// classic X-path check that makes PODEM terminate quickly on blocked
	// faults).
	best := -1
	for _, gi := range g.dFrontier(f) {
		if !g.xPathToOutput(gi) {
			continue
		}
		if best < 0 || g.level[gi] > g.level[best] {
			best = gi
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	gate2 := &g.net.Gates[best]
	nc, ok := nonControlling(gate2.Type)
	if !ok {
		// XOR-ish gate: any X input can take either value; pick 0.
		nc = v0
	}
	for _, fi := range gate2.Fanin {
		if g.good[fi] == vX {
			return fi, nc, true
		}
	}
	return 0, 0, false
}

// dFrontier lists gates whose output is still X (good or faulty) but which
// have a definite good/faulty difference on some input.
func (g *Generator) dFrontier(f faultsim.Fault) []int {
	var out []int
	for _, gi := range g.order {
		gate := &g.net.Gates[gi]
		if gate.Type == netlist.Input {
			continue
		}
		if g.good[gi] != vX && g.bad[gi] != vX {
			continue
		}
		for pin, fi := range gate.Fanin {
			gv, bv := g.good[fi], g.bad[fi]
			if f.Gate == gi && f.Pin == pin {
				bv = f.Stuck
			}
			if gv != vX && bv != vX && gv != bv {
				out = append(out, gi)
				break
			}
		}
	}
	return out
}

// xPathToOutput reports whether a path of X-valued gates leads from gate
// gi to some primary output (gi itself may hold a definite faulty value —
// only the forward path must still be open).
func (g *Generator) xPathToOutput(gi int) bool {
	isOut := func(x int) bool {
		for _, o := range g.net.Outputs {
			if o == x {
				return true
			}
		}
		return false
	}
	if isOut(gi) {
		return true
	}
	seen := make(map[int]bool)
	stack := []int{gi}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.fanout[cur] {
			if seen[fo] {
				continue
			}
			seen[fo] = true
			if g.good[fo] != vX && g.bad[fo] != vX {
				continue // definite value: propagation blocked here
			}
			if isOut(fo) {
				return true
			}
			stack = append(stack, fo)
		}
	}
	return false
}

// nonControlling returns the value that does not decide the gate's output.
func nonControlling(t netlist.GateType) (uint8, bool) {
	switch t {
	case netlist.And, netlist.Nand:
		return v1, true
	case netlist.Or, netlist.Nor:
		return v0, true
	default:
		return vX, false
	}
}

// backtrace walks an objective (gate, value) backwards to an unassigned
// primary input, inverting the target value through inverting gates and
// choosing the easiest-to-control fan-in by the SCOAP weights.
func (g *Generator) backtrace(gate int, val uint8, assigned map[int]bool) (piIdx int, piVal uint8, ok bool) {
	n := g.net
	cur, want := gate, val
	for steps := 0; steps < n.NumGates()+1; steps++ {
		gt := &n.Gates[cur]
		if gt.Type == netlist.Input {
			if g.good[cur] != vX {
				return 0, 0, false // already assigned; objective unreachable
			}
			for ii, gi := range n.Inputs {
				if gi == cur {
					return ii, want, true
				}
			}
			return 0, 0, false
		}
		// Choose the X fan-in that is cheapest for the required value,
		// flipping the wanted value through inverting gates.
		nextWant := want
		switch gt.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			nextWant = want ^ 1
		}
		bestFi, bestCost := -1, 1<<30
		for _, fi := range gt.Fanin {
			if g.good[fi] != vX {
				continue
			}
			cost := g.cc0[fi]
			if nextWant == v1 {
				cost = g.cc1[fi]
			}
			if cost < bestCost {
				bestCost = cost
				bestFi = fi
			}
		}
		if bestFi < 0 {
			return 0, 0, false
		}
		cur, want = bestFi, nextWant
	}
	return 0, 0, false
}

// Result is the outcome of a full-circuit ATPG run.
type Result struct {
	Cubes *cube.Set
	// Patterns are the fully specified patterns used for fault dropping
	// (the cubes with X filled pseudorandomly), in cube order. Empty when
	// FaultDrop is off.
	Patterns [][]uint8
	// Detected counts faults covered by the generated cubes (including
	// fault-drop credit). Untestable counts faults PODEM proved redundant
	// (decision space exhausted); Aborted counts faults abandoned at the
	// backtrack limit — unlike untestables they still count against
	// coverage.
	Detected   int
	Untestable int
	Aborted    int
	Coverage   float64 // detected / (total - untestable)
}

// Options tunes RunAll.
type Options struct {
	// FaultDrop simulates each new cube (X-filled randomly) against the
	// remaining faults and drops everything it detects, like Atalanta.
	FaultDrop bool
	// FillSeed keys the random X-fill used for fault dropping.
	FillSeed uint64
	// BacktrackLimit overrides the generator default when > 0.
	BacktrackLimit int
	// Workers shards the fault-drop simulation of each new pattern across
	// a pool of fault simulators. 0 or negative means one worker per CPU.
	// The detected fault set is identical for any value.
	Workers int
}

// RunAll generates test cubes for every fault of the universe.
func RunAll(u *faultsim.Universe, opt Options) (*Result, error) {
	g, err := New(u.Net)
	if err != nil {
		return nil, err
	}
	if opt.BacktrackLimit > 0 {
		g.BacktrackLimit = opt.BacktrackLimit
	}
	poolSize := faultsim.Options{Workers: opt.Workers}.PoolSize(len(u.Faults))
	sims, err := faultsim.NewSimulatorPool(u, poolSize)
	if err != nil {
		return nil, err
	}
	src := prng.New(opt.FillSeed)
	res := &Result{Cubes: cube.NewSet(len(u.Net.Inputs))}
	done := make([]bool, len(u.Faults))
	for fi, f := range u.Faults {
		if done[fi] {
			continue
		}
		c, status := g.Generate(f)
		switch status {
		case StatusUntestable:
			res.Untestable++
			done[fi] = true
			continue
		case StatusAborted:
			res.Aborted++
			done[fi] = true
			continue
		}
		res.Detected++
		done[fi] = true
		if err := res.Cubes.Add(c); err != nil {
			return nil, err
		}
		if opt.FaultDrop {
			// Random-fill the cube and drop everything the pattern detects.
			pat := make([]uint8, c.Width())
			for i := 0; i < c.Width(); i++ {
				switch c.Get(i) {
				case -1:
					pat[i] = src.Bit()
				default:
					pat[i] = uint8(c.Get(i))
				}
			}
			res.Patterns = append(res.Patterns, pat)
			if err := sims[0].LoadPatterns([][]uint8{pat}); err != nil {
				return nil, err
			}
			for _, s := range sims[1:] {
				s.AdoptPatterns(sims[0])
			}
			res.Detected += faultsim.DetectAll(sims, u.Faults, done)
		}
	}
	if den := len(u.Faults) - res.Untestable; den > 0 {
		res.Coverage = float64(res.Detected) / float64(den)
	}
	return res, nil
}
