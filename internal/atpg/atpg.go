// Package atpg is a PODEM-style deterministic test pattern generator for
// single stuck-at faults over internal/netlist circuits — the final piece
// of the Atalanta substitute (DESIGN.md §2). It produces test *cubes*
// (patterns with don't-cares), which is exactly what the paper's encoding
// flow consumes: the fewer bits PODEM needs to specify, the more cubes a
// seed window can absorb.
//
// The implementation is textbook PODEM (Goel 1981): a fault is activated
// by justifying the complement of the stuck value at the fault site and
// propagated by repeatedly advancing the D-frontier, with all value
// decisions made at primary inputs only, found by backtracing objectives
// through easiest-to-control paths, and undone on conflict with
// chronological backtracking under a backtrack limit.
package atpg

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/prng"
)

// Three-valued logic constants. D ("good 1 / faulty 0") and D' are
// represented as the pair of good/faulty values, not separate constants.
const (
	v0 uint8 = 0
	v1 uint8 = 1
	vX uint8 = 2
)

// Generator holds per-circuit state reused across faults.
type Generator struct {
	net   *netlist.Netlist
	order []int
	level []int
	// controllability: rough SCOAP-like effort to set a signal to 0/1,
	// used by backtrace to pick the easiest input.
	cc0, cc1 []int

	good, bad []uint8 // 3-valued good/faulty circuit values
	fanout    [][]int
	isOutput  []bool
	inputIdx  []int // gate index → position in net.Inputs, -1 otherwise

	// Per-Generate scratch, reused across faults so the PODEM inner loops
	// allocate nothing: the D-frontier worklist, epoch-stamped visit marks
	// for the X-path DFS, and the fault site's output cone (the only gates
	// the D-frontier scan must visit).
	dfBuf     []int
	dfStack   []int
	seen      []uint32
	seenEpoch uint32
	orderPos  []int // gate index → position in order
	cone      []int // fault cone, sorted in topological order
	coneMark  []bool

	// Limits.
	BacktrackLimit int
}

// New prepares a generator for a circuit.
func New(n *netlist.Netlist) (*Generator, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	g := &Generator{
		net:            n,
		order:          order,
		good:           make([]uint8, n.NumGates()),
		bad:            make([]uint8, n.NumGates()),
		level:          make([]int, n.NumGates()),
		fanout:         make([][]int, n.NumGates()),
		isOutput:       make([]bool, n.NumGates()),
		inputIdx:       make([]int, n.NumGates()),
		seen:           make([]uint32, n.NumGates()),
		orderPos:       make([]int, n.NumGates()),
		coneMark:       make([]bool, n.NumGates()),
		BacktrackLimit: 1000,
	}
	for pos, gi := range order {
		g.orderPos[gi] = pos
	}
	for gi, gate := range n.Gates {
		for _, f := range gate.Fanin {
			g.fanout[f] = append(g.fanout[f], gi)
			if g.level[f]+1 > g.level[gi] {
				g.level[gi] = g.level[f] + 1
			}
		}
	}
	for _, o := range n.Outputs {
		g.isOutput[o] = true
	}
	for gi := range g.inputIdx {
		g.inputIdx[gi] = -1
	}
	for ii, gi := range n.Inputs {
		g.inputIdx[gi] = ii
	}
	g.computeControllability()
	return g, nil
}

// computeControllability assigns SCOAP-flavoured 0/1 controllability
// weights: inputs cost 1; a gate's cost follows from the cheapest way to
// produce each output value.
func (g *Generator) computeControllability() {
	n := g.net
	g.cc0 = make([]int, n.NumGates())
	g.cc1 = make([]int, n.NumGates())
	const inf = 1 << 28
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	for _, gi := range g.order {
		gate := &n.Gates[gi]
		switch gate.Type {
		case netlist.Input:
			g.cc0[gi], g.cc1[gi] = 1, 1
		case netlist.Buf:
			g.cc0[gi], g.cc1[gi] = g.cc0[gate.Fanin[0]]+1, g.cc1[gate.Fanin[0]]+1
		case netlist.Not:
			g.cc0[gi], g.cc1[gi] = g.cc1[gate.Fanin[0]]+1, g.cc0[gate.Fanin[0]]+1
		case netlist.And, netlist.Nand:
			all1, any0 := 1, inf
			for _, f := range gate.Fanin {
				all1 += g.cc1[f]
				any0 = min(any0, g.cc0[f])
			}
			c1, c0 := all1, any0+1
			if gate.Type == netlist.Nand {
				c0, c1 = c1, c0
			}
			g.cc0[gi], g.cc1[gi] = c0, c1
		case netlist.Or, netlist.Nor:
			all0, any1 := 1, inf
			for _, f := range gate.Fanin {
				all0 += g.cc0[f]
				any1 = min(any1, g.cc1[f])
			}
			c0, c1 := all0, any1+1
			if gate.Type == netlist.Nor {
				c0, c1 = c1, c0
			}
			g.cc0[gi], g.cc1[gi] = c0, c1
		case netlist.Xor, netlist.Xnor:
			// Roughly: parity costs the sum of the cheaper sides.
			sum := 1
			for _, f := range gate.Fanin {
				sum += min(g.cc0[f], g.cc1[f])
			}
			g.cc0[gi], g.cc1[gi] = sum, sum
		}
	}
}

// Status classifies the outcome of one PODEM run.
type Status int

const (
	// StatusDetected: a test cube was found.
	StatusDetected Status = iota
	// StatusUntestable: the full decision space was exhausted — the fault
	// is provably redundant.
	StatusUntestable
	// StatusAborted: the backtrack limit was hit before a proof either way.
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusDetected:
		return "detected"
	case StatusUntestable:
		return "untestable"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Generate runs PODEM for one fault and returns the test cube over the
// circuit's inputs (X = unassigned) together with the run status.
func (g *Generator) Generate(f faultsim.Fault) (cube.Cube, Status) {
	n := g.net
	for i := range g.good {
		g.good[i] = vX
		g.bad[i] = vX
	}
	type decision struct {
		input   int // index into n.Inputs
		value   uint8
		flipped bool
	}
	var stack []decision
	backtracks := 0

	g.computeCone(f)
	imply := func() {
		g.simulate(f)
	}
	imply()

	for {
		if g.detected(f) {
			c := cube.New(len(n.Inputs))
			for ii, gi := range n.Inputs {
				if g.good[gi] != vX {
					c.Set(ii, g.good[gi])
				}
			}
			return c, StatusDetected
		}
		objGate, objVal, feasible := g.objective(f)
		var piIdx int
		var piVal uint8
		backtraceOK := false
		if feasible {
			piIdx, piVal, backtraceOK = g.backtrace(objGate, objVal)
		}
		if !feasible || !backtraceOK {
			// Conflict or no X-path: chronological backtracking.
			for {
				if len(stack) == 0 {
					return cube.Cube{}, StatusUntestable
				}
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					top.value ^= 1
					g.good[g.net.Inputs[top.input]] = top.value
					backtracks++
					if backtracks > g.BacktrackLimit {
						return cube.Cube{}, StatusAborted
					}
					break
				}
				g.good[g.net.Inputs[top.input]] = vX
				stack = stack[:len(stack)-1]
			}
			imply()
			continue
		}
		gi := n.Inputs[piIdx]
		stack = append(stack, decision{input: piIdx, value: piVal})
		g.good[gi] = piVal
		imply()
	}
}

// simulate performs 3-valued good+faulty simulation with the fault
// injected. Primary-input good values are the current assignments; all
// other values are derived.
func (g *Generator) simulate(f faultsim.Fault) {
	n := g.net
	var gbuf, bbuf []uint8
	for _, gi := range g.order {
		gate := &n.Gates[gi]
		if gate.Type != netlist.Input {
			gbuf, bbuf = gbuf[:0], bbuf[:0]
			for pin, fi := range gate.Fanin {
				gv, bv := g.good[fi], g.bad[fi]
				if f.Gate == gi && f.Pin == pin {
					bv = f.Stuck
				}
				gbuf = append(gbuf, gv)
				bbuf = append(bbuf, bv)
			}
			g.good[gi] = eval3(gate.Type, gbuf)
			g.bad[gi] = eval3(gate.Type, bbuf)
		} else if f.Gate != gi || f.Pin != -1 {
			g.bad[gi] = g.good[gi]
		}
		if f.Gate == gi && f.Pin == -1 {
			g.bad[gi] = f.Stuck
		}
	}
}

// eval3 is 3-valued gate evaluation.
func eval3(t netlist.GateType, in []uint8) uint8 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		if in[0] == vX {
			return vX
		}
		return in[0] ^ 1
	case netlist.And, netlist.Nand:
		v := v1
		for _, b := range in {
			if b == v0 {
				v = v0
				break
			}
			if b == vX {
				v = vX
			}
		}
		if v != vX && t == netlist.Nand {
			v ^= 1
		}
		return v
	case netlist.Or, netlist.Nor:
		v := v0
		for _, b := range in {
			if b == v1 {
				v = v1
				break
			}
			if b == vX {
				v = vX
			}
		}
		if v != vX && t == netlist.Nor {
			v ^= 1
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := v0
		for _, b := range in {
			if b == vX {
				return vX
			}
			v ^= b
		}
		if t == netlist.Xnor {
			v ^= 1
		}
		return v
	default:
		panic(fmt.Sprintf("atpg: eval3 on %v", t))
	}
}

// detected reports whether some primary output shows a definite
// good/faulty difference.
func (g *Generator) detected(f faultsim.Fault) bool {
	for _, o := range g.net.Outputs {
		gv, bv := g.good[o], g.bad[o]
		if gv != vX && bv != vX && gv != bv {
			return true
		}
	}
	return false
}

// objective returns the next signal/value to justify: fault activation
// first, then D-frontier advancement. feasible=false signals a dead end.
func (g *Generator) objective(f faultsim.Fault) (gate int, val uint8, feasible bool) {
	// Activation: the fault site's good value must be the complement of
	// the stuck value.
	site := f.Gate
	if f.Pin >= 0 {
		site = g.net.Gates[f.Gate].Fanin[f.Pin]
	}
	switch g.good[site] {
	case vX:
		return site, f.Stuck ^ 1, true
	case f.Stuck:
		return 0, 0, false // activation impossible under current assignment
	}
	// Propagation: pick the D-frontier gate closest to an output — among
	// those with an X-path to some primary output (propagation through
	// gates already set to definite values is impossible, so frontier
	// gates without an X-path are dead ends; pruning them here is the
	// classic X-path check that makes PODEM terminate quickly on blocked
	// faults).
	best := -1
	for _, gi := range g.dFrontier(f) {
		if !g.xPathToOutput(gi) {
			continue
		}
		if best < 0 || g.level[gi] > g.level[best] {
			best = gi
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	gate2 := &g.net.Gates[best]
	nc, ok := nonControlling(gate2.Type)
	if !ok {
		// XOR-ish gate: any X input can take either value; pick 0.
		nc = v0
	}
	for _, fi := range gate2.Fanin {
		if g.good[fi] == vX {
			return fi, nc, true
		}
	}
	return 0, 0, false
}

// computeCone collects the gates reachable from the fault site — the only
// gates a good/faulty difference can ever appear on — sorted in
// topological order so the D-frontier scan visits them exactly as a scan
// of the full order would.
func (g *Generator) computeCone(f faultsim.Fault) {
	for _, gi := range g.cone {
		g.coneMark[gi] = false
	}
	g.cone = g.cone[:0]
	stack := g.dfStack[:0]
	g.coneMark[f.Gate] = true
	g.cone = append(g.cone, f.Gate)
	stack = append(stack, f.Gate)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.fanout[cur] {
			if !g.coneMark[fo] {
				g.coneMark[fo] = true
				g.cone = append(g.cone, fo)
				stack = append(stack, fo)
			}
		}
	}
	g.dfStack = stack[:0]
	sort.Slice(g.cone, func(i, j int) bool { return g.orderPos[g.cone[i]] < g.orderPos[g.cone[j]] })
}

// dFrontier lists gates whose output is still X (good or faulty) but which
// have a definite good/faulty difference on some input. The returned slice
// is scratch, valid until the next call. Only the fault cone is scanned: a
// difference cannot exist anywhere else.
func (g *Generator) dFrontier(f faultsim.Fault) []int {
	out := g.dfBuf[:0]
	for _, gi := range g.cone {
		gate := &g.net.Gates[gi]
		if gate.Type == netlist.Input {
			continue
		}
		if g.good[gi] != vX && g.bad[gi] != vX {
			continue
		}
		for pin, fi := range gate.Fanin {
			gv, bv := g.good[fi], g.bad[fi]
			if f.Gate == gi && f.Pin == pin {
				bv = f.Stuck
			}
			if gv != vX && bv != vX && gv != bv {
				out = append(out, gi)
				break
			}
		}
	}
	g.dfBuf = out
	return out
}

// xPathToOutput reports whether a path of X-valued gates leads from gate
// gi to some primary output (gi itself may hold a definite faulty value —
// only the forward path must still be open).
func (g *Generator) xPathToOutput(gi int) bool {
	if g.isOutput[gi] {
		return true
	}
	g.seenEpoch++
	if g.seenEpoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(g.seen)
		g.seenEpoch = 1
	}
	stack := g.dfStack[:0]
	stack = append(stack, gi)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.fanout[cur] {
			if g.seen[fo] == g.seenEpoch {
				continue
			}
			g.seen[fo] = g.seenEpoch
			if g.good[fo] != vX && g.bad[fo] != vX {
				continue // definite value: propagation blocked here
			}
			if g.isOutput[fo] {
				g.dfStack = stack
				return true
			}
			stack = append(stack, fo)
		}
	}
	g.dfStack = stack
	return false
}

// nonControlling returns the value that does not decide the gate's output.
func nonControlling(t netlist.GateType) (uint8, bool) {
	switch t {
	case netlist.And, netlist.Nand:
		return v1, true
	case netlist.Or, netlist.Nor:
		return v0, true
	default:
		return vX, false
	}
}

// backtrace walks an objective (gate, value) backwards to an unassigned
// primary input, inverting the target value through inverting gates and
// choosing the easiest-to-control fan-in by the SCOAP weights.
func (g *Generator) backtrace(gate int, val uint8) (piIdx int, piVal uint8, ok bool) {
	n := g.net
	cur, want := gate, val
	for steps := 0; steps < n.NumGates()+1; steps++ {
		gt := &n.Gates[cur]
		if gt.Type == netlist.Input {
			if g.good[cur] != vX {
				return 0, 0, false // already assigned; objective unreachable
			}
			if ii := g.inputIdx[cur]; ii >= 0 {
				return ii, want, true
			}
			return 0, 0, false
		}
		// Choose the X fan-in that is cheapest for the required value,
		// flipping the wanted value through inverting gates.
		nextWant := want
		switch gt.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			nextWant = want ^ 1
		}
		bestFi, bestCost := -1, 1<<30
		for _, fi := range gt.Fanin {
			if g.good[fi] != vX {
				continue
			}
			cost := g.cc0[fi]
			if nextWant == v1 {
				cost = g.cc1[fi]
			}
			if cost < bestCost {
				bestCost = cost
				bestFi = fi
			}
		}
		if bestFi < 0 {
			return 0, 0, false
		}
		cur, want = bestFi, nextWant
	}
	return 0, 0, false
}

// Result is the outcome of a full-circuit ATPG run.
type Result struct {
	Cubes *cube.Set
	// Patterns are the fully specified patterns used for fault dropping
	// (the cubes with X filled pseudorandomly), in cube order. Empty when
	// FaultDrop is off.
	Patterns [][]uint8
	// Detected counts faults covered by the generated cubes (including
	// fault-drop credit). Untestable counts faults PODEM proved redundant
	// (decision space exhausted); Aborted counts faults abandoned at the
	// backtrack limit — unlike untestables they still count against
	// coverage.
	Detected   int
	Untestable int
	Aborted    int
	Coverage   float64 // detected / (total - untestable)
}

// Options tunes RunAll.
type Options struct {
	// FaultDrop simulates each new cube (X-filled randomly) against the
	// remaining faults and drops everything it detects, like Atalanta.
	FaultDrop bool
	// FillSeed keys the random X-fill used for fault dropping.
	FillSeed uint64
	// BacktrackLimit overrides the generator default when > 0.
	BacktrackLimit int
	// Workers parallelizes RunAll: cube generation runs speculatively on a
	// pool of per-worker Generators over a sliding window of upcoming
	// faults, and the fault-drop sweep of each committed 64-pattern batch
	// is sharded across a pool of fault simulators. 0 or negative means
	// one worker per CPU. Results commit strictly in fault-index order, so
	// the emitted cubes, patterns and counters are bit-identical for any
	// value.
	Workers int
}

// RunAll generates test cubes for every fault of the universe.
//
// With FaultDrop on, committed patterns accumulate into 64-wide batches so
// every DetectAll sweep over the remaining universe fills all 64 simulator
// lanes; between sweeps each PODEM candidate is first checked against the
// pending (not yet swept) lanes with one event-driven DetectMask. A fault
// therefore reaches PODEM exactly when no earlier committed pattern
// detects it — the same rule as the classic sweep-after-every-pattern
// loop, which this replaces bit for bit at a fraction of the simulation
// work.
func RunAll(u *faultsim.Universe, opt Options) (*Result, error) {
	workers := faultsim.Options{Workers: opt.Workers}.PoolSize(len(u.Faults))
	sims, err := faultsim.NewSimulatorPool(u, workers)
	if err != nil {
		return nil, err
	}
	r := &runner{
		u:    u,
		opt:  opt,
		sims: sims,
		src:  prng.New(opt.FillSeed),
		res:  &Result{Cubes: cube.NewSet(len(u.Net.Inputs))},
		done: make([]bool, len(u.Faults)),
	}
	if workers > 1 {
		err = r.runPipelined(workers)
	} else {
		err = r.runSerial()
	}
	if err != nil {
		return nil, err
	}
	if den := len(u.Faults) - r.res.Untestable; den > 0 {
		r.res.Coverage = float64(r.res.Detected) / float64(den)
	}
	return r.res, nil
}

// runner holds the shared state of one RunAll invocation. All of it is
// owned by the committing goroutine — generation workers only ever touch
// their own job slots — so the done evolution, the FillSeed stream and
// every counter advance in fault-index order regardless of scheduling.
type runner struct {
	u    *faultsim.Universe
	opt  Options
	sims []*faultsim.Simulator // sims[0] accumulates the pending batch
	src  *prng.Source
	res  *Result
	done []bool
}

func (r *runner) newGenerator() (*Generator, error) {
	g, err := New(r.u.Net)
	if err != nil {
		return nil, err
	}
	if r.opt.BacktrackLimit > 0 {
		g.BacktrackLimit = r.opt.BacktrackLimit
	}
	return g, nil
}

// runSerial is the one-worker path: generate at the commit point, no
// speculation. Batching and the pending-lane check are identical to the
// pipelined path, so results match for any worker count.
func (r *runner) runSerial() error {
	g, err := r.newGenerator()
	if err != nil {
		return err
	}
	for fi, f := range r.u.Faults {
		if r.done[fi] || r.dropPending(fi) {
			continue
		}
		c, status := g.Generate(f)
		if err := r.commit(fi, c, status); err != nil {
			return err
		}
	}
	return nil
}

// specJob is one speculative PODEM run. The owning worker writes c and
// status, then closes ready; the committer reads them only after <-ready.
type specJob struct {
	fi     int
	c      cube.Cube
	status Status
	ready  chan struct{}
}

// runPipelined overlaps PODEM with committing: a pool of per-worker
// Generators speculatively processes a sliding window of upcoming
// not-yet-dropped faults while results commit strictly in fault-index
// order. PODEM for one fault depends only on the fault (never on done), so
// a speculative run is either committed unchanged or — when its target was
// dropped by an earlier committed pattern in the meantime — discarded
// without side effects. Speculation therefore only spends bounded extra
// work; it cannot change the output.
func (r *runner) runPipelined(workers int) error {
	gens := make([]*Generator, workers)
	for i := range gens {
		g, err := r.newGenerator()
		if err != nil {
			return err
		}
		gens[i] = g
	}
	depth := 4 * workers // speculation window; bounds wasted PODEM runs
	jobs := make(chan *specJob, depth)
	var wg sync.WaitGroup
	for _, g := range gens {
		wg.Add(1)
		go func(g *Generator) {
			defer wg.Done()
			for j := range jobs {
				j.c, j.status = g.Generate(r.u.Faults[j.fi])
				close(j.ready)
			}
		}(g)
	}
	window := make([]*specJob, 0, depth)
	next, closed := 0, false
	// dispatch tops the window up with the next faults not already dropped,
	// applying the pending-lane check eagerly: a fault the pending patterns
	// already detect would be dropped at its commit turn anyway (committed
	// patterns only accumulate between now and then), so dropping it here
	// yields the same result and skips a wasted speculative PODEM run.
	// Only the committing goroutine mutates done, so the reads are
	// race-free; a fault dropped after dispatch is discarded at commit.
	dispatch := func() {
		for len(window) < depth && next < len(r.u.Faults) {
			if !r.done[next] && !r.dropPending(next) {
				j := &specJob{fi: next, ready: make(chan struct{})}
				window = append(window, j)
				jobs <- j
			}
			next++
		}
		if next == len(r.u.Faults) && !closed {
			close(jobs)
			closed = true
		}
	}
	defer func() {
		// On an early error return: stop feeding, let the workers drain the
		// queue, and join them so no goroutine outlives the call.
		if !closed {
			close(jobs)
		}
		for _, j := range window {
			<-j.ready
		}
		wg.Wait()
	}()
	for {
		dispatch()
		if len(window) == 0 {
			return nil
		}
		j := window[0]
		window = window[1:]
		<-j.ready
		if r.done[j.fi] || r.dropPending(j.fi) {
			continue // dropped since dispatch: discard the speculation
		}
		if err := r.commit(j.fi, j.c, j.status); err != nil {
			return err
		}
	}
}

// dropPending checks one PODEM candidate against the patterns committed
// since the last full sweep — exactly the faults the per-pattern loop
// would have dropped before reaching this candidate.
func (r *runner) dropPending(fi int) bool {
	if !r.opt.FaultDrop || r.sims[0].PatternCount() == 0 {
		return false
	}
	if !r.sims[0].DetectAny(r.u.Faults[fi]) {
		return false
	}
	r.done[fi] = true
	r.res.Detected++
	return true
}

// commit applies one PODEM outcome in fault-index order.
func (r *runner) commit(fi int, c cube.Cube, status Status) error {
	switch status {
	case StatusUntestable:
		r.res.Untestable++
		r.done[fi] = true
		return nil
	case StatusAborted:
		r.res.Aborted++
		r.done[fi] = true
		return nil
	}
	r.res.Detected++
	r.done[fi] = true
	if err := r.res.Cubes.Add(c); err != nil {
		return err
	}
	if !r.opt.FaultDrop {
		return nil
	}
	// Random-fill the cube's don't-cares. The fill stream is consumed in
	// commit order, so the patterns are independent of worker count.
	pat := make([]uint8, c.Width())
	for i := 0; i < c.Width(); i++ {
		switch v := c.Get(i); v {
		case -1:
			pat[i] = r.src.Bit()
		default:
			pat[i] = uint8(v)
		}
	}
	r.res.Patterns = append(r.res.Patterns, pat)
	if err := r.sims[0].AppendPattern(pat); err != nil {
		return err
	}
	if r.sims[0].PatternCount() == 64 {
		r.sweep()
	}
	return nil
}

// sweep runs the accumulated full-width batch against every remaining
// fault, sharded across the simulator pool, and starts a fresh batch. No
// flush is needed after the last fault: every fault has been committed or
// dropped by then, so a final sweep could not mark anything new.
func (r *runner) sweep() {
	for _, s := range r.sims[1:] {
		s.AdoptPatterns(r.sims[0])
	}
	r.res.Detected += faultsim.DetectAll(r.sims, r.u.Faults, r.done)
	r.sims[0].ResetPatterns()
}
