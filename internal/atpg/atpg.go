// Package atpg is a PODEM-style deterministic test pattern generator for
// single stuck-at faults over internal/netlist circuits — the final piece
// of the Atalanta substitute (ARCHITECTURE.md §②). It produces test *cubes*
// (patterns with don't-cares), which is exactly what the paper's encoding
// flow consumes: the fewer bits PODEM needs to specify, the more cubes a
// seed window can absorb.
//
// The implementation is textbook PODEM (Goel 1981): a fault is activated
// by justifying the complement of the stuck value at the fault site and
// propagated by repeatedly advancing the D-frontier, with all value
// decisions made at primary inputs only, found by backtracing objectives
// through easiest-to-control paths, and undone on conflict with
// chronological backtracking under a backtrack limit.
//
// The engine is split in two (mirroring faultsim's Universe/Simulator):
// Tables holds the immutable per-netlist structures, built once and shared;
// Generator is cheap per-worker scratch. Implication is event-driven: a PI
// assignment propagates 3-valued good/faulty values only through the
// changed cone via a levelized event queue, every change is recorded on a
// trail so backtracking undoes exactly the changed gates, and the
// D-frontier is maintained incrementally from the same change events. The
// old full-resimulation engine is kept in reference_test.go as the oracle
// the differential and fuzz tests compare states and results against.
package atpg

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/prng"
)

// Three-valued logic constants. D ("good 1 / faulty 0") and D' are
// represented as the pair of good/faulty values, not separate constants.
const (
	v0 uint8 = 0
	v1 uint8 = 1
	vX uint8 = 2
)

// trailEntry records one gate's pre-change values so backtracking can
// restore them in O(changed cone) instead of re-simulating the circuit.
type trailEntry struct {
	gate      int32
	good, bad uint8
}

// decision is one PODEM decision-stack frame. mark is the trail length
// before the decision's implication, i.e. the undo point. forced frames
// (multiple backtrace only) hold values proven necessary for activation:
// backtracking pops them without trying the opposite branch.
type decision struct {
	input   int // index into net.Inputs
	value   uint8
	flipped bool
	forced  bool
	mark    int
}

// Generator holds the per-worker scratch of the PODEM engine. Build one
// per goroutine from shared Tables (Tables.NewGenerator); the convenience
// constructor New builds private tables for one-off use.
type Generator struct {
	t *Tables

	good, bad []uint8 // 3-valued good/faulty circuit values

	fault faultsim.Fault // fault of the Generate in progress

	// Levelized event queue of the implication wave in progress: per-level
	// buckets of gates scheduled for re-evaluation, stamped by wave so a
	// gate is queued at most once per wave.
	levels [][]int
	queued []uint32
	minLv  int

	// trail records every value change since begin; decisions store marks
	// into it.
	trail []trailEntry

	// Fault output cone (unordered) — the only gates where good and faulty
	// values can differ, hence the only candidates for the D-frontier and
	// the only gates whose faulty value needs evaluating at all.
	cone     []int
	coneMark []bool

	// detCount tracks how many primary outputs currently show a definite
	// good/faulty difference, maintained incrementally by every value
	// change and undo so detected() is O(1) instead of a full output scan
	// per PODEM iteration.
	detCount int

	// Incremental D-frontier: inFrontier is the membership truth,
	// frontier/inList an insert-only list with lazy deletion (compacted by
	// dFrontier), dirty the cone gates whose membership may have changed in
	// the current wave.
	inFrontier []bool
	inList     []bool
	frontier   []int
	dirty      []int
	dirtyStamp []uint32

	wave uint32 // shared epoch for queued and dirtyStamp

	// Per-objective scratch: the sorted frontier snapshot and the
	// epoch-stamped visit marks of the X-path DFS.
	dfBuf     []int
	dfStack   []int
	seen      []uint32
	seenEpoch uint32

	gbuf, bbuf []uint8
	decisions  []decision

	// mb is the multiple-backtrace scratch (vote counters, forced-chain
	// marks), allocated on the first BacktraceMulti decision.
	mb *multiScratch

	// Ctx, when non-nil, makes Generate cooperatively cancellable: the
	// context is polled once every cancelCheckStride decision-loop
	// iterations (amortized — the overhead is unmeasurable, and an
	// uncancelled run is bit-identical to one without a context). A
	// cancelled Generate abandons its fault with StatusCanceled.
	Ctx context.Context

	// ctxTick counts decision-loop iterations since the last context poll.
	ctxTick int

	// implyHook, when non-nil, runs after every completed implication
	// (begin and each assign). The differential tests install it to compare
	// the incremental good/bad state against a full re-simulation.
	implyHook func()

	// Strategy selects the decision heuristic: the classic single-objective
	// SCOAP backtrace (the zero value) or the FAN/SOCRATES-style multiple
	// backtrace with early conflict detection (see backtrace.go).
	Strategy Backtrace

	// Backtracks counts the chronological backtracks of the most recent
	// Generate call — the decision-quality metric the backtrace strategies
	// compete on.
	Backtracks int

	// BacktrackLimit bounds the backtracks of one Generate call; past it
	// the fault is abandoned as StatusAborted.
	BacktrackLimit int
}

// New prepares a generator with private tables for a circuit. Callers that
// run many generators over one netlist should build Tables once and use
// Tables.NewGenerator instead.
func New(n *netlist.Netlist) (*Generator, error) {
	t, err := NewTables(n)
	if err != nil {
		return nil, err
	}
	return t.NewGenerator(), nil
}

// Status classifies the outcome of one PODEM run.
type Status int

const (
	// StatusDetected: a test cube was found.
	StatusDetected Status = iota
	// StatusUntestable: the full decision space was exhausted — the fault
	// is provably redundant.
	StatusUntestable
	// StatusAborted: the backtrack limit was hit before a proof either way.
	StatusAborted
	// StatusCanceled: the Generator's Ctx was cancelled mid-run; the fault
	// was abandoned without a verdict. Never produced without a context.
	StatusCanceled
)

// String names the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case StatusDetected:
		return "detected"
	case StatusUntestable:
		return "untestable"
	case StatusAborted:
		return "aborted"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Generate runs PODEM for one fault and returns the test cube over the
// circuit's inputs (X = unassigned) together with the run status.
func (g *Generator) Generate(f faultsim.Fault) (cube.Cube, Status) {
	n := g.t.net
	g.begin(f)
	stack := g.decisions[:0]
	g.Backtracks = 0

	for {
		if g.canceled() {
			g.decisions = stack
			return cube.Cube{}, StatusCanceled
		}
		if g.detected() {
			c := cube.New(len(n.Inputs))
			for ii, gi := range n.Inputs {
				if g.good[gi] != vX {
					c.Set(ii, g.good[gi])
				}
			}
			g.decisions = stack
			return c, StatusDetected
		}
		var piIdx int
		var piVal uint8
		var decided, forced bool
		if g.Strategy == BacktraceMulti {
			piIdx, piVal, decided, forced = g.multiDecision()
		} else {
			piIdx, piVal, decided = g.classicDecision()
		}
		if !decided {
			// Conflict or no X-path: chronological backtracking. The trail
			// restores exactly the gates each abandoned decision changed.
			// Forced frames pop without a flip: their opposite branch is
			// provably futile.
			for {
				if len(stack) == 0 {
					g.decisions = stack
					return cube.Cube{}, StatusUntestable
				}
				top := &stack[len(stack)-1]
				if !top.flipped && !top.forced {
					top.flipped = true
					top.value ^= 1
					g.undoTo(top.mark)
					g.assign(top.input, top.value)
					g.Backtracks++
					if g.Backtracks > g.BacktrackLimit {
						g.decisions = stack
						return cube.Cube{}, StatusAborted
					}
					break
				}
				g.undoTo(top.mark)
				stack = stack[:len(stack)-1]
			}
			continue
		}
		stack = append(stack, decision{input: piIdx, value: piVal, forced: forced, mark: len(g.trail)})
		g.assign(piIdx, piVal)
	}
}

// cancelCheckStride is how many decision-loop iterations pass between
// context polls. Each iteration does at least one objective/backtrace walk
// (hundreds of ns), so polling every 256 iterations keeps cancellation
// latency in the tens of microseconds while the amortized poll cost stays
// below measurement noise.
const cancelCheckStride = 256

// canceled polls the generator's context, amortized over
// cancelCheckStride decision-loop iterations.
func (g *Generator) canceled() bool {
	if g.Ctx == nil {
		return false
	}
	g.ctxTick++
	if g.ctxTick < cancelCheckStride {
		return false
	}
	g.ctxTick = 0
	return g.Ctx.Err() != nil
}

// begin resets the engine for one fault: all values X, the fault injected,
// and its constant effects propagated through the fault cone.
func (g *Generator) begin(f faultsim.Fault) {
	g.fault = f
	copy(g.good, g.t.xfill)
	copy(g.bad, g.t.xfill)
	for _, gi := range g.frontier {
		g.inFrontier[gi] = false
		g.inList[gi] = false
	}
	g.frontier = g.frontier[:0]
	g.dirty = g.dirty[:0]
	g.trail = g.trail[:0]
	g.detCount = 0 // all values X: no output can show a difference
	g.computeCone(f)
	g.newWave()
	if f.Pin == -1 {
		// The site's faulty value is the stuck constant from the start —
		// part of the base state, below every undo mark.
		g.bad[f.Gate] = f.Stuck
		g.markDirty(f.Gate)
		for _, fo := range g.t.fanout[f.Gate] {
			g.markDirty(fo)
			g.schedule(fo)
		}
	} else {
		// An input-pin fault only changes how f.Gate evaluates.
		g.markDirty(f.Gate)
		g.schedule(f.Gate)
	}
	g.run()
}

// newWave opens a fresh event epoch for the queue and dirty stamps.
func (g *Generator) newWave() {
	g.wave++
	if g.wave == 0 { // uint32 wrap: every stale stamp would look current
		clear(g.queued)
		clear(g.dirtyStamp)
		g.wave = 1
	}
	g.minLv = len(g.levels)
}

// schedule queues a gate for re-evaluation in the current wave. Fan-outs
// are strictly deeper than their drivers, so buckets at or below the
// cursor are never appended to while run drains the queue.
func (g *Generator) schedule(gi int) {
	if g.queued[gi] == g.wave {
		return
	}
	g.queued[gi] = g.wave
	lv := g.t.level[gi]
	g.levels[lv] = append(g.levels[lv], gi)
	if lv < g.minLv {
		g.minLv = lv
	}
}

// computeCone collects the fault site's output cone — unordered; only
// membership matters here, for confining faulty-value evaluation and
// frontier maintenance.
func (g *Generator) computeCone(f faultsim.Fault) {
	for _, gi := range g.cone {
		g.coneMark[gi] = false
	}
	g.cone = g.cone[:0]
	stack := g.dfStack[:0]
	g.coneMark[f.Gate] = true
	g.cone = append(g.cone, f.Gate)
	stack = append(stack, f.Gate)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.t.fanout[cur] {
			if !g.coneMark[fo] {
				g.coneMark[fo] = true
				g.cone = append(g.cone, fo)
				stack = append(stack, fo)
			}
		}
	}
	g.dfStack = stack[:0]
}

// markDirty queues a gate for a D-frontier membership re-check. Gates
// outside the fault cone can never hold a good/faulty difference on a
// fan-in, so they are never candidates and are skipped outright.
func (g *Generator) markDirty(gi int) {
	if !g.coneMark[gi] || g.dirtyStamp[gi] == g.wave {
		return
	}
	g.dirtyStamp[gi] = g.wave
	g.dirty = append(g.dirty, gi)
}

// setValue applies one gate's new 3-valued pair, records the old pair on
// the trail, and wakes the gate's fan-out cone (events + frontier checks).
func (g *Generator) setValue(gi int, ng, nb uint8) {
	g.trail = append(g.trail, trailEntry{gate: int32(gi), good: g.good[gi], bad: g.bad[gi]})
	g.detDelta(gi, g.good[gi], g.bad[gi], ng, nb)
	g.good[gi] = ng
	g.bad[gi] = nb
	g.markDirty(gi)
	for _, fo := range g.t.fanout[gi] {
		g.markDirty(fo)
		g.schedule(fo)
	}
}

// detDelta adjusts the detecting-output count when gate gi's value pair
// moves from (og, ob) to (ng, nb).
func (g *Generator) detDelta(gi int, og, ob, ng, nb uint8) {
	if !g.t.isOutput[gi] {
		return
	}
	if og != vX && ob != vX && og != ob {
		g.detCount--
	}
	if ng != vX && nb != vX && ng != nb {
		g.detCount++
	}
}

// assign sets one primary input and propagates the consequences through
// the changed cone.
func (g *Generator) assign(piIdx int, val uint8) {
	gi := g.t.net.Inputs[piIdx]
	g.newWave()
	nb := val
	if g.fault.Gate == gi && g.fault.Pin == -1 {
		nb = g.bad[gi] // the fault site's faulty value stays stuck
	}
	g.setValue(gi, val, nb)
	g.run()
}

// run drains the event queue level by level. Each gate is re-evaluated at
// most once per wave, with final fan-in values (all drivers are at
// strictly lower levels), so the resulting state is exactly the full
// 3-valued re-simulation of the circuit.
func (g *Generator) run() {
	for lv := g.minLv; lv < len(g.levels); lv++ {
		bucket := g.levels[lv]
		if len(bucket) == 0 {
			continue
		}
		for _, gi := range bucket {
			g.evalGate(gi)
		}
		g.levels[lv] = bucket[:0]
	}
	g.flushFrontier()
	if g.implyHook != nil {
		g.implyHook()
	}
}

// evalGate recomputes one gate's good/faulty pair with the fault injected
// and emits a change event if the pair moved. Outside the fault cone the
// faulty circuit is indistinguishable from the good one (every fan-in has
// bad == good), so only one evaluation is needed there.
func (g *Generator) evalGate(gi int) {
	gate := &g.t.net.Gates[gi]
	f := g.fault
	if !g.coneMark[gi] {
		g.gbuf = g.gbuf[:0]
		for _, fi := range gate.Fanin {
			g.gbuf = append(g.gbuf, g.good[fi])
		}
		ng := eval3(gate.Type, g.gbuf)
		if ng == g.good[gi] {
			return // reconverged: nothing propagates
		}
		g.setValue(gi, ng, ng)
		return
	}
	g.gbuf, g.bbuf = g.gbuf[:0], g.bbuf[:0]
	for pin, fi := range gate.Fanin {
		gv, bv := g.good[fi], g.bad[fi]
		if f.Gate == gi && f.Pin == pin {
			bv = f.Stuck
		}
		g.gbuf = append(g.gbuf, gv)
		g.bbuf = append(g.bbuf, bv)
	}
	ng := eval3(gate.Type, g.gbuf)
	nb := eval3(gate.Type, g.bbuf)
	if f.Gate == gi && f.Pin == -1 {
		nb = f.Stuck
	}
	if ng == g.good[gi] && nb == g.bad[gi] {
		return // reconverged: nothing propagates
	}
	g.setValue(gi, ng, nb)
}

// undoTo rewinds the trail to a decision mark, restoring exactly the gates
// changed since — O(changed cone), no re-simulation — and re-checks the
// frontier membership of everything touched.
func (g *Generator) undoTo(mark int) {
	g.newWave()
	for len(g.trail) > mark {
		e := g.trail[len(g.trail)-1]
		g.trail = g.trail[:len(g.trail)-1]
		gi := int(e.gate)
		g.detDelta(gi, g.good[gi], g.bad[gi], e.good, e.bad)
		g.good[gi] = e.good
		g.bad[gi] = e.bad
		g.markDirty(gi)
		for _, fo := range g.t.fanout[gi] {
			g.markDirty(fo)
		}
	}
	g.flushFrontier()
}

// flushFrontier re-evaluates D-frontier membership for every gate whose
// own or fan-in values changed this wave. Insertions append to the
// frontier list; deletions just clear the truth bit and are compacted
// lazily by dFrontier.
func (g *Generator) flushFrontier() {
	for _, d := range g.dirty {
		if g.isFrontier(d) {
			if !g.inFrontier[d] {
				g.inFrontier[d] = true
				if !g.inList[d] {
					g.inList[d] = true
					g.frontier = append(g.frontier, d)
				}
			}
		} else {
			g.inFrontier[d] = false
		}
	}
	g.dirty = g.dirty[:0]
}

// isFrontier reports whether a gate is on the D-frontier: output still X
// (good or faulty) with a definite good/faulty difference on some input.
func (g *Generator) isFrontier(gi int) bool {
	gate := &g.t.net.Gates[gi]
	if gate.Type == netlist.Input {
		return false
	}
	if g.good[gi] != vX && g.bad[gi] != vX {
		return false
	}
	for pin, fi := range gate.Fanin {
		gv, bv := g.good[fi], g.bad[fi]
		if g.fault.Gate == gi && g.fault.Pin == pin {
			bv = g.fault.Stuck
		}
		if gv != vX && bv != vX && gv != bv {
			return true
		}
	}
	return false
}

// dFrontier returns the current D-frontier sorted in topological order —
// the same order the old full-scan produced, so objective's tie-breaks are
// unchanged. The returned slice is scratch, valid until the next call.
func (g *Generator) dFrontier() []int {
	live := g.frontier[:0]
	for _, gi := range g.frontier {
		if g.inFrontier[gi] {
			live = append(live, gi)
		} else {
			g.inList[gi] = false
		}
	}
	g.frontier = live
	out := append(g.dfBuf[:0], live...)
	// Insertion sort by topological position: the frontier is small and
	// nearly sorted, and this keeps objective allocation-free.
	pos := g.t.orderPos
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && pos[out[j]] < pos[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	g.dfBuf = out
	return out
}

// eval3 is 3-valued gate evaluation.
func eval3(t netlist.GateType, in []uint8) uint8 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		if in[0] == vX {
			return vX
		}
		return in[0] ^ 1
	case netlist.And, netlist.Nand:
		v := v1
		for _, b := range in {
			if b == v0 {
				v = v0
				break
			}
			if b == vX {
				v = vX
			}
		}
		if v != vX && t == netlist.Nand {
			v ^= 1
		}
		return v
	case netlist.Or, netlist.Nor:
		v := v0
		for _, b := range in {
			if b == v1 {
				v = v1
				break
			}
			if b == vX {
				v = vX
			}
		}
		if v != vX && t == netlist.Nor {
			v ^= 1
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := v0
		for _, b := range in {
			if b == vX {
				return vX
			}
			v ^= b
		}
		if t == netlist.Xnor {
			v ^= 1
		}
		return v
	default:
		panic(fmt.Sprintf("atpg: eval3 on %v", t))
	}
}

// detected reports whether some primary output shows a definite
// good/faulty difference, from the incrementally maintained count.
func (g *Generator) detected() bool {
	return g.detCount > 0
}

// objective returns the next signal/value to justify: fault activation
// first, then D-frontier advancement. feasible=false signals a dead end.
func (g *Generator) objective() (gate int, val uint8, feasible bool) {
	f := g.fault
	// Activation: the fault site's good value must be the complement of
	// the stuck value.
	site := f.Gate
	if f.Pin >= 0 {
		site = g.t.net.Gates[f.Gate].Fanin[f.Pin]
	}
	switch g.good[site] {
	case vX:
		return site, f.Stuck ^ 1, true
	case f.Stuck:
		return 0, 0, false // activation impossible under current assignment
	}
	// Propagation: pick the D-frontier gate closest to an output — among
	// those with an X-path to some primary output (propagation through
	// gates already set to definite values is impossible, so frontier
	// gates without an X-path are dead ends; pruning them here is the
	// classic X-path check that makes PODEM terminate quickly on blocked
	// faults). Gates whose good-side X fan-ins are all exhausted cannot
	// seed a backtrace, so the deepest gate that still has one wins; if
	// none has one the remaining unknowns ride the faulty circuit only and
	// badXObjective takes over. Declaring a dead end in either corner would
	// be unsound — exhaustion-based untestability proofs rely on every
	// infeasible verdict being a real dead end.
	best, bestAny := -1, -1
	for _, gi := range g.dFrontier() {
		if !g.xPathToOutput(gi) {
			continue
		}
		if bestAny < 0 || g.t.level[gi] > g.t.level[bestAny] {
			bestAny = gi
		}
		if !g.hasGoodXFanin(gi) {
			continue
		}
		if best < 0 || g.t.level[gi] > g.t.level[best] {
			best = gi
		}
	}
	if bestAny < 0 {
		return 0, 0, false
	}
	if best < 0 {
		return g.badXObjective(bestAny)
	}
	gate2 := &g.t.net.Gates[best]
	nc, ok := nonControlling(gate2.Type)
	if !ok {
		// XOR-ish gate: any X input can take either value; pick 0.
		nc = v0
	}
	for _, fi := range gate2.Fanin {
		if g.good[fi] == vX {
			return fi, nc, true
		}
	}
	return 0, 0, false
}

// hasGoodXFanin reports whether some fan-in of gi is still good-side X —
// the kind of fan-in a backtrace can justify.
func (g *Generator) hasGoodXFanin(gi int) bool {
	for _, fi := range g.t.net.Gates[gi].Fanin {
		if g.good[fi] == vX {
			return true
		}
	}
	return false
}

// badXObjective handles the frontier corner where no gate offers a
// good-side X fan-in: the difference is alive but every unknown sits on
// the faulty side (good values definite, bad values X — possible only
// inside the fault cone). Any bad-X signal's unknown ultimately comes from
// an unassigned primary input, reached by descending bad-X fan-ins until
// the good side turns X again; justifying that signal (either value — both
// get tried) resolves the faulty side and un-sticks the frontier.
func (g *Generator) badXObjective(gi int) (gate int, val uint8, feasible bool) {
	n := g.t.net
	cur := gi
	for steps := 0; steps < n.NumGates()+1; steps++ {
		if g.good[cur] == vX {
			return cur, v0, true
		}
		next := -1
		for _, fi := range n.Gates[cur].Fanin {
			if g.bad[fi] == vX {
				next = fi
				break
			}
		}
		if next < 0 {
			return 0, 0, false // defensive: a bad-X gate keeps a bad-X fan-in
		}
		cur = next
	}
	return 0, 0, false
}

// xPathToOutput reports whether a path of X-valued gates leads from gate
// gi to some primary output (gi itself may hold a definite faulty value —
// only the forward path must still be open).
func (g *Generator) xPathToOutput(gi int) bool {
	if g.t.isOutput[gi] {
		return true
	}
	g.seenEpoch++
	if g.seenEpoch == 0 { // uint32 wrap: every stale stamp would look current
		clear(g.seen)
		g.seenEpoch = 1
	}
	stack := g.dfStack[:0]
	stack = append(stack, gi)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.t.fanout[cur] {
			if g.seen[fo] == g.seenEpoch {
				continue
			}
			g.seen[fo] = g.seenEpoch
			if g.good[fo] != vX && g.bad[fo] != vX {
				continue // definite value: propagation blocked here
			}
			if g.t.isOutput[fo] {
				g.dfStack = stack
				return true
			}
			stack = append(stack, fo)
		}
	}
	g.dfStack = stack
	return false
}

// nonControlling returns the value that does not decide the gate's output.
func nonControlling(t netlist.GateType) (uint8, bool) {
	switch t {
	case netlist.And, netlist.Nand:
		return v1, true
	case netlist.Or, netlist.Nor:
		return v0, true
	default:
		return vX, false
	}
}

// backtrace walks an objective (gate, value) backwards to an unassigned
// primary input, inverting the target value through inverting gates and
// choosing the easiest-to-control fan-in by the SCOAP weights.
func (g *Generator) backtrace(gate int, val uint8) (piIdx int, piVal uint8, ok bool) {
	n := g.t.net
	cur, want := gate, val
	for steps := 0; steps < n.NumGates()+1; steps++ {
		gt := &n.Gates[cur]
		if gt.Type == netlist.Input {
			if g.good[cur] != vX {
				return 0, 0, false // already assigned; objective unreachable
			}
			if ii := g.t.inputIdx[cur]; ii >= 0 {
				return ii, want, true
			}
			return 0, 0, false
		}
		// Choose the X fan-in that is cheapest for the required value,
		// flipping the wanted value through inverting gates.
		nextWant := want
		switch gt.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			nextWant = want ^ 1
		}
		bestFi, bestCost := -1, 1<<30
		for _, fi := range gt.Fanin {
			if g.good[fi] != vX {
				continue
			}
			cost := g.t.cc0[fi]
			if nextWant == v1 {
				cost = g.t.cc1[fi]
			}
			if cost < bestCost {
				bestCost = cost
				bestFi = fi
			}
		}
		if bestFi < 0 {
			return 0, 0, false
		}
		cur, want = bestFi, nextWant
	}
	return 0, 0, false
}

// Result is the outcome of a full-circuit ATPG run.
type Result struct {
	// Cubes are the generated test cubes, in fault-index commit order.
	Cubes *cube.Set
	// Patterns are the fully specified patterns used for fault dropping
	// (the cubes with X filled pseudorandomly), in cube order. Empty when
	// FaultDrop is off.
	Patterns [][]uint8
	// Detected counts faults covered by the generated cubes (including
	// fault-drop credit).
	Detected int
	// Untestable counts faults PODEM proved redundant (decision space
	// exhausted).
	Untestable int
	// Aborted counts faults abandoned at the backtrack limit — unlike
	// untestables they still count against coverage.
	Aborted int
	// Backtracks totals the chronological backtracks of every committed
	// PODEM run — the decision-quality cost the Backtrace strategies
	// compete on. Like every other counter it is independent of Workers
	// (discarded speculative runs are excluded).
	Backtracks int
	// Coverage is detected / (total - untestable).
	Coverage float64
}

// Options tunes RunAll.
type Options struct {
	// FaultDrop simulates each new cube (X-filled randomly) against the
	// remaining faults and drops everything it detects, like Atalanta.
	FaultDrop bool
	// FillSeed keys the random X-fill used for fault dropping.
	FillSeed uint64
	// BacktrackLimit overrides the generator default when > 0.
	BacktrackLimit int
	// Backtrace selects the decision heuristic of every PODEM worker: the
	// classic single-objective SCOAP backtrace (the zero value,
	// BacktraceSCOAP) or the FAN/SOCRATES-style multiple backtrace
	// (BacktraceMulti). Strategies produce different — but equally valid
	// and fault-simulator-verified — cubes; within one strategy results
	// stay bit-identical for any Workers value.
	Backtrace Backtrace
	// Workers parallelizes RunAll: cube generation runs speculatively on a
	// pool of per-worker Generators over a sliding window of upcoming
	// faults, and the fault-drop sweep of each committed 64-pattern batch
	// is sharded across a pool of fault simulators. 0 or negative means
	// one worker per CPU. Results commit strictly in fault-index order, so
	// the emitted cubes, patterns and counters are bit-identical for any
	// value.
	Workers int
	// LaneWords widens every fault-drop simulator to that many 64-bit
	// pattern words (faultsim.Options.LaneWords), so committed patterns
	// accumulate into 64×LaneWords-wide batches — 256/512 at 4/8 — before
	// each drop sweep. 0 or negative keeps the single-word engine. Cubes,
	// patterns and every counter are bit-identical for any value: a fault
	// reaches PODEM exactly when no earlier committed pattern detects it,
	// regardless of sweep cadence (pending lanes are checked at each
	// fault's commit turn), so widening only trades sweep frequency for
	// sweep width.
	LaneWords int
	// Tables optionally supplies prebuilt shared tables for the universe's
	// netlist, so repeated RunAll calls over one circuit skip rebuilding
	// levelization, fan-out lists and SCOAP weights. When nil, RunAll
	// builds them once per invocation (never once per worker).
	Tables *Tables
	// CheckpointEvery, when > 0 together with Checkpoint, snapshots the
	// run every that-many committed faults. Cadence counts commits (not
	// drops), so the interval between snapshots is bounded by PODEM work,
	// the expensive part.
	CheckpointEvery int
	// Checkpoint receives each snapshot on the committing goroutine. The
	// snapshot aliases live engine state: serialize or deep-copy it before
	// returning, and never retain it (see Checkpoint's doc comment).
	Checkpoint func(*Checkpoint)
	// Resume, when non-nil, starts the run from a prior snapshot instead
	// of from scratch; the final Result is bit-identical to the
	// uninterrupted run's. The checkpoint must Match the universe or
	// RunAll fails before touching any fault.
	Resume *Checkpoint
}

// RunAll generates test cubes for every fault of the universe.
//
// With FaultDrop on, committed patterns accumulate into 64×LaneWords-wide
// batches so every sharded sweep over the remaining universe fills all the
// simulator lanes; between sweeps each PODEM candidate is first checked
// against the pending (not yet swept) lanes with one event-driven
// DetectAny. A fault
// therefore reaches PODEM exactly when no earlier committed pattern
// detects it — the same rule as the classic sweep-after-every-pattern
// loop, which this replaces bit for bit at a fraction of the simulation
// work.
func RunAll(u *faultsim.Universe, opt Options) (*Result, error) {
	return RunAllCtx(context.Background(), u, opt)
}

// RunAllCtx is RunAll with cooperative cancellation: the context is polled
// at every fault boundary and, amortized, inside each PODEM run, so a
// cancel or deadline takes effect within microseconds of the engines
// noticing it. A cancelled run returns the partial Result accumulated so
// far (counters and cubes for every fault committed before the cancel,
// coverage computed over the full universe) alongside an error wrapping
// context.Canceled or context.DeadlineExceeded. An uncancelled run is
// bit-identical to RunAll.
func RunAllCtx(ctx context.Context, u *faultsim.Universe, opt Options) (*Result, error) {
	tables := opt.Tables
	if tables == nil {
		t, err := NewTables(u.Net)
		if err != nil {
			return nil, err
		}
		tables = t
	} else if !tables.Valid(u.Net) {
		// Stale tables would index out of range or silently miss outputs
		// deep in the engine; fail loudly instead.
		return nil, fmt.Errorf("atpg: Options.Tables built over a different netlist (or the netlist was mutated after NewTables)")
	}
	simOpts := faultsim.Options{Workers: opt.Workers, LaneWords: opt.LaneWords}
	workers := simOpts.PoolSize(len(u.Faults))
	sims, err := faultsim.NewSimulatorPoolLanes(u, workers, simOpts.LaneWordCount())
	if err != nil {
		return nil, err
	}
	r := &runner{
		ctx:      ctx,
		u:        u,
		opt:      opt,
		tables:   tables,
		sims:     sims,
		capacity: sims[0].Capacity(),
		src:      prng.New(opt.FillSeed),
		res:      &Result{Cubes: cube.NewSet(len(u.Net.Inputs))},
		done:     make([]bool, len(u.Faults)),
	}
	if opt.FaultDrop {
		// Stream the drop sweeps in deterministic shards when the universe
		// is the canonical NewUniverse enumeration (always, in practice);
		// a custom fault list falls back to the materialized sweep.
		if fs := faultsim.NewFaultShards(u.Net, 0); fs.Matches(u.Faults) {
			r.shards = fs
		}
	}
	if opt.Resume != nil {
		if err := r.restore(opt.Resume); err != nil {
			return nil, err
		}
	}
	if workers > 1 {
		err = r.runPipelined(workers)
	} else {
		err = r.runSerial()
	}
	if den := len(u.Faults) - r.res.Untestable; den > 0 {
		r.res.Coverage = float64(r.res.Detected) / float64(den)
	}
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled or deadline-exceeded: hand back the partial progress
			// with a typed (errors.Is-able) error instead of garbage.
			return r.res, fmt.Errorf("atpg: run stopped after %d/%d faults: %w",
				r.res.Detected+r.res.Untestable+r.res.Aborted, len(u.Faults), ctx.Err())
		}
		return nil, err
	}
	return r.res, nil
}

// runner holds the shared state of one RunAll invocation. All of it is
// owned by the committing goroutine — generation workers only ever touch
// their own job slots — so the done evolution, the FillSeed stream and
// every counter advance in fault-index order regardless of scheduling.
type runner struct {
	ctx    context.Context
	u      *faultsim.Universe
	opt    Options
	tables *Tables
	sims   []*faultsim.Simulator // sims[0] accumulates the pending batch
	// capacity is sims[0].Capacity(): 64×LaneWords patterns per sweep.
	capacity int
	// shards streams the drop sweeps when non-nil (the universe matches
	// the canonical enumeration); nil falls back to u.Faults.
	shards *faultsim.FaultShards
	src    *prng.Source
	res    *Result
	done   []bool
	// commits counts committed faults for the checkpoint cadence.
	commits int
}

// newGenerator builds one worker's scratch over the shared tables.
func (r *runner) newGenerator() *Generator {
	g := r.tables.NewGenerator()
	if r.opt.BacktrackLimit > 0 {
		g.BacktrackLimit = r.opt.BacktrackLimit
	}
	g.Strategy = r.opt.Backtrace
	g.Ctx = r.ctx
	return g
}

// runSerial is the one-worker path: generate at the commit point, no
// speculation. Batching and the pending-lane check are identical to the
// pipelined path, so results match for any worker count.
func (r *runner) runSerial() error {
	g := r.newGenerator()
	for fi, f := range r.u.Faults {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if r.done[fi] || r.dropPending(fi) {
			continue
		}
		c, status := g.Generate(f)
		if status == StatusCanceled {
			return r.ctx.Err()
		}
		if err := r.commit(fi, c, status, g.Backtracks); err != nil {
			return err
		}
		r.maybeCheckpoint()
	}
	return nil
}

// specJob is one speculative PODEM run. The owning worker writes c, status
// and backtracks, then closes ready; the committer reads them only after
// <-ready.
type specJob struct {
	fi         int
	c          cube.Cube
	status     Status
	backtracks int
	ready      chan struct{}
}

// runPipelined overlaps PODEM with committing: a pool of per-worker
// Generators speculatively processes a sliding window of upcoming
// not-yet-dropped faults while results commit strictly in fault-index
// order. PODEM for one fault depends only on the fault (never on done), so
// a speculative run is either committed unchanged or — when its target was
// dropped by an earlier committed pattern in the meantime — discarded
// without side effects. Speculation therefore only spends bounded extra
// work; it cannot change the output.
func (r *runner) runPipelined(workers int) error {
	gens := make([]*Generator, workers)
	for i := range gens {
		gens[i] = r.newGenerator()
	}
	depth := 4 * workers // speculation window; bounds wasted PODEM runs
	jobs := make(chan *specJob, depth)
	var wg sync.WaitGroup
	for _, g := range gens {
		wg.Add(1)
		go func(g *Generator) {
			defer wg.Done()
			for j := range jobs {
				j.c, j.status = g.Generate(r.u.Faults[j.fi])
				j.backtracks = g.Backtracks
				close(j.ready)
			}
		}(g)
	}
	window := make([]*specJob, 0, depth)
	next, closed := 0, false
	// dispatch tops the window up with the next faults not already dropped,
	// applying the pending-lane check eagerly: a fault the pending patterns
	// already detect would be dropped at its commit turn anyway (committed
	// patterns only accumulate between now and then), so dropping it here
	// yields the same result and skips a wasted speculative PODEM run.
	// Only the committing goroutine mutates done, so the reads are
	// race-free; a fault dropped after dispatch is discarded at commit.
	dispatch := func() {
		for len(window) < depth && next < len(r.u.Faults) {
			if !r.done[next] && !r.dropPending(next) {
				j := &specJob{fi: next, ready: make(chan struct{})}
				window = append(window, j)
				jobs <- j
			}
			next++
		}
		if next == len(r.u.Faults) && !closed {
			close(jobs)
			closed = true
		}
	}
	defer func() {
		// On an early error return: stop feeding, let the workers drain the
		// queue, and join them so no goroutine outlives the call.
		if !closed {
			close(jobs)
		}
		for _, j := range window {
			<-j.ready
		}
		wg.Wait()
	}()
	for {
		if err := r.ctx.Err(); err != nil {
			// The deferred drain lets every in-flight Generate notice the
			// same context and stop; no goroutine outlives the call.
			return err
		}
		dispatch()
		if len(window) == 0 {
			return nil
		}
		j := window[0]
		window = window[1:]
		<-j.ready
		if j.status == StatusCanceled {
			return r.ctx.Err()
		}
		if r.done[j.fi] || r.dropPending(j.fi) {
			continue // dropped since dispatch: discard the speculation
		}
		if err := r.commit(j.fi, j.c, j.status, j.backtracks); err != nil {
			return err
		}
		r.maybeCheckpoint()
	}
}

// dropPending checks one PODEM candidate against the patterns committed
// since the last full sweep — exactly the faults the per-pattern loop
// would have dropped before reaching this candidate.
func (r *runner) dropPending(fi int) bool {
	if !r.opt.FaultDrop || r.sims[0].PatternCount() == 0 {
		return false
	}
	if !r.sims[0].DetectAny(r.u.Faults[fi]) {
		return false
	}
	r.done[fi] = true
	r.res.Detected++
	return true
}

// commit applies one PODEM outcome in fault-index order.
func (r *runner) commit(fi int, c cube.Cube, status Status, backtracks int) error {
	r.res.Backtracks += backtracks
	switch status {
	case StatusUntestable:
		r.res.Untestable++
		r.done[fi] = true
		return nil
	case StatusAborted:
		r.res.Aborted++
		r.done[fi] = true
		return nil
	}
	r.res.Detected++
	r.done[fi] = true
	if err := r.res.Cubes.Add(c); err != nil {
		return err
	}
	if !r.opt.FaultDrop {
		return nil
	}
	// Random-fill the cube's don't-cares. The fill stream is consumed in
	// commit order, so the patterns are independent of worker count.
	pat := make([]uint8, c.Width())
	for i := 0; i < c.Width(); i++ {
		switch v := c.Get(i); v {
		case -1:
			pat[i] = r.src.Bit()
		default:
			pat[i] = uint8(v)
		}
	}
	r.res.Patterns = append(r.res.Patterns, pat)
	if err := r.sims[0].AppendPattern(pat); err != nil {
		return err
	}
	if r.sims[0].PatternCount() == r.capacity {
		return r.sweep()
	}
	return nil
}

// sweep runs the accumulated full-width batch (64×LaneWords patterns)
// against every remaining fault, sharded across the simulator pool, and
// starts a fresh batch. The universe streams through FaultShards when the
// canonical enumeration matches (the materialized list is the fallback
// for custom universes). No flush is needed after the last fault: every
// fault has been committed or dropped by then, so a final sweep could not
// mark anything new. A cancelled sweep returns the context error; its
// partial done marks are all genuine detections, so the partial Result
// stays truthful.
func (r *runner) sweep() error {
	for _, s := range r.sims[1:] {
		s.AdoptPatterns(r.sims[0])
	}
	var n int
	var err error
	if r.shards != nil {
		n, err = faultsim.DetectAllShardsCtx(r.ctx, r.sims, r.shards, r.done)
	} else {
		n, err = faultsim.DetectAllCtx(r.ctx, r.sims, r.u.Faults, r.done)
	}
	r.res.Detected += n
	r.sims[0].ResetPatterns()
	return err
}
