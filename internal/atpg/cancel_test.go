package atpg

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func cancelTestCore(t *testing.T) *netlist.Netlist {
	t.Helper()
	core, err := netlist.Random(netlist.RandomConfig{
		Inputs: 80, Outputs: 48, Gates: 2008, MaxFan: 3, Seed: 2008,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// TestRunAllCtxPreCanceled asserts the fast path: a context that is
// already dead stops the run almost immediately with a typed error and a
// partial (near-empty) result.
func TestRunAllCtxPreCanceled(t *testing.T) {
	u := faultsim.NewUniverse(cancelTestCore(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunAllCtx(ctx, u, Options{FaultDrop: true, FillSeed: 2008})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("want a partial result alongside the cancellation error")
	}
	if done := res.Detected + res.Untestable + res.Aborted; done >= len(u.Faults) {
		t.Fatalf("pre-cancelled run processed %d/%d faults, expected an early stop", done, len(u.Faults))
	}
}

// TestRunAllCtxCancelLatency cancels a long multi-worker run mid-flight
// and requires it to return well inside the 100ms latency budget, with
// partial progress recorded.
func TestRunAllCtxCancelLatency(t *testing.T) {
	u := faultsim.NewUniverse(cancelTestCore(t))
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunAllCtx(ctx, u, Options{FaultDrop: true, FillSeed: 2008, Workers: 4})
		done <- outcome{res, err}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	t0 := time.Now()
	select {
	case o := <-done:
		if lat := time.Since(t0); lat > 100*time.Millisecond {
			t.Fatalf("cancellation latency %v exceeds 100ms", lat)
		}
		if o.err == nil {
			// The run won the race and finished before the cancel landed —
			// legal, nothing more to assert.
			return
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
		if o.res == nil {
			t.Fatal("want partial result on cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunAllCtx did not return within 2s of cancel")
	}
}

// TestRunAllCtxDeadline runs under a tight deadline and expects the typed
// deadline error once it fires.
func TestRunAllCtxDeadline(t *testing.T) {
	u := faultsim.NewUniverse(cancelTestCore(t))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := RunAllCtx(ctx, u, Options{FaultDrop: true, FillSeed: 2008})
	if err == nil {
		t.Skip("machine fast enough to finish inside 5ms; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("want partial result on deadline")
	}
}

// TestRunAllCtxUncancelledBitIdentical pins the cancellation plumbing's
// zero-overhead contract: RunAllCtx with a background context must equal
// RunAll exactly, counters included.
func TestRunAllCtxUncancelledBitIdentical(t *testing.T) {
	core, err := netlist.Random(netlist.RandomConfig{
		Inputs: 40, Outputs: 24, Gates: 300, MaxFan: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{FaultDrop: true, FillSeed: 7}
	resA, err := RunAll(faultsim.NewUniverse(core), opt)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := RunAllCtx(context.Background(), faultsim.NewUniverse(core), opt)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Detected != resB.Detected || resA.Untestable != resB.Untestable ||
		resA.Aborted != resB.Aborted || resA.Backtracks != resB.Backtracks ||
		resA.Coverage != resB.Coverage || resA.Cubes.Len() != resB.Cubes.Len() {
		t.Fatalf("RunAllCtx(Background) differs from RunAll:\n%+v\nvs\n%+v", resA, resB)
	}
}
