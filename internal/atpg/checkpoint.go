package atpg

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/gf2"
)

// Checkpoint is a consistent snapshot of a RunAll in progress, taken at a
// commit boundary: every counter, the per-fault done marks, the cubes and
// patterns emitted so far, and the X-fill stream position. Resuming from
// it (Options.Resume) produces final results bit-identical to the
// uninterrupted run, because commits advance in fault-index order and the
// only out-of-order side effects — the pipelined path's eager
// pending-lane drops — mark faults that every continuation is guaranteed
// to drop with the same counter effect and no cube.
//
// The struct handed to Options.Checkpoint aliases live engine state: the
// callback must serialize it (MarshalBinary) or deep-copy before
// returning, and must not retain it.
type Checkpoint struct {
	// NetHash identifies the circuit (netlist.Netlist.Hash) so a stale
	// checkpoint cannot resume against the wrong design.
	NetHash uint64
	// NumFaults is the universe size the Done marks index into.
	NumFaults int
	// NumInputs is the circuit input count (cube and pattern width).
	NumInputs int
	// Detected, Untestable, Aborted and Backtracks mirror the Result
	// counters at the snapshot point.
	Detected, Untestable, Aborted, Backtracks int
	// Done marks faults already committed or dropped.
	Done []bool
	// Cubes are the test cubes committed so far, in commit order.
	Cubes *cube.Set
	// Patterns are the X-filled patterns committed so far. A resume
	// replays all of them through fresh simulator batches (sweeping each
	// time a batch fills), which rebuilds the pending lanes regardless of
	// either run's lane capacity — already-swept patterns re-detect only
	// faults Done marks, so the replay is idempotent and the final result
	// stays bit-identical even when Options.LaneWords differs between the
	// interrupted and the resuming run.
	Patterns [][]uint8
	// FillState is the prng.Source state of the X-fill stream.
	FillState uint64
}

// Matches reports whether the checkpoint was taken over this universe —
// same circuit structure, fault count and input width. Resume refuses a
// mismatch; callers (the daemon) use Matches to fall back to a fresh run
// instead of failing the job.
func (cp *Checkpoint) Matches(u *faultsim.Universe) bool {
	return cp != nil &&
		cp.NetHash == u.Net.Hash() &&
		cp.NumFaults == len(u.Faults) &&
		cp.NumInputs == len(u.Net.Inputs) &&
		cp.NumFaults == len(cp.Done)
}

// checkpointMagic versions the binary layout; bump on any change.
const checkpointMagic = uint32(0x41435031) // "ACP1"

// MarshalBinary encodes the checkpoint in a fixed little-endian layout
// (bit-packed done marks and patterns, word-packed cube vectors) suitable
// for a journal record.
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	if cp.Cubes == nil {
		return nil, fmt.Errorf("atpg: checkpoint has nil cube set")
	}
	if cp.Cubes.Width != cp.NumInputs {
		return nil, fmt.Errorf("atpg: checkpoint cube width %d != inputs %d", cp.Cubes.Width, cp.NumInputs)
	}
	buf := make([]byte, 0, 64+len(cp.Done)/8+len(cp.Patterns)*(cp.NumInputs/8+1))
	buf = binary.LittleEndian.AppendUint32(buf, checkpointMagic)
	buf = binary.LittleEndian.AppendUint64(buf, cp.NetHash)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cp.NumFaults))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cp.NumInputs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cp.Detected))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cp.Untestable))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cp.Aborted))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Backtracks))
	buf = binary.LittleEndian.AppendUint64(buf, cp.FillState)
	if len(cp.Done) != cp.NumFaults {
		return nil, fmt.Errorf("atpg: checkpoint done length %d != fault count %d", len(cp.Done), cp.NumFaults)
	}
	buf = appendBits(buf, cp.Done)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cp.Cubes.Len()))
	words := (cp.NumInputs + 63) / 64
	for _, c := range cp.Cubes.Cubes {
		if c.Width() != cp.NumInputs {
			return nil, fmt.Errorf("atpg: checkpoint cube width %d != inputs %d", c.Width(), cp.NumInputs)
		}
		for _, w := range c.Mask.Words()[:words] {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		for _, w := range c.Value.Words()[:words] {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cp.Patterns)))
	for _, p := range cp.Patterns {
		if len(p) != cp.NumInputs {
			return nil, fmt.Errorf("atpg: checkpoint pattern width %d != inputs %d", len(p), cp.NumInputs)
		}
		bits := make([]bool, len(p))
		for i, v := range p {
			bits[i] = v != 0
		}
		buf = appendBits(buf, bits)
	}
	return buf, nil
}

// UnmarshalBinary decodes a MarshalBinary payload, validating every
// length so a corrupted or truncated record fails loudly instead of
// resuming from garbage.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	d := &decoder{buf: data}
	if magic := d.u32(); magic != checkpointMagic {
		return fmt.Errorf("atpg: bad checkpoint magic %08x", magic)
	}
	cp.NetHash = d.u64()
	cp.NumFaults = int(d.u32())
	cp.NumInputs = int(d.u32())
	cp.Detected = int(d.u32())
	cp.Untestable = int(d.u32())
	cp.Aborted = int(d.u32())
	cp.Backtracks = int(d.u64())
	cp.FillState = d.u64()
	if d.err != nil {
		return fmt.Errorf("atpg: truncated checkpoint header: %w", d.err)
	}
	const maxDim = 1 << 28 // sanity bound against corrupt length fields
	if cp.NumFaults < 0 || cp.NumFaults > maxDim || cp.NumInputs < 0 || cp.NumInputs > maxDim {
		return fmt.Errorf("atpg: implausible checkpoint dimensions (faults=%d inputs=%d)", cp.NumFaults, cp.NumInputs)
	}
	cp.Done = d.bits(cp.NumFaults)
	numCubes := int(d.u32())
	if d.err != nil {
		return fmt.Errorf("atpg: truncated checkpoint: %w", d.err)
	}
	if numCubes < 0 || numCubes > maxDim {
		return fmt.Errorf("atpg: implausible checkpoint cube count %d", numCubes)
	}
	words := (cp.NumInputs + 63) / 64
	cp.Cubes = cube.NewSet(cp.NumInputs)
	for i := 0; i < numCubes; i++ {
		c := cube.New(cp.NumInputs)
		mw, vw := c.Mask.Words(), c.Value.Words()
		for w := 0; w < words; w++ {
			mw[w] = d.u64()
		}
		for w := 0; w < words; w++ {
			vw[w] = d.u64()
		}
		if err := maskTail(c.Mask, cp.NumInputs); err != nil {
			return err
		}
		if err := maskTail(c.Value, cp.NumInputs); err != nil {
			return err
		}
		cp.Cubes.Cubes = append(cp.Cubes.Cubes, c)
	}
	numPatterns := int(d.u32())
	if d.err != nil {
		return fmt.Errorf("atpg: truncated checkpoint cubes: %w", d.err)
	}
	if numPatterns < 0 || numPatterns > maxDim {
		return fmt.Errorf("atpg: implausible checkpoint pattern count %d", numPatterns)
	}
	cp.Patterns = make([][]uint8, 0, numPatterns)
	for i := 0; i < numPatterns; i++ {
		bits := d.bits(cp.NumInputs)
		p := make([]uint8, cp.NumInputs)
		for j, b := range bits {
			if b {
				p[j] = 1
			}
		}
		cp.Patterns = append(cp.Patterns, p)
	}
	if d.err != nil {
		return fmt.Errorf("atpg: truncated checkpoint patterns: %w", d.err)
	}
	if len(d.buf) != d.off {
		return fmt.Errorf("atpg: %d trailing bytes after checkpoint", len(d.buf)-d.off)
	}
	return nil
}

// maskTail rejects set bits beyond the vector's logical width — a
// corruption symptom that would otherwise poison word-level cube
// operations, which assume clean tail words.
func maskTail(v gf2.Vec, width int) error {
	words := v.Words()
	if rem := width % 64; rem != 0 && len(words) > 0 {
		if words[len(words)-1]&^(^uint64(0)>>(64-rem)) != 0 {
			return fmt.Errorf("atpg: checkpoint vector has bits beyond width %d", width)
		}
	}
	return nil
}

// appendBits packs a bool slice LSB-first into bytes.
func appendBits(buf []byte, bits []bool) []byte {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, b)
			b = 0
		}
	}
	if len(bits)%8 != 0 {
		buf = append(buf, b)
	}
	return buf
}

// decoder is a bounds-checked little-endian reader; the first overrun
// sticks in err and every later read returns zero.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) bits(n int) []bool {
	b := d.take((n + 7) / 8)
	if b == nil {
		return make([]bool, n)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = b[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// snapshot builds a Checkpoint over the runner's live state (aliased, not
// copied — see the Checkpoint doc comment).
func (r *runner) snapshot() *Checkpoint {
	return &Checkpoint{
		NetHash:    r.u.Net.Hash(),
		NumFaults:  len(r.u.Faults),
		NumInputs:  len(r.u.Net.Inputs),
		Detected:   r.res.Detected,
		Untestable: r.res.Untestable,
		Aborted:    r.res.Aborted,
		Backtracks: r.res.Backtracks,
		Done:       r.done,
		Cubes:      r.res.Cubes,
		Patterns:   r.res.Patterns,
		FillState:  r.src.State(),
	}
}

// restore loads a checkpoint into a fresh runner: counters, done marks,
// cubes, patterns and fill-stream position are deep-copied in, and the
// pending (unswept) simulator lanes are rebuilt by replaying every
// committed pattern, sweeping whenever a batch fills. Patterns the
// interrupted run already swept re-detect only faults its checkpoint
// already marks Done (their sweep effects are part of the snapshot), so
// the replay is idempotent — and replaying everything keeps resume
// bit-identical even when this run's lane capacity (Options.LaneWords)
// differs from the producer's, where replaying only a modulo tail would
// silently drop unswept lanes.
func (r *runner) restore(cp *Checkpoint) error {
	if !cp.Matches(r.u) {
		return fmt.Errorf("atpg: checkpoint does not match universe (hash/faults/inputs)")
	}
	r.res.Detected = cp.Detected
	r.res.Untestable = cp.Untestable
	r.res.Aborted = cp.Aborted
	r.res.Backtracks = cp.Backtracks
	copy(r.done, cp.Done)
	for _, c := range cp.Cubes.Cubes {
		if err := r.res.Cubes.Add(c.Clone()); err != nil {
			return err
		}
	}
	r.res.Patterns = make([][]uint8, 0, len(cp.Patterns))
	for _, p := range cp.Patterns {
		r.res.Patterns = append(r.res.Patterns, append([]uint8(nil), p...))
	}
	r.src.SetState(cp.FillState)
	if !r.opt.FaultDrop {
		return nil
	}
	for _, p := range r.res.Patterns {
		if err := r.sims[0].AppendPattern(p); err != nil {
			return err
		}
		if r.sims[0].PatternCount() == r.capacity {
			if err := r.sweep(); err != nil {
				return err
			}
		}
	}
	return nil
}

// maybeCheckpoint emits a snapshot through Options.Checkpoint every
// CheckpointEvery commits. It runs on the committing goroutine right
// after a commit (and its sweep, if one fired), which is what makes the
// cut consistent.
func (r *runner) maybeCheckpoint() {
	if r.opt.Checkpoint == nil || r.opt.CheckpointEvery <= 0 {
		return
	}
	r.commits++
	if r.commits%r.opt.CheckpointEvery != 0 {
		return
	}
	r.opt.Checkpoint(r.snapshot())
}
