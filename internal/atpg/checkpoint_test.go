package atpg

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// checkpointCore builds a circuit big enough for many commits and several
// 64-pattern sweeps, so checkpoints land in every phase of the batching
// machinery.
func checkpointCore(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 40, Outputs: 12, Gates: 360, MaxFan: 3, Seed: 7})
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	return nl
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Detected != want.Detected || got.Untestable != want.Untestable ||
		got.Aborted != want.Aborted || got.Backtracks != want.Backtracks {
		t.Fatalf("%s: counters (det=%d unt=%d ab=%d bt=%d) != (det=%d unt=%d ab=%d bt=%d)",
			label, got.Detected, got.Untestable, got.Aborted, got.Backtracks,
			want.Detected, want.Untestable, want.Aborted, want.Backtracks)
	}
	if got.Coverage != want.Coverage {
		t.Fatalf("%s: coverage %v != %v", label, got.Coverage, want.Coverage)
	}
	if got.Cubes.Len() != want.Cubes.Len() {
		t.Fatalf("%s: %d cubes != %d", label, got.Cubes.Len(), want.Cubes.Len())
	}
	for i := range want.Cubes.Cubes {
		if got.Cubes.Cubes[i].String() != want.Cubes.Cubes[i].String() {
			t.Fatalf("%s: cube %d differs:\n got %s\nwant %s", label, i, got.Cubes.Cubes[i], want.Cubes.Cubes[i])
		}
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Fatalf("%s: patterns differ (%d vs %d)", label, len(got.Patterns), len(want.Patterns))
	}
}

// TestCheckpointResumeBitIdentical is the core recovery guarantee: cancel
// a run at each of its first few checkpoints, resume from the serialized
// snapshot, and require the stitched-together result to be bit-identical
// to the uninterrupted run — across serial and pipelined execution on
// both sides of the crash.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	u := faultsim.NewUniverse(checkpointCore(t))
	tables, err := NewTables(u.Net)
	if err != nil {
		t.Fatalf("NewTables: %v", err)
	}
	base := Options{FaultDrop: true, FillSeed: 99, BacktrackLimit: 40, Tables: tables, Workers: 1}
	want, err := RunAll(u, base)
	if err != nil {
		t.Fatalf("uninterrupted RunAll: %v", err)
	}
	if want.Cubes.Len() < 20 {
		t.Fatalf("core too easy for a checkpoint test: only %d cubes", want.Cubes.Len())
	}

	// Crash-side and resume-side worker counts cross serial and pipelined
	// execution; varying stopAt lands checkpoints before and after the
	// first 64-pattern sweep.
	cases := []struct{ crashWorkers, resumeWorkers, stopAt int }{
		{1, 4, 1},
		{4, 1, 3},
		{4, 4, 2},
		{1, 1, 5},
	}
	for _, tc := range cases {
		// Run until the stopAt-th checkpoint, capturing its bytes, then
		// cancel.
		ctx, cancel := context.WithCancel(context.Background())
		var blob []byte
		seen := 0
		opt := base
		opt.Workers = tc.crashWorkers
		opt.CheckpointEvery = 5
		opt.Checkpoint = func(cp *Checkpoint) {
			seen++
			if seen == tc.stopAt {
				b, err := cp.MarshalBinary()
				if err != nil {
					t.Errorf("MarshalBinary: %v", err)
				}
				blob = b
				cancel()
			}
		}
		_, err := RunAllCtx(ctx, u, opt)
		cancel()
		if blob == nil {
			t.Fatalf("w=%d stop=%d: run finished before checkpoint %d (seen %d)", tc.crashWorkers, tc.stopAt, tc.stopAt, seen)
		}
		if err == nil {
			t.Fatalf("w=%d stop=%d: cancelled run returned nil error", tc.crashWorkers, tc.stopAt)
		}

		var cp Checkpoint
		if err := cp.UnmarshalBinary(blob); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		if !cp.Matches(u) {
			t.Fatalf("checkpoint does not match its own universe")
		}
		resumeOpt := base
		resumeOpt.Workers = tc.resumeWorkers
		resumeOpt.Resume = &cp
		got, err := RunAll(u, resumeOpt)
		if err != nil {
			t.Fatalf("resumed RunAll: %v", err)
		}
		sameResult(t, "resume", got, want)
	}
}

// TestCheckpointRoundTrip pins the binary codec: marshal a mid-run
// snapshot, unmarshal it, and compare field by field.
func TestCheckpointRoundTrip(t *testing.T) {
	u := faultsim.NewUniverse(checkpointCore(t))
	var captured *Checkpoint
	var blob []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		FaultDrop:       true,
		FillSeed:        5,
		CheckpointEvery: 10,
		Checkpoint: func(cp *Checkpoint) {
			if blob != nil {
				return
			}
			b, err := cp.MarshalBinary()
			if err != nil {
				t.Errorf("MarshalBinary: %v", err)
			}
			blob = b
			// Deep-copy for the comparison (the engine reuses cp's state).
			captured = &Checkpoint{
				NetHash: cp.NetHash, NumFaults: cp.NumFaults, NumInputs: cp.NumInputs,
				Detected: cp.Detected, Untestable: cp.Untestable, Aborted: cp.Aborted,
				Backtracks: cp.Backtracks, FillState: cp.FillState,
				Done:  append([]bool(nil), cp.Done...),
				Cubes: cp.Cubes.Clone(),
			}
			for _, p := range cp.Patterns {
				captured.Patterns = append(captured.Patterns, append([]uint8(nil), p...))
			}
			cancel()
		},
	}
	if _, err := RunAllCtx(ctx, u, opt); err == nil {
		t.Fatalf("cancelled run returned nil error")
	}
	if blob == nil {
		t.Fatalf("no checkpoint captured")
	}
	var got Checkpoint
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got.NetHash != captured.NetHash || got.NumFaults != captured.NumFaults ||
		got.NumInputs != captured.NumInputs || got.Detected != captured.Detected ||
		got.Untestable != captured.Untestable || got.Aborted != captured.Aborted ||
		got.Backtracks != captured.Backtracks || got.FillState != captured.FillState {
		t.Fatalf("scalar fields differ: got %+v", got)
	}
	if !reflect.DeepEqual(got.Done, captured.Done) {
		t.Fatalf("done marks differ")
	}
	if got.Cubes.Len() != captured.Cubes.Len() {
		t.Fatalf("cube count %d != %d", got.Cubes.Len(), captured.Cubes.Len())
	}
	for i := range captured.Cubes.Cubes {
		if got.Cubes.Cubes[i].String() != captured.Cubes.Cubes[i].String() {
			t.Fatalf("cube %d differs", i)
		}
	}
	if !reflect.DeepEqual(got.Patterns, captured.Patterns) {
		t.Fatalf("patterns differ")
	}
}

// TestCheckpointCorruptRejected: truncations and bit flips must fail
// UnmarshalBinary or Matches, never resume from garbage.
func TestCheckpointCorruptRejected(t *testing.T) {
	u := faultsim.NewUniverse(checkpointCore(t))
	var blob []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		FaultDrop:       true,
		CheckpointEvery: 10,
		Checkpoint: func(cp *Checkpoint) {
			if blob == nil {
				blob, _ = cp.MarshalBinary()
				cancel()
			}
		},
	}
	if _, err := RunAllCtx(ctx, u, opt); err == nil {
		t.Fatalf("cancelled run returned nil error")
	}
	for cut := 0; cut < len(blob); cut += 7 {
		var cp Checkpoint
		if err := cp.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	// A wrong-circuit checkpoint must not Match.
	var cp Checkpoint
	if err := cp.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	cp.NetHash ^= 1
	if cp.Matches(u) {
		t.Fatalf("hash-mismatched checkpoint matched universe")
	}
	cp.NetHash ^= 1
	if !cp.Matches(u) {
		t.Fatalf("restored checkpoint no longer matches")
	}
	other := faultsim.NewUniverse(func() *netlist.Netlist {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 40, Outputs: 12, Gates: 360, MaxFan: 3, Seed: 8})
		if err != nil {
			t.Fatalf("Random: %v", err)
		}
		return nl
	}())
	if cp.Matches(other) {
		t.Fatalf("checkpoint matched a different circuit")
	}
	if _, err := RunAll(other, Options{Resume: &cp}); err == nil {
		t.Fatalf("Resume against mismatched universe succeeded")
	}
}
