package atpg

// White-box tests for the PODEM building blocks — backtrace, objective,
// the incremental dFrontier and xPathToOutput — on handcrafted netlists
// that hit the branches the end-to-end tests rarely exercise: fanout-stem
// input-pin faults, reconvergence, infeasible objectives, inversion parity
// and dead-end backtraces.

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// gateIdx resolves a signal name or fails the test.
func gateIdx(t *testing.T, n *netlist.Netlist, name string) int {
	t.Helper()
	gi, ok := n.Index(name)
	if !ok {
		t.Fatalf("no signal %q", name)
	}
	return gi
}

// piIdx resolves a primary input name to its position in n.Inputs.
func piIdx(t *testing.T, g *Generator, name string) int {
	t.Helper()
	gi := gateIdx(t, g.t.net, name)
	ii := g.t.inputIdx[gi]
	if ii < 0 {
		t.Fatalf("signal %q is not a primary input", name)
	}
	return ii
}

func wantFrontier(t *testing.T, g *Generator, want ...int) {
	t.Helper()
	got := g.dFrontier()
	if len(got) != len(want) {
		t.Fatalf("D-frontier %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("D-frontier %v, want %v", got, want)
		}
	}
}

// TestDFrontierStemFaultIncremental drives the incremental D-frontier
// through a c17 stem fault by hand: activation populates both reconvergent
// branches, undo restores the previous frontier exactly, and re-assignment
// rebuilds it.
func TestDFrontierStemFaultIncremental(t *testing.T) {
	n := readC17(t)
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	g11, g16, g19 := gateIdx(t, n, "11"), gateIdx(t, n, "16"), gateIdx(t, n, "19")
	f := faultsim.Fault{Gate: g11, Pin: -1, Stuck: 0} // stem sa0, branches to 16 and 19
	g.begin(f)
	// Nothing activated yet: the site's good value is X, no definite
	// good/faulty difference exists on any fan-in.
	wantFrontier(t, g)

	// Setting input 3 = 0 forces the stem good value to NAND(0, X) = 1,
	// so both branch gates see a definite 1/0 difference on the stem.
	mark := len(g.trail)
	g.assign(piIdx(t, g, "3"), 0)
	wantFrontier(t, g, g16, g19)

	// O(changed-cone) undo must restore the empty frontier.
	g.undoTo(mark)
	wantFrontier(t, g)

	// Setting input 3 = 1 leaves the stem good value X — activation is
	// still open (input 6 could be 0), but no difference is definite yet.
	g.assign(piIdx(t, g, "3"), 1)
	wantFrontier(t, g)
	if gate, val, feasible := g.objective(); !feasible || gate != g11 || val != 1 {
		t.Fatalf("objective = (%d, %d, %v), want activation (%d, 1, true)", gate, val, feasible, g11)
	}
}

// TestDFrontierInputPinFault covers the fanout-branch (input-pin) fault
// special case: the faulted gate itself joins the frontier via the
// injected pin, leaves it once both its values are definite, and the
// difference moves to its fan-out.
func TestDFrontierInputPinFault(t *testing.T) {
	n := readC17(t)
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	g16, g22 := gateIdx(t, n, "16"), gateIdx(t, n, "22")
	// Branch fault: gate 16's input pin 1 (signal 11) stuck at 1.
	f := faultsim.Fault{Gate: g16, Pin: 1, Stuck: 1}
	g.begin(f)
	wantFrontier(t, g)

	// Activate the site: 3 = 1, 6 = 1 force signal 11 = NAND(1,1) = 0,
	// the complement of the stuck value. Gate 16 sees good 0 / faulty 1 on
	// the injected pin while its own output is not fully definite.
	g.assign(piIdx(t, g, "3"), 1)
	g.assign(piIdx(t, g, "6"), 1)
	wantFrontier(t, g, g16)

	// Input 2 = 1 makes gate 16 definite on both sides (good 1, faulty 0):
	// it leaves the frontier and the difference advances to gate 22 (gate
	// 23 resolves to a definite difference at the output — detection).
	mark := len(g.trail)
	g.assign(piIdx(t, g, "2"), 1)
	wantFrontier(t, g, g22)
	if !g.detected() {
		t.Fatal("difference reached output 23 but detected() is false")
	}

	g.undoTo(mark)
	wantFrontier(t, g, g16)
	if g.detected() {
		t.Fatal("detected() still true after undo")
	}
}

// TestXPathBlockedByDefiniteValues pins xPathToOutput's pruning: a path is
// open only while every forward gate still has an X on its good or faulty
// value.
func TestXPathBlockedByDefiniteValues(t *testing.T) {
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddInput("c")
	n.AddGate("y", netlist.And, "a", "b")
	n.AddGate("z", netlist.Or, "y", "c")
	n.MarkOutput("z")
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	y, z := gateIdx(t, n, "y"), gateIdx(t, n, "z")
	g.begin(faultsim.Fault{Gate: y, Pin: -1, Stuck: 0})
	if !g.xPathToOutput(y) {
		t.Fatal("all-X circuit: path y→z should be open")
	}
	if !g.xPathToOutput(z) {
		t.Fatal("an output gate always has an X-path (itself)")
	}
	// c = 1 forces z to a definite value on both sides: the only path from
	// y is blocked.
	mark := len(g.trail)
	g.assign(piIdx(t, g, "c"), 1)
	if g.xPathToOutput(y) {
		t.Fatal("z definite on both sides: path y→z should be blocked")
	}
	g.undoTo(mark)
	g.assign(piIdx(t, g, "c"), 0)
	if !g.xPathToOutput(y) {
		t.Fatal("c=0 leaves z = OR(X, 0) = X: path should be open")
	}
}

// TestObjectiveInfeasible covers both dead-end branches: activation
// impossible under the current assignment, and an activated fault with an
// empty D-frontier (difference generated but nowhere to advance).
func TestObjectiveInfeasible(t *testing.T) {
	n := readC17(t)
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	g11 := gateIdx(t, n, "11")
	g.begin(faultsim.Fault{Gate: g11, Pin: -1, Stuck: 0})
	// 3 = 1, 6 = 1 drive the site to NAND(1,1) = 0 — equal to the stuck
	// value, so the fault cannot be activated any more.
	g.assign(piIdx(t, g, "3"), 1)
	g.assign(piIdx(t, g, "6"), 1)
	if _, _, feasible := g.objective(); feasible {
		t.Fatal("objective feasible although good[site] == stuck value")
	}

	// Dead logic: the fault activates but has no fan-out, so the frontier
	// stays empty and propagation is infeasible.
	dead := netlist.New()
	dead.AddInput("a")
	dead.AddInput("b")
	dead.AddGate("dead", netlist.And, "a", "b")
	dead.AddGate("live", netlist.Or, "a", "b")
	dead.MarkOutput("live")
	gd, err := New(dead)
	if err != nil {
		t.Fatal(err)
	}
	gd.begin(faultsim.Fault{Gate: gateIdx(t, dead, "dead"), Pin: -1, Stuck: 0})
	gd.assign(piIdx(t, gd, "a"), 1)
	gd.assign(piIdx(t, gd, "b"), 1)
	if gd.good[gateIdx(t, dead, "dead")] != 1 {
		t.Fatal("fault site not activated")
	}
	if _, _, feasible := gd.objective(); feasible {
		t.Fatal("objective feasible although the D-frontier is empty")
	}
}

// TestObjectiveXorNonControlling covers the XOR-ish frontier branch: XOR
// has no non-controlling value, so the objective falls back to 0 on the
// first X fan-in.
func TestObjectiveXorNonControlling(t *testing.T) {
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddGate("x", netlist.Xor, "a", "b")
	n.MarkOutput("x")
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	a, b := gateIdx(t, n, "a"), gateIdx(t, n, "b")
	g.begin(faultsim.Fault{Gate: a, Pin: -1, Stuck: 0})
	g.assign(piIdx(t, g, "a"), 1)
	wantFrontier(t, g, gateIdx(t, n, "x"))
	gate, val, feasible := g.objective()
	if !feasible || gate != b || val != v0 {
		t.Fatalf("objective = (%d, %d, %v), want XOR fallback (%d, 0, true)", gate, val, feasible, b)
	}
}

// TestBacktraceInversionAndDeadEnds covers backtrace's inversion parity
// through NAND/NOT/XNOR, the SCOAP-cost tie-break, and both dead-end
// returns (input already assigned, no X fan-in left).
func TestBacktraceInversionAndDeadEnds(t *testing.T) {
	n := netlist.New()
	n.AddInput("a")
	n.AddInput("b")
	n.AddGate("g1", netlist.Nand, "a", "b")
	n.AddGate("n1", netlist.Not, "a")
	n.AddGate("x1", netlist.Xnor, "a", "b")
	n.MarkOutput("g1")
	n.MarkOutput("n1")
	n.MarkOutput("x1")
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	a := gateIdx(t, n, "a")
	g.begin(faultsim.Fault{Gate: a, Pin: -1, Stuck: 0})

	// NAND inverts: wanting g1=0 means driving a fan-in to 1, and the
	// SCOAP tie prefers the first cheapest fan-in (a).
	if pi, val, ok := g.backtrace(gateIdx(t, n, "g1"), v0); !ok || pi != piIdx(t, g, "a") || val != v1 {
		t.Fatalf("backtrace(g1, 0) = (%d, %d, %v), want (a, 1, true)", pi, val, ok)
	}
	if pi, val, ok := g.backtrace(gateIdx(t, n, "g1"), v1); !ok || pi != piIdx(t, g, "a") || val != v0 {
		t.Fatalf("backtrace(g1, 1) = (%d, %d, %v), want (a, 0, true)", pi, val, ok)
	}
	// NOT inverts once.
	if pi, val, ok := g.backtrace(gateIdx(t, n, "n1"), v1); !ok || pi != piIdx(t, g, "a") || val != v0 {
		t.Fatalf("backtrace(n1, 1) = (%d, %d, %v), want (a, 0, true)", pi, val, ok)
	}
	// XNOR inverts like NAND for the parity walk.
	if pi, val, ok := g.backtrace(gateIdx(t, n, "x1"), v1); !ok || pi != piIdx(t, g, "a") || val != v0 {
		t.Fatalf("backtrace(x1, 1) = (%d, %d, %v), want (a, 0, true)", pi, val, ok)
	}

	// With a assigned, backtrace on the input itself is a dead end, and g1
	// walks to the remaining X fan-in b.
	g.assign(piIdx(t, g, "a"), 1)
	if _, _, ok := g.backtrace(a, v1); ok {
		t.Fatal("backtrace onto an assigned input must fail")
	}
	if pi, val, ok := g.backtrace(gateIdx(t, n, "g1"), v0); !ok || pi != piIdx(t, g, "b") || val != v1 {
		t.Fatalf("backtrace(g1, 0) with a assigned = (%d, %d, %v), want (b, 1, true)", pi, val, ok)
	}
	// Both fan-ins assigned: no X fan-in to follow.
	g.assign(piIdx(t, g, "b"), 1)
	if _, _, ok := g.backtrace(gateIdx(t, n, "g1"), v0); ok {
		t.Fatal("backtrace with no X fan-in must fail")
	}
}
