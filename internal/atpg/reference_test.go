package atpg

// This file keeps the pre-event-driven PODEM engine — full 3-valued
// re-simulation of the whole circuit on every implication, D-frontier
// recomputed by scanning the fault cone — as the reference oracle. The
// differential and fuzz tests assert the event-driven Generator produces
// identical gate-value states after every implication and identical
// Generate results (cube, Status) for every fault.

import (
	"sort"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// refGenerator is the full-resimulation reference engine. It shares the
// immutable Tables with the event-driven Generator, so levelization,
// SCOAP weights and tie-breaking orders are identical by construction.
type refGenerator struct {
	t *Tables

	good, bad []uint8 // 3-valued good/faulty circuit values

	dfBuf     []int
	dfStack   []int
	seen      []uint32
	seenEpoch uint32
	cone      []int // fault cone, sorted in topological order
	coneMark  []bool

	BacktrackLimit int
}

func newRefGenerator(t *Tables) *refGenerator {
	ng := t.net.NumGates()
	return &refGenerator{
		t:              t,
		good:           make([]uint8, ng),
		bad:            make([]uint8, ng),
		seen:           make([]uint32, ng),
		coneMark:       make([]bool, ng),
		BacktrackLimit: 1000,
	}
}

// Generate runs reference PODEM for one fault: identical decision logic to
// Generator.Generate, but every imply is a full-circuit re-simulation.
func (g *refGenerator) Generate(f faultsim.Fault) (cube.Cube, Status) {
	n := g.t.net
	for i := range g.good {
		g.good[i] = vX
		g.bad[i] = vX
	}
	type refDecision struct {
		input   int // index into n.Inputs
		value   uint8
		flipped bool
	}
	var stack []refDecision
	backtracks := 0

	g.computeCone(f)
	g.simulate(f)

	for {
		if g.detected() {
			c := cube.New(len(n.Inputs))
			for ii, gi := range n.Inputs {
				if g.good[gi] != vX {
					c.Set(ii, g.good[gi])
				}
			}
			return c, StatusDetected
		}
		objGate, objVal, feasible := g.objective(f)
		var piIdx int
		var piVal uint8
		backtraceOK := false
		if feasible {
			piIdx, piVal, backtraceOK = g.backtrace(objGate, objVal)
		}
		if !feasible || !backtraceOK {
			// Conflict or no X-path: chronological backtracking.
			for {
				if len(stack) == 0 {
					return cube.Cube{}, StatusUntestable
				}
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					top.value ^= 1
					g.good[n.Inputs[top.input]] = top.value
					backtracks++
					if backtracks > g.BacktrackLimit {
						return cube.Cube{}, StatusAborted
					}
					break
				}
				g.good[n.Inputs[top.input]] = vX
				stack = stack[:len(stack)-1]
			}
			g.simulate(f)
			continue
		}
		gi := n.Inputs[piIdx]
		stack = append(stack, refDecision{input: piIdx, value: piVal})
		g.good[gi] = piVal
		g.simulate(f)
	}
}

// simulate performs full 3-valued good+faulty simulation with the fault
// injected. Primary-input good values are the current assignments; all
// other values are derived.
func (g *refGenerator) simulate(f faultsim.Fault) {
	n := g.t.net
	var gbuf, bbuf []uint8
	for _, gi := range g.t.order {
		gate := &n.Gates[gi]
		if gate.Type != netlist.Input {
			gbuf, bbuf = gbuf[:0], bbuf[:0]
			for pin, fi := range gate.Fanin {
				gv, bv := g.good[fi], g.bad[fi]
				if f.Gate == gi && f.Pin == pin {
					bv = f.Stuck
				}
				gbuf = append(gbuf, gv)
				bbuf = append(bbuf, bv)
			}
			g.good[gi] = eval3(gate.Type, gbuf)
			g.bad[gi] = eval3(gate.Type, bbuf)
		} else if f.Gate != gi || f.Pin != -1 {
			g.bad[gi] = g.good[gi]
		}
		if f.Gate == gi && f.Pin == -1 {
			g.bad[gi] = f.Stuck
		}
	}
}

// detected reports whether some primary output shows a definite
// good/faulty difference.
func (g *refGenerator) detected() bool {
	for _, o := range g.t.net.Outputs {
		gv, bv := g.good[o], g.bad[o]
		if gv != vX && bv != vX && gv != bv {
			return true
		}
	}
	return false
}

// objective returns the next signal/value to justify, exactly like the
// event-driven engine but over the scanned D-frontier.
func (g *refGenerator) objective(f faultsim.Fault) (gate int, val uint8, feasible bool) {
	site := f.Gate
	if f.Pin >= 0 {
		site = g.t.net.Gates[f.Gate].Fanin[f.Pin]
	}
	switch g.good[site] {
	case vX:
		return site, f.Stuck ^ 1, true
	case f.Stuck:
		return 0, 0, false // activation impossible under current assignment
	}
	// Mirrors the event engine exactly, including the completeness corners:
	// prefer the deepest gate that still has a good-X fan-in, and fall
	// back to chasing the faulty-side unknowns when none has one.
	best, bestAny := -1, -1
	for _, gi := range g.dFrontier(f) {
		if !g.xPathToOutput(gi) {
			continue
		}
		if bestAny < 0 || g.t.level[gi] > g.t.level[bestAny] {
			bestAny = gi
		}
		hasX := false
		for _, fi := range g.t.net.Gates[gi].Fanin {
			if g.good[fi] == vX {
				hasX = true
				break
			}
		}
		if !hasX {
			continue
		}
		if best < 0 || g.t.level[gi] > g.t.level[best] {
			best = gi
		}
	}
	if bestAny < 0 {
		return 0, 0, false
	}
	if best < 0 {
		return g.badXObjective(bestAny)
	}
	gate2 := &g.t.net.Gates[best]
	nc, ok := nonControlling(gate2.Type)
	if !ok {
		nc = v0
	}
	for _, fi := range gate2.Fanin {
		if g.good[fi] == vX {
			return fi, nc, true
		}
	}
	return 0, 0, false
}

// badXObjective is the reference copy of the event engine's faulty-side
// unknown chase (see Generator.badXObjective).
func (g *refGenerator) badXObjective(gi int) (gate int, val uint8, feasible bool) {
	n := g.t.net
	cur := gi
	for steps := 0; steps < n.NumGates()+1; steps++ {
		if g.good[cur] == vX {
			return cur, v0, true
		}
		next := -1
		for _, fi := range n.Gates[cur].Fanin {
			if g.bad[fi] == vX {
				next = fi
				break
			}
		}
		if next < 0 {
			return 0, 0, false
		}
		cur = next
	}
	return 0, 0, false
}

// computeCone collects the gates reachable from the fault site — the only
// gates a good/faulty difference can ever appear on — sorted in
// topological order so the D-frontier scan visits them exactly as a scan
// of the full order would.
func (g *refGenerator) computeCone(f faultsim.Fault) {
	for _, gi := range g.cone {
		g.coneMark[gi] = false
	}
	g.cone = g.cone[:0]
	stack := g.dfStack[:0]
	g.coneMark[f.Gate] = true
	g.cone = append(g.cone, f.Gate)
	stack = append(stack, f.Gate)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.t.fanout[cur] {
			if !g.coneMark[fo] {
				g.coneMark[fo] = true
				g.cone = append(g.cone, fo)
				stack = append(stack, fo)
			}
		}
	}
	g.dfStack = stack[:0]
	sort.Slice(g.cone, func(i, j int) bool { return g.t.orderPos[g.cone[i]] < g.t.orderPos[g.cone[j]] })
}

// dFrontier lists gates whose output is still X (good or faulty) but which
// have a definite good/faulty difference on some input, by scanning the
// fault cone. The returned slice is scratch, valid until the next call.
func (g *refGenerator) dFrontier(f faultsim.Fault) []int {
	out := g.dfBuf[:0]
	for _, gi := range g.cone {
		gate := &g.t.net.Gates[gi]
		if gate.Type == netlist.Input {
			continue
		}
		if g.good[gi] != vX && g.bad[gi] != vX {
			continue
		}
		for pin, fi := range gate.Fanin {
			gv, bv := g.good[fi], g.bad[fi]
			if f.Gate == gi && f.Pin == pin {
				bv = f.Stuck
			}
			if gv != vX && bv != vX && gv != bv {
				out = append(out, gi)
				break
			}
		}
	}
	g.dfBuf = out
	return out
}

// xPathToOutput reports whether a path of X-valued gates leads from gate
// gi to some primary output.
func (g *refGenerator) xPathToOutput(gi int) bool {
	if g.t.isOutput[gi] {
		return true
	}
	g.seenEpoch++
	if g.seenEpoch == 0 {
		clear(g.seen)
		g.seenEpoch = 1
	}
	stack := g.dfStack[:0]
	stack = append(stack, gi)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range g.t.fanout[cur] {
			if g.seen[fo] == g.seenEpoch {
				continue
			}
			g.seen[fo] = g.seenEpoch
			if g.good[fo] != vX && g.bad[fo] != vX {
				continue
			}
			if g.t.isOutput[fo] {
				g.dfStack = stack
				return true
			}
			stack = append(stack, fo)
		}
	}
	g.dfStack = stack
	return false
}

// backtrace walks an objective (gate, value) backwards to an unassigned
// primary input — identical to the event-driven engine's backtrace.
func (g *refGenerator) backtrace(gate int, val uint8) (piIdx int, piVal uint8, ok bool) {
	n := g.t.net
	cur, want := gate, val
	for steps := 0; steps < n.NumGates()+1; steps++ {
		gt := &n.Gates[cur]
		if gt.Type == netlist.Input {
			if g.good[cur] != vX {
				return 0, 0, false
			}
			if ii := g.t.inputIdx[cur]; ii >= 0 {
				return ii, want, true
			}
			return 0, 0, false
		}
		nextWant := want
		switch gt.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			nextWant = want ^ 1
		}
		bestFi, bestCost := -1, 1<<30
		for _, fi := range gt.Fanin {
			if g.good[fi] != vX {
				continue
			}
			cost := g.t.cc0[fi]
			if nextWant == v1 {
				cost = g.t.cc1[fi]
			}
			if cost < bestCost {
				bestCost = cost
				bestFi = fi
			}
		}
		if bestFi < 0 {
			return 0, 0, false
		}
		cur, want = bestFi, nextWant
	}
	return 0, 0, false
}

// resimulateFrom computes the reference state for a PI assignment taken
// from another engine's good array: inputs copied, everything else derived
// by a full 3-valued simulation with the fault injected. The differential
// tests call it from the event engine's imply hook.
func (g *refGenerator) resimulateFrom(piGood []uint8, f faultsim.Fault) {
	n := g.t.net
	for i := range g.good {
		g.good[i] = vX
		g.bad[i] = vX
	}
	for _, gi := range n.Inputs {
		g.good[gi] = piGood[gi]
	}
	g.simulate(f)
}
