package atpg

import (
	"fmt"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// diffCircuit is one differential-test circuit: c17 or a seeded random
// netlist with size/shape varied by the seed.
func diffCircuit(t testing.TB, seed uint64) *netlist.Netlist {
	t.Helper()
	if seed == 0 {
		return readC17(t)
	}
	cfg := netlist.RandomConfig{
		Inputs:  5 + int(seed%9),
		Outputs: 2 + int(seed%5),
		Gates:   12 + int(seed%36),
		MaxFan:  2 + int(seed%3),
		Seed:    seed,
	}
	nl, err := netlist.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// compareEngineState asserts the event-driven generator's full 3-valued
// good/bad state and its incrementally maintained D-frontier equal the
// reference full re-simulation from the same PI assignment.
func compareEngineState(t *testing.T, label string, g *Generator, r *refGenerator, f faultsim.Fault) {
	t.Helper()
	r.resimulateFrom(g.good, f)
	for gi := range g.good {
		if g.good[gi] != r.good[gi] || g.bad[gi] != r.bad[gi] {
			t.Fatalf("%s: gate %d (%s): event state good=%d bad=%d, reference good=%d bad=%d",
				label, gi, g.t.net.Gates[gi].Name, g.good[gi], g.bad[gi], r.good[gi], r.bad[gi])
		}
	}
	got := g.dFrontier()
	want := r.dFrontier(f) // cone must be current: computeCone ran in the caller
	if len(got) != len(want) {
		t.Fatalf("%s: D-frontier %v, reference %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: D-frontier %v, reference %v", label, got, want)
		}
	}
}

// TestImplyDifferential is the central differential test of this package:
// for c17 plus 200 seeded random netlists, every implication the
// event-driven engine performs during real PODEM runs (initial fault
// injection, every decision, every backtrack re-assignment) must leave the
// exact gate-value state and D-frontier a full re-simulation produces, and
// every Generate outcome (cube, Status) must be identical to the kept
// reference implementation. CI runs it under -race.
func TestImplyDifferential(t *testing.T) {
	const numRandom = 200
	for seed := uint64(0); seed <= numRandom; seed++ {
		name := "c17"
		if seed > 0 {
			name = fmt.Sprintf("random-%d", seed)
		}
		nl := diffCircuit(t, seed)
		tables, err := NewTables(nl)
		if err != nil {
			t.Fatal(err)
		}
		u := faultsim.NewUniverse(nl)
		g := tables.NewGenerator()
		ref := newRefGenerator(tables)
		// A modest limit keeps hard faults cheap while still exercising the
		// aborted path; it applies identically to both engines.
		g.BacktrackLimit = 30
		ref.BacktrackLimit = 30
		checker := newRefGenerator(tables)
		for _, f := range u.Faults {
			f := f
			label := fmt.Sprintf("%s fault %v", name, f)
			checker.computeCone(f)
			g.implyHook = func() { compareEngineState(t, label, g, checker, f) }
			gc, gs := g.Generate(f)
			g.implyHook = nil
			rc, rs := ref.Generate(f)
			if gs != rs {
				t.Fatalf("%s: event status %v, reference %v", label, gs, rs)
			}
			if gs == StatusDetected && gc.String() != rc.String() {
				t.Fatalf("%s: event cube %s, reference %s", label, gc, rc)
			}
		}
	}
}

// TestGenerateReusedAcrossFaults guards the scratch reuse: one generator
// run over the whole fault list twice must produce identical results —
// no state may leak from one Generate into the next.
func TestGenerateReusedAcrossFaults(t *testing.T) {
	nl := diffCircuit(t, 17)
	u := faultsim.NewUniverse(nl)
	g, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		cube   string
		status Status
	}
	var first []outcome
	for round := 0; round < 2; round++ {
		for fi, f := range u.Faults {
			c, s := g.Generate(f)
			o := outcome{cube: c.String(), status: s}
			if round == 0 {
				first = append(first, o)
				continue
			}
			if o != first[fi] {
				t.Fatalf("fault %v: round 2 gave (%s, %v), round 1 (%s, %v)",
					f, o.cube, o.status, first[fi].cube, first[fi].status)
			}
		}
	}
}

// TestTablesBuiltOncePerRunAll asserts the Generator split pays the shared
// tables exactly once per RunAll regardless of the worker count, and not
// at all when Options.Tables supplies prebuilt ones.
func TestTablesBuiltOncePerRunAll(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 20, Outputs: 8, Gates: 120, MaxFan: 3, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	for _, workers := range []int{1, 4, 8} {
		before := tablesBuilt.Load()
		if _, err := RunAll(u, Options{FaultDrop: true, FillSeed: 3, Workers: workers, BacktrackLimit: 40}); err != nil {
			t.Fatal(err)
		}
		if got := tablesBuilt.Load() - before; got != 1 {
			t.Errorf("workers=%d: RunAll built tables %d times, want exactly 1", workers, got)
		}
	}
	prebuilt, err := NewTables(nl)
	if err != nil {
		t.Fatal(err)
	}
	before := tablesBuilt.Load()
	if _, err := RunAll(u, Options{FaultDrop: true, FillSeed: 3, Workers: 4, Tables: prebuilt}); err != nil {
		t.Fatal(err)
	}
	if got := tablesBuilt.Load() - before; got != 0 {
		t.Errorf("RunAll with prebuilt Options.Tables built tables %d times, want 0", got)
	}
	// Tables for the wrong netlist must be rejected, not silently used.
	other := readC17(t)
	wrong, err := NewTables(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAll(u, Options{Tables: wrong}); err == nil {
		t.Error("RunAll accepted Tables built over a different netlist")
	}
	// Tables gone stale after a same-netlist mutation must be rejected
	// too (the pointer still matches, but the sizes no longer do).
	stale, err := NewTables(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.AddGate("pr3_extra", netlist.Buf, "22"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAll(faultsim.NewUniverse(other), Options{Tables: stale}); err == nil {
		t.Error("RunAll accepted stale Tables after a netlist mutation")
	}
	// MarkOutput changes neither the pointer nor the gate count, but makes
	// isOutput stale — detection would silently miss the new output.
	third := readC17(t)
	stale2, err := NewTables(third)
	if err != nil {
		t.Fatal(err)
	}
	if err := third.MarkOutput("16"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAll(faultsim.NewUniverse(third), Options{Tables: stale2}); err == nil {
		t.Error("RunAll accepted stale Tables after MarkOutput")
	}
}
