package atpg

// Tests for the FAN/SOCRATES-style multiple backtrace (backtrace.go). The
// two strategies legitimately make different decisions, so unlike the
// event-vs-reference implication tests these do not assert bit-identity;
// they assert the properties that make a strategy *valid*: every emitted
// cube detects its fault on the independent fault simulator, untestability
// verdicts never contradict the reference engine, and whole-circuit
// coverage never drops below the reference strategy's.

import (
	"fmt"
	"testing"

	"repro/internal/cube"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// verifyCube asserts a detected cube really detects its fault on the
// independent fault simulator, for both X-fill polarities.
func verifyCube(t *testing.T, label string, sim *faultsim.Simulator, f faultsim.Fault, c cube.Cube) {
	t.Helper()
	for fill := uint8(0); fill <= 1; fill++ {
		pat := make([]uint8, c.Width())
		for i := range pat {
			if v := c.Get(i); v >= 0 {
				pat[i] = uint8(v)
			} else {
				pat[i] = fill
			}
		}
		if err := sim.LoadPatterns([][]uint8{pat}); err != nil {
			t.Fatal(err)
		}
		if sim.DetectMask(f) == 0 {
			t.Fatalf("%s: cube %s (X=%d) does not detect fault %v", label, c, fill, f)
		}
	}
}

// TestMultiStatusSound cross-checks the multiple-backtrace engine against
// the classic engine fault by fault on c17 plus 120 random netlists. The
// strategies may disagree on cubes and even on detected-vs-aborted (their
// decision orders differ), but an untestability *proof* is a theorem about
// the circuit: if one engine proves a fault redundant while the other
// detects it, one of them is broken. Every cube the multi engine emits is
// verified on the independent fault simulator.
func TestMultiStatusSound(t *testing.T) {
	const numRandom = 120
	for seed := uint64(0); seed <= numRandom; seed++ {
		name := "c17"
		if seed > 0 {
			name = fmt.Sprintf("random-%d", seed)
		}
		nl := diffCircuit(t, seed)
		tables, err := NewTables(nl)
		if err != nil {
			t.Fatal(err)
		}
		u := faultsim.NewUniverse(nl)
		sim, err := faultsim.NewSimulator(u)
		if err != nil {
			t.Fatal(err)
		}
		multi := tables.NewGenerator()
		multi.Strategy = BacktraceMulti
		ref := tables.NewGenerator()
		// A generous limit lets most untestability proofs finish so the
		// soundness comparison has teeth.
		multi.BacktrackLimit = 200
		ref.BacktrackLimit = 200
		for _, f := range u.Faults {
			label := fmt.Sprintf("%s fault %v", name, f)
			mc, ms := multi.Generate(f)
			rc, rs := ref.Generate(f)
			_ = rc
			if ms == StatusUntestable && rs == StatusDetected {
				t.Fatalf("%s: multi proves untestable, reference detects", label)
			}
			if rs == StatusUntestable && ms == StatusDetected {
				t.Fatalf("%s: reference proves untestable, multi detects", label)
			}
			if ms == StatusDetected {
				verifyCube(t, label, sim, f, mc)
			}
		}
	}
}

// TestMultiRunAllCoverageNoLower locks the acceptance property at RunAll
// scale: on the differential circuit set, the multiple backtrace must reach
// at least the classic strategy's coverage, and spend no more backtracks
// doing it.
func TestMultiRunAllCoverageNoLower(t *testing.T) {
	for name, nl := range runAllCircuits(t) {
		u := faultsim.NewUniverse(nl)
		opt := Options{FaultDrop: true, FillSeed: 99, BacktrackLimit: 40}
		ref, err := RunAll(u, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Backtrace = BacktraceMulti
		multi, err := RunAll(u, opt)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Coverage < ref.Coverage {
			t.Errorf("%s: multi coverage %.4f below reference %.4f", name, multi.Coverage, ref.Coverage)
		}
		if multi.Backtracks > ref.Backtracks {
			t.Errorf("%s: multi spent %d backtracks, reference %d", name, multi.Backtracks, ref.Backtracks)
		}
		t.Logf("%s: backtracks %d → %d, aborted %d → %d, coverage %.4f → %.4f",
			name, ref.Backtracks, multi.Backtracks, ref.Aborted, multi.Aborted, ref.Coverage, multi.Coverage)
	}
}

// TestMultiPatternsReachReportedCoverage runs the full multi-strategy
// RunAll flow end to end and confirms the X-filled patterns it shipped
// reproduce the coverage it reported, on the independent fault simulator —
// the same end-to-end property the classic strategy is held to in
// TestRandomCircuitsHighCoverage.
func TestMultiPatternsReachReportedCoverage(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		nl, err := netlist.Random(netlist.RandomConfig{Inputs: 24, Outputs: 8, Gates: 120, MaxFan: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		u := faultsim.NewUniverse(nl)
		res, err := RunAll(u, Options{FaultDrop: true, FillSeed: seed, Backtrace: BacktraceMulti})
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < 0.98 {
			t.Errorf("seed %d: coverage %.3f below 0.98", seed, res.Coverage)
		}
		_, cov, err := faultsim.Coverage(u, res.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		wantCov := res.Coverage * float64(len(u.Faults)-res.Untestable) / float64(len(u.Faults))
		if cov+1e-9 < wantCov {
			t.Errorf("seed %d: independent fault sim coverage %.3f below ATPG-reported %.3f", seed, cov, wantCov)
		}
	}
}

// TestParseBacktrace pins the CLI flag spellings and the String round trip.
func TestParseBacktrace(t *testing.T) {
	cases := []struct {
		in   string
		want Backtrace
		ok   bool
	}{
		{"scoap", BacktraceSCOAP, true},
		{"", BacktraceSCOAP, true},
		{"multi", BacktraceMulti, true},
		{"fan", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseBacktrace(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseBacktrace(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
	if BacktraceSCOAP.String() != "scoap" || BacktraceMulti.String() != "multi" || Backtrace(9).String() != "unknown" {
		t.Error("Backtrace.String spelling drifted from the -backtrace flag values")
	}
}
