package atpg

// Native fuzz targets cross-checking the event-driven implication engine
// against the full-resimulation reference. FuzzGenerate fuzzes circuit
// shape, fault site and backtrack budget and compares whole PODEM runs;
// FuzzImply fuzzes a raw assign/undo decision sequence and compares the
// complete 3-valued state and D-frontier after every step. A small seed
// corpus is checked into testdata/fuzz/; CI runs a short -fuzz smoke on
// FuzzImply.

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// fuzzSetup decodes a fuzzed circuit shape and fault selector into a
// netlist, shared tables and one fault of its collapsed universe.
// shape[0..4] select inputs, outputs, gates, max fan-in and the backtrack
// budget; missing bytes default to zero.
func fuzzSetup(t *testing.T, seed, faultSel uint64, shape []byte) (*Tables, *faultsim.Universe, faultsim.Fault, int) {
	t.Helper()
	sb := func(i int) int {
		if i < len(shape) {
			return int(shape[i])
		}
		return 0
	}
	cfg := netlist.RandomConfig{
		Inputs:  3 + sb(0)%14,
		Outputs: 1 + sb(1)%8,
		Gates:   8 + sb(2)%72,
		MaxFan:  2 + sb(3)%3,
		Seed:    seed,
	}
	nl, err := netlist.Random(cfg)
	if err != nil {
		t.Skip("unbuildable fuzz config:", err)
	}
	tables, err := NewTables(nl)
	if err != nil {
		t.Skip("unlevelizable fuzz circuit:", err)
	}
	u := faultsim.NewUniverse(nl)
	if len(u.Faults) == 0 {
		t.Skip("empty fault universe")
	}
	f := u.Faults[int(faultSel%uint64(len(u.Faults)))]
	limit := 1 + sb(4)%60
	return tables, u, f, limit
}

// FuzzGenerate compares full PODEM runs of the event-driven and reference
// engines on fuzzed (circuit shape, fault site, backtrack budget) triples:
// status and cube must match bit for bit, and any detected cube must
// actually detect its fault on the independent fault simulator for both
// X-fill polarities. The multiple-backtrace strategy runs on the same
// triple under the validity contract instead: verified cubes, and no
// untestability verdict that contradicts the reference engine.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(1), uint64(0), []byte{12, 4, 48, 1, 40})
	f.Add(uint64(2008), uint64(17), []byte{6, 2, 20, 0, 10})
	f.Add(uint64(7), uint64(999), []byte{13, 7, 71, 2, 5})
	f.Fuzz(func(t *testing.T, seed, faultSel uint64, shape []byte) {
		tables, u, fault, limit := fuzzSetup(t, seed, faultSel, shape)
		g := tables.NewGenerator()
		g.BacktrackLimit = limit
		ref := newRefGenerator(tables)
		ref.BacktrackLimit = limit
		gc, gs := g.Generate(fault)
		rc, rs := ref.Generate(fault)
		if gs != rs {
			t.Fatalf("fault %v: event status %v, reference %v", fault, gs, rs)
		}
		if gs == StatusDetected && gc.String() != rc.String() {
			t.Fatalf("fault %v: event cube %s, reference %s", fault, gc, rc)
		}
		sim, err := faultsim.NewSimulator(u)
		if err != nil {
			t.Fatal(err)
		}
		// Independent oracle: a PODEM cube detects its fault regardless of
		// how the don't-cares are filled (verifyCube, backtrace_test.go).
		if gs == StatusDetected {
			verifyCube(t, "event", sim, fault, gc)
		}
		multi := tables.NewGenerator()
		multi.Strategy = BacktraceMulti
		multi.BacktrackLimit = limit
		mc, ms := multi.Generate(fault)
		if ms == StatusDetected {
			verifyCube(t, "multi", sim, fault, mc)
		}
		if ms == StatusUntestable && gs == StatusDetected {
			t.Fatalf("fault %v: multi proves untestable, reference detects", fault)
		}
		if gs == StatusUntestable && ms == StatusDetected {
			t.Fatalf("fault %v: reference proves untestable, multi detects", fault)
		}
	})
}

// FuzzImply drives the event-driven engine through a fuzzed sequence of PI
// assignments and trail undos — decision orders PODEM itself would never
// pick — and asserts the full good/bad state and the incremental
// D-frontier equal a fresh full re-simulation after every single step.
func FuzzImply(f *testing.F) {
	f.Add(uint64(1), uint64(0), []byte{12, 4, 48, 1}, []byte{0x02, 0x05, 0x81, 0x04, 0x80})
	f.Add(uint64(42), uint64(33), []byte{8, 3, 60, 2}, []byte{0x01, 0x03, 0x07, 0x80, 0x80, 0x06})
	f.Add(uint64(2008), uint64(5), []byte{14, 5, 30, 0}, []byte{0x10, 0x91, 0x12, 0x13})
	f.Fuzz(func(t *testing.T, seed, faultSel uint64, shape, ops []byte) {
		tables, _, fault, _ := fuzzSetup(t, seed, faultSel, shape)
		nl := tables.Netlist()
		g := tables.NewGenerator()
		checker := newRefGenerator(tables)
		checker.computeCone(fault)
		step := -1
		check := func() {
			checker.resimulateFrom(g.good, fault)
			for gi := range g.good {
				if g.good[gi] != checker.good[gi] || g.bad[gi] != checker.bad[gi] {
					t.Fatalf("step %d gate %d: event good=%d bad=%d, reference good=%d bad=%d",
						step, gi, g.good[gi], g.bad[gi], checker.good[gi], checker.bad[gi])
				}
			}
			got, want := g.dFrontier(), checker.dFrontier(fault)
			if len(got) != len(want) {
				t.Fatalf("step %d: D-frontier %v, reference %v", step, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: D-frontier %v, reference %v", step, got, want)
				}
			}
		}
		g.begin(fault)
		check()
		var marks []int
		for si, op := range ops {
			step = si
			if op&0x80 != 0 {
				if len(marks) == 0 {
					continue
				}
				g.undoTo(marks[len(marks)-1])
				marks = marks[:len(marks)-1]
				check()
				continue
			}
			pi := int(op>>1) % len(nl.Inputs)
			if g.good[nl.Inputs[pi]] != vX {
				continue // PODEM only ever assigns unassigned inputs
			}
			marks = append(marks, len(g.trail))
			g.assign(pi, op&1)
			check()
		}
	})
}
