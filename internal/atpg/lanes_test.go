package atpg

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// TestRunAllLaneWordsBitIdentical pins the lane-width bit-identity contract
// end to end: for every (workers, lane width, backtrace) combination the
// full RunAll output — cubes, patterns, detected/untestable/aborted
// counters, backtracks and coverage — must equal the per-pattern serial
// reference. Widening the sweep only changes the drop cadence, and the
// dropPending check at each commit makes the cadence unobservable. Run with
// -race (CI does) to check the sharded sweeps under the pipeline.
func TestRunAllLaneWordsBitIdentical(t *testing.T) {
	for name, nl := range runAllCircuits(t) {
		for _, strategy := range []Backtrace{BacktraceSCOAP, BacktraceMulti} {
			t.Run(fmt.Sprintf("%s/%v", name, strategy), func(t *testing.T) {
				u := faultsim.NewUniverse(nl)
				opt := Options{FaultDrop: true, FillSeed: 99, BacktrackLimit: 40, Backtrace: strategy}
				want, err := runAllPerPattern(u, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3} {
					for _, lw := range []int{1, 2, 4, 8} {
						o := opt
						o.Workers = workers
						o.LaneWords = lw
						got, err := RunAll(u, o)
						if err != nil {
							t.Fatal(err)
						}
						diffResults(t, fmt.Sprintf("workers=%d lanewords=%d", workers, lw), got, want)
					}
				}
			})
		}
	}
}

// TestCheckpointResumeAcrossLaneWidths covers the capacity-independence of
// the checkpoint replay: a checkpoint taken by a producer running one lane
// width must resume bit-identically under a different width in either
// direction (wide producer → narrow resumer replays sweeps the producer had
// not flushed yet; narrow → wide re-batches them into wider sweeps).
func TestCheckpointResumeAcrossLaneWidths(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 40, Outputs: 12, Gates: 360, MaxFan: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	base := Options{FaultDrop: true, FillSeed: 99, BacktrackLimit: 40, Workers: 1}
	want, err := RunAll(u, base)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ crashLanes, resumeLanes, stopAt int }{
		{8, 1, 2}, // wide producer, narrow resumer: replay spans many narrow sweeps
		{1, 8, 2}, // narrow producer, wide resumer: replay fits one wide batch
		{4, 2, 4},
	}
	for _, tc := range cases {
		ctx, cancel := context.WithCancel(context.Background())
		var blob []byte
		seen := 0
		opt := base
		opt.LaneWords = tc.crashLanes
		opt.CheckpointEvery = 5
		opt.Checkpoint = func(cp *Checkpoint) {
			seen++
			if seen == tc.stopAt {
				b, err := cp.MarshalBinary()
				if err != nil {
					t.Errorf("MarshalBinary: %v", err)
				}
				blob = b
				cancel()
			}
		}
		_, err := RunAllCtx(ctx, u, opt)
		cancel()
		if blob == nil {
			t.Fatalf("lanes=%d stop=%d: run finished before checkpoint %d (seen %d)", tc.crashLanes, tc.stopAt, tc.stopAt, seen)
		}
		if err == nil {
			t.Fatalf("lanes=%d stop=%d: cancelled run returned nil error", tc.crashLanes, tc.stopAt)
		}
		var cp Checkpoint
		if err := cp.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		resumeOpt := base
		resumeOpt.LaneWords = tc.resumeLanes
		resumeOpt.Resume = &cp
		got, err := RunAll(u, resumeOpt)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("resume lanes %d→%d", tc.crashLanes, tc.resumeLanes), got, want)
	}
}

// BenchmarkRunAllLaneWidth measures the whole ATPG pipeline across lane
// widths on a drop-heavy core: wider lanes amortize each committed
// pattern's sweep over up to 512 lanes. Counters are bit-identical across
// the sub-benchmarks; only the sweep cadence differs.
func BenchmarkRunAllLaneWidth(b *testing.B) {
	nl, err := netlist.Random(netlist.RandomConfig{Inputs: 400, Outputs: 160, Gates: 800, MaxFan: 3, Seed: 2008})
	if err != nil {
		b.Fatal(err)
	}
	u := faultsim.NewUniverse(nl)
	for _, lw := range []int{1, 8} {
		b.Run(fmt.Sprintf("lanewords=%d", lw), func(b *testing.B) {
			opt := Options{FaultDrop: true, FillSeed: 7, Workers: 1, BacktrackLimit: 20, LaneWords: lw}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunAll(u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
