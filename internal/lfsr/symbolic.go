package lfsr

import (
	"fmt"

	"repro/internal/gf2"
)

// Symbolic simulates an LFSR whose initial state is a vector of free binary
// variables (a_0, ..., a_{n-1}) rather than concrete bits. After t clocks,
// each cell holds a linear expression over those variables; Expr(i) returns
// the expression of cell i as an n-bit coefficient vector.
//
// This is the construction of Section 3.1 of the paper: initialising the
// register with symbolic state and clocking it k times yields the linear
// expressions F_0^k ... F_{n-1}^k that the State Skip circuit implements,
// and clocking it through a whole window yields the equation system that
// seed computation solves (Koenemann's LFSR-coded test patterns).
type Symbolic struct {
	l     *LFSR
	cycle int
	exprs []gf2.Vec // exprs[i] = expression of cell i over initial variables
}

// NewSymbolic returns a symbolic simulation at cycle 0, where cell i holds
// exactly variable a_i. All n expressions live in one contiguous word arena
// (Step only rotates the views and XORs in place), so long window
// simulations walk cache lines instead of n scattered allocations.
func NewSymbolic(l *LFSR) *Symbolic {
	s := &Symbolic{l: l, exprs: make([]gf2.Vec, l.n)}
	words := (l.n + 63) / 64
	arena := make([]uint64, l.n*words)
	for i := range s.exprs {
		s.exprs[i] = gf2.VecView(l.n, arena[i*words:(i+1)*words])
		s.exprs[i].SetBit(i, 1)
	}
	return s
}

// Cycle returns the number of clocks applied so far.
func (s *Symbolic) Cycle() int { return s.cycle }

// Expr returns the expression of cell i. The returned vector is live
// simulation state: callers must clone it if they need it to survive the
// next Step.
func (s *Symbolic) Expr(i int) gf2.Vec { return s.exprs[i] }

// ExprMatrix returns a snapshot matrix whose row i is the expression of
// cell i, i.e. T^cycle.
func (s *Symbolic) ExprMatrix() gf2.Mat {
	return gf2.MatFromRows(s.exprs)
}

// Step advances the symbolic state one clock, allocation-free.
func (s *Symbolic) Step() {
	n := s.l.n
	switch s.l.form {
	case Fibonacci:
		// fb = XOR of tap cells; cell 0 always participates (c_0 = 1), so
		// accumulate into its storage and rotate it to the top.
		fb := s.exprs[0]
		for j := 1; j < n; j++ {
			if s.l.coeffs.Bit(j) != 0 {
				fb.Xor(s.exprs[j])
			}
		}
		copy(s.exprs, s.exprs[1:])
		s.exprs[n-1] = fb
	case Galois:
		// f = cell n-1 becomes cell 0; every cell i ≥ 1 takes cell i-1,
		// XORed with f where the polynomial has a term.
		f := s.exprs[n-1]
		copy(s.exprs[1:], s.exprs[:n-1])
		s.exprs[0] = f
		for i := 1; i < n; i++ {
			if s.l.coeffs.Bit(i) != 0 {
				s.exprs[i].Xor(f)
			}
		}
	default:
		panic(fmt.Sprintf("lfsr: unknown form %v", s.l.form))
	}
	s.cycle++
}

// StepN advances the symbolic state by k clocks.
func (s *Symbolic) StepN(k int) {
	for i := 0; i < k; i++ {
		s.Step()
	}
}

// SkipExpressions returns the linear expressions F_0^k ... F_{n-1}^k of
// Section 3.1: row i is the expression of cell i after k clocks in terms of
// the state k clocks earlier. It equals l.SkipMatrix(k) and is computed by
// fresh symbolic simulation, which is how the paper describes deriving the
// State Skip circuit.
func SkipExpressions(l *LFSR, k int) gf2.Mat {
	s := NewSymbolic(l)
	s.StepN(k)
	return s.ExprMatrix()
}
