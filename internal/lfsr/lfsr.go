// Package lfsr models Linear Feedback Shift Registers and the State Skip
// extension introduced by Tenentes, Kavousianos and Kalligeros (DATE 2008).
//
// An LFSR of size n is a linear autonomous machine: its next state is T·s
// for an invertible n×n transition matrix T over GF(2). The State Skip
// circuit is a second linear next-state function implementing T^k, so that
// one clock in State Skip mode advances the register k states, skipping the
// k-1 intermediate states. Because T^k depends only on the characteristic
// polynomial and k — never on the current state — the same two-mode register
// works at every point of the state sequence.
package lfsr

import (
	"fmt"
	"sync"

	"repro/internal/gf2"
)

// Form selects the feedback structure of the register.
type Form int

const (
	// Fibonacci is the external-XOR form: cells shift down one position and
	// the top cell receives the XOR of the tap cells.
	Fibonacci Form = iota
	// Galois is the internal-XOR form: the feedback bit is XORed into the
	// cells selected by the characteristic polynomial as the register
	// shifts. The worked example in Fig. 2 of the paper is a Galois LFSR.
	Galois
)

func (f Form) String() string {
	switch f {
	case Fibonacci:
		return "fibonacci"
	case Galois:
		return "galois"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// LFSR is a description of a linear feedback shift register: its size,
// feedback form, characteristic-polynomial coefficients and the derived
// transition matrix. State vectors live outside the struct so one LFSR can
// drive many concurrent simulations; the only internal mutability is a
// mutex-guarded memo of skip matrices, so all methods are safe for
// concurrent use.
type LFSR struct {
	n      int
	form   Form
	coeffs gf2.Vec // coeffs.Bit(i) = coefficient of x^i, i in [0,n); x^n implied
	t      gf2.Mat // transition matrix: next = t·state

	mu    sync.Mutex
	skips map[uint64]gf2.Mat // guarded by mu; memoized T^k per speedup factor k
}

// New builds an LFSR of size n with the given characteristic polynomial
// p(x) = x^n + Σ coeffs_i x^i. coeffs must have length n and constant term
// coeffs_0 = 1 (otherwise the transition is singular and the register loses
// state information).
func New(form Form, coeffs gf2.Vec) (*LFSR, error) {
	n := coeffs.Len()
	if n < 2 {
		return nil, fmt.Errorf("lfsr: size %d too small (need ≥ 2)", n)
	}
	if coeffs.Bit(0) != 1 {
		return nil, fmt.Errorf("lfsr: constant coefficient must be 1 for an invertible transition")
	}
	l := &LFSR{n: n, form: form, coeffs: coeffs.Clone(), skips: make(map[uint64]gf2.Mat)}
	l.t = l.buildTransition()
	return l, nil
}

// NewFromTaps builds an LFSR of the given size from polynomial exponents.
// The exponents may include size and 0; both are implied and deduplicated.
// Example: NewFromTaps(Fibonacci, 4, []int{4, 1, 0}) is x^4 + x + 1.
func NewFromTaps(form Form, size int, taps []int) (*LFSR, error) {
	coeffs := gf2.NewVec(size)
	coeffs.SetBit(0, 1)
	for _, e := range taps {
		if e < 0 || e > size {
			return nil, fmt.Errorf("lfsr: tap exponent %d out of range [0,%d]", e, size)
		}
		if e == size || e == 0 {
			continue
		}
		coeffs.SetBit(e, 1)
	}
	return New(form, coeffs)
}

// NewStandard builds an LFSR of the given size using the curated primitive
// polynomial table (see Taps). It fails if the table has no entry.
func NewStandard(form Form, size int) (*LFSR, error) {
	taps, ok := Taps(size)
	if !ok {
		return nil, fmt.Errorf("lfsr: no curated primitive polynomial for size %d", size)
	}
	return NewFromTaps(form, size, taps)
}

// Size returns the number of register cells n.
func (l *LFSR) Size() int { return l.n }

// FormOf returns the feedback structure.
func (l *LFSR) FormOf() Form { return l.form }

// Coeffs returns a copy of the characteristic polynomial coefficients
// (bit i = coefficient of x^i, i < n; the x^n term is implied).
func (l *LFSR) Coeffs() gf2.Vec { return l.coeffs.Clone() }

// CharPoly returns the characteristic polynomial as a gf2.Poly.
func (l *LFSR) CharPoly() gf2.Poly {
	exps := []int{l.n}
	for i := 0; i < l.n; i++ {
		if l.coeffs.Bit(i) != 0 {
			exps = append(exps, i)
		}
	}
	return gf2.NewPoly(exps...)
}

// Transition returns a copy of the transition matrix T (next = T·state).
func (l *LFSR) Transition() gf2.Mat { return l.t.Clone() }

// buildTransition derives T from the form and coefficients.
//
// Fibonacci: cell i takes cell i+1; cell n-1 takes the XOR of the cells
// selected by the coefficients (cell 0 always participates since c_0 = 1).
//
// Galois: feedback f = cell n-1; cell 0 takes f; cell i (i ≥ 1) takes cell
// i-1 XOR c_i·f. For n = 4, c = (1,1,0,1) this is exactly the register of
// the paper's Fig. 2.
func (l *LFSR) buildTransition() gf2.Mat {
	t := gf2.NewMat(l.n, l.n)
	switch l.form {
	case Fibonacci:
		for i := 0; i < l.n-1; i++ {
			t.Set(i, i+1, 1)
		}
		for j := 0; j < l.n; j++ {
			if l.coeffs.Bit(j) != 0 {
				t.Set(l.n-1, j, 1)
			}
		}
	case Galois:
		t.Set(0, l.n-1, 1)
		for i := 1; i < l.n; i++ {
			t.Set(i, i-1, 1)
			if l.coeffs.Bit(i) != 0 {
				t.Set(i, l.n-1, 1)
			}
		}
	default:
		panic(fmt.Sprintf("lfsr: unknown form %v", l.form))
	}
	return t
}

// Step returns the successor of state (one Normal-mode clock). It performs
// the O(n) shift directly rather than raising the transition matrix to a
// power, so it is safe to call once per simulated clock.
func (l *LFSR) Step(state gf2.Vec) gf2.Vec {
	dst := gf2.NewVec(l.n)
	l.StepInto(dst, state)
	return dst
}

// StepInto writes the successor of state into dst without allocating.
// dst and state must be distinct n-bit vectors.
func (l *LFSR) StepInto(dst, state gf2.Vec) {
	if dst.Len() != l.n || state.Len() != l.n {
		panic("lfsr: StepInto length mismatch")
	}
	switch l.form {
	case Fibonacci:
		var fb uint8
		for j := 0; j < l.n; j++ {
			if l.coeffs.Bit(j) != 0 {
				fb ^= state.Bit(j)
			}
		}
		for i := 0; i < l.n-1; i++ {
			dst.SetBit(i, state.Bit(i+1))
		}
		dst.SetBit(l.n-1, fb)
	case Galois:
		f := state.Bit(l.n - 1)
		dst.SetBit(0, f)
		for i := 1; i < l.n; i++ {
			b := state.Bit(i - 1)
			if l.coeffs.Bit(i) != 0 {
				b ^= f
			}
			dst.SetBit(i, b)
		}
	}
}

// SkipMatrix returns T^k, the linear function implemented by the State Skip
// circuit with speedup factor k. The O(n³ log k) exponentiation is memoized
// per k on the LFSR (safe for concurrent use); callers receive a private
// copy they may freely modify.
func (l *LFSR) SkipMatrix(k uint64) gf2.Mat {
	l.mu.Lock()
	m, ok := l.skips[k]
	if !ok {
		m = l.t.Pow(k)
		l.skips[k] = m
	}
	l.mu.Unlock()
	return m.Clone()
}

// Period runs the register from state 0...01 until it revisits the initial
// state and returns the cycle length. Only intended for n small enough to
// enumerate (tests use it to confirm maximal period 2^n - 1 for the curated
// polynomials).
func (l *LFSR) Period() uint64 {
	init := gf2.NewVec(l.n)
	init.SetBit(0, 1)
	cur := init.Clone()
	next := gf2.NewVec(l.n)
	var count uint64
	for {
		l.StepInto(next, cur)
		cur, next = next, cur
		count++
		if cur.Equal(init) {
			return count
		}
	}
}
