package lfsr

import (
	"testing"
	"testing/quick"

	"repro/internal/gf2"
	"repro/internal/prng"
)

func mustNew(t *testing.T, form Form, size int, taps []int) *LFSR {
	t.Helper()
	l, err := NewFromTaps(form, size, taps)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// fig2LFSR is the 4-bit Galois register of the paper's Fig. 2:
// c0'=c3, c1'=c0^c3, c2'=c1, c3'=c2^c3, i.e. p(x)=x^4+x^3+x+1.
func fig2LFSR(t *testing.T) *LFSR {
	t.Helper()
	return mustNew(t, Galois, 4, []int{3, 1})
}

func TestFig2Transition(t *testing.T) {
	l := fig2LFSR(t)
	tm := l.Transition()
	want := [][]int{
		{3},    // c0' = c3
		{0, 3}, // c1' = c0 ^ c3
		{1},    // c2' = c1
		{2, 3}, // c3' = c2 ^ c3
	}
	for i, deps := range want {
		row := tm.Row(i)
		if row.PopCount() != len(deps) {
			t.Fatalf("row %d = %v, want taps %v", i, row, deps)
		}
		for _, d := range deps {
			if row.Bit(d) != 1 {
				t.Fatalf("row %d missing dependence on c%d", i, d)
			}
		}
	}
}

// TestFig2SymbolicTable reproduces the symbolic state table printed in the
// paper's Fig. 2 for cycles t0..t3.
func TestFig2SymbolicTable(t *testing.T) {
	l := fig2LFSR(t)
	s := NewSymbolic(l)
	// want[cycle][cell] = variable indices XORed together.
	want := [][][]int{
		{{0}, {1}, {2}, {3}},             // t0
		{{3}, {0, 3}, {1}, {2, 3}},       // t1
		{{2, 3}, {2}, {0, 3}, {1, 2, 3}}, // t2
		{{1, 2, 3}, {1}, {2}, {0, 1, 2}}, // t3
	}
	for cyc := range want {
		for cell, vars := range want[cyc] {
			expr := s.Expr(cell)
			if expr.PopCount() != len(vars) {
				t.Fatalf("t%d cell %d: expr %v, want vars %v", cyc, cell, expr, vars)
			}
			for _, v := range vars {
				if expr.Bit(v) != 1 {
					t.Fatalf("t%d cell %d: expr %v missing a%d", cyc, cell, expr, v)
				}
			}
		}
		s.Step()
	}
}

// TestFig2StateSkipRelations checks the k=2 relations derived in Section 3.1:
// c0(t+2)=c2^c3, c1(t+2)=c2, c2(t+2)=c0^c3, c3(t+2)=c1^c2^c3 — for every
// state, not just the initial one.
func TestFig2StateSkipRelations(t *testing.T) {
	l := fig2LFSR(t)
	skip := l.SkipMatrix(2)
	want := [][]int{{2, 3}, {2}, {0, 3}, {1, 2, 3}}
	for i, deps := range want {
		row := skip.Row(i)
		if row.PopCount() != len(deps) {
			t.Fatalf("skip row %d = %v, want %v", i, row, deps)
		}
		for _, d := range deps {
			if row.Bit(d) != 1 {
				t.Fatalf("skip row %d missing c%d", i, d)
			}
		}
	}
	// And dynamically: from any state, two Normal steps equal one skip step.
	state := gf2.NewVec(4)
	state.SetBit(0, 1)
	state.SetBit(2, 1)
	state.SetBit(3, 1) // 1011 as in the figure
	for i := 0; i < 20; i++ {
		twoSteps := l.Step(l.Step(state))
		skipped := skip.MulVec(state)
		if !twoSteps.Equal(skipped) {
			t.Fatalf("cycle %d: skip disagrees with two normal steps", i)
		}
		state = l.Step(state)
	}
}

func TestStepIntoMatchesMatrix(t *testing.T) {
	for _, form := range []Form{Fibonacci, Galois} {
		l := mustNew(t, form, 16, []int{15, 13, 4})
		src := prng.New(uint64(form) + 9)
		state := gf2.NewVec(16)
		for i := 0; i < 16; i++ {
			state.SetBit(i, src.Bit())
		}
		state.SetBit(0, 1) // ensure nonzero
		dst := gf2.NewVec(16)
		for i := 0; i < 100; i++ {
			l.StepInto(dst, state)
			viaMatrix := l.Transition().MulVec(state)
			if !dst.Equal(viaMatrix) {
				t.Fatalf("%v: StepInto disagrees with transition matrix at step %d", form, i)
			}
			state.CopyFrom(dst)
		}
	}
}

func TestMaximalPeriodSmallSizes(t *testing.T) {
	// Exhaustively confirm the curated polynomials are primitive for small n:
	// the state sequence from any nonzero state must have period 2^n - 1.
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
		taps, ok := Taps(n)
		if !ok {
			t.Fatalf("no taps for size %d", n)
		}
		for _, form := range []Form{Fibonacci, Galois} {
			l, err := NewFromTaps(form, n, taps)
			if err != nil {
				t.Fatal(err)
			}
			want := uint64(1)<<uint(n) - 1
			if got := l.Period(); got != want {
				t.Errorf("size %d %v: period %d, want %d", n, form, got, want)
			}
		}
	}
}

func TestCuratedTapsIrreducible(t *testing.T) {
	// Rabin's irreducibility test over every table entry, including the
	// paper's sizes 24, 39, 44, 56 and 85 that are too big for exhaustive
	// period checks.
	for _, n := range Sizes() {
		taps, _ := Taps(n)
		exps := append([]int{n, 0}, taps...)
		p := gf2.NewPoly(exps...)
		if !gf2.Irreducible(p) {
			t.Errorf("curated polynomial for size %d (%v) is reducible", n, p)
		}
	}
}

func TestPaperSizesPresent(t *testing.T) {
	for _, n := range []int{24, 39, 44, 56, 85} {
		if _, ok := Taps(n); !ok {
			t.Errorf("missing curated polynomial for paper LFSR size %d", n)
		}
	}
}

func TestSkipMatrixComposition(t *testing.T) {
	// T^(j+k) = T^j · T^k and SkipExpressions agrees with SkipMatrix.
	l := mustNew(t, Fibonacci, 24, []int{23, 22, 17})
	f := func(j, k uint8) bool {
		ej, ek := uint64(j%40), uint64(k%40)
		prod := l.SkipMatrix(ej).Mul(l.SkipMatrix(ek))
		return prod.Equal(l.SkipMatrix(ej + ek))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	for _, k := range []int{1, 2, 7, 24} {
		if !SkipExpressions(l, k).Equal(l.SkipMatrix(uint64(k))) {
			t.Errorf("SkipExpressions(%d) disagrees with SkipMatrix", k)
		}
	}
}

func TestSkipModeShortensSequence(t *testing.T) {
	// Running s cycles in skip mode with factor k visits exactly the states
	// at indices 0, k, 2k, ... of the Normal-mode sequence.
	l := mustNew(t, Galois, 8, []int{6, 5, 4})
	k := 5
	skip := l.SkipMatrix(uint64(k))
	state := gf2.NewVec(8)
	state.SetBit(3, 1)
	// Normal-mode trajectory.
	normal := []gf2.Vec{state.Clone()}
	cur := state.Clone()
	for i := 0; i < 60; i++ {
		cur = l.Step(cur)
		normal = append(normal, cur.Clone())
	}
	// Skip-mode trajectory.
	cur = state.Clone()
	for i := 0; i*k < len(normal); i++ {
		if !cur.Equal(normal[i*k]) {
			t.Fatalf("skip step %d: got %v, want %v", i, cur, normal[i*k])
		}
		cur = skip.MulVec(cur)
	}
}

func TestTransitionInvertible(t *testing.T) {
	for _, form := range []Form{Fibonacci, Galois} {
		for _, n := range []int{8, 24, 44, 85} {
			taps, _ := Taps(n)
			l := mustNew(t, form, n, taps)
			if _, ok := l.Transition().Inverse(); !ok {
				t.Errorf("%v size %d: singular transition matrix", form, n)
			}
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(Fibonacci, gf2.NewVec(1)); err == nil {
		t.Error("size 1 accepted")
	}
	v := gf2.NewVec(8) // constant coefficient 0
	if _, err := New(Fibonacci, v); err == nil {
		t.Error("singular polynomial accepted")
	}
	if _, err := NewFromTaps(Galois, 8, []int{9}); err == nil {
		t.Error("out-of-range tap accepted")
	}
	if _, err := NewStandard(Fibonacci, 1000); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestCharPolyMatchesTaps(t *testing.T) {
	l := mustNew(t, Fibonacci, 24, []int{23, 22, 17})
	want := gf2.NewPoly(24, 23, 22, 17, 0)
	if !l.CharPoly().Equal(want) {
		t.Errorf("CharPoly = %v, want %v", l.CharPoly(), want)
	}
}

func TestSymbolicMatrixIsTransitionPower(t *testing.T) {
	l := mustNew(t, Fibonacci, 12, []int{6, 4, 1})
	s := NewSymbolic(l)
	for cyc := 0; cyc <= 30; cyc++ {
		if !s.ExprMatrix().Equal(l.Transition().Pow(uint64(cyc))) {
			t.Fatalf("symbolic state at cycle %d is not T^%d", cyc, cyc)
		}
		s.Step()
	}
}

func BenchmarkSymbolicStep(b *testing.B) {
	l, _ := NewStandard(Fibonacci, 85)
	s := NewSymbolic(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkStep(b *testing.B) {
	l, _ := NewStandard(Fibonacci, 85)
	state := gf2.NewVec(85)
	state.SetBit(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = l.Step(state)
	}
}

func BenchmarkSkipMatrix(b *testing.B) {
	l, _ := NewStandard(Fibonacci, 85)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.SkipMatrix(24)
	}
}
