package lfsr

// primitiveTaps maps register size n to the exponents of a primitive
// characteristic polynomial x^n + ... + 1 (the size itself and the constant
// term are implied and omitted here). The entries follow the widely used
// maximal-length tap tables (Xilinx XAPP052 and the tables in Golomb,
// "Shift Register Sequences"). Every entry is verified irreducible by
// TestCuratedTapsIrreducible using Rabin's test; maximal period is verified
// exhaustively for small sizes.
//
// The five LFSR sizes of the paper's Table 1 (24, 39, 44, 56, 85) are all
// present.
var primitiveTaps = map[int][]int{
	2:   {1},
	3:   {2},
	4:   {3},
	5:   {3},
	6:   {5},
	7:   {6},
	8:   {6, 5, 4},
	9:   {5},
	10:  {7},
	11:  {9},
	12:  {6, 4, 1},
	13:  {4, 3, 1},
	14:  {5, 3, 1},
	15:  {14},
	16:  {15, 13, 4},
	17:  {14},
	18:  {11},
	19:  {6, 2, 1},
	20:  {17},
	21:  {19},
	22:  {21},
	23:  {18},
	24:  {23, 22, 17},
	25:  {22},
	26:  {6, 2, 1},
	27:  {5, 2, 1},
	28:  {25},
	29:  {27},
	30:  {6, 4, 1},
	31:  {28},
	32:  {22, 2, 1},
	33:  {20},
	34:  {27, 2, 1},
	35:  {33},
	36:  {25},
	37:  {5, 4, 3, 2, 1},
	38:  {6, 5, 1},
	39:  {35},
	40:  {38, 21, 19},
	41:  {38},
	42:  {41, 20, 19},
	43:  {42, 38, 37},
	44:  {43, 18, 17},
	45:  {44, 42, 41},
	46:  {45, 26, 25},
	47:  {42},
	48:  {47, 21, 20},
	49:  {40},
	50:  {49, 24, 23},
	51:  {50, 36, 35},
	52:  {49},
	53:  {52, 38, 37},
	54:  {53, 18, 17},
	55:  {31},
	56:  {55, 35, 34},
	57:  {50},
	58:  {39},
	59:  {58, 38, 37},
	60:  {59},
	61:  {60, 46, 45},
	62:  {61, 6, 5},
	63:  {62},
	64:  {63, 61, 60},
	65:  {47},
	66:  {65, 57, 56},
	67:  {66, 58, 57},
	68:  {59},
	69:  {67, 42, 40},
	70:  {69, 55, 54},
	71:  {65},
	72:  {66, 25, 19},
	73:  {48},
	74:  {73, 59, 58},
	75:  {74, 65, 64},
	76:  {75, 41, 40},
	77:  {76, 47, 46},
	78:  {77, 59, 58},
	79:  {70},
	80:  {79, 43, 42},
	81:  {77},
	82:  {79, 47, 44},
	83:  {82, 38, 37},
	84:  {71},
	85:  {84, 58, 57},
	86:  {85, 74, 73},
	87:  {74},
	88:  {87, 17, 16},
	89:  {51},
	90:  {89, 72, 71},
	91:  {90, 8, 7},
	92:  {91, 80, 79},
	93:  {91},
	94:  {73},
	95:  {84},
	96:  {94, 49, 47},
	97:  {91},
	98:  {87},
	99:  {97, 54, 52},
	100: {63},
	128: {126, 101, 99},
}

// Taps returns the exponents of a curated primitive polynomial for size n
// (excluding the implied x^n and constant terms) and whether one exists.
// The returned slice must not be modified.
func Taps(n int) ([]int, bool) {
	t, ok := primitiveTaps[n]
	return t, ok
}

// Sizes returns all register sizes present in the curated table, unsorted.
func Sizes() []int {
	out := make([]int, 0, len(primitiveTaps))
	for n := range primitiveTaps {
		out = append(out, n)
	}
	return out
}
