// Package stateskip implements the paper's contribution: shortening the
// test sequences of window-based LFSR reseeding with State Skip LFSRs
// (Section 3.2 of the paper).
//
// Every seed's L-vector window is partitioned into segments of S vectors. A
// segment that embeds at least one test cube — deliberately (the encoder
// placed it there) or fortuitously (a sparse cube happens to match a
// pseudorandom vector) — is useful; all other segments are useless and are
// traversed in State Skip mode, which advances the LFSR k states per clock
// and shortens them by a factor ≈ k. A greedy cover minimises the number of
// useful segments, seeds are grouped by useful-segment count so each window
// stops right after its last useful segment, and the resulting schedule
// drives the decompressor of Fig. 3.
package stateskip

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/encoder"
	"repro/internal/gf2"
)

// Options configures a reduction.
type Options struct {
	// SegmentSize is S, the number of window vectors per segment, in [1, L].
	SegmentSize int
	// Speedup is k, the number of states one State Skip clock advances.
	Speedup int
	// NaiveSelection labels useful segments directly from the encoder's
	// deliberate assignments, ignoring fortuitous embeddings and skipping
	// the set-A/set-B greedy cover — the ablation baseline for the paper's
	// §3.2 selection procedure (ARCHITECTURE.md §③).
	NaiveSelection bool
	// KeepFirstSegment forces segment 0 of every seed to be useful. The
	// paper's Mode Select decoding optimisation assumes it (§3.3): the
	// encoder places each seed's primary cube at the window start, so the
	// assumption costs at most a handful of vectors and buys much simpler
	// per-core decode logic. On by default in DefaultOptions.
	KeepFirstSegment bool
	// Workers bounds the embedding-scan parallelism; 0 = GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the options used across the paper's experiments
// for a given S and k.
func DefaultOptions(s, k int) Options {
	return Options{SegmentSize: s, Speedup: k, KeepFirstSegment: true}
}

// SegRef identifies one segment of one seed's window.
type SegRef struct {
	Seed    int
	Segment int
}

// Reduction is the outcome of useful-segment selection for one encoding.
type Reduction struct {
	Enc  *encoder.Encoding
	Opt  Options
	Segs int // segments per window: ceil(L/S)

	// Useful[seed][segment] marks segments generated in Normal mode.
	Useful [][]bool
	// Embeddings[cube] lists every segment in which the cube is embedded
	// (deliberately or fortuitously), in (seed, segment) order.
	Embeddings [][]SegRef
	// CoveredBy[cube] is the useful segment chosen to cover the cube.
	CoveredBy []SegRef
	// GroupOrder lists seed indices sorted by ascending useful-segment
	// count — the order in which the decompressor's Group Counter walks
	// them (§3.3).
	GroupOrder []int
}

// VecRef identifies one vector of one seed's window.
type VecRef struct {
	Seed int
	Vec  int
}

// VecEmbeddings is the vector-level fortuitous-embedding index of one
// encoding: for every cube, every (seed, window position) whose vector
// matches it. It is independent of the segmentation (S) and the speedup
// (k), so parameter sweeps compute it once per encoding and reuse it.
type VecEmbeddings struct {
	PerCube [][]VecRef
}

// ScanEmbeddings regenerates every window and records, for every cube, all
// vectors that embed it. The scan parallelises over seeds.
func ScanEmbeddings(enc *encoder.Encoding) *VecEmbeddings {
	return scanEmbeddingsWorkers(enc, 0)
}

// ScanEmbeddingsWorkers is ScanEmbeddings with an explicit bound on the
// per-seed scan parallelism (0 = GOMAXPROCS), for callers that already run
// several scans concurrently.
func ScanEmbeddingsWorkers(enc *encoder.Encoding, workers int) *VecEmbeddings {
	return scanEmbeddingsWorkers(enc, workers)
}

func scanEmbeddingsWorkers(enc *encoder.Encoding, workers int) *VecEmbeddings {
	nCubes := enc.Set.Len()
	perSeed := make([][][]int, len(enc.Seeds)) // [seed][cube] = vector indices
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(enc.Seeds) {
		workers = len(enc.Seeds)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One persistent window buffer per worker: the scan regenerates
			// every seed's full window, so buffer reuse removes L vector
			// allocations per seed. Results are index-addressed, hence
			// identical for any worker count.
			window := make([]gf2.Vec, enc.Cfg.WindowLen)
			for {
				si := int(next.Add(1)) - 1
				if si >= len(enc.Seeds) {
					return
				}
				encoder.GenerateWindowInto(window, enc.Cfg.LFSR, enc.Cfg.PS, enc.Cfg.Geo, enc.Seeds[si].Value, enc.Cfg.WindowLen)
				found := make([][]int, nCubes)
				for v, vec := range window {
					for ci := 0; ci < nCubes; ci++ {
						if enc.Set.Cubes[ci].Matches(vec) {
							found[ci] = append(found[ci], v)
						}
					}
				}
				perSeed[si] = found
			}
		}()
	}
	wg.Wait()
	idx := &VecEmbeddings{PerCube: make([][]VecRef, nCubes)}
	for si := range perSeed {
		for ci, vecs := range perSeed[si] {
			for _, v := range vecs {
				idx.PerCube[ci] = append(idx.PerCube[ci], VecRef{Seed: si, Vec: v})
			}
		}
	}
	return idx
}

// Reduce analyses fortuitous embeddings and selects useful segments per the
// paper's algorithm: segments holding single-option cubes (set A) first,
// then a greedy cover for the multi-option cubes (set B).
func Reduce(enc *encoder.Encoding, opt Options) (*Reduction, error) {
	return ReduceWithIndex(enc, nil, opt)
}

// ReduceWithIndex is Reduce with a precomputed vector-level embedding index
// (pass nil to scan internally). Sharing one index across an (S, k) sweep
// avoids rescanning seeds × L vectors × cubes for every combination.
func ReduceWithIndex(enc *encoder.Encoding, idx *VecEmbeddings, opt Options) (*Reduction, error) {
	L := enc.Cfg.WindowLen
	if opt.SegmentSize < 1 || opt.SegmentSize > L {
		return nil, fmt.Errorf("stateskip: segment size %d outside [1,%d]", opt.SegmentSize, L)
	}
	if opt.Speedup < 1 {
		return nil, fmt.Errorf("stateskip: speedup factor %d must be ≥ 1", opt.Speedup)
	}
	r := &Reduction{
		Enc:  enc,
		Opt:  opt,
		Segs: (L + opt.SegmentSize - 1) / opt.SegmentSize,
	}
	r.Useful = make([][]bool, len(enc.Seeds))
	for i := range r.Useful {
		r.Useful[i] = make([]bool, r.Segs)
	}
	if opt.NaiveSelection {
		r.selectNaive()
	} else {
		if idx == nil {
			idx = scanEmbeddingsWorkers(enc, opt.Workers)
		}
		r.segmentEmbeddings(idx)
		r.selectUseful()
	}
	r.groupSeeds()
	return r, nil
}

// selectNaive marks exactly the segments holding deliberate encoder
// assignments as useful. No window regeneration, no fortuitous embeddings,
// no covering optimisation — the quality floor the §3.2 procedure is
// measured against.
func (r *Reduction) selectNaive() {
	S := r.Opt.SegmentSize
	nCubes := r.Enc.Set.Len()
	r.Embeddings = make([][]SegRef, nCubes)
	r.CoveredBy = make([]SegRef, nCubes)
	for i := range r.CoveredBy {
		r.CoveredBy[i] = SegRef{Seed: -1, Segment: -1}
	}
	if r.Opt.KeepFirstSegment {
		for si := range r.Useful {
			r.Useful[si][0] = true
		}
	}
	for si, seed := range r.Enc.Seeds {
		for _, a := range seed.Assignments {
			ref := SegRef{Seed: si, Segment: a.Pos / S}
			r.Useful[ref.Seed][ref.Segment] = true
			r.Embeddings[a.Cube] = append(r.Embeddings[a.Cube], ref)
			r.CoveredBy[a.Cube] = ref
		}
	}
}

// segmentEmbeddings folds the vector-level index into per-segment
// embeddings under the current segment size.
func (r *Reduction) segmentEmbeddings(idx *VecEmbeddings) {
	S := r.Opt.SegmentSize
	r.Embeddings = make([][]SegRef, len(idx.PerCube))
	for ci, refs := range idx.PerCube {
		last := SegRef{Seed: -1, Segment: -1}
		for _, ref := range refs {
			sr := SegRef{Seed: ref.Seed, Segment: ref.Vec / S}
			if sr != last {
				r.Embeddings[ci] = append(r.Embeddings[ci], sr)
				last = sr
			}
		}
	}
}

// selectUseful implements §3.2: first-segment pinning (optional), set A
// (cubes with a single embedding), then the greedy cover over set B.
func (r *Reduction) selectUseful() {
	nCubes := len(r.Embeddings)
	covered := make([]bool, nCubes)
	r.CoveredBy = make([]SegRef, nCubes)
	for i := range r.CoveredBy {
		r.CoveredBy[i] = SegRef{Seed: -1, Segment: -1}
	}
	mark := func(ref SegRef) {
		r.Useful[ref.Seed][ref.Segment] = true
	}
	coverAllIn := func(ref SegRef) {
		for ci := 0; ci < nCubes; ci++ {
			if covered[ci] {
				continue
			}
			for _, e := range r.Embeddings[ci] {
				if e == ref {
					covered[ci] = true
					r.CoveredBy[ci] = ref
					break
				}
			}
		}
	}

	if r.Opt.KeepFirstSegment {
		for si := range r.Useful {
			ref := SegRef{Seed: si, Segment: 0}
			mark(ref)
			coverAllIn(ref)
		}
	}

	// Set A: cubes embedded in exactly one segment anywhere. Their segment
	// is forced useful.
	for ci := 0; ci < nCubes; ci++ {
		if covered[ci] || len(r.Embeddings[ci]) != 1 {
			continue
		}
		ref := r.Embeddings[ci][0]
		mark(ref)
		coverAllIn(ref)
	}

	// Set B: greedy cover. Repeatedly pick the segment embedding the most
	// remaining cubes; ties go to the segment closest to the beginning of
	// its window, then to the earliest seed.
	type segKey = SegRef
	for {
		counts := make(map[segKey]int)
		for ci := 0; ci < nCubes; ci++ {
			if covered[ci] {
				continue
			}
			for _, e := range r.Embeddings[ci] {
				counts[e]++
			}
		}
		if len(counts) == 0 {
			break
		}
		var best segKey
		bestCount := -1
		for ref, c := range counts {
			if c > bestCount ||
				(c == bestCount && ref.Segment < best.Segment) ||
				(c == bestCount && ref.Segment == best.Segment && ref.Seed < best.Seed) {
				best = ref
				bestCount = c
			}
		}
		mark(best)
		coverAllIn(best)
	}
}

// groupSeeds orders seeds by ascending useful-segment count (§3.3's seed
// groups). Within a group, original seed order is kept.
func (r *Reduction) groupSeeds() {
	r.GroupOrder = make([]int, len(r.Useful))
	for i := range r.GroupOrder {
		r.GroupOrder[i] = i
	}
	sort.SliceStable(r.GroupOrder, func(a, b int) bool {
		return r.UsefulCount(r.GroupOrder[a]) < r.UsefulCount(r.GroupOrder[b])
	})
}

// UsefulCount returns the number of useful segments of one seed.
func (r *Reduction) UsefulCount(seed int) int {
	n := 0
	for _, u := range r.Useful[seed] {
		if u {
			n++
		}
	}
	return n
}

// TotalUseful returns the number of useful segments over all seeds.
func (r *Reduction) TotalUseful() int {
	n := 0
	for si := range r.Useful {
		n += r.UsefulCount(si)
	}
	return n
}

// segLen returns the vector count of one segment (the last segment of a
// window may be shorter when S does not divide L).
func (r *Reduction) segLen(seg int) int {
	L, S := r.Enc.Cfg.WindowLen, r.Opt.SegmentSize
	if (seg+1)*S <= L {
		return S
	}
	return L - seg*S
}

// lastUseful returns the index of a seed's last useful segment, or -1.
func (r *Reduction) lastUseful(seed int) int {
	for seg := r.Segs - 1; seg >= 0; seg-- {
		if r.Useful[seed][seg] {
			return seg
		}
	}
	return -1
}

// Run is a maximal block of consecutive same-mode segments within one
// seed's window, ending at the last useful segment (§3.3's early
// termination).
type Run struct {
	Useful   bool
	FirstSeg int
	LastSeg  int
	States   int // LFSR states the run spans (= segment vectors × r)
	Clocks   int // shift clocks the decompressor spends on the run
	Vectors  int // test vectors applied while traversing the run
}

// Runs decomposes one seed's shortened window into mode runs.
//
// Useful runs execute in Normal mode: one clock per state, one vector per
// r clocks, exactly framed like the original window. A useless run of
// `States` states is traversed with floor(States/k) State Skip clocks plus
// States mod k Normal clocks, so the register lands *exactly* on the next
// useful segment's boundary regardless of divisibility.
// The Bit Counter resets at every mode switch, so the garbage vectors of a
// useless run amount to ceil(Clocks/r) — this is why the paper's Fig. 4
// improvements keep growing all the way to k=24: long useless runs keep
// collapsing as k rises, instead of flooring at one vector per segment.
func (r *Reduction) Runs(seed int) []Run {
	last := r.lastUseful(seed)
	rlen := r.Enc.Cfg.Geo.Length
	k := r.Opt.Speedup
	var runs []Run
	for seg := 0; seg <= last; {
		useful := r.Useful[seed][seg]
		run := Run{Useful: useful, FirstSeg: seg, LastSeg: seg}
		states := r.segLen(seg) * rlen
		for seg++; seg <= last && r.Useful[seed][seg] == useful; seg++ {
			run.LastSeg = seg
			states += r.segLen(seg) * rlen
		}
		run.States = states
		if useful {
			run.Clocks = states
			run.Vectors = states / rlen
		} else {
			run.Clocks = states/k + states%k
			run.Vectors = (run.Clocks + rlen - 1) / rlen
		}
		runs = append(runs, run)
	}
	return runs
}

// SeedClocks returns the number of shift clocks the decompressor spends on
// one seed's window. Everything after the last useful segment is never
// generated (the per-group early termination of §3.3).
func (r *Reduction) SeedClocks(seed int) int {
	clocks := 0
	for _, run := range r.Runs(seed) {
		clocks += run.Clocks
	}
	return clocks
}

// SeedTSL returns the number of test vectors one seed's shortened window
// applies to the CUT. Scan shifting continues during skip mode, so useless
// runs still apply (far fewer, garbage) vectors that count toward TSL,
// exactly as in the paper.
func (r *Reduction) SeedTSL(seed int) int {
	vectors := 0
	for _, run := range r.Runs(seed) {
		vectors += run.Vectors
	}
	return vectors
}

// TSL returns the total shortened test sequence length in vectors.
func (r *Reduction) TSL() int {
	total := 0
	for si := range r.Useful {
		total += r.SeedTSL(si)
	}
	return total
}

// Improvement returns the paper's equation (2): the fractional TSL
// reduction relative to the original window-based scheme (full windows).
func (r *Reduction) Improvement() float64 {
	orig := r.Enc.TSL()
	if orig == 0 {
		return 0
	}
	return 1 - float64(r.TSL())/float64(orig)
}

// Verify checks the reduction's coverage invariant: every cube is embedded
// in at least one useful segment, and every chosen cover is really one of
// the cube's embeddings.
func (r *Reduction) Verify() error {
	for ci, ref := range r.CoveredBy {
		if ref.Seed < 0 {
			return fmt.Errorf("stateskip: cube %d not covered by any useful segment", ci)
		}
		if !r.Useful[ref.Seed][ref.Segment] {
			return fmt.Errorf("stateskip: cube %d covered by segment (%d,%d) that is not useful", ci, ref.Seed, ref.Segment)
		}
		found := false
		for _, e := range r.Embeddings[ci] {
			if e == ref {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("stateskip: cube %d cover (%d,%d) is not an embedding", ci, ref.Seed, ref.Segment)
		}
	}
	return nil
}

// AppliedVectors regenerates, for verification, the exact vector stream the
// shortened schedule applies: for every seed in group order, the vectors of
// segments up to the last useful one, with useless segments reduced to the
// vectors their skip-mode clocks still shift in. The stream is what the
// decompressor simulator must reproduce bit-for-bit.
func (r *Reduction) AppliedVectors() []gf2.Vec {
	var out []gf2.Vec
	for _, si := range r.GroupOrder {
		out = append(out, r.seedApplied(si)...)
	}
	return out
}

// seedApplied simulates one seed's shortened window at clock accuracy.
func (r *Reduction) seedApplied(seed int) []gf2.Vec {
	enc := r.Enc
	geo := enc.Cfg.Geo
	l, ps := enc.Cfg.LFSR, enc.Cfg.PS
	k := r.Opt.Speedup
	skip := l.SkipMatrix(uint64(k))

	state := enc.Seeds[seed].Value.Clone()
	next := gf2.NewVec(l.Size())
	var vecs []gf2.Vec
	cur := gf2.NewVec(geo.Width)
	fill := 0 // Bit Counter: shift clocks since the last segment boundary

	shiftClock := func() {
		cyc := fill % geo.Length
		for ch := 0; ch < geo.Chains; ch++ {
			pos := geo.CellAtCycle(ch, cyc)
			if pos < 0 {
				continue
			}
			var b uint8
			for _, c := range ps.Taps(ch) {
				b ^= state.Bit(c)
			}
			cur.SetBit(pos, b)
		}
		fill++
		if fill%geo.Length == 0 {
			vecs = append(vecs, cur.Clone())
		}
	}

	for _, run := range r.Runs(seed) {
		// The Bit Counter restarts at each mode switch so useful runs are
		// framed exactly like the original window. Any partial garbage
		// vector left by a useless run is captured once before the reset
		// (the hardware's capture-on-mode-switch).
		if fill%geo.Length != 0 {
			vecs = append(vecs, cur.Clone())
		}
		fill = 0
		if run.Useful {
			for c := 0; c < run.States; c++ {
				shiftClock()
				l.StepInto(next, state)
				state, next = next, state
			}
		} else {
			for c := 0; c < run.States/k; c++ {
				shiftClock()
				state = skip.MulVec(state)
			}
			for c := 0; c < run.States%k; c++ {
				shiftClock()
				l.StepInto(next, state)
				state, next = next, state
			}
		}
	}
	if fill%geo.Length != 0 {
		vecs = append(vecs, cur.Clone())
	}
	return vecs
}
