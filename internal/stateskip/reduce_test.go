package stateskip

import (
	"testing"

	"repro/internal/benchprofile"
	"repro/internal/encoder"
)

func encodeProfile(t testing.TB, name string, numCubes, L int) *encoder.Encoding {
	t.Helper()
	p, err := benchprofile.ByName(name, benchprofile.ScaleCI)
	if err != nil {
		t.Fatal(err)
	}
	if numCubes > 0 {
		p.NumCubes = numCubes
	}
	set := p.Generate()
	enc, _, err := encoder.EncodeAuto(p.LFSRSize, p.Width, p.Chains, L, set)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestReduceBasicInvariants(t *testing.T) {
	enc := encodeProfile(t, "s13207", 50, 20)
	red, err := Reduce(enc, DefaultOptions(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	if red.Segs != 4 {
		t.Errorf("Segs = %d, want 4", red.Segs)
	}
	if red.TSL() > enc.TSL() {
		t.Errorf("shortened TSL %d exceeds original %d", red.TSL(), enc.TSL())
	}
	if red.TSL() <= 0 {
		t.Errorf("TSL = %d", red.TSL())
	}
	imp := red.Improvement()
	if imp < 0 || imp >= 1 {
		t.Errorf("improvement %f out of range", imp)
	}
}

// TestEveryCubeAppliedInShortenedSequence is the paper's central claim:
// the shortened schedule still applies every test cube. It regenerates the
// exact applied vector stream (normal + skip mode, bit-counter resets,
// early termination) and checks each cube matches at least one vector.
func TestEveryCubeAppliedInShortenedSequence(t *testing.T) {
	for _, cfg := range []struct {
		name string
		S, k int
		L    int
	}{
		{"s13207", 5, 8, 20},
		{"s13207", 4, 3, 20},
		{"s9234", 2, 24, 16},
		{"s15850", 10, 12, 20}, // S=10 with L=20: coarse segmentation
		{"s9234", 7, 5, 16},    // S does not divide L
	} {
		t.Run(cfg.name, func(t *testing.T) {
			enc := encodeProfile(t, cfg.name, 40, cfg.L)
			red, err := Reduce(enc, DefaultOptions(cfg.S, cfg.k))
			if err != nil {
				t.Fatal(err)
			}
			if err := red.Verify(); err != nil {
				t.Fatal(err)
			}
			applied := red.AppliedVectors()
			if len(applied) != red.TSL() {
				t.Errorf("AppliedVectors length %d != TSL %d", len(applied), red.TSL())
			}
			for ci, c := range enc.Set.Cubes {
				found := false
				for _, v := range applied {
					if c.Matches(v) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("cube %d is not applied by the shortened sequence", ci)
				}
			}
		})
	}
}

func TestKeepFirstSegment(t *testing.T) {
	enc := encodeProfile(t, "s9234", 40, 16)
	red, err := Reduce(enc, DefaultOptions(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	for si := range red.Useful {
		if !red.Useful[si][0] {
			t.Errorf("seed %d: first segment not useful despite KeepFirstSegment", si)
		}
	}
	// Without pinning, coverage must still hold.
	opt := Options{SegmentSize: 4, Speedup: 8}
	red2, err := Reduce(enc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := red2.Verify(); err != nil {
		t.Fatal(err)
	}
	if red2.TotalUseful() > red.TotalUseful() {
		t.Errorf("dropping the first-segment pin increased useful segments: %d > %d", red2.TotalUseful(), red.TotalUseful())
	}
}

func TestSpeedupShortensSequence(t *testing.T) {
	enc := encodeProfile(t, "s13207", 60, 20)
	base, err := Reduce(enc, DefaultOptions(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Reduce(enc, DefaultOptions(5, 12))
	if err != nil {
		t.Fatal(err)
	}
	if fast.TSL() >= base.TSL() {
		t.Errorf("k=12 TSL %d not shorter than k=1 TSL %d", fast.TSL(), base.TSL())
	}
	// With k=1 skip mode degenerates to normal mode: the only saving is
	// early termination after the last useful segment.
	for si := range base.Useful {
		if got := base.SeedClocks(si); got > enc.Cfg.WindowLen*enc.Cfg.Geo.Length {
			t.Errorf("seed %d: k=1 clocks %d exceed full window", si, got)
		}
	}
}

func TestGroupOrderSorted(t *testing.T) {
	enc := encodeProfile(t, "s15850", 50, 20)
	red, err := Reduce(enc, DefaultOptions(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(red.GroupOrder); i++ {
		if red.UsefulCount(red.GroupOrder[i-1]) > red.UsefulCount(red.GroupOrder[i]) {
			t.Fatalf("group order not ascending at %d", i)
		}
	}
	seen := make(map[int]bool)
	for _, si := range red.GroupOrder {
		if seen[si] {
			t.Fatalf("seed %d appears twice in group order", si)
		}
		seen[si] = true
	}
	if len(seen) != len(enc.Seeds) {
		t.Fatalf("group order covers %d of %d seeds", len(seen), len(enc.Seeds))
	}
}

func TestReduceDeterministic(t *testing.T) {
	enc := encodeProfile(t, "s9234", 40, 16)
	a, err := Reduce(enc, DefaultOptions(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reduce(enc, DefaultOptions(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.TSL() != b.TSL() || a.TotalUseful() != b.TotalUseful() {
		t.Fatal("Reduce not deterministic")
	}
	for si := range a.Useful {
		for seg := range a.Useful[si] {
			if a.Useful[si][seg] != b.Useful[si][seg] {
				t.Fatalf("useful map differs at (%d,%d)", si, seg)
			}
		}
	}
}

func TestReduceRejectsBadOptions(t *testing.T) {
	enc := encodeProfile(t, "s9234", 10, 8)
	if _, err := Reduce(enc, DefaultOptions(0, 4)); err == nil {
		t.Error("S=0 accepted")
	}
	if _, err := Reduce(enc, DefaultOptions(9, 4)); err == nil {
		t.Error("S>L accepted")
	}
	if _, err := Reduce(enc, DefaultOptions(4, 0)); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSegmentAccounting(t *testing.T) {
	enc := encodeProfile(t, "s13207", 30, 20)
	red, err := Reduce(enc, DefaultOptions(6, 4)) // L=20, S=6 → segs 6,6,6,2
	if err != nil {
		t.Fatal(err)
	}
	if red.Segs != 4 {
		t.Fatalf("Segs = %d, want 4", red.Segs)
	}
	if red.segLen(0) != 6 || red.segLen(3) != 2 {
		t.Errorf("segment lengths %d,%d want 6,2", red.segLen(0), red.segLen(3))
	}
	rlen := enc.Cfg.Geo.Length
	for si := range red.Useful {
		// Per-seed TSL must equal the simulated applied stream length.
		if got, want := len(red.seedApplied(si)), red.SeedTSL(si); got != want {
			t.Errorf("seed %d: simulated %d vectors, accounted %d", si, got, want)
		}
		// Runs partition the window up to the last useful segment, useful
		// runs cost exactly their states in clocks, useless runs less.
		prevEnd := -1
		for _, run := range red.Runs(si) {
			if run.FirstSeg != prevEnd+1 {
				t.Fatalf("seed %d: run starts at %d after %d", si, run.FirstSeg, prevEnd)
			}
			prevEnd = run.LastSeg
			states := 0
			for seg := run.FirstSeg; seg <= run.LastSeg; seg++ {
				if red.Useful[si][seg] != run.Useful {
					t.Fatalf("seed %d: run [%d,%d] mixes modes", si, run.FirstSeg, run.LastSeg)
				}
				states += red.segLen(seg) * rlen
			}
			if states != run.States {
				t.Errorf("seed %d: run states %d, want %d", si, run.States, states)
			}
			if run.Useful && run.Clocks != run.States {
				t.Errorf("useful run clocks %d != states %d", run.Clocks, run.States)
			}
			if !run.Useful && red.Opt.Speedup > 1 && run.Clocks >= run.States {
				t.Errorf("useless run not shortened: %d clocks for %d states", run.Clocks, run.States)
			}
		}
	}
}

func TestFortuitousEmbeddingsFound(t *testing.T) {
	// Sparse cubes should be embedded in more than one segment somewhere —
	// that is the property §3.2's set B exploits. With CI-scale windows this
	// must occur for at least one cube.
	enc := encodeProfile(t, "s38584", 60, 24) // sparsest profile
	red, err := Reduce(enc, DefaultOptions(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, embs := range red.Embeddings {
		if len(embs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no cube has multiple embeddings; fortuitous-embedding scan looks broken")
	}
}

func TestNaiveSelectionAblation(t *testing.T) {
	// The paper's §3.2 selection (fortuitous embeddings + greedy cover)
	// must never be worse than naive assignment-based labelling, and the
	// naive variant must still apply every cube.
	enc := encodeProfile(t, "s38584", 60, 24)
	smart, err := Reduce(enc, DefaultOptions(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	naiveOpt := DefaultOptions(4, 8)
	naiveOpt.NaiveSelection = true
	naive, err := Reduce(enc, naiveOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.Verify(); err != nil {
		t.Fatal(err)
	}
	if smart.TotalUseful() > naive.TotalUseful() {
		t.Errorf("smart selection uses more useful segments (%d) than naive (%d)", smart.TotalUseful(), naive.TotalUseful())
	}
	if smart.TSL() > naive.TSL() {
		t.Errorf("smart TSL %d worse than naive %d", smart.TSL(), naive.TSL())
	}
	applied := naive.AppliedVectors()
	for ci, c := range enc.Set.Cubes {
		found := false
		for _, v := range applied {
			if c.Matches(v) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("naive selection: cube %d not applied", ci)
		}
	}
}
