package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/journal"
)

// crashConfig is the journal-enabled base config for crash tests. NoSync
// keeps fsync out of the hot loops; the crash simulation severs the
// journal at the Go API layer, so durability of the OS page cache is not
// what these tests probe.
func crashConfig(dir string) Config {
	return Config{
		JobWorkers:     2,
		JournalDir:     dir,
		JournalOptions: journal.Options{NoSync: true},
	}
}

// crash simulates a SIGKILL for an in-process server: sever the journal
// first (nothing more reaches disk, exactly as when the process dies),
// then tear the server down without a clean drain.
func crash(s *Server) {
	s.Journal().Close() //nolint:errcheck
	s.Close()
}

// TestJournalServerRecovery is the in-process kill storm: submit a storm
// of keyed jobs, crash mid-storm, restart on the same journal, resubmit
// every key, and require every acknowledged job to reach a terminal
// state exactly once — no duplicates, no losses.
func TestJournalServerRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := crashConfig(dir)
	// Slow attempts down so a healthy slice of the storm is still in
	// flight at crash time.
	cfg.Hook = func(ctx context.Context, id string, stage Stage) error {
		if stage == StageAttempt {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(20 * time.Millisecond):
			}
		}
		return nil
	}
	s := newTest(t, cfg)

	const storm = 12
	reqFor := func(i int) Request {
		return Request{
			Kind: KindCoverage, Inputs: 12, Outputs: 4, Gates: 40,
			Patterns: 32, Seed: uint64(i + 1),
			IdempotencyKey: fmt.Sprintf("storm-%02d", i),
		}
	}
	ids := make(map[string]string, storm) // key → acked job ID
	for i := 0; i < storm; i++ {
		st, err := s.Submit(reqFor(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[reqFor(i).IdempotencyKey] = st.ID
	}
	time.Sleep(50 * time.Millisecond) // let a few finish, leave the rest in flight
	crash(s)

	s2 := newTest(t, crashConfig(dir))
	defer s2.Close()
	if got := s2.MetricsSnapshot().Journal.Replayed; got < 1 {
		t.Fatalf("expected interrupted jobs to be replayed, metric says %d", got)
	}
	// A client that lost its 202 retries with the same key: every retry
	// must dedup onto the recovered job, never fork a duplicate.
	for i := 0; i < storm; i++ {
		req := reqFor(i)
		st, err := s2.Submit(req)
		if err != nil {
			t.Fatalf("resubmit %s: %v", req.IdempotencyKey, err)
		}
		if !st.Deduped {
			t.Fatalf("resubmit %s created a new job %s instead of deduping", req.IdempotencyKey, st.ID)
		}
		if st.ID != ids[req.IdempotencyKey] {
			t.Fatalf("key %s resolved to %s before the crash and %s after", req.IdempotencyKey, ids[req.IdempotencyKey], st.ID)
		}
	}
	for _, id := range ids {
		st := waitState(t, s2, id, StateDone)
		if st.State != StateDone {
			t.Fatalf("job %s recovered into %s", id, st.State)
		}
	}
	if jobs := s2.Jobs(); len(jobs) != storm {
		t.Fatalf("recovered server has %d jobs, want exactly %d", len(jobs), storm)
	}
}

// TestCheckpointResumeServerBitIdentical crashes an ATPG job between
// checkpoints and requires the resumed run's result to be bit-identical
// to an uninterrupted reference — the end-to-end form of the engine-level
// guarantee in internal/atpg.
func TestCheckpointResumeServerBitIdentical(t *testing.T) {
	req := Request{Kind: KindATPG, Inputs: 60, Outputs: 16, Gates: 900, Seed: 11, Backtrack: 50, IdempotencyKey: "atpg-resume"}

	ref := newTest(t, Config{JobWorkers: 1})
	rst, err := ref.Submit(req)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	waitState(t, ref, rst.ID, StateDone)
	refRes, _, err := ref.Result(rst.ID)
	if err != nil || refRes == nil || refRes.ATPG == nil {
		t.Fatalf("reference result: %+v, %v", refRes, err)
	}
	ref.Close()

	dir := t.TempDir()
	cfg := crashConfig(dir)
	cfg.JobWorkers = 1
	cfg.CheckpointEvery = 2
	s := newTest(t, cfg)
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && s.MetricsSnapshot().Journal.Checkpoints < 2 {
		time.Sleep(time.Millisecond)
	}
	if n := s.MetricsSnapshot().Journal.Checkpoints; n < 2 {
		t.Fatalf("only %d checkpoints before deadline", n)
	}
	if cur, err := s.Status(st.ID); err != nil || cur.State.Terminal() {
		t.Fatalf("job already terminal (%+v, %v) — enlarge the core so the crash lands mid-run", cur, err)
	}
	crash(s)

	cfg2 := crashConfig(dir)
	cfg2.JobWorkers = 1
	s2 := newTest(t, cfg2)
	defer s2.Close()
	fin := waitState(t, s2, st.ID, StateDone)
	if !fin.Resumed {
		t.Fatalf("recovered job not marked resumed: %+v", fin)
	}
	if n := s2.MetricsSnapshot().Journal.Resumed; n < 1 {
		t.Fatalf("job did not resume from its checkpoint (resumed metric %d)", n)
	}
	got, _, err := s2.Result(st.ID)
	if err != nil || got == nil || got.ATPG == nil {
		t.Fatalf("recovered result: %+v, %v", got, err)
	}
	if !reflect.DeepEqual(got.ATPG, refRes.ATPG) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got %+v\nwant %+v", got.ATPG, refRes.ATPG)
	}
}

// TestReplayCanceledAndOrphanRecords pins the replay policy edge cases:
// a canceled job (acked or not) stays terminal and is never re-run, and
// a non-terminal job with no durable OpSubmitted — the client never got
// its 202 — is dropped entirely.
func TestReplayCanceledAndOrphanRecords(t *testing.T) {
	dir := t.TempDir()
	jn, recs, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	sub := func(seq uint64, key string) []byte {
		b, err := json.Marshal(submittedRec{
			Seq: seq, Key: key, Submitted: now,
			Req: Request{Kind: KindCoverage, Inputs: 8, Outputs: 2, Gates: 20, Patterns: 8, Seed: 1, IdempotencyKey: key},
		})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	canceled, err := json.Marshal(terminalRec{State: StateCanceled, Error: "server: job canceled: canceled while queued", Finished: now})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := jn.AppendSync(
		// j000001: started but never acked → must vanish on replay.
		journal.Record{Op: journal.OpStarted, ID: "j000001"},
		// j000002: acked, then canceled while queued → terminal, not re-run.
		journal.Record{Op: journal.OpSubmitted, ID: "j000002", Data: sub(2, "keep-canceled")},
		journal.Record{Op: journal.OpCanceled, ID: "j000002", Data: canceled},
		// j000003: canceled record without an ack (the cancel raced the
		// crash) → kept as terminal history, never resurrected.
		journal.Record{Op: journal.OpCanceled, ID: "j000003", Data: canceled},
	); err != nil {
		t.Fatalf("AppendSync: %v", err)
	}
	if err := jn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s := newTest(t, crashConfig(dir))
	defer s.Close()
	if _, err := s.Status("j000001"); err == nil {
		t.Fatalf("unacked job j000001 survived replay")
	}
	for _, id := range []string{"j000002", "j000003"} {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State != StateCanceled {
			t.Fatalf("%s replayed into %s, want canceled", id, st.State)
		}
	}
	if got := s.MetricsSnapshot().Journal.Replayed; got != 0 {
		t.Fatalf("replayed metric %d, want 0 (nothing should re-run)", got)
	}
	// Give the workers a beat: the canceled jobs must stay canceled.
	time.Sleep(30 * time.Millisecond)
	if st, _ := s.Status("j000002"); st.State != StateCanceled || st.Started != nil {
		t.Fatalf("canceled job was re-run: %+v", st)
	}
	// The canceled job's idempotency key still dedups.
	st, err := s.Submit(Request{Kind: KindCoverage, Inputs: 8, Outputs: 2, Gates: 20, Patterns: 8, Seed: 1, IdempotencyKey: "keep-canceled"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !st.Deduped || st.ID != "j000002" {
		t.Fatalf("key of canceled job forked a new job: %+v", st)
	}
}

// TestJournalSeverEveryBoundary replays a real workload's journal
// truncated at every record boundary: whatever prefix survived the crash,
// the server must come up, run what needs re-running, and drain cleanly
// with every job terminal — never an error, never a duplicate.
func TestJournalSeverEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	s := newTest(t, crashConfig(dir))
	small := Request{Kind: KindCoverage, Inputs: 10, Outputs: 3, Gates: 30, Patterns: 16, Seed: 3}
	var ids []string
	for i := 0; i < 3; i++ {
		req := small
		req.Seed = uint64(i + 1)
		st, err := s.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	// One failing job so terminal-failed records land in the stream too.
	bad := Request{Kind: KindATPG, Inputs: 10, Outputs: 3, Gates: 30, Backtrace: "bogus"}
	st, err := s.Submit(bad)
	if err != nil {
		t.Fatalf("submit bad: %v", err)
	}
	ids = append(ids, st.ID)
	for _, id := range ids {
		waitState(t, s, id, StateDone, StateFailed)
	}
	crash(s) // sever before Shutdown can compact: keep the raw record stream

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	bounds, err := journal.Boundaries(segs[0])
	if err != nil {
		t.Fatalf("Boundaries: %v", err)
	}
	if len(bounds) < 8 {
		t.Fatalf("suspiciously few record boundaries: %v", bounds)
	}
	known := make(map[string]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	for _, cut := range bounds {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: WriteFile: %v", cut, err)
		}
		s2, err := New(crashConfig(sub))
		if err != nil {
			t.Fatalf("cut %d: New: %v", cut, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s2.Shutdown(ctx); err != nil {
			cancel()
			t.Fatalf("cut %d: drain: %v", cut, err)
		}
		cancel()
		for _, jst := range s2.Jobs() {
			if !known[jst.ID] {
				t.Fatalf("cut %d: replay invented job %s", cut, jst.ID)
			}
			if !jst.State.Terminal() {
				t.Fatalf("cut %d: job %s drained non-terminal (%s)", cut, jst.ID, jst.State)
			}
		}
	}
}

// TestJournalSubmitFailureReturnsErrJournal: when durability fails at
// submit time the client gets the typed 500 sentinel, but the daemon
// keeps serving and the job still runs.
func TestJournalSubmitFailureReturnsErrJournal(t *testing.T) {
	dir := t.TempDir()
	s := newTest(t, crashConfig(dir))
	defer s.Close()
	s.Journal().Close() //nolint:errcheck // simulate a dead disk under a live server
	st, err := s.Submit(Request{Kind: KindCoverage, Inputs: 8, Outputs: 2, Gates: 20, Patterns: 8, Seed: 1})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("Submit with severed journal: err=%v, want ErrJournal", err)
	}
	if st == nil {
		t.Fatalf("ErrJournal must still return the in-memory status")
	}
	// The job was accepted in memory and must still complete.
	waitState(t, s, st.ID, StateDone)
}
