package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
)

// This file is the server's side of the durable job journal: the payload
// schemas written into journal.Record.Data, the replay that folds a
// record stream back into job state after a restart, and the live-record
// snapshot used for compaction. The journal package owns framing and
// durability; this file owns meaning.
//
// Replay is last-wins per job and tolerates records arriving slightly out
// of submission order (a worker's OpStarted can beat the submitter's
// OpSubmitted into the log — appends from different goroutines are not
// globally ordered by job lifecycle). A job whose OpSubmitted record
// never became durable was never acknowledged to a client: if it also has
// no terminal record it is dropped on replay, which is exactly the
// at-most-once contract a 202 promises.

// submittedRec is the OpSubmitted payload: everything needed to re-run
// the job after a crash.
type submittedRec struct {
	Seq       uint64    `json:"seq"`
	Key       string    `json:"key,omitempty"`
	Submitted time.Time `json:"submitted"`
	Req       Request   `json:"req"`
}

// attemptRec is the OpAttempt payload.
type attemptRec struct {
	Attempt int `json:"attempt"`
}

// terminalRec is the payload of OpDone / OpFailed / OpCanceled.
type terminalRec struct {
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
	Partial  bool      `json:"partial,omitempty"`
	Finished time.Time `json:"finished"`
	Result   *Result   `json:"result,omitempty"`
}

// replayJob accumulates one job's records during replay.
type replayJob struct {
	id        string
	seq       uint64
	key       string
	submitted time.Time
	hasSubmit bool
	req       Request
	attempts  int
	terminal  *terminalRec
	// checkpoint holds the latest OpCheckpoint payload (last wins).
	checkpoint []byte
}

// replayRecords folds a replayed record stream into per-job state,
// returned in seq order (orphans — jobs with no durable OpSubmitted —
// sort by first appearance after all known seqs). A record that fails to
// decode is corruption the CRC did not catch semantically; replay fails
// loudly rather than guessing.
func replayRecords(recs []journal.Record) ([]*replayJob, error) {
	byID := make(map[string]*replayJob)
	var order []string
	get := func(id string) *replayJob {
		j, ok := byID[id]
		if !ok {
			j = &replayJob{id: id}
			byID[id] = j
			order = append(order, id)
		}
		return j
	}
	for i, rec := range recs {
		j := get(rec.ID)
		switch rec.Op {
		case journal.OpSubmitted:
			var sr submittedRec
			if err := json.Unmarshal(rec.Data, &sr); err != nil {
				return nil, fmt.Errorf("server: journal record %d (%s %s): %w", i, rec.Op, rec.ID, err)
			}
			j.seq, j.key, j.submitted, j.req = sr.Seq, sr.Key, sr.Submitted, sr.Req
			j.hasSubmit = true
		case journal.OpStarted:
			// Advisory; attempts carry the information that matters.
		case journal.OpAttempt:
			var ar attemptRec
			if err := json.Unmarshal(rec.Data, &ar); err != nil {
				return nil, fmt.Errorf("server: journal record %d (%s %s): %w", i, rec.Op, rec.ID, err)
			}
			if ar.Attempt+1 > j.attempts {
				j.attempts = ar.Attempt + 1
			}
		case journal.OpCheckpoint:
			j.checkpoint = rec.Data
		case journal.OpDone, journal.OpFailed, journal.OpCanceled:
			var tr terminalRec
			if err := json.Unmarshal(rec.Data, &tr); err != nil {
				return nil, fmt.Errorf("server: journal record %d (%s %s): %w", i, rec.Op, rec.ID, err)
			}
			j.terminal = &tr
		default:
			return nil, fmt.Errorf("server: journal record %d: unknown op %s", i, rec.Op)
		}
	}
	jobs := make([]*replayJob, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, byID[id])
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	return jobs, nil
}

// journalSubmit makes a freshly accepted job durable. Submit returns 202
// only after this fsyncs, so an acknowledged job is guaranteed to survive
// a crash.
func (s *Server) journalSubmit(j *job) error {
	if s.journal == nil {
		return nil
	}
	data, err := json.Marshal(submittedRec{Seq: j.seq, Key: j.key, Submitted: j.submitted, Req: j.req})
	if err != nil {
		return err
	}
	return s.journal.AppendSync(journal.Record{Op: journal.OpSubmitted, ID: j.id, Data: data})
}

// journalAdvisory appends a non-critical lifecycle record (started /
// attempt). Loss in a crash is harmless — replay re-runs the job anyway —
// so these ride the buffered path and piggyback on the next fsync.
func (s *Server) journalAdvisory(op journal.Op, id string, data []byte) {
	if s.journal == nil {
		return
	}
	s.journal.Append(journal.Record{Op: op, ID: id, Data: data}) //nolint:errcheck // advisory: a failed append degrades recovery granularity, never correctness
}

// journalAttempt records the start of one run attempt (advisory).
func (s *Server) journalAttempt(id string, attempt int) {
	if s.journal == nil {
		return
	}
	data, err := json.Marshal(attemptRec{Attempt: attempt})
	if err != nil {
		return
	}
	s.journalAdvisory(journal.OpAttempt, id, data)
}

// journalTerminal makes a job's terminal state durable so a restart never
// re-runs a finished job.
func (s *Server) journalTerminal(j *job, state State, errText string, partial bool, finished time.Time, res *Result) {
	if s.journal == nil {
		return
	}
	var op journal.Op
	switch state {
	case StateDone:
		op = journal.OpDone
	case StateFailed:
		op = journal.OpFailed
	default:
		op = journal.OpCanceled
	}
	data, err := json.Marshal(terminalRec{State: state, Error: errText, Partial: partial, Finished: finished, Result: res})
	if err != nil {
		return
	}
	// A failed append here means the terminal state may replay as
	// interrupted after a crash and the job re-runs — deterministic
	// engines make that safe, so availability wins over failing the job.
	s.journal.AppendSync(journal.Record{Op: op, ID: j.id, Data: data}) //nolint:errcheck
}

// liveRecords snapshots the minimal record set that reproduces the
// current job table: one OpSubmitted per job, the terminal record for
// finished jobs, and the latest checkpoint for interrupted ones. Used by
// compaction at startup and after a clean drain — never concurrently with
// appends (see Journal.Compact).
func (s *Server) liveRecords() ([]journal.Record, error) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	type snap struct {
		sub  submittedRec
		term *terminalRec
		ckpt []byte
		id   string
	}
	snaps := make([]snap, 0, len(jobs))
	for _, j := range jobs {
		sn := snap{
			id:  j.id,
			sub: submittedRec{Seq: j.seq, Key: j.key, Submitted: j.submitted, Req: j.req},
		}
		if j.state.Terminal() {
			tr := &terminalRec{State: j.state, Partial: j.partial, Result: j.result}
			if j.err != nil {
				tr.Error = j.err.Error()
			}
			if j.finished != nil {
				tr.Finished = *j.finished
			}
			sn.term = tr
		} else {
			sn.ckpt = j.resumeCkpt
		}
		snaps = append(snaps, sn)
	}
	s.mu.Unlock()

	var recs []journal.Record
	for _, sn := range snaps {
		data, err := json.Marshal(sn.sub)
		if err != nil {
			return nil, err
		}
		recs = append(recs, journal.Record{Op: journal.OpSubmitted, ID: sn.id, Data: data})
		if sn.term != nil {
			tdata, err := json.Marshal(sn.term)
			if err != nil {
				return nil, err
			}
			op := journal.OpCanceled
			switch sn.term.State {
			case StateDone:
				op = journal.OpDone
			case StateFailed:
				op = journal.OpFailed
			}
			recs = append(recs, journal.Record{Op: op, ID: sn.id, Data: tdata})
		} else if len(sn.ckpt) > 0 {
			recs = append(recs, journal.Record{Op: journal.OpCheckpoint, ID: sn.id, Data: sn.ckpt})
		}
	}
	return recs, nil
}

// closeJournal compacts (when the drain was clean) and closes the
// journal, once.
func (s *Server) closeJournal(compact bool) {
	if s.journal == nil {
		return
	}
	s.journalOnce.Do(func() {
		if compact {
			if live, err := s.liveRecords(); err == nil {
				s.journal.Compact(live) //nolint:errcheck // best-effort: an uncompacted journal replays identically
			}
		}
		s.journal.Close() //nolint:errcheck // nothing actionable at shutdown
	})
}
