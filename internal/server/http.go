package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Metrics is the point-in-time snapshot served by GET /metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Queue         struct {
		Depth    int  `json:"depth"`
		Capacity int  `json:"capacity"`
		Draining bool `json:"draining"`
	} `json:"queue"`
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Rejected  int64 `json:"rejected"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Canceled  int64 `json:"canceled"`
		Retries   int64 `json:"retries"`
		Panics    int64 `json:"panics"`
	} `json:"jobs"`
	Session struct {
		SetBuilds       int64 `json:"set_builds"`
		EncodingBuilds  int64 `json:"encoding_builds"`
		IndexBuilds     int64 `json:"index_builds"`
		TableBuilds     int64 `json:"table_builds"`
		Hits            int64 `json:"hits"`
		Evictions       int64 `json:"evictions"`
		Cached          int   `json:"cached"`
		EncTableBuilds  int64 `json:"enc_table_builds"`
		EncTableCached  int   `json:"enc_table_cached"`
		SetBuildNS      int64 `json:"set_build_ns"`
		EncodingBuildNS int64 `json:"encoding_build_ns"`
		IndexBuildNS    int64 `json:"index_build_ns"`
		TableBuildNS    int64 `json:"table_build_ns"`
	} `json:"session"`
	Cores struct {
		Cached    int `json:"cached"`
		Evictions int `json:"evictions"`
	} `json:"cores"`
	Journal struct {
		Enabled bool `json:"enabled"`
		// Depth is the number of records appended since the last
		// compaction — a proxy for replay cost at next startup.
		Depth int `json:"depth"`
		// Replayed counts jobs re-enqueued from the journal at startup.
		Replayed int64 `json:"replayed_jobs"`
		// Checkpoints counts ATPG checkpoints durably recorded.
		Checkpoints int64 `json:"checkpoints"`
		// Resumed counts ATPG attempts that continued from a checkpoint.
		Resumed int64 `json:"resumed"`
	} `json:"journal"`
	// Shed counts requests refused to protect the daemon: oversized
	// bodies (413), full-queue, draining and not-ready rejections.
	Shed int64 `json:"shed_requests"`
}

// MetricsSnapshot assembles the current metrics.
func (s *Server) MetricsSnapshot() Metrics {
	var m Metrics
	m.UptimeSeconds = s.now().Sub(s.started).Seconds()
	s.mu.Lock()
	m.Queue.Depth = len(s.queue)
	m.Queue.Capacity = cap(s.queue)
	m.Queue.Draining = s.draining
	m.Cores.Cached = s.cores.Len()
	m.Cores.Evictions = s.cores.Evictions()
	s.mu.Unlock()
	m.Jobs.Submitted = s.metrics.submitted.Load()
	m.Jobs.Rejected = s.metrics.rejected.Load()
	m.Jobs.Done = s.metrics.done.Load()
	m.Jobs.Failed = s.metrics.failed.Load()
	m.Jobs.Canceled = s.metrics.canceled.Load()
	m.Jobs.Retries = s.metrics.retries.Load()
	m.Jobs.Panics = s.metrics.panics.Load()
	st := s.session.Stats()
	m.Session.SetBuilds = st.SetBuilds
	m.Session.EncodingBuilds = st.EncodingBuilds
	m.Session.IndexBuilds = st.IndexBuilds
	m.Session.TableBuilds = st.TableBuilds
	m.Session.Hits = st.Hits
	m.Session.Evictions = st.Evictions
	m.Session.Cached = st.Cached
	m.Session.EncTableBuilds = s.session.EncTables.Builds()
	m.Session.EncTableCached = s.session.EncTables.Len()
	m.Session.SetBuildNS = st.SetBuildNS
	m.Session.EncodingBuildNS = st.EncodingBuildNS
	m.Session.IndexBuildNS = st.IndexBuildNS
	m.Session.TableBuildNS = st.TableBuildNS
	if s.journal != nil {
		m.Journal.Enabled = true
		m.Journal.Depth = s.journal.Depth()
		m.Journal.Replayed = s.metrics.replayed.Load()
		m.Journal.Checkpoints = s.metrics.checkpoints.Load()
		m.Journal.Resumed = s.metrics.resumed.Load()
	}
	m.Shed = s.metrics.shed.Load()
	return m
}

// httpError is the JSON error envelope of every non-2xx response.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hung up; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, httpError{Error: err.Error()})
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs           submit a job (Request JSON) → 202 Status
//	GET    /jobs           list all jobs, newest first
//	GET    /jobs/{id}      poll one job's Status
//	GET    /jobs/{id}/result  fetch a terminal job's Result (+Status)
//	DELETE /jobs/{id}      cancel a job
//	GET    /metrics        queue/job/cache/journal counters
//	GET    /healthz        liveness (always 200 while the process serves)
//	GET    /readyz         readiness (503 while replaying or draining)
//
// A full queue answers POST /jobs with 503 plus a Retry-After header
// derived from the backlog (queue depth over worker count, so a deeper
// queue advertises a longer wait). A draining server also answers 503 but
// sends no Retry-After at all: shutdown is not transient from this
// process's point of view, and a short retry hint would herd clients into
// hammering an endpoint that is going away — they should fail over
// instead. The error body distinguishes the two cases.
//
// Untrusted-input guards: request bodies are capped at
// Config.MaxBodyBytes (413 past it), netlists past the configured
// gate/input/level caps get 422, and structurally bad .bench text gets a
// 400 naming the offending line — all decided at admission, before any
// table build can amplify the input.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.shed.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("server: request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrNotReady):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDraining):
		// Deliberately no Retry-After: see Handler's doc comment.
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrOverCap):
		writeError(w, http.StatusUnprocessableEntity, err)
	case errors.Is(err, ErrJournal):
		// The job was accepted in memory but not made durable; the client
		// must treat the submission as unacknowledged and retry with the
		// same idempotency key.
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// retryAfterSeconds estimates how long a submitter rejected by a full
// queue should wait: one second of grace plus the backlog spread over the
// worker pool, capped so a pathological queue never advertises waits a
// client would interpret as "down".
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	depth := len(s.queue)
	s.mu.Unlock()
	secs := 1 + depth/s.cfg.JobWorkers
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultResponse pairs a job's status with its payload; Result is null
// until the job is terminal, and stays null for jobs canceled before
// producing partial progress.
type resultResponse struct {
	Status *Status `json:"status"`
	Result *Result `json:"result"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !st.State.Terminal() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, resultResponse{Status: st})
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{Status: st, Result: res})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// handleHealth is pure liveness: as long as the process can serve this
// request it answers 200, even while draining — restarting a daemon
// because it is shutting down cleanly would be counterproductive.
// Traffic-steering decisions belong to /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "uptime": time.Duration(s.MetricsSnapshot().UptimeSeconds * float64(time.Second)).String()})
}

// handleReady is readiness: 503 while the server is replaying its journal
// or draining, so load balancers shed traffic to peers during recovery
// and shutdown windows.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready := s.ready && !s.draining
	draining := s.draining
	s.mu.Unlock()
	if !ready {
		err := ErrNotReady
		if draining {
			err = ErrDraining
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
