package server

import (
	"context"
	"time"

	"repro/internal/prng"
)

// Sleeper abstracts the delay between retry attempts so tests can assert
// exact backoff schedules without wall-clock waits. Sleep returns early
// with the context error when ctx fires mid-sleep.
type Sleeper interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// realSleeper is the production Sleeper: a timer racing the context.
type realSleeper struct{}

func (realSleeper) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Backoff computes retry delays: exponential growth from Base by Factor,
// capped at Cap, with symmetric multiplicative jitter. Jitter draws from
// the deterministic SplitMix64 source the rest of the repository uses, so
// a seeded schedule is bit-reproducible — the backoff tests assert exact
// delay sequences.
type Backoff struct {
	// Base is the delay of attempt 0 (before jitter).
	Base time.Duration
	// Cap bounds the grown (pre-jitter) delay; 0 means no cap.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier; values < 1 (including
	// the zero value) are treated as 2.
	Factor float64
	// Jitter in [0, 1] spreads each delay uniformly over
	// [d·(1-Jitter), d·(1+Jitter)]; 0 disables jitter.
	Jitter float64
}

// Delay returns the backoff delay for the given zero-based attempt.
// rnd supplies the jitter draw; a nil rnd disables jitter.
func (b Backoff) Delay(attempt int, rnd *prng.Source) time.Duration {
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Cap > 0 && d >= float64(b.Cap) {
			d = float64(b.Cap)
			break
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 && rnd != nil {
		span := d * b.Jitter
		d = d - span + 2*span*rnd.Float64()
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
