package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/prng"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, nil); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffDefaultFactor(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond}
	if got := b.Delay(3, nil); got != 400*time.Millisecond {
		t.Fatalf("Delay(3) with default factor = %v, want 400ms", got)
	}
}

// TestBackoffJitterDeterministic pins the jittered schedule bit-exactly:
// same seed, same delays — the property the retry tests lean on.
func TestBackoffJitterDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5}
	a := prng.New(42)
	c := prng.New(42)
	for attempt := 0; attempt < 6; attempt++ {
		d1 := b.Delay(attempt, a)
		d2 := b.Delay(attempt, c)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v and %v", attempt, d1, d2)
		}
		// Jitter must stay inside [d·(1-J), d·(1+J)].
		base := b.Delay(attempt, nil)
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d1, lo, hi)
		}
	}
}

func TestRealSleeperHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	if err := (realSleeper{}).Sleep(ctx, 10*time.Second); err == nil {
		t.Fatal("Sleep with dead context returned nil")
	}
	if time.Since(t0) > time.Second {
		t.Fatal("Sleep did not return promptly on a dead context")
	}
}
