package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// guardServer runs a server with tight untrusted-input caps behind its
// real HTTP handler.
func guardServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := newTest(t, Config{
		JobWorkers:   1,
		MaxBodyBytes: 4096,
		MaxGates:     100,
		MaxInputs:    32,
		MaxLevels:    64,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

// chainBench builds a valid .bench netlist with the given number of
// chained NOT gates.
func chainBench(gates int) string {
	var b strings.Builder
	b.WriteString("INPUT(a)\n")
	fmt.Fprintf(&b, "OUTPUT(g%d)\n", gates-1)
	prev := "a"
	for i := 0; i < gates; i++ {
		fmt.Fprintf(&b, "g%d = NOT(%s)\n", i, prev)
		prev = fmt.Sprintf("g%d", i)
	}
	return b.String()
}

// TestGuardOversizedBody413: a body past MaxBodyBytes yields a typed 413
// and the daemon keeps serving.
func TestGuardOversizedBody413(t *testing.T) {
	s, ts := guardServer(t)
	big, err := json.Marshal(Request{Kind: KindATPG, Bench: strings.Repeat("# padding\n", 1024)})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJob(t, ts, string(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", resp.StatusCode, body)
	}
	var e httpError
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body is not the JSON error envelope: %s", body)
	}
	if s.MetricsSnapshot().Shed < 1 {
		t.Fatalf("413 did not count as a shed request")
	}
}

// TestGuardOverCap422 covers both cap paths: an inline netlist whose
// parsed summary exceeds the caps, and generator parameters that would.
func TestGuardOverCap422(t *testing.T) {
	_, ts := guardServer(t)
	cases := []struct {
		name string
		req  Request
	}{
		{"bench-gates", Request{Kind: KindATPG, Bench: chainBench(120)}},          // 120 gates > 100
		{"bench-levels", Request{Kind: KindATPG, Bench: chainBench(80)}},          // 80-deep chain > 64 levels
		{"generated-gates", Request{Kind: KindCoverage, Inputs: 8, Gates: 500}},   // parameters over cap
		{"generated-inputs", Request{Kind: KindCoverage, Inputs: 64, Gates: 500}}, // both over
	}
	for _, tc := range cases {
		body, err := json.Marshal(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		resp, rbody := postJob(t, ts, string(body))
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: %d %s, want 422", tc.name, resp.StatusCode, rbody)
		}
	}
}

// TestGuardMalformedBench400: structurally bad .bench text surfaces the
// typed parse errors as 400s naming the defect, decided at admission.
func TestGuardMalformedBench400(t *testing.T) {
	s, ts := guardServer(t)
	cases := []struct {
		name, bench, wantSub string
	}{
		{"undefined", "INPUT(a)\nOUTPUT(g)\ng = AND(a, ghost)\n", "undefined signal"},
		{"cycle", "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = OR(a, p)\n", "combinational cycle"},
		{"duplicate", "INPUT(a)\nINPUT(a)\n", "duplicate signal"},
	}
	for _, tc := range cases {
		body, err := json.Marshal(Request{Kind: KindATPG, Bench: tc.bench})
		if err != nil {
			t.Fatal(err)
		}
		resp, rbody := postJob(t, ts, string(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %s, want 400", tc.name, resp.StatusCode, rbody)
		}
		if !strings.Contains(string(rbody), tc.wantSub) {
			t.Fatalf("%s: error %s does not name %q", tc.name, rbody, tc.wantSub)
		}
	}
	// The typed sentinels are visible at the API layer too.
	_, err := s.Submit(Request{Kind: KindATPG, Bench: cases[0].bench})
	if !errors.Is(err, netlist.ErrUndefinedSignal) {
		t.Fatalf("Submit: %v, want ErrUndefinedSignal", err)
	}
	_, err = s.Submit(Request{Kind: KindATPG, Bench: chainBench(120)})
	if !errors.Is(err, ErrOverCap) {
		t.Fatalf("Submit over cap: %v, want ErrOverCap", err)
	}

	// After the whole gauntlet the daemon still serves real work.
	ok, err := json.Marshal(Request{Kind: KindATPG, Bench: chainBench(10)})
	if err != nil {
		t.Fatal(err)
	}
	resp, rbody := postJob(t, ts, string(ok))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid job after rejects: %d %s, want 202", resp.StatusCode, rbody)
	}
	var st Status
	if err := json.Unmarshal(rbody, &st); err != nil {
		t.Fatalf("202 body: %v", err)
	}
	waitState(t, s, st.ID, StateDone)
}

// TestHealthzAndReadyz splits liveness from readiness: /healthz stays 200
// even while draining; /readyz flips to 503.
func TestHealthzAndReadyz(t *testing.T) {
	s, ts := guardServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s before drain: %d, want 200", path, resp.StatusCode)
		}
	}
	s.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", resp.StatusCode)
	}
}
