// Chaos suite: injects panics, stalls and cancellations at job-stage
// boundaries through Config.Hook and asserts the server's containment
// story — a fault takes down only its own job, the workers survive, no
// goroutines leak, and every job still reports a correct terminal state.
// Run with -race; the fault windows are where the locking bugs live.
package server

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// assertNoGoroutineLeak waits for the goroutine count to return to the
// baseline captured before the test started its server.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosPanicIsolated panics one specific job's attempts and asserts
// only that job fails — with the panic stack captured into its error —
// while a healthy job on the same worker pool completes.
func TestChaosPanicIsolated(t *testing.T) {
	before := runtime.NumGoroutine()
	var victim atomic.Value
	victim.Store("")
	s := newTest(t, Config{
		JobWorkers: 2,
		MaxRetries: 1,
		Sleeper:    &recordSleeper{},
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage == StageAttempt && id == victim.Load().(string) {
				panic("chaos: injected panic")
			}
			return nil
		},
	})
	// Job IDs are a dense sequence, so the first submission is j000001;
	// publishing the target before submitting closes the race between the
	// worker's first hook call and the Store.
	victim.Store("j000001")
	doomed, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := s.Submit(Request{Kind: KindEncode, L: 6})
	if err != nil {
		t.Fatal(err)
	}

	hFinal := waitState(t, s, healthy.ID, StateDone, StateFailed)
	if hFinal.State != StateDone {
		t.Fatalf("healthy job failed: %s", hFinal.Error)
	}
	dFinal := waitState(t, s, doomed.ID, StateDone, StateFailed)
	if dFinal.State == StateDone {
		t.Fatalf("victim job %s completed; the panic hook never fired", doomed.ID)
	}
	if !strings.Contains(dFinal.Error, "panicked") || !strings.Contains(dFinal.Error, "chaos: injected panic") {
		t.Fatalf("panic not captured in job error: %s", dFinal.Error)
	}
	if !strings.Contains(dFinal.Error, "goroutine") {
		t.Fatalf("stack trace missing from job error: %s", dFinal.Error)
	}
	if dFinal.Attempts != 2 {
		t.Fatalf("panicking job attempts = %d, want 2 (retried once)", dFinal.Attempts)
	}
	if m := s.MetricsSnapshot(); m.Jobs.Panics < 2 {
		t.Fatalf("panics metric = %d, want ≥ 2", m.Jobs.Panics)
	}

	s.Close()
	assertNoGoroutineLeak(t, before)
}

// TestChaosStallHitsDeadline stalls attempts at the hook and relies on
// the per-job deadline to cut them loose with the typed error.
func TestChaosStallHitsDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTest(t, Config{
		JobWorkers:     1,
		DefaultTimeout: 50 * time.Millisecond,
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage != StageAttempt {
				return nil
			}
			<-ctx.Done() // stall: only the deadline can free this
			return ctx.Err()
		},
	})
	st, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateCanceled, StateDone, StateFailed)
	if final.State != StateCanceled {
		t.Fatalf("stalled job state = %s (%s), want canceled", final.State, final.Error)
	}
	if err := jobErr(s, st.ID); !errors.Is(err, ErrDeadline) {
		t.Fatalf("stalled job error %v, want ErrDeadline", err)
	}
	s.Close()
	assertNoGoroutineLeak(t, before)
}

// TestChaosCancelStorm races cancellations against a mixed workload and
// asserts every job reaches a terminal state, the server shuts down
// cleanly, and nothing leaks — the deadlock/leak regression net.
func TestChaosCancelStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTest(t, Config{JobWorkers: 4, QueueSize: 64, EngineWorkers: 2})
	var ids []string
	for i := 0; i < 12; i++ {
		req := Request{Kind: KindEncode, L: 4 + 2*(i%3)}
		if i%3 == 1 {
			// Small core: the storm exercises lifecycle races, not engine
			// throughput, and the suite runs under -race.
			req = Request{Kind: KindATPG, Gates: 120, Inputs: 40, Outputs: 24}
		}
		st, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Cancel every other job as fast as possible — some while queued,
	// some mid-run, some already done.
	for i, id := range ids {
		if i%2 == 0 {
			if _, err := s.Cancel(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		st := waitState(t, s, id, StateDone, StateFailed, StateCanceled)
		if st.State == StateFailed {
			t.Fatalf("job %s failed under cancel storm: %s", id, st.Error)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after storm: %v", err)
	}
	assertNoGoroutineLeak(t, before)
}

// TestChaosHookErrorExhaustsRetries fails every attempt and asserts the
// job lands in failed (not canceled, not hung) after MaxRetries+1 tries.
func TestChaosHookErrorExhaustsRetries(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTest(t, Config{
		JobWorkers: 1,
		MaxRetries: 2,
		Sleeper:    &recordSleeper{},
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage == StageAttempt {
				return errors.New("chaos: permanent failure")
			}
			return nil
		},
	})
	st, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone, StateFailed, StateCanceled)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", final.Attempts)
	}
	s.Close()
	assertNoGoroutineLeak(t, before)
}
