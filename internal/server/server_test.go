package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/prng"
)

// newTest constructs a Server, failing the test on a startup error
// (journal-less configs never produce one).
func newTest(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// waitState polls a job until it reaches one of the wanted states.
func waitState(t *testing.T, s *Server, id string, states ...State) *Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		for _, want := range states {
			if st.State == want {
				return st
			}
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := s.Status(id)
	t.Fatalf("job %s never reached %v; last status %+v", id, states, st)
	return nil
}

// jobErr reads a job's terminal error (white-box, for typed assertions).
func jobErr(s *Server, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.err
	}
	return nil
}

// recordSleeper captures every backoff delay instead of sleeping.
type recordSleeper struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *recordSleeper) Sleep(ctx context.Context, d time.Duration) error {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
	return ctx.Err()
}

func (r *recordSleeper) recorded() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.delays...)
}

func TestEncodeJobLifecycle(t *testing.T) {
	s := newTest(t, Config{JobWorkers: 1})
	defer s.Close()
	st, err := s.Submit(Request{Kind: KindEncode, Circuit: "s13207", L: 8, S: 4, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("initial state = %s, want queued", st.State)
	}
	final := waitState(t, s, st.ID, StateDone, StateFailed)
	if final.State != StateDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	res, _, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Encode == nil {
		t.Fatal("missing encode result")
	}
	if res.Encode.Seeds == 0 || res.Encode.TSL == 0 {
		t.Fatalf("degenerate encode result: %+v", res.Encode)
	}
	if res.Encode.ReducedTSL == 0 || res.Encode.ReducedTSL > res.Encode.TSL {
		t.Fatalf("reduction did not shorten TSL: %+v", res.Encode)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTest(t, Config{JobWorkers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Kind: KindATPG, Gates: 260})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitState(t, s, st.ID, StateDone, StateFailed)
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d, want 200", resp.StatusCode)
	}
	var rr resultResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status.State != StateDone {
		t.Fatalf("job state %s: %s", rr.Status.State, rr.Status.Error)
	}
	if rr.Result == nil || rr.Result.ATPG == nil || rr.Result.ATPG.Coverage <= 0 {
		t.Fatalf("degenerate ATPG result: %+v", rr.Result)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Submitted != 1 || m.Jobs.Done != 1 {
		t.Fatalf("metrics: %+v", m.Jobs)
	}

	if resp, err = http.Get(ts.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestQueueBackpressure fills the bounded queue behind a stalled worker
// and asserts the typed rejection plus the HTTP 503 + Retry-After
// contract.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	s := newTest(t, Config{
		JobWorkers: 1,
		QueueSize:  1,
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage != StageAttempt {
				return nil
			}
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	defer s.Close()

	first, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateRunning)
	if _, err := s.Submit(Request{Kind: KindEncode, L: 6}); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	if _, err := s.Submit(Request{Kind: KindEncode, L: 8}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(Request{Kind: KindEncode, L: 10})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue POST = %d, want 503", resp.StatusCode)
	}
	// One job queued behind one worker: Retry-After must reflect the
	// backlog (1s grace + depth/workers), not a hardcoded constant.
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs != 2 {
		t.Fatalf("Retry-After = %q, want 2 (1 + depth 1 / workers 1)", ra)
	}
	close(release)
}

// TestDrainingSubmitNoRetryAfter asserts the other half of the 503
// contract: a draining server rejects submissions without any Retry-After
// header — shutdown is not transient, clients should fail over rather
// than retry against a dying endpoint — while a full queue (above) does
// advertise a wait.
func TestDrainingSubmitNoRetryAfter(t *testing.T) {
	release := make(chan struct{})
	s := newTest(t, Config{
		JobWorkers: 1,
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage != StageAttempt {
				return nil
			}
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	st, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() { shutdownDone <- s.Shutdown(ctx) }()
	// Wait for the drain flag: submissions flip from ErrQueueFull-style
	// acceptance to ErrDraining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Submit(Request{Kind: KindEncode, L: 6}); errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(Request{Kind: KindEncode, L: 8})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("draining 503 carries Retry-After %q, want none", ra)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(envelope.Error, "draining") {
		t.Fatalf("draining 503 body %q does not name the reason", envelope.Error)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestCancelRunningJob cancels an in-flight ATPG job and requires the
// typed ErrCanceled, partial progress, and terminal state within the
// 100ms cancellation budget.
func TestCancelRunningJob(t *testing.T) {
	s := newTest(t, Config{JobWorkers: 1})
	defer s.Close()
	st, err := s.Submit(Request{Kind: KindATPG, Gates: 4000, Inputs: 120, Outputs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if pre := waitState(t, s, st.ID, StateRunning, StateDone); pre.State == StateDone {
		t.Skip("job finished before it could be cancelled; nothing to assert")
	}
	t0 := time.Now()
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateCanceled, StateDone, StateFailed)
	lat := time.Since(t0)
	if final.State == StateDone {
		return // finished before the cancel landed; legal on a fast machine
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", final.State, final.Error)
	}
	if lat > 100*time.Millisecond {
		t.Fatalf("cancel-to-terminal latency %v exceeds 100ms", lat)
	}
	if err := jobErr(s, st.ID); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("job error %v must wrap ErrCanceled and context.Canceled", err)
	}
	res, fst, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !fst.Partial || res == nil || res.ATPG == nil {
		t.Fatalf("want partial ATPG progress on cancel; status %+v result %+v", fst, res)
	}
}

// TestJobDeadline gives a long job a 10ms deadline and expects the typed
// ErrDeadline within the latency budget.
func TestJobDeadline(t *testing.T) {
	s := newTest(t, Config{JobWorkers: 1})
	defer s.Close()
	st, err := s.Submit(Request{Kind: KindATPG, Gates: 4000, Inputs: 120, Outputs: 60, TimeoutMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateCanceled, StateDone, StateFailed)
	if final.State == StateDone {
		return // outran the deadline; legal
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", final.State, final.Error)
	}
	if err := jobErr(s, st.ID); !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("job error %v must wrap ErrDeadline and context.DeadlineExceeded", err)
	}
}

// TestRetryBackoffScheduleExact injects two failing attempts and asserts
// the recorded backoff delays equal the deterministic jittered schedule,
// bit for bit.
func TestRetryBackoffScheduleExact(t *testing.T) {
	var attempts int32
	var mu sync.Mutex
	sleeper := &recordSleeper{}
	backoff := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5}
	const retrySeed = 7
	s := newTest(t, Config{
		JobWorkers: 1,
		MaxRetries: 3,
		Backoff:    backoff,
		RetrySeed:  retrySeed,
		Sleeper:    sleeper,
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage != StageAttempt {
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			attempts++
			if attempts <= 2 {
				return errors.New("injected transient failure")
			}
			return nil
		},
	})
	defer s.Close()
	st, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone, StateFailed)
	if final.State != StateDone {
		t.Fatalf("job should succeed on third attempt: %s", final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", final.Attempts)
	}
	// The job was seq 1, so its jitter stream is prng.New(retrySeed ^ 1).
	rnd := prng.New(retrySeed ^ 1)
	want := []time.Duration{backoff.Delay(0, rnd), backoff.Delay(1, rnd)}
	got := sleeper.recorded()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoff schedule %v, want exactly %v", got, want)
	}
	if m := s.MetricsSnapshot(); m.Jobs.Retries != 2 {
		t.Fatalf("retries metric = %d, want 2", m.Jobs.Retries)
	}
}

// TestGracefulShutdownDrains submits work, shuts down with a generous
// deadline, and expects every job to finish normally.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTest(t, Config{JobWorkers: 2})
	var ids []string
	for _, L := range []int{4, 6, 8} {
		st, err := s.Submit(Request{Kind: KindEncode, L: L})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s drained to %s (%s), want done", id, st.State, st.Error)
		}
	}
	if _, err := s.Submit(Request{Kind: KindEncode, L: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown err = %v, want ErrDraining", err)
	}
}

// TestShutdownDeadlineCancelsStragglers stalls a job forever and expects
// the drain deadline to force-cancel it.
func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	s := newTest(t, Config{
		JobWorkers: 1,
		Hook: func(ctx context.Context, id string, stage Stage) error {
			if stage != StageAttempt {
				return nil
			}
			<-ctx.Done() // stall until cancelled
			return ctx.Err()
		},
	})
	st, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown err = %v, want DeadlineExceeded", err)
	}
	fst, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fst.State != StateCanceled {
		t.Fatalf("straggler state = %s, want canceled", fst.State)
	}
}

// TestCoreCacheSharesTables submits two identical ATPG jobs and asserts
// the content-addressed core cache let the session levelize the netlist
// once: same hash → same *Netlist → one Tables build.
func TestCoreCacheSharesTables(t *testing.T) {
	s := newTest(t, Config{JobWorkers: 1})
	defer s.Close()
	for i := 0; i < 2; i++ {
		st, err := s.Submit(Request{Kind: KindATPG, Gates: 260})
		if err != nil {
			t.Fatal(err)
		}
		if final := waitState(t, s, st.ID, StateDone, StateFailed); final.State != StateDone {
			t.Fatalf("job %d failed: %s", i, final.Error)
		}
	}
	if got := s.Session().Stats().TableBuilds; got != 1 {
		t.Fatalf("TableBuilds = %d, want 1 (shared via content-addressed cores)", got)
	}
	if m := s.MetricsSnapshot(); m.Cores.Cached != 1 {
		t.Fatalf("cores cached = %d, want 1", m.Cores.Cached)
	}
}

// TestClockInjection pins job timestamps to an injected clock.
func TestClockInjection(t *testing.T) {
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	s := newTest(t, Config{JobWorkers: 1, Clock: func() time.Time { return fixed }})
	defer s.Close()
	st, err := s.Submit(Request{Kind: KindEncode, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone, StateFailed)
	if !final.Submitted.Equal(fixed) || final.Started == nil || !final.Started.Equal(fixed) ||
		final.Finished == nil || !final.Finished.Equal(fixed) {
		t.Fatalf("timestamps not from the injected clock: %+v", final)
	}
}
