package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/netlist"
)

// Kind names a job type the daemon can run.
type Kind string

const (
	// KindEncode encodes a benchmark circuit's cube set at window length L
	// and (optionally) runs State Skip useful-segment reduction over it.
	KindEncode Kind = "encode"
	// KindATPG runs the PODEM + fault-drop flow over a gate-level core
	// (an inline .bench netlist or a generated random core).
	KindATPG Kind = "atpg"
	// KindCoverage fault-simulates pseudorandom patterns against a core
	// and reports the coverage fraction.
	KindCoverage Kind = "coverage"
)

// Request describes one job submission. Unused fields for a kind are
// ignored; zero values select documented defaults.
type Request struct {
	Kind Kind `json:"kind"`

	// Encode jobs.
	Circuit string `json:"circuit,omitempty"` // benchmark profile name (default s13207)
	L       int    `json:"L,omitempty"`       // window length (default 16)
	S       int    `json:"S,omitempty"`       // segment size; with K>0 runs State Skip reduction
	K       int    `json:"k,omitempty"`       // speedup factor

	// ATPG and coverage jobs: either an inline .bench netlist…
	Bench string `json:"bench,omitempty"`
	// …or a generated random core.
	Inputs  int    `json:"inputs,omitempty"`  // default 80
	Outputs int    `json:"outputs,omitempty"` // default 48
	Gates   int    `json:"gates,omitempty"`   // default 260
	Seed    uint64 `json:"seed,omitempty"`    // generation / fill / pattern seed (default 2008)

	Backtrack int    `json:"backtrack,omitempty"` // PODEM backtrack limit (0 = default)
	Backtrace string `json:"backtrace,omitempty"` // "scoap" (default) or "multi"
	Patterns  int    `json:"patterns,omitempty"`  // coverage: pseudorandom patterns (default 256)
	// LaneWords widens the fault simulator to 64×N pattern lanes per sweep
	// (0 = server default). Results are bit-identical for any width; only
	// throughput changes.
	LaneWords int `json:"lane_words,omitempty"`

	// TimeoutMS overrides the server's default per-job deadline in
	// milliseconds; negative disables the deadline for this job.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// IdempotencyKey makes resubmission safe: two submissions carrying the
	// same non-empty key return the same job, so a client that lost the
	// 202 to a crash or timeout can retry without duplicating work. Keys
	// survive restarts when the server runs with a journal.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

func (r *Request) validate() error {
	switch r.Kind {
	case KindEncode:
		if r.Circuit == "" {
			r.Circuit = "s13207"
		}
		if r.L == 0 {
			r.L = 16
		}
		if r.L < 1 {
			return fmt.Errorf("server: encode: window length %d must be ≥ 1", r.L)
		}
		if (r.S > 0) != (r.K > 0) {
			return fmt.Errorf("server: encode: S and k must be set together")
		}
	case KindATPG, KindCoverage:
		if r.Bench == "" {
			if r.Inputs == 0 {
				r.Inputs = 80
			}
			if r.Outputs == 0 {
				r.Outputs = 48
			}
			if r.Gates == 0 {
				r.Gates = 260
			}
		}
		if r.Seed == 0 {
			r.Seed = 2008
		}
		if r.Backtrace == "" {
			r.Backtrace = "scoap"
		}
		if r.Kind == KindCoverage && r.Patterns == 0 {
			r.Patterns = 256
		}
		if r.LaneWords < 0 || r.LaneWords > 64 {
			return fmt.Errorf("server: lane_words %d out of range (want 0..64)", r.LaneWords)
		}
	case "":
		return errors.New("server: missing job kind")
	default:
		return fmt.Errorf("server: unknown job kind %q", r.Kind)
	}
	return nil
}

// materializeCore parses or generates the request's netlist.
func (r *Request) materializeCore() (*netlist.Netlist, error) {
	if r.Bench != "" {
		return netlist.ReadBench(strings.NewReader(r.Bench))
	}
	return netlist.Random(netlist.RandomConfig{
		Inputs: r.Inputs, Outputs: r.Outputs, Gates: r.Gates, MaxFan: 3, Seed: r.Seed,
	})
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Typed job errors. ErrCanceled and ErrDeadline additionally wrap the
// underlying context error, so errors.Is works against both this package's
// sentinels and context.Canceled / context.DeadlineExceeded.
var (
	// ErrCanceled marks a job stopped by an explicit cancel or shutdown.
	ErrCanceled = errors.New("server: job canceled")
	// ErrDeadline marks a job stopped by its per-job deadline.
	ErrDeadline = errors.New("server: job deadline exceeded")
	// ErrQueueFull rejects a submission when the bounded queue has no
	// room; HTTP maps it to 503 with Retry-After.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server: draining, not accepting jobs")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("server: no such job")
	// ErrOverCap rejects a submission whose netlist (or generator
	// parameters) exceed the server's configured size caps; HTTP maps it
	// to 422.
	ErrOverCap = errors.New("server: netlist exceeds configured caps")
	// ErrNotReady rejects submissions while the server is still replaying
	// its journal; HTTP maps it to 503 with a short Retry-After.
	ErrNotReady = errors.New("server: not ready (journal replay in progress)")
	// ErrJournal wraps a failure to make an accepted job durable. The job
	// still runs, but the client must treat the submission as unacknowledged
	// and retry with the same idempotency key.
	ErrJournal = errors.New("server: journal append failed")
)

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline — the errors that mark a job canceled rather than failed.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func errorIsDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// Status is the externally visible snapshot of one job.
type Status struct {
	ID       string `json:"id"`
	Kind     Kind   `json:"kind"`
	State    State  `json:"state"`
	Attempts int    `json:"attempts"`
	// Error is set for failed/canceled jobs; panics include the captured
	// stack of the offending attempt.
	Error string `json:"error,omitempty"`
	// Partial marks a canceled/deadlined job that still produced a
	// partial-progress result (see Result).
	Partial bool `json:"partial,omitempty"`
	// Deduped marks a status returned for a resubmission that matched an
	// existing job's idempotency key (no new job was created).
	Deduped bool `json:"deduped,omitempty"`
	// Resumed marks a job that was re-enqueued from the journal after a
	// restart (for ATPG jobs, possibly continuing from a checkpoint).
	Resumed    bool       `json:"resumed,omitempty"`
	Submitted  time.Time  `json:"submitted"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	QueueDepth int        `json:"queue_depth,omitempty"` // jobs ahead at snapshot time (queued only)
}

// EncodeResult reports an encode job.
type EncodeResult struct {
	Circuit     string  `json:"circuit"`
	L           int     `json:"L"`
	Seeds       int     `json:"seeds"`
	TDV         int     `json:"tdv_bits"`
	TSL         int     `json:"tsl_vectors"`
	Checks      int64   `json:"consistency_checks"`
	S           int     `json:"S,omitempty"`
	K           int     `json:"k,omitempty"`
	ReducedTSL  int     `json:"reduced_tsl,omitempty"`
	Improvement float64 `json:"improvement,omitempty"`
}

// ATPGResult reports an ATPG job; on a canceled/deadlined job it carries
// the partial progress made before the stop (Partial=true in Status).
type ATPGResult struct {
	Inputs     int     `json:"inputs"`
	Outputs    int     `json:"outputs"`
	Gates      int     `json:"gates"`
	Faults     int     `json:"faults"`
	Detected   int     `json:"detected"`
	Untestable int     `json:"untestable"`
	Aborted    int     `json:"aborted"`
	Cubes      int     `json:"cubes"`
	Backtracks int     `json:"backtracks"`
	Coverage   float64 `json:"coverage"`
}

// CoverageResult reports a coverage job.
type CoverageResult struct {
	Faults   int     `json:"faults"`
	Detected int     `json:"detected"`
	Patterns int     `json:"patterns"`
	Coverage float64 `json:"coverage"`
}

// Result is a completed job's payload; exactly one field is set.
type Result struct {
	Encode   *EncodeResult   `json:"encode,omitempty"`
	ATPG     *ATPGResult     `json:"atpg,omitempty"`
	Coverage *CoverageResult `json:"coverage,omitempty"`
}

// job is the server-internal record of one submission. All mutable fields
// are guarded by the owning Server's mu; the context pair is written once
// at submit time and safe to read without the lock.
type job struct {
	id     string
	seq    uint64
	req    Request
	ctx    context.Context
	cancel context.CancelFunc
	// key is the request's idempotency key; resumed/resumeCkpt are set
	// during journal replay. All three are written once before the job
	// becomes visible to other goroutines and read-only afterwards.
	key        string
	resumed    bool
	resumeCkpt []byte

	state     State      // guarded by mu
	attempts  int        // guarded by mu
	err       error      // guarded by mu
	partial   bool       // guarded by mu
	result    *Result    // guarded by mu
	submitted time.Time  // guarded by mu
	started   *time.Time // guarded by mu
	finished  *time.Time // guarded by mu
}

// statusLocked snapshots the job; the caller holds the server's mu.
func (j *job) statusLocked() *Status {
	st := &Status{
		ID:        j.id,
		Kind:      j.req.Kind,
		State:     j.state,
		Attempts:  j.attempts,
		Partial:   j.partial,
		Resumed:   j.resumed,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}
