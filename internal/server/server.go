// Package server implements stateskipd's job service: a bounded-queue,
// worker-pool daemon running the repository's encode / ATPG / coverage
// flows over one shared experiments.Session. Jobs are submitted, polled,
// fetched and cancelled over HTTP (see Handler); every job runs under its
// own context with a per-job deadline, cooperative cancellation threaded
// through the engines, retry with exponential backoff and jitter, and
// per-attempt panic recovery that fails only the offending job.
//
// The package sits outside the deterministic pipeline boundary (see
// ARCHITECTURE.md): it may read wall clocks and schedule freely, because
// everything it runs goes through the pipeline packages, whose results
// are bit-identical regardless of timing.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/journal"
	"repro/internal/lru"
	"repro/internal/netlist"
	"repro/internal/prng"
	"repro/internal/stateskip"
)

// Stage names a job-lifecycle boundary where the chaos hook fires.
type Stage string

const (
	// StageDequeue fires when a worker picks a job off the queue.
	StageDequeue Stage = "dequeue"
	// StageAttempt fires at the start of every run attempt.
	StageAttempt Stage = "attempt"
	// StageFinish fires after a job reaches a terminal state.
	StageFinish Stage = "finish"
)

// Hook is a fault-injection point for the chaos tests: it may return an
// error (fails the attempt, subject to retry), panic (exercises panic
// recovery), or block on the context (exercises deadlines and shutdown).
// A nil hook is never called. Hooks run on worker goroutines and must be
// safe for concurrent use.
type Hook func(ctx context.Context, jobID string, stage Stage) error

// Config tunes a Server. The zero value is usable: CI scale, one job
// worker per CPU, a 64-entry queue, no default deadline, no retries.
type Config struct {
	// Scale selects the benchmark profile scale (CI or paper).
	Scale benchprofile.Scale
	// JobWorkers is the number of jobs run concurrently (0 = 2).
	JobWorkers int
	// EngineWorkers bounds each job's internal parallelism
	// (experiments.Session.Workers); 0 = all CPUs.
	EngineWorkers int
	// LaneWords is the default fault-simulator lane width in 64-bit words
	// (experiments.Session.LaneWords); requests override it per job via
	// lane_words. 0 = single-word; results are bit-identical for any width.
	LaneWords int
	// QueueSize bounds the backlog of queued jobs (0 = 64). A full queue
	// rejects submissions with ErrQueueFull (HTTP 503 + Retry-After).
	QueueSize int
	// DefaultTimeout is the per-job deadline applied when a request does
	// not set TimeoutMS (0 = none).
	DefaultTimeout time.Duration
	// MaxRetries is how many times a failed (non-context) attempt is
	// retried before the job fails.
	MaxRetries int
	// Backoff shapes the delay between retries.
	Backoff Backoff
	// RetrySeed keys the deterministic jitter stream; each job derives
	// its own stream from RetrySeed and its sequence number.
	RetrySeed uint64
	// Sleeper performs the backoff delays (nil = real timers). Tests
	// inject a recording Sleeper to assert exact schedules.
	Sleeper Sleeper
	// Clock supplies job timestamps (nil = time.Now). Tests inject a
	// fixed clock for deterministic Status assertions.
	Clock func() time.Time
	// MaxCores bounds the content-addressed netlist cache (0 = 128).
	MaxCores int
	// MaxCached bounds the session's artefact memo maps
	// (experiments.Session.SetMaxCached); 0 leaves them unbounded.
	MaxCached int
	// Hook is the chaos-test fault-injection point; nil in production.
	Hook Hook

	// JournalDir enables the durable job journal: every acknowledged
	// submission is fsynced there before the 202, and New replays the
	// directory on startup, re-enqueueing interrupted jobs. Empty disables
	// journaling (the pre-journal in-memory behaviour, bit-identical
	// results).
	JournalDir string
	// JournalOptions tunes the underlying write-ahead log (tests set
	// NoSync to keep fsync out of hot loops).
	JournalOptions journal.Options
	// CheckpointEvery is the ATPG checkpoint cadence in committed faults
	// (0 = 25). Only meaningful with a journal.
	CheckpointEvery int
	// MaxBodyBytes caps POST /jobs request bodies (0 = 8 MiB); larger
	// bodies get a typed 413.
	MaxBodyBytes int64
	// MaxGates / MaxInputs / MaxLevels cap client-supplied netlists,
	// enforced at admission after parse and before any table build
	// (0 = unlimited). Violations return ErrOverCap (HTTP 422).
	MaxGates  int
	MaxInputs int
	MaxLevels int
}

func (c *Config) fill() {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Sleeper == nil {
		c.Sleeper = realSleeper{}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 128
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
}

// Server is the stateskipd job service. Construct with New, serve its
// Handler, and stop it with Shutdown.
type Server struct {
	cfg     Config
	session *experiments.Session

	// baseCtx parents every job context; baseCancel is the hard-stop
	// lever Shutdown pulls when the drain deadline passes.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// journal is the durable job log (nil when Config.JournalDir is
	// empty). Set once in New; safe to read without the lock. journalOnce
	// guards the compact-and-close at shutdown.
	journal     *journal.Journal
	journalOnce sync.Once

	mu   sync.Mutex
	jobs map[string]*job // guarded by mu
	// queue carries accepted jobs to the workers. Channel operations are
	// self-synchronized, so receives take no lock; sends and the close in
	// Shutdown happen under mu so a Submit can never race the close.
	queue    chan *job
	draining bool                                 // guarded by mu
	ready    bool                                 // guarded by mu; false until journal replay finishes
	nextSeq  uint64                               // guarded by mu
	idem     map[string]string                    // guarded by mu; idempotency key → job ID
	cores    *lru.Cache[uint64, *netlist.Netlist] // guarded by mu; content-addressed by netlist.Hash

	wg      sync.WaitGroup
	started time.Time

	metrics struct {
		submitted, rejected    atomic.Int64
		done, failed, canceled atomic.Int64
		retries, panics        atomic.Int64
		replayed, checkpoints  atomic.Int64
		resumed, shed          atomic.Int64
	}
}

// New starts a Server with cfg.JobWorkers worker goroutines. When
// cfg.JournalDir is set it opens (creating if needed) the durable job
// journal there, replays it, re-enqueues every job that was acknowledged
// but not yet terminal when the previous process died, and compacts the
// log — then starts accepting work. The caller must eventually call
// Shutdown (or Close) to stop the workers and close the journal.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		session:    experiments.NewSession(cfg.Scale),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		idem:       make(map[string]string),
		cores:      lru.New[uint64, *netlist.Netlist](cfg.MaxCores),
		started:    cfg.Clock(),
	}
	s.session.Workers = cfg.EngineWorkers
	s.session.LaneWords = cfg.LaneWords
	if cfg.MaxCached > 0 {
		s.session.SetMaxCached(cfg.MaxCached)
		s.session.EncTables.SetMax(cfg.MaxCached)
	}

	var requeue []*job
	if cfg.JournalDir != "" {
		jn, recs, err := journal.Open(cfg.JournalDir, cfg.JournalOptions)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("server: opening journal: %w", err)
		}
		s.journal = jn
		requeue, err = s.replay(recs)
		if err != nil {
			jn.Close() //nolint:errcheck // the replay error is the one that matters
			cancel()
			return nil, err
		}
	}

	// The queue must hold every interrupted job on top of the configured
	// backlog, or a journal fuller than QueueSize would deadlock startup.
	s.mu.Lock()
	s.queue = make(chan *job, cfg.QueueSize+len(requeue))
	for _, j := range requeue {
		s.queue <- j
	}
	s.ready = true
	s.mu.Unlock()

	if s.journal != nil {
		// Startup is the one moment compaction is trivially safe: no
		// workers are running, so no appends race the rewrite.
		live, err := s.liveRecords()
		if err == nil {
			err = s.journal.Compact(live)
		}
		if err != nil {
			s.journal.Close() //nolint:errcheck
			cancel()
			return nil, fmt.Errorf("server: compacting journal: %w", err)
		}
	}

	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay folds the journal's record stream back into the job table:
// terminal jobs are restored as finished history (their results survive
// the crash), interrupted-but-acknowledged jobs are returned for
// re-enqueueing, and unacknowledged non-terminal records are dropped.
func (s *Server) replay(recs []journal.Record) ([]*job, error) {
	rjobs, err := replayRecords(recs)
	if err != nil {
		return nil, err
	}
	// No workers exist yet, but the guarded fields keep their invariant:
	// all writes happen under mu.
	s.mu.Lock()
	defer s.mu.Unlock()
	var requeue []*job
	for _, rj := range rjobs {
		if rj.terminal == nil && !rj.hasSubmit {
			// The client never received a 202 for this job; recreating it
			// would violate at-most-once. Its records die with the compact.
			continue
		}
		jctx, cancel := context.WithCancel(s.baseCtx)
		j := &job{
			id:        rj.id,
			seq:       rj.seq,
			req:       rj.req,
			key:       rj.key,
			ctx:       jctx,
			cancel:    cancel,
			attempts:  rj.attempts,
			submitted: rj.submitted,
		}
		if rj.terminal != nil {
			tr := rj.terminal
			j.state = tr.State
			j.partial = tr.Partial
			j.result = tr.Result
			if tr.Error != "" {
				j.err = errors.New(tr.Error)
			}
			fin := tr.Finished
			j.finished = &fin
			cancel()
		} else {
			j.state = StateQueued
			j.resumed = true
			j.resumeCkpt = rj.checkpoint
			requeue = append(requeue, j)
			s.metrics.replayed.Add(1)
		}
		s.jobs[j.id] = j
		if j.key != "" {
			s.idem[j.key] = j.id
		}
		if rj.seq > s.nextSeq {
			s.nextSeq = rj.seq
		}
	}
	return requeue, nil
}

// Journal exposes the underlying journal (nil when disabled). The crash
// tests use it to sever the log underneath a live server, simulating a
// dying disk or a SIGKILL between append and ack.
func (s *Server) Journal() *journal.Journal { return s.journal }

// Session exposes the shared session for tests and metrics.
func (s *Server) Session() *experiments.Session { return s.session }

func (s *Server) now() time.Time { return s.cfg.Clock() }

// Submit validates a request, enforces the untrusted-input caps, and
// enqueues a job, returning its initial status. A full queue returns
// ErrQueueFull; a draining server ErrDraining; a replaying one
// ErrNotReady. A request whose IdempotencyKey matches an existing job
// returns that job's status with Deduped set instead of creating a new
// one. With a journal, the 202 contract holds: a nil error means the
// submission is durable; ErrJournal means the job was accepted in memory
// but durability failed, and the client should retry with the same key.
func (s *Server) Submit(req Request) (*Status, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	core, err := s.admitCore(&req)
	if err != nil {
		s.metrics.rejected.Add(1)
		return nil, err
	}
	var coreHash uint64
	if core != nil {
		coreHash = core.Hash()
	}
	s.mu.Lock()
	if !s.ready {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		s.metrics.shed.Add(1)
		return nil, ErrNotReady
	}
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		s.metrics.shed.Add(1)
		return nil, ErrDraining
	}
	if req.IdempotencyKey != "" {
		if id, ok := s.idem[req.IdempotencyKey]; ok {
			if j, ok := s.jobs[id]; ok {
				st := j.statusLocked()
				st.Deduped = true
				s.mu.Unlock()
				return st, nil
			}
		}
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		s.metrics.shed.Add(1)
		return nil, ErrQueueFull
	}
	if core != nil {
		// Seed the content-addressed cache with the already-parsed core so
		// the worker never re-parses what admission just validated.
		s.cores.Add(coreHash, core)
	}
	s.nextSeq++
	jctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:        fmt.Sprintf("j%06d", s.nextSeq),
		seq:       s.nextSeq,
		req:       req,
		key:       req.IdempotencyKey,
		ctx:       jctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: s.now(),
	}
	s.jobs[j.id] = j
	if j.key != "" {
		s.idem[j.key] = j.id
	}
	// Cannot block: len < cap was verified above and sends only happen
	// under mu.
	s.queue <- j
	st := j.statusLocked()
	st.QueueDepth = len(s.queue)
	s.mu.Unlock()
	s.metrics.submitted.Add(1)
	if err := s.journalSubmit(j); err != nil {
		return st, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return st, nil
}

// admitCore is the admission-control gate for client-supplied circuits:
// parse (typed .bench errors surface as 400s), then enforce the size caps
// before any table build can amplify the input. Generated-core requests
// are cap-checked on their parameters without generating. Returns the
// parsed netlist for bench requests so Submit can seed the core cache.
func (s *Server) admitCore(req *Request) (*netlist.Netlist, error) {
	switch req.Kind {
	case KindATPG, KindCoverage:
	default:
		return nil, nil // encode jobs name baked-in benchmark profiles
	}
	if req.Bench == "" {
		return nil, s.checkCaps(req.Gates, req.Inputs, 0)
	}
	core, err := netlist.ReadBench(strings.NewReader(req.Bench))
	if err != nil {
		return nil, err
	}
	st, err := core.Summary()
	if err != nil {
		return nil, err
	}
	if err := s.checkCaps(st.Gates, st.Inputs, st.Levels); err != nil {
		return nil, err
	}
	return core, nil
}

func (s *Server) checkCaps(gates, inputs, levels int) error {
	if s.cfg.MaxGates > 0 && gates > s.cfg.MaxGates {
		return fmt.Errorf("%w: %d gates > %d", ErrOverCap, gates, s.cfg.MaxGates)
	}
	if s.cfg.MaxInputs > 0 && inputs > s.cfg.MaxInputs {
		return fmt.Errorf("%w: %d inputs > %d", ErrOverCap, inputs, s.cfg.MaxInputs)
	}
	if s.cfg.MaxLevels > 0 && levels > s.cfg.MaxLevels {
		return fmt.Errorf("%w: %d levels > %d", ErrOverCap, levels, s.cfg.MaxLevels)
	}
	return nil
}

// Status snapshots one job.
func (s *Server) Status(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.statusLocked(), nil
}

// Result returns a terminal job's result and status. For a job that is
// still queued or running it returns the status and a nil Result, so
// callers can distinguish "not done yet" from "done without payload".
func (s *Server) Result(id string) (*Result, *Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	return j.result, j.statusLocked(), nil
}

// Cancel stops a job: a queued job is finalised immediately (the worker
// later skips its carcass), a running one has its context cancelled and
// finalises itself within the engines' cancellation latency. Cancelling a
// terminal job is a no-op returning its final status.
func (s *Server) Cancel(id string) (*Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	canceledNow := false
	if j.state == StateQueued {
		now := s.now()
		j.state = StateCanceled
		j.err = fmt.Errorf("%w: canceled while queued", ErrCanceled)
		j.finished = &now
		s.metrics.canceled.Add(1)
		canceledNow = true
	}
	st := j.statusLocked()
	var fin time.Time
	if j.finished != nil {
		fin = *j.finished
	}
	s.mu.Unlock()
	if canceledNow {
		// Durably record the queued-job cancel so a restart replays it as
		// terminal instead of resurrecting and re-running it.
		s.journalTerminal(j, StateCanceled, st.Error, false, fin, nil)
	}
	j.cancel()
	return st, nil
}

// Jobs lists every job's status, newest first.
func (s *Server) Jobs() []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	for i := 0; i < len(out); i++ { // insertion sort by ID desc (IDs are zero-padded)
		for k := i; k > 0 && out[k].ID > out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Shutdown gracefully stops the server: new submissions are rejected with
// ErrDraining, queued and running jobs drain normally until ctx fires,
// then every outstanding job is cancelled and Shutdown waits for the
// workers to observe it. Returns nil on a clean drain, otherwise ctx's
// error. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Clean drain: every job is terminal, so the journal compacts to
		// its minimal history before closing.
		s.closeJournal(true)
		return nil
	case <-ctx.Done():
		// Drain deadline passed: hard-cancel everything still in flight.
		// The engines poll their contexts cooperatively, so the workers
		// exit within microseconds of this. No compaction — interrupted
		// jobs keep their checkpoints for the next replay.
		s.baseCancel()
		<-done
		s.closeJournal(false)
		return ctx.Err()
	}
}

// Close is Shutdown with an immediate drain deadline: cancel everything
// and wait for the workers.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx) //nolint:errcheck // the forced-drain error is expected here
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) hook(ctx context.Context, id string, stage Stage) error {
	if s.cfg.Hook == nil {
		return nil
	}
	return s.cfg.Hook(ctx, id, stage)
}

// runJob drives one job through its attempt/retry loop and finalises it.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	now := s.now()
	j.state = StateRunning
	j.started = &now
	// Attempts survive restarts: a replayed job resumes its count rather
	// than restarting at 1.
	baseAttempts := j.attempts
	s.mu.Unlock()
	s.journalAdvisory(journal.OpStarted, j.id, nil)

	ctx := j.ctx
	timeout := s.cfg.DefaultTimeout
	if j.req.TimeoutMS != 0 {
		timeout = time.Duration(j.req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if err := s.hook(ctx, j.id, StageDequeue); err != nil {
		s.finalize(j, nil, err)
		return
	}

	rnd := prng.New(s.cfg.RetrySeed ^ j.seq)
	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts = baseAttempts + attempt + 1
		s.mu.Unlock()
		s.journalAttempt(j.id, baseAttempts+attempt)
		res, err = s.attempt(ctx, j, attempt)
		if err == nil || ctx.Err() != nil || attempt >= s.cfg.MaxRetries {
			break
		}
		s.metrics.retries.Add(1)
		if serr := s.cfg.Sleeper.Sleep(ctx, s.cfg.Backoff.Delay(attempt, rnd)); serr != nil {
			err = serr
			break
		}
	}
	s.finalize(j, res, err)
}

// finalize records a job's terminal state, translating context errors into
// the package's typed sentinels.
func (s *Server) finalize(j *job, res *Result, err error) {
	s.mu.Lock()
	now := s.now()
	j.finished = &now
	j.result = res
	switch {
	case err == nil:
		j.state = StateDone
		s.metrics.done.Add(1)
	case isCtxErr(err):
		j.state = StateCanceled
		j.partial = res != nil
		sentinel := ErrCanceled
		if errorIsDeadline(err) {
			sentinel = ErrDeadline
		}
		j.err = fmt.Errorf("%w: %w", sentinel, err)
		s.metrics.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err
		s.metrics.failed.Add(1)
	}
	state := j.state
	partial := j.partial
	var errText string
	if j.err != nil {
		errText = j.err.Error()
	}
	s.mu.Unlock()
	s.journalTerminal(j, state, errText, partial, now, res)
	j.cancel()
	s.hook(context.Background(), j.id, StageFinish) //nolint:errcheck // finish hooks are observational
}

// attempt runs one try of a job with panic containment: a panicking
// attempt fails only this job, with the stack captured into its error.
func (s *Server) attempt(ctx context.Context, j *job, attempt int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			err = fmt.Errorf("server: job %s attempt %d panicked: %v\n%s", j.id, attempt, r, debug.Stack())
		}
	}()
	if err := s.hook(ctx, j.id, StageAttempt); err != nil {
		return nil, err
	}
	switch j.req.Kind {
	case KindEncode:
		return s.runEncode(ctx, &j.req)
	case KindATPG:
		return s.runATPG(ctx, j)
	case KindCoverage:
		return s.runCoverage(ctx, &j.req)
	}
	return nil, fmt.Errorf("server: unknown job kind %q", j.req.Kind)
}

func (s *Server) runEncode(ctx context.Context, req *Request) (*Result, error) {
	enc, err := s.session.EncodingCtx(ctx, req.Circuit, req.L)
	if err != nil {
		return nil, err
	}
	r := &EncodeResult{
		Circuit: req.Circuit, L: req.L,
		Seeds: len(enc.Seeds), TDV: enc.TDV(), TSL: enc.TSL(),
		Checks: enc.ChecksPerformed,
	}
	if req.S > 0 && req.K > 0 {
		idx, err := s.session.IndexCtx(ctx, req.Circuit, req.L)
		if err != nil {
			return nil, err
		}
		opt := stateskip.DefaultOptions(req.S, req.K)
		opt.Workers = s.cfg.EngineWorkers
		red, err := stateskip.ReduceWithIndex(enc, idx, opt)
		if err != nil {
			return nil, err
		}
		r.S, r.K = req.S, req.K
		r.ReducedTSL = red.TSL()
		r.Improvement = red.Improvement()
	}
	return &Result{Encode: r}, nil
}

// coreFor materialises the request's netlist through the content-addressed
// cache: two requests describing the same circuit — byte-identical bench
// text or the same generator parameters — share one *Netlist, so the
// session's per-netlist ATPG tables are levelized once across tenants.
func (s *Server) coreFor(req *Request) (*netlist.Netlist, error) {
	core, err := req.materializeCore()
	if err != nil {
		return nil, err
	}
	h := core.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.cores.Get(h); ok {
		return cached, nil
	}
	s.cores.Add(h, core)
	return core, nil
}

func (s *Server) runATPG(ctx context.Context, j *job) (*Result, error) {
	req := &j.req
	strategy, ok := atpg.ParseBacktrace(req.Backtrace)
	if !ok {
		return nil, fmt.Errorf("server: unknown backtrace %q (want scoap or multi)", req.Backtrace)
	}
	core, err := s.coreFor(req)
	if err != nil {
		return nil, err
	}
	st, err := core.Summary()
	if err != nil {
		return nil, err
	}
	opt := atpg.Options{
		FaultDrop: true, FillSeed: req.Seed,
		BacktrackLimit: req.Backtrack, Backtrace: strategy,
		// 0 lets the session inject the server-wide Config.LaneWords default.
		LaneWords: req.LaneWords,
	}
	if s.journal != nil {
		// Periodic checkpoints ride the buffered journal path; losing the
		// latest one in a crash only costs re-deriving a few faults.
		id := j.id
		opt.CheckpointEvery = s.cfg.CheckpointEvery
		opt.Checkpoint = func(cp *atpg.Checkpoint) {
			b, err := cp.MarshalBinary()
			if err != nil {
				return
			}
			if s.journal.Append(journal.Record{Op: journal.OpCheckpoint, ID: id, Data: b}) == nil {
				s.metrics.checkpoints.Add(1)
			}
		}
	}
	if len(j.resumeCkpt) > 0 {
		// Resume from the replayed checkpoint when it provably belongs to
		// this circuit; anything suspect falls back to a fresh run — the
		// engines are deterministic, so the result is identical either way,
		// just slower.
		var cp atpg.Checkpoint
		if err := cp.UnmarshalBinary(j.resumeCkpt); err == nil &&
			cp.NetHash == core.Hash() && cp.NumInputs == len(core.Inputs) {
			opt.Resume = &cp
			s.metrics.resumed.Add(1)
		}
	}
	u, res, err := s.session.ATPGOptsCtx(ctx, core, opt)
	if err != nil {
		if res != nil { // partial progress from a cancelled/deadlined run
			return &Result{ATPG: atpgResult(st, u, res)}, err
		}
		return nil, err
	}
	return &Result{ATPG: atpgResult(st, u, res)}, nil
}

func atpgResult(st netlist.Stats, u *faultsim.Universe, res *atpg.Result) *ATPGResult {
	return &ATPGResult{
		Inputs: st.Inputs, Outputs: st.Outputs, Gates: st.Gates,
		Faults: len(u.Faults), Detected: res.Detected,
		Untestable: res.Untestable, Aborted: res.Aborted,
		Cubes: res.Cubes.Len(), Backtracks: res.Backtracks,
		Coverage: res.Coverage,
	}
}

func (s *Server) runCoverage(ctx context.Context, req *Request) (*Result, error) {
	core, err := s.coreFor(req)
	if err != nil {
		return nil, err
	}
	u := faultsim.NewUniverse(core)
	rnd := prng.New(req.Seed)
	patterns := make([][]uint8, req.Patterns)
	for i := range patterns {
		p := make([]uint8, len(core.Inputs))
		for b := range p {
			p[b] = rnd.Bit()
		}
		patterns[i] = p
	}
	lanes := req.LaneWords
	if lanes == 0 {
		lanes = s.cfg.LaneWords
	}
	detected, cov, err := faultsim.CoverageCtx(ctx, u, patterns, faultsim.Options{Workers: s.cfg.EngineWorkers, LaneWords: lanes})
	if err != nil {
		return nil, err
	}
	nd := 0
	for _, d := range detected {
		if d {
			nd++
		}
	}
	return &Result{Coverage: &CoverageResult{
		Faults: len(u.Faults), Detected: nd,
		Patterns: req.Patterns, Coverage: cov,
	}}, nil
}
