// Package server implements stateskipd's job service: a bounded-queue,
// worker-pool daemon running the repository's encode / ATPG / coverage
// flows over one shared experiments.Session. Jobs are submitted, polled,
// fetched and cancelled over HTTP (see Handler); every job runs under its
// own context with a per-job deadline, cooperative cancellation threaded
// through the engines, retry with exponential backoff and jitter, and
// per-attempt panic recovery that fails only the offending job.
//
// The package sits outside the deterministic pipeline boundary (see
// ARCHITECTURE.md): it may read wall clocks and schedule freely, because
// everything it runs goes through the pipeline packages, whose results
// are bit-identical regardless of timing.
package server

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/lru"
	"repro/internal/netlist"
	"repro/internal/prng"
	"repro/internal/stateskip"
)

// Stage names a job-lifecycle boundary where the chaos hook fires.
type Stage string

const (
	// StageDequeue fires when a worker picks a job off the queue.
	StageDequeue Stage = "dequeue"
	// StageAttempt fires at the start of every run attempt.
	StageAttempt Stage = "attempt"
	// StageFinish fires after a job reaches a terminal state.
	StageFinish Stage = "finish"
)

// Hook is a fault-injection point for the chaos tests: it may return an
// error (fails the attempt, subject to retry), panic (exercises panic
// recovery), or block on the context (exercises deadlines and shutdown).
// A nil hook is never called. Hooks run on worker goroutines and must be
// safe for concurrent use.
type Hook func(ctx context.Context, jobID string, stage Stage) error

// Config tunes a Server. The zero value is usable: CI scale, one job
// worker per CPU, a 64-entry queue, no default deadline, no retries.
type Config struct {
	// Scale selects the benchmark profile scale (CI or paper).
	Scale benchprofile.Scale
	// JobWorkers is the number of jobs run concurrently (0 = 2).
	JobWorkers int
	// EngineWorkers bounds each job's internal parallelism
	// (experiments.Session.Workers); 0 = all CPUs.
	EngineWorkers int
	// QueueSize bounds the backlog of queued jobs (0 = 64). A full queue
	// rejects submissions with ErrQueueFull (HTTP 503 + Retry-After).
	QueueSize int
	// DefaultTimeout is the per-job deadline applied when a request does
	// not set TimeoutMS (0 = none).
	DefaultTimeout time.Duration
	// MaxRetries is how many times a failed (non-context) attempt is
	// retried before the job fails.
	MaxRetries int
	// Backoff shapes the delay between retries.
	Backoff Backoff
	// RetrySeed keys the deterministic jitter stream; each job derives
	// its own stream from RetrySeed and its sequence number.
	RetrySeed uint64
	// Sleeper performs the backoff delays (nil = real timers). Tests
	// inject a recording Sleeper to assert exact schedules.
	Sleeper Sleeper
	// Clock supplies job timestamps (nil = time.Now). Tests inject a
	// fixed clock for deterministic Status assertions.
	Clock func() time.Time
	// MaxCores bounds the content-addressed netlist cache (0 = 128).
	MaxCores int
	// MaxCached bounds the session's artefact memo maps
	// (experiments.Session.SetMaxCached); 0 leaves them unbounded.
	MaxCached int
	// Hook is the chaos-test fault-injection point; nil in production.
	Hook Hook
}

func (c *Config) fill() {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Sleeper == nil {
		c.Sleeper = realSleeper{}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 128
	}
}

// Server is the stateskipd job service. Construct with New, serve its
// Handler, and stop it with Shutdown.
type Server struct {
	cfg     Config
	session *experiments.Session

	// baseCtx parents every job context; baseCancel is the hard-stop
	// lever Shutdown pulls when the drain deadline passes.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job // guarded by mu
	// queue carries accepted jobs to the workers. Channel operations are
	// self-synchronized, so receives take no lock; sends and the close in
	// Shutdown happen under mu so a Submit can never race the close.
	queue    chan *job
	draining bool                                 // guarded by mu
	nextSeq  uint64                               // guarded by mu
	cores    *lru.Cache[uint64, *netlist.Netlist] // guarded by mu; content-addressed by netlist.Hash

	wg      sync.WaitGroup
	started time.Time

	metrics struct {
		submitted, rejected    atomic.Int64
		done, failed, canceled atomic.Int64
		retries, panics        atomic.Int64
	}
}

// New starts a Server with cfg.JobWorkers worker goroutines. The caller
// must eventually call Shutdown (or Close) to stop them.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		session:    experiments.NewSession(cfg.Scale),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueSize),
		cores:      lru.New[uint64, *netlist.Netlist](cfg.MaxCores),
		started:    cfg.Clock(),
	}
	s.session.Workers = cfg.EngineWorkers
	if cfg.MaxCached > 0 {
		s.session.SetMaxCached(cfg.MaxCached)
		s.session.EncTables.SetMax(cfg.MaxCached)
	}
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Session exposes the shared session for tests and metrics.
func (s *Server) Session() *experiments.Session { return s.session }

func (s *Server) now() time.Time { return s.cfg.Clock() }

// Submit validates and enqueues a job, returning its initial status.
// A full queue returns ErrQueueFull; a draining server ErrDraining.
func (s *Server) Submit(req Request) (*Status, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrDraining
	}
	s.nextSeq++
	jctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:        fmt.Sprintf("j%06d", s.nextSeq),
		seq:       s.nextSeq,
		req:       req,
		ctx:       jctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: s.now(),
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		st := j.statusLocked()
		st.QueueDepth = len(s.queue)
		s.mu.Unlock()
		s.metrics.submitted.Add(1)
		return st, nil
	default:
		s.nextSeq-- // unused ID; keep the sequence dense
		s.mu.Unlock()
		cancel()
		s.metrics.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Status snapshots one job.
func (s *Server) Status(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.statusLocked(), nil
}

// Result returns a terminal job's result and status. For a job that is
// still queued or running it returns the status and a nil Result, so
// callers can distinguish "not done yet" from "done without payload".
func (s *Server) Result(id string) (*Result, *Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	return j.result, j.statusLocked(), nil
}

// Cancel stops a job: a queued job is finalised immediately (the worker
// later skips its carcass), a running one has its context cancelled and
// finalises itself within the engines' cancellation latency. Cancelling a
// terminal job is a no-op returning its final status.
func (s *Server) Cancel(id string) (*Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state == StateQueued {
		now := s.now()
		j.state = StateCanceled
		j.err = fmt.Errorf("%w: canceled while queued", ErrCanceled)
		j.finished = &now
		s.metrics.canceled.Add(1)
	}
	st := j.statusLocked()
	s.mu.Unlock()
	j.cancel()
	return st, nil
}

// Jobs lists every job's status, newest first.
func (s *Server) Jobs() []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	for i := 0; i < len(out); i++ { // insertion sort by ID desc (IDs are zero-padded)
		for k := i; k > 0 && out[k].ID > out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Shutdown gracefully stops the server: new submissions are rejected with
// ErrDraining, queued and running jobs drain normally until ctx fires,
// then every outstanding job is cancelled and Shutdown waits for the
// workers to observe it. Returns nil on a clean drain, otherwise ctx's
// error. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Drain deadline passed: hard-cancel everything still in flight.
		// The engines poll their contexts cooperatively, so the workers
		// exit within microseconds of this.
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close is Shutdown with an immediate drain deadline: cancel everything
// and wait for the workers.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx) //nolint:errcheck // the forced-drain error is expected here
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) hook(ctx context.Context, id string, stage Stage) error {
	if s.cfg.Hook == nil {
		return nil
	}
	return s.cfg.Hook(ctx, id, stage)
}

// runJob drives one job through its attempt/retry loop and finalises it.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	now := s.now()
	j.state = StateRunning
	j.started = &now
	s.mu.Unlock()

	ctx := j.ctx
	timeout := s.cfg.DefaultTimeout
	if j.req.TimeoutMS != 0 {
		timeout = time.Duration(j.req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if err := s.hook(ctx, j.id, StageDequeue); err != nil {
		s.finalize(j, nil, err)
		return
	}

	rnd := prng.New(s.cfg.RetrySeed ^ j.seq)
	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts = attempt + 1
		s.mu.Unlock()
		res, err = s.attempt(ctx, j, attempt)
		if err == nil || ctx.Err() != nil || attempt >= s.cfg.MaxRetries {
			break
		}
		s.metrics.retries.Add(1)
		if serr := s.cfg.Sleeper.Sleep(ctx, s.cfg.Backoff.Delay(attempt, rnd)); serr != nil {
			err = serr
			break
		}
	}
	s.finalize(j, res, err)
}

// finalize records a job's terminal state, translating context errors into
// the package's typed sentinels.
func (s *Server) finalize(j *job, res *Result, err error) {
	s.mu.Lock()
	now := s.now()
	j.finished = &now
	j.result = res
	switch {
	case err == nil:
		j.state = StateDone
		s.metrics.done.Add(1)
	case isCtxErr(err):
		j.state = StateCanceled
		j.partial = res != nil
		sentinel := ErrCanceled
		if errorIsDeadline(err) {
			sentinel = ErrDeadline
		}
		j.err = fmt.Errorf("%w: %w", sentinel, err)
		s.metrics.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err
		s.metrics.failed.Add(1)
	}
	s.mu.Unlock()
	j.cancel()
	s.hook(context.Background(), j.id, StageFinish) //nolint:errcheck // finish hooks are observational
}

// attempt runs one try of a job with panic containment: a panicking
// attempt fails only this job, with the stack captured into its error.
func (s *Server) attempt(ctx context.Context, j *job, attempt int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			err = fmt.Errorf("server: job %s attempt %d panicked: %v\n%s", j.id, attempt, r, debug.Stack())
		}
	}()
	if err := s.hook(ctx, j.id, StageAttempt); err != nil {
		return nil, err
	}
	switch j.req.Kind {
	case KindEncode:
		return s.runEncode(ctx, &j.req)
	case KindATPG:
		return s.runATPG(ctx, &j.req)
	case KindCoverage:
		return s.runCoverage(ctx, &j.req)
	}
	return nil, fmt.Errorf("server: unknown job kind %q", j.req.Kind)
}

func (s *Server) runEncode(ctx context.Context, req *Request) (*Result, error) {
	enc, err := s.session.EncodingCtx(ctx, req.Circuit, req.L)
	if err != nil {
		return nil, err
	}
	r := &EncodeResult{
		Circuit: req.Circuit, L: req.L,
		Seeds: len(enc.Seeds), TDV: enc.TDV(), TSL: enc.TSL(),
		Checks: enc.ChecksPerformed,
	}
	if req.S > 0 && req.K > 0 {
		idx, err := s.session.IndexCtx(ctx, req.Circuit, req.L)
		if err != nil {
			return nil, err
		}
		opt := stateskip.DefaultOptions(req.S, req.K)
		opt.Workers = s.cfg.EngineWorkers
		red, err := stateskip.ReduceWithIndex(enc, idx, opt)
		if err != nil {
			return nil, err
		}
		r.S, r.K = req.S, req.K
		r.ReducedTSL = red.TSL()
		r.Improvement = red.Improvement()
	}
	return &Result{Encode: r}, nil
}

// coreFor materialises the request's netlist through the content-addressed
// cache: two requests describing the same circuit — byte-identical bench
// text or the same generator parameters — share one *Netlist, so the
// session's per-netlist ATPG tables are levelized once across tenants.
func (s *Server) coreFor(req *Request) (*netlist.Netlist, error) {
	core, err := req.materializeCore()
	if err != nil {
		return nil, err
	}
	h := core.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.cores.Get(h); ok {
		return cached, nil
	}
	s.cores.Add(h, core)
	return core, nil
}

func (s *Server) runATPG(ctx context.Context, req *Request) (*Result, error) {
	strategy, ok := atpg.ParseBacktrace(req.Backtrace)
	if !ok {
		return nil, fmt.Errorf("server: unknown backtrace %q (want scoap or multi)", req.Backtrace)
	}
	core, err := s.coreFor(req)
	if err != nil {
		return nil, err
	}
	st, err := core.Summary()
	if err != nil {
		return nil, err
	}
	u, res, err := s.session.ATPGOptsCtx(ctx, core, atpg.Options{
		FaultDrop: true, FillSeed: req.Seed,
		BacktrackLimit: req.Backtrack, Backtrace: strategy,
	})
	if err != nil {
		if res != nil { // partial progress from a cancelled/deadlined run
			return &Result{ATPG: atpgResult(st, u, res)}, err
		}
		return nil, err
	}
	return &Result{ATPG: atpgResult(st, u, res)}, nil
}

func atpgResult(st netlist.Stats, u *faultsim.Universe, res *atpg.Result) *ATPGResult {
	return &ATPGResult{
		Inputs: st.Inputs, Outputs: st.Outputs, Gates: st.Gates,
		Faults: len(u.Faults), Detected: res.Detected,
		Untestable: res.Untestable, Aborted: res.Aborted,
		Cubes: res.Cubes.Len(), Backtracks: res.Backtracks,
		Coverage: res.Coverage,
	}
}

func (s *Server) runCoverage(ctx context.Context, req *Request) (*Result, error) {
	core, err := s.coreFor(req)
	if err != nil {
		return nil, err
	}
	u := faultsim.NewUniverse(core)
	rnd := prng.New(req.Seed)
	patterns := make([][]uint8, req.Patterns)
	for i := range patterns {
		p := make([]uint8, len(core.Inputs))
		for b := range p {
			p[b] = rnd.Bit()
		}
		patterns[i] = p
	}
	detected, cov, err := faultsim.CoverageCtx(ctx, u, patterns, faultsim.Options{Workers: s.cfg.EngineWorkers})
	if err != nil {
		return nil, err
	}
	nd := 0
	for _, d := range detected {
		if d {
			nd++
		}
	}
	return &Result{Coverage: &CoverageResult{
		Faults: len(u.Faults), Detected: nd,
		Patterns: req.Patterns, Coverage: cov,
	}}, nil
}
