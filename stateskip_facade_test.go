package stateskiplfsr

import (
	"bytes"
	"strings"
	"testing"
)

const facadeSet = `width 32
1xx0xxxxxxxx1xxxxxxxxxxxxxxxxxx0
x1xxxxxx0xxxxxxxxx1xxxxxxxxxxxxx
xx11xxxxxxxxxxxx0xxxxxxxx1xxxxxx
xxxxx0xxxx1xxxxxxxxxxx0xxxxxxxxx
1xxxxxxxxxxxxxx1xxxxxxxxxxx0xxxx
xxxxxxx1xxxxx0xxxxxxxxxxxxxxx1xx
`

func TestFacadeEndToEnd(t *testing.T) {
	set, err := ReadCubes(strings.NewReader(facadeSet))
	if err != nil {
		t.Fatal(err)
	}
	enc, variant, err := EncodeAuto(14, set.Width, 4, 8, set)
	if err != nil {
		t.Fatal(err)
	}
	_ = variant
	if err := enc.Verify(); err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(enc, ReduceOptions(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := red.Verify(); err != nil {
		t.Fatal(err)
	}
	if red.TSL() > enc.TSL() {
		t.Errorf("reduction did not shorten: %d vs %d", red.TSL(), enc.TSL())
	}
	sched := NewSchedule(red)
	res, err := sched.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.VerifyCoverage(res); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCubeHelpers(t *testing.T) {
	c, err := ParseCube("1x0")
	if err != nil {
		t.Fatal(err)
	}
	if c.SpecifiedCount() != 2 {
		t.Errorf("spec = %d", c.SpecifiedCount())
	}
	l, err := NewLFSR(24)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 24 {
		t.Errorf("size = %d", l.Size())
	}
	// Round trip through the serialisation format.
	set, _ := ReadCubes(strings.NewReader(facadeSet))
	var buf bytes.Buffer
	if err := set.Write(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadCubes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != set.Len() {
		t.Error("round trip lost cubes")
	}
}
