package stateskiplfsr

// Godoc coverage gate: every exported identifier of the public facade
// (this package) and of internal/atpg — the package downstream ATPG users
// read first — must carry a doc comment. CI runs this test explicitly
// ("Godoc coverage" step), so an undocumented export fails the build, not
// just a review.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedPackages are the directories whose exported identifiers must
// be documented, relative to the repository root. internal/lint is held
// to the same bar as the facade: its analyzers document the invariants
// they enforce, so their godoc is part of the contract; internal/benchrun
// likewise, since its snapshot schema is what CI diffs run over run;
// internal/faultsim since the lane/arena/shard surface is what the ATPG
// pipeline and the coverage jobs program against.
var docCheckedPackages = []string{".", "internal/atpg", "internal/lint", "internal/benchrun", "internal/journal", "internal/faultsim"}

func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range docCheckedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for fname, file := range pkg.Files {
				checkFileDocs(t, fset, fname, file)
			}
		}
	}
}

// checkFileDocs walks one parsed file and reports every exported
// identifier that lacks a doc comment. For grouped const/var declarations
// a group-level comment covers all members (the standard godoc
// convention); struct fields accept either a leading doc or a trailing
// line comment.
func checkFileDocs(t *testing.T, fset *token.FileSet, fname string, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, kind, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					if st, ok := s.Type.(*ast.StructType); ok {
						checkFieldDocs(t, fset, s.Name.Name, st.Fields)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						if d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), "const/var", name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported (or
// the decl is a plain function); methods on unexported types are not part
// of the public surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// checkFieldDocs enforces docs on the exported fields of one exported
// struct type.
func checkFieldDocs(t *testing.T, fset *token.FileSet, typeName string, fields *ast.FieldList) {
	t.Helper()
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				t.Errorf("%s: exported field %s.%s has no doc comment",
					fset.Position(name.Pos()), typeName, name.Name)
			}
		}
	}
}
