// Package stateskiplfsr is the public facade of this repository: a Go
// reproduction of "State Skip LFSRs: Bridging the Gap between Test Data
// Compression and Test Set Embedding for IP Cores" (Tenentes, Kavousianos,
// Kalligeros — DATE 2008).
//
// The quick path from a pre-computed test set to a shortened test schedule:
//
//	set, _ := stateskiplfsr.ReadCubes(f)                 // or a benchprofile workload
//	enc, _, _ := stateskiplfsr.EncodeAuto(n, set.Width, 32, 200, set)
//	red, _ := stateskiplfsr.Reduce(enc, stateskiplfsr.ReduceOptions(10, 10))
//	fmt.Println(red.TSL(), red.Improvement())
//
// The packages under internal/ carry the implementation: gf2 (linear
// algebra), lfsr (registers + State Skip matrices), phaseshifter, scan,
// cube, encoder (window-based reseeding), stateskip (useful-segment
// selection), decompressor (the Fig. 3 architecture), hwcost, verilog,
// netlist/faultsim/atpg (the Atalanta-substitute ATPG flow), benchprofile
// (calibrated workloads), litdata and experiments (the paper's tables and
// figures). This file re-exports the surface a downstream user needs.
package stateskiplfsr

import (
	"io"

	"repro/internal/cube"
	"repro/internal/decompressor"
	"repro/internal/encoder"
	"repro/internal/lfsr"
	"repro/internal/phaseshifter"
	"repro/internal/stateskip"
)

// Core types, re-exported.
type (
	// Cube is a test vector over {0, 1, X}.
	Cube = cube.Cube
	// CubeSet is an ordered set of equal-width test cubes.
	CubeSet = cube.Set
	// LFSR is a linear feedback shift register with State Skip support.
	LFSR = lfsr.LFSR
	// PhaseShifter spreads LFSR cells onto scan chains.
	PhaseShifter = phaseshifter.PhaseShifter
	// EncoderConfig configures window-based reseeding.
	EncoderConfig = encoder.Config
	// EncoderTables are the shared symbolic tables of one decompressor,
	// reusable across encodings via EncoderConfig.Tables.
	EncoderTables = encoder.Tables
	// EncoderTablesCache memoizes EncoderTables per decompressor
	// configuration for EncodeAutoCached.
	EncoderTablesCache = encoder.TablesCache
	// Encoding is a computed set of seeds.
	Encoding = encoder.Encoding
	// Reduction is the outcome of State Skip useful-segment selection.
	Reduction = stateskip.Reduction
	// Schedule programs the Fig. 3 decompression architecture.
	Schedule = decompressor.Schedule
)

// ReadCubes parses a test set in the simple "width W" + 0/1/x-lines format.
func ReadCubes(r io.Reader) (*CubeSet, error) { return cube.Read(r) }

// ParseCube parses a single 0/1/x cube literal.
func ParseCube(s string) (Cube, error) { return cube.Parse(s) }

// NewLFSR builds an LFSR of the given size from the curated primitive
// polynomial table (Fibonacci form).
func NewLFSR(size int) (*LFSR, error) { return lfsr.NewStandard(lfsr.Fibonacci, size) }

// Encode compresses a cube set with an explicit decompressor configuration.
func Encode(cfg EncoderConfig, set *CubeSet) (*Encoding, error) { return encoder.Encode(cfg, set) }

// EncodeAuto compresses a cube set with the standard decompressor (LFSR
// size n, the given scan-chain count, window length L), retrying
// phase-shifter design variants when the test set is structurally
// unencodable under one (see phaseshifter.NewSeparatedVariant). It returns
// the encoding and the variant used.
func EncodeAuto(n, width, chains, L int, set *CubeSet) (*Encoding, uint64, error) {
	return encoder.EncodeAuto(n, width, chains, L, set)
}

// NewEncoderTablesCache returns an empty shared-tables cache for
// EncodeAutoCached.
func NewEncoderTablesCache() *EncoderTablesCache { return encoder.NewTablesCache() }

// EncodeAutoCached is EncodeAuto backed by a shared-tables cache: repeated
// encodes of the same decompressor configuration serve the symbolic tables
// of every variant they re-try from the cache instead of rebuilding them.
// The encodings are identical to EncodeAuto's.
func EncodeAutoCached(n, width, chains, L int, set *CubeSet, cache *EncoderTablesCache) (*Encoding, uint64, error) {
	return encoder.EncodeAutoCached(n, width, chains, L, set, 0, cache)
}

// ReduceOptions returns the standard State Skip options for segment size S
// and speedup factor k.
func ReduceOptions(s, k int) stateskip.Options { return stateskip.DefaultOptions(s, k) }

// Reduce shortens an encoding's test sequence with a State Skip LFSR:
// fortuitous-embedding analysis, useful-segment selection, seed grouping.
func Reduce(enc *Encoding, opt stateskip.Options) (*Reduction, error) {
	return stateskip.Reduce(enc, opt)
}

// NewSchedule programs the decompression architecture of the paper's
// Fig. 3 for one reduced encoding.
func NewSchedule(red *Reduction) *Schedule { return decompressor.NewSchedule(red) }
