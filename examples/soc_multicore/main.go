// soc_multicore reproduces the paper's §4 closing experiment: a
// hypothetical SoC integrating all five ISCAS'89 cores, tested by ONE
// shared State Skip decompressor (LFSR, skip circuit, phase shifter,
// counters) plus one small Mode Select unit per core.
//
//	go run ./examples/soc_multicore            (fast, reduced workloads)
//	STATESKIP_SCALE=paper go run ./examples/soc_multicore
package main

import (
	"fmt"
	"log"
	"os"

	stateskiplfsr "repro"
	"repro/internal/benchprofile"
	"repro/internal/decompressor"
	"repro/internal/verilog"
)

func main() {
	scale := benchprofile.ScaleCI
	L, S, k := 16, 4, 8
	if os.Getenv("STATESKIP_SCALE") == "paper" {
		scale = benchprofile.ScalePaper
		L, S, k = 200, 10, 10 // the paper's SoC parameters
	}
	fmt.Printf("five-core SoC, %s scale, L=%d S=%d k=%d\n\n", scale, L, S, k)

	var (
		sharedGE  float64
		totalMode float64
		totalTSL  int
	)
	for _, p := range benchprofile.All(scale) {
		set := p.Generate()
		enc, _, err := stateskiplfsr.EncodeAuto(p.LFSRSize, p.Width, p.Chains, L, set)
		if err != nil {
			log.Fatal(err)
		}
		red, err := stateskiplfsr.Reduce(enc, stateskiplfsr.ReduceOptions(S, k))
		if err != nil {
			log.Fatal(err)
		}
		sched := decompressor.NewSchedule(red)
		cost := sched.Cost()
		fmt.Printf("%-8s n=%-3d seeds=%-4d TDV=%-6d TSL %6d -> %5d (%.0f%%)  ModeSelect %4.0f GE\n",
			p.Name, p.LFSRSize, len(enc.Seeds), enc.TDV(),
			enc.TSL(), red.TSL(), red.Improvement()*100, cost.ModeSelect)
		totalMode += cost.ModeSelect
		totalTSL += red.TSL()
		// The shared datapath must fit the largest core's register and
		// phase shifter; everything but Mode Select is reused (§3.3).
		if g := cost.SharedGE(); g > sharedGE {
			sharedGE = g
		}

		// Emit this core's Mode Select RTL next to the shared datapath.
		_ = verilog.ModeSelect(red, p.Name) // rendered below for one core
	}
	fmt.Printf("\nshared decompressor (largest core): %.0f GE\n", sharedGE)
	fmt.Printf("per-core Mode Select total:          %.0f GE\n", totalMode)
	fmt.Printf("SoC test hardware total:             %.0f GE, SoC TSL %d vectors\n",
		sharedGE+totalMode, totalTSL)
	fmt.Println("\n(paper: Mode Select 107–373 GE per core; whole decompressor ≈ 6.6% of SoC area)")
}
