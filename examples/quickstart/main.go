// Quickstart: compress a small pre-computed test set with window-based
// LFSR reseeding, then shorten the test sequence with a State Skip LFSR.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	stateskiplfsr "repro"
)

// A toy IP core: 48 scan cells, a vendor-supplied test set of ten cubes.
const testSet = `width 48
1xx0xxxxxxxx1xxxxxxxxxxxxxxxxxx0xxxxxxxxxxxxxxxx
x1xxxxxx0xxxxxxxxx1xxxxxxxxxxxxxxxxxxx1xxxxxxxxx
xx11xxxxxxxxxxxx0xxxxxxxx1xxxxxxxxxxxxxxxxxxxx0x
xxxxx0xxxx1xxxxxxxxxxx0xxxxxxxxxxx1xxxxxxxxxxxxx
1xxxxxxxxxxxxxx1xxxxxxxxxxx0xxxxxxxxxx0xxxxxxxxx
xxxxxxx1xxxxx0xxxxxxxxxxxxxxx1xxxxxxxxxxxx1xxxxx
xxx1xxxxxxxxxxxxxxxx1xxxxxxxxxxx0xxxxxxxxxxxx1xx
xxxxxxxxxx0xxxxxxxxxxxxx1xxxxxxxxxxxxxxx0xxxxxx1
x0xxxxxxxxxxxxxx1xxxxxxxxxxxxxxxxxxxx1xxxxxxx0xx
xxxxxx1xxxxxxxxxxxxxxxxxxxx1xxxxxxx0xxxxxxxxxxxx
`

func main() {
	set, err := stateskiplfsr.ReadCubes(strings.NewReader(testSet))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d cubes, width %d, s_max %d\n",
		set.Len(), set.Width, set.MaxSpecified())

	// Encode into seeds of a 16-bit LFSR feeding 4 scan chains, each seed
	// expanding into a window of L=12 vectors.
	const n, chains, L = 16, 4, 12
	enc, variant, err := stateskiplfsr.EncodeAuto(n, set.Width, chains, L, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded: %d seeds (phase-shifter variant %d)\n", len(enc.Seeds), variant)
	fmt.Printf("test data volume: %d bits; full-window sequence: %d vectors\n", enc.TDV(), enc.TSL())

	// Shorten the sequence with a State Skip LFSR: segments of S=3
	// vectors, useless segments traversed k=8 states per clock.
	red, err := stateskiplfsr.Reduce(enc, stateskiplfsr.ReduceOptions(3, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state skip: %d vectors (%.0f%% shorter), %d useful segments\n",
		red.TSL(), red.Improvement()*100, red.TotalUseful())

	// Program the Fig. 3 decompression architecture and prove every cube
	// is still applied.
	sched := stateskiplfsr.NewSchedule(red)
	res, err := sched.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.VerifyCoverage(res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompressor run: %d clocks (%d in skip mode), all %d cubes applied ✓\n",
		res.Clocks, res.SkipClocks, set.Len())
}
