// ip_core_flow demonstrates the complete IP-core test flow the paper
// motivates, end to end and with no stubbed step:
//
//  1. a gate-level core is generated (standing in for the vendor's RTL);
//
//  2. a PODEM ATPG produces the pre-computed test cubes the vendor would
//     ship (with don't-cares — the asset reseeding exploits);
//
//  3. an independent fault simulator confirms the cubes' fault coverage;
//
//  4. the system integrator, who sees only the cubes, compresses them into
//     LFSR seeds with window-based reseeding;
//
//  5. a State Skip LFSR shortens the test sequence;
//
//  6. the Fig. 3 decompressor is simulated clock by clock, and the applied
//     vectors are fault-simulated to show the compressed, shortened test
//     still reaches the ATPG's coverage.
//
//     go run ./examples/ip_core_flow [-workers N] [-backtrace scoap|multi]
//
// -workers bounds the goroutines of the ATPG pipeline and the fault
// simulator (0 = all CPUs); cubes, patterns and coverage are identical
// for any value. -backtrace selects the PODEM decision heuristic: the
// classic single-objective SCOAP backtrace, or the FAN/SOCRATES-style
// multiple backtrace (fewer backtracks, equally valid cubes).
package main

import (
	"flag"
	"fmt"
	"log"

	stateskiplfsr "repro"
	"repro/internal/atpg"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func main() {
	workers := flag.Int("workers", 0, "worker goroutines for ATPG and fault simulation (0 = all CPUs)")
	backtrace := flag.String("backtrace", "scoap", "PODEM backtrace strategy: scoap or multi")
	flag.Parse()
	strategy, ok := atpg.ParseBacktrace(*backtrace)
	if !ok {
		log.Fatalf("unknown -backtrace %q (want scoap or multi)", *backtrace)
	}

	// 1. The "vendor's" core: an 80-input scan circuit.
	core, err := netlist.Random(netlist.RandomConfig{
		Inputs: 80, Outputs: 48, Gates: 260, MaxFan: 3, Seed: 2008,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := core.Summary()
	fmt.Printf("core: %d inputs, %d outputs, %d gates, %d levels\n",
		st.Inputs, st.Outputs, st.Gates, st.Levels)

	// 2. ATPG: collapsed stuck-at faults, PODEM with fault dropping.
	universe := faultsim.NewUniverse(core)
	res, err := atpg.RunAll(universe, atpg.Options{FaultDrop: true, FillSeed: 1, Workers: *workers, Backtrace: strategy})
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Cubes.Summary()
	fmt.Printf("ATPG (%v backtrace, %d backtracks): %d faults (%d proven redundant, %d aborted), %d cubes,\n",
		strategy, res.Backtracks, len(universe.Faults), res.Untestable, res.Aborted, res.Cubes.Len())
	fmt.Printf("      coverage of testable faults %.1f%%, mean %.1f specified bits (s_max %d of %d)\n",
		res.Coverage*100, sum.MeanSpecified, sum.MaxSpecified, sum.Width)

	// 3. Independent verification of the shipped patterns.
	_, cov, err := faultsim.CoverageOpts(universe, res.Patterns, faultsim.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault simulation: shipped set covers %.1f%% of all faults (random circuits are redundancy-heavy)\n", cov*100)

	// 4. The integrator's side: compress the cubes. The LFSR must give
	// s_max some head room (Koenemann's margin). The shared-tables cache
	// keeps the symbolic simulation of each phase-shifter variant tried at
	// this configuration, so re-encoding the same geometry (e.g. after
	// regenerating cubes, or sweeping the fill seed) pays for it once.
	n := sum.MaxSpecified + 12
	const chains, L = 8, 24
	encTables := stateskiplfsr.NewEncoderTablesCache()
	enc, variant, err := stateskiplfsr.EncodeAutoCached(n, sum.Width, chains, L, res.Cubes, encTables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reseeding: n=%d, %d seeds (variant %d), TDV %d bits vs %d raw bits (%.1fx)\n",
		n, len(enc.Seeds), variant, enc.TDV(), res.Cubes.Len()*sum.Width,
		float64(res.Cubes.Len()*sum.Width)/float64(enc.TDV()))
	fmt.Printf("full-window test sequence: %d vectors (%d consistency checks, tables built in %.1fms)\n",
		enc.TSL(), enc.ChecksPerformed, enc.TableBuildTime.Seconds()*1000)

	// 5. State Skip reduction.
	red, err := stateskiplfsr.Reduce(enc, stateskiplfsr.ReduceOptions(4, 12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state skip (S=4, k=12): %d vectors, %.0f%% shorter\n",
		red.TSL(), red.Improvement()*100)

	// 6. Decompressor simulation + fault simulation of what the CUT saw.
	sched := stateskiplfsr.NewSchedule(red)
	run, err := sched.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.VerifyCoverage(run); err != nil {
		log.Fatal(err)
	}
	applied := make([][]uint8, len(run.Vectors))
	for i, v := range run.Vectors {
		p := make([]uint8, sum.Width)
		for j := 0; j < sum.Width; j++ {
			p[j] = v.Bit(j)
		}
		applied[i] = p
	}
	_, finalCov, err := faultsim.CoverageOpts(universe, applied, faultsim.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompressed+shortened sequence: %d vectors, fault coverage %.1f%%\n",
		len(applied), finalCov*100)
	if finalCov < cov {
		fmt.Println("note: coverage below the shipped set — deterministic cubes are all applied; " +
			"the difference is fortuitous detection by random fill, which the shorter sequence trades away")
	}
}
