// verilog_export emits the synthesisable RTL of a complete State Skip
// decompressor front end for one core: the two-mode LFSR, the phase
// shifter, and the core's Mode Select unit derived from an actual encoding.
//
//	go run ./examples/verilog_export > decompressor.v
package main

import (
	"fmt"
	"log"
	"os"

	stateskiplfsr "repro"
	"repro/internal/benchprofile"
	"repro/internal/verilog"
)

func main() {
	const L, S, k = 16, 4, 8
	p, err := benchprofile.ByName("s13207", benchprofile.ScaleCI)
	if err != nil {
		log.Fatal(err)
	}
	set := p.Generate()
	enc, _, err := stateskiplfsr.EncodeAuto(p.LFSRSize, p.Width, p.Chains, L, set)
	if err != nil {
		log.Fatal(err)
	}
	red, err := stateskiplfsr.Reduce(enc, stateskiplfsr.ReduceOptions(S, k))
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	fmt.Fprintf(w, "// State Skip decompressor for %s: n=%d, %d chains, L=%d, S=%d, k=%d\n",
		p.Name, p.LFSRSize, p.Chains, L, S, k)
	fmt.Fprintf(w, "// %d seeds, TSL %d -> %d vectors (%.0f%% shorter)\n\n",
		len(enc.Seeds), enc.TSL(), red.TSL(), red.Improvement()*100)
	fmt.Fprintln(w, verilog.StateSkipLFSR(enc.Cfg.LFSR, k))
	fmt.Fprintln(w, verilog.PhaseShifter(enc.Cfg.PS))
	fmt.Fprintln(w, verilog.ModeSelect(red, p.Name))
	fmt.Fprintln(w, verilog.DecompressorTop(red, p.Name))
}
