package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemon is one running stateskipd child process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:PORT
}

// startDaemon launches the built binary on an ephemeral port with the
// given journal directory and parses the real address off its stderr.
func startDaemon(t *testing.T, bin, journalDir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-journal", journalDir,
		"-job-workers", "2",
		"-queue", "64",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("StderrPipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if sp := strings.IndexByte(rest, ' '); sp > 0 {
					rest = rest[:sp]
				}
				addrCh <- rest
				break
			}
		}
		io.Copy(io.Discard, stderr) //nolint:errcheck // keep the pipe drained
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, base: "http://" + addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		t.Fatalf("daemon never announced its address")
		return nil
	}
}

func (d *daemon) post(t *testing.T, req map[string]any) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(d.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
	return resp.StatusCode, out
}

func (d *daemon) waitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", d.base)
}

// TestKillStormRecovery is the full crash-chaos acceptance path against a
// real process: build the binary, storm it with keyed jobs, SIGKILL it
// mid-storm, restart it on the same journal, and require every
// acknowledged job to reach a terminal state exactly once — resubmitted
// keys dedup onto the recovered jobs instead of forking duplicates.
func TestKillStormRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: builds and SIGKILLs a real daemon")
	}
	bin := filepath.Join(t.TempDir(), "stateskipd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	jdir := t.TempDir()

	d1 := startDaemon(t, bin, jdir)
	d1.waitReady(t)

	// The storm: ATPG jobs sized to outlive the kill, all keyed.
	const storm = 10
	keys := make([]string, storm)
	ackedID := make(map[string]string, storm)
	for i := range keys {
		keys[i] = fmt.Sprintf("kill-storm-%02d", i)
		code, st := d1.post(t, map[string]any{
			"kind": "atpg", "inputs": 40, "outputs": 12, "gates": 400,
			"seed": i + 1, "backtrack": 50,
			"idempotency_key": keys[i],
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, code, st)
		}
		id, _ := st["id"].(string)
		if id == "" {
			t.Fatalf("submit %d: no job ID in %v", i, st)
		}
		ackedID[keys[i]] = id
	}

	// SIGKILL mid-storm: no drain, no journal close, no goodbyes.
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	d1.cmd.Wait() //nolint:errcheck // the kill is the expected exit

	d2 := startDaemon(t, bin, jdir)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		d2.cmd.Wait()                          //nolint:errcheck
	}()
	d2.waitReady(t)

	// Clients that lost their acks retry; every key must dedup onto the
	// job the first process acknowledged.
	for _, key := range keys {
		code, st := d2.post(t, map[string]any{
			"kind": "atpg", "inputs": 40, "outputs": 12, "gates": 400,
			"backtrack": 50, "idempotency_key": key,
		})
		if code != http.StatusAccepted {
			t.Fatalf("resubmit %s: %d %v", key, code, st)
		}
		if deduped, _ := st["deduped"].(bool); !deduped {
			t.Fatalf("resubmit %s forked a new job: %v", key, st)
		}
		if id, _ := st["id"].(string); id != ackedID[key] {
			t.Fatalf("key %s: acked as %s, recovered as %s", key, ackedID[key], id)
		}
	}

	// Exactly-once: the recovered daemon ends with exactly the acked jobs,
	// every one terminal done.
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(d2.base + "/jobs")
		if err != nil {
			t.Fatalf("GET /jobs: %v", err)
		}
		var jobs []map[string]any
		json.NewDecoder(resp.Body).Decode(&jobs) //nolint:errcheck
		resp.Body.Close()
		if len(jobs) != storm {
			t.Fatalf("recovered daemon has %d jobs, want exactly %d: %v", len(jobs), storm, jobs)
		}
		pending := 0
		for _, j := range jobs {
			switch j["state"] {
			case "done":
			case "failed", "canceled":
				t.Fatalf("job %v recovered into %v", j["id"], j["state"])
			default:
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs still pending at deadline: %v", pending, jobs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The journal metrics must show the recovery actually happened.
	resp, err := http.Get(d2.base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m struct {
		Journal struct {
			Enabled  bool  `json:"enabled"`
			Replayed int64 `json:"replayed_jobs"`
		} `json:"journal"`
	}
	json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck
	resp.Body.Close()
	if !m.Journal.Enabled || m.Journal.Replayed < 1 {
		t.Fatalf("metrics do not reflect a journal recovery: %+v", m.Journal)
	}
}
