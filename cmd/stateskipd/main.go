// Command stateskipd serves the repository's encode / ATPG / coverage
// flows as an HTTP job service: submit jobs, poll their status, fetch
// results, cancel them — all over one shared artefact cache, so
// concurrent tenants asking for the same circuit pay for it once.
//
// Usage:
//
//	stateskipd [-addr :8351] [-scale ci|paper] [-job-workers N]
//	           [-workers N] [-queue N] [-timeout 5m] [-retries N]
//	           [-max-cached N] [-drain 10s] [-journal DIR]
//	           [-max-body BYTES] [-max-gates N] [-max-inputs N]
//
// API (see internal/server for the JSON shapes):
//
//	POST   /jobs            submit  {"kind":"encode","circuit":"s13207","L":16}
//	GET    /jobs/{id}       poll status
//	GET    /jobs/{id}/result fetch result (202 + Retry-After until terminal)
//	DELETE /jobs/{id}       cancel
//	GET    /metrics         queue, job, cache and journal counters
//	GET    /healthz         liveness (200 while the process serves)
//	GET    /readyz          readiness (503 while replaying or draining)
//
// With -journal DIR every acknowledged submission is fsynced to an
// append-only log before the 202; after a crash (SIGKILL, OOM, power
// loss) the next start replays the directory, restores finished jobs'
// results and re-runs interrupted ones — ATPG jobs continue from their
// last durable checkpoint. Requests may carry an "idempotency_key" so a
// client that lost its 202 can resubmit without duplicating work.
//
// A full queue answers 503 with Retry-After — clients are expected to
// back off and resubmit. Bodies over -max-body get 413; netlists over
// the -max-* caps get 422. SIGINT/SIGTERM starts a graceful shutdown:
// the listener and queue close, running jobs drain until -drain expires,
// then everything still in flight is cancelled cooperatively.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/benchprofile"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stateskipd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stateskipd", flag.ContinueOnError)
	addr := fs.String("addr", ":8351", "listen address (use :0 for an ephemeral port)")
	scaleFlag := fs.String("scale", "ci", "benchmark scale: ci or paper")
	jobWorkers := fs.Int("job-workers", 2, "jobs run concurrently")
	workers := fs.Int("workers", 0, "engine goroutines per job (0 = all CPUs)")
	laneWords := fs.Int("lanewords", 0, "default fault-simulator lane words: 64×N patterns per sweep (0 = 1 word; jobs override via lane_words)")
	queue := fs.Int("queue", 64, "queued-job backlog bound")
	timeout := fs.Duration("timeout", 0, "default per-job deadline (0 = none)")
	retries := fs.Int("retries", 2, "retries per failed job attempt")
	maxCached := fs.Int("max-cached", 256, "artefact-cache entries per cache (0 = unbounded)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	journalDir := fs.String("journal", "", "durable job-journal directory (empty = no journal)")
	maxBody := fs.Int64("max-body", 8<<20, "request-body byte cap (413 past it)")
	maxGates := fs.Int("max-gates", 0, "client-netlist gate cap (0 = unlimited)")
	maxInputs := fs.Int("max-inputs", 0, "client-netlist input cap (0 = unlimited)")
	maxLevels := fs.Int("max-levels", 0, "client-netlist level cap (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := benchprofile.ScaleCI
	if *scaleFlag == "paper" {
		scale = benchprofile.ScalePaper
	}

	srv, err := server.New(server.Config{
		Scale:          scale,
		JobWorkers:     *jobWorkers,
		EngineWorkers:  *workers,
		LaneWords:      *laneWords,
		QueueSize:      *queue,
		DefaultTimeout: *timeout,
		MaxRetries:     *retries,
		MaxCached:      *maxCached,
		JournalDir:     *journalDir,
		MaxBodyBytes:   *maxBody,
		MaxGates:       *maxGates,
		MaxInputs:      *maxInputs,
		MaxLevels:      *maxLevels,
		Backoff:        server.Backoff{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Factor: 2, Jitter: 0.5},
	})
	if err != nil {
		return err
	}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works and
	// the real address is printed — the crash-recovery integration test
	// parses it to find the daemon.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// SIGINT/SIGTERM trigger the graceful path; a second signal after
	// stop() has run falls through to the default handler (hard exit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "stateskipd: listening on %s (scale=%s, queue=%d, job-workers=%d, journal=%q)\n",
			ln.Addr(), *scaleFlag, *queue, *jobWorkers, *journalDir)
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C hard-exits
		fmt.Fprintf(os.Stderr, "stateskipd: shutting down (drain %s; ^C again to force)\n", *drain)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpErr := httpSrv.Shutdown(drainCtx)
	jobErr := srv.Shutdown(drainCtx)
	if jobErr != nil {
		fmt.Fprintln(os.Stderr, "stateskipd: drain deadline passed, jobs cancelled")
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	return nil
}
