// Command stateskip regenerates the paper's experiments and exposes the
// library's flows (generate → encode → reduce → simulate → emit Verilog)
// from the command line.
//
// Usage:
//
//	stateskip [-scale=ci|paper] [-workers=N] table1|table2|table3|table4|fig4|hw|soc|all
//	stateskip [-scale=...] gen -circuit s13207 -o cubes.txt
//	stateskip [-workers=N] atpg [-bench core.bench] [-backtrack N] [-backtrace scoap|multi] -o cubes.txt
//	stateskip encode -circuit s13207 [-scale=...] -L 200
//	stateskip verilog -n 24 -k 10 -o lfsr.v
//
// The paper scale reruns the full DATE'08 evaluation and takes minutes;
// the default CI scale runs in seconds. -workers bounds the goroutines the
// experiment drivers, the ATPG pipeline and the fault simulator fan out
// across (0, the default, uses every CPU; results are identical for any
// value). -lanewords widens the fault simulator to that many 64-bit words
// of pattern lanes per sweep — 64×N patterns per batch; results are
// bit-identical for any width. -cpuprofile/-memprofile write
// runtime/pprof profiles of any
// subcommand, so the ATPG and encoder hot paths can be measured directly:
//
//	stateskip -cpuprofile atpg.pprof atpg -gates 4000
//	go tool pprof atpg.pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/atpg"
	"repro/internal/benchprofile"
	"repro/internal/cube"
	"repro/internal/encoder"
	"repro/internal/experiments"
	"repro/internal/lfsr"
	"repro/internal/netlist"
	"repro/internal/phaseshifter"
	"repro/internal/stateskip"
	"repro/internal/verilog"
)

// encTables memoizes the encoder's shared symbolic tables for the lifetime
// of the process. A single CLI invocation encodes once, so the cache pays
// off when this binary grows multi-encode subcommands (or is driven as a
// library); today it mainly routes `encode` through the same
// EncodeAutoCached path the experiment drivers use.
var encTables = encoder.NewTablesCache()

func main() {
	// First ^C cancels the context: every engine (ATPG pipeline, encoder
	// candidate scan, fault-simulator pool) polls it cooperatively, so the
	// subcommand stops cleanly, reports partial progress where it has any,
	// and exits non-zero. Once the context fires, stop() unregisters the
	// handler, so a second ^C hard-exits through Go's default behaviour.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stateskip:", err)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "stateskip: interrupted — partial results above, if any")
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stateskip", flag.ContinueOnError)
	scaleFlag := fs.String("scale", scaleFromEnv(), "experiment scale: ci or paper")
	workersFlag := fs.Int("workers", 0, "worker goroutines for experiments, ATPG and fault simulation (0 = all CPUs)")
	laneFlag := fs.Int("lanewords", 0, "fault-simulator lane words: 64×N patterns per sweep (0 = 1 word; results identical for any width)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the subcommand to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file when the subcommand finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("missing subcommand (table1|table2|table3|table4|fig4|hw|soc|all|gen|encode|atpg|verilog)")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeMemProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "stateskip: memprofile:", err)
			}
		}()
	}
	scale := benchprofile.ScaleCI
	if *scaleFlag == "paper" {
		scale = benchprofile.ScalePaper
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "table1", "table2", "table3", "table4", "fig4", "hw", "soc", "all":
		return runExperiments(ctx, scale, *workersFlag, *laneFlag, cmd)
	case "gen":
		return runGen(scale, rest)
	case "encode":
		return runEncode(ctx, scale, rest)
	case "atpg":
		return runATPG(ctx, scale, *workersFlag, *laneFlag, rest)
	case "verilog":
		return runVerilog(rest)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// writeMemProfile snapshots the heap after a final GC, so the profile
// reflects live allocations rather than garbage.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func scaleFromEnv() string {
	if os.Getenv("STATESKIP_SCALE") == "paper" {
		return "paper"
	}
	return "ci"
}

func runExperiments(ctx context.Context, scale benchprofile.Scale, workers, laneWords int, which string) error {
	s := experiments.NewSession(scale)
	s.Workers = workers
	s.LaneWords = laneWords
	s.Ctx = ctx // ^C aborts the drivers mid-sweep (see main)
	start := time.Now()
	do := func(name string, f func() error) error {
		if which != "all" && which != name {
			return nil
		}
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", name, time.Since(t0).Seconds())
		return nil
	}
	if err := do("table1", func() error {
		rows, err := s.Table1()
		if err != nil {
			return err
		}
		fmt.Println(s.Table1Markdown(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := do("table2", func() error {
		rows, err := s.Table2()
		if err != nil {
			return err
		}
		fmt.Println(s.Table2Markdown(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := do("fig4", func() error {
		bars, curves, err := s.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(s.Fig4Markdown(bars, curves))
		return nil
	}); err != nil {
		return err
	}
	if err := do("table3", func() error {
		rows, err := s.Table3()
		if err != nil {
			return err
		}
		fmt.Println(s.Table3Markdown(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := do("table4", func() error {
		rows, err := s.Table4()
		if err != nil {
			return err
		}
		fmt.Println(s.Table4Markdown(rows))
		return nil
	}); err != nil {
		return err
	}
	if err := do("hw", func() error {
		rep, err := s.HWOverhead()
		if err != nil {
			return err
		}
		fmt.Println(s.HWMarkdown(rep))
		return nil
	}); err != nil {
		return err
	}
	if err := do("soc", func() error {
		rep, err := s.SoC()
		if err != nil {
			return err
		}
		fmt.Println(s.SoCMarkdown(rep))
		return nil
	}); err != nil {
		return err
	}
	if which == "all" {
		fmt.Printf("[all experiments done in %.1fs]\n", time.Since(start).Seconds())
	}
	return nil
}

func runGen(scale benchprofile.Scale, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	circuit := fs.String("circuit", "s13207", "profile name")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := benchprofile.ByName(*circuit, scale)
	if err != nil {
		return err
	}
	set := p.Generate()
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return set.Write(w)
}

func runEncode(ctx context.Context, scale benchprofile.Scale, args []string) error {
	fs := flag.NewFlagSet("encode", flag.ContinueOnError)
	circuit := fs.String("circuit", "s13207", "profile name")
	L := fs.Int("L", 0, "window length (default: scale-dependent)")
	S := fs.Int("S", 0, "segment size (default: scale-dependent)")
	k := fs.Int("k", 10, "State Skip speedup factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *L == 0 {
		if scale == benchprofile.ScalePaper {
			*L = 200
		} else {
			*L = 16
		}
	}
	if *S == 0 {
		if scale == benchprofile.ScalePaper {
			*S = 10
		} else {
			*S = 4
		}
	}
	p, err := benchprofile.ByName(*circuit, scale)
	if err != nil {
		return err
	}
	set := p.Generate()
	st := set.Summary()
	fmt.Printf("%s: %d cubes, width %d, s_max %d, %d specified bits\n",
		*circuit, st.Cubes, st.Width, st.MaxSpecified, st.TotalSpecified)
	t0 := time.Now()
	enc, variant, err := encoder.EncodeAutoCtx(ctx, p.LFSRSize, p.Width, p.Chains, *L, set, 0, encTables)
	if err != nil {
		return err
	}
	fmt.Printf("encoded: %d seeds (PS variant %d), TDV %d bits, full-window TSL %d vectors (%.1fs)\n",
		len(enc.Seeds), variant, enc.TDV(), enc.TSL(), time.Since(t0).Seconds())
	fmt.Printf("encoder effort: %d consistency checks, symbolic tables built in %.1fms (shared via cache)\n",
		enc.ChecksPerformed, enc.TableBuildTime.Seconds()*1000)
	red, err := stateskip.Reduce(enc, stateskip.DefaultOptions(*S, *k))
	if err != nil {
		return err
	}
	fmt.Printf("state skip (S=%d, k=%d): TSL %d vectors, improvement %.1f%%, %d/%d useful segments\n",
		*S, *k, red.TSL(), red.Improvement()*100, red.TotalUseful(), len(enc.Seeds)*red.Segs)
	return nil
}

// runATPG generates test cubes for a gate-level core: either a .bench
// netlist supplied with -bench, or a deterministic random circuit.
func runATPG(ctx context.Context, scale benchprofile.Scale, workers, laneWords int, args []string) error {
	fs := flag.NewFlagSet("atpg", flag.ContinueOnError)
	bench := fs.String("bench", "", ".bench netlist (default: generated random core)")
	inputs := fs.Int("inputs", 80, "inputs of the generated core")
	gates := fs.Int("gates", 260, "gates of the generated core")
	outputs := fs.Int("outputs", 48, "outputs of the generated core")
	seed := fs.Uint64("seed", 2008, "generation seed")
	backtrack := fs.Int("backtrack", 0, "PODEM backtrack limit (0 = generator default)")
	backtrace := fs.String("backtrace", "scoap", "PODEM backtrace strategy: scoap (classic single-objective) or multi (FAN/SOCRATES multiple backtrace)")
	out := fs.String("o", "", "cube output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strategy, ok := atpg.ParseBacktrace(*backtrace)
	if !ok {
		return fmt.Errorf("unknown -backtrace %q (want scoap or multi)", *backtrace)
	}
	var core *netlist.Netlist
	if *bench != "" {
		f, err := os.Open(*bench)
		if err != nil {
			return err
		}
		defer f.Close()
		core, err = netlist.ReadBench(f)
		if err != nil {
			return err
		}
	} else {
		var err error
		core, err = netlist.Random(netlist.RandomConfig{
			Inputs: *inputs, Outputs: *outputs, Gates: *gates, MaxFan: 3, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	st, err := core.Summary()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "core: %d inputs, %d outputs, %d gates, %d levels\n",
		st.Inputs, st.Outputs, st.Gates, st.Levels)
	s := experiments.NewSession(scale)
	s.Workers = workers
	s.LaneWords = laneWords
	writeCubes := func(cs *cube.Set) error {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return cs.Write(w)
	}
	u, res, err := s.ATPGOptsCtx(ctx, core, atpg.Options{
		FaultDrop: true, FillSeed: *seed, BacktrackLimit: *backtrack, Backtrace: strategy,
	})
	if err != nil {
		if res != nil { // interrupted mid-run: report + keep the partial progress
			fmt.Fprintf(os.Stderr, "ATPG interrupted: %d/%d faults processed, %d cubes, coverage so far %.1f%%\n",
				res.Detected+res.Untestable+res.Aborted, len(u.Faults), res.Cubes.Len(), res.Coverage*100)
			if werr := writeCubes(res.Cubes); werr != nil {
				return fmt.Errorf("%w (and writing partial cubes failed: %v)", err, werr)
			}
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "ATPG (%v backtrace): %d faults, %d untestable, %d aborted, %d cubes, %d backtracks, coverage %.1f%%\n",
		strategy, len(u.Faults), res.Untestable, res.Aborted, res.Cubes.Len(), res.Backtracks, res.Coverage*100)
	return writeCubes(res.Cubes)
}

func runVerilog(args []string) error {
	fs := flag.NewFlagSet("verilog", flag.ContinueOnError)
	n := fs.Int("n", 24, "LFSR size")
	k := fs.Int("k", 10, "State Skip speedup factor")
	chains := fs.Int("chains", 8, "phase shifter outputs")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := lfsr.NewStandard(lfsr.Fibonacci, *n)
	if err != nil {
		return err
	}
	// Pick a separation window the register's state space can support:
	// small demo registers cannot keep many channels phase-separated over
	// long windows.
	sep := 1024
	if *n < 22 {
		if limit := (1 << uint(*n)) / (8 * *chains); limit < sep {
			sep = limit
		}
		if sep < 8 {
			sep = 8
		}
	}
	ps, err := phaseshifter.NewSeparated(l, *chains, sep)
	if err != nil {
		return err
	}
	src := verilog.StateSkipLFSR(l, *k) + "\n" + verilog.PhaseShifter(ps)
	if *out == "" {
		fmt.Println(src)
		return nil
	}
	return os.WriteFile(*out, []byte(src), 0o644)
}
