// Command stateskip-lint runs the repository's custom static-analysis
// suite (internal/lint): detrange, frozentables, lockcheck and
// nodetsource — the machine-checked determinism and concurrency
// invariants behind the bit-identical-for-any-Workers guarantee.
//
// Usage:
//
//	stateskip-lint [-json] [packages]
//
// Packages default to ./... relative to the current module. The exit
// status is 1 when any finding is reported, so CI can gate on it. With
// -json, findings are emitted as a JSON array of
// {file, line, col, analyzer, message} objects for machine consumers
// (CI annotations, the planned stateskipd service).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stateskip-lint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
