// Command stateskip-bench is the reproducible paper-run harness: it runs
// an experiments.json grid through the experiments.Session pipeline,
// writes a timestamped run directory with per-cell CSVs and logs, and
// snapshots every machine-checkable number into a schema-versioned
// BENCH_<stamp>.json at the repository root — the perf trajectory CI
// diffs run over run.
//
// Usage:
//
//	stateskip-bench [-grid experiments.json] [-scale ci|paper] [-out benchruns] [-stamp TAG] [-snapshot PATH | -no-snapshot]
//	stateskip-bench -analyze [-scale ci|paper] RUNDIR
//	stateskip-bench -diff [-wall-tol 1.5] [-min-wall-ms 50] OLD.json NEW.json
//
// Flags precede positional arguments (standard Go flag parsing).
//
// The default mode runs the grid: -grid names an experiments.json file
// (when the flag is left at its default and no such file exists, the
// built-in grid for -scale is used), the run directory lands under -out,
// and the snapshot is written to -snapshot (default BENCH_<stamp>.json in
// the current directory). ^C cancels cleanly between and inside cells.
//
// -analyze validates a run directory's CSVs against the pipeline's
// structural identities (TDV = seeds × n, TSL = seeds × L, coverage in
// [0,1]), renders the paper's Tables 1–4 and Fig. 4 as Markdown on stdout
// using the exact renderers of cmd/stateskip, and writes tables.md and
// tables.tex into the run directory.
//
// -diff compares two snapshots and exits 1 when the new one regresses:
// deterministic counters must match exactly (the pipeline guarantees
// bit-identical counters across machines and worker counts), wall-clock
// metrics may slow at most -wall-tol× on cells that took ≥ -min-wall-ms
// before. -wall-tol 0 disables wall-clock comparison — the right setting
// when the reference snapshot was produced on different hardware.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/benchprofile"
	"repro/internal/benchrun"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	code, err := run(ctx, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "stateskip-bench:", err)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "stateskip-bench: interrupted — partial run directory left for inspection")
		}
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run dispatches the three modes and returns the process exit code.
func run(ctx context.Context, args []string) (int, error) {
	fs := flag.NewFlagSet("stateskip-bench", flag.ContinueOnError)
	gridPath := fs.String("grid", "experiments.json", "experiment grid file (missing default falls back to -scale's built-in grid)")
	scaleFlag := fs.String("scale", "ci", "grid scale when no grid file is used, and table scale for -analyze")
	outDir := fs.String("out", "benchruns", "parent directory for timestamped run directories")
	stamp := fs.String("stamp", "", "override the run stamp (default: current UTC time)")
	snapshot := fs.String("snapshot", "", "snapshot path (default: BENCH_<stamp>.json in the current directory)")
	noSnapshot := fs.Bool("no-snapshot", false, "skip writing the repo-root snapshot (the run directory still gets CSVs)")
	analyze := fs.Bool("analyze", false, "analyze a run directory instead of running: validate CSVs, render tables")
	diff := fs.Bool("diff", false, "diff two snapshots instead of running: exit 1 on regression")
	wallTol := fs.Float64("wall-tol", 1.5, "allowed wall-clock slowdown factor for -diff (0 disables wall comparison)")
	minWallMS := fs.Int64("min-wall-ms", 50, "ignore wall-clock cells faster than this in the old snapshot for -diff")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	scale := benchprofile.ScaleCI
	switch *scaleFlag {
	case "ci":
	case "paper":
		scale = benchprofile.ScalePaper
	default:
		return 2, fmt.Errorf("unknown -scale %q (want ci or paper)", *scaleFlag)
	}

	switch {
	case *analyze:
		if fs.NArg() != 1 {
			return 2, fmt.Errorf("-analyze wants exactly one run directory argument")
		}
		return runAnalyze(fs.Arg(0), scale)
	case *diff:
		if fs.NArg() != 2 {
			return 2, fmt.Errorf("-diff wants exactly two snapshot arguments: OLD.json NEW.json")
		}
		return runDiff(fs.Arg(0), fs.Arg(1), benchrun.Tolerance{
			WallFactor: *wallTol,
			MinWallNS:  *minWallMS * int64(time.Millisecond),
		})
	default:
		if fs.NArg() != 0 {
			return 2, fmt.Errorf("unexpected arguments %v (use -analyze or -diff for those modes)", fs.Args())
		}
		return runGrid(ctx, *gridPath, scale, *outDir, *stamp, *snapshot, *noSnapshot)
	}
}

// runGrid executes the grid and writes the run directory plus snapshot.
func runGrid(ctx context.Context, gridPath string, scale benchprofile.Scale, outDir, stamp, snapshot string, noSnapshot bool) (int, error) {
	var grid benchrun.Grid
	if _, err := os.Stat(gridPath); err == nil {
		grid, err = benchrun.LoadGrid(gridPath)
		if err != nil {
			return 1, err
		}
		fmt.Printf("grid: %s (scale %s)\n", gridPath, grid.Scale)
	} else if !os.IsNotExist(err) {
		return 1, err
	} else {
		grid = benchrun.DefaultGrid(scale)
		fmt.Printf("grid: built-in %s default (%s not found)\n", grid.Scale, gridPath)
	}
	if stamp == "" {
		stamp = time.Now().UTC().Format("20060102T150405Z")
	}
	dir := filepath.Join(outDir, stamp)
	if snapshot == "" && !noSnapshot {
		snapshot = benchrun.SnapshotName(stamp)
	}
	if noSnapshot {
		snapshot = ""
	}
	snap, err := benchrun.Run(ctx, benchrun.RunOptions{
		Grid:         grid,
		Dir:          dir,
		SnapshotPath: snapshot,
		Stamp:        stamp,
		Log:          os.Stdout,
	})
	if err != nil {
		return 1, err
	}
	fmt.Printf("run directory: %s\n", dir)
	if snapshot != "" {
		fmt.Printf("snapshot: %s (%d encode, %d atpg, %d session cells)\n",
			snapshot, len(snap.Encode), len(snap.ATPG), len(snap.Sessions))
	}
	return 0, nil
}

// runAnalyze validates a run directory and renders its tables.
func runAnalyze(dir string, scale benchprofile.Scale) (int, error) {
	rep, err := benchrun.Analyze(dir, scale)
	if err != nil {
		return 1, err
	}
	md := rep.Markdown()
	fmt.Print(md)
	if err := os.WriteFile(filepath.Join(dir, "tables.md"), []byte(md), 0o644); err != nil {
		return 1, err
	}
	if err := os.WriteFile(filepath.Join(dir, "tables.tex"), []byte(rep.LaTeX()), 0o644); err != nil {
		return 1, err
	}
	fmt.Printf("\nvalidated %d encode, %d atpg, %d session cells; wrote tables.md and tables.tex to %s\n",
		rep.EncodeCells, rep.ATPGCells, rep.SessionCells, dir)
	return 0, nil
}

// runDiff compares two snapshots; regressions exit 1.
func runDiff(oldPath, newPath string, tol benchrun.Tolerance) (int, error) {
	oldSnap, err := benchrun.ReadSnapshot(oldPath)
	if err != nil {
		return 1, err
	}
	newSnap, err := benchrun.ReadSnapshot(newPath)
	if err != nil {
		return 1, err
	}
	regs, err := benchrun.Diff(oldSnap, newSnap, tol)
	if err != nil {
		return 1, err
	}
	if len(regs) > 0 {
		fmt.Print(benchrun.DiffReport(regs))
		return 1, fmt.Errorf("%s regresses against %s", newPath, oldPath)
	}
	fmt.Printf("clean: %s matches %s (counters exact, wall within tolerance)\n", newPath, oldPath)
	return 0, nil
}
